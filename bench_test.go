// Benchmarks regenerating every table and figure of the paper (one
// Benchmark* per experiment; see DESIGN.md §4 for the index) plus
// micro-benchmarks of the substrates. The experiment benchmarks run at a
// reduced suite scale so `go test -bench=.` completes in minutes; run
// cmd/experiments for the full paper-scale numbers.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/march"
	"repro/internal/mtree"
	"repro/internal/parallel"
	"repro/internal/sim/cpu"
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
	"repro/internal/workload"
)

// benchScale keeps the experiment benchmarks affordable. The reported
// "claims-hold" metric re-evaluates the paper-vs-measured checks at this
// reduced scale; checks whose thresholds are calibrated for the full run
// (headline decimals, census concentrations, comparator margins) may read
// 0 here — the authoritative pass/fail is `go run ./cmd/experiments` at
// scale 1.0, where all claims hold (see EXPERIMENTS.md).
const benchScale = 0.1

func benchCtx(b *testing.B) *experiments.Context {
	b.Helper()
	cfg := experiments.DefaultConfig()
	cfg.Scale = benchScale
	cfg.Folds = 5
	return experiments.NewContext(cfg)
}

// runExperiment runs one named experiment b.N times and reports the last
// result's claim outcomes through b.Log.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := experiments.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	ctx := benchCtx(b)
	// Simulate the shared dataset outside the timed region.
	if _, err := ctx.Collection(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = e.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	ok = true
	for _, c := range res.Claims {
		if !c.Holds {
			ok = false
		}
	}
	b.ReportMetric(boolMetric(ok), "claims-hold")
}

func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// ---- One benchmark per paper artifact (E1..E9) ----

func BenchmarkTableICollection(b *testing.B)        { runExperiment(b, "tableI") }
func BenchmarkFigure1ExampleTree(b *testing.B)      { runExperiment(b, "figure1") }
func BenchmarkFigure2TreeConstruction(b *testing.B) { runExperiment(b, "figure2") }
func BenchmarkFigure3CrossValidation(b *testing.B)  { runExperiment(b, "figure3") }
func BenchmarkAccuracyMetrics(b *testing.B)         { runExperiment(b, "accuracy") }
func BenchmarkComparatorModels(b *testing.B)        { runExperiment(b, "comparators") }
func BenchmarkLeafCensus(b *testing.B)              { runExperiment(b, "leafcensus") }
func BenchmarkSplitImpact(b *testing.B)             { runExperiment(b, "splitimpact") }
func BenchmarkNaiveBaseline(b *testing.B)           { runExperiment(b, "naive") }

// ---- Ablations (DESIGN.md §5) ----

func BenchmarkAblationSmoothing(b *testing.B) { runExperiment(b, "ablation-smoothing") }
func BenchmarkAblationPruning(b *testing.B)   { runExperiment(b, "ablation-pruning") }
func BenchmarkAblationMinLeaf(b *testing.B)   { runExperiment(b, "ablation-minleaf") }
func BenchmarkAblationAttrDrop(b *testing.B)  { runExperiment(b, "ablation-attrdrop") }
func BenchmarkAblationPrefetch(b *testing.B)  { runExperiment(b, "ablation-prefetch") }

// ---- Cross-architecture extensions ----

func BenchmarkNetBurstComparison(b *testing.B) { runExperiment(b, "netburst") }
func BenchmarkInOrderComparison(b *testing.B)  { runExperiment(b, "inorder") }

// BenchmarkGroundTruthValidation compares model-attributed cycles with the
// simulator's true cycle stack (see EXPERIMENTS.md E12).
func BenchmarkGroundTruthValidation(b *testing.B) { runExperiment(b, "groundtruth") }

// BenchmarkBaggedEnsemble compares bagged M5' against the single tree.
func BenchmarkBaggedEnsemble(b *testing.B) { runExperiment(b, "bagging") }

// BenchmarkAblationSectionLength sweeps the retired-instruction count per
// section, the paper's data-grouping knob.
func BenchmarkAblationSectionLength(b *testing.B) {
	for _, sectionLen := range []uint64{5000, 20000, 80000} {
		b.Run(fmt.Sprintf("len%d", sectionLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ccfg := counters.DefaultCollectConfig()
				ccfg.SectionLen = sectionLen
				col, err := counters.CollectSuite(workload.SuiteScaled(0.05), ccfg)
				if err != nil {
					b.Fatal(err)
				}
				cfg := mtree.DefaultConfig()
				cfg.MinLeaf = 20
				learner := eval.LearnerFunc{N: "M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
					return mtree.Build(d, cfg)
				}}
				res, err := eval.CrossValidate(learner, col.Data, 5, 1, parallel.Config{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Pooled.Correlation, "CV-correlation")
			}
		})
	}
}

// ---- Parallel execution layer (serial vs all-cores; identical output) ----

// benchJobVariants yields the serial baseline and the all-cores variant.
// On a multi-core runner the jobsN sub-benchmarks should show near-linear
// speedup for collection (embarrassingly parallel benchmarks) and
// substantial speedup for CV and bagging; the outputs are byte-identical
// either way (see determinism_test.go).
func benchJobVariants() []int {
	max := runtime.GOMAXPROCS(0)
	if max == 1 {
		return []int{1}
	}
	return []int{1, max}
}

// BenchmarkParallelCollect measures suite simulation throughput, the
// dominant cost of a full-scale experiment run.
func BenchmarkParallelCollect(b *testing.B) {
	suite := workload.SuiteScaled(0.1)
	for _, jobs := range benchJobVariants() {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			cfg := counters.DefaultCollectConfig()
			cfg.Jobs = jobs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := counters.CollectSuite(suite, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelCV measures k-fold cross validation of the M5' tree
// with folds trained serially vs concurrently.
func BenchmarkParallelCV(b *testing.B) {
	ctx := benchCtx(b)
	col, err := ctx.Collection()
	if err != nil {
		b.Fatal(err)
	}
	for _, jobs := range benchJobVariants() {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			cfg := mtree.DefaultConfig()
			cfg.MinLeaf = 43
			cfg.Jobs = jobs
			learner := eval.LearnerFunc{N: "M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
				return mtree.Build(d, cfg)
			}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.CrossValidate(learner, col.Data, 5, 1, parallel.Config{Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelBagging measures bagged-ensemble training with member
// trees trained serially vs concurrently.
func BenchmarkParallelBagging(b *testing.B) {
	ctx := benchCtx(b)
	col, err := ctx.Collection()
	if err != nil {
		b.Fatal(err)
	}
	for _, jobs := range benchJobVariants() {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			cfg := ensemble.DefaultConfig()
			cfg.Trees = 10
			cfg.Tree.MinLeaf = 43
			cfg.Tree.Jobs = jobs
			cfg.Jobs = jobs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ensemble.Train(col.Data, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkSimulatorThroughput measures core-model speed in instructions
// per second over a representative kernel.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := workload.Suite()[0].Phases[0].Params
	gen := workload.NewGenerator(p, 1)
	spec := march.Core2()
	core := cpu.New(spec.CPUConfig(), spec.Geometry(), spec.BranchConfig())
	var in trace.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&in)
		core.Step(&in)
	}
}

// BenchmarkCacheAccess measures the set-associative cache lookup path.
func BenchmarkCacheAccess(b *testing.B) {
	c := mem.NewCache(mem.CacheConfig{Name: "b", SizeB: 32 << 10, Ways: 8, LineB: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64 % (1 << 20))
	}
}

// BenchmarkTreeBuild measures M5' training time on the (reduced) suite
// dataset.
func BenchmarkTreeBuild(b *testing.B) {
	ctx := benchCtx(b)
	col, err := ctx.Collection()
	if err != nil {
		b.Fatal(err)
	}
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 43
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mtree.Build(col.Data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreePredict measures single-section prediction latency
// (smoothing enabled).
func BenchmarkTreePredict(b *testing.B) {
	ctx := benchCtx(b)
	col, err := ctx.Collection()
	if err != nil {
		b.Fatal(err)
	}
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 43
	tree, err := mtree.Build(col.Data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rows := col.Data
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Predict(rows.Row(i % rows.Len()))
	}
}

// BenchmarkSectionCollection measures end-to-end section collection
// (workload synthesis + simulation + counter extraction).
func BenchmarkSectionCollection(b *testing.B) {
	bench, _ := workload.BenchmarkByName("429.mcf")
	cfg := counters.DefaultCollectConfig()
	cfg.SectionLen = 5000
	small := bench.Scale(0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := counters.CollectBenchmark(small, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
