// Golden-output regression test for the simulator hot path. The hash below
// was recorded before the flat-cache / block-streaming / zero-alloc-Step
// optimization campaign and pins the exact bits of every dataset value,
// provenance label and cycle-breakdown entry the collection pipeline
// produces. Any fast path that is not a provable no-op — a cache fast hit
// that should have moved replacement state, an RNG that diverges from
// math/rand by one draw, a prefetcher shortcut that skips a state change —
// shows up here as a hash mismatch, at jobs=1 and jobs=8 alike.
package repro_test

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/counters"
	"repro/internal/workload"
)

// goldenCollectHash is the SHA-256 of the canonical serialization (see
// hashCollection) of CollectSuite(SuiteScaled(0.05), DefaultCollectConfig).
// Recorded from the pre-optimization simulator; the optimized hot loops
// must reproduce it bit for bit.
const goldenCollectHash = "5357c68f18f11bb83ad02bf3b55e1f05e00430eee6669472a91d7fe8db78ac31"

// hashCollection folds every row value (little-endian float bits), label
// and breakdown value into one SHA-256.
func hashCollection(col *counters.Collection) string {
	h := sha256.New()
	var b [8]byte
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	d := col.Data
	for i := 0; i < d.Len(); i++ {
		for _, v := range d.Row(i) {
			putF(v)
		}
	}
	for _, l := range col.Labels {
		fmt.Fprintf(h, "%s/%d/%d\n", l.Benchmark, l.Phase, l.Section)
	}
	for _, bd := range col.Breakdowns {
		for _, v := range bd {
			putF(v)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestGoldenCollectionHash(t *testing.T) {
	suite := workload.SuiteScaled(0.05)
	for _, jobs := range []int{1, 8} {
		cfg := counters.DefaultCollectConfig()
		cfg.Jobs = jobs
		col, err := counters.CollectSuite(suite, cfg)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got := hashCollection(col); got != goldenCollectHash {
			t.Errorf("jobs=%d: collection hash %s, want %s — the simulator output changed; "+
				"if the change is intentional, re-record the golden hash and document why",
				jobs, got, goldenCollectHash)
		}
		if jobs == 1 && testing.Short() {
			break // one full serial pass is enough under -short
		}
	}
}
