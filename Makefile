# Developer entry points. `make check` is the CI gate: vet plus the short
# test set under the race detector, keeping the parallel execution layer
# (internal/parallel and its call sites) provably race-clean.

GO ?= go

.PHONY: build test check vet race race-serve cover bench bench-parallel bench-serve bench-predict bench-micro bench-json bench-compare experiments crossarch-smoke serve-smoke monitor-smoke refute-smoke loadgen-smoke loadgen-smoke-race bench-load fuzz-short

build:
	$(GO) build ./...

# Full test suite (tier-1 verify).
test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# Short test set under the race detector; includes the determinism
# regression tests, which drive every stage at Jobs=1 and Jobs=4.
race:
	$(GO) test -race -short ./...

# Full (not -short) race run of the serving hot path: the lock-striped
# session table, the atomic histogram and sharded prediction cache, and
# the stream/phase machinery behind them. These packages carry the
# concurrency added for multi-session serving, so they get a dedicated
# race gate beyond the -short sweep above.
race-serve:
	$(GO) test -race ./internal/serve/... ./internal/stream/... ./internal/shard/...

check: vet race

# Per-package coverage gate for the library code. Every internal package
# must stay at or above COVER_FLOOR percent statement coverage;
# internal/experiments gets a lower floor because its bulk is end-to-end
# reproduction drivers exercised through `make experiments` rather than
# unit tests. Packages with no statements (pure interface/type packages)
# are skipped.
COVER_FLOOR            ?= 60
COVER_FLOOR_EXPERIMENTS ?= 30
# internal/refute is the counter-consistency gatekeeper: a relation it
# mis-evaluates silently turns refuted streams into "consistent", so it
# carries a floor well above the default.
COVER_FLOOR_REFUTE     ?= 85
cover:
	@set -e; out=$$(mktemp /tmp/cover.XXXXXX.txt); \
	trap 'rm -f $$out' EXIT; \
	$(GO) test -cover ./internal/... | tee $$out; \
	awk -v floor=$(COVER_FLOOR) -v expfloor=$(COVER_FLOOR_EXPERIMENTS) -v refloor=$(COVER_FLOOR_REFUTE) ' \
	/^ok/ && /coverage:/ { \
	  pkg=$$2; c=-1; \
	  for (i=1;i<=NF;i++) if ($$i ~ /%$$/) { gsub(/%/,"",$$i); c=$$i+0 } \
	  if (c < 0) next; \
	  f = (pkg=="repro/internal/experiments") ? expfloor : \
	      (pkg=="repro/internal/refute")      ? refloor  : floor; \
	  if (c < f) { printf "cover: %s at %.1f%% is below the %d%% floor\n", pkg, c, f; bad=1 } \
	} \
	END { if (bad) exit 1; print "cover: all internal packages at or above the floor" }' $$out

# Serial-vs-parallel speedup benchmarks (see EXPERIMENTS.md "Parallel
# execution").
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkParallel' -benchtime 2x .

bench:
	$(GO) test -run '^$$' -bench . .

# Served-prediction latency, cached vs uncached (see DESIGN.md §8).
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServePredict' -benchtime 50x ./internal/serve/

# Compiled-evaluator micro-benchmarks (see DESIGN.md §12): pointer walk
# vs flat-array walk vs the batch kernel, single tree and ensemble, plus
# the served batch endpoint with kernel on/off. The compiled batch
# kernel must report 0 allocs/op.
bench-predict:
	$(GO) test -run '^$$' -bench 'BenchmarkPredictCompiled' -benchtime 2s ./internal/mtree/
	$(GO) test -run '^$$' -bench 'BenchmarkServePredictBatch' -benchtime 50x ./internal/serve/

# Simulator hot-loop micro-benchmarks (see DESIGN.md §10): cache/TLB
# probes, hierarchy walks, single-core Step and the per-section collect
# loop. All of them must report 0 allocs/op in steady state.
bench-micro:
	$(GO) test -run '^$$' -bench . -benchtime 2s ./internal/sim/... ./internal/counters/

# Machine-readable benchmark snapshot: the speedup, serving-latency,
# stream-ingestion and simulator micro-benchmarks in `go test -json`
# form, concatenated into one dated file for regression diffing across
# commits.
BENCH_JSON ?= BENCH_$(shell date +%Y-%m-%d).json
bench-json:
	@set -e; : > $(BENCH_JSON); \
	$(GO) test -run '^$$' -bench 'BenchmarkParallel' -benchtime 2x -json . >> $(BENCH_JSON); \
	$(GO) test -run '^$$' -bench 'BenchmarkServePredict' -benchtime 50x -json ./internal/serve/ >> $(BENCH_JSON); \
	$(GO) test -run '^$$' -bench 'BenchmarkServeConcurrent' -benchtime 50x -cpu 1,4,8 -json ./internal/serve/ >> $(BENCH_JSON); \
	$(GO) test -run '^$$' -bench 'BenchmarkPredictCompiled' -benchtime 2s -json ./internal/mtree/ >> $(BENCH_JSON); \
	$(GO) test -run '^$$' -bench 'BenchmarkStreamIngest' -benchtime 20x -json ./internal/stream/ >> $(BENCH_JSON); \
	$(GO) test -run '^$$' -bench . -benchtime 2s -json ./internal/sim/... ./internal/counters/ >> $(BENCH_JSON); \
	echo "wrote $(BENCH_JSON)"

# Informational benchmark regression check: re-run the snapshot suite into
# a scratch file and diff it against the committed baseline with
# cmd/benchdiff (a dependency-free benchstat stand-in). Never fails by
# default — benchmark numbers on shared CI machines wobble by ±10-30% —
# so treat the printed table as a signal, not a gate. Pass
# BENCH_THRESHOLD=<percent> to make regressions beyond that fatal on a
# quiet machine.
BENCH_BASELINE  ?= BENCH_2026-08-08.json
BENCH_THRESHOLD ?= 0
bench-compare:
	@set -e; tmp=$$(mktemp /tmp/bench-compare.XXXXXX.json); \
	trap 'rm -f $$tmp' EXIT; \
	$(MAKE) --no-print-directory bench-json BENCH_JSON=$$tmp; \
	$(GO) run ./cmd/benchdiff -old $(BENCH_BASELINE) -new $$tmp -threshold $(BENCH_THRESHOLD)

# Brief runs of every fuzz target (NDJSON sample decoder, CSV dataset
# parser, persisted-tree loader, machine-spec loader, binary model
# loader, refutation-state loader) — long enough to
# catch parser regressions in CI, short enough to not dominate it. Each
# target has a checked-in seed corpus under its package's testdata/fuzz/.
# The binary-model target caps per-input minimization: its seeds are
# multi-kilobyte model files, and the default 60s minimize budget would
# otherwise eat the whole -fuzztime on the first interesting mutation.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeSample' -fuzztime $(FUZZTIME) ./internal/stream/
	$(GO) test -run '^$$' -fuzz 'FuzzDecoderStream' -fuzztime $(FUZZTIME) ./internal/stream/
	$(GO) test -run '^$$' -fuzz 'FuzzReadCSV' -fuzztime $(FUZZTIME) ./internal/dataset/
	$(GO) test -run '^$$' -fuzz 'FuzzTreeReadJSON' -fuzztime $(FUZZTIME) ./internal/mtree/
	$(GO) test -run '^$$' -fuzz 'FuzzMachineSpecReadJSON' -fuzztime $(FUZZTIME) ./internal/march/
	$(GO) test -run '^$$' -fuzz 'FuzzModelReadBinary' -fuzztime $(FUZZTIME) -fuzzminimizetime 1000x ./internal/modelio/
	$(GO) test -run '^$$' -fuzz 'FuzzRefutationStateReadJSON' -fuzztime $(FUZZTIME) ./internal/refute/

experiments:
	$(GO) run ./cmd/experiments

# Determinism smoke test of the cross-architecture experiment: run the
# reduced-scale machine sweep twice at different worker counts and fail
# unless the two reports hash identically — the enforcement of the
# "byte-identical at any -jobs value" contract for the (machine,
# benchmark) fan-out. The report itself is printed for eyeballing the
# per-machine tree table and LOAO transfer numbers.
CROSSARCH_SCALE ?= 0.3
crossarch-smoke:
	@set -e; 	a=$$(mktemp /tmp/crossarch.a.XXXXXX.txt); b=$$(mktemp /tmp/crossarch.b.XXXXXX.txt); 	trap 'rm -f $$a $$b' EXIT; 	$(GO) run ./cmd/experiments -crossarch -scale $(CROSSARCH_SCALE) -jobs 1 > $$a; 	$(GO) run ./cmd/experiments -crossarch -scale $(CROSSARCH_SCALE) -jobs 0 > $$b; 	grep -v 'completed in' $$a > $$a.clean; grep -v 'completed in' $$b > $$b.clean; 	cmp $$a.clean $$b.clean || { echo "crossarch-smoke: report differs between -jobs 1 and -jobs 0"; rm -f $$a.clean $$b.clean; exit 1; }; 	cat $$a.clean; rm -f $$a.clean $$b.clean; 	echo "crossarch-smoke: PASS (reports byte-identical across worker counts)"

# End-to-end smoke test of the prediction service: build cmd/serve, start
# it with a self-trained demo model, wait for /healthz, POST the same
# prediction twice (the second must hit the LRU cache), assert HTTP 200,
# and print the /metrics report (request counts, latency quantiles, cache
# hit rate). Always kills the server on exit.
SMOKE_ADDR ?= 127.0.0.1:18466
SMOKE_BIN  ?= /tmp/repro-serve-smoke

serve-smoke:
	@set -e; \
	$(GO) build -o $(SMOKE_BIN) ./cmd/serve; \
	$(SMOKE_BIN) -demo -demo-scale 0.05 -addr $(SMOKE_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT INT TERM; \
	ok=0; for i in $$(seq 1 150); do \
	  curl -sf http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; \
	  sleep 0.2; \
	done; \
	test $$ok -eq 1 || { echo "serve-smoke: server never became healthy"; exit 1; }; \
	for i in 1 2; do \
	  code=$$(curl -s -o $(SMOKE_BIN).predict.json -w '%{http_code}' \
	    -X POST -H 'Content-Type: application/json' \
	    -d '{"model":"demo","events":[{"L2M":0.004,"L1IM":0.002}],"contributions":true}' \
	    http://$(SMOKE_ADDR)/v1/predict); \
	  test "$$code" = 200 || { echo "serve-smoke: predict returned HTTP $$code"; cat $(SMOKE_BIN).predict.json; exit 1; }; \
	done; \
	echo "serve-smoke: predict OK (2x HTTP 200):"; cat $(SMOKE_BIN).predict.json; \
	echo "serve-smoke: metrics:"; curl -s http://$(SMOKE_ADDR)/metrics; \
	echo "serve-smoke: PASS"

# End-to-end smoke test of the load-generation harness: start cmd/serve
# with a self-trained demo model, replay a short seeded mixed trace
# through cmd/loadgen, and fail unless the error budget is zero AND the
# client's counters match the server's /v1/metrics.json deltas exactly
# (the -max-error-budget 0 / validation gate inside loadgen). Always
# kills the server on exit.
LOADGEN_ADDR ?= 127.0.0.1:18467
LOADGEN_BIN  ?= /tmp/repro-loadgen-smoke
# Extra build flags for the server under test (loadgen-smoke-race sets
# -race). GORACE=halt_on_error=1 is inert without -race; with it, the
# first data race kills the server mid-replay and the smoke test fails.
LOADGEN_SERVE_BUILDFLAGS ?=

loadgen-smoke:
	@set -e; \
	$(GO) build $(LOADGEN_SERVE_BUILDFLAGS) -o $(LOADGEN_BIN).serve ./cmd/serve; \
	$(GO) build -o $(LOADGEN_BIN) ./cmd/loadgen; \
	GORACE=halt_on_error=1 $(LOADGEN_BIN).serve -demo -demo-scale 0.05 -addr $(LOADGEN_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT INT TERM; \
	ok=0; for i in $$(seq 1 150); do \
	  curl -sf http://$(LOADGEN_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; \
	  sleep 0.2; \
	done; \
	test $$ok -eq 1 || { echo "loadgen-smoke: server never became healthy"; exit 1; }; \
	$(LOADGEN_BIN) -target http://$(LOADGEN_ADDR) -model demo \
	  -mode steady -duration 2s -rps 150 -seed 1 \
	  -out $(LOADGEN_BIN).report.json -max-error-budget 0; \
	echo "loadgen-smoke: PASS"

# loadgen-smoke with the server built under the race detector: a seeded
# mixed trace (predict/classify/stream across several sessions) is the
# closest thing to production concurrency the repo can generate, so any
# race the unit tests miss shows up here.
loadgen-smoke-race:
	@$(MAKE) --no-print-directory loadgen-smoke \
	  LOADGEN_SERVE_BUILDFLAGS=-race \
	  LOADGEN_ADDR=127.0.0.1:18468 \
	  LOADGEN_BIN=/tmp/repro-loadgen-smoke-race

# Load benchmark snapshot: replay steady and burst traces against a demo
# server and append benchdiff-compatible latency events (p50/p95/p99 per
# traffic kind) to a dated BENCH_LOAD_*.json, diffable across commits
# with `go run ./cmd/benchdiff`. Latency numbers from shared CI machines
# wobble; treat the diff as a signal, like bench-compare.
BENCH_LOAD_JSON ?= BENCH_LOAD_$(shell date +%Y-%m-%d).json
bench-load:
	@set -e; : > $(BENCH_LOAD_JSON); \
	$(GO) build -o $(LOADGEN_BIN).serve ./cmd/serve; \
	$(GO) build -o $(LOADGEN_BIN) ./cmd/loadgen; \
	$(LOADGEN_BIN).serve -demo -demo-scale 0.05 -addr $(LOADGEN_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT INT TERM; \
	ok=0; for i in $$(seq 1 150); do \
	  curl -sf http://$(LOADGEN_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; \
	  sleep 0.2; \
	done; \
	test $$ok -eq 1 || { echo "bench-load: server never became healthy"; exit 1; }; \
	for mode in steady burst; do \
	  $(LOADGEN_BIN) -target http://$(LOADGEN_ADDR) -model demo \
	    -mode $$mode -duration 5s -rps 200 -seed 1 \
	    -out /dev/null -bench-json $(BENCH_LOAD_JSON); \
	done; \
	echo "wrote $(BENCH_LOAD_JSON)"

# End-to-end smoke test of the streaming monitor: cmd/monitor -demo
# trains a model, streams a synthetic two-phase trace with an injected
# CPI regression through the full ingest/score/monitor path, and exits
# non-zero unless both the phase boundary and the drift alarm are caught.
monitor-smoke:
	$(GO) run ./cmd/monitor -demo -events ''

# End-to-end smoke test of the counter-consistency refutation layer:
# the clean demo trace must come out `consistent` (exit 0), and the
# same seeded trace with the DTLB counter readout negated mid-run must
# come out `refuted` (exit non-zero, relation table on stderr). A layer
# that fails either direction — flagging clean counters or passing
# corrupted ones — fails the target.
refute-smoke:
	@set -e; \
	$(GO) run ./cmd/monitor -demo -refute -render 0 -events ''; \
	if $(GO) run ./cmd/monitor -demo -demo-corrupt -refute -render 0 -events ''; then \
	  echo "refute-smoke: corrupted demo trace was NOT refuted"; exit 1; \
	fi; \
	echo "refute-smoke: PASS (clean trace consistent, corrupted trace refuted)"
