# Developer entry points. `make check` is the CI gate: vet plus the short
# test set under the race detector, keeping the parallel execution layer
# (internal/parallel and its call sites) provably race-clean.

GO ?= go

.PHONY: build test check vet race bench bench-parallel experiments

build:
	$(GO) build ./...

# Full test suite (tier-1 verify).
test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# Short test set under the race detector; includes the determinism
# regression tests, which drive every stage at Jobs=1 and Jobs=4.
race:
	$(GO) test -race -short ./...

check: vet race

# Serial-vs-parallel speedup benchmarks (see EXPERIMENTS.md "Parallel
# execution").
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkParallel' -benchtime 2x .

bench:
	$(GO) test -run '^$$' -bench . .

experiments:
	$(GO) run ./cmd/experiments
