// Phases demonstrates execution-phase detection on the section stream —
// the behaviour the paper's sectioning is designed to expose ("the
// functional mapping between the inputs and the output is different for
// each class... any given workload may embody multiple phases"). It runs
// 403.gcc, whose three phases (parse / LCP-heavy optimize / store-heavy
// codegen) have distinct counter signatures, detects the phase boundaries
// from the counters alone, and then analyzes each detected phase through
// the trained model tree.
//
// Run with: go run ./examples/phases
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/counters"
	"repro/internal/mtree"
	"repro/internal/phases"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// Train the reference tree on the suite.
	fmt.Println("training the reference model...")
	ccfg := counters.DefaultCollectConfig()
	col, err := counters.CollectSuite(workload.SuiteScaled(0.1), ccfg)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := mtree.DefaultConfig()
	tcfg.MinLeaf = 43
	tree, err := mtree.Build(col.Data, tcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Run gcc and keep its sections in execution order.
	gcc, ok := workload.BenchmarkByName("403.gcc")
	if !ok {
		log.Fatal("403.gcc not in suite")
	}
	fmt.Println("running 403.gcc and collecting sections in order...")
	prof, err := counters.CollectBenchmark(gcc.Scale(0.3), ccfg)
	if err != nil {
		log.Fatal(err)
	}

	// Detect phases from the counters alone. The per-section parameter
	// jitter plus cache-warmth drift create genuine sub-phases, so a
	// stiffer threshold than the default recovers the coarse program
	// phases.
	pcfg := phases.DefaultConfig()
	pcfg.Threshold = 8
	pcfg.MinRun = 4
	pcfg.MinPhaseLen = 8
	det := phases.NewDetector(prof.Data, pcfg)
	segs := det.Segment(prof.Data)
	fmt.Println()
	fmt.Print(phases.Render(segs, prof.Data))

	// Ground truth from the workload labels, for comparison.
	fmt.Println("\nground truth phase boundaries (from the workload generator):")
	prev := -1
	for i, l := range prof.Labels {
		if l.Phase != prev {
			fmt.Printf("  phase %d starts at section %d\n", l.Phase+1, i)
			prev = l.Phase
		}
	}

	// Per-phase what/how-much analysis.
	for i, s := range segs {
		sub := prof.Data.EmptyLike()
		for j := s.Start; j < s.End; j++ {
			sub.MustAppend(prof.Data.Row(j).Clone())
		}
		rep := analysis.AnalyzeWorkload(tree, sub)
		top := "none"
		if len(rep.Issues) > 0 {
			top = fmt.Sprintf("%s (%.0f%% of CPI)", rep.Issues[0].Name, 100*rep.Issues[0].MeanFraction)
		}
		fmt.Printf("\ndetected phase %d (sections %d..%d): mean CPI %.2f, dominant issue %s\n",
			i+1, s.Start, s.End-1, rep.MeanCPI, top)
	}
}
