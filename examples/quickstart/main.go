// Quickstart: the minimal end-to-end pipeline.
//
//  1. Simulate a small SPEC-like workload on the Core-2-Duo-like core and
//     collect per-section event-counter ratios (the paper's Table I).
//  2. Train an M5' model tree predicting CPI from the counters.
//  3. Print the tree and predict a few held-out sections.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/counters"
	"repro/internal/eval"
	"repro/internal/mtree"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Collect a reduced-scale dataset (a few hundred sections).
	fmt.Println("simulating the workload suite (reduced scale)...")
	cfg := counters.DefaultCollectConfig()
	col, err := counters.CollectSuite(workload.SuiteScaled(0.05), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d sections x %d Table I metrics\n\n", col.Data.Len(), col.Data.NumAttrs())

	// 2. Hold out a test split and train the model tree.
	train, test, err := col.Data.TrainTestSplit(0.8, 1)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := mtree.DefaultConfig()
	tcfg.MinLeaf = 40 // scaled-down version of the paper's 430
	tree, err := mtree.Build(train, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree.Summary())
	fmt.Println()
	fmt.Print(tree.String())

	// 3. Evaluate on the held-out sections.
	m, err := eval.Evaluate(tree, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out accuracy: %s\n", m)

	// And predict a few sections individually.
	fmt.Println("\nsample predictions (actual vs predicted CPI):")
	for i := 0; i < 5 && i < test.Len(); i++ {
		fmt.Printf("  section %d: %.3f vs %.3f\n", i, test.Target(i), tree.Predict(test.Row(i)))
	}
}
