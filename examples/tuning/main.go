// Tuning demonstrates the paper's optimization workflow — the "what" and
// "how much" questions — on a single workload:
//
//  1. Train the performance model tree on the whole suite (the reference
//     corpus).
//  2. Run the target workload and classify its sections.
//  3. Rank its performance issues: for each micro-architectural event, the
//     predicted CPI share and therefore the potential gain from fixing it
//     (the paper's Eq. 4 arithmetic: contribution = coef*rate/CPI).
//  4. Simulate the suggested fix by re-running the workload with the
//     dominant problem removed, and compare the measured speedup with the
//     model's prediction.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/counters"
	"repro/internal/mtree"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training the reference model on the suite...")
	ccfg := counters.DefaultCollectConfig()
	col, err := counters.CollectSuite(workload.SuiteScaled(0.12), ccfg)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := mtree.DefaultConfig()
	tcfg.MinLeaf = 50
	tree, err := mtree.Build(col.Data, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree.Summary())

	// The workload to tune: a gcc-like phase suffering LCP stalls plus
	// cache misses (the paper's 403.gcc story).
	target := workload.Params{
		LoadFrac: 0.30, StoreFrac: 0.14, BranchFrac: 0.16,
		DataFootprint: 1 << 20, Pattern: workload.Random, ColdFrac: 0.03,
		DepNearFrac: 0.20, ALUDepFrac: 0.30,
		BranchTakenProb: 0.55, BranchEntropy: 0.05, LoopFrac: 0.30,
		FreshPageFrac: 0.003,
		CodeFootprint: 64 << 10, JumpProb: 0.15,
		LCPFrac: 0.08,
	}
	bench := workload.Benchmark{Name: "target", Phases: []workload.Phase{{Params: target, Sections: 60}}}

	fmt.Println("\nprofiling the target workload...")
	prof, err := counters.CollectBenchmark(bench, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	rep := analysis.AnalyzeWorkload(tree, prof.Data)
	fmt.Print(rep.Render())

	if len(rep.Issues) == 0 {
		log.Fatal("no issues found")
	}
	// Find the first *actionable* issue (an event a software change can
	// remove — here we pick LCP, the paper's compiler-flag example, if it
	// ranks; otherwise the top issue).
	issue := rep.Issues[0]
	for _, is := range rep.Issues {
		if is.Name == "LCP" {
			issue = is
			break
		}
	}
	fmt.Printf("\nchosen optimization target: %s (predicted gain %.1f%% of CPI)\n",
		issue.Name, 100*issue.MeanFraction)

	// Apply the fix in the workload (e.g. recompile without LCP-encoded
	// instructions) and measure.
	fixed := target
	if issue.Name == "LCP" {
		fixed.LCPFrac = 0
	}
	fixedBench := workload.Benchmark{Name: "fixed", Phases: []workload.Phase{{Params: fixed, Sections: 60}}}
	after, err := counters.CollectBenchmark(fixedBench, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	before := prof.Data.TargetMean()
	now := after.Data.TargetMean()
	fmt.Printf("\nmeasured CPI before: %.3f, after the fix: %.3f (speedup %.1f%%)\n",
		before, now, 100*(before-now)/before)
	fmt.Printf("model predicted a gain of about %.1f%%\n", 100*issue.MeanFraction)
}
