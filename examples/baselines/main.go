// Baselines compares every regression approach in the repository on the
// same section dataset, reproducing the paper's model-comparison argument:
// the M5' model tree matches the black-box learners (ANN, SVM) while
// remaining interpretable, beats classical regression trees, and leaves
// the traditional fixed-penalty model far behind.
//
// Run with: go run ./examples/baselines [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/ann"
	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/mtree"
	"repro/internal/naive"
	"repro/internal/parallel"
	"repro/internal/regtree"
	"repro/internal/svm"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.2, "suite size multiplier")
	flag.Parse()

	fmt.Printf("simulating the suite at scale %.2f...\n", *scale)
	cfg := counters.DefaultCollectConfig()
	col, err := counters.CollectSuite(workload.SuiteScaled(*scale), cfg)
	if err != nil {
		log.Fatal(err)
	}
	d := col.Data
	fmt.Printf("%d sections\n\n", d.Len())

	// Below ~60 instances per leaf the 20-attribute leaf regressions get
	// unstable out of fold, so reduced-scale runs keep a higher floor than
	// a pure proportional scaling of the paper's 430 would give.
	minLeaf := int(430 * *scale)
	if minLeaf < 60 {
		minLeaf = 60
	}
	learners := []eval.Learner{
		eval.LearnerFunc{N: "M5' model tree", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			c := mtree.DefaultConfig()
			c.MinLeaf = minLeaf
			return mtree.Build(d, c)
		}},
		eval.LearnerFunc{N: "Regression tree (CART)", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			c := regtree.DefaultConfig()
			c.MinLeaf = minLeaf / 8
			if c.MinLeaf < 2 {
				c.MinLeaf = 2
			}
			return regtree.Build(d, c)
		}},
		eval.LearnerFunc{N: "ANN (MLP)", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			c := ann.DefaultConfig()
			c.Epochs = 80
			return ann.Train(d, c)
		}},
		eval.LearnerFunc{N: "SVM (eps-SVR, RBF)", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			return svm.Train(d, svm.DefaultConfig())
		}},
		eval.LearnerFunc{N: "Global linear", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			return naive.TrainGlobalLinear(d)
		}},
	}

	fmt.Printf("%-24s %8s %8s %9s\n", "model (5-fold CV)", "C", "MAE", "RAE")
	for _, l := range learners {
		res, err := eval.CrossValidate(l, d, 5, 1, parallel.Config{})
		if err != nil {
			log.Fatalf("%s: %v", l.Name(), err)
		}
		fmt.Printf("%-24s %8.4f %8.4f %8.2f%%\n",
			l.Name(), res.Pooled.Correlation, res.Pooled.MAE, res.Pooled.RAE*100)
	}

	// The fixed-penalty model needs no training; evaluate directly.
	fixed := naive.NewCore2FixedPenalties(d)
	m, err := eval.Evaluate(fixed, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %8.4f %8.4f %8.2f%%\n", "Fixed penalties (no fit)", m.Correlation, m.MAE, m.RAE*100)
	fmt.Printf("\nfixed-penalty equation: %s\n", fixed)
}
