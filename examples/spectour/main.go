// Spectour walks the full synthetic SPEC-CPU2006-like suite: it trains the
// performance-analysis tree on every benchmark's sections and then shows,
// per benchmark, which workload classes (tree leaves) its execution phases
// fall into — the machinery behind the paper's §V.A narratives
// ("more than 95% of cactusADM's sections …", "more than 70% of mcf's
// sections are classified in LM17", …).
//
// Run with: go run ./examples/spectour [-scale 0.15]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/counters"
	"repro/internal/mtree"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.15, "suite size multiplier")
	flag.Parse()

	fmt.Printf("simulating the suite at scale %.2f...\n", *scale)
	cfg := counters.DefaultCollectConfig()
	col, err := counters.CollectSuite(workload.SuiteScaled(*scale), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d sections collected\n\n", col.Data.Len())

	tcfg := mtree.DefaultConfig()
	tcfg.MinLeaf = int(430 * *scale)
	if tcfg.MinLeaf < 20 {
		tcfg.MinLeaf = 20
	}
	tree, err := mtree.Build(col.Data, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree.Summary())
	fmt.Println()
	fmt.Print(tree.String())

	fmt.Println("\nper-benchmark class census:")
	census := analysis.Census(tree, col)
	fmt.Print(census.Render())

	// The three headline narratives, checked live.
	fmt.Println("\npaper-style narratives:")
	for _, b := range []string{"436.cactusADM", "429.mcf"} {
		leaf, share := census.DominantLeaf(b)
		node := tree.Leaf(leaf)
		var highs []string
		seen := map[string]bool{}
		for _, s := range tree.LeafPath(leaf) {
			if s.Above && !seen[s.Name] {
				highs = append(highs, s.Name)
				seen[s.Name] = true
			}
		}
		fmt.Printf("  %s: %.0f%% of sections in class LM%d (mean CPI %.2f; high-side events %v)\n",
			b, 100*share, leaf, node.Mean, highs)
	}
}
