// Command diag is a development scratchpad for calibrating the simulator
// and learners. It trains an M5' tree on the full collected suite and
// reports per-benchmark residuals, pointing at workload classes the tree
// separates poorly.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"

	"repro/internal/counters"
	"repro/internal/model"
	"repro/internal/mtree"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("diag", flag.ContinueOnError)
	fs.SetOutput(stdout)
	jobs := fs.Int("jobs", 0, "worker count for simulation and split scoring (0 = all cores)")
	scale := fs.Float64("scale", 1.0, "suite size multiplier")
	minLeaf := fs.Int("minleaf", 430, "minimum instances per leaf at scale 1.0")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := counters.DefaultCollectConfig()
	cfg.Jobs = *jobs
	col, err := counters.CollectSuite(workload.SuiteScaled(*scale), cfg)
	if err != nil {
		return err
	}
	tcfg := mtree.DefaultConfig()
	tcfg.MinLeaf = *minLeaf
	tcfg.Jobs = *jobs
	tree, err := mtree.Build(col.Data, tcfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, tree.Summary())

	// Residuals are computed through the shared Model interface — the
	// same surface the serving registry uses — so this diagnostic is the
	// reference for what a served model reports.
	var m model.Model = tree
	type agg struct {
		n      int
		absErr float64
		cpi    float64
	}
	per := map[string]*agg{}
	for i := 0; i < col.Data.Len(); i++ {
		row := col.Data.Row(i)
		pred := m.Predict(row)
		act := col.Data.Target(i)
		a := per[col.Labels[i].Benchmark]
		if a == nil {
			a = &agg{}
			per[col.Labels[i].Benchmark] = a
		}
		a.n++
		a.absErr += math.Abs(pred - act)
		a.cpi += act
	}
	names := make([]string, 0, len(per))
	for n := range per {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return per[names[i]].absErr/float64(per[names[i]].n) > per[names[j]].absErr/float64(per[names[j]].n)
	})
	fmt.Fprintf(stdout, "%-16s %6s %8s %8s\n", "benchmark", "n", "meanCPI", "MAE")
	for _, n := range names {
		a := per[n]
		fmt.Fprintf(stdout, "%-16s %6d %8.3f %8.3f\n", n, a.n, a.cpi/float64(a.n), a.absErr/float64(a.n))
	}
	return nil
}
