package main

// Smoke test for the diag CLI at a reduced suite scale: the tree
// summary and the per-benchmark residual table must render with one row
// per suite benchmark.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRunReportsPerBenchmarkResiduals(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.02", "-minleaf", "20"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "benchmark") || !strings.Contains(text, "MAE") {
		t.Fatalf("missing residual table header:\n%s", text)
	}
	for _, b := range workload.Suite() {
		if !strings.Contains(text, b.Name) {
			t.Errorf("no residual row for %s:\n%s", b.Name, text)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "not-a-number"}, &out); err == nil {
		t.Fatal("bad -scale was accepted")
	}
}
