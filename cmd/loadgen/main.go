// Command loadgen synthesizes a seeded request trace and replays it
// open-loop against a running serve instance: the capacity harness
// behind `make bench-load`. The model's schema is discovered from
// GET /v1/models/{ref}, the trace is fully materialized before the
// first request (same seed = byte-identical trace, so two runs measure
// the servers, not the generator), latency is measured from scheduled
// arrivals (coordinated-omission corrected), and the client's counters
// are cross-validated against the server's own /v1/metrics.json.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8080 -model cpi
//	        [-mode steady|ramp|sweep|burst] [-duration 10s] [-rps 100]
//	        [-end-rps 400] [-steps 5]
//	        [-burst-factor 4] [-burst-period 2s] [-burst-len 250ms]
//	        [-mix predict=6,batch=2,classify=1,stream=1]
//	        [-sessions 16] [-batch 64] [-stream-batch 16]
//	        [-payload clean|corrupt] [-seed 1]
//	        [-workers 32] [-queue 256] [-max-lateness 2s] [-timeout 10s]
//	        [-out report.json] [-bench-json bench.json]
//	        [-max-error-budget 0.01] [-no-validate]
//
// The JSON report goes to -out (default stdout) and a human summary to
// stderr. -bench-json appends `go test -json`-style benchmark events
// (BenchmarkLoadgen/<mode>/<kind>/<stat>) so cmd/benchdiff can compare
// load reports across builds like any other BENCH_*.json snapshot. The
// exit status is non-zero when the counter cross-check fails or the
// error budget exceeds -max-error-budget.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tcfg := loadgen.DefaultTraceConfig()
	rcfg := loadgen.DefaultRunConfig("")

	target := fs.String("target", "http://127.0.0.1:8080", "serve base URL")
	model := fs.String("model", "", "model reference (name or name@version), required")
	mode := fs.String("mode", string(tcfg.Mode), "rate shape: steady, ramp, sweep or burst")
	fs.DurationVar(&tcfg.Duration, "duration", tcfg.Duration, "offered-traffic window")
	fs.Float64Var(&tcfg.RPS, "rps", tcfg.RPS, "base request rate")
	fs.Float64Var(&tcfg.EndRPS, "end-rps", 0, "ramp/sweep final rate (default same as -rps)")
	fs.IntVar(&tcfg.Steps, "steps", tcfg.Steps, "sweep plateau count")
	fs.Float64Var(&tcfg.BurstFactor, "burst-factor", tcfg.BurstFactor, "burst rate multiplier")
	fs.DurationVar(&tcfg.BurstPeriod, "burst-period", tcfg.BurstPeriod, "time between burst starts")
	fs.DurationVar(&tcfg.BurstLen, "burst-len", tcfg.BurstLen, "burst length")
	mix := fs.String("mix", "predict=6,batch=2,classify=1,stream=1", "traffic mix weights")
	fs.IntVar(&tcfg.Sessions, "sessions", tcfg.Sessions, "distinct synthetic client sessions")
	fs.IntVar(&tcfg.BatchSize, "batch", tcfg.BatchSize, "rows per batch predict request")
	fs.IntVar(&tcfg.StreamBatch, "stream-batch", tcfg.StreamBatch, "samples per stream request")
	payload := fs.String("payload", loadgen.PayloadClean, "stream payload profile: clean, or corrupt (one negated event per sample, for refutation drills)")
	fs.Int64Var(&tcfg.Seed, "seed", tcfg.Seed, "trace synthesis seed")
	fs.IntVar(&rcfg.Workers, "workers", rcfg.Workers, "replay worker pool size")
	fs.IntVar(&rcfg.QueueDepth, "queue", rcfg.QueueDepth, "dispatch queue depth (default workers*8)")
	fs.DurationVar(&rcfg.MaxLateness, "max-lateness", rcfg.MaxLateness, "drop requests scheduled further in the past than this")
	fs.DurationVar(&rcfg.RequestTimeout, "timeout", rcfg.RequestTimeout, "per-request timeout")
	out := fs.String("out", "", "report JSON path (default stdout)")
	benchJSON := fs.String("bench-json", "", "append go-test-json benchmark events here for cmd/benchdiff")
	maxBudget := fs.Float64("max-error-budget", 1, "fail when the error budget exceeds this fraction (1 disables)")
	noValidate := fs.Bool("no-validate", false, "skip the client-vs-server counter cross-check")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("missing -model (a registry reference like cpi or cpi@v2)")
	}
	var err error
	if tcfg.Mode, err = loadgen.ParseMode(*mode); err != nil {
		return err
	}
	if tcfg.Mix, err = loadgen.ParseMix(*mix); err != nil {
		return err
	}
	if tcfg.Payload, err = loadgen.ParsePayload(*payload); err != nil {
		return err
	}
	tcfg.Model = *model
	rcfg.BaseURL = strings.TrimRight(*target, "/")

	// Discover the model's schema from the introspection endpoint and
	// shape the trace to it.
	info, err := loadgen.FetchModelInfo(nil, rcfg.BaseURL, *model)
	if err != nil {
		return err
	}
	tcfg.Schema = loadgen.Schema{Attrs: info.Attrs, Target: info.Target}
	if !info.Classifiable && tcfg.Mix.Classify > 0 {
		fmt.Fprintf(stderr, "loadgen: model %s (%s) is not classifiable; dropping classify traffic from the mix\n",
			info.Name, info.Evaluator)
		tcfg.Mix.Classify = 0
	}

	tr, err := loadgen.Synthesize(tcfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "loadgen: %d requests over %v (%s, seed %d) -> %s model %s@%s\n",
		len(tr.Requests), tcfg.Duration, tcfg.Mode, tcfg.Seed, rcfg.BaseURL, info.Name, info.Version)

	// Ctrl-C stops dispatch; queued requests still drain and the report
	// is still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	before, err := loadgen.FetchMetrics(nil, rcfg.BaseURL)
	if err != nil {
		return err
	}
	rep, err := loadgen.Run(ctx, tr, rcfg)
	if err != nil {
		return err
	}
	if !*noValidate {
		after, err := loadgen.FetchMetrics(nil, rcfg.BaseURL)
		if err != nil {
			return err
		}
		loadgen.Validate(rep, before, after)
	}

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Fprintln(stdout, string(body))
	} else if err := os.WriteFile(*out, append(body, '\n'), 0o644); err != nil {
		return err
	}
	summarize(stderr, rep)

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, rep); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "loadgen: wrote benchmark events to %s\n", *benchJSON)
	}

	if rep.Validation != nil && !rep.Validation.Consistent {
		return fmt.Errorf("client and server counters disagree (see validation.checks in the report)")
	}
	if rep.Totals.ErrorBudget > *maxBudget {
		return fmt.Errorf("error budget %.4f exceeds limit %.4f", rep.Totals.ErrorBudget, *maxBudget)
	}
	return nil
}

// summarize prints the human-facing table to stderr: one line per
// traffic kind plus totals and the validation verdict.
func summarize(w io.Writer, rep *loadgen.Report) {
	fmt.Fprintf(w, "loadgen: wall %.2fs, offered %.1f rps, achieved %.1f rps\n",
		rep.WallSeconds, rep.Totals.OfferedRPS, rep.Totals.AchievedRPS)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %6s %9s %9s %9s %9s\n",
		"kind", "offered", "ok", "errors", "drop", "p50ms", "p95ms", "p99ms", "maxms")
	kinds := make([]string, 0, len(rep.Endpoints))
	for k := range rep.Endpoints {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ep := rep.Endpoints[k]
		fmt.Fprintf(w, "%-10s %8d %8d %8d %6d %9.3f %9.3f %9.3f %9.3f\n",
			k, ep.Offered, ep.OK, ep.Errors+ep.TransportErrors,
			ep.DroppedLate+ep.RejectedQueue,
			ep.Latency.P50Ms, ep.Latency.P95Ms, ep.Latency.P99Ms, ep.Latency.MaxMs)
	}
	t := rep.Totals
	fmt.Fprintf(w, "%-10s %8d %8d %8d %6d  error budget %.4f\n",
		"total", t.Offered, t.OK, t.Errors+t.TransportErrors,
		t.DroppedLate+t.RejectedQueue, t.ErrorBudget)
	for code, n := range errorCodes(rep) {
		fmt.Fprintf(w, "loadgen:   %d x %s\n", n, code)
	}
	switch {
	case rep.Validation == nil:
		fmt.Fprintln(w, "loadgen: validation skipped")
	case !rep.Validation.Exact:
		fmt.Fprintf(w, "loadgen: validation inexact: %s\n", rep.Validation.Note)
	case rep.Validation.Consistent:
		fmt.Fprintf(w, "loadgen: validation ok: client counters match server /v1/metrics.json exactly (%d checks)\n",
			len(rep.Validation.Checks))
	default:
		fmt.Fprintln(w, "loadgen: validation FAILED: client and server counters disagree")
	}
}

// errorCodes aggregates ErrorsByCode across endpoints.
func errorCodes(rep *loadgen.Report) map[string]int {
	all := map[string]int{}
	for _, ep := range rep.Endpoints {
		for code, n := range ep.ErrorsByCode {
			all[code] += n
		}
	}
	return all
}

// writeBenchJSON appends synthetic `go test -json` benchmark events so
// cmd/benchdiff can diff load reports like any other BENCH_*.json
// snapshot. Latencies are converted to ns/op; names carry the mode so
// runs with different shapes never compare against each other.
func writeBenchJSON(path string, rep *loadgen.Report) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	emit := func(name string, ms float64) error {
		return enc.Encode(map[string]string{
			"Action":  "output",
			"Package": "repro/cmd/loadgen",
			"Output":  fmt.Sprintf("%s 1 %.0f ns/op\n", name, ms*1e6),
		})
	}
	kinds := make([]string, 0, len(rep.Endpoints))
	for k := range rep.Endpoints {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	mode := string(rep.Config.Mode)
	for _, k := range kinds {
		ep := rep.Endpoints[k]
		if ep.OK == 0 {
			continue
		}
		base := fmt.Sprintf("BenchmarkLoadgen/%s/%s", mode, k)
		for _, stat := range []struct {
			name string
			ms   float64
		}{
			{"p50", ep.Latency.P50Ms},
			{"p95", ep.Latency.P95Ms},
			{"p99", ep.Latency.P99Ms},
			{"service_p50", ep.Service.P50Ms},
		} {
			if err := emit(base+"/"+stat.name, stat.ms); err != nil {
				return err
			}
		}
	}
	return nil
}
