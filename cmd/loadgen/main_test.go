package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/loadgen"
	"repro/internal/mtree"
	"repro/internal/serve"
)

func testServer(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "CPI"}, {Name: "L1IM"}, {Name: "L2M"}, {Name: "DtlbLdM"},
	}, 0)
	for i := 0; i < 1000; i++ {
		l1 := rng.Float64() * 0.02
		l2 := rng.Float64() * 0.005
		dt := rng.Float64() * 0.001
		d.MustAppend(dataset.Instance{0.6 + 7*l1 + 90*l2 + 40*dt, l1, l2, dt})
	}
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 60
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Register("cpi", "v1", tree, ""); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.New(reg, serve.DefaultConfig()).Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestRunEndToEnd drives the whole CLI: discovery, synthesis, replay,
// report, validation exit status, and benchdiff-compatible output.
func TestRunEndToEnd(t *testing.T) {
	base := testServer(t)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.json")
	benchPath := filepath.Join(dir, "bench.json")

	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-target", base, "-model", "cpi",
		"-mode", "steady", "-duration", "400ms", "-rps", "120",
		"-seed", "9", "-workers", "16",
		"-out", outPath, "-bench-json", benchPath,
		"-max-error-budget", "0",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Totals.OK == 0 || rep.Totals.Errors != 0 {
		t.Errorf("totals: %+v", rep.Totals)
	}
	if rep.Validation == nil || !rep.Validation.Consistent || !rep.Validation.Exact {
		t.Fatalf("validation: %+v", rep.Validation)
	}
	if !strings.Contains(stderr.String(), "validation ok") {
		t.Errorf("summary missing validation verdict:\n%s", stderr.String())
	}

	// The bench file must parse with cmd/benchdiff's line shape.
	resultRe := regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	f, err := os.Open(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	matched := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct{ Action, Package, Output string }
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bench event not JSON: %v: %s", err, sc.Text())
		}
		if resultRe.MatchString(ev.Output) {
			matched++
		}
	}
	if matched < 4 {
		t.Errorf("only %d benchdiff-parseable lines in %s", matched, benchPath)
	}
}

// TestRunFlagErrors pins the CLI's refusal paths.
func TestRunFlagErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-target", "http://127.0.0.1:0"}, &out, &errBuf); err == nil {
		t.Error("missing -model accepted")
	}
	if err := run([]string{"-model", "cpi", "-mode", "warp"}, &out, &errBuf); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run([]string{"-model", "cpi", "-mix", "bogus"}, &out, &errBuf); err == nil {
		t.Error("bad mix accepted")
	}
	base := testServer(t)
	if err := run([]string{"-target", base, "-model", "ghost"}, &out, &errBuf); err == nil {
		t.Error("unknown model accepted")
	}
	// All-error traffic must trip the budget gate... but an unknown
	// model fails discovery first, so aim real traffic at a tight
	// budget with an impossible lateness bound instead.
	err := run([]string{
		"-target", base, "-model", "cpi",
		"-duration", "200ms", "-rps", "300", "-workers", "1", "-queue", "1",
		"-max-lateness", "1ns", "-max-error-budget", "0", "-out", os.DevNull,
	}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "error budget") {
		t.Errorf("budget gate did not trip: %v", err)
	}
}
