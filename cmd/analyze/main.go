// Command analyze answers the paper's "what" and "how much" questions for
// a workload: it classifies each section through a trained model tree,
// ranks the micro-architectural events by their predicted contribution to
// CPI, and reports the split-variable impacts.
//
// Typical pipeline:
//
//	collect -out data.csv                 # simulate the suite
//	train -in data.csv -out tree.json     # fit the model tree
//	analyze -tree tree.json -bench 429.mcf
//	analyze -tree tree.json -in other.csv # analyze a pre-collected CSV
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/mtree"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	var (
		treePath = flag.String("tree", "", "trained tree JSON (from train -out) (required)")
		in       = flag.String("in", "", "section CSV to analyze")
		bench    = flag.String("bench", "", "or: simulate and analyze one suite benchmark")
		scale    = flag.Float64("scale", 0.25, "suite scale when using -bench")
		seed     = flag.Int64("seed", 99, "simulation seed when using -bench")
		impacts  = flag.Bool("impacts", false, "also print split-variable impact table")
		section  = flag.Int("section", -1, "print a full Eq.4-style decomposition of this section index")
	)
	flag.Parse()
	if *treePath == "" || (*in == "" && *bench == "") {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*treePath)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := mtree.ReadJSON(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	var d *dataset.Dataset
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		d, err = dataset.ReadCSV(f, tree.TargetName)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		b, ok := workload.BenchmarkByName(*bench)
		if !ok {
			log.Fatalf("unknown benchmark %q", *bench)
		}
		cfg := counters.DefaultCollectConfig()
		cfg.Seed = *seed
		col, err := counters.CollectBenchmark(b.Scale(*scale), cfg)
		if err != nil {
			log.Fatal(err)
		}
		d = col.Data
		fmt.Printf("simulated %s: %d sections\n\n", *bench, d.Len())
	}

	report := analysis.AnalyzeWorkload(tree, d)
	fmt.Print(report.Render())

	if *section >= 0 {
		if *section >= d.Len() {
			log.Fatalf("section %d out of range (%d sections)", *section, d.Len())
		}
		sr := analysis.AnalyzeSection(tree, d.Row(*section))
		fmt.Printf("\nsection %d: class LM%d, predicted CPI %.3f (actual %.3f)\n",
			*section, sr.LeafID, sr.PredictedCPI, d.Target(*section))
		fmt.Println("decision path:")
		for _, step := range sr.Path {
			fmt.Printf("  %s\n", step)
		}
		fmt.Printf("baseline (intercept): %.4f\n", sr.Baseline)
		fmt.Printf("%-10s %12s %12s %12s %10s\n", "event", "coef", "rate", "CPI share", "gain")
		for _, c := range sr.Contributions {
			fmt.Printf("%-10s %12.4g %12.6f %12.4f %9.1f%%\n", c.Name, c.Coef, c.Rate, c.Cycles, 100*c.Fraction)
		}
	}

	if *impacts {
		fmt.Println("\nsplit-variable impacts over this dataset:")
		fmt.Print(analysis.RenderSplitImpacts(analysis.SplitImpacts(tree, d)))
	}
}
