// Command analyze answers the paper's "what" and "how much" questions for
// a workload: it classifies each section through a trained model, ranks
// the micro-architectural events by their predicted contribution to CPI,
// and reports the split-variable impacts.
//
// It loads any persisted model — a single M5' tree from cmd/train or a
// saved bagged ensemble — through the shared Model interface. The
// tree-structure views (-section decision path, -impacts) need a single
// tree; the ranked contribution report works for every model kind.
//
// Typical pipeline:
//
//	collect -out data.csv                 # simulate the suite
//	train -in data.csv -out tree.json     # fit the model tree
//	analyze -tree tree.json -bench 429.mcf
//	analyze -tree tree.json -in other.csv # analyze a pre-collected CSV
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/modelio"
	"repro/internal/mtree"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		treePath = fs.String("tree", "", "trained model file, JSON or binary (tree from train -out, or a saved ensemble) (required)")
		in       = fs.String("in", "", "section CSV to analyze")
		bench    = fs.String("bench", "", "or: simulate and analyze one suite benchmark")
		scale    = fs.Float64("scale", 0.25, "suite scale when using -bench")
		seed     = fs.Int64("seed", 99, "simulation seed when using -bench")
		impacts  = fs.Bool("impacts", false, "also print split-variable impact table (single trees only)")
		section  = fs.Int("section", -1, "print a full Eq.4-style decomposition of this section index")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *treePath == "" || (*in == "" && *bench == "") {
		fs.Usage()
		return errors.New("-tree plus one of -in or -bench is required")
	}

	m, err := modelio.LoadFile(*treePath)
	if err != nil {
		return err
	}
	desc := m.Describe()
	fmt.Fprintf(stdout, "loaded %s: %d leaves, target %s, trained on %d sections\n\n",
		desc.Kind, desc.NumLeaves, desc.Target, desc.TrainN)

	var d *dataset.Dataset
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		d, err = dataset.ReadCSV(f, desc.Target)
		f.Close()
		if err != nil {
			return err
		}
	default:
		b, ok := workload.BenchmarkByName(*bench)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", *bench)
		}
		cfg := counters.DefaultCollectConfig()
		cfg.Seed = *seed
		col, err := counters.CollectBenchmark(b.Scale(*scale), cfg)
		if err != nil {
			return err
		}
		d = col.Data
		fmt.Fprintf(stdout, "simulated %s: %d sections\n\n", *bench, d.Len())
	}

	report := analysis.AnalyzeWorkload(m, d)
	fmt.Fprint(stdout, report.Render())

	// The tree-structure views walk pointer nodes; a compiled tree (how
	// binary model files load) decompiles to the same structure.
	tree, isTree := m.(*mtree.Tree)
	if c, ok := m.(*mtree.CompiledTree); ok {
		tree, isTree = c.Tree(), true
	}

	if *section >= 0 {
		if *section >= d.Len() {
			return fmt.Errorf("section %d out of range (%d sections)", *section, d.Len())
		}
		row := d.Row(*section)
		if isTree {
			sr := analysis.AnalyzeSection(tree, row)
			fmt.Fprintf(stdout, "\nsection %d: class LM%d, predicted %s %.3f (actual %.3f)\n",
				*section, sr.LeafID, desc.Target, sr.PredictedCPI, d.Target(*section))
			fmt.Fprintln(stdout, "decision path:")
			for _, step := range sr.Path {
				fmt.Fprintf(stdout, "  %s\n", step)
			}
			fmt.Fprintf(stdout, "baseline (intercept): %.4f\n", sr.Baseline)
			printContributions(stdout, sr.Contributions)
		} else {
			// No single decision path for an ensemble; report the
			// member-averaged decomposition instead.
			fmt.Fprintf(stdout, "\nsection %d: predicted %s %.3f (actual %.3f), %s decomposition:\n",
				*section, desc.Target, m.Predict(row), d.Target(*section), desc.Kind)
			printContributions(stdout, m.Contributions(row))
		}
	}

	if *impacts {
		if !isTree {
			return fmt.Errorf("-impacts requires a single tree; %s has no shared split structure", desc.Kind)
		}
		fmt.Fprintln(stdout, "\nsplit-variable impacts over this dataset:")
		fmt.Fprint(stdout, analysis.RenderSplitImpacts(analysis.SplitImpacts(tree, d)))
	}
	return nil
}

func printContributions(w io.Writer, cs []analysis.Contribution) {
	fmt.Fprintf(w, "%-10s %12s %12s %12s %10s\n", "event", "coef", "rate", "CPI share", "gain")
	for _, c := range cs {
		fmt.Fprintf(w, "%-10s %12.4g %12.6f %12.4f %9.1f%%\n", c.Name, c.Coef, c.Rate, c.Cycles, 100*c.Fraction)
	}
}
