// Command analyze answers the paper's "what" and "how much" questions for
// a workload: it classifies each section through a trained model, ranks
// the micro-architectural events by their predicted contribution to CPI,
// and reports the split-variable impacts.
//
// It loads any persisted model — a single M5' tree from cmd/train or a
// saved bagged ensemble — through the shared Model interface. The
// tree-structure views (-section decision path, -impacts) need a single
// tree; the ranked contribution report works for every model kind.
//
// Typical pipeline:
//
//	collect -out data.csv                 # simulate the suite
//	train -in data.csv -out tree.json     # fit the model tree
//	analyze -tree tree.json -bench 429.mcf
//	analyze -tree tree.json -in other.csv # analyze a pre-collected CSV
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/modelio"
	"repro/internal/mtree"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	var (
		treePath = flag.String("tree", "", "trained model JSON (tree from train -out, or a saved ensemble) (required)")
		in       = flag.String("in", "", "section CSV to analyze")
		bench    = flag.String("bench", "", "or: simulate and analyze one suite benchmark")
		scale    = flag.Float64("scale", 0.25, "suite scale when using -bench")
		seed     = flag.Int64("seed", 99, "simulation seed when using -bench")
		impacts  = flag.Bool("impacts", false, "also print split-variable impact table (single trees only)")
		section  = flag.Int("section", -1, "print a full Eq.4-style decomposition of this section index")
	)
	flag.Parse()
	if *treePath == "" || (*in == "" && *bench == "") {
		flag.Usage()
		os.Exit(2)
	}

	m, err := modelio.LoadFile(*treePath)
	if err != nil {
		log.Fatal(err)
	}
	desc := m.Describe()
	fmt.Printf("loaded %s: %d leaves, target %s, trained on %d sections\n\n",
		desc.Kind, desc.NumLeaves, desc.Target, desc.TrainN)

	var d *dataset.Dataset
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		d, err = dataset.ReadCSV(f, desc.Target)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		b, ok := workload.BenchmarkByName(*bench)
		if !ok {
			log.Fatalf("unknown benchmark %q", *bench)
		}
		cfg := counters.DefaultCollectConfig()
		cfg.Seed = *seed
		col, err := counters.CollectBenchmark(b.Scale(*scale), cfg)
		if err != nil {
			log.Fatal(err)
		}
		d = col.Data
		fmt.Printf("simulated %s: %d sections\n\n", *bench, d.Len())
	}

	report := analysis.AnalyzeWorkload(m, d)
	fmt.Print(report.Render())

	tree, isTree := m.(*mtree.Tree)

	if *section >= 0 {
		if *section >= d.Len() {
			log.Fatalf("section %d out of range (%d sections)", *section, d.Len())
		}
		row := d.Row(*section)
		if isTree {
			sr := analysis.AnalyzeSection(tree, row)
			fmt.Printf("\nsection %d: class LM%d, predicted %s %.3f (actual %.3f)\n",
				*section, sr.LeafID, desc.Target, sr.PredictedCPI, d.Target(*section))
			fmt.Println("decision path:")
			for _, step := range sr.Path {
				fmt.Printf("  %s\n", step)
			}
			fmt.Printf("baseline (intercept): %.4f\n", sr.Baseline)
			printContributions(sr.Contributions)
		} else {
			// No single decision path for an ensemble; report the
			// member-averaged decomposition instead.
			fmt.Printf("\nsection %d: predicted %s %.3f (actual %.3f), %s decomposition:\n",
				*section, desc.Target, m.Predict(row), d.Target(*section), desc.Kind)
			printContributions(m.Contributions(row))
		}
	}

	if *impacts {
		if !isTree {
			log.Fatalf("-impacts requires a single tree; %s has no shared split structure", desc.Kind)
		}
		fmt.Println("\nsplit-variable impacts over this dataset:")
		fmt.Print(analysis.RenderSplitImpacts(analysis.SplitImpacts(tree, d)))
	}
}

func printContributions(cs []analysis.Contribution) {
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "event", "coef", "rate", "CPI share", "gain")
	for _, c := range cs {
		fmt.Printf("%-10s %12.4g %12.6f %12.4f %9.1f%%\n", c.Name, c.Coef, c.Rate, c.Cycles, 100*c.Fraction)
	}
}
