package main

// Smoke tests for the analyze CLI against a persisted tree and a CSV:
// the workload report, the per-section Eq.4 decomposition with its
// decision path, and the split-impact table must all render.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mtree"
	"repro/internal/proptest"
)

// trainFixture persists a small tree and its training CSV to disk and
// returns both paths.
func trainFixture(t *testing.T) (treePath, csvPath string, d *dataset.Dataset) {
	t.Helper()
	d = proptest.PerfDataset(proptest.NewRand(proptest.CaseSeed("analyze-smoke", 0)), 300)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 40
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	treePath = filepath.Join(dir, "tree.json")
	csvPath = filepath.Join(dir, "data.csv")
	tf, err := os.Create(treePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if err := tree.WriteJSON(tf); err != nil {
		t.Fatal(err)
	}
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if err := d.WriteCSV(cf); err != nil {
		t.Fatal(err)
	}
	return treePath, csvPath, d
}

func TestRunAnalyzesCSV(t *testing.T) {
	treePath, csvPath, _ := trainFixture(t)
	var out bytes.Buffer
	err := run([]string{
		"-tree", treePath, "-in", csvPath, "-section", "0", "-impacts",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"loaded m5-model-tree",
		"section 0:",
		"decision path:",
		"baseline (intercept):",
		"split-variable impacts",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsSectionOutOfRange(t *testing.T) {
	treePath, csvPath, d := trainFixture(t)
	var out bytes.Buffer
	err := run([]string{"-tree", treePath, "-in", csvPath, "-section", "100000"}, &out)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want out-of-range (dataset has %d sections)", err, d.Len())
	}
}

func TestRunRequiresTreeAndInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("run without flags succeeded")
	}
	treePath, _, _ := trainFixture(t)
	if err := run([]string{"-tree", treePath}, &out); err == nil {
		t.Fatal("run without -in or -bench succeeded")
	}
}
