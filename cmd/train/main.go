// Command train fits an M5' model tree to a section dataset (CSV with a
// CPI column, as produced by cmd/collect), prints the tree with its leaf
// models, optionally cross-validates, and optionally saves the tree (JSON
// or the zero-copy binary format) for cmd/analyze and cmd/serve.
//
// Usage:
//
//	train -in data.csv [-minleaf 430] [-cv 10] [-out tree.json]
//	      [-format json|binary] [-target CPI] [-march core2]
//	      [-nosmooth] [-noprune] [-jobs N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/modelio"
	"repro/internal/mtree"
	"repro/internal/naive"
	"repro/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		in      = fs.String("in", "", "input CSV path (required)")
		target  = fs.String("target", "CPI", "target column name")
		minLeaf = fs.Int("minleaf", 430, "minimum instances per leaf (paper: 430)")
		cv      = fs.Int("cv", 0, "k for k-fold cross validation (0 = skip)")
		seed    = fs.Int64("seed", 7, "cross-validation shuffle seed")
		out     = fs.String("out", "", "write the trained tree to this path")
		format  = fs.String("format", modelio.FormatJSON, "model format for -out: json (interoperable) or binary (fast zero-copy load)")
		smooth  = fs.Bool("smooth", true, "enable M5 smoothing")
		prune   = fs.Bool("prune", true, "enable post-pruning")
		global  = fs.Bool("global", false, "also fit/evaluate a single global linear model")
		jobs    = fs.Int("jobs", 0, "worker count for CV folds, bootstrap resamples and split scoring (0 = all cores, 1 = serial; results are identical)")
		machine = fs.String("march", "", "machine the training data was collected on; recorded as the model's provenance tag (carried through persistence and GET /v1/models)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return errors.New("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	d, err := dataset.ReadCSV(f, *target)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loaded %d sections x %d attributes from %s\n\n", d.Len(), d.NumAttrs(), *in)

	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = *minLeaf
	cfg.Smooth = *smooth
	cfg.Prune = *prune
	cfg.Jobs = *jobs
	par := parallel.Config{Jobs: *jobs}

	tree, err := mtree.Build(d, cfg)
	if err != nil {
		return err
	}
	tree.Machine = *machine
	fmt.Fprintln(stdout, tree.Summary())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, tree.String())

	train, err := eval.Evaluate(tree, d)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\ntraining fit:      %s\n", train)

	if *cv >= 2 {
		learner := eval.LearnerFunc{N: "M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			return mtree.Build(d, cfg)
		}}
		res, err := eval.CrossValidate(learner, d, *cv, *seed, par)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d-fold CV pooled: %s\n", *cv, res.Pooled)
		fmt.Fprintf(stdout, "%d-fold CV mean:   %s\n", *cv, res.MeanFoldMetrics())
		if corr, mae, rae, err := eval.BootstrapCI(res.Predicted, res.Actual, 1000, 0.95, *seed, par); err == nil {
			fmt.Fprintf(stdout, "95%% bootstrap CI:  C %s  MAE %s  RAE %s\n", corr, mae, rae)
		}
	}

	if *global {
		g, err := naive.TrainGlobalLinear(d)
		if err != nil {
			return err
		}
		gm, err := eval.Evaluate(g, d)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "global linear fit: %s\n", gm)
		fmt.Fprintf(stdout, "global linear model: CPI = %s\n", g.Model)
	}

	if *out != "" {
		if err := modelio.WriteFile(*out, tree, *format); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tree written to %s (%s)\n", *out, *format)
	}
	return nil
}
