package main

// Smoke tests for the train CLI: fit a tree on a small generated CSV,
// cross-validate, persist it, and reload the persisted file.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mtree"
	"repro/internal/proptest"
)

// writeTrainCSV materializes a generated performance dataset as a CSV
// file the CLI can consume.
func writeTrainCSV(t *testing.T, rows int) string {
	t.Helper()
	d := proptest.PerfDataset(proptest.NewRand(proptest.CaseSeed("train-smoke", 0)), rows)
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTrainsEvaluatesAndPersists(t *testing.T) {
	csv := writeTrainCSV(t, 300)
	treePath := filepath.Join(t.TempDir(), "tree.json")
	var out bytes.Buffer
	err := run([]string{
		"-in", csv, "-minleaf", "40", "-cv", "2", "-global", "-out", treePath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"loaded 300 sections",
		"training fit:",
		"2-fold CV pooled:",
		"global linear fit:",
		"tree written to",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	f, err := os.Open(treePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tree, err := mtree.ReadJSON(f)
	if err != nil {
		t.Fatalf("persisted tree does not load: %v", err)
	}
	if tree.NumLeaves() < 1 {
		t.Errorf("loaded tree has %d leaves", tree.NumLeaves())
	}
}

func TestRunRequiresInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("run without -in succeeded")
	}
}

func TestRunRejectsMissingTarget(t *testing.T) {
	csv := writeTrainCSV(t, 100)
	var out bytes.Buffer
	if err := run([]string{"-in", csv, "-target", "NoSuchColumn"}, &out); err == nil {
		t.Fatal("run with an absent target column succeeded")
	}
}
