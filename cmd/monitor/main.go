// Command monitor is the online counterpart of cmd/analyze: it tails a
// stream of per-section counter samples (NDJSON), scores each section
// through a persisted model, and watches two things continuously —
// execution-phase boundaries (incremental centroid tracking over the
// counter vectors) and model drift (a Page–Hinkley test over the
// predicted-vs-observed CPI residual, the paper's regression-detection
// use case made continuous).
//
// Usage:
//
//	monitor -model tree.json [-in samples.ndjson] [-follow] [-jobs N]
//	        [-window 32] [-buffer 256] [-policy block|drop-oldest|reject]
//	        [-calibration 32] [-ph-delta 0.005] [-ph-lambda 0.25]
//	        [-events out.ndjson] [-no-samples] [-render 32] [-quiet]
//	        [-refute] [-no-refute]
//	monitor -demo [-jobs N]   # self-contained: trains a model, synthesizes
//	                          # a two-phase trace with an injected CPI
//	                          # regression, and verifies both are caught
//	monitor -demo -demo-corrupt -refute   # refutation drill: the demo trace
//	                          # carries impossible counter readings and the
//	                          # exit status reports whether the consistency
//	                          # layer refuted them
//
// Alongside the phase and drift monitors, every sample is checked
// against the counter-consistency relation catalog (internal/refute);
// -refute prints the per-relation table after the run and exits
// non-zero when the stream is refuted — counters that violate identity
// relations mean the data, not the model, is wrong.
//
// Samples are read from stdin by default, one JSON object per line:
//
//	{"bench":"mcf","section":12,"events":{"L2M":0.004,"L1IM":0.002},"cpi":1.41}
//
// Human-readable status goes to stderr; machine-readable events (NDJSON)
// go to -events (default stdout). Output is byte-identical at any -jobs
// value.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/modelio"
	"repro/internal/mtree"
	"repro/internal/refute"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("monitor: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("monitor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelPath   = fs.String("model", "", "persisted model file (tree or ensemble)")
		in          = fs.String("in", "-", "NDJSON sample stream (\"-\" = stdin)")
		follow      = fs.Bool("follow", false, "keep reading as the input file grows (tail -f)")
		jobs        = fs.Int("jobs", 0, "scoring workers (0 = all cores, 1 = serial; output is identical)")
		window      = fs.Int("window", 32, "samples scored per parallel batch")
		buffer      = fs.Int("buffer", 256, "sample ring capacity")
		policy      = fs.String("policy", "block", "ring overflow policy: block, drop-oldest or reject")
		calibration = fs.Int("calibration", 32, "sections used to calibrate phase-detector noise scales")
		phDelta     = fs.Float64("ph-delta", stream.DefaultPHConfig().Delta, "Page-Hinkley per-sample drift allowance (CPI units)")
		phLambda    = fs.Float64("ph-lambda", stream.DefaultPHConfig().Lambda, "Page-Hinkley alarm threshold (CPI units)")
		phMin       = fs.Int("ph-min", stream.DefaultPHConfig().MinSamples, "Page-Hinkley grace period (samples)")
		eventsOut   = fs.String("events", "-", "machine-readable event output (\"-\" = stdout, \"\" = none)")
		noSamples   = fs.Bool("no-samples", false, "suppress per-section \"sample\" events (keep phase/drift)")
		render      = fs.Int("render", 32, "print a rolling status line every N sections (0 = never)")
		quiet       = fs.Bool("quiet", false, "suppress all human-readable output")
		strict      = fs.Bool("strict", false, "abort on the first malformed sample instead of skipping")
		refuteFlag  = fs.Bool("refute", false, "print the counter-consistency relation table after the run; exit non-zero on a refuted verdict")
		noRefute    = fs.Bool("no-refute", false, "disable counter-consistency checking entirely")
		demo        = fs.Bool("demo", false, "run the built-in two-phase drift demo and self-verify")
		demoSeed    = fs.Int64("demo-seed", 99, "demo trace seed")
		demoCorrupt = fs.Bool("demo-corrupt", false, "poison the demo trace with impossible counter readings (refutation drill; use with -refute)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := stream.DefaultMonitorConfig()
	cfg.Jobs = *jobs
	cfg.Window = *window
	cfg.Buffer = *buffer
	cfg.Calibration = *calibration
	cfg.PH.Delta = *phDelta
	cfg.PH.Lambda = *phLambda
	cfg.PH.MinSamples = *phMin
	cfg.EmitSamples = !*noSamples
	cfg.RenderEvery = *render
	cfg.SkipInvalid = !*strict
	pol, err := stream.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	cfg.Policy = pol
	cfg.Refute.Disabled = *noRefute
	if *quiet {
		cfg.RenderEvery = 0
	}
	if *refuteFlag && *noRefute {
		return errors.New("-refute and -no-refute are mutually exclusive")
	}

	textOut := stderr
	if *quiet {
		textOut = io.Discard
	}
	var events io.Writer
	switch *eventsOut {
	case "":
		events = nil
	case "-":
		events = stdout
	default:
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		events = f
	}

	if *demo {
		return runDemo(cfg, *demoSeed, *demoCorrupt, *refuteFlag, textOut, events)
	}

	if *modelPath == "" {
		fs.Usage()
		return errors.New("-model is required (or use -demo)")
	}
	m, err := modelio.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	d := m.Describe()
	fmt.Fprintf(textOut, "monitoring with %s (%d leaves, target %s, trained on %d sections)\n",
		d.Kind, d.NumLeaves, d.Target, d.TrainN)

	r, cleanup, err := openInput(*in, *follow, stdin)
	if err != nil {
		return err
	}
	defer cleanup()

	mon, err := stream.NewMonitor(m, cfg)
	if err != nil {
		return err
	}
	if _, err := mon.Run(r, textOut, events); err != nil {
		return err
	}
	if *refuteFlag {
		return reportRefutation(mon.Processor().Refutation(), textOut)
	}
	return nil
}

// reportRefutation renders the per-relation consistency table and turns
// a refuted verdict into a non-zero exit: a refuted stream means the
// counters themselves are inconsistent, so nothing scored from them —
// predictions, phases, drift alarms — should be trusted.
func reportRefutation(rep refute.Report, w io.Writer) error {
	machine := rep.Machine
	if machine == "" {
		machine = "(untagged)"
	}
	fmt.Fprintf(w, "counter consistency: %s  (%d samples, %d windows, %d relations, machine %s)\n",
		rep.Verdict, rep.Samples, rep.Windows, len(rep.Relations), machine)
	fmt.Fprintf(w, "  %-28s %-9s %9s %6s %7s %10s  %s\n",
		"relation", "kind", "checked", "viol", "windows", "maxdev", "verdict")
	refuted := 0
	for _, rel := range rep.Relations {
		fmt.Fprintf(w, "  %-28s %-9s %9d %6d %7d %10.3g  %s\n",
			rel.Name, rel.Kind, rel.Checked, rel.Violations, rel.ViolatedWindows, rel.MaxDeviation, rel.Verdict)
		if rel.Verdict != refute.Consistent {
			fmt.Fprintf(w, "      %s  — %s\n", rel.Formula, rel.Description)
		}
		if rel.Verdict == refute.Refuted {
			refuted++
		}
	}
	if rep.Verdict == refute.Refuted {
		return fmt.Errorf("counter stream refuted: %d relation(s) violated beyond tolerance — distrust the counters, not the model", refuted)
	}
	return nil
}

// openInput opens the sample source; with follow it keeps the reader
// alive across EOF until SIGINT/SIGTERM.
func openInput(path string, follow bool, stdin io.Reader) (io.Reader, func(), error) {
	if path == "-" {
		return stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !follow {
		return f, func() { f.Close() }, nil
	}
	t := &tailReader{f: f, stop: make(chan struct{})}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(t.stop)
	}()
	return t, func() { f.Close() }, nil
}

// tailReader turns EOF into "wait for more data", ending only when
// stopped — enough to follow a growing NDJSON file.
type tailReader struct {
	f    *os.File
	stop chan struct{}
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.f.Read(p)
		if n > 0 || (err != nil && err != io.EOF) {
			return n, err
		}
		select {
		case <-t.stop:
			return 0, io.EOF
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// runDemo trains a small tree on a synthetic two-regime CPI law, streams
// a trace that changes phase at one third and suffers an unexplained
// +0.5 CPI regression at two thirds, and verifies the monitor reports
// both. It fails (and the binary exits non-zero) on any miss, so
// `monitor -demo` doubles as an end-to-end smoke test.
//
// With corrupt, the trace additionally carries impossible (negative)
// DTLB readings from the corruption point on — a refutation drill: the
// phase/drift self-checks are skipped (the trace is poisoned by design)
// and the exit status is decided by the -refute verdict instead, so
// `monitor -demo -demo-corrupt -refute` exits non-zero exactly when the
// consistency layer catches the corruption.
func runDemo(cfg stream.MonitorConfig, seed int64, corrupt, refuteFlag bool, textOut, events io.Writer) error {
	const (
		total     = 150
		boundary  = 50
		shiftAt   = 100
		corruptAt = 30
	)
	fmt.Fprintf(textOut, "demo: %d sections, phase change at %d, injected +0.5 CPI regression at %d\n",
		total, boundary, shiftAt)
	if corrupt {
		fmt.Fprintf(textOut, "demo: counter corruption (negated DtlbLdM) injected from section %d\n", corruptAt)
	}
	tree, err := demoModel(seed)
	if err != nil {
		return err
	}
	mon, err := stream.NewMonitor(tree, cfg)
	if err != nil {
		return err
	}
	badFrom := total + 1
	if corrupt {
		badFrom = corruptAt
	}
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(demoTrace(pw, total, boundary, shiftAt, 0.5, badFrom, seed))
	}()
	st, err := mon.Run(pr, textOut, events)
	if err != nil {
		return err
	}
	if refuteFlag {
		if err := reportRefutation(mon.Processor().Refutation(), textOut); err != nil {
			return err
		}
	}
	if corrupt {
		// A poisoned trace makes the phase/drift self-checks meaningless;
		// the refutation verdict above is the drill's outcome.
		return nil
	}
	fmt.Fprintf(textOut, "demo: phase boundaries %d, drift alarms %d\n", st.PhaseBoundaries, st.DriftAlarms)
	if st.PhaseBoundaries != 1 {
		return fmt.Errorf("demo FAILED: %d phase boundaries, want 1", st.PhaseBoundaries)
	}
	if st.DriftAlarms < 1 {
		return errors.New("demo FAILED: injected regression raised no drift alarm")
	}
	fmt.Fprintln(textOut, "demo: PASS")
	return nil
}

// demoLaw is the generative CPI law shared by the demo's training set
// and trace: two regimes keyed on L2M, piecewise linear in the rates.
func demoLaw(l1, l2, dt float64) float64 {
	if l2 > 0.002 {
		return 1.1 + 90*l2 + 40*dt
	}
	return 0.6 + 7*l1
}

func demoModel(seed int64) (model.Model, error) {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "CPI"}, {Name: "L1IM"}, {Name: "L2M"}, {Name: "DtlbLdM"},
	}, 0)
	for i := 0; i < 1200; i++ {
		l1 := rng.Float64() * 0.02
		l2 := rng.Float64() * 0.005
		dt := rng.Float64() * 0.001
		d.MustAppend(dataset.Instance{demoLaw(l1, l2, dt) + 0.01*rng.NormFloat64(), l1, l2, dt})
	}
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 60
	return mtree.Build(d, cfg)
}

func demoTrace(w io.Writer, total, boundary, shiftAt int, shift float64, badFrom int, seed int64) error {
	rng := rand.New(rand.NewSource(seed + 1))
	enc := json.NewEncoder(w)
	for i := 0; i < total; i++ {
		var l1, l2, dt float64
		if i < boundary {
			l1 = 0.012 + 0.0015*rng.Float64()
			l2 = 0.0008 + 0.0002*rng.Float64()
			dt = 0.0001 + 0.00005*rng.Float64()
		} else {
			l1 = 0.002 + 0.0008*rng.Float64()
			l2 = 0.004 + 0.0003*rng.Float64()
			dt = 0.0006 + 0.0001*rng.Float64()
		}
		cpi := demoLaw(l1, l2, dt) + 0.01*rng.NormFloat64()
		if i >= shiftAt {
			cpi += shift
		}
		if i >= badFrom {
			// An impossible reading: event rates cannot be negative, so
			// every sample from here on violates nonneg-DtlbLdM.
			dt = -dt
		}
		s := stream.Sample{
			Bench:   "demo",
			Section: i,
			Events:  map[string]float64{"L1IM": l1, "L2M": l2, "DtlbLdM": dt},
			CPI:     &cpi,
		}
		if err := enc.Encode(&s); err != nil {
			return err
		}
	}
	return nil
}
