package main

// Smoke tests for the monitor CLI: the self-verifying -demo mode, a
// model-file + sample-file run with NDJSON events on stdout, and the
// usage error paths.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mtree"
	"repro/internal/proptest"
	"repro/internal/stream"
)

func TestRunDemoPasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-demo", "-render", "0"}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -demo: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "demo: PASS") {
		t.Fatalf("demo did not self-verify:\n%s", stderr.String())
	}
	// Machine-readable events land on stdout as NDJSON.
	dec := json.NewDecoder(strings.NewReader(stdout.String()))
	events := 0
	for dec.More() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("non-NDJSON event output: %v", err)
		}
		if ev.Type == "" {
			t.Fatal("event without a type")
		}
		events++
	}
	if events == 0 {
		t.Fatal("demo emitted no events")
	}
}

// TestRefuteDrill pins the refutation drill's exit-status contract: the
// clean demo with -refute prints a consistent relation table and exits
// zero; the corrupted demo is refuted, names the violated relation, and
// exits non-zero; -no-refute disables checking entirely.
func TestRefuteDrill(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-demo", "-refute", "-render", "0"}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("clean demo with -refute: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "counter consistency: consistent") {
		t.Errorf("clean drill table missing the consistent verdict:\n%s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-demo", "-demo-corrupt", "-refute", "-render", "0"},
		strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Fatal("corrupted demo with -refute exited zero")
	}
	out := stderr.String()
	if !strings.Contains(out, "counter consistency: refuted") || !strings.Contains(out, "nonneg-DtlbLdM") {
		t.Errorf("corrupt drill table incomplete:\n%s", out)
	}
	if !strings.Contains(stdout.String(), `"type":"refute"`) {
		t.Error("no refute events in the NDJSON output")
	}

	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-demo", "-demo-corrupt", "-no-refute", "-render", "0"},
		strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("corrupted demo with -no-refute failed: %v\n%s", err, stderr.String())
	}
	if err := run([]string{"-demo", "-refute", "-no-refute"},
		strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("-refute together with -no-refute was accepted")
	}
}

func TestRunScoresSampleFile(t *testing.T) {
	r := proptest.NewRand(proptest.CaseSeed("monitor-smoke", 0))
	d := proptest.PerfDataset(r, 300)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 40
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	treePath := filepath.Join(dir, "tree.json")
	tf, err := os.Create(treePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.WriteJSON(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	const samples = 40
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	for i := 0; i < samples; i++ {
		cpi := r.Range(0.5, 2)
		s := stream.Sample{Section: i, CPI: &cpi, Events: map[string]float64{
			"L1IM": r.Range(0, 0.01), "L2M": r.Range(0, 0.004), "DtlbLdM": r.Range(0, 0.001),
		}}
		if err := enc.Encode(&s); err != nil {
			t.Fatal(err)
		}
	}
	inPath := filepath.Join(dir, "samples.ndjson")
	if err := os.WriteFile(inPath, ndjson.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err = run([]string{"-model", treePath, "-in", inPath, "-quiet"},
		strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stderr.String())
	}
	got := 0
	dec := json.NewDecoder(strings.NewReader(stdout.String()))
	for dec.More() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "sample" {
			got++
		}
	}
	if got != samples {
		t.Fatalf("%d sample events for %d input samples", got, samples)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("run without -model or -demo succeeded")
	}
	if err := run([]string{"-model", "/no/such/model.json"},
		strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("unreadable -model path was accepted")
	}
	if err := run([]string{"-demo", "-policy", "bogus"},
		strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("unknown -policy was accepted")
	}
}
