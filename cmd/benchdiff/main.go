// Command benchdiff compares two benchmark snapshots produced by
// `make bench-json` (`go test -json` streams) and prints a per-benchmark
// ns/op table with the relative change. It is a dependency-free stand-in
// for benchstat, meant for the informational `make bench-compare` gate:
// with -threshold 0 (the default) it never fails, so noisy CI machines
// cannot turn a perf wobble into a red build; passing a positive
// -threshold makes regressions beyond that percentage fatal for local,
// quiet-machine use.
//
// Usage:
//
//	benchdiff -old BENCH_2026-08-06.json -new /tmp/bench.json [-threshold 20]
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the `go test -json` record benchdiff needs.
type event struct {
	Action  string
	Package string
	Output  string
}

// resultRe matches a benchmark result line. The -8 style GOMAXPROCS
// suffix is stripped so snapshots from different machines compare.
var resultRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// load returns benchmark name -> best (minimum) ns/op. Minimum, not mean:
// the minimum of repeated runs is the least noise-contaminated estimate
// of the code's cost.
//
// `go test -json` splits one text line across several Output events (the
// padded benchmark name and its measurements arrive separately), so the
// Output fragments are stitched back together per package and split on
// real newlines before matching.
func load(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	text := map[string]*strings.Builder{}
	order := []string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate plain-text lines
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := text[ev.Package]
		if !ok {
			b = &strings.Builder{}
			text[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, pkg := range order {
		for _, line := range strings.Split(text[pkg].String(), "\n") {
			m := resultRe.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			key := pkg + " " + m[1]
			if old, ok := out[key]; !ok || ns < old {
				out[key] = ns
			}
		}
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	oldPath := fs.String("old", "", "baseline snapshot (go test -json)")
	newPath := fs.String("new", "", "candidate snapshot (go test -json)")
	threshold := fs.Float64("threshold", 0, "fail if any benchmark regresses by more than this percent (0 = never fail)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return errors.New("both -old and -new are required")
	}

	oldNs, err := load(*oldPath)
	if err != nil {
		return err
	}
	newNs, err := load(*newPath)
	if err != nil {
		return err
	}

	keys := make([]string, 0, len(oldNs))
	for k := range oldNs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Fprintf(stdout, "%-64s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	worst := 0.0
	for _, k := range keys {
		o := oldNs[k]
		n, ok := newNs[k]
		if !ok {
			fmt.Fprintf(stdout, "%-64s %14.0f %14s %9s\n", k, o, "-", "gone")
			continue
		}
		delta := (n - o) / o * 100
		if delta > worst {
			worst = delta
		}
		fmt.Fprintf(stdout, "%-64s %14.0f %14.0f %+8.1f%%\n", k, o, n, delta)
	}
	newOnly := make([]string, 0, len(newNs))
	for k := range newNs {
		if _, ok := oldNs[k]; !ok {
			newOnly = append(newOnly, k)
		}
	}
	sort.Strings(newOnly)
	for _, k := range newOnly {
		fmt.Fprintf(stdout, "%-64s %14s %14.0f %9s\n", k, "-", newNs[k], "new")
	}

	if *threshold > 0 && worst > *threshold {
		return fmt.Errorf("worst regression %+.1f%% exceeds threshold %.1f%%", worst, *threshold)
	}
	return nil
}
