package main

// Unit tests for the benchdiff parser and comparison math, driven by
// golden fixture files holding `go test -json` streams: split output
// lines must be stitched, GOMAXPROCS suffixes stripped, repeated runs
// reduced to their minimum, and the threshold gate must fail only on
// regressions beyond it.

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadParsesGoTestJSON(t *testing.T) {
	got, err := load(filepath.Join("testdata", "old.json"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		// Two runs of BenchmarkBuild: the minimum wins. The second run's
		// name and measurements arrive in separate output events, so this
		// also pins the line-stitching behavior.
		"repro/internal/mtree BenchmarkBuild":   1100,
		"repro/internal/mtree BenchmarkGone":    500,
		"repro/internal/serve BenchmarkPredict": 800.5,
	}
	if len(got) != len(want) {
		t.Fatalf("load returned %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v ns/op, want %v", k, got[k], v)
		}
	}
}

func TestLoadStripsGOMAXPROCSSuffix(t *testing.T) {
	// old.json runs at -8/-16, new.json at -4: keys must still align.
	oldNs, err := load(filepath.Join("testdata", "old.json"))
	if err != nil {
		t.Fatal(err)
	}
	newNs, err := load(filepath.Join("testdata", "new.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"repro/internal/mtree BenchmarkBuild", "repro/internal/serve BenchmarkPredict"} {
		if _, ok := oldNs[k]; !ok {
			t.Errorf("old snapshot missing %q", k)
		}
		if _, ok := newNs[k]; !ok {
			t.Errorf("new snapshot missing %q", k)
		}
	}
}

func TestRunComparisonTable(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-old", filepath.Join("testdata", "old.json"),
		"-new", filepath.Join("testdata", "new.json"),
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"BenchmarkBuild", "-18.2%", // (900-1100)/1100
		"BenchmarkPredict", "+24.9%", // (1000-800.5)/800.5
		"BenchmarkGone", "gone",
		"BenchmarkNew", "new",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunThresholdGate(t *testing.T) {
	args := func(threshold string) []string {
		return []string{
			"-old", filepath.Join("testdata", "old.json"),
			"-new", filepath.Join("testdata", "new.json"),
			"-threshold", threshold,
		}
	}
	var out bytes.Buffer
	// Worst regression is +24.9% (BenchmarkPredict).
	if err := run(args("10"), &out); err == nil {
		t.Error("threshold 10 did not fail on a +24.9% regression")
	} else if !strings.Contains(err.Error(), "exceeds threshold") {
		t.Errorf("unexpected threshold error: %v", err)
	}
	if err := run(args("30"), &out); err != nil {
		t.Errorf("threshold 30 failed on a +24.9%% regression: %v", err)
	}
	if err := run(args("0"), &out); err != nil {
		t.Errorf("threshold 0 must never fail: %v", err)
	}
}

func TestRunRequiresBothSnapshots(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-old", "x.json"}, &out); err == nil {
		t.Error("missing -new was accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Error("no arguments were accepted")
	}
}
