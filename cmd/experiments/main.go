// Command experiments reproduces the paper's tables and figures (and the
// repository's ablations) on the simulated substrate and prints a
// paper-vs-measured comparison for each.
//
// Usage:
//
//	experiments                 # run everything at paper scale
//	experiments -run accuracy   # one experiment
//	experiments -list           # list experiment names
//	experiments -scale 0.2      # faster, reduced-scale run
//	experiments -jobs 1         # force fully serial execution
//	experiments -march nehalem  # run the suite on another registry machine
//	experiments -crossarch      # shorthand for -run crossarch
//
// Independent experiments run concurrently (-jobs workers, default all
// cores) and every layer below them — suite simulation, CV folds, bagged
// trees, split scoring — uses the same worker budget. Output is printed
// in registry order and is byte-identical for every -jobs value.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/march"
	"repro/internal/parallel"
	"repro/internal/profiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run       = flag.String("run", "", "comma-separated experiment names (default: all)")
		list      = flag.Bool("list", false, "list experiments and exit")
		scale     = flag.Float64("scale", 1.0, "suite size multiplier")
		minLeaf   = flag.Int("minleaf", 430, "M5' minimum leaf population at scale 1.0")
		folds     = flag.Int("cv", 10, "cross-validation folds")
		seed      = flag.Int64("seed", 42, "random seed")
		jobs      = flag.Int("jobs", 0, "worker count for experiments and all parallel stages (0 = all cores, 1 = serial; results are identical)")
		marchN    = flag.String("march", "", "built-in machine preset the shared collection simulates (default core2)")
		marchF    = flag.String("march-file", "", "JSON machine-spec file for the shared collection (mutually exclusive with -march)")
		crossarch = flag.Bool("crossarch", false, "run only the cross-architecture experiment (shorthand for -run crossarch)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			log.Print(err)
		}
	}()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.Name, e.Desc)
		}
		return
	}

	spec, err := march.Resolve(*marchN, *marchF)
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.DefaultConfig()
	cfg.Machine = spec
	cfg.Scale = *scale
	cfg.MinLeaf = *minLeaf
	cfg.Folds = *folds
	cfg.Seed = *seed
	cfg.Jobs = *jobs
	ctx := experiments.NewContext(cfg)

	var selected []experiments.Experiment
	if *crossarch {
		if *run != "" {
			log.Fatal("-crossarch and -run are mutually exclusive")
		}
		*run = "crossarch"
	}
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			e, ok := experiments.ByName(name)
			if !ok {
				log.Fatalf("unknown experiment %q (use -list)", name)
			}
			selected = append(selected, e)
		}
	}

	// Experiments are independent given the shared (once-guarded)
	// collection, so they run concurrently; results are buffered and
	// printed in registry order.
	type outcome struct {
		res experiments.Result
		dur time.Duration
	}
	outs, err := parallel.Map(parallel.Config{Jobs: *jobs}, selected,
		func(_ int, e experiments.Experiment) (outcome, error) {
			start := time.Now()
			res, err := e.Run(ctx)
			if err != nil {
				return outcome{}, fmt.Errorf("%s: %w", e.Name, err)
			}
			return outcome{res: res, dur: time.Since(start)}, nil
		})
	if err != nil {
		log.Fatal(err)
	}
	failures := 0
	for i, o := range outs {
		fmt.Println(o.res.Render())
		fmt.Printf("(%s completed in %v)\n\n", selected[i].Name, o.dur.Round(time.Millisecond))
		for _, c := range o.res.Claims {
			if !c.Holds {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Printf("%d claim(s) diverge from the paper; see EXPERIMENTS.md for discussion.\n", failures)
		os.Exit(0) // divergences are reported, not fatal
	}
}
