// Command experiments reproduces the paper's tables and figures (and the
// repository's ablations) on the simulated substrate and prints a
// paper-vs-measured comparison for each.
//
// Usage:
//
//	experiments                 # run everything at paper scale
//	experiments -run accuracy   # one experiment
//	experiments -list           # list experiment names
//	experiments -scale 0.2      # faster, reduced-scale run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run     = flag.String("run", "", "comma-separated experiment names (default: all)")
		list    = flag.Bool("list", false, "list experiments and exit")
		scale   = flag.Float64("scale", 1.0, "suite size multiplier")
		minLeaf = flag.Int("minleaf", 430, "M5' minimum leaf population at scale 1.0")
		folds   = flag.Int("cv", 10, "cross-validation folds")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.Name, e.Desc)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.MinLeaf = *minLeaf
	cfg.Folds = *folds
	cfg.Seed = *seed
	ctx := experiments.NewContext(cfg)

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			e, ok := experiments.ByName(name)
			if !ok {
				log.Fatalf("unknown experiment %q (use -list)", name)
			}
			selected = append(selected, e)
		}
	}

	failures := 0
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(ctx)
		if err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
		for _, c := range res.Claims {
			if !c.Holds {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Printf("%d claim(s) diverge from the paper; see EXPERIMENTS.md for discussion.\n", failures)
		os.Exit(0) // divergences are reported, not fatal
	}
}
