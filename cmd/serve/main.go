// Command serve exposes trained CPI models over HTTP: the paper's
// train-once / analyze-many oracle as an online service. Models persisted
// by cmd/train (single M5' trees) or saved as bagged ensembles — JSON or
// the zero-copy binary format, sniffed automatically — are loaded
// into a named, versioned registry, compiled to flat-array evaluators,
// and served at /v1/predict (single +
// batch, optional per-event contribution breakdown), /v1/classify (leaf
// id + decision path), /v1/stream (NDJSON ingestion into a persistent
// per-model phase/drift monitor), /v1/models (listing) and
// /v1/models/{ref} (schema, versions, source format, evaluator kind),
// /healthz, /metrics (text exposition) and /v1/metrics.json (structured
// per-route counters + latency histograms). Errors are uniform
// {"error":{"code","message"}} envelopes with stable codes.
//
// Usage:
//
//	serve -model cpi=tree.json [-model cpi@v2=tree2.json] [-addr :8080]
//	      [-jobs N] [-cache 4096] [-cache-quantum 0] [-timeout 10s]
//	      [-max-body 1048576] [-max-batch 4096]
//	      [-stream-window 32] [-stream-buffer 256]
//	      [-stream-policy block|drop-oldest|reject]
//	      [-session-ttl 15m] [-session-shards 16]
//	      [-pprof 127.0.0.1:6060]
//	serve -demo                 # no files: trains a small tree in-process
//
// -pprof serves net/http/pprof on its own listener (keep it off the
// public address) with mutex and block profiling enabled, so lock
// contention in the serving hot path is observable in production.
//
// Model flags take name=path or name@version=path; an unversioned name
// registers as v1, and a bare reference in requests resolves to the most
// recently registered version of that name.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/counters"
	"repro/internal/mtree"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/workload"
)

// modelFlags collects repeated -model name[@version]=path arguments.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ",") }

func (m *modelFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	if err := run(os.Args[1:], os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, logOut io.Writer) error {
	srv, pprofSrv, nmodels, err := newServer(args, logOut)
	if err != nil {
		return err
	}
	if pprofSrv != nil {
		fmt.Fprintf(logOut, "serve: pprof on %s\n", pprofSrv.Addr)
		go func() {
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(logOut, "serve: pprof server: %v\n", err)
			}
		}()
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then let
	// in-flight requests drain within a deadline.
	done := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(logOut, "serve: shutting down...")
		if pprofSrv != nil {
			_ = pprofSrv.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	fmt.Fprintf(logOut, "serve: serving %d model(s) on %s\n", nmodels, srv.Addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// newServer parses the command line and assembles the HTTP server; it
// performs no network I/O, so tests can drive the returned handler
// directly. The second server is the optional -pprof debug listener
// (nil when disabled); the int is the number of registered models.
func newServer(args []string, logOut io.Writer) (*http.Server, *http.Server, int, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(logOut)
	var models modelFlags
	fs.Var(&models, "model", "model to serve, as name=path or name@version=path (repeatable)")
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		jobs      = fs.Int("jobs", 0, "batch-prediction workers (0 = all cores, 1 = serial; responses are identical)")
		cacheSize = fs.Int("cache", 4096, "LRU prediction cache entries (0 disables)")
		quantum   = fs.Float64("cache-quantum", 0, "cache key quantization step (0 = exact bits, hits cannot change responses)")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-request handler timeout (0 disables; /v1/stream streams and is exempt)")
		maxBody   = fs.Int64("max-body", 1<<20, "maximum request body bytes")
		maxBatch  = fs.Int("max-batch", 4096, "maximum rows per request")
		streamWin = fs.Int("stream-window", stream.DefaultConfig().Window, "/v1/stream samples scored per parallel batch")
		streamBuf = fs.Int("stream-buffer", stream.DefaultConfig().Buffer, "/v1/stream sample ring capacity")
		streamPol = fs.String("stream-policy", "block", "/v1/stream ring overflow policy: block, drop-oldest or reject")
		sessTTL   = fs.Duration("session-ttl", serve.DefaultConfig().SessionTTL, "evict /v1/stream sessions idle this long (0 keeps them forever)")
		sessShard = fs.Int("session-shards", serve.DefaultConfig().SessionShards, "stream session table stripes (rounded up to a power of two)")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this extra address with mutex/block profiling on (empty disables)")
		demo      = fs.Bool("demo", false, "train a small tree on the built-in simulator and serve it as \"demo\"")
		demoScale = fs.Float64("demo-scale", 0.05, "suite scale for -demo training")
	)
	if err := fs.Parse(args); err != nil {
		return nil, nil, 0, err
	}
	if len(models) == 0 && !*demo {
		fs.Usage()
		return nil, nil, 0, errors.New("at least one -model (or -demo) is required")
	}

	reg := serve.NewRegistry()
	for _, spec := range models {
		ref, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, nil, 0, fmt.Errorf("-model %q: want name=path or name@version=path", spec)
		}
		name, version, pinned := strings.Cut(ref, "@")
		if !pinned {
			version = "v1"
		}
		if err := reg.LoadFile(name, version, path); err != nil {
			return nil, nil, 0, err
		}
		e, _ := reg.Get(name + "@" + version)
		d := e.Model.Describe()
		fmt.Fprintf(logOut, "serve: loaded %s@%s from %s: %s, %d leaves, target %s, trained on %d sections\n",
			name, version, path, d.Kind, d.NumLeaves, d.Target, d.TrainN)
	}
	if *demo {
		tree, err := trainDemo(*demoScale, *jobs)
		if err != nil {
			return nil, nil, 0, err
		}
		if err := reg.Register("demo", "v1", tree, ""); err != nil {
			return nil, nil, 0, err
		}
		d := tree.Describe()
		fmt.Fprintf(logOut, "serve: trained demo@v1 in-process: %d leaves over %d sections\n", d.NumLeaves, d.TrainN)
	}

	cfg := serve.DefaultConfig()
	cfg.Jobs = *jobs
	cfg.CacheSize = *cacheSize
	cfg.CacheQuantum = *quantum
	cfg.MaxBodyBytes = *maxBody
	cfg.MaxBatch = *maxBatch
	cfg.RequestTimeout = *timeout
	cfg.Stream.Window = *streamWin
	cfg.Stream.Buffer = *streamBuf
	pol, err := stream.ParsePolicy(*streamPol)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg.Stream.Policy = pol
	cfg.SessionTTL = *sessTTL
	cfg.SessionShards = *sessShard

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(reg, cfg).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofSrv = newPprofServer(*pprofAddr)
	}
	return srv, pprofSrv, reg.Len(), nil
}

// newPprofServer builds the optional debug listener: the net/http/pprof
// handlers on a dedicated mux (never the service mux, and never
// http.DefaultServeMux), with the runtime's mutex and block profilers
// sampling so /debug/pprof/mutex and /debug/pprof/block actually show
// the serving hot path's lock contention.
func newPprofServer(addr string) *http.Server {
	// Sample a fraction of contention events: cheap enough to leave on,
	// dense enough that a loadgen run paints the contended locks.
	runtime.SetMutexProfileFraction(100)
	runtime.SetBlockProfileRate(1_000_000) // one sample per ~1ms blocked
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
}

// trainDemo collects a reduced-scale suite on the built-in simulator and
// fits a paper-style tree — a self-contained model for smoke tests and
// first contact with the API.
func trainDemo(scale float64, jobs int) (*mtree.Tree, error) {
	ccfg := counters.DefaultCollectConfig()
	ccfg.Jobs = jobs
	col, err := counters.CollectSuite(workload.SuiteScaled(scale), ccfg)
	if err != nil {
		return nil, fmt.Errorf("demo collection: %w", err)
	}
	tcfg := mtree.DefaultConfig()
	// Scale the paper's 430-instance leaf floor with the reduced suite.
	tcfg.MinLeaf = col.Data.Len() / 20
	if tcfg.MinLeaf < 4 {
		tcfg.MinLeaf = 4
	}
	tcfg.Jobs = jobs
	tree, err := mtree.Build(col.Data, tcfg)
	if err != nil {
		return nil, fmt.Errorf("demo training: %w", err)
	}
	tree.Machine = ccfg.Machine
	return tree, nil
}
