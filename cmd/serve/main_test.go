package main

// Smoke tests for the serve CLI's assembly path: newServer parses the
// command line, loads the model files into the registry, and returns a
// fully wired handler — all without touching the network.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mtree"
	"repro/internal/proptest"
)

// writeTreeFile persists a small trained tree for -model flags.
func writeTreeFile(t *testing.T) string {
	t.Helper()
	d := proptest.PerfDataset(proptest.NewRand(proptest.CaseSeed("serve-smoke", 0)), 300)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 40
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tree.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tree.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNewServerServesLoadedModel(t *testing.T) {
	treePath := writeTreeFile(t)
	var logBuf bytes.Buffer
	srv, pprofSrv, nmodels, err := newServer([]string{
		"-model", "cpi=" + treePath,
		"-model", "cpi@v2=" + treePath,
		"-addr", "127.0.0.1:0",
	}, &logBuf)
	if err != nil {
		t.Fatalf("newServer: %v\n%s", err, logBuf.String())
	}
	if nmodels != 2 {
		t.Fatalf("registered %d models, want 2", nmodels)
	}
	if pprofSrv != nil {
		t.Fatal("pprof server built without -pprof")
	}
	h := srv.Handler

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/models", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"cpi"`) {
		t.Fatalf("/v1/models status %d body %s", rec.Code, rec.Body)
	}

	body := `{"model":"cpi","row":[0,0.005,0.001,0.0002]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"predictions"`) {
		t.Fatalf("/v1/predict status %d body %s", rec.Code, rec.Body)
	}
}

func TestNewServerFlagErrors(t *testing.T) {
	var logBuf bytes.Buffer
	if _, _, _, err := newServer(nil, &logBuf); err == nil {
		t.Error("no -model and no -demo was accepted")
	}
	if _, _, _, err := newServer([]string{"-model", "missing-equals"}, &logBuf); err == nil {
		t.Error("malformed -model spec was accepted")
	}
	if _, _, _, err := newServer([]string{"-model", "cpi=/no/such/file.json"}, &logBuf); err == nil {
		t.Error("unreadable model path was accepted")
	}
	treePath := writeTreeFile(t)
	if _, _, _, err := newServer([]string{
		"-model", "cpi=" + treePath, "-stream-policy", "bogus",
	}, &logBuf); err == nil {
		t.Error("unknown -stream-policy was accepted")
	}
}

// TestNewServerPprofFlag checks the optional debug listener: -pprof
// assembles a second server on its own address whose mux answers the
// pprof index (mutex and block profiles included) while the service
// handler stays pprof-free.
func TestNewServerPprofFlag(t *testing.T) {
	treePath := writeTreeFile(t)
	var logBuf bytes.Buffer
	srv, pprofSrv, _, err := newServer([]string{
		"-model", "cpi=" + treePath,
		"-addr", "127.0.0.1:0",
		"-pprof", "127.0.0.1:0",
	}, &logBuf)
	if err != nil {
		t.Fatalf("newServer: %v\n%s", err, logBuf.String())
	}
	if pprofSrv == nil {
		t.Fatal("-pprof did not build a debug server")
	}
	rec := httptest.NewRecorder()
	pprofSrv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "mutex") {
		t.Fatalf("pprof index status %d body %.200s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code == http.StatusOK {
		t.Fatal("service handler answers /debug/pprof/ — profiling leaked onto the public mux")
	}
}

func TestNewServerDemoMode(t *testing.T) {
	var logBuf bytes.Buffer
	srv, _, nmodels, err := newServer([]string{"-demo", "-demo-scale", "0.02", "-addr", "127.0.0.1:0"}, &logBuf)
	if err != nil {
		t.Fatalf("newServer -demo: %v\n%s", err, logBuf.String())
	}
	if nmodels != 1 {
		t.Fatalf("registered %d models, want 1", nmodels)
	}
	rec := httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/models", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"demo"`) {
		t.Fatalf("/v1/models status %d body %s", rec.Code, rec.Body)
	}
	if !strings.Contains(logBuf.String(), "trained demo@v1") {
		t.Errorf("log missing demo training line: %s", logBuf.String())
	}
}
