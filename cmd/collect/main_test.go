package main

// Smoke tests for the collect CLI: a reduced-scale single-benchmark run
// must produce a loadable CSV (and provenance labels), the summary mode
// must render, and bad flags must fail instead of writing garbage.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunWritesLoadableCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "data.csv")
	labels := filepath.Join(dir, "labels.csv")
	var buf bytes.Buffer
	err := run([]string{
		"-bench", "429.mcf", "-scale", "0.05", "-section", "5000",
		"-out", out, "-labels", labels,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := dataset.ReadCSV(f, "CPI")
	if err != nil {
		t.Fatalf("output CSV does not load: %v", err)
	}
	if d.Len() == 0 {
		t.Fatal("output CSV has no sections")
	}
	lb, err := os.ReadFile(labels)
	if err != nil {
		t.Fatal(err)
	}
	text := string(lb)
	if !strings.HasPrefix(text, "benchmark,phase,section\n") {
		t.Errorf("labels file missing header: %q", text[:min(len(text), 40)])
	}
	if !strings.Contains(text, "429.mcf") {
		t.Error("labels file does not name the benchmark")
	}
	if got := strings.Count(text, "\n") - 1; got != d.Len() {
		t.Errorf("%d label rows for %d sections", got, d.Len())
	}
}

func TestRunCSVToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bench", "429.mcf", "-scale", "0.05", "-section", "5000"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	d, err := dataset.ReadCSV(strings.NewReader(buf.String()), "CPI")
	if err != nil {
		t.Fatalf("stdout CSV does not load: %v", err)
	}
	if d.Len() == 0 {
		t.Fatal("no sections on stdout")
	}
}

func TestRunSummary(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-bench", "429.mcf", "-scale", "0.05", "-section", "5000", "-summary"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "CPI") {
		t.Errorf("summary does not mention the target column:\n%s", buf.String())
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-bench", "999.nope"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("err = %v, want unknown-benchmark error", err)
	}
	if !strings.Contains(err.Error(), "429.mcf") {
		t.Errorf("error does not list available benchmarks: %v", err)
	}
}
