// Command collect runs the simulated SPEC-like suite on a registry
// machine (default: the Core-2-Duo-like seed core) and writes the
// section dataset (Table I per-instruction ratios plus CPI) as CSV, one
// row per section.
//
// Usage:
//
//	collect [-out data.csv] [-labels labels.csv] [-scale 1.0]
//	        [-section 20000] [-seed 42] [-bench 429.mcf] [-summary]
//	        [-march nehalem | -march-file spec.json] [-arch-features]
//	        [-jobs N] [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/counters"
	"repro/internal/march"
	"repro/internal/profiling"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("collect: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		out     = fs.String("out", "", "output CSV path (default stdout)")
		labels  = fs.String("labels", "", "optional per-row provenance CSV path")
		scale   = fs.Float64("scale", 1.0, "suite size multiplier")
		section = fs.Uint64("section", 20000, "retired instructions per section")
		seed    = fs.Int64("seed", 42, "workload synthesis seed")
		bench   = fs.String("bench", "", "collect a single named benchmark (default: whole suite)")
		summary = fs.Bool("summary", false, "print a per-column summary instead of CSV")
		jobs    = fs.Int("jobs", 0, "benchmarks simulated concurrently (0 = all cores, 1 = serial; output is identical)")
		marchN  = fs.String("march", "", "built-in machine preset to simulate (default core2; see internal/march)")
		marchF  = fs.String("march-file", "", "JSON machine-spec file to simulate (mutually exclusive with -march)")
		archF   = fs.Bool("arch-features", false, "append the machine's Arch* feature columns to every row (for pooled cross-architecture training sets)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the collection to this file")
		memProf = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		return err
	}
	defer stopProf()
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			log.Print(err)
		}
	}()

	spec, err := march.Resolve(*marchN, *marchF)
	if err != nil {
		return err
	}
	cfg := counters.CollectConfigFor(spec)
	cfg.SectionLen = *section
	cfg.Seed = *seed
	cfg.Jobs = *jobs

	var suite []workload.Benchmark
	if *bench != "" {
		b, ok := workload.BenchmarkByName(*bench)
		if !ok {
			var names []string
			for _, s := range workload.Suite() {
				names = append(names, s.Name)
			}
			return fmt.Errorf("unknown benchmark %q; available: %s", *bench, strings.Join(names, ", "))
		}
		suite = []workload.Benchmark{b.Scale(*scale)}
	} else {
		suite = workload.SuiteScaled(*scale)
	}

	col, err := counters.CollectSuite(suite, cfg)
	if err != nil {
		return err
	}
	if *archF {
		col, err = col.WithArchFeatures(spec)
		if err != nil {
			return err
		}
	}
	if *summary {
		fmt.Fprint(stdout, col.Data.Summary())
		return nil
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := col.Data.WriteCSV(w); err != nil {
		return err
	}
	if *labels != "" {
		f, err := os.Create(*labels)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "benchmark,phase,section")
		for _, l := range col.Labels {
			fmt.Fprintf(f, "%s,%d,%d\n", l.Benchmark, l.Phase, l.Section)
		}
	}
	return nil
}
