// Determinism regression tests for the parallel execution layer: every
// concurrent stage — suite simulation, split scoring, CV folds, bootstrap
// resampling, bagged trees — must produce byte-identical results at
// Jobs=1 (the exact serial path), Jobs=4, and Jobs=GOMAXPROCS. These
// tests are the enforcement of the contract documented in DESIGN.md
// ("Parallel execution"); run them with -race to also prove the
// goroutine code clean.
package repro_test

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/march"
	"repro/internal/mtree"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// jobVariants are the worker counts every stage is checked across.
func jobVariants() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// detDataset synthesizes a deterministic piecewise-linear dataset large
// enough (n >= splitParallelMinRows) that mtree's concurrent
// split-scoring path is actually exercised at the root.
func detDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "y"}, {Name: "x1"}, {Name: "x2"}, {Name: "x3"}, {Name: "const"},
	}, 0)
	for i := 0; i < n; i++ {
		x1 := rng.Float64() * 4
		x2 := rng.Float64() * 4
		x3 := rng.Float64() * 4
		y := 1 + 0.5*x2
		if x1 > 2 {
			y = 10 + 2*x3
		}
		// "const" is identical everywhere: it exercises the
		// constant-attribute skip in the split search.
		d.MustAppend(dataset.Instance{y + 0.1*rng.NormFloat64(), x1, x2, x3, 3.25})
	}
	return d
}

// TestCollectSuiteDeterministicAcrossJobs asserts the collection dataset
// (rows, labels and breakdown count) hashes identically for every worker
// count.
func TestCollectSuiteDeterministicAcrossJobs(t *testing.T) {
	suite := workload.SuiteScaled(0.03)
	var want [32]byte
	var wantLabels []counters.SectionLabel
	for i, jobs := range jobVariants() {
		cfg := counters.DefaultCollectConfig()
		cfg.Jobs = jobs
		col, err := counters.CollectSuite(suite, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := col.Data.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(buf.Bytes())
		if i == 0 {
			want = h
			wantLabels = col.Labels
			continue
		}
		if h != want {
			t.Errorf("jobs=%d produced a different dataset hash than jobs=1", jobs)
		}
		if len(col.Labels) != len(wantLabels) {
			t.Fatalf("jobs=%d produced %d labels, want %d", jobs, len(col.Labels), len(wantLabels))
		}
		for j := range col.Labels {
			if col.Labels[j] != wantLabels[j] {
				t.Fatalf("jobs=%d label %d = %+v, want %+v", jobs, j, col.Labels[j], wantLabels[j])
			}
		}
	}
}

// TestTreeDeterministicAcrossJobs asserts the rendered tree structure and
// rule set are identical for every split-scoring worker count.
func TestTreeDeterministicAcrossJobs(t *testing.T) {
	d := detDataset(3000, 11)
	var wantTree, wantRules string
	for i, jobs := range jobVariants() {
		cfg := mtree.DefaultConfig()
		cfg.MinLeaf = 50
		cfg.Jobs = jobs
		tree, err := mtree.Build(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotTree, gotRules := tree.String(), tree.RenderRules()
		if i == 0 {
			wantTree, wantRules = gotTree, gotRules
			continue
		}
		if gotTree != wantTree {
			t.Errorf("jobs=%d tree differs from jobs=1:\n%s\nvs\n%s", jobs, gotTree, wantTree)
		}
		if gotRules != wantRules {
			t.Errorf("jobs=%d rules differ from jobs=1", jobs)
		}
	}
}

// TestCrossValidateDeterministicAcrossJobs asserts pooled metrics and the
// out-of-fold prediction vector are bit-identical for every fold worker
// count.
func TestCrossValidateDeterministicAcrossJobs(t *testing.T) {
	d := detDataset(2500, 12)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 50
	learner := eval.LearnerFunc{N: "M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return mtree.Build(d, cfg)
	}}
	var want eval.CVResult
	for i, jobs := range jobVariants() {
		res, err := eval.CrossValidate(learner, d, 5, 7, parallel.Config{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
			continue
		}
		if res.Pooled != want.Pooled {
			t.Errorf("jobs=%d pooled metrics %+v, want %+v", jobs, res.Pooled, want.Pooled)
		}
		if len(res.Predicted) != len(want.Predicted) {
			t.Fatalf("jobs=%d produced %d predictions, want %d", jobs, len(res.Predicted), len(want.Predicted))
		}
		for j := range res.Predicted {
			if res.Predicted[j] != want.Predicted[j] || res.Actual[j] != want.Actual[j] {
				t.Fatalf("jobs=%d prediction %d differs", jobs, j)
			}
		}
	}
}

// TestBootstrapCIDeterministicAcrossJobs asserts identical confidence
// intervals for every resample worker count.
func TestBootstrapCIDeterministicAcrossJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 400
	pred := make([]float64, n)
	act := make([]float64, n)
	for i := range act {
		act[i] = rng.NormFloat64()
		pred[i] = act[i] + 0.2*rng.NormFloat64()
	}
	var wc, wm, wr eval.Interval
	for i, jobs := range jobVariants() {
		c, m, r, err := eval.BootstrapCI(pred, act, 200, 0.95, 5, parallel.Config{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wc, wm, wr = c, m, r
			continue
		}
		if c != wc || m != wm || r != wr {
			t.Errorf("jobs=%d intervals (%v %v %v) differ from jobs=1 (%v %v %v)", jobs, c, m, r, wc, wm, wr)
		}
	}
}

// TestEnsembleDeterministicAcrossJobs asserts the bagged ensemble — member
// predictions, OOB error and coverage — is identical for every tree
// worker count, and that a member's bootstrap sample does not depend on
// the ensemble size (the per-tree seed derivation guarantee).
func TestEnsembleDeterministicAcrossJobs(t *testing.T) {
	d := detDataset(1200, 13)
	base := ensemble.DefaultConfig()
	base.Trees = 8
	base.Tree.MinLeaf = 60
	probe := dataset.Instance{0, 1.7, 2.2, 0.4, 3.25}

	var want *ensemble.Bagger
	for i, jobs := range jobVariants() {
		cfg := base
		cfg.Jobs = jobs
		b, err := ensemble.Train(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = b
			continue
		}
		if b.OOBError != want.OOBError || b.OOBCoverage != want.OOBCoverage {
			t.Errorf("jobs=%d OOB (%v, %v) differs from jobs=1 (%v, %v)",
				jobs, b.OOBError, b.OOBCoverage, want.OOBError, want.OOBCoverage)
		}
		if got, exp := b.Predict(probe), want.Predict(probe); got != exp {
			t.Errorf("jobs=%d ensemble prediction %v, want %v", jobs, got, exp)
		}
		for ti := range b.Trees {
			if got, exp := b.Trees[ti].Predict(probe), want.Trees[ti].Predict(probe); got != exp {
				t.Errorf("jobs=%d member %d predicts %v, want %v", jobs, ti, got, exp)
			}
		}
	}

	// Growing the ensemble must not perturb the earlier members' samples:
	// tree t is seeded by (Seed, t) alone.
	bigger := base
	bigger.Trees = base.Trees + 4
	bb, err := ensemble.Train(d, bigger)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < base.Trees; ti++ {
		if got, exp := bb.Trees[ti].Predict(probe), want.Trees[ti].Predict(probe); got != exp {
			t.Errorf("member %d changed when Trees grew from %d to %d", ti, base.Trees, bigger.Trees)
		}
	}
}

// TestCollectSuiteMachinesDeterministicAcrossJobs asserts the
// cross-architecture fan-out keeps both halves of its contract: every
// machine's collection hashes identically at every worker count, and
// each equals the collection a standalone CollectSuite would produce for
// that machine alone — so pooled cross-architecture datasets are
// byte-stable no matter how the (machine, benchmark) units were
// scheduled.
func TestCollectSuiteMachinesDeterministicAcrossJobs(t *testing.T) {
	suite := workload.SuiteScaled(0.02)
	specs := march.CrossArchSet()[:3]
	var want []([32]byte)
	for i, jobs := range jobVariants() {
		base := counters.DefaultCollectConfig()
		base.Jobs = jobs
		mcols, err := counters.CollectSuiteMachines(suite, specs, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(mcols) != len(specs) {
			t.Fatalf("jobs=%d returned %d collections, want %d", jobs, len(mcols), len(specs))
		}
		hashes := make([][32]byte, len(mcols))
		for m, mc := range mcols {
			if mc.Machine.Name != specs[m].Name {
				t.Fatalf("jobs=%d collection %d is for %q, want %q", jobs, m, mc.Machine.Name, specs[m].Name)
			}
			var buf bytes.Buffer
			if err := mc.Col.Data.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			hashes[m] = sha256.Sum256(buf.Bytes())
		}
		if i == 0 {
			want = hashes
			// The fan-out must be unobservable: machine m's collection is
			// exactly what a dedicated CollectSuite produces for m.
			for m, spec := range specs {
				solo := counters.CollectConfigFor(spec)
				col, err := counters.CollectSuite(suite, solo)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := col.Data.WriteCSV(&buf); err != nil {
					t.Fatal(err)
				}
				if sha256.Sum256(buf.Bytes()) != hashes[m] {
					t.Errorf("machine %s: fan-out collection differs from standalone CollectSuite", spec.Name)
				}
			}
			continue
		}
		for m := range hashes {
			if hashes[m] != want[m] {
				t.Errorf("jobs=%d machine %s hash differs from jobs=1", jobs, specs[m].Name)
			}
		}
	}
}
