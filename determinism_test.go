// Determinism regression tests for the parallel execution layer: every
// concurrent stage — suite simulation, split scoring, CV folds, bootstrap
// resampling, bagged trees — must produce byte-identical results at
// Jobs=1 (the exact serial path), Jobs=4, and Jobs=GOMAXPROCS. These
// tests are the enforcement of the contract documented in DESIGN.md
// ("Parallel execution"); run them with -race to also prove the
// goroutine code clean.
package repro_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/march"
	"repro/internal/mtree"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/workload"
)

// jobVariants are the worker counts every stage is checked across.
func jobVariants() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// detDataset synthesizes a deterministic piecewise-linear dataset large
// enough (n >= splitParallelMinRows) that mtree's concurrent
// split-scoring path is actually exercised at the root.
func detDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "y"}, {Name: "x1"}, {Name: "x2"}, {Name: "x3"}, {Name: "const"},
	}, 0)
	for i := 0; i < n; i++ {
		x1 := rng.Float64() * 4
		x2 := rng.Float64() * 4
		x3 := rng.Float64() * 4
		y := 1 + 0.5*x2
		if x1 > 2 {
			y = 10 + 2*x3
		}
		// "const" is identical everywhere: it exercises the
		// constant-attribute skip in the split search.
		d.MustAppend(dataset.Instance{y + 0.1*rng.NormFloat64(), x1, x2, x3, 3.25})
	}
	return d
}

// TestCollectSuiteDeterministicAcrossJobs asserts the collection dataset
// (rows, labels and breakdown count) hashes identically for every worker
// count.
func TestCollectSuiteDeterministicAcrossJobs(t *testing.T) {
	suite := workload.SuiteScaled(0.03)
	var want [32]byte
	var wantLabels []counters.SectionLabel
	for i, jobs := range jobVariants() {
		cfg := counters.DefaultCollectConfig()
		cfg.Jobs = jobs
		col, err := counters.CollectSuite(suite, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := col.Data.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(buf.Bytes())
		if i == 0 {
			want = h
			wantLabels = col.Labels
			continue
		}
		if h != want {
			t.Errorf("jobs=%d produced a different dataset hash than jobs=1", jobs)
		}
		if len(col.Labels) != len(wantLabels) {
			t.Fatalf("jobs=%d produced %d labels, want %d", jobs, len(col.Labels), len(wantLabels))
		}
		for j := range col.Labels {
			if col.Labels[j] != wantLabels[j] {
				t.Fatalf("jobs=%d label %d = %+v, want %+v", jobs, j, col.Labels[j], wantLabels[j])
			}
		}
	}
}

// TestTreeDeterministicAcrossJobs asserts the rendered tree structure and
// rule set are identical for every split-scoring worker count.
func TestTreeDeterministicAcrossJobs(t *testing.T) {
	d := detDataset(3000, 11)
	var wantTree, wantRules string
	for i, jobs := range jobVariants() {
		cfg := mtree.DefaultConfig()
		cfg.MinLeaf = 50
		cfg.Jobs = jobs
		tree, err := mtree.Build(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotTree, gotRules := tree.String(), tree.RenderRules()
		if i == 0 {
			wantTree, wantRules = gotTree, gotRules
			continue
		}
		if gotTree != wantTree {
			t.Errorf("jobs=%d tree differs from jobs=1:\n%s\nvs\n%s", jobs, gotTree, wantTree)
		}
		if gotRules != wantRules {
			t.Errorf("jobs=%d rules differ from jobs=1", jobs)
		}
	}
}

// TestCrossValidateDeterministicAcrossJobs asserts pooled metrics and the
// out-of-fold prediction vector are bit-identical for every fold worker
// count.
func TestCrossValidateDeterministicAcrossJobs(t *testing.T) {
	d := detDataset(2500, 12)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 50
	learner := eval.LearnerFunc{N: "M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return mtree.Build(d, cfg)
	}}
	var want eval.CVResult
	for i, jobs := range jobVariants() {
		res, err := eval.CrossValidate(learner, d, 5, 7, parallel.Config{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
			continue
		}
		if res.Pooled != want.Pooled {
			t.Errorf("jobs=%d pooled metrics %+v, want %+v", jobs, res.Pooled, want.Pooled)
		}
		if len(res.Predicted) != len(want.Predicted) {
			t.Fatalf("jobs=%d produced %d predictions, want %d", jobs, len(res.Predicted), len(want.Predicted))
		}
		for j := range res.Predicted {
			if res.Predicted[j] != want.Predicted[j] || res.Actual[j] != want.Actual[j] {
				t.Fatalf("jobs=%d prediction %d differs", jobs, j)
			}
		}
	}
}

// TestBootstrapCIDeterministicAcrossJobs asserts identical confidence
// intervals for every resample worker count.
func TestBootstrapCIDeterministicAcrossJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 400
	pred := make([]float64, n)
	act := make([]float64, n)
	for i := range act {
		act[i] = rng.NormFloat64()
		pred[i] = act[i] + 0.2*rng.NormFloat64()
	}
	var wc, wm, wr eval.Interval
	for i, jobs := range jobVariants() {
		c, m, r, err := eval.BootstrapCI(pred, act, 200, 0.95, 5, parallel.Config{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wc, wm, wr = c, m, r
			continue
		}
		if c != wc || m != wm || r != wr {
			t.Errorf("jobs=%d intervals (%v %v %v) differ from jobs=1 (%v %v %v)", jobs, c, m, r, wc, wm, wr)
		}
	}
}

// TestEnsembleDeterministicAcrossJobs asserts the bagged ensemble — member
// predictions, OOB error and coverage — is identical for every tree
// worker count, and that a member's bootstrap sample does not depend on
// the ensemble size (the per-tree seed derivation guarantee).
func TestEnsembleDeterministicAcrossJobs(t *testing.T) {
	d := detDataset(1200, 13)
	base := ensemble.DefaultConfig()
	base.Trees = 8
	base.Tree.MinLeaf = 60
	probe := dataset.Instance{0, 1.7, 2.2, 0.4, 3.25}

	var want *ensemble.Bagger
	for i, jobs := range jobVariants() {
		cfg := base
		cfg.Jobs = jobs
		b, err := ensemble.Train(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = b
			continue
		}
		if b.OOBError != want.OOBError || b.OOBCoverage != want.OOBCoverage {
			t.Errorf("jobs=%d OOB (%v, %v) differs from jobs=1 (%v, %v)",
				jobs, b.OOBError, b.OOBCoverage, want.OOBError, want.OOBCoverage)
		}
		if got, exp := b.Predict(probe), want.Predict(probe); got != exp {
			t.Errorf("jobs=%d ensemble prediction %v, want %v", jobs, got, exp)
		}
		for ti := range b.Trees {
			if got, exp := b.Trees[ti].Predict(probe), want.Trees[ti].Predict(probe); got != exp {
				t.Errorf("jobs=%d member %d predicts %v, want %v", jobs, ti, got, exp)
			}
		}
	}

	// Growing the ensemble must not perturb the earlier members' samples:
	// tree t is seeded by (Seed, t) alone.
	bigger := base
	bigger.Trees = base.Trees + 4
	bb, err := ensemble.Train(d, bigger)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < base.Trees; ti++ {
		if got, exp := bb.Trees[ti].Predict(probe), want.Trees[ti].Predict(probe); got != exp {
			t.Errorf("member %d changed when Trees grew from %d to %d", ti, base.Trees, bigger.Trees)
		}
	}
}

// TestRefutationDeterministicAcrossJobsAndShards asserts the serving
// stack's refutation verdicts are a pure function of the ingested
// stream: the /v1/stream NDJSON response (events, summary, refutation
// digest) and the full GET /v1/sessions/{id}/refutation report are
// byte-identical at every scoring worker count and session-table shard
// count. The trace goes bad mid-way (a negated DTLB rate), so the
// invariance covers violated windows, streaks and verdict transitions,
// not just the all-clean path.
func TestRefutationDeterministicAcrossJobsAndShards(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "CPI"}, {Name: "L1IM"}, {Name: "L2M"}, {Name: "DtlbLdM"},
	}, 0)
	for i := 0; i < 900; i++ {
		l1 := rng.Float64() * 0.02
		l2 := rng.Float64() * 0.005
		dt := rng.Float64() * 0.001
		d.MustAppend(dataset.Instance{0.6 + 7*l1 + 90*l2 + 40*dt + 0.02*rng.NormFloat64(), l1, l2, dt})
	}
	mcfg := mtree.DefaultConfig()
	mcfg.MinLeaf = 60
	tree, err := mtree.Build(d, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	var trace strings.Builder
	enc := json.NewEncoder(&trace)
	for i := 0; i < 64; i++ {
		l1 := rng.Float64() * 0.02
		l2 := rng.Float64() * 0.005
		dt := rng.Float64() * 0.001
		if i >= 24 {
			dt = -dt // impossible reading: violates nonneg-DtlbLdM
		}
		cpi := 0.6 + 7*l1 + 90*l2
		s := stream.Sample{Bench: "det", Section: i, CPI: &cpi,
			Events: map[string]float64{"L1IM": l1, "L2M": l2, "DtlbLdM": dt}}
		if err := enc.Encode(&s); err != nil {
			t.Fatal(err)
		}
	}

	var wantStream, wantReport []byte
	for _, jobs := range jobVariants() {
		for _, shards := range []int{1, 16} {
			reg := serve.NewRegistry()
			if err := reg.Register("cpi", "v1", tree, ""); err != nil {
				t.Fatal(err)
			}
			scfg := serve.DefaultConfig()
			scfg.Jobs = jobs
			scfg.SessionShards = shards
			scfg.CacheSize = 0
			h := serve.New(reg, scfg).Handler()

			req := httptest.NewRequest(http.MethodPost, "/v1/stream?model=cpi&session=det",
				strings.NewReader(trace.String()))
			req.Header.Set("Content-Type", "application/x-ndjson")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Fatalf("jobs=%d shards=%d: stream status %d: %s", jobs, shards, rec.Code, rec.Body)
			}
			ref := httptest.NewRecorder()
			h.ServeHTTP(ref, httptest.NewRequest(http.MethodGet, "/v1/sessions/det/refutation?model=cpi", nil))
			if ref.Code != 200 {
				t.Fatalf("jobs=%d shards=%d: refutation status %d: %s", jobs, shards, ref.Code, ref.Body)
			}
			if wantStream == nil {
				wantStream = rec.Body.Bytes()
				wantReport = ref.Body.Bytes()
				if !bytes.Contains(wantReport, []byte(`"verdict":"refuted"`)) {
					t.Fatalf("corrupted trace was not refuted: %s", wantReport)
				}
				continue
			}
			if !bytes.Equal(rec.Body.Bytes(), wantStream) {
				t.Errorf("jobs=%d shards=%d: /v1/stream response differs from jobs=1 shards=1", jobs, shards)
			}
			if !bytes.Equal(ref.Body.Bytes(), wantReport) {
				t.Errorf("jobs=%d shards=%d: refutation report differs from jobs=1 shards=1", jobs, shards)
			}
		}
	}
}

// TestCollectSuiteMachinesDeterministicAcrossJobs asserts the
// cross-architecture fan-out keeps both halves of its contract: every
// machine's collection hashes identically at every worker count, and
// each equals the collection a standalone CollectSuite would produce for
// that machine alone — so pooled cross-architecture datasets are
// byte-stable no matter how the (machine, benchmark) units were
// scheduled.
func TestCollectSuiteMachinesDeterministicAcrossJobs(t *testing.T) {
	suite := workload.SuiteScaled(0.02)
	specs := march.CrossArchSet()[:3]
	var want []([32]byte)
	for i, jobs := range jobVariants() {
		base := counters.DefaultCollectConfig()
		base.Jobs = jobs
		mcols, err := counters.CollectSuiteMachines(suite, specs, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(mcols) != len(specs) {
			t.Fatalf("jobs=%d returned %d collections, want %d", jobs, len(mcols), len(specs))
		}
		hashes := make([][32]byte, len(mcols))
		for m, mc := range mcols {
			if mc.Machine.Name != specs[m].Name {
				t.Fatalf("jobs=%d collection %d is for %q, want %q", jobs, m, mc.Machine.Name, specs[m].Name)
			}
			var buf bytes.Buffer
			if err := mc.Col.Data.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			hashes[m] = sha256.Sum256(buf.Bytes())
		}
		if i == 0 {
			want = hashes
			// The fan-out must be unobservable: machine m's collection is
			// exactly what a dedicated CollectSuite produces for m.
			for m, spec := range specs {
				solo := counters.CollectConfigFor(spec)
				col, err := counters.CollectSuite(suite, solo)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := col.Data.WriteCSV(&buf); err != nil {
					t.Fatal(err)
				}
				if sha256.Sum256(buf.Bytes()) != hashes[m] {
					t.Errorf("machine %s: fan-out collection differs from standalone CollectSuite", spec.Name)
				}
			}
			continue
		}
		for m := range hashes {
			if hashes[m] != want[m] {
				t.Errorf("jobs=%d machine %s hash differs from jobs=1", jobs, specs[m].Name)
			}
		}
	}
}
