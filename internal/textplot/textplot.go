// Package textplot renders simple ASCII plots for terminal output; the
// experiments use it to draw the paper's Figure 3 (predicted vs actual CPI
// scatter with the unity line).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Scatter renders an x/y scatter plot of the given width/height in
// character cells. Density is shown with the ramp " .:oO@"; cells on the
// x==y diagonal with no points show the unity line as '/'.
func Scatter(x, y []float64, width, height int, xlabel, ylabel string) string {
	if len(x) != len(y) || len(x) == 0 || width < 8 || height < 4 {
		return "(no data)\n"
	}
	lo, hi := minMax(append(append([]float64{}, x...), y...))
	if hi == lo {
		hi = lo + 1
	}
	// A small margin keeps edge points visible.
	span := hi - lo
	lo -= 0.02 * span
	hi += 0.02 * span

	grid := make([][]int, height)
	for r := range grid {
		grid[r] = make([]int, width)
	}
	cellX := func(v float64) int {
		c := int(float64(width) * (v - lo) / (hi - lo))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	cellY := func(v float64) int {
		r := int(float64(height) * (hi - v) / (hi - lo))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for i := range x {
		grid[cellY(y[i])][cellX(x[i])]++
	}

	ramp := []byte(" .:oO@")
	maxCount := 0
	for _, row := range grid {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (vertical) vs %s (horizontal); '/' is the unity line\n", ylabel, xlabel)
	for r := 0; r < height; r++ {
		// Left axis label: the y value at this row's center.
		yv := hi - (float64(r)+0.5)*(hi-lo)/float64(height)
		fmt.Fprintf(&b, "%7.2f |", yv)
		for c := 0; c < width; c++ {
			count := grid[r][c]
			if count == 0 {
				// Unity line: where this cell's x range intersects y.
				xv := lo + (float64(c)+0.5)*(hi-lo)/float64(width)
				if cellY(xv) == r {
					b.WriteByte('/')
				} else {
					b.WriteByte(' ')
				}
				continue
			}
			idx := 1 + count*(len(ramp)-2)/maxCount
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-10.2f%s%10.2f\n", lo, strings.Repeat(" ", max(0, width-20)), hi)
	return b.String()
}

// Histogram renders a simple horizontal-bar histogram of values with the
// given number of bins.
func Histogram(values []float64, bins, barWidth int, label string) string {
	if len(values) == 0 || bins < 1 {
		return "(no data)\n"
	}
	lo, hi := minMax(values)
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range values {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "histogram of %s (n=%d)\n", label, len(values))
	for i, c := range counts {
		left := lo + float64(i)*(hi-lo)/float64(bins)
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		fmt.Fprintf(&b, "%8.3f |%s %d\n", left, strings.Repeat("#", bar), c)
	}
	return b.String()
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
