package textplot

import (
	"strings"
	"testing"
)

func TestScatterBasic(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{0.1, 1.1, 1.9, 3.0, 4.2}
	s := Scatter(x, y, 40, 12, "actual", "predicted")
	if !strings.Contains(s, "predicted") || !strings.Contains(s, "actual") {
		t.Errorf("labels missing:\n%s", s)
	}
	if !strings.Contains(s, "/") {
		t.Errorf("unity line missing:\n%s", s)
	}
	// Data marks use the density ramp.
	if !strings.ContainsAny(s, ".:oO@") {
		t.Errorf("no data marks:\n%s", s)
	}
	if len(strings.Split(strings.TrimRight(s, "\n"), "\n")) < 12 {
		t.Errorf("plot shorter than requested height:\n%s", s)
	}
}

func TestScatterDegenerate(t *testing.T) {
	if got := Scatter(nil, nil, 40, 12, "x", "y"); got != "(no data)\n" {
		t.Errorf("empty input: %q", got)
	}
	if got := Scatter([]float64{1}, []float64{1, 2}, 40, 12, "x", "y"); got != "(no data)\n" {
		t.Errorf("mismatched input: %q", got)
	}
	if got := Scatter([]float64{1}, []float64{1}, 2, 2, "x", "y"); got != "(no data)\n" {
		t.Errorf("tiny plot: %q", got)
	}
	// Constant data must not divide by zero.
	s := Scatter([]float64{5, 5, 5}, []float64{5, 5, 5}, 30, 8, "x", "y")
	if !strings.ContainsAny(s, ".:oO@") {
		t.Errorf("constant data lost:\n%s", s)
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{1, 1, 1, 2, 3, 3, 10}
	s := Histogram(vals, 5, 20, "cpi")
	if !strings.Contains(s, "cpi") || !strings.Contains(s, "#") {
		t.Errorf("histogram malformed:\n%s", s)
	}
	if got := Histogram(nil, 5, 20, "x"); got != "(no data)\n" {
		t.Errorf("empty histogram: %q", got)
	}
	if got := Histogram([]float64{1}, 0, 20, "x"); got != "(no data)\n" {
		t.Errorf("zero bins: %q", got)
	}
	// Constant values: single bin holds everything.
	s = Histogram([]float64{4, 4, 4}, 3, 10, "c")
	if !strings.Contains(s, "3") {
		t.Errorf("constant histogram:\n%s", s)
	}
}
