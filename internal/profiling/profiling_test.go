package profiling

// Tests for the pprof plumbing: empty paths are no-ops, good paths
// produce non-empty profile files, and bad paths surface errors instead
// of silently dropping the profile.

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartCPUEmptyPathIsNoOp(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatalf("StartCPU(\"\"): %v", err)
	}
	stop() // must be callable
}

func TestStartCPUWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	stop, err := StartCPU(path)
	if err != nil {
		t.Fatalf("StartCPU: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("profile file is empty")
	}
	// A second profile may start after the first stopped.
	stop2, err := StartCPU(filepath.Join(t.TempDir(), "cpu2.out"))
	if err != nil {
		t.Fatalf("second StartCPU: %v", err)
	}
	stop2()
}

func TestStartCPURejectsBadPath(t *testing.T) {
	if _, err := StartCPU(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")); err == nil {
		t.Fatal("unwritable CPU profile path was accepted")
	}
}

func TestWriteHeap(t *testing.T) {
	if err := WriteHeap(""); err != nil {
		t.Fatalf("WriteHeap(\"\"): %v", err)
	}
	path := filepath.Join(t.TempDir(), "mem.out")
	if err := WriteHeap(path); err != nil {
		t.Fatalf("WriteHeap: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("heap profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
}

func TestWriteHeapRejectsBadPath(t *testing.T) {
	if err := WriteHeap(filepath.Join(t.TempDir(), "no", "such", "dir", "mem.out")); err == nil {
		t.Fatal("unwritable heap profile path was accepted")
	}
}
