// Package profiling wires runtime/pprof into the command-line tools: a
// -cpuprofile/-memprofile pair identical in spirit to `go test`'s flags, so
// the hot simulator loops can be profiled on real workloads without
// building a bench harness around them.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns the function
// that stops and flushes it. With an empty path it is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap captures an up-to-date allocation profile to path. With an
// empty path it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	runtime.GC() // flush recent frees so the numbers reflect live heap
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
