package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for exact TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestNumShards(t *testing.T) {
	cases := [][2]int{{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32}}
	for _, c := range cases {
		if got := NumShards(c[0]); got != c[1] {
			t.Errorf("NumShards(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	// FNV-1a reference values: the shard assignment must be stable
	// across runs and machines, unlike the runtime map hash.
	if got := Hash(""); got != 2166136261 {
		t.Errorf("Hash(\"\") = %d, want 2166136261", got)
	}
	if Hash("a@v1\x00s1") != HashBytes([]byte("a@v1\x00s1")) {
		t.Error("Hash and HashBytes disagree")
	}
}

func TestGetOrCreate(t *testing.T) {
	tab := New[int](Options{Shards: 4})
	made := 0
	mk := func() (int, error) { made++; return made, nil }

	v, hit, err := tab.GetOrCreate("k", mk)
	if err != nil || hit || v != 1 {
		t.Fatalf("first access: v=%d hit=%v err=%v", v, hit, err)
	}
	v, hit, err = tab.GetOrCreate("k", mk)
	if err != nil || !hit || v != 1 {
		t.Fatalf("second access: v=%d hit=%v err=%v", v, hit, err)
	}
	if made != 1 {
		t.Fatalf("mk ran %d times, want 1", made)
	}
	if _, _, err := tab.GetOrCreate("bad", func() (int, error) {
		return 0, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("mk error not propagated")
	}
	// A failed mk must leave no entry behind.
	if _, ok := tab.Get("bad"); ok {
		t.Fatal("failed mk left an entry")
	}
	if tab.Len() != 1 {
		t.Fatalf("len %d, want 1", tab.Len())
	}
}

func TestTTLEviction(t *testing.T) {
	clk := newFakeClock()
	tab := New[string](Options{Shards: 4, TTL: time.Minute, Now: clk.Now})
	mk := func(v string) func() (string, error) {
		return func() (string, error) { return v, nil }
	}

	if _, _, err := tab.GetOrCreate("a", mk("A")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.GetOrCreate("b", mk("B")); err != nil {
		t.Fatal(err)
	}

	// Keep "a" warm past b's expiry.
	clk.Advance(40 * time.Second)
	if _, hit := tab.Get("a"); !hit {
		t.Fatal("a missing before TTL")
	}
	clk.Advance(40 * time.Second) // b now idle 80s > TTL, a idle 40s

	if _, hit := tab.Get("b"); hit {
		t.Fatal("b survived past its TTL")
	}
	if _, hit := tab.Get("a"); !hit {
		t.Fatal("refreshed entry a evicted early")
	}
	total := tab.Stats().Total()
	if total.Evictions < 1 {
		t.Fatalf("evictions %d, want >= 1", total.Evictions)
	}

	// A full sweep clears everything once idle long enough.
	clk.Advance(2 * time.Minute)
	if n := tab.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d, want 1 (only a remained)", n)
	}
	if tab.Len() != 0 {
		t.Fatalf("len %d after sweep, want 0", tab.Len())
	}
}

func TestMaybeSweepRunsOnAccess(t *testing.T) {
	clk := newFakeClock()
	tab := New[int](Options{Shards: 2, TTL: time.Minute, SweepEvery: 10 * time.Second, Now: clk.Now})
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := tab.GetOrCreate(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(2 * time.Minute)
	// Accessing one fresh key must sweep the whole table, not just the
	// touched shard.
	if _, _, err := tab.GetOrCreate("fresh", func() (int, error) { return 99, nil }); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Fatalf("len %d after piggybacked sweep, want 1 (just \"fresh\")", tab.Len())
	}
	if total := tab.Stats().Total(); total.Evictions != 8 {
		t.Fatalf("evictions %d, want 8", total.Evictions)
	}
}

func TestDrainAndRange(t *testing.T) {
	tab := New[int](Options{Shards: 8})
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%02d", i)
		tab.Put(k, i)
	}

	// Range visits in sorted key order.
	var keys []string
	tab.Range(func(k string, v int) { keys = append(keys, k) })
	if len(keys) != 20 {
		t.Fatalf("range visited %d entries, want 20", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("range order not sorted: %q before %q", keys[i-1], keys[i])
		}
	}

	got := tab.Drain()
	if len(got) != 20 || tab.Len() != 0 {
		t.Fatalf("drain returned %d entries, table has %d left", len(got), tab.Len())
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%02d", i)
		if got[k] != i {
			t.Fatalf("drained %s = %d, want %d", k, got[k], i)
		}
	}
}

func TestStatsPerShard(t *testing.T) {
	tab := New[int](Options{Shards: 4})
	tab.Put("x", 1)
	tab.Get("x")
	tab.Get("y")
	s := tab.Stats()
	if len(s.Shards) != 4 {
		t.Fatalf("%d shard stats, want 4", len(s.Shards))
	}
	total := s.Total()
	if total.Size != 1 || total.Hits != 1 || total.Misses != 1 {
		t.Fatalf("totals %+v, want size 1, hits 1, misses 1", total)
	}
	// The hit must be attributed to x's shard specifically.
	xs := s.Shards[Hash("x")&3]
	if xs.Hits != 1 {
		t.Errorf("x's shard hits %d, want 1", xs.Hits)
	}
}

// TestConcurrentAccess hammers the table from many goroutines; run
// under -race this is the striping's safety proof.
func TestConcurrentAccess(t *testing.T) {
	clk := newFakeClock()
	tab := New[int](Options{Shards: 8, TTL: time.Minute, Now: clk.Now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%37)
				switch i % 5 {
				case 0:
					tab.Put(k, i)
				case 1:
					tab.Get(k)
				case 2:
					if _, _, err := tab.GetOrCreate(k, func() (int, error) { return i, nil }); err != nil {
						t.Error(err)
						return
					}
				case 3:
					tab.Stats()
				default:
					tab.Delete(fmt.Sprintf("k%d", (i+13)%41))
				}
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() > 41 {
		t.Fatalf("len %d, want <= 41 distinct keys", tab.Len())
	}
}
