// Package shard provides a generic lock-striped hash table with TTL
// eviction: the session-state backbone of the serving layer. One
// process-wide map behind one mutex serializes every access — at
// monitoring scale (millions of concurrent counter streams) the lock,
// not the work, becomes the bottleneck. A Table splits the key space
// across a power-of-two number of shards, each with its own mutex, map
// and hit/miss/evict counters, so operations on different keys contend
// only when they hash to the same shard (1/shards of the time) and a
// stalled holder of one shard cannot stop the other shards' traffic.
//
// Expiry is driven by an injectable clock: entries unused for TTL are
// evicted lazily on access and in periodic whole-table sweeps. Nothing
// in the table reads the real time directly, so tests (and the
// deterministic load-generation validation) can advance a fake clock
// and observe exact eviction counts.
//
// The shard assignment is a fixed FNV-1a hash, not the runtime's
// per-process map seed, so a key lands on the same shard in every run
// — tests can target a shard, and per-shard counters are comparable
// across runs.
package shard

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hash is the table's shard-assignment hash: 32-bit FNV-1a over the
// key bytes. It is exported so sibling striped structures (the serve
// layer's prediction cache) stripe the same way.
func Hash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// HashBytes is Hash for a key still in its scratch buffer.
func HashBytes(key []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// NumShards rounds n up to a power of two (minimum 1), the shard-count
// normalization every striped structure in this repo shares.
func NumShards(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Options configures a Table.
type Options struct {
	// Shards is the stripe count, rounded up to a power of two.
	// 0 defaults to 16.
	Shards int
	// TTL evicts entries unused for this long; 0 disables expiry.
	TTL time.Duration
	// SweepEvery is the minimum interval between whole-table expiry
	// sweeps (triggered opportunistically from Get/GetOrCreate);
	// 0 defaults to TTL/4. Ignored when TTL is 0.
	SweepEvery time.Duration
	// Now is the clock; nil defaults to time.Now. Tests inject a fake
	// clock to make eviction exact.
	Now func() time.Time
}

// Table is a lock-striped string-keyed map with TTL eviction.
type Table[V any] struct {
	shards     []tableShard[V]
	mask       uint32
	ttl        time.Duration
	sweepEvery time.Duration
	now        func() time.Time
	lastSweep  atomic.Int64 // unix nanos of the last sweep
}

type tableShard[V any] struct {
	mu    sync.Mutex
	items map[string]*entry[V]
	// Counters are guarded by mu: they are only touched by operations
	// that already hold the shard lock, so atomics would buy nothing.
	hits, misses, evictions uint64
}

type entry[V any] struct {
	val      V
	lastUsed int64 // unix nanos
}

// New creates a table.
func New[V any](opts Options) *Table[V] {
	n := opts.Shards
	if n == 0 {
		n = 16
	}
	n = NumShards(n)
	t := &Table[V]{
		shards:     make([]tableShard[V], n),
		mask:       uint32(n - 1),
		ttl:        opts.TTL,
		sweepEvery: opts.SweepEvery,
		now:        opts.Now,
	}
	if t.now == nil {
		t.now = time.Now
	}
	if t.ttl > 0 && t.sweepEvery <= 0 {
		t.sweepEvery = t.ttl / 4
	}
	for i := range t.shards {
		t.shards[i].items = map[string]*entry[V]{}
	}
	return t
}

// Shards returns the stripe count.
func (t *Table[V]) Shards() int { return len(t.shards) }

// TTL returns the configured expiry.
func (t *Table[V]) TTL() time.Duration { return t.ttl }

func (t *Table[V]) shardFor(key string) *tableShard[V] {
	return &t.shards[Hash(key)&t.mask]
}

func (t *Table[V]) expired(e *entry[V], nowNs int64) bool {
	return t.ttl > 0 && nowNs-e.lastUsed >= int64(t.ttl)
}

// GetOrCreate returns the live value under key, creating one with mk on
// a miss (or on an entry that expired unused). hit reports whether an
// existing live entry answered. mk runs under the shard lock, so
// concurrent callers of the same key construct exactly one value;
// other shards are unaffected. A failed mk leaves no entry behind.
func (t *Table[V]) GetOrCreate(key string, mk func() (V, error)) (v V, hit bool, err error) {
	now := t.now()
	t.maybeSweep(now)
	nowNs := now.UnixNano()
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[key]; ok {
		if !t.expired(e, nowNs) {
			e.lastUsed = nowNs
			sh.hits++
			return e.val, true, nil
		}
		delete(sh.items, key)
		sh.evictions++
	}
	sh.misses++
	v, err = mk()
	if err != nil {
		var zero V
		return zero, false, err
	}
	sh.items[key] = &entry[V]{val: v, lastUsed: nowNs}
	return v, false, nil
}

// Get returns the live value under key without creating one. It counts
// as a hit or miss and refreshes the entry's TTL on a hit.
func (t *Table[V]) Get(key string) (V, bool) {
	now := t.now()
	t.maybeSweep(now)
	nowNs := now.UnixNano()
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[key]; ok {
		if !t.expired(e, nowNs) {
			e.lastUsed = nowNs
			sh.hits++
			return e.val, true
		}
		delete(sh.items, key)
		sh.evictions++
	}
	sh.misses++
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key, refreshing its TTL.
func (t *Table[V]) Put(key string, v V) {
	nowNs := t.now().UnixNano()
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.items[key] = &entry[V]{val: v, lastUsed: nowNs}
}

// Delete removes key, reporting whether it was present (live or
// expired). Deletions are not counted as evictions.
func (t *Table[V]) Delete(key string) bool {
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.items[key]; !ok {
		return false
	}
	delete(sh.items, key)
	return true
}

// Len returns the number of stored entries (including not-yet-swept
// expired ones; Sweep first for an exact live count).
func (t *Table[V]) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Range calls f for every stored entry in sorted key order — a
// deterministic iteration for listings and snapshots. Entries are
// collected per shard under the shard lock, then visited without any
// lock held, so f may call back into the table.
func (t *Table[V]) Range(f func(key string, v V)) {
	type kv struct {
		k string
		v V
	}
	var all []kv
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, e := range sh.items {
			all = append(all, kv{k, e.val})
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	for _, e := range all {
		f(e.k, e.v)
	}
}

// Drain removes and returns every stored entry — the replica-handoff
// primitive: the returned map is the exclusive owner of the values and
// the table is empty afterwards. Entries already past their TTL are
// counted as evictions and not returned.
func (t *Table[V]) Drain() map[string]V {
	nowNs := t.now().UnixNano()
	out := map[string]V{}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, e := range sh.items {
			if t.expired(e, nowNs) {
				sh.evictions++
			} else {
				out[k] = e.val
			}
			delete(sh.items, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// Sweep evicts every expired entry now, returning the eviction count.
func (t *Table[V]) Sweep() int {
	now := t.now()
	t.lastSweep.Store(now.UnixNano())
	return t.sweep(now.UnixNano())
}

func (t *Table[V]) sweep(nowNs int64) int {
	if t.ttl <= 0 {
		return 0
	}
	evicted := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, e := range sh.items {
			if t.expired(e, nowNs) {
				delete(sh.items, k)
				sh.evictions++
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	return evicted
}

// maybeSweep runs a whole-table sweep at most once per SweepEvery,
// piggybacked on accessor calls so idle shards cannot pin expired
// state forever. The CAS makes concurrent accessors elect one sweeper.
func (t *Table[V]) maybeSweep(now time.Time) {
	if t.ttl <= 0 {
		return
	}
	nowNs := now.UnixNano()
	last := t.lastSweep.Load()
	if nowNs-last < int64(t.sweepEvery) {
		return
	}
	if t.lastSweep.CompareAndSwap(last, nowNs) {
		t.sweep(nowNs)
	}
}

// ShardStats is one shard's counters.
type ShardStats struct {
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats is a point-in-time view of every shard's counters, indexed by
// shard number.
type Stats struct {
	Shards []ShardStats `json:"shards"`
}

// Total sums the per-shard counters.
func (s Stats) Total() ShardStats {
	var t ShardStats
	for _, sh := range s.Shards {
		t.Size += sh.Size
		t.Hits += sh.Hits
		t.Misses += sh.Misses
		t.Evictions += sh.Evictions
	}
	return t
}

// Stats snapshots the per-shard counters.
func (t *Table[V]) Stats() Stats {
	s := Stats{Shards: make([]ShardStats, len(t.shards))}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		s.Shards[i] = ShardStats{
			Size:      len(sh.items),
			Hits:      sh.hits,
			Misses:    sh.misses,
			Evictions: sh.evictions,
		}
		sh.mu.Unlock()
	}
	return s
}
