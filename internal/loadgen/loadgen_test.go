package loadgen_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/loadgen"
	"repro/internal/mtree"
	"repro/internal/serve"
)

// perfData builds a small CPI-like dataset (same shape as the serve
// package's fixtures) for an in-process target model.
func perfData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "CPI"}, {Name: "L1IM"}, {Name: "L2M"}, {Name: "DtlbLdM"},
	}, 0)
	for i := 0; i < n; i++ {
		l1 := rng.Float64() * 0.02
		l2 := rng.Float64() * 0.005
		dt := rng.Float64() * 0.001
		y := 0.6 + 7*l1 + 0.02*rng.NormFloat64()
		if l2 > 0.002 {
			y = 1.1 + 90*l2 + 40*dt + 0.02*rng.NormFloat64()
		}
		d.MustAppend(dataset.Instance{y, l1, l2, dt})
	}
	return d
}

// newTarget starts an in-process serve server with a tree registered
// as cpi@v1 and returns its base URL.
func newTarget(t *testing.T) string {
	t.Helper()
	d := perfData(1200, 5)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 60
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Register("cpi", "v1", tree, ""); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.New(reg, serve.DefaultConfig()).Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

var testSchema = loadgen.Schema{
	Attrs:  []string{"CPI", "L1IM", "L2M", "DtlbLdM"},
	Target: "CPI",
}

// testTraceConfig returns a short runnable config.
func testTraceConfig(mode loadgen.Mode) loadgen.TraceConfig {
	cfg := loadgen.DefaultTraceConfig()
	cfg.Mode = mode
	cfg.Seed = 42
	cfg.Duration = 600 * time.Millisecond
	cfg.RPS = 150
	cfg.EndRPS = 300
	cfg.Steps = 3
	cfg.BurstFactor = 3
	cfg.BurstPeriod = 200 * time.Millisecond
	cfg.BurstLen = 50 * time.Millisecond
	cfg.Sessions = 4
	cfg.BatchSize = 16
	cfg.StreamBatch = 8
	cfg.Model = "cpi"
	cfg.Schema = testSchema
	return cfg
}

// TestSynthesizeDeterministic pins the reproducibility contract: same
// seed and config yield a byte-identical trace; a different seed does
// not.
func TestSynthesizeDeterministic(t *testing.T) {
	cfg := testTraceConfig(loadgen.ModeSteady)
	a, err := loadgen.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadgen.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Requests)
	jb, _ := json.Marshal(b.Requests)
	if !bytes.Equal(ja, jb) {
		t.Fatal("same seed and config produced different traces")
	}

	cfg.Seed = 43
	c, err := loadgen.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c.Requests)
	if bytes.Equal(ja, jc) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestCorruptPayloadProfile pins the corrupt stream profile: every
// synthesized stream sample carries exactly one negative event rate
// (the clean profile carries none), and replaying such a trace drives
// the target server's stream sessions to a refuted verdict with the
// violated non-negativity relations counted in its metrics.
func TestCorruptPayloadProfile(t *testing.T) {
	cfg := testTraceConfig(loadgen.ModeSteady)
	cfg.Mix = loadgen.Mix{Stream: 1}
	cfg.Payload = loadgen.PayloadCorrupt
	tr, err := loadgen.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}
	countNegatives := func(tr *loadgen.Trace) (samples, negatives int, perSampleViolated bool) {
		perSampleViolated = true
		for _, req := range tr.Requests {
			for _, line := range bytes.Split(bytes.TrimSpace(req.Body), []byte("\n")) {
				var s struct {
					Events map[string]float64 `json:"events"`
				}
				if err := json.Unmarshal(line, &s); err != nil {
					t.Fatalf("stream sample line %q: %v", line, err)
				}
				samples++
				neg := 0
				for _, v := range s.Events {
					if v < 0 {
						neg++
					}
				}
				negatives += neg
				if neg != 1 {
					perSampleViolated = false
				}
			}
		}
		return
	}
	samples, negatives, each := countNegatives(tr)
	if !each || negatives != samples {
		t.Errorf("corrupt profile: %d negative events over %d samples (want exactly one per sample)",
			negatives, samples)
	}

	cfg.Payload = loadgen.PayloadClean
	clean, err := loadgen.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, negatives, _ := countNegatives(clean); negatives != 0 {
		t.Errorf("clean profile produced %d negative events", negatives)
	}

	// Replaying the corrupt trace must refute every session it touches.
	base := newTarget(t)
	rcfg := loadgen.DefaultRunConfig(base)
	if _, err := loadgen.Run(context.Background(), tr, rcfg); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/v1/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Streams struct {
			Sessions           int               `json:"sessions"`
			Refuted            int               `json:"refute_refuted_sessions"`
			RelationViolations map[string]uint64 `json:"refute_relation_violations"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Streams.Sessions == 0 || m.Streams.Refuted != m.Streams.Sessions {
		t.Errorf("%d of %d sessions refuted, want all", m.Streams.Refuted, m.Streams.Sessions)
	}
	if len(m.Streams.RelationViolations) == 0 {
		t.Error("no per-relation violation counters after a corrupt run")
	}
	for rel := range m.Streams.RelationViolations {
		if !strings.HasPrefix(rel, "nonneg-") {
			t.Errorf("unexpected violated relation %q (corruption only negates events)", rel)
		}
	}
}

// TestSynthesizeShape checks structural invariants across all four
// modes: arrivals inside the window and sorted, payload kinds follow
// the mix, counts in the right ballpark for the offered rate.
func TestSynthesizeShape(t *testing.T) {
	for _, mode := range []loadgen.Mode{loadgen.ModeSteady, loadgen.ModeRamp, loadgen.ModeSweep, loadgen.ModeBurst} {
		cfg := testTraceConfig(mode)
		cfg.Duration = 2 * time.Second
		tr, err := loadgen.Synthesize(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(tr.Requests) == 0 {
			t.Fatalf("%s: empty trace", mode)
		}
		// Expected count: integral of rate over the window. All modes
		// here offer between RPS and EndRPS*BurstFactor; just sanity
		// check the order of magnitude.
		n := len(tr.Requests)
		if n < 100 || n > 3000 {
			t.Errorf("%s: %d requests for ~2s at 150-300 rps", mode, n)
		}
		kinds := map[string]int{}
		last := time.Duration(-1)
		for _, r := range tr.Requests {
			if r.At < last || r.At >= cfg.Duration {
				t.Fatalf("%s: arrival %v out of order or window", mode, r.At)
			}
			last = r.At
			kinds[r.Kind]++
			if len(r.Body) == 0 {
				t.Fatalf("%s: empty body for %s", mode, r.Kind)
			}
		}
		for _, k := range []string{loadgen.KindPredict, loadgen.KindBatch, loadgen.KindClassify, loadgen.KindStream} {
			if kinds[k] == 0 {
				t.Errorf("%s: mix kind %s absent from %d requests", mode, k, n)
			}
		}
	}

	// Zero-weight kinds must be absent.
	cfg := testTraceConfig(loadgen.ModeSteady)
	cfg.Mix = loadgen.Mix{Predict: 1}
	tr, err := loadgen.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		if r.Kind != loadgen.KindPredict {
			t.Fatalf("zero-weight kind %s synthesized", r.Kind)
		}
	}
}

// TestRampIncreasesRate: a ramp trace has more arrivals in its second
// half than its first.
func TestRampIncreasesRate(t *testing.T) {
	cfg := testTraceConfig(loadgen.ModeRamp)
	cfg.Duration = 2 * time.Second
	cfg.RPS = 50
	cfg.EndRPS = 500
	tr, err := loadgen.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := cfg.Duration / 2
	first, second := 0, 0
	for _, r := range tr.Requests {
		if r.At < half {
			first++
		} else {
			second++
		}
	}
	if second <= first*2 {
		t.Errorf("ramp 50->500 rps: %d arrivals in first half, %d in second", first, second)
	}
}

// TestRunEndToEnd is the acceptance check: replay a steady mixed trace
// against an in-process server, then require a clean error budget and
// an exact client-vs-server counter match.
func TestRunEndToEnd(t *testing.T) {
	base := newTarget(t)
	tr, err := loadgen.Synthesize(testTraceConfig(loadgen.ModeSteady))
	if err != nil {
		t.Fatal(err)
	}

	before, err := loadgen.FetchMetrics(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loadgen.DefaultRunConfig(base)
	cfg.Workers = 16
	rep, err := loadgen.Run(context.Background(), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := loadgen.FetchMetrics(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	loadgen.Validate(rep, before, after)

	if rep.Totals.Offered != len(tr.Requests) {
		t.Errorf("offered %d != trace %d", rep.Totals.Offered, len(tr.Requests))
	}
	accounted := rep.Totals.Responses + rep.Totals.TransportErrors +
		rep.Totals.DroppedLate + rep.Totals.RejectedQueue
	if accounted != rep.Totals.Offered {
		t.Errorf("accounting leak: %d accounted of %d offered (%+v)",
			accounted, rep.Totals.Offered, rep.Totals)
	}
	if rep.Totals.Errors != 0 || rep.Totals.TransportErrors != 0 {
		t.Errorf("unexpected errors against a healthy server: %+v (%v)",
			rep.Totals, rep.Endpoints["predict"].ErrorsByCode)
	}
	if rep.Totals.OK == 0 || rep.Totals.AchievedRPS <= 0 {
		t.Errorf("no completed work: %+v", rep.Totals)
	}
	for kind, ep := range rep.Endpoints {
		if ep.OK > 0 && (ep.Latency.P50Ms <= 0 || ep.Latency.P99Ms < ep.Latency.P50Ms ||
			ep.Latency.MaxMs < ep.Latency.P99Ms/1.06) {
			t.Errorf("%s: implausible latency %+v", kind, ep.Latency)
		}
	}

	if rep.Validation == nil || !rep.Validation.Exact {
		t.Fatalf("validation not exact: %+v", rep.Validation)
	}
	if !rep.Validation.Consistent {
		t.Fatalf("client and server counters disagree: %+v", rep.Validation.Checks)
	}
	for _, c := range rep.Validation.Checks {
		if c.Counter == "requests" && c.Client == 0 {
			t.Errorf("route %s validated zero requests — vacuous check", c.Route)
		}
	}
}

// TestRunAllModes smoke-tests replay in every mode.
func TestRunAllModes(t *testing.T) {
	base := newTarget(t)
	for _, mode := range []loadgen.Mode{loadgen.ModeSteady, loadgen.ModeRamp, loadgen.ModeSweep, loadgen.ModeBurst} {
		cfg := testTraceConfig(mode)
		cfg.Duration = 300 * time.Millisecond
		cfg.RPS = 80
		cfg.EndRPS = 160
		tr, err := loadgen.Synthesize(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		rep, err := loadgen.Run(context.Background(), tr, loadgen.DefaultRunConfig(base))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if rep.Totals.OK == 0 {
			t.Errorf("%s: no completed requests", mode)
		}
		if rep.Totals.Errors != 0 || rep.Totals.TransportErrors != 0 {
			t.Errorf("%s: errors in smoke run: %+v", mode, rep.Totals)
		}
	}
}

// TestErrorClassification: traffic addressed at a missing model comes
// back classified under the API's "not_found" code, and the counter
// cross-check still matches exactly (the server counted those errors
// too).
func TestErrorClassification(t *testing.T) {
	base := newTarget(t)
	cfg := testTraceConfig(loadgen.ModeSteady)
	cfg.Duration = 300 * time.Millisecond
	cfg.RPS = 100
	cfg.Model = "ghost"
	tr, err := loadgen.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}

	before, err := loadgen.FetchMetrics(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(context.Background(), tr, loadgen.DefaultRunConfig(base))
	if err != nil {
		t.Fatal(err)
	}
	after, err := loadgen.FetchMetrics(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	loadgen.Validate(rep, before, after)

	if rep.Totals.OK != 0 || rep.Totals.Errors == 0 {
		t.Fatalf("expected all-error run: %+v", rep.Totals)
	}
	if rep.Totals.ErrorBudget != 1 {
		t.Errorf("error budget %v, want 1", rep.Totals.ErrorBudget)
	}
	for kind, ep := range rep.Endpoints {
		if ep.ErrorsByCode["not_found"] != ep.Errors {
			t.Errorf("%s: errors %d but not_found %d (%v)", kind, ep.Errors, ep.ErrorsByCode["not_found"], ep.ErrorsByCode)
		}
	}
	if rep.Validation == nil || !rep.Validation.Consistent || !rep.Validation.Exact {
		t.Fatalf("error traffic must still cross-validate: %+v", rep.Validation)
	}
}

// TestFetchModelInfo exercises the detail-driven payload shaping path.
func TestFetchModelInfo(t *testing.T) {
	base := newTarget(t)
	info, err := loadgen.FetchModelInfo(nil, base, "cpi")
	if err != nil {
		t.Fatal(err)
	}
	if info.Target != "CPI" || len(info.Attrs) != 4 || !info.Classifiable {
		t.Errorf("model info: %+v", info)
	}
	if info.Evaluator != "compiled" {
		t.Errorf("evaluator %q, want compiled", info.Evaluator)
	}
	if _, err := loadgen.FetchModelInfo(nil, base, "ghost"); err == nil {
		t.Error("missing model did not error")
	}

	// The fetched schema must synthesize a runnable trace.
	cfg := testTraceConfig(loadgen.ModeSteady)
	cfg.Schema = loadgen.Schema{Attrs: info.Attrs, Target: info.Target}
	if _, err := loadgen.Synthesize(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseMixAndMode(t *testing.T) {
	m, err := loadgen.ParseMix("predict=6,batch=2,classify=1,stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (loadgen.Mix{Predict: 6, Batch: 2, Classify: 1, Stream: 1}) {
		t.Errorf("mix: %+v", m)
	}
	for _, bad := range []string{"", "predict", "predict=x", "bogus=1", "predict=0,batch=0"} {
		if _, err := loadgen.ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	if _, err := loadgen.ParseMode("steady"); err != nil {
		t.Error(err)
	}
	if _, err := loadgen.ParseMode("warp"); err == nil {
		t.Error("ParseMode accepted warp")
	}
}

// TestValidateMismatch exercises the mismatch and inexact paths with
// synthetic snapshots.
func TestValidateMismatch(t *testing.T) {
	rep := &loadgen.Report{
		Endpoints: map[string]*loadgen.EndpointReport{
			"predict": {Route: "/v1/predict", Responses: 5, Errors: 1},
		},
	}
	mk := func(req, errs uint64) *loadgen.ServerMetrics {
		m := &loadgen.ServerMetrics{Endpoints: map[string]struct {
			Requests uint64 `json:"requests"`
			Errors   uint64 `json:"errors"`
		}{}}
		m.Endpoints["/v1/predict"] = struct {
			Requests uint64 `json:"requests"`
			Errors   uint64 `json:"errors"`
		}{Requests: req, Errors: errs}
		return m
	}
	loadgen.Validate(rep, mk(10, 0), mk(14, 1)) // server saw 4, client 5
	if rep.Validation.Consistent {
		t.Error("mismatch not detected")
	}

	rep.Totals.TransportErrors = 1
	loadgen.Validate(rep, mk(0, 0), mk(5, 1))
	if rep.Validation.Exact || rep.Validation.Note == "" {
		t.Error("transport errors must downgrade validation to inexact")
	}
}
