package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// EndpointReport is one traffic kind's replay outcome.
type EndpointReport struct {
	// Route is the server-side metrics key ("/v1/predict", ...).
	Route string `json:"route"`
	// Offered is the synthesized request count; Sent the requests that
	// actually went on the wire; Responses those that got an HTTP
	// answer (OK + Errors).
	Offered   int `json:"offered"`
	Sent      int `json:"sent"`
	Responses int `json:"responses"`
	OK        int `json:"ok"`
	// Errors counts HTTP >= 400 answers; TransportErrors counts sends
	// with no usable answer (dial/timeout/read failures).
	Errors          int `json:"errors"`
	TransportErrors int `json:"transport_errors"`
	// DroppedLate are requests abandoned because their scheduled time
	// had slipped past MaxLateness before a worker was free;
	// RejectedQueue are requests the full dispatch queue refused. Both
	// are offered load the server failed to absorb.
	DroppedLate   int `json:"dropped_late"`
	RejectedQueue int `json:"rejected_queue"`
	// Rows is the total instances served across OK responses.
	Rows int `json:"rows"`
	// ErrorsByCode histograms failures by API error code (plus
	// "transport" and "http_<status>" fallbacks).
	ErrorsByCode map[string]int `json:"errors_by_code,omitempty"`
	// ErrorBudget is the error fraction of offered load: everything
	// that was not an OK response, over Offered.
	ErrorBudget float64 `json:"error_budget"`
	// OfferedRPS is the synthesized rate; AchievedRPS the OK-response
	// completion rate over the wall clock.
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Latency measures from the scheduled arrival (coordinated-omission
	// corrected: queueing behind a slow server counts against it);
	// Service from the actual send.
	Latency LatencyMs `json:"latency"`
	Service LatencyMs `json:"service"`
}

// Report is the JSON document cmd/loadgen emits.
type Report struct {
	Target  string      `json:"target"`
	Config  TraceConfig `json:"config"`
	Workers int         `json:"workers"`
	// StartedAt is wall-clock RFC3339; WallSeconds the replay span
	// (dispatch start to last response).
	StartedAt   string  `json:"started_at"`
	WallSeconds float64 `json:"wall_seconds"`
	// Endpoints is keyed by traffic kind (predict, batch, classify,
	// stream); Totals aggregates them.
	Endpoints map[string]*EndpointReport `json:"endpoints"`
	Totals    EndpointReport             `json:"totals"`
	// Validation is the client-vs-server counter cross-check, present
	// when Validate ran.
	Validation *Validation `json:"validation,omitempty"`
}

func buildReport(tr *Trace, cfg *RunConfig, stats map[string]*endpointStats, wall time.Duration) *Report {
	rep := &Report{
		Target:      cfg.BaseURL,
		Config:      tr.Config,
		Workers:     cfg.Workers,
		StartedAt:   time.Now().Add(-wall).UTC().Format(time.RFC3339),
		WallSeconds: wall.Seconds(),
		Endpoints:   map[string]*EndpointReport{},
	}
	offered := tr.Config.Duration.Seconds()
	for kind, st := range stats {
		st.mu.Lock()
		ep := &EndpointReport{
			Route:           st.route,
			Offered:         st.offered,
			Sent:            st.sent,
			Responses:       st.ok + st.httpErrors,
			OK:              st.ok,
			Errors:          st.httpErrors,
			TransportErrors: st.transportErrs,
			DroppedLate:     st.droppedLate,
			RejectedQueue:   st.rejectedQueue,
			Rows:            st.rows,
			ErrorsByCode:    st.byCode,
			Latency:         st.latency.snapshot(),
			Service:         st.service.snapshot(),
		}
		st.mu.Unlock()
		if ep.Offered > 0 {
			ep.ErrorBudget = float64(ep.Offered-ep.OK) / float64(ep.Offered)
		}
		ep.OfferedRPS = float64(ep.Offered) / offered
		if wall > 0 {
			ep.AchievedRPS = float64(ep.OK) / wall.Seconds()
		}
		rep.Endpoints[kind] = ep

		rep.Totals.Offered += ep.Offered
		rep.Totals.Sent += ep.Sent
		rep.Totals.Responses += ep.Responses
		rep.Totals.OK += ep.OK
		rep.Totals.Errors += ep.Errors
		rep.Totals.TransportErrors += ep.TransportErrors
		rep.Totals.DroppedLate += ep.DroppedLate
		rep.Totals.RejectedQueue += ep.RejectedQueue
		rep.Totals.Rows += ep.Rows
	}
	rep.Totals.Route = "*"
	if rep.Totals.Offered > 0 {
		rep.Totals.ErrorBudget = float64(rep.Totals.Offered-rep.Totals.OK) / float64(rep.Totals.Offered)
	}
	rep.Totals.OfferedRPS = float64(rep.Totals.Offered) / offered
	if wall > 0 {
		rep.Totals.AchievedRPS = float64(rep.Totals.OK) / wall.Seconds()
	}
	return rep
}

// ServerMetrics is the slice of /v1/metrics.json the harness consumes.
type ServerMetrics struct {
	Endpoints map[string]struct {
		Requests uint64 `json:"requests"`
		Errors   uint64 `json:"errors"`
	} `json:"endpoints"`
}

// FetchMetrics scrapes the server's machine-readable counters.
func FetchMetrics(client *http.Client, baseURL string) (*ServerMetrics, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/v1/metrics.json")
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: metrics scrape returned HTTP %d", resp.StatusCode)
	}
	var m ServerMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("loadgen: decoding metrics: %w", err)
	}
	return &m, nil
}

// ModelInfo is the slice of GET /v1/models/{ref} the harness consumes
// to shape payloads per model.
type ModelInfo struct {
	Name         string   `json:"name"`
	Version      string   `json:"version"`
	Attrs        []string `json:"attrs"`
	Target       string   `json:"target"`
	Trees        int      `json:"trees"`
	Evaluator    string   `json:"evaluator"`
	Classifiable bool     `json:"classifiable"`
}

// FetchModelInfo resolves a model reference to its serving detail.
func FetchModelInfo(client *http.Client, baseURL, ref string) (*ModelInfo, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/v1/models/" + ref)
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetching model detail: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: model detail for %q returned HTTP %d", ref, resp.StatusCode)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("loadgen: decoding model detail: %w", err)
	}
	return &info, nil
}

// ValidationCheck is one client-vs-server counter comparison.
type ValidationCheck struct {
	Route   string `json:"route"`
	Counter string `json:"counter"` // "requests" or "errors"
	Client  uint64 `json:"client"`
	Server  uint64 `json:"server"`
	Match   bool   `json:"match"`
}

// Validation is the counter cross-check: the client's view of how many
// requests and errors each route saw against the delta of the server's
// own counters across the run (Röhl et al.: validate the measurement
// infrastructure, not just the system under it).
type Validation struct {
	// Consistent is true when every check matched.
	Consistent bool `json:"consistent"`
	// Exact is false when transport errors make an exact comparison
	// impossible (a failed send may or may not have reached the
	// server); checks are then skipped rather than reported as
	// mismatches.
	Exact  bool              `json:"exact"`
	Checks []ValidationCheck `json:"checks,omitempty"`
	Note   string            `json:"note,omitempty"`
}

// Validate fills rep.Validation by comparing per-route client counts
// against the before/after server metric snapshots.
func Validate(rep *Report, before, after *ServerMetrics) {
	v := &Validation{Consistent: true, Exact: rep.Totals.TransportErrors == 0}
	if !v.Exact {
		v.Note = fmt.Sprintf("%d transport errors: requests without a response may or may not have reached the server; exact counter comparison skipped",
			rep.Totals.TransportErrors)
		rep.Validation = v
		return
	}

	// Aggregate client counts per server route (predict and batch both
	// land on /v1/predict).
	type agg struct{ responses, errors uint64 }
	client := map[string]*agg{}
	for _, ep := range rep.Endpoints {
		a, ok := client[ep.Route]
		if !ok {
			a = &agg{}
			client[ep.Route] = a
		}
		a.responses += uint64(ep.Responses)
		a.errors += uint64(ep.Errors)
	}
	routes := make([]string, 0, len(client))
	for r := range client {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, route := range routes {
		a := client[route]
		var serverReq, serverErr uint64
		if b, ok := before.Endpoints[route]; ok {
			if aft, ok := after.Endpoints[route]; ok {
				serverReq = aft.Requests - b.Requests
				serverErr = aft.Errors - b.Errors
			}
		}
		reqCheck := ValidationCheck{Route: route, Counter: "requests",
			Client: a.responses, Server: serverReq, Match: a.responses == serverReq}
		errCheck := ValidationCheck{Route: route, Counter: "errors",
			Client: a.errors, Server: serverErr, Match: a.errors == serverErr}
		v.Checks = append(v.Checks, reqCheck, errCheck)
		if !reqCheck.Match || !errCheck.Match {
			v.Consistent = false
		}
	}
	rep.Validation = v
}
