package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// RunConfig tunes trace replay.
type RunConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers bounds in-flight requests (the open-loop pool size).
	Workers int
	// QueueDepth bounds the dispatch backlog; a full queue rejects the
	// request instead of stalling the trace clock (the clock never
	// waits for the server — that is the open-loop contract).
	QueueDepth int
	// MaxLateness drops a queued request whose scheduled time has
	// slipped by more than this before a worker picked it up: once the
	// backlog is that old, later sends only measure the queue.
	MaxLateness time.Duration
	// RequestTimeout bounds each request.
	RequestTimeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one.
	Client *http.Client
}

// DefaultRunConfig returns replay defaults sized for a local target.
func DefaultRunConfig(baseURL string) RunConfig {
	return RunConfig{
		BaseURL:        baseURL,
		Workers:        32,
		QueueDepth:     0, // Workers * 8
		MaxLateness:    2 * time.Second,
		RequestTimeout: 10 * time.Second,
	}
}

func (c *RunConfig) validate() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: missing base URL")
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.Workers * 8
	}
	if c.MaxLateness <= 0 {
		c.MaxLateness = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Timeout: c.RequestTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        c.Workers * 2,
				MaxIdleConnsPerHost: c.Workers * 2,
			},
		}
	}
	return nil
}

// endpointStats accumulates one kind's counters during replay.
type endpointStats struct {
	mu            sync.Mutex
	route         string
	offered       int
	sent          int
	ok            int
	httpErrors    int
	transportErrs int
	droppedLate   int
	rejectedQueue int
	rows          int
	byCode        map[string]int
	latency       *hist // from scheduled arrival (coordinated-omission corrected)
	service       *hist // from actual send
}

func newEndpointStats(route string) *endpointStats {
	return &endpointStats{route: route, byCode: map[string]int{}, latency: newHist(), service: newHist()}
}

// scheduled pairs a trace request with its absolute fire time.
type scheduled struct {
	req   *Request
	fires time.Time
}

// Run replays the trace open-loop against cfg.BaseURL and returns the
// report. The dispatcher walks arrivals on the trace clock; workers
// send and record. ctx cancellation stops dispatch (already-queued
// requests still drain).
func Run(ctx context.Context, tr *Trace, cfg RunConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(tr.Requests) == 0 {
		return nil, fmt.Errorf("loadgen: empty trace")
	}

	stats := map[string]*endpointStats{}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		st, ok := stats[r.Kind]
		if !ok {
			st = newEndpointStats(r.Route)
			stats[r.Kind] = st
		}
		st.offered++
	}

	queue := make(chan scheduled, cfg.QueueDepth)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range queue {
				runOne(cfg.Client, cfg.BaseURL, item, stats[item.req.Kind], cfg.MaxLateness)
			}
		}()
	}

	start := time.Now()
dispatch:
	for i := range tr.Requests {
		r := &tr.Requests[i]
		fires := start.Add(r.At)
		if wait := time.Until(fires); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		select {
		case queue <- scheduled{req: r, fires: fires}:
		default:
			// Queue full: the server is more than QueueDepth requests
			// behind. Rejecting keeps the trace clock honest instead of
			// back-pressuring the generator (closed-loop would hide the
			// overload); the rejection is load the server failed to
			// absorb and lands in the error budget.
			st := stats[r.Kind]
			st.mu.Lock()
			st.rejectedQueue++
			st.mu.Unlock()
		}
	}
	close(queue)
	wg.Wait()
	wall := time.Since(start)

	return buildReport(tr, &cfg, stats, wall), nil
}

// runOne sends one scheduled request and records its outcome.
func runOne(client *http.Client, baseURL string, item scheduled, st *endpointStats, maxLate time.Duration) {
	if late := time.Since(item.fires); late > maxLate {
		st.mu.Lock()
		st.droppedLate++
		st.mu.Unlock()
		return
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+item.req.Path, bytes.NewReader(item.req.Body))
	if err != nil {
		st.mu.Lock()
		st.transportErrs++
		st.byCode["transport"]++
		st.mu.Unlock()
		return
	}
	req.Header.Set("Content-Type", item.req.ContentType)
	sendStart := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		st.mu.Lock()
		st.sent++
		st.transportErrs++
		st.byCode["transport"]++
		st.mu.Unlock()
		return
	}
	code, readErr := classifyResponse(resp)
	done := time.Now()

	st.mu.Lock()
	st.sent++
	st.latency.observeMs(float64(done.Sub(item.fires)) / float64(time.Millisecond))
	st.service.observeMs(float64(done.Sub(sendStart)) / float64(time.Millisecond))
	switch {
	case readErr != nil:
		st.transportErrs++
		st.byCode["transport"]++
	case resp.StatusCode >= 400:
		st.httpErrors++
		st.byCode[code]++
	default:
		st.ok++
		st.rows += item.req.Rows
	}
	st.mu.Unlock()
}

// classifyResponse drains the body and, for error statuses, extracts
// the API error envelope's code; responses without a parseable
// envelope classify as "http_<status>".
func classifyResponse(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	if resp.StatusCode < 400 {
		_, err := io.Copy(io.Discard, resp.Body)
		return "", err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return "", err
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		return env.Error.Code, nil
	}
	return fmt.Sprintf("http_%d", resp.StatusCode), nil
}
