// Package loadgen synthesizes and replays request traces against the
// serve API: the capacity harness behind `make bench-load` and every
// end-to-end scaling claim. It is modeled on serverless trace
// synthesizers (vhive/invitro): a seeded generator turns a rate shape
// (steady, ramp, RPS sweep, burst) and a traffic mix into a fully
// materialized trace — every request's arrival offset, endpoint and
// marshalled body — before the first byte goes on the wire. Given the
// same seed and config the trace is byte-identical, so two runs against
// two builds measure the servers, not the generator.
//
// Replay is open-loop: requests fire at their synthesized times from a
// bounded worker pool, never waiting for earlier responses, and latency
// is measured from the *scheduled* arrival rather than the actual send
// — the standard correction for coordinated omission, where a stalled
// server would otherwise slow the generator down and hide its own tail
// latency. Results land in a JSON Report (per-endpoint p50/p95/p99/max,
// achieved vs offered throughput, error budget by API error code) and
// are cross-validated against the server's own /v1/metrics.json
// counters.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/xrand"
)

// Mode names a rate shape.
type Mode string

const (
	// ModeSteady offers a constant rate for the whole duration.
	ModeSteady Mode = "steady"
	// ModeRamp interpolates the rate linearly from RPS to EndRPS.
	ModeRamp Mode = "ramp"
	// ModeSweep holds Steps equal-length plateaus stepping from RPS to
	// EndRPS — the classic capacity-finding sweep.
	ModeSweep Mode = "sweep"
	// ModeBurst offers RPS with periodic bursts of RPS*BurstFactor.
	ModeBurst Mode = "burst"
)

// ParseMode validates a mode name.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeSteady, ModeRamp, ModeSweep, ModeBurst:
		return Mode(s), nil
	}
	return "", fmt.Errorf("loadgen: unknown mode %q (want steady, ramp, sweep or burst)", s)
}

// Request kinds. Predict and Batch both hit /v1/predict (single-row
// named events vs a full-width row batch through the compiled kernel);
// Classify and Stream hit their own routes.
const (
	KindPredict  = "predict"
	KindBatch    = "batch"
	KindClassify = "classify"
	KindStream   = "stream"
)

// Mix weighs the traffic kinds; a kind's share of requests is its
// weight over the sum. Zero-weight kinds are absent from the trace.
type Mix struct {
	Predict  int `json:"predict"`
	Batch    int `json:"batch"`
	Classify int `json:"classify"`
	Stream   int `json:"stream"`
}

// DefaultMix is mostly single predictions with some batches, classify
// lookups and stream ingestion — a serving-heavy profile.
func DefaultMix() Mix { return Mix{Predict: 6, Batch: 2, Classify: 1, Stream: 1} }

// ParseMix parses "predict=6,batch=2,classify=1,stream=1"; omitted
// kinds get weight 0.
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return m, fmt.Errorf("loadgen: empty mix")
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("loadgen: mix part %q: want kind=weight", part)
		}
		var w int
		if _, err := fmt.Sscanf(v, "%d", &w); err != nil || w < 0 {
			return m, fmt.Errorf("loadgen: mix weight %q for %q: want a non-negative integer", v, k)
		}
		switch k {
		case KindPredict:
			m.Predict = w
		case KindBatch:
			m.Batch = w
		case KindClassify:
			m.Classify = w
		case KindStream:
			m.Stream = w
		default:
			return m, fmt.Errorf("loadgen: unknown mix kind %q", k)
		}
	}
	if m.Predict+m.Batch+m.Classify+m.Stream == 0 {
		return m, fmt.Errorf("loadgen: mix has no positive weights")
	}
	return m, nil
}

// Payload profiles for stream samples.
const (
	// PayloadClean emits physically consistent counter rates.
	PayloadClean = "clean"
	// PayloadCorrupt negates one event value per stream sample — an
	// impossible reading (event rates cannot be negative) that the serve
	// side's counter-consistency layer must refute. Non-stream request
	// kinds are unaffected.
	PayloadCorrupt = "corrupt"
)

// ParsePayload validates a payload profile name ("" = clean).
func ParsePayload(s string) (string, error) {
	switch s {
	case "", PayloadClean:
		return PayloadClean, nil
	case PayloadCorrupt:
		return PayloadCorrupt, nil
	}
	return "", fmt.Errorf("loadgen: unknown payload profile %q (want clean or corrupt)", s)
}

// Schema is the part of a model's description the synthesizer needs to
// shape payloads: the full column list and which column is the target.
// cmd/loadgen fills it from GET /v1/models/{ref}.
type Schema struct {
	Attrs  []string `json:"attrs"`
	Target string   `json:"target"`
}

// events returns the non-target attribute names, in schema order.
func (s Schema) events() []string {
	out := make([]string, 0, len(s.Attrs)-1)
	for _, a := range s.Attrs {
		if a != s.Target {
			out = append(out, a)
		}
	}
	return out
}

// targetIndex returns the target column's position, or -1.
func (s Schema) targetIndex() int {
	for i, a := range s.Attrs {
		if a == s.Target {
			return i
		}
	}
	return -1
}

// TraceConfig parameterizes synthesis. The zero value is not runnable;
// call Validate (or start from DefaultTraceConfig) first.
type TraceConfig struct {
	// Seed drives every random draw; same seed + same config =
	// byte-identical trace.
	Seed int64 `json:"seed"`
	// Mode is the rate shape.
	Mode Mode `json:"mode"`
	// Duration is the offered-traffic window.
	Duration time.Duration `json:"duration_ns"`
	// RPS is the base request rate (steady rate, ramp/sweep start,
	// burst baseline).
	RPS float64 `json:"rps"`
	// EndRPS is the ramp/sweep final rate; ignored by steady and burst.
	EndRPS float64 `json:"end_rps,omitempty"`
	// Steps is the sweep plateau count (>= 1); ignored elsewhere.
	Steps int `json:"steps,omitempty"`
	// BurstFactor multiplies RPS inside burst windows (> 1).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	// BurstPeriod is the time between burst starts; BurstLen how long
	// each burst lasts.
	BurstPeriod time.Duration `json:"burst_period_ns,omitempty"`
	BurstLen    time.Duration `json:"burst_len_ns,omitempty"`
	// Mix weighs the traffic kinds.
	Mix Mix `json:"mix"`
	// Sessions is the number of distinct synthetic clients. Each
	// session draws its own base event-rate profile, so payloads
	// cluster per session — a prediction cache sees realistic reuse
	// instead of all-unique or all-identical keys. Stream requests
	// carry their session id (?session=sN), so the server keeps one
	// monitor timeline per synthetic client and the run spreads over
	// the session table's shards.
	Sessions int `json:"sessions"`
	// BatchSize is the row count of each batch predict request.
	BatchSize int `json:"batch_size"`
	// StreamBatch is the samples per stream ingestion request.
	StreamBatch int `json:"stream_batch"`
	// Payload is the stream-sample payload profile (PayloadClean or
	// PayloadCorrupt; "" = clean).
	Payload string `json:"payload,omitempty"`
	// Model is the registry reference the trace addresses.
	Model string `json:"model"`
	// Schema shapes payloads; from GET /v1/models/{ref}.
	Schema Schema `json:"schema"`
}

// DefaultTraceConfig returns a short steady-state mixed trace.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Seed:        1,
		Mode:        ModeSteady,
		Duration:    10 * time.Second,
		RPS:         100,
		Steps:       5,
		BurstFactor: 4,
		BurstPeriod: 2 * time.Second,
		BurstLen:    250 * time.Millisecond,
		Mix:         DefaultMix(),
		Sessions:    16,
		BatchSize:   64,
		StreamBatch: 16,
	}
}

// Validate fills derivable defaults and rejects unrunnable configs.
func (c *TraceConfig) Validate() error {
	if _, err := ParseMode(string(c.Mode)); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: non-positive duration %v", c.Duration)
	}
	if c.RPS <= 0 {
		return fmt.Errorf("loadgen: non-positive rps %v", c.RPS)
	}
	if c.EndRPS <= 0 {
		c.EndRPS = c.RPS
	}
	if c.Steps <= 0 {
		c.Steps = 1
	}
	if c.BurstFactor < 1 {
		c.BurstFactor = 1
	}
	if c.Mode == ModeBurst && (c.BurstPeriod <= 0 || c.BurstLen <= 0 || c.BurstLen > c.BurstPeriod) {
		return fmt.Errorf("loadgen: burst mode needs 0 < burst-len <= burst-period (got len %v, period %v)",
			c.BurstLen, c.BurstPeriod)
	}
	if c.Mix.Predict+c.Mix.Batch+c.Mix.Classify+c.Mix.Stream <= 0 {
		return fmt.Errorf("loadgen: mix has no positive weights")
	}
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.StreamBatch <= 0 {
		c.StreamBatch = 1
	}
	payload, err := ParsePayload(c.Payload)
	if err != nil {
		return err
	}
	c.Payload = payload
	if c.Model == "" {
		return fmt.Errorf("loadgen: missing model reference")
	}
	if len(c.Schema.Attrs) < 2 || c.Schema.targetIndex() < 0 {
		return fmt.Errorf("loadgen: schema needs the target plus at least one event column (got attrs %v, target %q)",
			c.Schema.Attrs, c.Schema.Target)
	}
	return nil
}

// rate returns the offered rate at offset t.
func (c *TraceConfig) rate(t time.Duration) float64 {
	frac := float64(t) / float64(c.Duration)
	switch c.Mode {
	case ModeRamp:
		return c.RPS + (c.EndRPS-c.RPS)*frac
	case ModeSweep:
		step := int(frac * float64(c.Steps))
		if step >= c.Steps {
			step = c.Steps - 1
		}
		if c.Steps == 1 {
			return c.RPS
		}
		return c.RPS + (c.EndRPS-c.RPS)*float64(step)/float64(c.Steps-1)
	case ModeBurst:
		if (t % c.BurstPeriod) < c.BurstLen {
			return c.RPS * c.BurstFactor
		}
		return c.RPS
	default:
		return c.RPS
	}
}

// peakRate bounds rate(t) from above, for the thinning sampler.
func (c *TraceConfig) peakRate() float64 {
	peak := c.RPS
	if c.EndRPS > peak && (c.Mode == ModeRamp || c.Mode == ModeSweep) {
		peak = c.EndRPS
	}
	if c.Mode == ModeBurst {
		peak = c.RPS * c.BurstFactor
	}
	return peak
}

// Request is one synthesized API call, fully materialized: arrival
// offset, wire-level target and body. Route is the server's metrics
// key for the path (predict and batch share "/v1/predict").
type Request struct {
	At          time.Duration `json:"at_ns"`
	Kind        string        `json:"kind"`
	Route       string        `json:"route"`
	Path        string        `json:"path"`
	ContentType string        `json:"content_type"`
	Body        []byte        `json:"body"`
	// Rows counts the instances (rows or samples) the request carries,
	// for offered-work accounting.
	Rows int `json:"rows"`
}

// Trace is a synthesized request sequence, sorted by arrival offset.
type Trace struct {
	Config   TraceConfig `json:"config"`
	Requests []Request   `json:"requests"`
}

// Synthesize materializes the trace for a config: a non-homogeneous
// Poisson arrival process (thinning against the mode's peak rate),
// each arrival assigned a kind by mix weight, a session, and a
// marshalled payload drawn from the session's profile. Every draw
// comes from one seeded generator, so the result is byte-identical
// across runs and machines.
func Synthesize(cfg TraceConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	events := cfg.Schema.events()
	tgt := cfg.Schema.targetIndex()

	// Per-session base profiles: each session's event rates center on
	// its own draws, so payload reuse clusters by session.
	base := make([][]float64, cfg.Sessions)
	for i := range base {
		base[i] = make([]float64, len(events))
		for j := range base[i] {
			base[i][j] = 0.002 + 0.018*rng.Float64()
		}
	}

	// Mix lookup table: weights flattened into a slice for one Intn.
	kinds := make([]string, 0, cfg.Mix.Predict+cfg.Mix.Batch+cfg.Mix.Classify+cfg.Mix.Stream)
	for i := 0; i < cfg.Mix.Predict; i++ {
		kinds = append(kinds, KindPredict)
	}
	for i := 0; i < cfg.Mix.Batch; i++ {
		kinds = append(kinds, KindBatch)
	}
	for i := 0; i < cfg.Mix.Classify; i++ {
		kinds = append(kinds, KindClassify)
	}
	for i := 0; i < cfg.Mix.Stream; i++ {
		kinds = append(kinds, KindStream)
	}

	// sample perturbs the session's base rates for one instance.
	sample := func(sess int) []float64 {
		vals := make([]float64, len(events))
		for j, b := range base[sess] {
			vals[j] = b * (0.5 + rng.Float64())
		}
		return vals
	}
	eventMap := func(vals []float64) map[string]float64 {
		m := make(map[string]float64, len(vals))
		for j, n := range events {
			m[n] = vals[j]
		}
		return m
	}
	fullRow := func(vals []float64) []float64 {
		row := make([]float64, len(cfg.Schema.Attrs))
		k := 0
		for i := range row {
			if i == tgt {
				continue
			}
			row[i] = vals[k]
			k++
		}
		return row
	}

	peak := cfg.peakRate()
	tr := &Trace{Config: cfg}
	var t float64 // seconds
	horizon := cfg.Duration.Seconds()
	for {
		// Exponential inter-arrival at the peak rate, thinned down to
		// the momentary rate — the textbook non-homogeneous sampler.
		t += -math.Log(1-rng.Float64()) / peak
		if t >= horizon {
			break
		}
		at := time.Duration(t * float64(time.Second))
		if rng.Float64() > cfg.rate(at)/peak {
			continue
		}
		kind := kinds[rng.Intn(len(kinds))]
		sess := rng.Intn(cfg.Sessions)
		req, err := buildRequest(&cfg, kind, sess, sample, eventMap, fullRow, rng)
		if err != nil {
			return nil, err
		}
		req.At = at
		tr.Requests = append(tr.Requests, req)
	}
	sort.SliceStable(tr.Requests, func(i, j int) bool { return tr.Requests[i].At < tr.Requests[j].At })
	return tr, nil
}

// buildRequest marshals one request body for a kind. Bodies go through
// encoding/json, which sorts map keys, so marshalling is deterministic.
func buildRequest(cfg *TraceConfig, kind string, sess int,
	sample func(int) []float64, eventMap func([]float64) map[string]float64,
	fullRow func([]float64) []float64, rng *xrand.Rand) (Request, error) {

	switch kind {
	case KindPredict:
		body, err := json.Marshal(map[string]any{
			"model":  cfg.Model,
			"events": []map[string]float64{eventMap(sample(sess))},
		})
		return Request{Kind: kind, Route: "/v1/predict", Path: "/v1/predict",
			ContentType: "application/json", Body: body, Rows: 1}, err
	case KindBatch:
		rows := make([][]float64, cfg.BatchSize)
		for i := range rows {
			rows[i] = fullRow(sample(sess))
		}
		body, err := json.Marshal(map[string]any{"model": cfg.Model, "rows": rows})
		return Request{Kind: kind, Route: "/v1/predict", Path: "/v1/predict",
			ContentType: "application/json", Body: body, Rows: cfg.BatchSize}, err
	case KindClassify:
		body, err := json.Marshal(map[string]any{
			"model": cfg.Model,
			"row":   fullRow(sample(sess)),
		})
		return Request{Kind: kind, Route: "/v1/classify", Path: "/v1/classify",
			ContentType: "application/json", Body: body, Rows: 1}, err
	case KindStream:
		var b strings.Builder
		for i := 0; i < cfg.StreamBatch; i++ {
			vals := sample(sess)
			if cfg.Payload == PayloadCorrupt {
				// One impossible (negative) event rate per sample: every
				// corrupted sample violates a non-negativity relation, so a
				// refutation-checking server must flag the session.
				vals[rng.Intn(len(vals))] *= -1
			}
			cpi := 0.5 + rng.Float64()
			line, err := json.Marshal(map[string]any{
				"events": eventMap(vals),
				"cpi":    cpi,
			})
			if err != nil {
				return Request{}, err
			}
			b.Write(line)
			b.WriteByte('\n')
		}
		// Each synthetic session streams into its own server-side monitor
		// timeline (?session=sN), so a run with -sessions N exercises the
		// session table's shard spread and TTL bookkeeping instead of
		// funnelling every stream request into one session lock.
		return Request{Kind: kind, Route: "/v1/stream",
			Path:        fmt.Sprintf("/v1/stream?model=%s&session=s%d", cfg.Model, sess),
			ContentType: "application/x-ndjson", Body: []byte(b.String()),
			Rows: cfg.StreamBatch}, nil
	}
	return Request{}, fmt.Errorf("loadgen: unknown request kind %q", kind)
}
