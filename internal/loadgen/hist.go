package loadgen

import (
	"math"
	"sort"
	"sync"
)

// Client-side latency histogram: log-spaced buckets at 5% resolution
// from 1µs to 100s, so reported quantiles overestimate by at most one
// bucket (~5%) — plenty for p50/p95/p99 comparisons while keeping the
// per-endpoint state a few KB. A plain mutex per observation is fine at
// load-generator rates (thousands/s, not millions/s).

// histBoundsMs are the bucket upper bounds in milliseconds.
var histBoundsMs = func() []float64 {
	const growth = 1.05
	bounds := []float64{0.001}
	for bounds[len(bounds)-1] < 100_000 {
		bounds = append(bounds, bounds[len(bounds)-1]*growth)
	}
	return bounds
}()

type hist struct {
	mu     sync.Mutex
	counts []uint64 // len(histBoundsMs)+1, last is overflow
	total  uint64
	sumMs  float64
	maxMs  float64
}

func newHist() *hist {
	return &hist{counts: make([]uint64, len(histBoundsMs)+1)}
}

func (h *hist) observeMs(ms float64) {
	if ms < 0 || math.IsNaN(ms) {
		ms = 0
	}
	i := sort.SearchFloat64s(histBoundsMs, ms)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sumMs += ms
	if ms > h.maxMs {
		h.maxMs = ms
	}
	h.mu.Unlock()
}

// LatencyMs summarizes one histogram for the report.
type LatencyMs struct {
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// snapshot reports quantiles as bucket upper bounds (the max for the
// overflow bucket), like the server's histogram.
func (h *hist) snapshot() LatencyMs {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := LatencyMs{MaxMs: h.maxMs}
	if h.total == 0 {
		return s
	}
	s.MeanMs = h.sumMs / float64(h.total)
	quantile := func(q float64) float64 {
		rank := uint64(q * float64(h.total))
		if rank < 1 {
			rank = 1
		}
		var cum uint64
		for i, c := range h.counts {
			cum += c
			if cum >= rank {
				if i < len(histBoundsMs) {
					return histBoundsMs[i]
				}
				return h.maxMs
			}
		}
		return h.maxMs
	}
	s.P50Ms = quantile(0.50)
	s.P95Ms = quantile(0.95)
	s.P99Ms = quantile(0.99)
	return s
}
