package ann

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
)

func linearData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "a"}, {Name: "b"}}, 0)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		d.MustAppend(dataset.Instance{3*a - 2*b + 1, a, b})
	}
	return d
}

func TestTrainValidation(t *testing.T) {
	d := linearData(10, 1)
	cfg := DefaultConfig()
	cfg.Hidden = 0
	if _, err := Train(d, cfg); err == nil {
		t.Error("zero hidden width accepted")
	}
	cfg = DefaultConfig()
	cfg.Epochs = 0
	if _, err := Train(d, cfg); err == nil {
		t.Error("zero epochs accepted")
	}
	empty := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	if _, err := Train(empty, DefaultConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	d := linearData(2000, 2)
	cfg := DefaultConfig()
	cfg.Epochs = 60
	net, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eval.Evaluate(net, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Correlation < 0.99 {
		t.Errorf("training correlation %v < 0.99", m.Correlation)
	}
	if m.RAE > 0.1 {
		t.Errorf("training RAE %v > 10%%", m.RAE)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	// The interaction x1*x2 is invisible to any linear model; the MLP
	// must capture it.
	rng := rand.New(rand.NewSource(3))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "a"}, {Name: "b"}}, 0)
	for i := 0; i < 3000; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		d.MustAppend(dataset.Instance{a * b, a, b})
	}
	cfg := DefaultConfig()
	cfg.Epochs = 150
	net, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := eval.Evaluate(net, d)
	if m.Correlation < 0.9 {
		t.Errorf("nonlinear fit correlation %v < 0.9", m.Correlation)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	d := linearData(300, 4)
	cfg := DefaultConfig()
	cfg.Epochs = 10
	n1, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := dataset.Instance{0, 0.3, -0.7}
	if n1.Predict(in) != n2.Predict(in) {
		t.Error("same seed produced different networks")
	}
	cfg.Seed = 99
	n3, _ := Train(d, cfg)
	if n1.Predict(in) == n3.Predict(in) {
		t.Error("different seeds produced identical networks (suspicious)")
	}
}

func TestPredictFinite(t *testing.T) {
	d := linearData(200, 5)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	net, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []dataset.Instance{{0, 0, 0}, {0, 100, -100}, {0, 1e-9, 1e9}} {
		if p := net.Predict(in); math.IsNaN(p) || math.IsInf(p, 0) {
			t.Errorf("Predict(%v) = %v", in, p)
		}
	}
}

func TestConstantTarget(t *testing.T) {
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		d.MustAppend(dataset.Instance{4, rng.NormFloat64()})
	}
	cfg := DefaultConfig()
	cfg.Epochs = 20
	net, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p := net.Predict(dataset.Instance{0, 0.1}); math.Abs(p-4) > 0.5 {
		t.Errorf("constant-target prediction %v, want ~4", p)
	}
}
