// Package ann implements a feed-forward artificial neural network
// (multilayer perceptron) trained by stochastic gradient descent with
// momentum. It reproduces the paper's black-box comparator: on the
// performance dataset the ANN reaches a correlation around 0.99 —
// marginally above the model tree — but its weights cannot be read as
// per-event cycle costs, which is exactly the trade-off the paper argues
// against for performance analysis.
//
// Architecture: one hidden layer of tanh units and a linear output unit.
// Inputs and the target are standardized internally, so callers train on
// raw event-rate data directly.
package ann

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Config holds the network and training hyper-parameters.
type Config struct {
	// Hidden is the hidden layer width.
	Hidden int
	// Epochs is the number of passes over the training set.
	Epochs int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient.
	Momentum float64
	// WeightDecay is an L2 penalty applied each update (0 disables).
	WeightDecay float64
	// Seed drives weight initialization and example shuffling.
	Seed int64
}

// DefaultConfig returns settings comparable to Weka's MultilayerPerceptron
// defaults scaled for this dataset size.
func DefaultConfig() Config {
	return Config{
		Hidden:       16,
		Epochs:       200,
		LearningRate: 0.01,
		Momentum:     0.9,
		WeightDecay:  1e-5,
		Seed:         1,
	}
}

// Network is a trained MLP.
type Network struct {
	cfg      Config
	features []int
	// Standardization parameters.
	xMean, xStd []float64
	yMean, yStd float64
	// Weights: hidden layer (Hidden x (F+1), bias last) and output layer
	// (Hidden+1, bias last).
	w1 [][]float64
	w2 []float64
}

// Train fits an MLP on the dataset.
func Train(d *dataset.Dataset, cfg Config) (*Network, error) {
	if d.Len() == 0 {
		return nil, errors.New("ann: cannot train on empty dataset")
	}
	if cfg.Hidden < 1 {
		return nil, fmt.Errorf("ann: hidden width %d must be positive", cfg.Hidden)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("ann: epoch count %d must be positive", cfg.Epochs)
	}
	features := d.FeatureIndices()
	f := len(features)
	n := d.Len()

	net := &Network{cfg: cfg, features: features}
	net.xMean = make([]float64, f)
	net.xStd = make([]float64, f)
	for j, a := range features {
		net.xMean[j] = d.ColumnMean(a)
		net.xStd[j] = math.Sqrt(d.ColumnVariance(a))
		if net.xStd[j] == 0 {
			net.xStd[j] = 1
		}
	}
	net.yMean = d.TargetMean()
	net.yStd = d.TargetStdDev()
	if net.yStd == 0 {
		net.yStd = 1
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// Xavier-style initialization.
	scale1 := 1 / math.Sqrt(float64(f)+1)
	net.w1 = make([][]float64, cfg.Hidden)
	for h := range net.w1 {
		net.w1[h] = make([]float64, f+1)
		for j := range net.w1[h] {
			net.w1[h][j] = rng.NormFloat64() * scale1
		}
	}
	scale2 := 1 / math.Sqrt(float64(cfg.Hidden)+1)
	net.w2 = make([]float64, cfg.Hidden+1)
	for j := range net.w2 {
		net.w2[j] = rng.NormFloat64() * scale2
	}

	// Momentum buffers.
	v1 := make([][]float64, cfg.Hidden)
	for h := range v1 {
		v1[h] = make([]float64, f+1)
	}
	v2 := make([]float64, cfg.Hidden+1)

	x := make([]float64, f)
	hOut := make([]float64, cfg.Hidden)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		// Mild learning-rate decay stabilizes late training.
		lr := cfg.LearningRate / (1 + 0.01*float64(epoch))
		for _, idx := range order {
			row := d.Row(idx)
			for j, a := range features {
				x[j] = (row[a] - net.xMean[j]) / net.xStd[j]
			}
			yt := (d.Target(idx) - net.yMean) / net.yStd

			// Forward.
			for h := 0; h < cfg.Hidden; h++ {
				s := net.w1[h][f] // bias
				for j := 0; j < f; j++ {
					s += net.w1[h][j] * x[j]
				}
				hOut[h] = math.Tanh(s)
			}
			yp := net.w2[cfg.Hidden] // bias
			for h := 0; h < cfg.Hidden; h++ {
				yp += net.w2[h] * hOut[h]
			}

			// Backward (squared error, linear output).
			dOut := yp - yt
			for h := 0; h < cfg.Hidden; h++ {
				grad := dOut*hOut[h] + cfg.WeightDecay*net.w2[h]
				v2[h] = cfg.Momentum*v2[h] - lr*grad
				net.w2[h] += v2[h]
			}
			v2[cfg.Hidden] = cfg.Momentum*v2[cfg.Hidden] - lr*dOut
			net.w2[cfg.Hidden] += v2[cfg.Hidden]

			for h := 0; h < cfg.Hidden; h++ {
				dh := dOut * net.w2[h] * (1 - hOut[h]*hOut[h])
				for j := 0; j < f; j++ {
					grad := dh*x[j] + cfg.WeightDecay*net.w1[h][j]
					v1[h][j] = cfg.Momentum*v1[h][j] - lr*grad
					net.w1[h][j] += v1[h][j]
				}
				v1[h][f] = cfg.Momentum*v1[h][f] - lr*dh
				net.w1[h][f] += v1[h][f]
			}
		}
	}
	return net, nil
}

// Predict evaluates the network on a full-width instance.
func (n *Network) Predict(row dataset.Instance) float64 {
	f := len(n.features)
	yp := n.w2[len(n.w2)-1]
	for h := range n.w1 {
		s := n.w1[h][f]
		for j, a := range n.features {
			s += n.w1[h][j] * (row[a] - n.xMean[j]) / n.xStd[j]
		}
		yp += n.w2[h] * math.Tanh(s)
	}
	return yp*n.yStd + n.yMean
}
