package xrand

import (
	"math/rand"
	"testing"
)

// TestMatchesMathRand locks the generator to the standard library draw for
// draw: the simulator's byte-identity guarantee rests on this equivalence.
func TestMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40, -1 << 40, 89482311} {
		r := New(seed)
		std := rand.New(rand.NewSource(seed))
		for i := 0; i < 10000; i++ {
			switch i % 4 {
			case 0:
				if got, want := r.Float64(), std.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 %v, want %v", seed, i, got, want)
				}
			case 1:
				if got, want := r.Intn(64), std.Intn(64); got != want {
					t.Fatalf("seed %d draw %d: Intn(64) %v, want %v", seed, i, got, want)
				}
			case 2:
				if got, want := r.Intn(4097), std.Intn(4097); got != want {
					t.Fatalf("seed %d draw %d: Intn(4097) %v, want %v", seed, i, got, want)
				}
			case 3:
				if got, want := r.Int63n(1<<40+3), std.Int63n(1<<40+3); got != want {
					t.Fatalf("seed %d draw %d: Int63n %v, want %v", seed, i, got, want)
				}
			}
		}
	}
}
