package stream

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func sampleN(i int) Sample {
	return Sample{Section: i, Events: map[string]float64{"x": float64(i)}}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing(4, Block)
	for i := 0; i < 3; i++ {
		if err := r.Push(sampleN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Depth() != 3 {
		t.Fatalf("depth %d", r.Depth())
	}
	for i := 0; i < 3; i++ {
		s, ok := r.TryPop()
		if !ok || s.Section != i {
			t.Fatalf("pop %d: %v %v", i, s, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingDropOldest(t *testing.T) {
	r := NewRing(3, DropOldest)
	for i := 0; i < 5; i++ {
		if err := r.Push(sampleN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Dropped(); got != 2 {
		t.Errorf("dropped %d, want 2", got)
	}
	got := r.PopN(10)
	if len(got) != 3 || got[0].Section != 2 || got[2].Section != 4 {
		t.Errorf("kept %v, want sections 2..4", got)
	}
}

func TestRingReject(t *testing.T) {
	r := NewRing(2, Reject)
	for i := 0; i < 2; i++ {
		if err := r.Push(sampleN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Push(sampleN(2)); !errors.Is(err, ErrFull) {
		t.Fatalf("push to full reject ring: %v", err)
	}
	if r.Dropped() != 0 {
		t.Error("reject counted a drop")
	}
	r.TryPop()
	if err := r.Push(sampleN(3)); err != nil {
		t.Errorf("push after drain: %v", err)
	}
}

// TestRingBlockBackpressure runs a slow consumer against a fast
// producer: Block must stall the producer, lose nothing and preserve
// order.
func TestRingBlockBackpressure(t *testing.T) {
	r := NewRing(2, Block)
	const n = 50
	var got []int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			s, ok := r.Pop()
			if !ok {
				return
			}
			got = append(got, s.Section)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for i := 0; i < n; i++ {
		if err := r.Push(sampleN(i)); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	wg.Wait()
	if len(got) != n {
		t.Fatalf("consumer saw %d samples, want %d", len(got), n)
	}
	for i, s := range got {
		if s != i {
			t.Fatalf("order violated at %d: %v", i, s)
		}
	}
	if r.Dropped() != 0 {
		t.Error("block policy dropped samples")
	}
}

func TestRingCloseUnblocksAndRejects(t *testing.T) {
	r := NewRing(1, Block)
	if err := r.Push(sampleN(0)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- r.Push(sampleN(1)) // blocks: ring is full
	}()
	time.Sleep(5 * time.Millisecond)
	r.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked push after close: %v", err)
	}
	// Buffered sample still drains; then Pop reports closed.
	if s, ok := r.Pop(); !ok || s.Section != 0 {
		t.Fatalf("drain after close: %v %v", s, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop on closed empty ring succeeded")
	}
	if err := r.Push(sampleN(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push on closed ring: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{
		{"block", Block}, {"drop-oldest", DropOldest}, {"reject", Reject},
	} {
		p, err := ParsePolicy(tc.in)
		if err != nil || p != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, p, err)
		}
		if p.String() != tc.in {
			t.Errorf("round trip %q -> %q", tc.in, p.String())
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}
