package stream

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/phases"
	"repro/internal/refute"
)

// Config tunes a Processor.
type Config struct {
	// Jobs is the scoring worker count (0 = all cores, 1 = serial).
	// Events are byte-identical at any value.
	Jobs int
	// Window is the number of buffered samples scored per parallel
	// batch. Larger windows amortize fan-out overhead; the window never
	// delays monitor state, which always advances in sample order.
	Window int
	// Buffer is the ring capacity; it is raised to Window if smaller,
	// since a full window must fit to be scored.
	Buffer int
	// Policy is the ring's overflow policy.
	Policy Policy
	// Calibration is the number of leading sections the phase tracker
	// uses to estimate counter noise before reporting boundaries.
	Calibration int
	// Phases tunes the phase detector (zero value = phases defaults).
	Phases phases.Config
	// PH tunes the drift detector (zero value = PH defaults).
	PH PHConfig
	// Contributions attaches the top CPI contributor (the paper's Eq. 4
	// "how much" answer) to every sample event.
	Contributions bool
	// EmitSamples emits a "sample" event per scored section; phase, drift
	// and refute events are always emitted.
	EmitSamples bool
	// Refute tunes the counter-consistency checker (zero value = checking
	// on with refute defaults; set Refute.Disabled to opt out).
	Refute refute.Config
}

// DefaultConfig returns monitoring-friendly defaults.
func DefaultConfig() Config {
	return Config{
		Jobs:          0,
		Window:        32,
		Buffer:        256,
		Policy:        Block,
		Calibration:   32,
		Phases:        phases.DefaultConfig(),
		PH:            DefaultPHConfig(),
		Contributions: true,
		EmitSamples:   true,
	}
}

func (c Config) sanitized() Config {
	if c.Window < 1 {
		c.Window = DefaultConfig().Window
	}
	if c.Buffer < c.Window {
		c.Buffer = c.Window
	}
	if c.Calibration < 2 {
		c.Calibration = DefaultConfig().Calibration
	}
	c.PH = c.PH.sanitized()
	return c
}

// Event is one machine-readable monitor output, NDJSON-encoded by the
// drivers. Type selects which optional fields are present.
type Event struct {
	// Type is "sample" (one scored section), "phase" (a confirmed phase
	// boundary), "drift" (a Page–Hinkley alarm) or "refute" (a counter-
	// consistency relation changed verdict).
	Type string `json:"type"`
	// Section is the zero-based arrival index the event refers to.
	Section int `json:"section"`
	// Bench echoes the producing sample's label.
	Bench string `json:"bench,omitempty"`
	// Phase is the current 1-based phase at this event.
	Phase int `json:"phase,omitempty"`

	// sample fields
	Predicted   float64  `json:"predicted,omitempty"`
	Observed    *float64 `json:"observed,omitempty"`
	Residual    *float64 `json:"residual,omitempty"`
	TopEvent    string   `json:"top_event,omitempty"`
	TopFraction float64  `json:"top_fraction,omitempty"`

	// phase fields: the new phase begins at PhaseStart; Section is where
	// the debounce confirmed it (up to MinRun-1 later).
	PhaseStart int `json:"phase_start,omitempty"`

	// drift fields
	Direction    string  `json:"direction,omitempty"`
	Stat         float64 `json:"stat,omitempty"`
	MeanResidual float64 `json:"mean_residual,omitempty"`
	RunLength    int     `json:"run_length,omitempty"`

	// refute fields: a counter-consistency relation changed verdict at
	// the end of the window containing Section.
	Relation  string         `json:"relation,omitempty"`
	Verdict   refute.Verdict `json:"verdict,omitempty"`
	Deviation float64        `json:"deviation,omitempty"`
}

// Stats is a monitor state snapshot, exposed on /metrics and in CLI
// summaries.
type Stats struct {
	Accepted        uint64 `json:"accepted"`
	Scored          uint64 `json:"scored"`
	Invalid         uint64 `json:"invalid"`
	Depth           int    `json:"depth"`
	Dropped         uint64 `json:"dropped"`
	Windows         uint64 `json:"windows"`
	PhaseBoundaries uint64 `json:"phase_boundaries"`
	DriftAlarms     uint64 `json:"drift_alarms"`
	Phase           int    `json:"phase"`
	// HaveObserved is true once any scored sample carried an observed
	// CPI; while false, EwmaObserved is meaningless (no observation ever
	// arrived) and consumers should render it as absent.
	HaveObserved  bool    `json:"have_observed"`
	EwmaObserved  float64 `json:"ewma_observed"`
	EwmaPredicted float64 `json:"ewma_predicted"`
	// Refutation digests the counter-consistency checker: the session
	// verdict plus violation counts. Together with DriftAlarms it encodes
	// the decision rule — drift alarms while the counters stay consistent
	// mean the model no longer fits (retrain); relation violations mean
	// the counter stream itself is broken (distrust the data).
	Refutation refute.Summary `json:"refutation"`
}

// Processor scores a sample stream through one model and runs the
// online monitors. It is not safe for concurrent use; callers that
// share one processor (the serve layer) serialize access.
type Processor struct {
	m       model.Model
	sc      *schema
	cfg     Config
	ring    *Ring
	online  *phases.Online
	ph      *PageHinkley
	refuter *refute.Checker

	scored   uint64
	invalid  atomic.Uint64
	windows  uint64
	bounds   uint64
	alarms   uint64
	havePred bool
	haveObs  bool
	ewmaObs  float64
	ewmaPred float64
}

// ewmaAlpha is the smoothing factor of the rolling CPI means shown in
// monitor summaries (~ a 2/alpha-section horizon).
const ewmaAlpha = 0.1

// NewProcessor builds a processor for one trained model.
func NewProcessor(m model.Model, cfg Config) (*Processor, error) {
	sc, err := newSchema(m.Describe())
	if err != nil {
		return nil, err
	}
	cfg = cfg.sanitized()
	return &Processor{
		m:       m,
		sc:      sc,
		cfg:     cfg,
		ring:    NewRing(cfg.Buffer, cfg.Policy),
		online:  phases.NewOnline(cfg.Phases, cfg.Calibration),
		ph:      NewPageHinkley(cfg.PH),
		refuter: refute.NewChecker(cfg.Refute, sc.desc.AttrNames, sc.targetIdx, sc.desc.Machine),
	}, nil
}

// Check validates a sample against the model schema without ingesting
// it, so batch callers can reject a whole request before mutating any
// monitor state.
func (p *Processor) Check(s Sample) error {
	if err := s.Validate(); err != nil {
		return err
	}
	return p.sc.check(&s)
}

// Ingest validates and buffers one sample, then scores every full
// window. The returned events cover all sections scored by this call
// (possibly none, while the window fills). Invalid samples are counted
// and returned as an error without touching monitor state.
func (p *Processor) Ingest(s Sample) ([]Event, error) {
	if err := p.Check(s); err != nil {
		p.invalid.Add(1)
		return nil, err
	}
	return p.IngestChecked(s)
}

// IngestChecked is Ingest for a sample that already passed Check.
// Callers that batch-validate up front (the serve layer's all-or-
// nothing request check) use it to avoid validating every sample
// twice; feeding it an unchecked sample makes scoring fail instead.
func (p *Processor) IngestChecked(s Sample) ([]Event, error) {
	if err := p.ring.Push(s); err != nil {
		return nil, err
	}
	var events []Event
	for p.ring.Depth() >= p.cfg.Window {
		evs, err := p.scoreBatch(p.ring.PopN(p.cfg.Window))
		if err != nil {
			return events, err
		}
		events = append(events, evs...)
	}
	return events, nil
}

// Flush scores whatever remains in the ring regardless of window fill.
func (p *Processor) Flush() ([]Event, error) {
	var events []Event
	for p.ring.Depth() > 0 {
		evs, err := p.scoreBatch(p.ring.PopN(p.cfg.Window))
		if err != nil {
			return events, err
		}
		events = append(events, evs...)
	}
	return events, nil
}

// scored carries one sample's parallel scoring result into the serial
// monitor fold.
type scoredSample struct {
	sample Sample
	row    dataset.Instance
	pred   float64
	top    *model.Contribution
}

// scoreBatch fans the batch out through parallel.Map (ordered, so the
// fold below sees sample order regardless of worker count), then
// advances the monitors serially.
func (p *Processor) scoreBatch(batch []Sample) ([]Event, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	scoredBatch, err := parallel.Map(parallel.Config{Jobs: p.cfg.Jobs}.ForItems(len(batch)), batch,
		func(_ int, s Sample) (scoredSample, error) {
			row, err := p.sc.instance(&s)
			if err != nil {
				return scoredSample{}, err // unreachable: Check vetted it
			}
			out := scoredSample{sample: s, row: row, pred: p.m.Predict(row)}
			if p.cfg.Contributions {
				if contribs := p.m.Contributions(row); len(contribs) > 0 {
					out.top = &contribs[0]
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, fmt.Errorf("stream: scoring window: %w", err)
	}
	p.windows++

	var events []Event
	for i := range scoredBatch {
		ss := &scoredBatch[i]
		sec := int(p.scored)
		p.scored++

		// Phase tracking first, so a boundary confirmed by this section
		// is reflected in the section's own phase number.
		for _, start := range p.online.Feed(p.sc.featureVector(ss.row)) {
			p.bounds++
			events = append(events, Event{
				Type:       "phase",
				Section:    sec,
				Bench:      ss.sample.Bench,
				Phase:      p.online.Phase(),
				PhaseStart: start,
			})
		}

		if !p.havePred {
			p.havePred = true
			p.ewmaPred = ss.pred
		} else {
			p.ewmaPred += ewmaAlpha * (ss.pred - p.ewmaPred)
		}
		// The observed EWMA seeds on the first sample that actually
		// carries a cpi field, however late it arrives; until then
		// HaveObserved stays false and renderers must not show it.
		if ss.sample.CPI != nil {
			if !p.haveObs {
				p.haveObs = true
				p.ewmaObs = *ss.sample.CPI
			} else {
				p.ewmaObs += ewmaAlpha * (*ss.sample.CPI - p.ewmaObs)
			}
		}

		if p.cfg.EmitSamples {
			ev := Event{
				Type:      "sample",
				Section:   sec,
				Bench:     ss.sample.Bench,
				Phase:     p.online.Phase(),
				Predicted: ss.pred,
			}
			if ss.top != nil {
				ev.TopEvent = ss.top.Name
				ev.TopFraction = ss.top.Fraction
			}
			if ss.sample.CPI != nil {
				obs := *ss.sample.CPI
				res := obs - ss.pred
				ev.Observed = &obs
				ev.Residual = &res
			}
			events = append(events, ev)
		}

		if ss.sample.CPI != nil {
			if alarm, ok := p.ph.Feed(*ss.sample.CPI - ss.pred); ok {
				p.alarms++
				events = append(events, Event{
					Type:         "drift",
					Section:      sec,
					Bench:        ss.sample.Bench,
					Phase:        p.online.Phase(),
					Direction:    alarm.Direction,
					Stat:         alarm.Stat,
					MeanResidual: alarm.Mean,
					RunLength:    alarm.Samples,
				})
			}
		}

		// Consistency checking last: the relations judge the sample's
		// counters as reported, independent of what the model predicted.
		var obs float64
		if ss.sample.CPI != nil {
			obs = *ss.sample.CPI
		}
		p.refuter.Observe(ss.row, obs, ss.sample.CPI != nil)
	}

	// Every scoring batch closes one consistency window, so refutation
	// state never straddles a batch boundary and session snapshots taken
	// between batches are complete. Verdict transitions become events
	// anchored at the window's last section.
	lastSec := int(p.scored) - 1
	last := &scoredBatch[len(scoredBatch)-1]
	for _, tr := range p.refuter.EndWindow() {
		events = append(events, Event{
			Type:      "refute",
			Section:   lastSec,
			Bench:     last.sample.Bench,
			Phase:     p.online.Phase(),
			Relation:  tr.Relation,
			Verdict:   tr.Verdict,
			Deviation: tr.Deviation,
		})
	}
	return events, nil
}

// Stats snapshots the monitor state.
func (p *Processor) Stats() Stats {
	return Stats{
		Accepted:        p.scored + uint64(p.ring.Depth()),
		Scored:          p.scored,
		Invalid:         p.invalid.Load(),
		Depth:           p.ring.Depth(),
		Dropped:         p.ring.Dropped(),
		Windows:         p.windows,
		PhaseBoundaries: p.bounds,
		DriftAlarms:     p.alarms,
		Phase:           p.online.Phase(),
		HaveObserved:    p.haveObs,
		EwmaObserved:    p.ewmaObs,
		EwmaPredicted:   p.ewmaPred,
		Refutation:      p.refuter.Summary(),
	}
}

// Refutation returns the full per-relation consistency report.
func (p *Processor) Refutation() refute.Report { return p.refuter.Report() }

// Describe exposes the underlying model's description.
func (p *Processor) Describe() model.Description { return p.sc.desc }
