package stream_test

// Property test for the streaming driver: for a fixed input byte
// stream, RunMonitor's observable behavior — final stats, the NDJSON
// event stream and the rolling text output — is identical at any Jobs
// setting. Malformed and schema-violating lines are injected so the
// skip path is covered by the invariance too.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/mtree"
	"repro/internal/proptest"
	"repro/internal/stream"
)

// genTrace renders an NDJSON input with a mid-trace regime change, a
// fraction of prediction-only samples (no cpi field), and occasional
// invalid lines a SkipInvalid monitor must step over.
func genTrace(r *proptest.Rand, total int) string {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	boundary := total / 2
	for i := 0; i < total; i++ {
		if r.Bool(0.04) {
			b.WriteString("not json\n")
		}
		if r.Bool(0.04) {
			b.WriteString(`{"events":{"NoSuchEvent":1}}` + "\n")
		}
		var l1, l2, dt float64
		if i < boundary {
			l1, l2, dt = r.Range(0.010, 0.014), r.Range(0.0006, 0.0010), r.Range(0.0001, 0.0002)
		} else {
			l1, l2, dt = r.Range(0.002, 0.004), r.Range(0.0038, 0.0044), r.Range(0.0005, 0.0008)
		}
		s := stream.Sample{Bench: "trace", Section: i,
			Events: map[string]float64{"L1IM": l1, "L2M": l2, "DtlbLdM": dt}}
		if r.Bool(0.8) {
			cpi := 0.6 + 7*l1
			if l2 > 0.002 {
				cpi = 1.1 + 90*l2 + 40*dt
			}
			cpi += 0.01 * r.NormFloat64()
			s.CPI = &cpi
		}
		if err := enc.Encode(&s); err != nil {
			panic(err)
		}
	}
	return b.String()
}

func TestRunMonitorJobsInvariance(t *testing.T) {
	r := proptest.NewRand(proptest.CaseSeed("monitor-model", 0))
	tree, err := mtree.Build(proptest.PerfDataset(r, 600), mtree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	proptest.Run(t, "monitor-jobs", 5, func(t *testing.T, r *proptest.Rand) {
		input := genTrace(r, r.IntBetween(50, 150))
		run := func(jobs int) (stream.Stats, []byte, []byte) {
			cfg := stream.DefaultMonitorConfig()
			cfg.Jobs = jobs
			cfg.Window = 16
			cfg.RenderEvery = 8
			var text, events bytes.Buffer
			st, err := stream.RunMonitor(tree, cfg, strings.NewReader(input), &text, &events)
			if err != nil {
				t.Fatalf("RunMonitor(jobs=%d): %v", jobs, err)
			}
			return st, text.Bytes(), events.Bytes()
		}
		st1, text1, ev1 := run(1)
		st4, text4, ev4 := run(4)
		if st1 != st4 {
			t.Fatalf("stats diverge between Jobs=1 and Jobs=4:\n%+v\n%+v", st1, st4)
		}
		if !bytes.Equal(ev1, ev4) {
			t.Fatal("event streams diverge between Jobs=1 and Jobs=4")
		}
		if !bytes.Equal(text1, text4) {
			t.Fatal("text output diverges between Jobs=1 and Jobs=4")
		}
		if st1.Scored == 0 {
			t.Fatal("no sections scored: the invariance tested nothing")
		}
	})
}
