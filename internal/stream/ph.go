package stream

// Page–Hinkley change detection over the prediction residual
// (observed CPI − predicted CPI). While the trained model explains the
// workload, the residual is near-zero-mean noise; when the machine or
// the workload drifts away from the training distribution the residual
// acquires a persistent bias, and the cumulative Page–Hinkley statistic
// crosses its threshold after a handful of sections. This is the
// paper's regression-detection use case made continuous: instead of
// re-collecting a suite and comparing reports, the monitor flags the
// section at which the model stopped explaining reality.

// PHConfig tunes the detector.
type PHConfig struct {
	// Delta is the per-sample drift allowance: residual bias below
	// Delta is treated as noise and never accumulates. In CPI units.
	Delta float64
	// Lambda is the alarm threshold on the cumulative deviation; with a
	// sustained bias b the alarm fires roughly Lambda/(b-Delta)
	// sections after onset. In CPI units.
	Lambda float64
	// MinSamples is the grace period after a (re)start before alarms
	// may fire, so the running mean has something to stand on.
	MinSamples int
}

// DefaultPHConfig suits CPI residuals from a tree with the paper's
// accuracy (MAE ≈ 0.05): a persistent shift of 0.1 CPI alarms within
// ~3 sections while fold-level noise stays silent.
func DefaultPHConfig() PHConfig {
	return PHConfig{Delta: 0.005, Lambda: 0.25, MinSamples: 8}
}

func (c PHConfig) sanitized() PHConfig {
	d := DefaultPHConfig()
	if c.Delta < 0 {
		c.Delta = d.Delta
	}
	if c.Lambda <= 0 {
		c.Lambda = d.Lambda
	}
	if c.MinSamples < 1 {
		c.MinSamples = d.MinSamples
	}
	return c
}

// PHAlarm describes one detected drift.
type PHAlarm struct {
	// Direction is "up" when observed CPI runs above the model
	// (a performance regression) and "down" when below.
	Direction string
	// Stat is the cumulative deviation that crossed Lambda.
	Stat float64
	// Mean is the running mean residual at alarm time.
	Mean float64
	// Samples is the number of residuals consumed since the last reset.
	Samples int
}

// PageHinkley is a two-sided Page–Hinkley test. Feed it residuals in
// section order; it resets itself after each alarm so a long stream can
// report successive drifts.
type PageHinkley struct {
	cfg     PHConfig
	n       int
	mean    float64
	mUp     float64
	minUp   float64
	mDown   float64
	maxDown float64
}

// NewPageHinkley creates a detector (zero-value fields in cfg fall back
// to DefaultPHConfig).
func NewPageHinkley(cfg PHConfig) *PageHinkley {
	return &PageHinkley{cfg: cfg.sanitized()}
}

// Reset clears all accumulated state, keeping the configuration.
func (p *PageHinkley) Reset() { *p = PageHinkley{cfg: p.cfg} }

// Feed consumes one residual and reports whether it confirmed a drift.
// On alarm the detector resets, so the alarm's Samples field says how
// long the current regime lasted.
func (p *PageHinkley) Feed(x float64) (PHAlarm, bool) {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.mUp += x - p.mean - p.cfg.Delta
	if p.mUp < p.minUp {
		p.minUp = p.mUp
	}
	p.mDown += x - p.mean + p.cfg.Delta
	if p.mDown > p.maxDown {
		p.maxDown = p.mDown
	}
	if p.n < p.cfg.MinSamples {
		return PHAlarm{}, false
	}
	if stat := p.mUp - p.minUp; stat > p.cfg.Lambda {
		a := PHAlarm{Direction: "up", Stat: stat, Mean: p.mean, Samples: p.n}
		p.Reset()
		return a, true
	}
	if stat := p.maxDown - p.mDown; stat > p.cfg.Lambda {
		a := PHAlarm{Direction: "down", Stat: stat, Mean: p.mean, Samples: p.n}
		p.Reset()
		return a, true
	}
	return PHAlarm{}, false
}
