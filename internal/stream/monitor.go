package stream

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/model"
)

// MonitorConfig drives RunMonitor.
type MonitorConfig struct {
	Config
	// RenderEvery prints a rolling text line every N scored sections
	// (0 disables text output entirely).
	RenderEvery int
	// SkipInvalid keeps going past malformed or schema-violating lines
	// (counted in Stats.Invalid) instead of aborting the run.
	// Unrecoverable read errors (an over-long line, a broken transport —
	// see Decoder.Failed) abort regardless: they would repeat forever.
	SkipInvalid bool
}

// DefaultMonitorConfig returns CLI-leaning defaults.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{Config: DefaultConfig(), RenderEvery: 32, SkipInvalid: true}
}

// Monitor is a reusable streaming driver: a Processor plus the NDJSON
// decode/render loop. Constructing it separately from Run lets callers
// (cmd/monitor -refute) interrogate the processor — refutation report,
// stats — after the stream ends.
type Monitor struct {
	p   *Processor
	cfg MonitorConfig
}

// NewMonitor builds the driver for one model.
func NewMonitor(m model.Model, cfg MonitorConfig) (*Monitor, error) {
	p, err := NewProcessor(m, cfg.Config)
	if err != nil {
		return nil, err
	}
	return &Monitor{p: p, cfg: cfg}, nil
}

// Processor exposes the underlying processor.
func (mon *Monitor) Processor() *Processor { return mon.p }

// RunMonitor is the one-shot streaming driver: it decodes NDJSON samples
// from r, feeds them through a Processor over m, writes machine-readable
// events to eventsOut as NDJSON (one event per line, in order) and
// rolling human-readable status lines to textOut. Either writer may be
// nil. It returns when the input ends (a tailing reader simply never
// ends until closed).
//
// For a fixed input byte stream the bytes written to eventsOut and
// textOut are identical at any cfg.Jobs value.
func RunMonitor(m model.Model, cfg MonitorConfig, r io.Reader, textOut, eventsOut io.Writer) (Stats, error) {
	mon, err := NewMonitor(m, cfg)
	if err != nil {
		return Stats{}, err
	}
	return mon.Run(r, textOut, eventsOut)
}

// Run drives the monitor over one input stream (see RunMonitor).
func (mon *Monitor) Run(r io.Reader, textOut, eventsOut io.Writer) (Stats, error) {
	p, cfg := mon.p, mon.cfg
	if textOut == nil {
		textOut = io.Discard
	}
	var enc *json.Encoder
	if eventsOut != nil {
		enc = json.NewEncoder(eventsOut)
	}
	dec := NewDecoder(r)
	lastRendered := 0

	emit := func(events []Event) error {
		for i := range events {
			ev := &events[i]
			if enc != nil {
				if err := enc.Encode(ev); err != nil {
					return fmt.Errorf("stream: writing event: %w", err)
				}
			}
			switch ev.Type {
			case "phase":
				fmt.Fprintf(textOut, "section %6d  PHASE %d begins at section %d\n",
					ev.Section, ev.Phase, ev.PhaseStart)
			case "drift":
				fmt.Fprintf(textOut, "section %6d  DRIFT %s: observed CPI diverged %s from the model (stat %.3f after %d sections in regime, mean resid %+.3f)\n",
					ev.Section, ev.Direction, ev.Direction, ev.Stat, ev.RunLength, ev.MeanResidual)
			case "refute":
				fmt.Fprintf(textOut, "section %6d  REFUTE %s: counter relation %s (deviation %.3g)\n",
					ev.Section, ev.Verdict, ev.Relation, ev.Deviation)
			}
		}
		if cfg.RenderEvery > 0 {
			if st := p.Stats(); int(st.Scored)-lastRendered >= cfg.RenderEvery {
				lastRendered = int(st.Scored)
				if st.HaveObserved {
					fmt.Fprintf(textOut, "section %6d  obs CPI %.3f  pred CPI %.3f  resid %+.3f  phase %d  alarms %d\n",
						int(st.Scored)-1, st.EwmaObserved, st.EwmaPredicted,
						st.EwmaObserved-st.EwmaPredicted, st.Phase, st.DriftAlarms)
				} else {
					// Prediction-only stream: no sample ever carried a cpi
					// field, so there is no observation or residual to show.
					fmt.Fprintf(textOut, "section %6d  obs CPI n/a  pred CPI %.3f  phase %d  alarms %d\n",
						int(st.Scored)-1, st.EwmaPredicted, st.Phase, st.DriftAlarms)
				}
			}
		}
		return nil
	}

	for {
		s, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A malformed line is skippable; a failed decoder is not —
			// its error is sticky, so "skipping" it would spin forever
			// on the same error.
			if cfg.SkipInvalid && !dec.Failed() {
				p.invalid.Add(1)
				fmt.Fprintf(textOut, "skipping %v\n", err)
				continue
			}
			return p.Stats(), err
		}
		events, err := p.Ingest(s)
		if err != nil {
			if cfg.SkipInvalid {
				fmt.Fprintf(textOut, "skipping line %d: %v\n", dec.Line(), err)
				continue
			}
			return p.Stats(), fmt.Errorf("line %d: %w", dec.Line(), err)
		}
		if err := emit(events); err != nil {
			return p.Stats(), err
		}
	}
	events, err := p.Flush()
	if err != nil {
		return p.Stats(), err
	}
	if err := emit(events); err != nil {
		return p.Stats(), err
	}
	st := p.Stats()
	fmt.Fprintf(textOut, "done: %d sections scored (%d invalid skipped), %d phase boundaries, %d drift alarms, counters %s\n",
		st.Scored, st.Invalid, st.PhaseBoundaries, st.DriftAlarms, st.Refutation.Verdict)
	return st, nil
}
