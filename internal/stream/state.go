package stream

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/phases"
	"repro/internal/refute"
)

// Serializable processor state, for the serve layer's session
// snapshot/restore: a live monitor session can be drained on one
// replica and restored on another, continuing its timeline exactly —
// same section numbering, same phase, same drift accumulator, same
// buffered-but-unscored samples. All floats survive the JSON round
// trip bit-exactly (Go marshals float64 in shortest-round-trip form),
// so Stats of a drained-and-restored processor is byte-identical to
// the original's and subsequent events match an uninterrupted run.

// PHState is the Page–Hinkley detector's accumulated state.
type PHState struct {
	N       int     `json:"n"`
	Mean    float64 `json:"mean"`
	MUp     float64 `json:"m_up"`
	MinUp   float64 `json:"min_up"`
	MDown   float64 `json:"m_down"`
	MaxDown float64 `json:"max_down"`
}

// State snapshots the detector (configuration excluded: the restorer
// supplies it, exactly as NewPageHinkley does).
func (p *PageHinkley) State() PHState {
	return PHState{N: p.n, Mean: p.mean, MUp: p.mUp, MinUp: p.minUp,
		MDown: p.mDown, MaxDown: p.maxDown}
}

// RestoreState overwrites the accumulated state, keeping the
// configuration.
func (p *PageHinkley) RestoreState(st PHState) {
	p.n, p.mean = st.N, st.Mean
	p.mUp, p.minUp = st.MUp, st.MinUp
	p.mDown, p.maxDown = st.MDown, st.MaxDown
}

// Snapshot returns the buffered samples oldest-first plus the dropped
// counter — the ring's full logical state (capacity and policy are
// configuration, not state).
func (r *Ring) Snapshot() ([]Sample, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out, r.dropped
}

// restore refills a fresh ring; fails if the pending samples exceed
// capacity (the restoring side is configured with a smaller buffer).
func (r *Ring) restore(pending []Sample, dropped uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(pending) > len(r.buf) {
		return fmt.Errorf("stream: %d pending samples exceed ring capacity %d", len(pending), len(r.buf))
	}
	for i, s := range pending {
		r.buf[i] = s
	}
	r.head, r.n = 0, len(pending)
	r.dropped = dropped
	return nil
}

// ProcessorState is one monitor session's full serializable state.
type ProcessorState struct {
	// SchemaVersion guards the wire format; bump on breaking changes.
	SchemaVersion int `json:"schema_version"`
	// Counters, mirroring Stats.
	Scored          uint64 `json:"scored"`
	Invalid         uint64 `json:"invalid"`
	Windows         uint64 `json:"windows"`
	PhaseBoundaries uint64 `json:"phase_boundaries"`
	DriftAlarms     uint64 `json:"drift_alarms"`
	// Rolling CPI means and their seeding flags.
	HavePred bool    `json:"have_pred"`
	HaveObs  bool    `json:"have_obs"`
	EwmaPred float64 `json:"ewma_pred"`
	EwmaObs  float64 `json:"ewma_obs"`
	// Pending are buffered-but-unscored samples (oldest first); Dropped
	// is the ring's eviction counter.
	Pending []Sample `json:"pending,omitempty"`
	Dropped uint64   `json:"dropped"`
	// Monitor internals.
	Phases phases.OnlineState `json:"phases"`
	PH     PHState            `json:"ph"`
	// Refutation is the counter-consistency checker's accumulated state
	// (nil when checking is disabled or the snapshot predates it).
	Refutation *refute.State `json:"refutation,omitempty"`
}

// processorStateVersion is the current ProcessorState wire version.
// Version 1 (PR 9) lacked the refutation field; v1 snapshots still
// restore, with consistency checking starting fresh.
const processorStateVersion = 2

// State snapshots the processor. The caller must hold whatever lock
// serializes Ingest calls (the processor itself is not concurrency-
// safe, and neither is this).
func (p *Processor) State() ProcessorState {
	pending, dropped := p.ring.Snapshot()
	var ref *refute.State
	if p.refuter.Enabled() {
		st := p.refuter.State()
		ref = &st
	}
	return ProcessorState{
		SchemaVersion:   processorStateVersion,
		Refutation:      ref,
		Scored:          p.scored,
		Invalid:         p.invalid.Load(),
		Windows:         p.windows,
		PhaseBoundaries: p.bounds,
		DriftAlarms:     p.alarms,
		HavePred:        p.havePred,
		HaveObs:         p.haveObs,
		EwmaPred:        p.ewmaPred,
		EwmaObs:         p.ewmaObs,
		Pending:         pending,
		Dropped:         dropped,
		Phases:          p.online.State(),
		PH:              p.ph.State(),
	}
}

// RestoreProcessor rebuilds a processor for model m under cfg from a
// drained snapshot. The model and configuration must match what the
// drained processor ran with (same schema, window, detector tuning);
// mismatches that are detectable — wrong schema, oversized pending
// buffer, debounce-ring drift — are errors.
func RestoreProcessor(m model.Model, cfg Config, st ProcessorState) (*Processor, error) {
	if st.SchemaVersion < 1 || st.SchemaVersion > processorStateVersion {
		return nil, fmt.Errorf("stream: unsupported processor state version %d (want 1..%d)",
			st.SchemaVersion, processorStateVersion)
	}
	p, err := NewProcessor(m, cfg)
	if err != nil {
		return nil, err
	}
	for i := range st.Pending {
		if err := p.Check(st.Pending[i]); err != nil {
			return nil, fmt.Errorf("stream: pending sample %d does not fit the model schema: %w", i, err)
		}
	}
	if err := p.ring.restore(st.Pending, st.Dropped); err != nil {
		return nil, err
	}
	online, err := phases.RestoreOnline(p.cfg.Phases, st.Phases)
	if err != nil {
		return nil, err
	}
	p.online = online
	p.ph.RestoreState(st.PH)
	if st.Refutation != nil {
		if err := p.refuter.RestoreState(*st.Refutation); err != nil {
			return nil, err
		}
	}
	p.scored = st.Scored
	p.invalid.Store(st.Invalid)
	p.windows = st.Windows
	p.bounds = st.PhaseBoundaries
	p.alarms = st.DriftAlarms
	p.havePred, p.haveObs = st.HavePred, st.HaveObs
	p.ewmaPred, p.ewmaObs = st.EwmaPred, st.EwmaObs
	return p, nil
}
