package stream

import (
	"math/rand"
	"testing"
)

func TestPageHinkleyQuietOnNoise(t *testing.T) {
	ph := NewPageHinkley(DefaultPHConfig())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		if _, ok := ph.Feed(0.01 * rng.NormFloat64()); ok {
			t.Fatalf("alarm on zero-mean noise at sample %d", i)
		}
	}
}

func TestPageHinkleyDetectsUpShift(t *testing.T) {
	cfg := DefaultPHConfig()
	ph := NewPageHinkley(cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		if _, ok := ph.Feed(0.01 * rng.NormFloat64()); ok {
			t.Fatalf("premature alarm at %d", i)
		}
	}
	fired := -1
	var alarm PHAlarm
	for i := 0; i < 50; i++ {
		a, ok := ph.Feed(0.3 + 0.01*rng.NormFloat64())
		if ok {
			fired, alarm = i, a
			break
		}
	}
	if fired < 0 {
		t.Fatal("no alarm on a +0.3 sustained shift")
	}
	if fired > 5 {
		t.Errorf("alarm after %d shifted samples, want <= 5", fired)
	}
	if alarm.Direction != "up" {
		t.Errorf("direction %q", alarm.Direction)
	}
	if alarm.Stat <= cfg.Lambda {
		t.Errorf("alarm stat %v below lambda %v", alarm.Stat, cfg.Lambda)
	}
}

func TestPageHinkleyDetectsDownShift(t *testing.T) {
	ph := NewPageHinkley(DefaultPHConfig())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		ph.Feed(0.01 * rng.NormFloat64())
	}
	for i := 0; i < 50; i++ {
		if a, ok := ph.Feed(-0.3 + 0.01*rng.NormFloat64()); ok {
			if a.Direction != "down" {
				t.Errorf("direction %q, want down", a.Direction)
			}
			return
		}
	}
	t.Fatal("no alarm on a -0.3 sustained shift")
}

// TestPageHinkleyResetsAfterAlarm verifies a second drift in a long
// stream is caught independently of the first.
func TestPageHinkleyResetsAfterAlarm(t *testing.T) {
	ph := NewPageHinkley(DefaultPHConfig())
	rng := rand.New(rand.NewSource(4))
	alarms := 0
	feedRegime := func(mean float64, n int) {
		for i := 0; i < n; i++ {
			if _, ok := ph.Feed(mean + 0.01*rng.NormFloat64()); ok {
				alarms++
			}
		}
	}
	feedRegime(0, 100)
	feedRegime(0.4, 20) // first drift
	feedRegime(0.4, 100)
	// Second drift relative to the new regime. After the first alarm the
	// detector restarted, so the new baseline is 0.4 and this is an
	// upward move from it.
	feedRegime(0.9, 20)
	if alarms < 2 {
		t.Errorf("detected %d drifts, want >= 2", alarms)
	}
}

func TestPageHinkleyMinSamplesGrace(t *testing.T) {
	cfg := PHConfig{Delta: 0.005, Lambda: 0.05, MinSamples: 10}
	ph := NewPageHinkley(cfg)
	for i := 0; i < 9; i++ {
		if _, ok := ph.Feed(1.0); ok {
			t.Fatalf("alarm inside grace period at sample %d", i)
		}
	}
}
