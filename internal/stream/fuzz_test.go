package stream

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// FuzzDecodeSample hammers the NDJSON sample decoder: it must never
// panic, and anything it accepts must satisfy the Sample invariants and
// survive a marshal/decode round trip.
func FuzzDecodeSample(f *testing.F) {
	f.Add([]byte(`{"bench":"mcf","section":12,"events":{"L2M":0.004,"L1IM":0.002},"cpi":1.41}`))
	f.Add([]byte(`{"events":{"a":1}}`))
	f.Add([]byte(`{"events":{}}`))
	f.Add([]byte(`{"events":{"a":1e400}}`))
	f.Add([]byte(`{"events":{"a":1},"cpi":null}`))
	f.Add([]byte(`{"cpi":1.0}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{"events":{"k":0}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, line []byte) {
		s, err := DecodeSample(line)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("DecodeSample accepted a sample Validate rejects: %v", err)
		}
		out, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("accepted sample does not marshal: %v", err)
		}
		s2, err := DecodeSample(out)
		if err != nil {
			t.Fatalf("marshal/decode round trip failed: %v\n%s", err, out)
		}
		if len(s2.Events) != len(s.Events) {
			t.Fatalf("round trip changed event count: %d != %d", len(s2.Events), len(s.Events))
		}
	})
}

// FuzzDecoderStream drives the line decoder over arbitrary multi-line
// input: no panics, no infinite loops, the decoder keeps its
// skip-and-continue contract after malformed lines, and a terminal
// scanner failure is sticky (the same error on every later call).
func FuzzDecoderStream(f *testing.F) {
	f.Add([]byte("{\"events\":{\"a\":1}}\n\n{\"events\":{\"b\":2}}\n"))
	f.Add([]byte("junk\n{\"events\":{\"a\":1}}\n"))
	f.Add([]byte("\r\n\t \n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 10000; i++ {
			_, err := dec.Next()
			if err == io.EOF {
				if dec.Failed() {
					t.Fatal("Failed() true at clean EOF")
				}
				return
			}
			if dec.Failed() {
				if _, err2 := dec.Next(); err2 != err {
					t.Fatalf("terminal error not sticky: %v then %v", err, err2)
				}
				return
			}
		}
		t.Fatal("decoder did not reach EOF within the line budget")
	})
}
