// Package stream is the online layer over the batch pipeline: it ingests
// per-section counter samples as NDJSON, buffers them in a bounded ring
// with an explicit backpressure policy, scores them through any
// model.Model with the same deterministic fan-out as the batch stages,
// and runs two online monitors over the scored sequence — an incremental
// phase tracker (internal/phases) and a Page–Hinkley drift detector over
// the predicted-vs-observed CPI residual. It turns the paper's
// regression-detection use case ("did the machine stop behaving the way
// the trained model says?") into a continuous process instead of an
// offline comparison.
//
// Determinism contract: for a fixed input sample sequence the emitted
// event stream is byte-identical at any worker count. Scoring fans out
// through parallel.Map (ordered results); all monitor state advances
// serially in input order afterwards.
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/dataset"
	"repro/internal/model"
)

// Sample is one NDJSON stream record: one workload section's
// per-instruction event rates, optionally with the observed target value
// (CPI) that enables drift monitoring.
//
//	{"bench":"mcf","section":1042,"events":{"L2M":0.0041,"L1IM":0.002},"cpi":1.41}
type Sample struct {
	// Bench labels the producing workload; informational.
	Bench string `json:"bench,omitempty"`
	// Section is the producer's own section index; informational (the
	// monitor numbers sections by arrival order).
	Section int `json:"section,omitempty"`
	// Events maps event names (model schema attribute names) to
	// per-instruction rates. Absent events default to 0.
	Events map[string]float64 `json:"events"`
	// CPI is the observed target value, if the producer measured it.
	// Without it the sample is scored but cannot feed the drift monitor.
	CPI *float64 `json:"cpi,omitempty"`
}

// Validate checks structural invariants every consumer relies on:
// events present, all values finite.
func (s *Sample) Validate() error {
	if len(s.Events) == 0 {
		return fmt.Errorf("stream: sample has no events")
	}
	for name, v := range s.Events {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stream: non-finite rate %v for event %q", v, name)
		}
	}
	if s.CPI != nil && (math.IsNaN(*s.CPI) || math.IsInf(*s.CPI, 0)) {
		return fmt.Errorf("stream: non-finite observed cpi %v", *s.CPI)
	}
	return nil
}

// DecodeSample parses one NDJSON line into a validated Sample.
func DecodeSample(line []byte) (Sample, error) {
	var s Sample
	if err := json.Unmarshal(line, &s); err != nil {
		return Sample{}, fmt.Errorf("stream: malformed sample: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Sample{}, err
	}
	return s, nil
}

// MaxLineBytes caps one NDJSON line; a model schema has a few dozen
// events, so a megabyte is already far beyond any legitimate sample.
const MaxLineBytes = 1 << 20

// Decoder reads newline-delimited samples, skipping blank lines and
// reporting errors with 1-based line numbers. Malformed lines are
// recoverable — the next Next call moves on — but scanner failures
// (an over-long line, a transport error from the underlying reader)
// are terminal: they stick, and every subsequent Next returns the same
// error, reported by Failed.
type Decoder struct {
	sc   *bufio.Scanner
	line int
	err  error // sticky: io.EOF or a terminal read failure
}

// NewDecoder wraps r in an NDJSON sample decoder.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	return &Decoder{sc: sc}
}

// Line returns the 1-based number of the last line handed out.
func (d *Decoder) Line() int { return d.line }

// Next returns the next sample, io.EOF at end of stream, or a decode /
// validation error tagged with the line number. After a malformed line
// the decoder remains usable, so callers can choose to skip and go on;
// after a terminal read failure (Failed reports true) skipping cannot
// make progress and Next keeps returning the same error.
func (d *Decoder) Next() (Sample, error) {
	if d.err != nil {
		return Sample{}, d.err
	}
	for d.sc.Scan() {
		d.line++
		b := d.sc.Bytes()
		if len(trimSpace(b)) == 0 {
			continue
		}
		s, err := DecodeSample(b)
		if err != nil {
			return Sample{}, fmt.Errorf("line %d: %w", d.line, err)
		}
		return s, nil
	}
	if err := d.sc.Err(); err != nil {
		d.err = fmt.Errorf("stream: reading samples: %w", err)
	} else {
		d.err = io.EOF
	}
	return Sample{}, d.err
}

// Failed reports whether the decoder has hit an unrecoverable read
// error — a bufio.Scanner failure such as a line over MaxLineBytes or
// an error from the underlying reader. Unlike a malformed line, this
// state is permanent: drivers that skip bad lines must still abort on
// it or they would spin on the same error forever.
func (d *Decoder) Failed() bool { return d.err != nil && d.err != io.EOF }

// trimSpace trims ASCII whitespace without allocating.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// schema precomputes the lookups for mapping samples onto a model's
// attribute layout.
type schema struct {
	desc      model.Description
	attrIdx   map[string]int
	targetIdx int
	featIdx   []int // non-target columns in schema order
}

func newSchema(desc model.Description) (*schema, error) {
	s := &schema{desc: desc, attrIdx: make(map[string]int, len(desc.AttrNames)), targetIdx: -1}
	for i, n := range desc.AttrNames {
		s.attrIdx[n] = i
		if n == desc.Target {
			s.targetIdx = i
		} else {
			s.featIdx = append(s.featIdx, i)
		}
	}
	if s.targetIdx < 0 {
		return nil, fmt.Errorf("stream: model schema has no target column %q", desc.Target)
	}
	return s, nil
}

// check validates a sample's event names against the schema without
// allocating the full-width row — the cheap half of instance, for
// callers that only need the verdict.
func (sc *schema) check(s *Sample) error {
	for name := range s.Events {
		i, ok := sc.attrIdx[name]
		if !ok {
			return fmt.Errorf("stream: unknown event %q (model %s schema)", name, sc.desc.Kind)
		}
		if i == sc.targetIdx {
			return fmt.Errorf("stream: event %q is the model target; report it as \"cpi\"", name)
		}
	}
	return nil
}

// instance expands a sample's named events into a full-width instance.
// The target column is left 0 — the observed CPI is monitor input, never
// model input. Unknown event names are an error: a silently dropped
// counter would make every downstream prediction quietly wrong.
func (sc *schema) instance(s *Sample) (dataset.Instance, error) {
	row := make(dataset.Instance, len(sc.desc.AttrNames))
	for name, v := range s.Events {
		i, ok := sc.attrIdx[name]
		if !ok {
			return nil, fmt.Errorf("stream: unknown event %q (model %s schema)", name, sc.desc.Kind)
		}
		if i == sc.targetIdx {
			return nil, fmt.Errorf("stream: event %q is the model target; report it as \"cpi\"", name)
		}
		row[i] = v
	}
	return row, nil
}

// featureVector extracts the raw non-target values of a full-width
// instance, in schema order — the phase tracker's input space.
func (sc *schema) featureVector(row dataset.Instance) []float64 {
	v := make([]float64, len(sc.featIdx))
	for j, f := range sc.featIdx {
		v[j] = row[f]
	}
	return v
}
