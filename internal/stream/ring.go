package stream

import (
	"errors"
	"fmt"
	"sync"
)

// Policy selects what Push does when the ring is full. The choice is the
// classic streaming triage: make the producer wait (Block), keep the
// freshest data (DropOldest), or keep the oldest and refuse new work
// (Reject).
type Policy int

const (
	// Block makes Push wait until a consumer frees a slot — lossless
	// backpressure, the right mode when the producer can stall (a pipe,
	// a file tail).
	Block Policy = iota
	// DropOldest evicts the oldest buffered sample to admit the new one,
	// counting the eviction — the right mode for live monitoring, where
	// a stale sample is worth less than a fresh one.
	DropOldest
	// Reject refuses the new sample with ErrFull, leaving the buffer
	// untouched — the right mode when the producer can retry or shed
	// load itself (an HTTP client seeing 429-like pushback).
	Reject
)

// String returns the flag-friendly policy name.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses a flag-friendly policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	case "reject":
		return Reject, nil
	}
	return 0, fmt.Errorf("stream: unknown backpressure policy %q (want block, drop-oldest or reject)", s)
}

// ErrFull is returned by Push under the Reject policy when the ring has
// no free slot.
var ErrFull = errors.New("stream: ring full")

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("stream: ring closed")

// Ring is a bounded FIFO of samples with an explicit overflow policy.
// It is safe for concurrent producers and consumers; the synchronous
// drivers in this package use it single-threaded, where it still
// provides the depth bound and drop accounting.
type Ring struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	policy   Policy
	buf      []Sample
	head     int // index of the oldest element
	n        int // elements buffered
	dropped  uint64
	closed   bool
}

// NewRing creates a ring with the given capacity (minimum 1) and policy.
func NewRing(capacity int, policy Policy) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	r := &Ring{policy: policy, buf: make([]Sample, capacity)}
	r.notFull.L = &r.mu
	r.notEmpty.L = &r.mu
	return r
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Depth returns the number of buffered samples.
func (r *Ring) Depth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns the number of samples evicted under DropOldest.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Push appends a sample, applying the overflow policy when full. It
// returns ErrFull under Reject, ErrClosed after Close, and nil
// otherwise.
func (r *Ring) Push(s Sample) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.n == len(r.buf) {
		switch r.policy {
		case DropOldest:
			r.head = (r.head + 1) % len(r.buf)
			r.n--
			r.dropped++
		case Reject:
			return ErrFull
		default: // Block
			if r.closed {
				return ErrClosed
			}
			r.notFull.Wait()
		}
	}
	if r.closed {
		return ErrClosed
	}
	r.buf[(r.head+r.n)%len(r.buf)] = s
	r.n++
	r.notEmpty.Signal()
	return nil
}

// TryPop removes and returns the oldest sample without blocking.
func (r *Ring) TryPop() (Sample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.popLocked()
}

// Pop removes and returns the oldest sample, waiting for one if the
// ring is empty; ok is false once the ring is closed and drained.
func (r *Ring) Pop() (Sample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	return r.popLocked()
}

func (r *Ring) popLocked() (Sample, bool) {
	if r.n == 0 {
		return Sample{}, false
	}
	s := r.buf[r.head]
	r.buf[r.head] = Sample{} // release references
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.notFull.Signal()
	return s, true
}

// PopN removes and returns up to max samples (oldest first) without
// blocking.
func (r *Ring) PopN(max int) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if max > r.n {
		max = r.n
	}
	if max <= 0 {
		return nil
	}
	out := make([]Sample, 0, max)
	for len(out) < max {
		s, _ := r.popLocked()
		out = append(out, s)
	}
	return out
}

// Close marks the ring closed: pending and future Push calls fail with
// ErrClosed, blocked Pop calls drain what is buffered and then return
// ok=false.
func (r *Ring) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
}
