package stream

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func stateTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Jobs = 1
	cfg.Window = 16
	cfg.PH.Lambda = 0.5
	cfg.EmitSamples = true
	return cfg
}

func traceSamples(t *testing.T, total, phaseLen, shiftAt int, shift float64, seed int64) []Sample {
	t.Helper()
	var buf bytes.Buffer
	if err := twoPhaseTrace(&buf, total, phaseLen, shiftAt, shift, seed); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var out []Sample
	for dec.More() {
		var s Sample
		if err := dec.Decode(&s); err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	if len(out) != total {
		t.Fatalf("decoded %d samples, want %d", len(out), total)
	}
	return out
}

func ingestAll(t *testing.T, p *Processor, samples []Sample) []Event {
	t.Helper()
	var events []Event
	for _, s := range samples {
		evs, err := p.Ingest(s)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, evs...)
	}
	return events
}

// TestProcessorStateRoundTrip is the replica-handoff guarantee: a
// processor drained mid-stream (with samples still buffered and the
// detectors mid-phase) and restored through a JSON round trip must be
// indistinguishable from one that never stopped — byte-identical Stats
// at the handoff point and identical events ever after.
func TestProcessorStateRoundTrip(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	cfg := stateTestConfig()
	samples := traceSamples(t, 400, 200, 300, 0.4, 7)

	// cut mid-window so the snapshot carries pending unscored samples.
	const cut = 217

	control, err := NewProcessor(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := ingestAll(t, control, samples)

	a, err := NewProcessor(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstEvents := ingestAll(t, a, samples[:cut])

	st := a.State()
	if len(st.Pending) != cut%cfg.Window {
		t.Fatalf("snapshot has %d pending samples, want %d", len(st.Pending), cut%cfg.Window)
	}
	wire, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ProcessorState
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}

	b, err := RestoreProcessor(tree, cfg, decoded)
	if err != nil {
		t.Fatal(err)
	}

	// Stats byte-identical at the handoff point.
	sa, errA := json.Marshal(a.Stats())
	sb, errB := json.Marshal(b.Stats())
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("Stats diverged across restore:\n  drained:  %s\n  restored: %s", sa, sb)
	}

	gotEvents := append(firstEvents, ingestAll(t, b, samples[cut:])...)
	if len(gotEvents) != len(wantEvents) {
		t.Fatalf("restored run emitted %d events, uninterrupted run %d", len(gotEvents), len(wantEvents))
	}
	for i := range gotEvents {
		if !reflect.DeepEqual(gotEvents[i], wantEvents[i]) {
			t.Fatalf("event %d diverged after restore:\n  got  %+v\n  want %+v", i, gotEvents[i], wantEvents[i])
		}
	}

	// Final Stats must match the uninterrupted run too.
	sc, _ := json.Marshal(control.Stats())
	sb2, _ := json.Marshal(b.Stats())
	if !bytes.Equal(sc, sb2) {
		t.Fatalf("final Stats diverged:\n  control:  %s\n  restored: %s", sc, sb2)
	}
}

// TestRestoreProcessorRejectsBadState pins the detectable-mismatch
// errors: wrong wire version, pending overflow, schema mismatch, and a
// debounce ring of the wrong width.
func TestRestoreProcessorRejectsBadState(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	cfg := stateTestConfig()

	p, err := NewProcessor(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := traceSamples(t, 10, 5, 999, 0, 11)
	ingestAll(t, p, samples)
	good := p.State()

	bad := good
	bad.SchemaVersion = 99
	if _, err := RestoreProcessor(tree, cfg, bad); err == nil {
		t.Error("wrong schema version accepted")
	}

	bad = good
	bad.Pending = make([]Sample, cfg.Buffer+1)
	for i := range bad.Pending {
		bad.Pending[i] = samples[0]
	}
	if _, err := RestoreProcessor(tree, cfg, bad); err == nil {
		t.Error("oversized pending buffer accepted")
	}

	bad = good
	bad.Pending = []Sample{{Bench: "x", Section: 0, Events: map[string]float64{"NoSuchEvent": 1}}}
	if _, err := RestoreProcessor(tree, cfg, bad); err == nil {
		t.Error("schema-mismatched pending sample accepted")
	}

	if good.Phases.Stream != nil {
		bad = good
		trimmed := *good.Phases.Stream
		trimmed.Recent = trimmed.Recent[:len(trimmed.Recent)-1]
		bad.Phases.Stream = &trimmed
		if _, err := RestoreProcessor(tree, cfg, bad); err == nil {
			t.Error("debounce ring width mismatch accepted")
		}
	}
}

// TestRingSnapshotRestore pins the ring's wrap-around ordering: a ring
// that has wrapped must snapshot oldest-first and restore to the same
// logical contents.
func TestRingSnapshotRestore(t *testing.T) {
	r := NewRing(4, DropOldest)
	for i := 0; i < 7; i++ { // wraps: 3,4,5,6 remain, 3 dropped
		if err := r.Push(Sample{Section: i}); err != nil {
			t.Fatal(err)
		}
	}
	pending, dropped := r.Snapshot()
	if dropped != 3 {
		t.Fatalf("dropped %d, want 3", dropped)
	}
	want := []int{3, 4, 5, 6}
	if len(pending) != len(want) {
		t.Fatalf("snapshot has %d samples, want %d", len(pending), len(want))
	}
	for i, s := range pending {
		if s.Section != want[i] {
			t.Fatalf("snapshot[%d].Section = %d, want %d", i, s.Section, want[i])
		}
	}

	r2 := NewRing(4, DropOldest)
	if err := r2.restore(pending, dropped); err != nil {
		t.Fatal(err)
	}
	p2, d2 := r2.Snapshot()
	if d2 != dropped || !reflect.DeepEqual(p2, pending) {
		t.Fatalf("restored ring diverged: %+v dropped %d", p2, d2)
	}
	if r2.Depth() != 4 {
		t.Fatalf("restored depth %d, want 4", r2.Depth())
	}

	if err := r2.restore(make([]Sample, 5), 0); err == nil {
		t.Fatal("restore over capacity accepted")
	}
}
