package stream

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mtree"
)

// perfData builds the CPI-like training set used across serve and
// stream tests: two regimes keyed on L2M with piecewise-linear CPI.
func perfData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "CPI"}, {Name: "L1IM"}, {Name: "L2M"}, {Name: "DtlbLdM"},
	}, 0)
	for i := 0; i < n; i++ {
		l1 := rng.Float64() * 0.02
		l2 := rng.Float64() * 0.005
		dt := rng.Float64() * 0.001
		y := 0.6 + 7*l1 + 0.01*rng.NormFloat64()
		if l2 > 0.002 {
			y = 1.1 + 90*l2 + 40*dt + 0.01*rng.NormFloat64()
		}
		d.MustAppend(dataset.Instance{y, l1, l2, dt})
	}
	return d
}

func trainTree(t testing.TB, d *dataset.Dataset) *mtree.Tree {
	t.Helper()
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 60
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// twoPhaseTrace writes an NDJSON trace: phase A for the first
// phaseLen sections, phase B after, with an unexplained +shift CPI
// regression injected from section shiftAt on. The CPI follows the same
// generative law as perfData, so the phase change alone leaves the
// model's residual flat — only the injected shift is drift.
func twoPhaseTrace(w io.Writer, total, phaseLen, shiftAt int, shift float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	enc := json.NewEncoder(w)
	for i := 0; i < total; i++ {
		var l1, l2, dt float64
		if i < phaseLen {
			l1 = 0.012 + 0.0015*rng.Float64()
			l2 = 0.0008 + 0.0002*rng.Float64()
			dt = 0.0001 + 0.00005*rng.Float64()
		} else {
			l1 = 0.002 + 0.0008*rng.Float64()
			l2 = 0.004 + 0.0003*rng.Float64()
			dt = 0.0006 + 0.0001*rng.Float64()
		}
		cpi := 0.6 + 7*l1
		if l2 > 0.002 {
			cpi = 1.1 + 90*l2 + 40*dt
		}
		cpi += 0.01 * rng.NormFloat64()
		if i >= shiftAt {
			cpi += shift
		}
		s := Sample{
			Bench:   "twophase",
			Section: i,
			Events:  map[string]float64{"L1IM": l1, "L2M": l2, "DtlbLdM": dt},
			CPI:     &cpi,
		}
		if err := enc.Encode(&s); err != nil {
			return err
		}
	}
	return nil
}

func testConfig(jobs int) MonitorConfig {
	cfg := DefaultMonitorConfig()
	cfg.Jobs = jobs
	cfg.Window = 16
	cfg.PH.Lambda = 0.5
	cfg.RenderEvery = 25
	return cfg
}

// TestMonitorEndToEnd is the acceptance scenario: a synthetic two-phase
// trace with an injected CPI shift must yield the phase boundary near
// the true section and the drift alarm right after the shift — and the
// full event + text output must be byte-identical at jobs 1 and 8.
func TestMonitorEndToEnd(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	var trace bytes.Buffer
	const (
		total    = 130
		boundary = 60
		shiftAt  = 90
	)
	if err := twoPhaseTrace(&trace, total, boundary, shiftAt, 0.5, 99); err != nil {
		t.Fatal(err)
	}

	type run struct {
		events, text bytes.Buffer
		stats        Stats
	}
	runs := map[int]*run{}
	for _, jobs := range []int{1, 8} {
		r := &run{}
		st, err := RunMonitor(tree, testConfig(jobs), bytes.NewReader(trace.Bytes()), &r.text, &r.events)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		r.stats = st
		runs[jobs] = r
	}

	if !bytes.Equal(runs[1].events.Bytes(), runs[8].events.Bytes()) {
		t.Error("event stream differs between jobs=1 and jobs=8")
	}
	if !bytes.Equal(runs[1].text.Bytes(), runs[8].text.Bytes()) {
		t.Error("text output differs between jobs=1 and jobs=8")
	}

	st := runs[1].stats
	if st.Scored != total {
		t.Fatalf("scored %d sections, want %d", st.Scored, total)
	}
	if st.PhaseBoundaries != 1 {
		t.Errorf("found %d phase boundaries, want 1", st.PhaseBoundaries)
	}
	if st.DriftAlarms < 1 {
		t.Errorf("found no drift alarm")
	}

	var phaseStarts, driftSections []int
	dec := json.NewDecoder(bytes.NewReader(runs[1].events.Bytes()))
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "phase":
			phaseStarts = append(phaseStarts, ev.PhaseStart)
		case "drift":
			driftSections = append(driftSections, ev.Section)
			if ev.Direction != "up" {
				t.Errorf("drift direction %q, want up", ev.Direction)
			}
		}
	}
	if len(phaseStarts) != 1 || abs(phaseStarts[0]-boundary) > 4 {
		t.Errorf("phase starts %v, want one near %d", phaseStarts, boundary)
	}
	if len(driftSections) == 0 {
		t.Fatal("no drift events")
	}
	first := driftSections[0]
	if first < shiftAt || first > shiftAt+9 {
		t.Errorf("first drift alarm at section %d, want within [%d,%d]", first, shiftAt, shiftAt+9)
	}
}

// TestNoDriftWithoutShift guards the false-positive side: the same
// two-phase trace with no injected shift must raise no alarm — a phase
// change the model understands is not drift.
func TestNoDriftWithoutShift(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	var trace bytes.Buffer
	if err := twoPhaseTrace(&trace, 130, 60, 130, 0, 99); err != nil {
		t.Fatal(err)
	}
	st, err := RunMonitor(tree, testConfig(1), &trace, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DriftAlarms != 0 {
		t.Errorf("%d drift alarms on an in-distribution trace", st.DriftAlarms)
	}
	if st.PhaseBoundaries != 1 {
		t.Errorf("%d phase boundaries, want 1", st.PhaseBoundaries)
	}
}

// TestWindowingDoesNotChangeEvents pins that the scoring batch size is
// invisible in the output: windows are a throughput knob like jobs.
func TestWindowingDoesNotChangeEvents(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	var trace bytes.Buffer
	if err := twoPhaseTrace(&trace, 100, 50, 80, 0.5, 7); err != nil {
		t.Fatal(err)
	}
	var outs []string
	for _, window := range []int{1, 7, 64} {
		cfg := testConfig(4)
		cfg.Window = window
		var events bytes.Buffer
		if _, err := RunMonitor(tree, cfg, bytes.NewReader(trace.Bytes()), nil, &events); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, events.String())
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Error("event stream depends on window size")
	}
}

func TestMonitorSkipsInvalidLines(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	in := strings.Join([]string{
		`{"events":{"L1IM":0.01,"L2M":0.001,"DtlbLdM":0.0001},"cpi":0.67}`,
		`not json`,
		`{"events":{"NOPE":1}}`,
		`{"events":{"L1IM":0.01,"L2M":0.001,"DtlbLdM":0.0001},"cpi":0.67}`,
		``,
	}, "\n")
	cfg := testConfig(1)
	cfg.Window = 1
	var text bytes.Buffer
	st, err := RunMonitor(tree, cfg, strings.NewReader(in), &text, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scored != 2 {
		t.Errorf("scored %d, want 2", st.Scored)
	}
	if st.Invalid != 2 {
		t.Errorf("invalid %d, want 2", st.Invalid)
	}
	if !strings.Contains(text.String(), "skipping") {
		t.Error("no skip notice in text output")
	}
}

// TestMonitorAbortsOnUnrecoverableReadError pins the busy-loop fix: a
// terminal scanner failure (here an over-long line) is sticky in the
// decoder, so the monitor must abort even under SkipInvalid instead of
// spinning on the same error forever.
func TestMonitorAbortsOnUnrecoverableReadError(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	cfg := testConfig(1)
	cfg.SkipInvalid = true
	cfg.Window = 1
	in := `{"events":{"L1IM":0.01,"L2M":0.001,"DtlbLdM":0.0001},"cpi":0.67}` + "\n" +
		strings.Repeat("x", MaxLineBytes+1) + "\n"
	st, err := RunMonitor(tree, cfg, strings.NewReader(in), io.Discard, nil)
	if err == nil {
		t.Fatal("monitor kept running past an unrecoverable scanner error")
	}
	if st.Scored != 1 {
		t.Errorf("scored %d sections before the failure, want 1", st.Scored)
	}
}

// TestDecoderFailureIsSticky pins the Decoder contract the monitor
// relies on: after a scanner error, Failed reports true and every Next
// call returns the same error.
func TestDecoderFailureIsSticky(t *testing.T) {
	dec := NewDecoder(strings.NewReader(strings.Repeat("x", MaxLineBytes+1)))
	_, err1 := dec.Next()
	if err1 == nil || err1 == io.EOF {
		t.Fatalf("over-long line did not fail the decoder: %v", err1)
	}
	if !dec.Failed() {
		t.Fatal("Failed() false after a scanner error")
	}
	if _, err2 := dec.Next(); err2 != err1 {
		t.Fatalf("second Next returned %v, want the sticky %v", err2, err1)
	}
}

// TestMonitorRendersNAWithoutObservedCPI guards the prediction-only
// status line: with no cpi field in any sample there is no observation
// or residual to show, so the rolling line must say "n/a" rather than
// render a zero EWMA as a real measurement.
func TestMonitorRendersNAWithoutObservedCPI(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	cfg := testConfig(1)
	cfg.Window = 1
	cfg.RenderEvery = 2
	in := strings.Repeat(`{"events":{"L1IM":0.01,"L2M":0.001,"DtlbLdM":0.0001}}`+"\n", 6)
	var text bytes.Buffer
	st, err := RunMonitor(tree, cfg, strings.NewReader(in), &text, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.HaveObserved {
		t.Error("HaveObserved true on a prediction-only stream")
	}
	if !strings.Contains(text.String(), "obs CPI n/a") {
		t.Errorf("no n/a marker in status output:\n%s", text.String())
	}
	if strings.Contains(text.String(), "resid") {
		t.Errorf("residual rendered without any observation:\n%s", text.String())
	}
}

// TestEwmaObservedSeedsOnFirstObservation: when observations start
// arriving mid-stream, the EWMA must seed on the first real value, not
// drag up from an arbitrary zero.
func TestEwmaObservedSeedsOnFirstObservation(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	cfg := DefaultConfig()
	cfg.Jobs = 1
	cfg.Window = 1
	p, err := NewProcessor(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	noObs := Sample{Events: map[string]float64{"L1IM": 0.01, "L2M": 0.001, "DtlbLdM": 0.0001}}
	if _, err := p.Ingest(noObs); err != nil {
		t.Fatal(err)
	}
	if p.Stats().HaveObserved {
		t.Fatal("HaveObserved before any observation")
	}
	cpi := 1.5
	withObs := noObs
	withObs.CPI = &cpi
	if _, err := p.Ingest(withObs); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if !st.HaveObserved {
		t.Fatal("HaveObserved false after an observed sample")
	}
	if st.EwmaObserved != cpi {
		t.Errorf("EwmaObserved %.3f, want seeded at first observation %.3f", st.EwmaObserved, cpi)
	}
}

func TestMonitorAbortsOnInvalidWhenStrict(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	cfg := testConfig(1)
	cfg.SkipInvalid = false
	_, err := RunMonitor(tree, cfg, strings.NewReader("junk\n"), nil, nil)
	if err == nil {
		t.Fatal("strict monitor accepted malformed input")
	}
}

func TestProcessorCheckRejectsWithoutStateChange(t *testing.T) {
	tree := trainTree(t, perfData(1200, 5))
	p, err := NewProcessor(tree, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := Sample{Events: map[string]float64{"UNKNOWN": 1}}
	if err := p.Check(bad); err == nil {
		t.Fatal("unknown event passed Check")
	}
	if _, err := p.Ingest(bad); err == nil {
		t.Fatal("unknown event ingested")
	}
	st := p.Stats()
	if st.Accepted != 0 || st.Invalid != 1 {
		t.Errorf("stats after rejected sample: %+v", st)
	}
}

func TestDecoderLineNumbersAndRecovery(t *testing.T) {
	in := "\n" + `{"events":{"a":1}}` + "\n" + "{bad\n" + `{"events":{"b":2}}` + "\n"
	dec := NewDecoder(strings.NewReader(in))
	if s, err := dec.Next(); err != nil || len(s.Events) != 1 {
		t.Fatalf("first sample: %v %v", s, err)
	}
	_, err := dec.Next()
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("malformed line error %v, want line 3 tag", err)
	}
	if s, err := dec.Next(); err != nil || s.Events["b"] != 2 {
		t.Fatalf("decoder did not recover after bad line: %v %v", s, err)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSampleValidate(t *testing.T) {
	nan := `{"events":{"a":1},"cpi":null}`
	if _, err := DecodeSample([]byte(nan)); err != nil {
		t.Errorf("null cpi should decode as absent: %v", err)
	}
	for _, bad := range []string{
		`{}`,
		`{"events":{}}`,
		`{"events":{"a":1e400}}`,
	} {
		if _, err := DecodeSample([]byte(bad)); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

func TestSchemaInstanceMapping(t *testing.T) {
	tree := trainTree(t, perfData(400, 3))
	sc, err := newSchema(tree.Describe())
	if err != nil {
		t.Fatal(err)
	}
	cpi := 1.0
	s := Sample{Events: map[string]float64{"L2M": 0.004, "L1IM": 0.001}, CPI: &cpi}
	row, err := sc.instance(&s)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 4 || row[0] != 0 || row[1] != 0.001 || row[2] != 0.004 || row[3] != 0 {
		t.Errorf("instance %v", row)
	}
	if _, err := sc.instance(&Sample{Events: map[string]float64{"CPI": 1}}); err == nil {
		t.Error("target column accepted as an event")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkStreamIngest(b *testing.B) {
	tree := trainTree(b, perfData(2000, 17))
	var trace bytes.Buffer
	const n = 512
	if err := twoPhaseTrace(&trace, n, n/2, n, 0, 3); err != nil {
		b.Fatal(err)
	}
	samples := make([]Sample, 0, n)
	dec := NewDecoder(bytes.NewReader(trace.Bytes()))
	for {
		s, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		samples = append(samples, s)
	}

	run := func(b *testing.B, jobs int, contribs bool) {
		cfg := DefaultConfig()
		cfg.Jobs = jobs
		cfg.Window = 64
		cfg.Contributions = contribs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := NewProcessor(tree, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range samples {
				if _, err := p.Ingest(s); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := p.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1, true) })
	b.Run("parallel", func(b *testing.B) { run(b, 0, true) })
	b.Run("serial-nocontrib", func(b *testing.B) { run(b, 1, false) })
}
