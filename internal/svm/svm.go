// Package svm implements epsilon-insensitive support vector regression
// (ε-SVR) trained with a simplified SMO optimizer, the paper's second
// black-box comparator (Weka's SMOreg; Shevade et al.'s improvements to
// Smola & Schölkopf's algorithm). On the performance dataset it reaches a
// correlation around 0.98 — on par with the model tree — but like the ANN
// it offers no per-event interpretation.
//
// Inputs and target are standardized internally. RBF and linear kernels are
// provided.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// KernelKind selects the kernel function.
type KernelKind int

const (
	// KernelRBF is the Gaussian kernel exp(-gamma*||x-y||^2).
	KernelRBF KernelKind = iota
	// KernelLinear is the dot-product kernel.
	KernelLinear
)

// Config holds the SVR hyper-parameters.
type Config struct {
	// C is the box constraint (regularization trade-off).
	C float64
	// Epsilon is the width of the insensitive tube.
	Epsilon float64
	// Kernel selects the kernel.
	Kernel KernelKind
	// Gamma is the RBF width parameter (ignored for linear).
	Gamma float64
	// Tol is the KKT violation tolerance.
	Tol float64
	// MaxPasses bounds the number of full passes without progress before
	// termination.
	MaxPasses int
	// MaxIters hard-bounds total optimization sweeps.
	MaxIters int
	// MaxTrainSize caps the number of training instances; larger training
	// sets are randomly subsampled (0 disables). SMO cost grows
	// quadratically with the training size, and on this dataset a few
	// thousand sections already saturate accuracy.
	MaxTrainSize int
	// Seed drives working-pair selection and subsampling.
	Seed int64
}

// DefaultConfig returns settings comparable to Weka's SMOreg defaults.
func DefaultConfig() Config {
	return Config{
		C:            10,
		Epsilon:      0.05,
		Kernel:       KernelRBF,
		Gamma:        0.5,
		Tol:          1e-3,
		MaxPasses:    5,
		MaxIters:     60,
		MaxTrainSize: 2000,
		Seed:         1,
	}
}

// Machine is a trained SVR model.
type Machine struct {
	cfg      Config
	features []int
	xMean    []float64
	xStd     []float64
	yMean    float64
	yStd     float64
	// Support data: standardized feature vectors with nonzero beta.
	sv   [][]float64
	beta []float64 // alpha - alpha*, per support vector
	b    float64
}

// Train fits an ε-SVR on the dataset using a simplified SMO: coordinate
// updates on the beta = alpha - alpha* formulation with an epsilon-aware
// clipped step, cycling until KKT violations fall below tolerance.
func Train(d *dataset.Dataset, cfg Config) (*Machine, error) {
	n := d.Len()
	if n == 0 {
		return nil, errors.New("svm: cannot train on empty dataset")
	}
	if cfg.C <= 0 {
		return nil, fmt.Errorf("svm: C=%v must be positive", cfg.C)
	}
	if cfg.MaxTrainSize > 0 && n > cfg.MaxTrainSize {
		idx := rand.New(rand.NewSource(cfg.Seed)).Perm(n)[:cfg.MaxTrainSize]
		d = d.Subset(idx)
		n = d.Len()
	}
	features := d.FeatureIndices()
	f := len(features)

	m := &Machine{cfg: cfg, features: features}
	m.xMean = make([]float64, f)
	m.xStd = make([]float64, f)
	for j, a := range features {
		m.xMean[j] = d.ColumnMean(a)
		m.xStd[j] = math.Sqrt(d.ColumnVariance(a))
		if m.xStd[j] == 0 {
			m.xStd[j] = 1
		}
	}
	m.yMean = d.TargetMean()
	m.yStd = d.TargetStdDev()
	if m.yStd == 0 {
		m.yStd = 1
	}

	// Standardize once.
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := d.Row(i)
		xi := make([]float64, f)
		for j, a := range features {
			xi[j] = (row[a] - m.xMean[j]) / m.xStd[j]
		}
		x[i] = xi
		y[i] = (d.Target(i) - m.yMean) / m.yStd
	}

	kern := m.kernelFn()
	// Cache diagonal; full kernel caching is O(n^2) memory, acceptable for
	// the dataset sizes here (thousands) but we only cache rows on demand
	// via the error vector update instead.
	beta := make([]float64, n)
	// fcache[i] = prediction(i) - y[i], maintained incrementally.
	fcache := make([]float64, n)
	for i := range fcache {
		fcache[i] = -y[i] // all beta zero, b zero
	}
	bias := 0.0
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = kern(x[i], x[i])
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	passes := 0
	for iter := 0; iter < cfg.MaxIters && passes < cfg.MaxPasses; iter++ {
		changed := 0
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			err := fcache[i] + bias // E_i = f(x_i) - y_i
			// KKT check for the epsilon tube in the beta formulation.
			viol := (err > cfg.Epsilon+cfg.Tol && beta[i] > -cfg.C) ||
				(err < -cfg.Epsilon-cfg.Tol && beta[i] < cfg.C) ||
				(math.Abs(err) < cfg.Epsilon-cfg.Tol && beta[i] != 0)
			if !viol {
				continue
			}
			eta := diag[i]
			if eta <= 0 {
				continue
			}
			// Proximal coordinate step: minimize the dual along beta[i].
			// The epsilon-insensitive subgradient gives a soft-threshold
			// style update.
			old := beta[i]
			var target float64
			switch {
			case err > cfg.Epsilon:
				target = old - (err-cfg.Epsilon)/eta
			case err < -cfg.Epsilon:
				target = old - (err+cfg.Epsilon)/eta
			default:
				// Inside the tube but beta nonzero: shrink toward zero.
				target = old - err/eta
				if (old > 0 && target < 0) || (old < 0 && target > 0) {
					target = 0
				}
			}
			nb := math.Max(-cfg.C, math.Min(cfg.C, target))
			delta := nb - old
			if math.Abs(delta) < 1e-12 {
				continue
			}
			beta[i] = nb
			// Update the error cache: f(x_j) changes by delta*K(i,j).
			for j := 0; j < n; j++ {
				fcache[j] += delta * kern(x[i], x[j])
			}
			changed++
		}
		// Recenter the bias on the current margin violators.
		bias = recenterBias(beta, fcache, cfg)
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	m.b = bias
	for i := 0; i < n; i++ {
		if beta[i] != 0 {
			m.sv = append(m.sv, x[i])
			m.beta = append(m.beta, beta[i])
		}
	}
	return m, nil
}

// recenterBias chooses b so free support vectors sit on the tube boundary;
// with none, it zeroes the mean residual.
func recenterBias(beta, fcache []float64, cfg Config) float64 {
	sum, cnt := 0.0, 0
	for i := range beta {
		if beta[i] > 1e-9 && beta[i] < cfg.C-1e-9 {
			// Free positive beta: want f(x_i) - y_i = +epsilon... in the
			// beta>0 case the point lies above the tube by construction of
			// the dual; residual should be -epsilon.
			sum += -cfg.Epsilon - fcache[i]
			cnt++
		} else if beta[i] < -1e-9 && beta[i] > -cfg.C+1e-9 {
			sum += cfg.Epsilon - fcache[i]
			cnt++
		}
	}
	if cnt > 0 {
		return sum / float64(cnt)
	}
	// Fallback: zero mean residual over all points.
	for i := range fcache {
		sum += -fcache[i]
	}
	if len(fcache) == 0 {
		return 0
	}
	return sum / float64(len(fcache))
}

func (m *Machine) kernelFn() func(a, b []float64) float64 {
	switch m.cfg.Kernel {
	case KernelLinear:
		return func(a, b []float64) float64 {
			s := 0.0
			for i := range a {
				s += a[i] * b[i]
			}
			return s
		}
	default:
		gamma := m.cfg.Gamma
		return func(a, b []float64) float64 {
			s := 0.0
			for i := range a {
				d := a[i] - b[i]
				s += d * d
			}
			return math.Exp(-gamma * s)
		}
	}
}

// NumSupportVectors returns the number of retained support vectors.
func (m *Machine) NumSupportVectors() int { return len(m.sv) }

// Predict evaluates the machine on a full-width instance.
func (m *Machine) Predict(row dataset.Instance) float64 {
	f := len(m.features)
	xi := make([]float64, f)
	for j, a := range m.features {
		xi[j] = (row[a] - m.xMean[j]) / m.xStd[j]
	}
	kern := m.kernelFn()
	s := m.b
	for i, sv := range m.sv {
		s += m.beta[i] * kern(sv, xi)
	}
	return s*m.yStd + m.yMean
}
