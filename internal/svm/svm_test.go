package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
)

func linearData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "a"}, {Name: "b"}}, 0)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		d.MustAppend(dataset.Instance{2*a - b, a, b})
	}
	return d
}

func TestTrainValidation(t *testing.T) {
	empty := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	if _, err := Train(empty, DefaultConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
	d := linearData(10, 1)
	cfg := DefaultConfig()
	cfg.C = 0
	if _, err := Train(d, cfg); err == nil {
		t.Error("C=0 accepted")
	}
}

func TestLearnsLinearWithLinearKernel(t *testing.T) {
	d := linearData(600, 2)
	cfg := DefaultConfig()
	cfg.Kernel = KernelLinear
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	met, err := eval.Evaluate(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if met.Correlation < 0.98 {
		t.Errorf("linear-kernel correlation %v < 0.98", met.Correlation)
	}
}

func TestLearnsNonlinearWithRBF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	for i := 0; i < 600; i++ {
		x := rng.Float64()*4 - 2
		d.MustAppend(dataset.Instance{math.Sin(2 * x), x})
	}
	m, err := Train(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	met, _ := eval.Evaluate(m, d)
	if met.Correlation < 0.95 {
		t.Errorf("RBF fit of sin correlation %v < 0.95", met.Correlation)
	}
}

func TestSubsamplingCap(t *testing.T) {
	d := linearData(500, 4)
	cfg := DefaultConfig()
	cfg.MaxTrainSize = 100
	cfg.Kernel = KernelLinear
	m, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSupportVectors() > 100 {
		t.Errorf("support vectors %d exceed training cap 100", m.NumSupportVectors())
	}
	met, _ := eval.Evaluate(m, d)
	if met.Correlation < 0.95 {
		t.Errorf("subsampled fit correlation %v < 0.95", met.Correlation)
	}
}

func TestSupportVectorsBounded(t *testing.T) {
	d := linearData(200, 5)
	m, err := Train(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sv := m.NumSupportVectors(); sv > d.Len() {
		t.Errorf("support vectors %d > training size %d", sv, d.Len())
	}
}

func TestEpsilonTubeSparsity(t *testing.T) {
	// With a wide epsilon tube and an easy target, many points sit inside
	// the tube and contribute no support vector.
	d := linearData(300, 6)
	wide := DefaultConfig()
	wide.Kernel = KernelLinear
	wide.Epsilon = 1.0
	narrow := wide
	narrow.Epsilon = 0.001
	mw, err := Train(d, wide)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := Train(d, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if mw.NumSupportVectors() >= mn.NumSupportVectors() {
		t.Errorf("wide tube kept %d SVs, narrow %d; expected fewer for wide",
			mw.NumSupportVectors(), mn.NumSupportVectors())
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	d := linearData(150, 7)
	m1, err := Train(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := dataset.Instance{0, 0.5, -0.5}
	if m1.Predict(in) != m2.Predict(in) {
		t.Error("same seed produced different machines")
	}
}

func TestPredictFinite(t *testing.T) {
	d := linearData(100, 8)
	m, err := Train(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []dataset.Instance{{0, 0, 0}, {0, 50, -50}} {
		if p := m.Predict(in); math.IsNaN(p) || math.IsInf(p, 0) {
			t.Errorf("Predict(%v) = %v", in, p)
		}
	}
}
