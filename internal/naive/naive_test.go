package naive

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
)

func miniSchema() *dataset.Dataset {
	return dataset.MustNew([]dataset.Attribute{
		{Name: "CPI"}, {Name: "L2M"}, {Name: "BrMisPr"}, {Name: "Unrelated"},
	}, 0)
}

func TestFixedPenaltyArithmetic(t *testing.T) {
	m := &FixedPenaltyModel{
		BaseCPI:   0.3,
		Penalties: map[int]float64{1: 165, 2: 14},
		Names:     map[int]string{1: "L2M", 2: "BrMisPr"},
	}
	got := m.Predict(dataset.Instance{0, 0.01, 0.002, 5})
	want := 0.3 + 165*0.01 + 14*0.002
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestNewCore2FixedPenaltiesMapping(t *testing.T) {
	d := miniSchema()
	m := NewCore2FixedPenalties(d)
	if _, ok := m.Penalties[d.AttrIndex("L2M")]; !ok {
		t.Error("L2M penalty not assigned")
	}
	if _, ok := m.Penalties[d.AttrIndex("Unrelated")]; ok {
		t.Error("penalty assigned to unknown attribute")
	}
	// Zero-penalty mix attributes must not appear.
	for a := range m.Penalties {
		if m.Penalties[a] == 0 {
			t.Errorf("zero penalty stored for %v", m.Names[a])
		}
	}
	if !strings.Contains(m.String(), "L2M") {
		t.Errorf("String = %q", m.String())
	}
}

func TestFixedPenaltyMisestimatesInteractions(t *testing.T) {
	// Ground truth: the effective L2M penalty is 165 in workload class A
	// (dependent misses) but only 40 in class B (overlapped misses). A
	// single fixed penalty cannot fit both.
	rng := rand.New(rand.NewSource(1))
	d := miniSchema()
	for i := 0; i < 400; i++ {
		l2 := rng.Float64() * 0.02
		cpi := 0.3 + 165*l2
		if i%2 == 0 {
			cpi = 0.3 + 40*l2
		}
		d.MustAppend(dataset.Instance{cpi, l2, 0, 0})
	}
	m := NewCore2FixedPenalties(d)
	met, err := eval.Evaluate(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if met.RAE < 0.3 {
		t.Errorf("fixed penalties fit interaction data too well (RAE %v); the motivating failure disappeared", met.RAE)
	}
}

func TestGlobalLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := miniSchema()
	for i := 0; i < 300; i++ {
		l2 := rng.Float64() * 0.02
		br := rng.Float64() * 0.01
		d.MustAppend(dataset.Instance{0.5 + 100*l2 + 12*br, l2, br, rng.Float64()})
	}
	g, err := TrainGlobalLinear(d)
	if err != nil {
		t.Fatal(err)
	}
	met, _ := eval.Evaluate(g, d)
	if met.Correlation < 0.999 {
		t.Errorf("global linear fit on linear data C=%v", met.Correlation)
	}
	l2 := d.AttrIndex("L2M")
	if math.Abs(g.Model.Coef(l2)-100) > 1 {
		t.Errorf("L2M coefficient %v, want ~100", g.Model.Coef(l2))
	}
}

func TestGlobalLinearEmpty(t *testing.T) {
	if _, err := TrainGlobalLinear(miniSchema()); err == nil {
		t.Error("empty dataset accepted")
	}
}
