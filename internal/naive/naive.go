// Package naive implements the traditional first-order performance model
// that the paper's introduction argues against: CPI is estimated as an
// ideal steady-state CPI plus a fixed per-event cycle penalty for each
// counter, identical for every workload and phase:
//
//	CPI = CPI_ideal + sum_i penalty_i * X_i
//
// (cf. Karkhanis & Smith, ISCA'04). Because modern out-of-order machines
// hide a workload-dependent share of every penalty, uniform penalties
// systematically mis-price events — the motivating observation for the
// model-tree approach. Two variants are provided:
//
//   - FixedPenaltyModel: hand-assigned architectural penalties (the ad-hoc
//     practice the paper describes), no fitting at all.
//   - Fitted global linear model (via Learner): a single least-squares
//     linear model over the whole training set, i.e. a model tree with
//     exactly one leaf. Its gap to the full tree isolates the value of
//     workload classification.
package naive

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/linreg"
)

// FixedPenaltyModel predicts CPI from architecturally assigned constant
// penalties per event occurrence.
type FixedPenaltyModel struct {
	// BaseCPI is the assumed no-stall steady-state CPI.
	BaseCPI float64
	// Penalties maps attribute column index to cycles per event.
	Penalties map[int]float64
	// Names maps the same columns to names, for reports.
	Names map[int]string
}

// Predict implements eval.Regressor.
func (m *FixedPenaltyModel) Predict(row dataset.Instance) float64 {
	cpi := m.BaseCPI
	for a, p := range m.Penalties {
		cpi += p * row[a]
	}
	return cpi
}

// String renders the model as a fixed-penalty equation.
func (m *FixedPenaltyModel) String() string {
	type term struct {
		a int
		p float64
	}
	terms := make([]term, 0, len(m.Penalties))
	for a, p := range m.Penalties {
		terms = append(terms, term{a, p})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].a < terms[j].a })
	var b strings.Builder
	fmt.Fprintf(&b, "CPI = %.3g", m.BaseCPI)
	for _, t := range terms {
		name := m.Names[t.a]
		if name == "" {
			name = fmt.Sprintf("x%d", t.a)
		}
		fmt.Fprintf(&b, " + %.3g*%s", t.p, name)
	}
	return b.String()
}

// NewCore2FixedPenalties builds a FixedPenaltyModel with textbook Core 2
// Duo penalty assignments for the named attributes present in the dataset
// schema. Attributes not found in the schema are skipped, so the model can
// be applied to reduced schemas in tests.
//
// The penalty values are the kind of first-order numbers an analyst would
// read off an optimization guide: full memory latency for an L2 miss, L2
// latency for L1 misses, published page-walk and flush costs for TLB and
// branch events. They deliberately ignore overlap, which is the point.
func NewCore2FixedPenalties(d *dataset.Dataset) *FixedPenaltyModel {
	assign := map[string]float64{
		"L2M":       165, // memory access latency in cycles at 2.4 GHz
		"L1DM":      14,  // L2 hit latency
		"L1IM":      14,
		"BrMisPr":   14, // pipeline flush + refetch
		"DtlbL0LdM": 2,
		"DtlbLdM":   9, // page walk
		"DtlbLdReM": 9,
		"Dtlb":      9,
		"ItlbM":     20,
		"LdBlSta":   5,
		"LdBlStd":   6,
		"LdBlOvSt":  5,
		"MisalRef":  3,
		"L1DSpLd":   9,
		"L1DSpSt":   9,
		"LCP":       6,
		"InstLd":    0,
		"InstSt":    0,
		"BrPred":    0,
		"InstOther": 0,
	}
	m := &FixedPenaltyModel{
		BaseCPI:   0.30, // ideal CPI of a 4-wide machine with typical ILP limits
		Penalties: map[int]float64{},
		Names:     map[int]string{},
	}
	for name, p := range assign {
		if p == 0 {
			continue
		}
		if a := d.AttrIndex(name); a >= 0 {
			m.Penalties[a] = p
			m.Names[a] = name
		}
	}
	return m
}

// GlobalLinear fits one least-squares linear model on the entire training
// set — the "single function for all workloads" straw man.
type GlobalLinear struct {
	Model *linreg.Model
}

// TrainGlobalLinear fits the single global linear model.
func TrainGlobalLinear(d *dataset.Dataset) (*GlobalLinear, error) {
	m, err := linreg.FitGreedy(d, d.FeatureIndices())
	if err != nil {
		return nil, fmt.Errorf("naive: fitting global linear model: %w", err)
	}
	return &GlobalLinear{Model: m}, nil
}

// Predict implements eval.Regressor.
func (g *GlobalLinear) Predict(row dataset.Instance) float64 {
	return g.Model.Predict(row)
}
