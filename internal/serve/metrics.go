package serve

import (
	"bytes"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Observability counters for the prediction service, expvar-style: plain
// in-process counters and fixed-bucket latency histograms, rendered as
// one JSON document at GET /v1/metrics.json (with cumulative histogram
// buckets, so external load generators can cross-validate their own
// counts) and as a flat text exposition at GET /metrics. No external
// metrics dependency; the histograms give the latency quantiles a
// scrape would want (p50/p90/p99) at a few hundred bytes of state per
// endpoint.

// latencyBucketsMs are the histogram upper bounds in milliseconds,
// log-spaced from 10µs to 10s. Samples above the last bound land in a
// +Inf overflow bucket.
var latencyBucketsMs = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// histogram is a fixed-bucket latency histogram built from atomics
// only — no lock is ever taken on the observe path, so recording a
// latency cannot contend with request handling. State is striped:
// observations land round-robin on one of histStripes independently
// allocated stripes (so the hot counters do not all share cache lines)
// and the stripes are merged at snapshot time. A snapshot taken while
// observations are in flight may see an observation's bucket increment
// before its total — a transient off-by-a-few skew that vanishes once
// writers quiesce, which is when the exact cross-validation (loadgen)
// reads it.
type histogram struct {
	next    atomic.Uint32
	stripes []*histStripe
}

// histStripes is the stripe count; a power of two so the round-robin
// pick is a mask, sized to spread writers without bloating snapshots.
const histStripes = 8

type histStripe struct {
	counts []atomic.Uint64 // len(latencyBucketsMs)+1, last is overflow
	total  atomic.Uint64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

func newHistogram() *histogram {
	h := &histogram{stripes: make([]*histStripe, histStripes)}
	for i := range h.stripes {
		h.stripes[i] = &histStripe{counts: make([]atomic.Uint64, len(latencyBucketsMs)+1)}
	}
	return h
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(latencyBucketsMs, ms)
	st := h.stripes[h.next.Add(1)&(histStripes-1)]
	st.counts[i].Add(1)
	st.total.Add(1)
	st.sumNs.Add(int64(d))
	for {
		cur := st.maxNs.Load()
		if int64(d) <= cur || st.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q-th observation — an overestimate by at most
// one bucket width, which is what fixed buckets buy.
func (h *histogram) snapshot() latencySnapshot {
	counts := make([]uint64, len(latencyBucketsMs)+1)
	var total uint64
	var sumNs, maxNs int64
	for _, st := range h.stripes {
		for i := range counts {
			counts[i] += st.counts[i].Load()
		}
		total += st.total.Load()
		sumNs += st.sumNs.Load()
		if m := st.maxNs.Load(); m > maxNs {
			maxNs = m
		}
	}
	maxMs := float64(maxNs) / float64(time.Millisecond)
	s := latencySnapshot{MaxMs: maxMs, Count: total}
	if total == 0 {
		return s
	}
	s.MeanMs = float64(sumNs) / float64(time.Millisecond) / float64(total)
	quantile := func(q float64) float64 {
		rank := uint64(q * float64(total))
		if rank < 1 {
			rank = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= rank {
				if i < len(latencyBucketsMs) {
					return latencyBucketsMs[i]
				}
				return maxMs
			}
		}
		return maxMs
	}
	s.P50Ms = quantile(0.50)
	s.P90Ms = quantile(0.90)
	s.P99Ms = quantile(0.99)
	// Cumulative finite buckets; observations above the last bound are
	// the difference between the last bucket's count and Count.
	s.Buckets = make([]latencyBucket, len(latencyBucketsMs))
	var cum uint64
	for i := range latencyBucketsMs {
		cum += counts[i]
		s.Buckets[i] = latencyBucket{LeMs: latencyBucketsMs[i], Count: cum}
	}
	return s
}

// latencyBucket is one cumulative histogram bucket: Count observations
// were at or under LeMs milliseconds.
type latencyBucket struct {
	LeMs  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

type latencySnapshot struct {
	Count   uint64          `json:"count"`
	MeanMs  float64         `json:"mean_ms"`
	P50Ms   float64         `json:"p50_ms"`
	P90Ms   float64         `json:"p90_ms"`
	P99Ms   float64         `json:"p99_ms"`
	MaxMs   float64         `json:"max_ms"`
	Buckets []latencyBucket `json:"buckets,omitempty"`
}

// endpointMetrics tracks one route.
type endpointMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	inFlight atomic.Int64
	latency  *histogram
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{latency: newHistogram()}
}

type endpointSnapshot struct {
	Requests  uint64          `json:"requests"`
	Errors    uint64          `json:"errors"`
	InFlight  int64           `json:"in_flight"`
	LatencyMs latencySnapshot `json:"latency_ms"`
}

// metricsRegistry holds every endpoint's counters plus service-level
// gauges. Endpoints are registered up front, so reads are lock-free map
// lookups.
type metricsRegistry struct {
	start     time.Time
	endpoints map[string]*endpointMetrics
	cache     *PredictionCache // nil when caching is disabled
	models    func() int
	machines  func() map[string]int // nil when no registry is attached
	streams   *streamSessions       // nil when the server has no stream surface
}

func newMetricsRegistry(routes []string, cache *PredictionCache, models func() int, machines func() map[string]int, streams *streamSessions) *metricsRegistry {
	m := &metricsRegistry{
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics, len(routes)),
		cache:     cache,
		models:    models,
		machines:  machines,
		streams:   streams,
	}
	for _, r := range routes {
		m.endpoints[r] = newEndpointMetrics()
	}
	return m
}

type cacheSnapshot struct {
	Enabled bool    `json:"enabled"`
	Size    int     `json:"size"`
	Cap     int     `json:"cap"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type metricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Models        int     `json:"models"`
	// Machines counts the registered models per machine provenance tag
	// (empty tag = models with no recorded machine); omitted while the
	// registry is empty.
	Machines  map[string]int              `json:"machines,omitempty"`
	Endpoints map[string]endpointSnapshot `json:"endpoints"`
	Cache     cacheSnapshot               `json:"cache"`
	Streams   streamsSnapshot             `json:"streams"`
}

func (m *metricsRegistry) snapshot() metricsSnapshot {
	s := metricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Models:        m.models(),
		Endpoints:     make(map[string]endpointSnapshot, len(m.endpoints)),
	}
	if m.machines != nil {
		if by := m.machines(); len(by) > 0 {
			s.Machines = by
		}
	}
	for route, em := range m.endpoints {
		s.Endpoints[route] = endpointSnapshot{
			Requests:  em.requests.Load(),
			Errors:    em.errors.Load(),
			InFlight:  em.inFlight.Load(),
			LatencyMs: em.latency.snapshot(),
		}
	}
	if m.cache != nil {
		hits, misses, size := m.cache.Stats()
		s.Cache = cacheSnapshot{Enabled: true, Size: size, Cap: m.cache.Cap(), Hits: hits, Misses: misses}
		if total := hits + misses; total > 0 {
			s.Cache.HitRate = float64(hits) / float64(total)
		}
	}
	if m.streams != nil {
		s.Streams = m.streams.snapshot()
	}
	return s
}

// renderText flattens the snapshot into a prometheus-flavoured text
// exposition: one `name{labels} value` line per counter, routes sorted
// so the output is deterministic. The structured form with histogram
// buckets lives at /v1/metrics.json; this rendering keeps only the
// quantile summaries per endpoint.
func (s metricsSnapshot) renderText() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "serve_uptime_seconds %g\n", s.UptimeSeconds)
	fmt.Fprintf(&b, "serve_models %d\n", s.Models)
	machines := make([]string, 0, len(s.Machines))
	for mn := range s.Machines {
		machines = append(machines, mn)
	}
	sort.Strings(machines)
	for _, mn := range machines {
		fmt.Fprintf(&b, "serve_models_by_machine{machine=%q} %d\n", mn, s.Machines[mn])
	}
	routes := make([]string, 0, len(s.Endpoints))
	for r := range s.Endpoints {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		ep := s.Endpoints[r]
		fmt.Fprintf(&b, "serve_requests_total{route=%q} %d\n", r, ep.Requests)
		fmt.Fprintf(&b, "serve_errors_total{route=%q} %d\n", r, ep.Errors)
		fmt.Fprintf(&b, "serve_in_flight{route=%q} %d\n", r, ep.InFlight)
		l := ep.LatencyMs
		fmt.Fprintf(&b, "serve_latency_ms{route=%q,stat=\"mean\"} %g\n", r, l.MeanMs)
		fmt.Fprintf(&b, "serve_latency_ms{route=%q,stat=\"p50\"} %g\n", r, l.P50Ms)
		fmt.Fprintf(&b, "serve_latency_ms{route=%q,stat=\"p90\"} %g\n", r, l.P90Ms)
		fmt.Fprintf(&b, "serve_latency_ms{route=%q,stat=\"p99\"} %g\n", r, l.P99Ms)
		fmt.Fprintf(&b, "serve_latency_ms{route=%q,stat=\"max\"} %g\n", r, l.MaxMs)
	}
	fmt.Fprintf(&b, "serve_cache_enabled %d\n", boolToInt(s.Cache.Enabled))
	fmt.Fprintf(&b, "serve_cache_size %d\n", s.Cache.Size)
	fmt.Fprintf(&b, "serve_cache_cap %d\n", s.Cache.Cap)
	fmt.Fprintf(&b, "serve_cache_hits_total %d\n", s.Cache.Hits)
	fmt.Fprintf(&b, "serve_cache_misses_total %d\n", s.Cache.Misses)
	fmt.Fprintf(&b, "serve_cache_hit_rate %g\n", s.Cache.HitRate)
	fmt.Fprintf(&b, "serve_stream_sessions %d\n", s.Streams.Sessions)
	fmt.Fprintf(&b, "serve_stream_depth %d\n", s.Streams.Depth)
	fmt.Fprintf(&b, "serve_stream_accepted_total %d\n", s.Streams.Accepted)
	fmt.Fprintf(&b, "serve_stream_scored_total %d\n", s.Streams.Scored)
	fmt.Fprintf(&b, "serve_stream_invalid_total %d\n", s.Streams.Invalid)
	fmt.Fprintf(&b, "serve_stream_dropped_total %d\n", s.Streams.Dropped)
	fmt.Fprintf(&b, "serve_stream_windows_total %d\n", s.Streams.Windows)
	fmt.Fprintf(&b, "serve_stream_phase_boundaries_total %d\n", s.Streams.PhaseBoundaries)
	fmt.Fprintf(&b, "serve_stream_drift_alarms_total %d\n", s.Streams.DriftAlarms)
	fmt.Fprintf(&b, "serve_stream_refute_sessions{verdict=\"consistent\"} %d\n", s.Streams.RefuteConsistent)
	fmt.Fprintf(&b, "serve_stream_refute_sessions{verdict=\"suspect\"} %d\n", s.Streams.RefuteSuspect)
	fmt.Fprintf(&b, "serve_stream_refute_sessions{verdict=\"refuted\"} %d\n", s.Streams.RefuteRefuted)
	fmt.Fprintf(&b, "serve_stream_refute_violations_total %d\n", s.Streams.RefuteViolations)
	// Per-relation violation counters, relation names sorted so the
	// exposition stays deterministic.
	relations := make([]string, 0, len(s.Streams.RelationViolations))
	for rel := range s.Streams.RelationViolations {
		relations = append(relations, rel)
	}
	sort.Strings(relations)
	for _, rel := range relations {
		fmt.Fprintf(&b, "serve_stream_refute_relation_violations_total{relation=%q} %d\n",
			rel, s.Streams.RelationViolations[rel])
	}
	fmt.Fprintf(&b, "serve_stream_session_hits_total %d\n", s.Streams.Hits)
	fmt.Fprintf(&b, "serve_stream_session_misses_total %d\n", s.Streams.Misses)
	fmt.Fprintf(&b, "serve_stream_session_evictions_total %d\n", s.Streams.Evictions)
	// Per-shard counters of the session table, in shard order: the
	// exposition stays deterministic because the stripe count and the
	// key→shard hash are both fixed.
	for i, sh := range s.Streams.Shards {
		fmt.Fprintf(&b, "serve_stream_shard_sessions{shard=\"%d\"} %d\n", i, sh.Size)
		fmt.Fprintf(&b, "serve_stream_shard_hits_total{shard=\"%d\"} %d\n", i, sh.Hits)
		fmt.Fprintf(&b, "serve_stream_shard_misses_total{shard=\"%d\"} %d\n", i, sh.Misses)
		fmt.Fprintf(&b, "serve_stream_shard_evictions_total{shard=\"%d\"} %d\n", i, sh.Evictions)
	}
	return b.Bytes()
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}
