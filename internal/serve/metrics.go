package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Observability counters for the prediction service, expvar-style: plain
// in-process counters and fixed-bucket latency histograms, rendered as
// one JSON document at GET /metrics. No external metrics dependency; the
// histograms give the latency quantiles a scrape would want (p50/p90/p99)
// at a few hundred bytes of state per endpoint.

// latencyBucketsMs are the histogram upper bounds in milliseconds,
// log-spaced from 10µs to 10s. Samples above the last bound land in a
// +Inf overflow bucket.
var latencyBucketsMs = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// histogram is a fixed-bucket latency histogram. It is small enough to
// lock per observation without showing up next to request handling.
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // len(latencyBucketsMs)+1, last is overflow
	total  uint64
	sumMs  float64
	maxMs  float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBucketsMs)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(latencyBucketsMs, ms)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sumMs += ms
	if ms > h.maxMs {
		h.maxMs = ms
	}
	h.mu.Unlock()
}

// quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q-th observation — an overestimate by at most
// one bucket width, which is what fixed buckets buy.
func (h *histogram) snapshot() latencySnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := latencySnapshot{MaxMs: h.maxMs}
	if h.total == 0 {
		return s
	}
	s.MeanMs = h.sumMs / float64(h.total)
	quantile := func(q float64) float64 {
		rank := uint64(q * float64(h.total))
		if rank < 1 {
			rank = 1
		}
		var cum uint64
		for i, c := range h.counts {
			cum += c
			if cum >= rank {
				if i < len(latencyBucketsMs) {
					return latencyBucketsMs[i]
				}
				return h.maxMs
			}
		}
		return h.maxMs
	}
	s.P50Ms = quantile(0.50)
	s.P90Ms = quantile(0.90)
	s.P99Ms = quantile(0.99)
	return s
}

type latencySnapshot struct {
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// endpointMetrics tracks one route.
type endpointMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	inFlight atomic.Int64
	latency  *histogram
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{latency: newHistogram()}
}

type endpointSnapshot struct {
	Requests  uint64          `json:"requests"`
	Errors    uint64          `json:"errors"`
	InFlight  int64           `json:"in_flight"`
	LatencyMs latencySnapshot `json:"latency_ms"`
}

// metricsRegistry holds every endpoint's counters plus service-level
// gauges. Endpoints are registered up front, so reads are lock-free map
// lookups.
type metricsRegistry struct {
	start     time.Time
	endpoints map[string]*endpointMetrics
	cache     *PredictionCache // nil when caching is disabled
	models    func() int
	streams   *streamSessions // nil when the server has no stream surface
}

func newMetricsRegistry(routes []string, cache *PredictionCache, models func() int, streams *streamSessions) *metricsRegistry {
	m := &metricsRegistry{
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics, len(routes)),
		cache:     cache,
		models:    models,
		streams:   streams,
	}
	for _, r := range routes {
		m.endpoints[r] = newEndpointMetrics()
	}
	return m
}

type cacheSnapshot struct {
	Enabled bool    `json:"enabled"`
	Size    int     `json:"size"`
	Cap     int     `json:"cap"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type metricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Models        int                         `json:"models"`
	Endpoints     map[string]endpointSnapshot `json:"endpoints"`
	Cache         cacheSnapshot               `json:"cache"`
	Streams       streamsSnapshot             `json:"streams"`
}

func (m *metricsRegistry) snapshot() metricsSnapshot {
	s := metricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Models:        m.models(),
		Endpoints:     make(map[string]endpointSnapshot, len(m.endpoints)),
	}
	for route, em := range m.endpoints {
		s.Endpoints[route] = endpointSnapshot{
			Requests:  em.requests.Load(),
			Errors:    em.errors.Load(),
			InFlight:  em.inFlight.Load(),
			LatencyMs: em.latency.snapshot(),
		}
	}
	if m.cache != nil {
		hits, misses, size := m.cache.Stats()
		s.Cache = cacheSnapshot{Enabled: true, Size: size, Cap: m.cache.Cap(), Hits: hits, Misses: misses}
		if total := hits + misses; total > 0 {
			s.Cache.HitRate = float64(hits) / float64(total)
		}
	}
	if m.streams != nil {
		s.Streams = m.streams.snapshot()
	}
	return s
}
