package serve

// Conformance properties for the HTTP layer: the prediction cache and
// the worker pool must be semantically invisible (byte-identical
// responses), and /v1/stream must not care how a trace is chunked
// across requests. These run against randomized request mixes rather
// than the fixture-driven cases in serve_test.go.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/proptest"
)

// genRows builds a pool of prediction inputs, mostly in-distribution
// with the occasional out-of-range value. A small pool means the
// randomized request mix repeats rows, so a caching server actually
// exercises its hit path.
func genRows(r *proptest.Rand, n int) [][4]float64 {
	rows := make([][4]float64, n)
	for i := range rows {
		rows[i] = [4]float64{0, r.Range(0, 0.02), r.Range(0, 0.005), r.Range(0, 0.001)}
		if r.Bool(0.1) {
			rows[i][1+r.Intn(3)] = r.Range(-0.005, 0.05)
		}
	}
	return rows
}

func rowJSON(row [4]float64) string {
	return fmt.Sprintf("[%g,%g,%g,%g]", row[0], row[1], row[2], row[3])
}

type apiRequest struct{ path, body string }

// genRequests produces a randomized mix of single-row, batch,
// named-event and classify requests with plenty of repeats.
func genRequests(r *proptest.Rand, rows [][4]float64, n int) []apiRequest {
	reqs := make([]apiRequest, n)
	for i := range reqs {
		row := rows[r.Intn(len(rows))]
		switch r.Intn(4) {
		case 0:
			body := fmt.Sprintf(`{"model":"cpi","row":%s`, rowJSON(row))
			if r.Coin() {
				body += `,"contributions":true`
			}
			reqs[i] = apiRequest{"/v1/predict", body + "}"}
		case 1:
			parts := make([]string, r.IntBetween(1, 6))
			for j := range parts {
				parts[j] = rowJSON(rows[r.Intn(len(rows))])
			}
			reqs[i] = apiRequest{"/v1/predict",
				fmt.Sprintf(`{"model":"cpi","rows":[%s]}`, strings.Join(parts, ","))}
		case 2:
			reqs[i] = apiRequest{"/v1/predict",
				fmt.Sprintf(`{"model":"cpi","events":[{"L1IM":%g,"L2M":%g,"DtlbLdM":%g}]}`,
					row[1], row[2], row[3])}
		default:
			reqs[i] = apiRequest{"/v1/classify",
				fmt.Sprintf(`{"model":"cpi","row":%s}`, rowJSON(row))}
		}
	}
	return reqs
}

// TestCacheTransparency: a caching server and an uncached one answer an
// identical randomized request sequence with byte-identical responses —
// the cache is a pure optimization. The /metrics probe at the end
// proves the cache actually engaged, so the equality is not vacuous.
func TestCacheTransparency(t *testing.T) {
	cfgOn := DefaultConfig()
	cfgOn.CacheSize = 1024
	cfgOff := DefaultConfig()
	cfgOff.CacheSize = 0
	sOn, _, _ := newTestServer(t, cfgOn)
	sOff, _, _ := newTestServer(t, cfgOff)
	hOn, hOff := sOn.Handler(), sOff.Handler()

	proptest.Run(t, "cache-transparent", 6, func(t *testing.T, r *proptest.Rand) {
		rows := genRows(r, r.IntBetween(3, 10))
		for i, req := range genRequests(r, rows, 40) {
			a := post(hOn, req.path, req.body)
			b := post(hOff, req.path, req.body)
			if a.Code != b.Code {
				t.Fatalf("request %d (%s %s): status %d cached vs %d uncached",
					i, req.path, req.body, a.Code, b.Code)
			}
			if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
				t.Fatalf("request %d (%s %s): cached response %s differs from uncached %s",
					i, req.path, req.body, a.Body, b.Body)
			}
		}
	})

	var snap struct {
		Cache cacheSnapshot `json:"cache"`
	}
	if err := json.Unmarshal(get(hOn, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Cache.Enabled || snap.Cache.Hits == 0 {
		t.Fatalf("cache never engaged (enabled %v, hits %d): the transparency "+
			"property tested nothing", snap.Cache.Enabled, snap.Cache.Hits)
	}
}

// TestBatchMatchesSingles: one batch request returns exactly the
// predictions of per-row single requests, at any Jobs setting, and the
// full response bodies are byte-identical between -jobs 1 and -jobs 8.
// Each prediction also matches a direct serial tree.Predict.
func TestBatchMatchesSingles(t *testing.T) {
	newServer := func(jobs int) http.Handler {
		cfg := DefaultConfig()
		cfg.Jobs = jobs
		cfg.CacheSize = 0
		s, _, _ := newTestServer(t, cfg)
		return s.Handler()
	}
	h1, h8 := newServer(1), newServer(8)
	_, tree, _ := newTestServer(t, DefaultConfig())

	proptest.Run(t, "batch-vs-singles", 6, func(t *testing.T, r *proptest.Rand) {
		rows := genRows(r, r.IntBetween(2, 24))
		parts := make([]string, len(rows))
		for i, row := range rows {
			parts[i] = rowJSON(row)
		}
		body := fmt.Sprintf(`{"model":"cpi","rows":[%s]}`, strings.Join(parts, ","))

		rec1 := post(h1, "/v1/predict", body)
		rec8 := post(h8, "/v1/predict", body)
		if rec1.Code != http.StatusOK || rec8.Code != http.StatusOK {
			t.Fatalf("batch status %d / %d: %s", rec1.Code, rec8.Code, rec1.Body)
		}
		if !bytes.Equal(rec1.Body.Bytes(), rec8.Body.Bytes()) {
			t.Fatal("batch response differs between -jobs 1 and -jobs 8")
		}
		var batch struct {
			Predictions []float64 `json:"predictions"`
		}
		if err := json.Unmarshal(rec1.Body.Bytes(), &batch); err != nil {
			t.Fatal(err)
		}
		if len(batch.Predictions) != len(rows) {
			t.Fatalf("%d predictions for %d rows", len(batch.Predictions), len(rows))
		}
		for i, row := range rows {
			rec := post(h8, "/v1/predict",
				fmt.Sprintf(`{"model":"cpi","row":%s}`, rowJSON(row)))
			if rec.Code != http.StatusOK {
				t.Fatalf("single %d: status %d: %s", i, rec.Code, rec.Body)
			}
			var single struct {
				Predictions []float64 `json:"predictions"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &single); err != nil {
				t.Fatal(err)
			}
			if single.Predictions[0] != batch.Predictions[i] {
				t.Fatalf("row %d: single %v != batch %v", i, single.Predictions[0], batch.Predictions[i])
			}
			want := tree.Predict(dataset.Instance{row[0], row[1], row[2], row[3]})
			if batch.Predictions[i] != want {
				t.Fatalf("row %d: served %v != serial Predict %v", i, batch.Predictions[i], want)
			}
		}
	})
}

// TestStreamChunkingInvariance: a trace posted to /v1/stream in one
// request and the same trace split at random line boundaries across
// several requests produce the same event lines (summary lines are
// per-request bookkeeping and excluded) and the same final stats.
func TestStreamChunkingInvariance(t *testing.T) {
	nonSummary := func(ndjson []byte) []string {
		var out []string
		for _, line := range strings.Split(strings.TrimSuffix(string(ndjson), "\n"), "\n") {
			var ev struct {
				Type string `json:"type"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("bad event line %q: %v", line, err)
			}
			if ev.Type != "summary" {
				out = append(out, line)
			}
		}
		return out
	}

	proptest.Run(t, "stream-chunking", 5, func(t *testing.T, r *proptest.Rand) {
		total := r.IntBetween(40, 120)
		trace := streamTrace(total, total/2, 3*total/4, r.Range(0, 0.6), r.Int63())
		lines := strings.SplitAfter(strings.TrimSuffix(trace, "\n"), "\n")

		run := func(chunks []string) ([]string, []byte) {
			s, _, _ := newTestServer(t, streamConfig(0))
			h := s.Handler()
			var body bytes.Buffer
			for _, chunk := range chunks {
				rec := postNDJSON(h, "/v1/stream?model=cpi", chunk)
				if rec.Code != http.StatusOK {
					t.Fatalf("stream status %d: %s", rec.Code, rec.Body)
				}
				body.Write(rec.Body.Bytes())
			}
			return nonSummary(body.Bytes()), get(h, "/v1/metrics.json").Body.Bytes()
		}

		var chunks []string
		for rest := lines; len(rest) > 0; {
			n := r.IntBetween(1, len(rest))
			chunks = append(chunks, strings.Join(rest[:n], ""))
			rest = rest[n:]
		}

		whole, wholeMetrics := run([]string{trace})
		split, splitMetrics := run(chunks)
		if len(whole) != len(split) {
			t.Fatalf("%d event lines whole vs %d split across %d requests",
				len(whole), len(split), len(chunks))
		}
		for i := range whole {
			if whole[i] != split[i] {
				t.Fatalf("event %d differs:\nwhole: %s\nsplit: %s", i, whole[i], split[i])
			}
		}

		var a, b struct {
			Streams streamsSnapshot `json:"streams"`
		}
		if err := json.Unmarshal(wholeMetrics, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(splitMetrics, &b); err != nil {
			t.Fatal(err)
		}
		if a.Streams.Scored != b.Streams.Scored ||
			a.Streams.PhaseBoundaries != b.Streams.PhaseBoundaries ||
			a.Streams.DriftAlarms != b.Streams.DriftAlarms {
			t.Fatalf("monitor stats diverge: whole %+v vs split %+v", a.Streams, b.Streams)
		}
	})
}
