package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/modelio"
)

// Registry is the named, versioned model store behind the service. Every
// entry holds a model.Model — a single M5' tree or a bagged ensemble —
// under a (name, version) pair; requests address models as "name" (latest
// registered version) or "name@version".
type Registry struct {
	mu      sync.RWMutex
	entries map[string]map[string]*Entry // name -> version -> entry
	latest  map[string]string            // name -> most recently registered version
}

// Entry is one registered model.
type Entry struct {
	Name    string
	Version string
	// Path is the source file, empty for models registered in-process.
	Path  string
	Model model.Model
	// Format is the source file's on-disk format (modelio.FormatJSON or
	// modelio.FormatBinary), empty for models registered in-process.
	Format string
}

// Ref is the entry's canonical reference, "name@version".
func (e *Entry) Ref() string { return e.Name + "@" + e.Version }

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: map[string]map[string]*Entry{},
		latest:  map[string]string{},
	}
}

// Register adds a model under (name, version). Re-registering an existing
// (name, version) is an error — versions are immutable once served; ship
// a new version instead.
//
// Compilable models (the pointer-linked tree and ensemble) are compiled
// to their flat-array evaluators here, so the serving hot path always
// runs the compiled form no matter which format the model arrived in;
// binary files load pre-compiled and models that cannot compile are
// served as-is. Compilation never changes a response: compiled
// predictions, contributions and classifications are bit-identical to
// the original's.
func (r *Registry) Register(name, version string, m model.Model, path string) error {
	if name == "" || strings.ContainsAny(name, "@ \t\n") {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	if version == "" || strings.ContainsAny(version, "@ \t\n") {
		return fmt.Errorf("serve: invalid model version %q", version)
	}
	if m == nil {
		return fmt.Errorf("serve: nil model for %s@%s", name, version)
	}
	if c, ok := m.(model.Compilable); ok {
		if cm := c.CompileModel(); cm != nil {
			m = cm
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.entries[name]
	if vs == nil {
		vs = map[string]*Entry{}
		r.entries[name] = vs
	}
	if _, dup := vs[version]; dup {
		return fmt.Errorf("serve: model %s@%s already registered", name, version)
	}
	vs[version] = &Entry{Name: name, Version: version, Path: path, Model: m}
	r.latest[name] = version
	return nil
}

// LoadFile loads a persisted model (tree or ensemble) and registers it,
// recording the file's format for the /v1/models/{ref} detail view.
func (r *Registry) LoadFile(name, version, path string) error {
	m, err := modelio.LoadFile(path)
	if err != nil {
		return err
	}
	format, err := modelio.SniffFile(path)
	if err != nil {
		return err
	}
	if err := r.Register(name, version, m, path); err != nil {
		return err
	}
	r.mu.Lock()
	r.entries[name][version].Format = format
	r.mu.Unlock()
	return nil
}

// Get resolves a reference: "name" (latest registered version) or
// "name@version".
func (r *Registry) Get(ref string) (*Entry, error) {
	name, version, pinned := strings.Cut(ref, "@")
	r.mu.RLock()
	defer r.mu.RUnlock()
	vs := r.entries[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	if !pinned {
		version = r.latest[name]
	}
	e := vs[version]
	if e == nil {
		return nil, fmt.Errorf("serve: unknown version %q of model %q", version, name)
	}
	return e, nil
}

// Latest returns the most recently registered version of name, or ""
// if the name is unknown.
func (r *Registry) Latest(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.latest[name]
}

// Versions returns every registered version of name, sorted.
func (r *Registry) Versions(name string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries[name]))
	for v := range r.entries[name] {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered (name, version) entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, vs := range r.entries {
		n += len(vs)
	}
	return n
}

// ModelsByMachine counts the registered entries per machine provenance
// tag (model.Description.Machine); untagged models are counted under "".
func (r *Registry) ModelsByMachine() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := map[string]int{}
	for _, vs := range r.entries {
		for _, e := range vs {
			out[e.Model.Describe().Machine]++
		}
	}
	return out
}

// EntryInfo is the listing view of one entry, as served by GET /v1/models.
type EntryInfo struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	Latest  bool   `json:"latest"`
	Path    string `json:"path,omitempty"`
	model.Description
}

// List returns every entry's description, sorted by name then version,
// so the listing (and anything diffing it) is deterministic.
func (r *Registry) List() []EntryInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]EntryInfo, 0, 8)
	for name, vs := range r.entries {
		for version, e := range vs {
			out = append(out, EntryInfo{
				Name:        name,
				Version:     version,
				Latest:      r.latest[name] == version,
				Path:        e.Path,
				Description: e.Model.Describe(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}
