package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ensemble"
	"repro/internal/model"
	"repro/internal/mtree"
)

// BenchmarkServePredict measures the full request path — JSON decode,
// registry lookup, prediction, JSON encode — for a 64-row batch, with the
// LRU cache cold-off and warm-on. A single small tree predicts in a few
// hundred nanoseconds, so for it the cache is overhead; the bagged
// ensemble shows where a warm hit pays: it skips all member predictions.
func BenchmarkServePredict(b *testing.B) {
	d := perfData(2000, 17)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 60
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ecfg := ensemble.DefaultConfig()
	ecfg.Trees = 10
	ecfg.Tree = cfg
	bag, err := ensemble.Train(d, ecfg)
	if err != nil {
		b.Fatal(err)
	}

	body := fmt.Sprintf(`{"model":"cpi","rows":%s}`, rowsJSON(d, 0, 64))

	run := func(b *testing.B, m model.Model, scfg Config) {
		reg := NewRegistry()
		if err := reg.Register("cpi", "v1", m, ""); err != nil {
			b.Fatal(err)
		}
		h := New(reg, scfg).Handler()
		// One warm-up request fills the cache where enabled.
		if rec := post(h, "/v1/predict", body); rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := post(h, "/v1/predict", body)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	}

	serial := func(cache int) Config {
		return Config{Jobs: 1, CacheSize: cache, MaxBodyBytes: 1 << 22, MaxBatch: 4096}
	}
	b.Run("tree-uncached", func(b *testing.B) { run(b, tree, serial(0)) })
	b.Run("tree-cached", func(b *testing.B) { run(b, tree, serial(4096)) })
	b.Run("ensemble-uncached", func(b *testing.B) { run(b, bag, serial(0)) })
	b.Run("ensemble-cached", func(b *testing.B) { run(b, bag, serial(4096)) })
	b.Run("ensemble-uncached-parallel", func(b *testing.B) {
		run(b, bag, Config{Jobs: 0, CacheSize: 0, MaxBodyBytes: 1 << 22, MaxBatch: 4096})
	})
}

// BenchmarkServePredictBatch measures the batch endpoint with the
// compiled batch kernel against the per-row fallback (a model wrapped
// so it hides Compilable/BatchPredictor), for a large batch where the
// kernel's amortization matters. Uncached, serial: the numbers isolate
// the prediction path, not the LRU or the worker fan-out.
func BenchmarkServePredictBatch(b *testing.B) {
	d := perfData(4000, 11)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 8
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ecfg := ensemble.DefaultConfig()
	ecfg.Trees = 10
	ecfg.Tree = cfg
	bag, err := ensemble.Train(d, ecfg)
	if err != nil {
		b.Fatal(err)
	}

	body := fmt.Sprintf(`{"model":"cpi","rows":%s}`, rowsJSON(d, 0, 256))
	scfg := Config{Jobs: 1, CacheSize: 0, MaxBodyBytes: 1 << 22, MaxBatch: 4096}

	run := func(b *testing.B, m model.Model) {
		reg := NewRegistry()
		if err := reg.Register("cpi", "v1", m, ""); err != nil {
			b.Fatal(err)
		}
		h := New(reg, scfg).Handler()
		if rec := post(h, "/v1/predict", body); rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := post(h, "/v1/predict", body)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
		b.ReportMetric(float64(b.N*256)/b.Elapsed().Seconds(), "rows/s")
	}

	b.Run("tree-kernel", func(b *testing.B) { run(b, tree) })
	b.Run("tree-fallback", func(b *testing.B) { run(b, plainModel{tree}) })
	b.Run("ensemble-kernel", func(b *testing.B) { run(b, bag) })
	b.Run("ensemble-fallback", func(b *testing.B) { run(b, plainModel{bag}) })
}

// BenchmarkServeConcurrentPredict measures the request path under
// concurrent clients (run with -cpu 1,4,8 to see core scaling): every
// goroutine posts single-row predictions against the same model, so
// the cache shards, the atomic histogram and the endpoint counters are
// all on the contended path. Jobs=1 keeps each request serial — the
// parallelism under test is request concurrency, not batch fan-out.
func BenchmarkServeConcurrentPredict(b *testing.B) {
	d := perfData(2000, 17)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 60
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register("cpi", "v1", tree, ""); err != nil {
		b.Fatal(err)
	}
	scfg := DefaultConfig()
	scfg.Jobs = 1
	scfg.RequestTimeout = 0
	h := New(reg, scfg).Handler()

	bodies := make([]string, 64)
	for i := range bodies {
		row, _ := json.Marshal(d.Row(i))
		bodies[i] = fmt.Sprintf(`{"model":"cpi","row":%s}`, row)
	}
	if rec := post(h, "/v1/predict", bodies[0]); rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rec := post(h, "/v1/predict", bodies[i&63])
			i++
			if rec.Code != http.StatusOK {
				b.Errorf("status %d", rec.Code)
				return
			}
		}
	})
}

// BenchmarkServeConcurrentStream measures /v1/stream under concurrent
// producers of the SAME model, each on its own session (run with
// -cpu 1,4,8). Before sessions were sharded this serialized on the
// model's one session lock — held across the response write — so the
// benchmark pins the scaling the shard table buys.
func BenchmarkServeConcurrentStream(b *testing.B) {
	d := perfData(2000, 17)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 60
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register("cpi", "v1", tree, ""); err != nil {
		b.Fatal(err)
	}
	scfg := DefaultConfig()
	scfg.Jobs = 1
	scfg.Stream.Window = 16
	h := New(reg, scfg).Handler()

	// Pre-render the trace as 16-line request chunks.
	const chunkLines = 16
	lines := strings.Split(strings.TrimSuffix(streamTrace(256, 128, 1000, 0, 9), "\n"), "\n")
	var chunks []string
	for i := 0; i+chunkLines <= len(lines); i += chunkLines {
		chunks = append(chunks, strings.Join(lines[i:i+chunkLines], "\n")+"\n")
	}

	var sid atomic.Uint64
	b.ReportAllocs()
	b.SetBytes(int64(len(chunks[0])))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		path := fmt.Sprintf("/v1/stream?model=cpi&session=g%d", sid.Add(1))
		i := 0
		for pb.Next() {
			rec := postNDJSON(h, path, chunks[i%len(chunks)])
			i++
			if rec.Code != http.StatusOK {
				b.Errorf("status %d: %s", rec.Code, rec.Body)
				return
			}
		}
	})
}

// BenchmarkPredictionCache isolates the cache itself.
func BenchmarkPredictionCache(b *testing.B) {
	c := NewPredictionCache(1024)
	d := perfData(256, 23)
	keys := make([]string, d.Len())
	for i := range keys {
		keys[i] = CacheKey("cpi@v1", d.Row(i), 0)
		c.Put(keys[i], float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}
