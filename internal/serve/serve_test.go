package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/mtree"
)

// perfData builds a small CPI-like dataset: two event-rate features with
// a piecewise-linear target, enough for a tree with several leaves.
func perfData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "CPI"}, {Name: "L1IM"}, {Name: "L2M"}, {Name: "DtlbLdM"},
	}, 0)
	for i := 0; i < n; i++ {
		l1 := rng.Float64() * 0.02
		l2 := rng.Float64() * 0.005
		dt := rng.Float64() * 0.001
		y := 0.6 + 7*l1 + 0.02*rng.NormFloat64()
		if l2 > 0.002 {
			y = 1.1 + 90*l2 + 40*dt + 0.02*rng.NormFloat64()
		}
		d.MustAppend(dataset.Instance{y, l1, l2, dt})
	}
	return d
}

func buildTree(t *testing.T, d *dataset.Dataset) *mtree.Tree {
	t.Helper()
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 60
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// newTestServer registers a tree as cpi@v1 and returns the server plus
// the tree and dataset behind it.
func newTestServer(t *testing.T, cfg Config) (*Server, *mtree.Tree, *dataset.Dataset) {
	t.Helper()
	d := perfData(1200, 5)
	tree := buildTree(t, d)
	reg := NewRegistry()
	if err := reg.Register("cpi", "v1", tree, ""); err != nil {
		t.Fatal(err)
	}
	return New(reg, cfg), tree, d
}

// post runs one POST through the handler and returns the recorder.
func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func rowsJSON(d *dataset.Dataset, from, to int) string {
	var b bytes.Buffer
	b.WriteString("[")
	for i := from; i < to; i++ {
		if i > from {
			b.WriteString(",")
		}
		rb, _ := json.Marshal(d.Row(i))
		b.Write(rb)
	}
	b.WriteString("]")
	return b.String()
}

func TestPredictSingleRow(t *testing.T) {
	s, tree, d := newTestServer(t, DefaultConfig())
	h := s.Handler()
	row, _ := json.Marshal(d.Row(3))
	rec := post(h, "/v1/predict", fmt.Sprintf(`{"model":"cpi","row":%s}`, row))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Model       string    `json:"model"`
		N           int       `json:"n"`
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != "cpi@v1" || resp.N != 1 || len(resp.Predictions) != 1 {
		t.Fatalf("unexpected response: %s", rec.Body)
	}
	if want := tree.Predict(d.Row(3)); resp.Predictions[0] != want {
		t.Errorf("served %v, serial Predict %v", resp.Predictions[0], want)
	}
}

func TestPredictNamedEvents(t *testing.T) {
	s, tree, d := newTestServer(t, DefaultConfig())
	h := s.Handler()
	r := d.Row(7)
	body := fmt.Sprintf(`{"model":"cpi","events":[{"L1IM":%g,"L2M":%g,"DtlbLdM":%g}]}`, r[1], r[2], r[3])
	rec := post(h, "/v1/predict", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// The expanded instance has target=0, which Predict never reads.
	expanded := dataset.Instance{0, r[1], r[2], r[3]}
	if want := tree.Predict(expanded); resp.Predictions[0] != want {
		t.Errorf("served %v, want %v", resp.Predictions[0], want)
	}

	rec = post(h, "/v1/predict", `{"model":"cpi","events":[{"NoSuchEvent":1}]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown event name: status %d, want 400", rec.Code)
	}
}

// TestBatchDeterminism is the acceptance check: batch responses must be
// byte-identical to serial Tree.Predict at any worker count, cache on or
// off, warm or cold.
func TestBatchDeterminism(t *testing.T) {
	d := perfData(1200, 5)
	tree := buildTree(t, d)
	body := fmt.Sprintf(`{"model":"cpi","rows":%s}`, rowsJSON(d, 0, 400))

	var bodies [][]byte
	for _, cfg := range []Config{
		{Jobs: 1, CacheSize: 0, MaxBodyBytes: 1 << 22, MaxBatch: 4096},
		{Jobs: 8, CacheSize: 0, MaxBodyBytes: 1 << 22, MaxBatch: 4096},
		{Jobs: 8, CacheSize: 1024, MaxBodyBytes: 1 << 22, MaxBatch: 4096},
	} {
		reg := NewRegistry()
		if err := reg.Register("cpi", "v1", tree, ""); err != nil {
			t.Fatal(err)
		}
		h := New(reg, cfg).Handler()
		// Twice per config: the second pass hits a warm cache where enabled.
		for pass := 0; pass < 2; pass++ {
			rec := post(h, "/v1/predict", body)
			if rec.Code != http.StatusOK {
				t.Fatalf("cfg %+v pass %d: status %d: %s", cfg, pass, rec.Code, rec.Body)
			}
			bodies = append(bodies, rec.Body.Bytes())
		}
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}

	var resp struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 400 {
		t.Fatalf("%d predictions, want 400", len(resp.Predictions))
	}
	for i, p := range resp.Predictions {
		if want := tree.Predict(d.Row(i)); p != want {
			t.Fatalf("row %d: served %v, serial Predict %v", i, p, want)
		}
	}
}

func TestPredictContributions(t *testing.T) {
	s, tree, d := newTestServer(t, DefaultConfig())
	h := s.Handler()
	row, _ := json.Marshal(d.Row(11))
	rec := post(h, "/v1/predict", fmt.Sprintf(`{"model":"cpi","row":%s,"contributions":true}`, row))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Contributions [][]struct {
			Name     string  `json:"name"`
			Cycles   float64 `json:"cycles"`
			Fraction float64 `json:"fraction"`
		} `json:"contributions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Contributions) != 1 {
		t.Fatalf("contribution sets: %d, want 1", len(resp.Contributions))
	}
	want := tree.Contributions(d.Row(11))
	if len(resp.Contributions[0]) != len(want) {
		t.Fatalf("contribution terms: %d, want %d", len(resp.Contributions[0]), len(want))
	}
	for i, c := range resp.Contributions[0] {
		if c.Name != want[i].Name || c.Cycles != want[i].Cycles {
			t.Errorf("term %d: %+v, want %+v", i, c, want[i])
		}
	}
}

func TestPredictErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatch = 8
	cfg.MaxBodyBytes = 1 << 14
	s, _, d := newTestServer(t, cfg)
	h := s.Handler()

	cases := []struct {
		name, path, body string
		want             int
		code             string
	}{
		{"malformed JSON", "/v1/predict", `{"model":`, http.StatusBadRequest, ErrCodeBadRequest},
		{"unknown field", "/v1/predict", `{"model":"cpi","bogus":1}`, http.StatusBadRequest, ErrCodeBadRequest},
		{"missing model", "/v1/predict", `{"row":[0,0,0,0]}`, http.StatusBadRequest, ErrCodeBadRequest},
		{"unknown model", "/v1/predict", `{"model":"nope","row":[0,0,0,0]}`, http.StatusNotFound, ErrCodeNotFound},
		{"unknown version", "/v1/predict", `{"model":"cpi@v9","row":[0,0,0,0]}`, http.StatusNotFound, ErrCodeNotFound},
		{"no instances", "/v1/predict", `{"model":"cpi"}`, http.StatusBadRequest, ErrCodeBadRequest},
		{"empty rows", "/v1/predict", `{"model":"cpi","rows":[]}`, http.StatusBadRequest, ErrCodeBadRequest},
		{"two forms", "/v1/predict", `{"model":"cpi","row":[0,0,0,0],"rows":[[0,0,0,0]]}`, http.StatusBadRequest, ErrCodeBadRequest},
		{"bad width", "/v1/predict", `{"model":"cpi","row":[1,2]}`, http.StatusBadRequest, ErrCodeBadRequest},
		{"oversized batch", "/v1/predict", fmt.Sprintf(`{"model":"cpi","rows":%s}`, rowsJSON(d, 0, 9)), http.StatusRequestEntityTooLarge, ErrCodeTooLarge},
	}
	for _, tc := range cases {
		rec := post(h, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil ||
			env.Error.Code != tc.code || env.Error.Message == "" {
			t.Errorf("%s: bad error envelope (want code %q): %s", tc.name, tc.code, rec.Body)
		}
	}

	// Oversized body: a payload bigger than MaxBodyBytes.
	big := fmt.Sprintf(`{"model":"cpi","rows":%s}`, rowsJSON(d, 0, 300))
	if len(big) <= int(cfg.MaxBodyBytes) {
		t.Fatalf("test payload too small to trip the limit")
	}
	if rec := post(h, "/v1/predict", big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", rec.Code)
	}

	// Wrong method.
	if rec := get(h, "/v1/predict"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict: status %d, want 405", rec.Code)
	}
}

func TestClassify(t *testing.T) {
	s, tree, d := newTestServer(t, DefaultConfig())
	h := s.Handler()
	rec := post(h, "/v1/classify", fmt.Sprintf(`{"model":"cpi","rows":%s}`, rowsJSON(d, 0, 5)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Classes []struct {
			LeafID int `json:"leaf_id"`
			Path   []struct {
				Event string  `json:"event"`
				Above bool    `json:"above"`
				Thr   float64 `json:"threshold"`
			} `json:"path"`
			Prediction float64 `json:"prediction"`
		} `json:"classes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Classes) != 5 {
		t.Fatalf("%d classes, want 5", len(resp.Classes))
	}
	for i, c := range resp.Classes {
		leaf, path := tree.Classify(d.Row(i))
		if c.LeafID != leaf.LeafID {
			t.Errorf("row %d: leaf %d, want %d", i, c.LeafID, leaf.LeafID)
		}
		if len(c.Path) != len(path) {
			t.Errorf("row %d: path length %d, want %d", i, len(c.Path), len(path))
		}
		if want := leaf.Model.Predict(d.Row(i)); c.Prediction != want {
			t.Errorf("row %d: leaf prediction %v, want %v", i, c.Prediction, want)
		}
	}
}

func TestClassifyEnsembleUnsupported(t *testing.T) {
	d := perfData(800, 9)
	ecfg := ensemble.DefaultConfig()
	ecfg.Trees = 3
	ecfg.Tree.MinLeaf = 60
	bag, err := ensemble.Train(d, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register("bag", "v1", bag, ""); err != nil {
		t.Fatal(err)
	}
	h := New(reg, DefaultConfig()).Handler()

	row, _ := json.Marshal(d.Row(0))
	if rec := post(h, "/v1/classify", fmt.Sprintf(`{"model":"bag","row":%s}`, row)); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("ensemble classify: status %d, want 422", rec.Code)
	}
	// Prediction works fine through the same interface.
	rec := post(h, "/v1/predict", fmt.Sprintf(`{"model":"bag","row":%s}`, row))
	if rec.Code != http.StatusOK {
		t.Fatalf("ensemble predict: status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if want := bag.Predict(d.Row(0)); resp.Predictions[0] != want {
		t.Errorf("served %v, want %v", resp.Predictions[0], want)
	}
}

func TestModelsAndVersions(t *testing.T) {
	d := perfData(1200, 5)
	tree := buildTree(t, d)
	d2 := perfData(1200, 6)
	tree2 := buildTree(t, d2)
	reg := NewRegistry()
	if err := reg.Register("cpi", "v1", tree, ""); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("cpi", "v2", tree2, ""); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("cpi", "v2", tree2, ""); err == nil {
		t.Error("duplicate (name, version) accepted")
	}
	h := New(reg, DefaultConfig()).Handler()

	rec := get(h, "/v1/models")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var listing struct {
		Models []struct {
			Name    string `json:"name"`
			Version string `json:"version"`
			Latest  bool   `json:"latest"`
			Kind    string `json:"kind"`
			Leaves  int    `json:"num_leaves"`
		} `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Models) != 2 {
		t.Fatalf("%d models listed, want 2: %s", len(listing.Models), rec.Body)
	}
	if listing.Models[0].Version != "v1" || listing.Models[0].Latest {
		t.Errorf("v1 entry wrong: %+v", listing.Models[0])
	}
	if listing.Models[1].Version != "v2" || !listing.Models[1].Latest {
		t.Errorf("v2 entry wrong: %+v", listing.Models[1])
	}
	if listing.Models[0].Kind != "m5-model-tree" || listing.Models[0].Leaves < 1 {
		t.Errorf("description not populated: %+v", listing.Models[0])
	}

	// A bare name must resolve to the latest version.
	row, _ := json.Marshal(d.Row(0))
	rec = post(h, "/v1/predict", fmt.Sprintf(`{"model":"cpi","row":%s}`, row))
	var resp struct {
		Model       string    `json:"model"`
		Predictions []float64 `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != "cpi@v2" {
		t.Errorf("bare name resolved to %s, want cpi@v2", resp.Model)
	}
	if want := tree2.Predict(d.Row(0)); resp.Predictions[0] != want {
		t.Errorf("latest-version prediction %v, want %v", resp.Predictions[0], want)
	}
	// Pinned version still reachable.
	rec = post(h, "/v1/predict", fmt.Sprintf(`{"model":"cpi@v1","row":%s}`, row))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if want := tree.Predict(d.Row(0)); resp.Predictions[0] != want {
		t.Errorf("pinned-version prediction %v, want %v", resp.Predictions[0], want)
	}
}

func TestHealthz(t *testing.T) {
	s, _, _ := newTestServer(t, DefaultConfig())
	rec := get(s.Handler(), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Models != 1 {
		t.Errorf("healthz: %s", rec.Body)
	}
}

// TestMetricsEndpoint drives traffic (including a repeated request that
// must hit the cache) and checks the /v1/metrics.json report: request
// counts, error counts, latency quantiles, histogram buckets and the
// cache hit rate, plus the text rendering at /metrics.
func TestMetricsEndpoint(t *testing.T) {
	s, _, d := newTestServer(t, DefaultConfig())
	h := s.Handler()

	body := fmt.Sprintf(`{"model":"cpi","rows":%s}`, rowsJSON(d, 0, 50))
	for i := 0; i < 3; i++ { // passes 2 and 3 are pure cache hits
		if rec := post(h, "/v1/predict", body); rec.Code != http.StatusOK {
			t.Fatalf("predict pass %d: %d", i, rec.Code)
		}
	}
	post(h, "/v1/predict", `{"model":"ghost","row":[0,0,0,0]}`) // one 404

	rec := get(h, "/v1/metrics.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap struct {
		Models    int `json:"models"`
		Endpoints map[string]struct {
			Requests  uint64 `json:"requests"`
			Errors    uint64 `json:"errors"`
			InFlight  int64  `json:"in_flight"`
			LatencyMs struct {
				Count   uint64  `json:"count"`
				P50     float64 `json:"p50_ms"`
				P90     float64 `json:"p90_ms"`
				P99     float64 `json:"p99_ms"`
				Buckets []struct {
					LeMs  float64 `json:"le_ms"`
					Count uint64  `json:"count"`
				} `json:"buckets"`
			} `json:"latency_ms"`
		} `json:"endpoints"`
		Cache struct {
			Enabled bool    `json:"enabled"`
			Hits    uint64  `json:"hits"`
			Misses  uint64  `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	ep := snap.Endpoints["/v1/predict"]
	if ep.Requests != 4 {
		t.Errorf("predict requests = %d, want 4", ep.Requests)
	}
	if ep.Errors != 1 {
		t.Errorf("predict errors = %d, want 1", ep.Errors)
	}
	if ep.InFlight != 0 {
		t.Errorf("predict in_flight = %d, want 0", ep.InFlight)
	}
	if ep.LatencyMs.P50 <= 0 || ep.LatencyMs.P99 < ep.LatencyMs.P50 {
		t.Errorf("implausible latency quantiles: %+v", ep.LatencyMs)
	}
	if ep.LatencyMs.Count != 4 {
		t.Errorf("latency count = %d, want 4", ep.LatencyMs.Count)
	}
	if n := len(ep.LatencyMs.Buckets); n == 0 {
		t.Error("no histogram buckets in metrics.json")
	} else {
		last := ep.LatencyMs.Buckets[n-1]
		if last.Count > ep.LatencyMs.Count {
			t.Errorf("cumulative bucket count %d exceeds total %d", last.Count, ep.LatencyMs.Count)
		}
		for i := 1; i < n; i++ {
			if ep.LatencyMs.Buckets[i].Count < ep.LatencyMs.Buckets[i-1].Count {
				t.Fatalf("bucket counts not cumulative at %d: %+v", i, ep.LatencyMs.Buckets)
			}
		}
	}
	if !snap.Cache.Enabled {
		t.Fatal("cache not reported enabled")
	}
	if snap.Cache.Hits != 100 || snap.Cache.Misses != 50 {
		t.Errorf("cache hits/misses = %d/%d, want 100/50", snap.Cache.Hits, snap.Cache.Misses)
	}
	if snap.Cache.HitRate < 0.66 || snap.Cache.HitRate > 0.67 {
		t.Errorf("hit rate %v, want ~2/3", snap.Cache.HitRate)
	}
	if snap.Models != 1 {
		t.Errorf("models = %d, want 1", snap.Models)
	}
}

// TestMetricsText checks the flat text exposition at /metrics: plain
// text content type, deterministic `name{labels} value` lines carrying
// the same counters as /v1/metrics.json.
func TestMetricsText(t *testing.T) {
	s, _, d := newTestServer(t, DefaultConfig())
	h := s.Handler()
	row, _ := json.Marshal(d.Row(0))
	if rec := post(h, "/v1/predict", fmt.Sprintf(`{"model":"cpi","row":%s}`, row)); rec.Code != http.StatusOK {
		t.Fatalf("predict: %d", rec.Code)
	}
	rec := get(h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"serve_models 1\n",
		`serve_requests_total{route="/v1/predict"} 1` + "\n",
		`serve_errors_total{route="/v1/predict"} 0` + "\n",
		`serve_latency_ms{route="/v1/predict",stat="p50"} `,
		"serve_cache_enabled 1\n",
		"serve_stream_sessions 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q:\n%s", want, text)
		}
	}
}

// TestModelDetail checks GET /v1/models/{ref}: schema, evaluator kind,
// classifiability and the versions listing — the surface cmd/loadgen
// uses to shape payloads per model.
func TestModelDetail(t *testing.T) {
	d := perfData(1200, 5)
	tree := buildTree(t, d)
	reg := NewRegistry()
	if err := reg.Register("cpi", "v1", tree, ""); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("cpi", "v2", tree, ""); err != nil {
		t.Fatal(err)
	}
	h := New(reg, DefaultConfig()).Handler()

	var det struct {
		Name         string   `json:"name"`
		Version      string   `json:"version"`
		Latest       bool     `json:"latest"`
		Kind         string   `json:"kind"`
		Attrs        []string `json:"attrs"`
		Target       string   `json:"target"`
		Evaluator    string   `json:"evaluator"`
		BatchKernel  bool     `json:"batch_kernel"`
		Classifiable bool     `json:"classifiable"`
		Versions     []string `json:"versions"`
	}
	rec := get(h, "/v1/models/cpi")
	if rec.Code != http.StatusOK {
		t.Fatalf("detail status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &det); err != nil {
		t.Fatal(err)
	}
	if det.Name != "cpi" || det.Version != "v2" || !det.Latest {
		t.Errorf("bare name should resolve to latest: %s", rec.Body)
	}
	if det.Target != "CPI" || len(det.Attrs) != 4 {
		t.Errorf("schema not populated: %s", rec.Body)
	}
	// The registry compiles trees at registration, so the detail must
	// report the compiled evaluator with the batch kernel available.
	if det.Evaluator != "compiled" || !det.BatchKernel || !det.Classifiable {
		t.Errorf("evaluator detail wrong: %s", rec.Body)
	}
	if len(det.Versions) != 2 || det.Versions[0] != "v1" || det.Versions[1] != "v2" {
		t.Errorf("versions = %v, want [v1 v2]", det.Versions)
	}

	// A pinned reference resolves that exact version.
	rec = get(h, "/v1/models/cpi@v1")
	if rec.Code != http.StatusOK {
		t.Fatalf("pinned detail status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &det); err != nil {
		t.Fatal(err)
	}
	if det.Version != "v1" || det.Latest {
		t.Errorf("pinned detail wrong: %s", rec.Body)
	}

	// Unknown models 404 with the envelope.
	rec = get(h, "/v1/models/ghost")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown model detail status %d", rec.Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != ErrCodeNotFound {
		t.Errorf("bad 404 envelope: %s", rec.Body)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewPredictionCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Error("a lost")
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Error("c lost")
	}
}

func TestCacheKeyQuantization(t *testing.T) {
	r1 := dataset.Instance{0, 1.00000001, 2}
	r2 := dataset.Instance{0, 1.00000002, 2}
	if CacheKey("m", r1, 0) == CacheKey("m", r2, 0) {
		t.Error("exact keying collided for distinct inputs")
	}
	if CacheKey("m", r1, 1e-3) != CacheKey("m", r2, 1e-3) {
		t.Error("quantized keying failed to merge near-identical inputs")
	}
	if CacheKey("m1", r1, 0) == CacheKey("m2", r1, 0) {
		t.Error("different models share a key")
	}
}
