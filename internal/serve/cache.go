package serve

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/dataset"
)

// PredictionCache is a bounded LRU cache from (model ref, feature vector)
// to a predicted value. Tree prediction is already cheap — a handful of
// comparisons plus a dot product — but under heavy traffic the same
// sections recur (phases repeat, dashboards re-ask), and a hit skips the
// smoothing walk entirely.
//
// Keys are built by CacheKey from the bit patterns of the (optionally
// quantized) feature values, so with quantum 0 a hit is only possible for
// a bit-identical input and caching can never change a response. A
// positive quantum trades that guarantee for a higher hit rate by
// snapping each value to the nearest multiple before keying.
type PredictionCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recent
	items        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key string
	val float64
}

// NewPredictionCache creates a cache bounded to capacity entries.
// Capacity must be positive; callers disable caching by not constructing
// one (a nil *PredictionCache is inert).
func NewPredictionCache(capacity int) *PredictionCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PredictionCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get looks up a key, marking it most recently used on a hit. A nil
// cache always misses without counting.
func (c *PredictionCache) Get(key string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return 0, false
}

// Put inserts or refreshes a key, evicting the least recently used entry
// when full. A nil cache ignores the call.
func (c *PredictionCache) Put(key string, val float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Stats returns the hit/miss counters and the current size.
func (c *PredictionCache) Stats() (hits, misses uint64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// Cap returns the configured capacity.
func (c *PredictionCache) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Quantize snaps v to the nearest multiple of quantum; quantum <= 0
// returns v unchanged (exact keying).
func Quantize(v, quantum float64) float64 {
	if quantum <= 0 {
		return v
	}
	return math.Round(v/quantum) * quantum
}

// CacheKey builds the cache key for one instance under one model: the
// model reference, a NUL separator, then the 8-byte bit pattern of each
// (quantized) value. Bit patterns — not formatted decimals — keep the key
// exact, compact, and collision-free at quantum 0.
func CacheKey(modelRef string, row dataset.Instance, quantum float64) string {
	buf := make([]byte, 0, len(modelRef)+1+8*len(row))
	buf = append(buf, modelRef...)
	buf = append(buf, 0)
	var scratch [8]byte
	for _, v := range row {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(Quantize(v, quantum)))
		buf = append(buf, scratch[:]...)
	}
	return string(buf)
}
