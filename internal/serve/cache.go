package serve

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// PredictionCache is a bounded cache from (model ref, feature vector) to a
// predicted value with clock (second-chance) eviction. Tree prediction is
// already cheap — a handful of comparisons plus a dot product — so the hit
// path has to be cheaper still to be worth having: it takes a read lock,
// one map probe and two atomic operations, with no per-hit list surgery or
// allocation. Evictions approximate LRU: a clock hand sweeps the entry
// ring and reclaims the first entry not referenced since its last pass.
//
// Keys are built by AppendKey from the bit patterns of the (optionally
// quantized) feature values, so with quantum 0 a hit is only possible for
// a bit-identical input and caching can never change a response. A
// positive quantum trades that guarantee for a higher hit rate by
// snapping each value to the nearest multiple before keying.
type PredictionCache struct {
	mu           sync.RWMutex
	cap          int
	ring         []*cacheEntry // insertion ring the clock hand sweeps
	hand         int
	items        map[string]*cacheEntry
	hits, misses atomic.Uint64
}

type cacheEntry struct {
	key  string
	bits atomic.Uint64 // Float64bits of the cached prediction
	ref  atomic.Bool   // referenced since the hand last passed
}

// NewPredictionCache creates a cache bounded to capacity entries.
// Capacity must be positive; callers disable caching by not constructing
// one (a nil *PredictionCache is inert).
func NewPredictionCache(capacity int) *PredictionCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PredictionCache{
		cap:   capacity,
		ring:  make([]*cacheEntry, 0, capacity),
		items: make(map[string]*cacheEntry, capacity),
	}
}

// Get looks up a key, marking it recently used on a hit. A nil cache
// always misses without counting.
func (c *PredictionCache) Get(key string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.RLock()
	e, ok := c.items[key]
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return 0, false
	}
	e.ref.Store(true)
	c.hits.Add(1)
	return math.Float64frombits(e.bits.Load()), true
}

// GetBytes is Get for a key still sitting in its scratch buffer (see
// AppendKey). The string conversion happens inside the map index
// expression, which the compiler performs without copying, so a lookup
// allocates nothing.
func (c *PredictionCache) GetBytes(key []byte) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.RLock()
	e, ok := c.items[string(key)]
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return 0, false
	}
	e.ref.Store(true)
	c.hits.Add(1)
	return math.Float64frombits(e.bits.Load()), true
}

// Put inserts or refreshes a key, evicting an entry second-chance style
// when full. A nil cache ignores the call.
func (c *PredictionCache) Put(key string, val float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.bits.Store(math.Float64bits(val))
		e.ref.Store(true)
		return
	}
	c.insert(key, val)
}

// PutBytes is Put for a scratch-buffer key: the refresh path allocates
// nothing, and only a genuine insert copies the key into an owned string.
func (c *PredictionCache) PutBytes(key []byte, val float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[string(key)]; ok {
		e.bits.Store(math.Float64bits(val))
		e.ref.Store(true)
		return
	}
	c.insert(string(key), val)
}

// insert adds a new entry (caller holds the write lock and has ruled out
// a refresh), reclaiming a ring slot from the clock hand when full.
func (c *PredictionCache) insert(key string, val float64) {
	e := &cacheEntry{key: key}
	e.bits.Store(math.Float64bits(val))
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, e)
		c.items[key] = e
		return
	}
	// Second chance: skip (and strip the reference bit of) every entry
	// used since the hand last came by; evict the first one that was not.
	// Bounded: after one full sweep every bit is clear.
	for {
		v := c.ring[c.hand]
		if v.ref.Load() {
			v.ref.Store(false)
			c.hand = (c.hand + 1) % c.cap
			continue
		}
		delete(c.items, v.key)
		c.ring[c.hand] = e
		c.items[key] = e
		c.hand = (c.hand + 1) % c.cap
		return
	}
}

// Stats returns the hit/miss counters and the current size.
func (c *PredictionCache) Stats() (hits, misses uint64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.RLock()
	size = len(c.items)
	c.mu.RUnlock()
	return c.hits.Load(), c.misses.Load(), size
}

// Cap returns the configured capacity.
func (c *PredictionCache) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Quantize snaps v to the nearest multiple of quantum; quantum <= 0
// returns v unchanged (exact keying).
func Quantize(v, quantum float64) float64 {
	if quantum <= 0 {
		return v
	}
	return math.Round(v/quantum) * quantum
}

// AppendKey appends the cache key for one instance under one model to dst
// and returns the extended slice: the model reference, a NUL separator,
// then the 8-byte bit pattern of each (quantized) value. Bit patterns —
// not formatted decimals — keep the key exact, compact, and collision-free
// at quantum 0. Callers on the hot path hand in a stack scratch buffer and
// pass the result straight to GetBytes/PutBytes, so keying a request
// allocates nothing.
func AppendKey(dst []byte, modelRef string, row dataset.Instance, quantum float64) []byte {
	dst = append(dst, modelRef...)
	dst = append(dst, 0)
	var scratch [8]byte
	for _, v := range row {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(Quantize(v, quantum)))
		dst = append(dst, scratch[:]...)
	}
	return dst
}

// CacheKey is AppendKey as an owned string, for callers that store keys.
func CacheKey(modelRef string, row dataset.Instance, quantum float64) string {
	return string(AppendKey(make([]byte, 0, len(modelRef)+1+8*len(row)), modelRef, row, quantum))
}
