package serve

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/shard"
)

// PredictionCache is a bounded cache from (model ref, feature vector) to a
// predicted value with clock (second-chance) eviction. Tree prediction is
// already cheap — a handful of comparisons plus a dot product — so the hit
// path has to be cheaper still to be worth having: it takes one shard's
// read lock, one map probe and two atomic operations, with no per-hit list
// surgery or allocation. Evictions approximate LRU: each shard's clock
// hand sweeps its entry ring and reclaims the first entry not referenced
// since its last pass.
//
// The cache is lock-striped the same way as the session table: keys route
// to a power-of-two number of independently locked shards by the shared
// shard.Hash, so concurrent inserts and refreshes contend only when they
// collide on a shard. Small caches stay single-shard, which keeps the
// clock sweep global and eviction order exactly what a capacity-N clock
// would do; capacity splits across shards as evenly as possible
// (remainders go to the low shards), so the configured bound is exact.
//
// Keys are built by AppendKey from the bit patterns of the (optionally
// quantized) feature values, so with quantum 0 a hit is only possible for
// a bit-identical input and caching can never change a response. A
// positive quantum trades that guarantee for a higher hit rate by
// snapping each value to the nearest multiple before keying.
type PredictionCache struct {
	shards []*cacheShard
	mask   uint32
	cap    int
}

// cacheShard is one independently locked clock cache over a slice of the
// capacity.
type cacheShard struct {
	mu           sync.RWMutex
	cap          int
	ring         []*cacheEntry // insertion ring the clock hand sweeps
	hand         int
	items        map[string]*cacheEntry
	hits, misses atomic.Uint64
}

type cacheEntry struct {
	key  string
	bits atomic.Uint64 // Float64bits of the cached prediction
	ref  atomic.Bool   // referenced since the hand last passed
}

// cacheShardFloor is the smallest per-shard capacity worth striping for:
// below it the cache stays on fewer (or one) shards, so tiny caches keep
// exact global clock eviction and shards never round down to zero slots.
const cacheShardFloor = 64

// NewPredictionCache creates a cache bounded to capacity entries.
// Capacity must be positive; callers disable caching by not constructing
// one (a nil *PredictionCache is inert).
func NewPredictionCache(capacity int) *PredictionCache {
	if capacity < 1 {
		capacity = 1
	}
	n := 16
	for n > 1 && capacity/n < cacheShardFloor {
		n >>= 1
	}
	c := &PredictionCache{
		shards: make([]*cacheShard, n),
		mask:   uint32(n - 1),
		cap:    capacity,
	}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < extra {
			sc++
		}
		c.shards[i] = &cacheShard{
			cap:   sc,
			ring:  make([]*cacheEntry, 0, sc),
			items: make(map[string]*cacheEntry, sc),
		}
	}
	return c
}

func (c *PredictionCache) shardFor(key string) *cacheShard {
	return c.shards[shard.Hash(key)&c.mask]
}

func (c *PredictionCache) shardForBytes(key []byte) *cacheShard {
	return c.shards[shard.HashBytes(key)&c.mask]
}

// Get looks up a key, marking it recently used on a hit. A nil cache
// always misses without counting.
func (c *PredictionCache) Get(key string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	sh := c.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.items[key]
	sh.mu.RUnlock()
	if !ok {
		sh.misses.Add(1)
		return 0, false
	}
	e.ref.Store(true)
	sh.hits.Add(1)
	return math.Float64frombits(e.bits.Load()), true
}

// GetBytes is Get for a key still sitting in its scratch buffer (see
// AppendKey). The string conversion happens inside the map index
// expression, which the compiler performs without copying, so a lookup
// allocates nothing.
func (c *PredictionCache) GetBytes(key []byte) (float64, bool) {
	if c == nil {
		return 0, false
	}
	sh := c.shardForBytes(key)
	sh.mu.RLock()
	e, ok := sh.items[string(key)]
	sh.mu.RUnlock()
	if !ok {
		sh.misses.Add(1)
		return 0, false
	}
	e.ref.Store(true)
	sh.hits.Add(1)
	return math.Float64frombits(e.bits.Load()), true
}

// Put inserts or refreshes a key, evicting an entry second-chance style
// when the shard is full. A nil cache ignores the call.
func (c *PredictionCache) Put(key string, val float64) {
	if c == nil {
		return
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[key]; ok {
		e.bits.Store(math.Float64bits(val))
		e.ref.Store(true)
		return
	}
	sh.insert(key, val)
}

// PutBytes is Put for a scratch-buffer key: the refresh path allocates
// nothing, and only a genuine insert copies the key into an owned string.
func (c *PredictionCache) PutBytes(key []byte, val float64) {
	if c == nil {
		return
	}
	sh := c.shardForBytes(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[string(key)]; ok {
		e.bits.Store(math.Float64bits(val))
		e.ref.Store(true)
		return
	}
	sh.insert(string(key), val)
}

// insert adds a new entry (caller holds the shard's write lock and has
// ruled out a refresh), reclaiming a ring slot from the clock hand when
// the shard is full.
func (sh *cacheShard) insert(key string, val float64) {
	e := &cacheEntry{key: key}
	e.bits.Store(math.Float64bits(val))
	if len(sh.ring) < sh.cap {
		sh.ring = append(sh.ring, e)
		sh.items[key] = e
		return
	}
	// Second chance: skip (and strip the reference bit of) every entry
	// used since the hand last came by; evict the first one that was not.
	// Bounded: after one full sweep every bit is clear.
	for {
		v := sh.ring[sh.hand]
		if v.ref.Load() {
			v.ref.Store(false)
			sh.hand = (sh.hand + 1) % sh.cap
			continue
		}
		delete(sh.items, v.key)
		sh.ring[sh.hand] = e
		sh.items[key] = e
		sh.hand = (sh.hand + 1) % sh.cap
		return
	}
}

// Stats returns the hit/miss counters and the current size, summed over
// the shards.
func (c *PredictionCache) Stats() (hits, misses uint64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	for _, sh := range c.shards {
		sh.mu.RLock()
		size += len(sh.items)
		sh.mu.RUnlock()
		hits += sh.hits.Load()
		misses += sh.misses.Load()
	}
	return hits, misses, size
}

// Cap returns the configured total capacity.
func (c *PredictionCache) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Shards returns the stripe count.
func (c *PredictionCache) Shards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// Quantize snaps v to the nearest multiple of quantum; quantum <= 0
// returns v unchanged (exact keying).
func Quantize(v, quantum float64) float64 {
	if quantum <= 0 {
		return v
	}
	return math.Round(v/quantum) * quantum
}

// AppendKey appends the cache key for one instance under one model to dst
// and returns the extended slice: the model reference, a NUL separator,
// then the 8-byte bit pattern of each (quantized) value. Bit patterns —
// not formatted decimals — keep the key exact, compact, and collision-free
// at quantum 0. Callers on the hot path hand in a stack scratch buffer and
// pass the result straight to GetBytes/PutBytes, so keying a request
// allocates nothing.
func AppendKey(dst []byte, modelRef string, row dataset.Instance, quantum float64) []byte {
	dst = append(dst, modelRef...)
	dst = append(dst, 0)
	var scratch [8]byte
	for _, v := range row {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(Quantize(v, quantum)))
		dst = append(dst, scratch[:]...)
	}
	return dst
}

// CacheKey is AppendKey as an owned string, for callers that store keys.
func CacheKey(modelRef string, row dataset.Instance, quantum float64) string {
	return string(AppendKey(make([]byte, 0, len(modelRef)+1+8*len(row)), modelRef, row, quantum))
}
