package serve

// Tests for the compiled serving path: the registry compiles models at
// registration, and the batch kernel in handlePredict produces
// responses byte-identical to the per-row fallback under every cache
// and worker configuration — the "which path ran" question must be
// unanswerable from outside.

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/model"
	"repro/internal/mtree"
)

// plainModel hides everything but the four model.Model methods, so a
// registered model skips compilation and the batch kernel — the per-row
// fallback path, kept testable after the registry learned to compile.
type plainModel struct{ model.Model }

func buildServeTree(t testing.TB, d *dataset.Dataset) *mtree.Tree {
	t.Helper()
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 40
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestRegistryCompilesOnRegister: Compilable models come out of the
// registry in compiled form; already-compiled and non-compilable models
// are stored as-is.
func TestRegistryCompilesOnRegister(t *testing.T) {
	d := perfData(400, 3)
	tree := buildServeTree(t, d)
	bag, err := ensemble.Train(d, ensemble.Config{Trees: 3, Tree: tree.Config, SampleFraction: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	for name, m := range map[string]model.Model{
		"tree": tree, "bag": bag, "plain": plainModel{tree},
	} {
		if err := reg.Register(name, "v1", m, ""); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range map[string]bool{"tree": true, "bag": true, "plain": false} {
		e, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := e.Model.(model.BatchPredictor); ok != want {
			t.Errorf("%s: stored as batch-capable %v, want %v (%T)", name, ok, want, e.Model)
		}
	}
	if e, _ := reg.Get("tree"); e != nil {
		if _, ok := e.Model.(*mtree.CompiledTree); !ok {
			t.Errorf("tree stored as %T, want *mtree.CompiledTree", e.Model)
		}
	}
	if e, _ := reg.Get("bag"); e != nil {
		if _, ok := e.Model.(*ensemble.CompiledBagger); !ok {
			t.Errorf("ensemble stored as %T, want *ensemble.CompiledBagger", e.Model)
		}
	}
}

// TestBatchKernelResponseIdentical: for the same request, the compiled
// batch kernel and the per-row pointer walk return byte-identical
// bodies — across batch sizes straddling the parallel cutoff, cache
// off/cold/warm, serial and parallel workers, and both model kinds.
func TestBatchKernelResponseIdentical(t *testing.T) {
	d := perfData(600, 11)
	tree := buildServeTree(t, d)
	bag, err := ensemble.Train(d, ensemble.Config{Trees: 4, Tree: tree.Config, SampleFraction: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	configs := []Config{
		{Jobs: 1, CacheSize: 0, MaxBodyBytes: 1 << 22, MaxBatch: 4096},
		{Jobs: 1, CacheSize: 512, MaxBodyBytes: 1 << 22, MaxBatch: 4096},
		{Jobs: 0, CacheSize: 0, MaxBodyBytes: 1 << 22, MaxBatch: 4096},
		{Jobs: 3, CacheSize: 4096, MaxBodyBytes: 1 << 22, MaxBatch: 4096},
	}
	for _, m := range []struct {
		name  string
		model model.Model
	}{{"tree", tree}, {"ensemble", bag}} {
		for _, rows := range []int{1, 64, 300} {
			body := fmt.Sprintf(`{"model":"cpi","rows":%s}`, rowsJSON(d, 0, rows))
			contribBody := fmt.Sprintf(`{"model":"cpi","rows":%s,"contributions":true}`, rowsJSON(d, 0, rows))
			for ci, cfg := range configs {
				serve := func(candidate model.Model, body string) string {
					reg := NewRegistry()
					if err := reg.Register("cpi", "v1", candidate, ""); err != nil {
						t.Fatal(err)
					}
					h := New(reg, cfg).Handler()
					var last string
					// Two requests: the second hits a warm cache when enabled.
					for i := 0; i < 2; i++ {
						rec := post(h, "/v1/predict", body)
						if rec.Code != http.StatusOK {
							t.Fatalf("status %d: %s", rec.Code, rec.Body)
						}
						if i > 0 && last != rec.Body.String() {
							t.Fatalf("%s rows=%d cfg=%d: warm response differs from cold", m.name, rows, ci)
						}
						last = rec.Body.String()
					}
					return last
				}
				compiled := serve(m.model, body)
				plain := serve(plainModel{m.model}, body)
				if compiled != plain {
					t.Fatalf("%s rows=%d cfg=%d: kernel response differs from per-row fallback\nkernel: %s\nplain:  %s",
						m.name, rows, ci, compiled, plain)
				}
				if cc, pc := serve(m.model, contribBody), serve(plainModel{m.model}, contribBody); cc != pc {
					t.Fatalf("%s rows=%d cfg=%d: contributions response differs under compilation", m.name, rows, ci)
				}
			}
		}
	}
}
