package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/stream"
)

// streamTrace renders an NDJSON trace with the same generative law as
// perfData: one phase change at boundary (the counter regime flips) and
// an unexplained CPI shift from shiftAt on (a performance regression the
// model cannot account for).
func streamTrace(total, boundary, shiftAt int, shift float64, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for i := 0; i < total; i++ {
		var l1, l2, dt float64
		if i < boundary {
			l1 = 0.012 + 0.0015*rng.Float64()
			l2 = 0.0008 + 0.0002*rng.Float64()
			dt = 0.0001 + 0.00005*rng.Float64()
		} else {
			l1 = 0.002 + 0.0008*rng.Float64()
			l2 = 0.004 + 0.0003*rng.Float64()
			dt = 0.0006 + 0.0001*rng.Float64()
		}
		cpi := 0.6 + 7*l1
		if l2 > 0.002 {
			cpi = 1.1 + 90*l2 + 40*dt
		}
		cpi += 0.01 * rng.NormFloat64()
		if i >= shiftAt {
			cpi += shift
		}
		s := stream.Sample{Bench: "trace", Section: i,
			Events: map[string]float64{"L1IM": l1, "L2M": l2, "DtlbLdM": dt}, CPI: &cpi}
		_ = enc.Encode(&s)
	}
	return b.String()
}

func streamConfig(jobs int) Config {
	cfg := DefaultConfig()
	cfg.Jobs = jobs
	cfg.CacheSize = 0
	cfg.Stream.Window = 16
	// Wider alarm threshold than the default so residual noise over a
	// short trace cannot false-fire, while a +0.5 shift still trips in a
	// couple of sections.
	cfg.Stream.PH.Lambda = 0.5
	return cfg
}

// postNDJSON posts a raw NDJSON body to the stream endpoint.
func postNDJSON(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// splitLines cuts an NDJSON document after n lines.
func splitLines(doc string, n int) (string, string) {
	lines := strings.SplitAfter(strings.TrimSuffix(doc, "\n"), "\n")
	return strings.Join(lines[:n], ""), strings.Join(lines[n:], "")
}

// TestStreamEndToEnd is the subsystem's serve-side acceptance test: a
// synthetic two-phase trace with an injected CPI regression goes through
// POST /v1/stream in two chunks (monitor state must persist across
// requests), the response must be byte-identical at -jobs 1 and 8, and
// the phase boundary and drift alarm must land at the right sections.
func TestStreamEndToEnd(t *testing.T) {
	const (
		total    = 130
		boundary = 60
		shiftAt  = 90
	)
	trace := streamTrace(total, boundary, shiftAt, 0.5, 42)
	first, second := splitLines(trace, 70)

	var bodies [][]byte
	for _, jobs := range []int{1, 8} {
		s, _, _ := newTestServer(t, streamConfig(jobs))
		h := s.Handler()
		var buf bytes.Buffer
		for _, chunk := range []string{first, second} {
			rec := postNDJSON(h, "/v1/stream?model=cpi", chunk)
			if rec.Code != http.StatusOK {
				t.Fatalf("jobs %d: status %d: %s", jobs, rec.Code, rec.Body)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
				t.Errorf("content type %q", ct)
			}
			buf.Write(rec.Body.Bytes())
		}
		bodies = append(bodies, buf.Bytes())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("stream responses differ between -jobs 1 and -jobs 8")
	}

	var (
		phaseStarts []int
		firstDrift  = -1
		driftDir    string
		summaries   []stream.Stats
	)
	dec := json.NewDecoder(bytes.NewReader(bodies[0]))
	for dec.More() {
		var ev struct {
			Type       string       `json:"type"`
			Section    int          `json:"section"`
			PhaseStart int          `json:"phase_start"`
			Direction  string       `json:"direction"`
			Stats      stream.Stats `json:"stats"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "phase":
			phaseStarts = append(phaseStarts, ev.PhaseStart)
		case "drift":
			if firstDrift < 0 {
				firstDrift, driftDir = ev.Section, ev.Direction
			}
		case "summary":
			summaries = append(summaries, ev.Stats)
		}
	}
	if len(phaseStarts) != 1 {
		t.Fatalf("phase boundaries %v, want exactly one", phaseStarts)
	}
	if got := phaseStarts[0]; got < boundary-4 || got > boundary+4 {
		t.Errorf("phase boundary at %d, want near %d", got, boundary)
	}
	if firstDrift < shiftAt || firstDrift > shiftAt+14 {
		t.Errorf("first drift alarm at section %d, want shortly after %d", firstDrift, shiftAt)
	}
	if driftDir != "up" {
		t.Errorf("drift direction %q, want up", driftDir)
	}
	if len(summaries) != 2 {
		t.Fatalf("%d summary lines, want 2 (one per request)", len(summaries))
	}
	final := summaries[1]
	if final.Scored != total {
		t.Errorf("scored %d sections, want %d", final.Scored, total)
	}
	if final.Depth != 0 {
		t.Errorf("ring depth %d after flush, want 0", final.Depth)
	}
	if final.DriftAlarms < 1 || final.PhaseBoundaries != 1 {
		t.Errorf("final stats %+v", final)
	}
}

// TestStreamMetrics checks the /metrics stream counters after traffic.
func TestStreamMetrics(t *testing.T) {
	s, _, _ := newTestServer(t, streamConfig(0))
	h := s.Handler()
	trace := streamTrace(130, 60, 90, 0.5, 42)
	if rec := postNDJSON(h, "/v1/stream?model=cpi", trace); rec.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", rec.Code, rec.Body)
	}
	rec := get(h, "/v1/metrics.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	st := snap.Streams
	if st.Sessions != 1 {
		t.Errorf("sessions %d, want 1", st.Sessions)
	}
	if st.Scored != 130 || st.Depth != 0 {
		t.Errorf("scored %d depth %d, want 130 and 0", st.Scored, st.Depth)
	}
	if st.PhaseBoundaries != 1 || st.DriftAlarms < 1 {
		t.Errorf("boundaries %d alarms %d, want 1 and >=1", st.PhaseBoundaries, st.DriftAlarms)
	}
	if st.Windows < 1 {
		t.Errorf("windows %d, want >= 1", st.Windows)
	}
}

// TestStreamErrors exercises every rejection path and verifies a
// rejected batch leaves the monitor state untouched.
func TestStreamErrors(t *testing.T) {
	cfg := streamConfig(0)
	cfg.MaxBatch = 8
	s, _, _ := newTestServer(t, cfg)
	h := s.Handler()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"missing model", "/v1/stream", `{"events":{"L2M":1}}`, http.StatusBadRequest},
		{"unknown model", "/v1/stream?model=nope", `{"events":{"L2M":1}}`, http.StatusNotFound},
		{"empty body", "/v1/stream?model=cpi", "", http.StatusBadRequest},
		{"malformed line", "/v1/stream?model=cpi", "{\"events\":{\"L2M\":1}}\nnot json\n", http.StatusBadRequest},
		{"no events", "/v1/stream?model=cpi", `{"bench":"x"}`, http.StatusBadRequest},
		{"unknown event", "/v1/stream?model=cpi", `{"events":{"NoSuchEvent":1}}`, http.StatusBadRequest},
		{"target as event", "/v1/stream?model=cpi", `{"events":{"CPI":1}}`, http.StatusBadRequest},
		{"oversized batch", "/v1/stream?model=cpi", strings.Repeat("{\"events\":{\"L2M\":0.001}}\n", 9), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		if rec := postNDJSON(h, tc.path, tc.body); rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body)
		}
	}

	// A malformed-line rejection must name the offending line.
	rec := postNDJSON(h, "/v1/stream?model=cpi", "{\"events\":{\"L2M\":1}}\nnot json\n")
	if !strings.Contains(rec.Body.String(), "line 2") {
		t.Errorf("malformed-line error does not name line 2: %s", rec.Body)
	}

	// A batch that fails validation mid-way must not have advanced the
	// monitors: the all-or-nothing check runs before any ingestion.
	bad := "{\"events\":{\"L2M\":0.001}}\n{\"events\":{\"NoSuchEvent\":1}}\n"
	if rec := postNDJSON(h, "/v1/stream?model=cpi", bad); rec.Code != http.StatusBadRequest {
		t.Fatalf("mixed batch status %d, want 400", rec.Code)
	}
	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(get(h, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Streams.Scored != 0 || snap.Streams.Accepted != 0 {
		t.Errorf("rejected batches advanced monitor state: %+v", snap.Streams)
	}
}

// TestMethodNotAllowed asserts every endpoint rejects wrong methods with
// 405, a correct Allow header and the API's JSON error shape.
func TestMethodNotAllowed(t *testing.T) {
	s, _, _ := newTestServer(t, DefaultConfig())
	h := s.Handler()
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/v1/predict", "POST"},
		{http.MethodDelete, "/v1/predict", "POST"},
		{http.MethodGet, "/v1/classify", "POST"},
		{http.MethodGet, "/v1/stream", "POST"},
		{http.MethodPost, "/v1/sessions", "GET, HEAD"},
		{http.MethodGet, "/v1/sessions/drain", "POST"},
		{http.MethodGet, "/v1/sessions/restore", "POST"},
		{http.MethodPost, "/v1/models", "GET, HEAD"},
		{http.MethodPost, "/healthz", "GET, HEAD"},
		{http.MethodPut, "/metrics", "GET, HEAD"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, tc.path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, rec.Code)
			continue
		}
		if got := rec.Header().Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		var body errorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil ||
			body.Error.Code != ErrCodeMethodNotAllowed || body.Error.Message == "" {
			t.Errorf("%s %s: bad 405 envelope: %s", tc.method, tc.path, rec.Body)
		}
	}
	// HEAD on a GET route is allowed, not 405.
	req := httptest.NewRequest(http.MethodHead, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("HEAD /healthz: status %d, want 200", rec.Code)
	}
}

// TestStreamResponseFlushesIncrementally pins the /v1/stream timeout
// exemption: http.TimeoutHandler's writer buffers everything and does
// not implement http.Flusher, so a Flush reaching the recorder proves
// the route streams its NDJSON directly while the default
// RequestTimeout still guards every other endpoint.
func TestStreamResponseFlushesIncrementally(t *testing.T) {
	s, _, _ := newTestServer(t, streamConfig(1))
	h := s.Handler()
	rec := postNDJSON(h, "/v1/stream?model=cpi", streamTrace(40, 20, 100, 0, 7))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !rec.Flushed {
		t.Error("stream response was never flushed: is /v1/stream wrapped in a buffering handler?")
	}
}

// TestStreamSessionsIndependent verifies two models monitor separately.
func TestStreamSessionsIndependent(t *testing.T) {
	d := perfData(1200, 5)
	tree := buildTree(t, d)
	reg := NewRegistry()
	for _, name := range []string{"a", "b"} {
		if err := reg.Register(name, "v1", tree, ""); err != nil {
			t.Fatal(err)
		}
	}
	h := New(reg, streamConfig(0)).Handler()
	trace := streamTrace(40, 20, 100, 0, 7)
	for _, name := range []string{"a", "b"} {
		if rec := postNDJSON(h, "/v1/stream?model="+name, trace); rec.Code != http.StatusOK {
			t.Fatalf("model %s: status %d: %s", name, rec.Code, rec.Body)
		}
	}
	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(get(h, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Streams.Sessions != 2 {
		t.Errorf("sessions %d, want 2", snap.Streams.Sessions)
	}
	if snap.Streams.Scored != 80 {
		t.Errorf("scored %d, want 80", snap.Streams.Scored)
	}
}
