package serve

import (
	"net/http"

	"repro/internal/march"
)

// GET /v1/machines and /v1/machines/{name} expose the march registry —
// the machine presets training data can be collected on — so a client
// shaping cross-architecture traffic can discover the spec behind a
// model's "machine" tag without shipping the registry out of band.

// machineInfo is one listing row: the identity plus the headline
// parameters a client sorts or filters on; the per-machine detail view
// returns the full spec.
type machineInfo struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	IssueWidth  float64 `json:"issue_width"`
	ROBWindow   uint64  `json:"rob_window"`
	MemLatency  float64 `json:"mem_latency"`
	// Models counts the registered models tagged with this machine.
	Models int `json:"models"`
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	byMachine := s.reg.ModelsByMachine()
	specs := march.All()
	out := make([]machineInfo, len(specs))
	for i, spec := range specs {
		out[i] = machineInfo{
			Name:        spec.Name,
			Description: spec.Description,
			IssueWidth:  spec.Pipeline.IssueWidth,
			ROBWindow:   spec.Pipeline.ROBWindow,
			MemLatency:  spec.Penalties.MemLatency,
			Models:      byMachine[spec.Name],
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"machines": out})
}

// handleMachineDetail returns the full declarative spec — the same JSON
// document -march-file accepts, so a client can round-trip a preset into
// a user machine file.
func (s *Server) handleMachineDetail(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	spec, ok := march.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			"serve: unknown machine %q; known: %v", name, march.Names())
		return
	}
	writeJSON(w, http.StatusOK, spec)
}
