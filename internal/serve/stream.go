package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"repro/internal/stream"
)

// The /v1/stream endpoint is the service's online surface: clients POST
// NDJSON counter samples and the server runs them through a persistent
// per-model stream.Processor — the same scoring fan-out as /v1/predict
// plus the phase and drift monitors. Monitor state (phase tracker,
// Page–Hinkley accumulator, EWMA CPI) survives across requests, so a
// producer can POST sections in whatever chunks its collection loop
// yields and still get one coherent monitoring timeline.

// streamSession is one model's live monitor. The processor is not safe
// for concurrent use, so each session serializes its requests; different
// models stream independently.
type streamSession struct {
	mu sync.Mutex
	p  *stream.Processor
}

// streamSessions lazily creates one session per model reference.
type streamSessions struct {
	mu       sync.Mutex
	sessions map[string]*streamSession
}

func newStreamSessions() *streamSessions {
	return &streamSessions{sessions: map[string]*streamSession{}}
}

func (ss *streamSessions) get(ref string, mk func() (*stream.Processor, error)) (*streamSession, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s, ok := ss.sessions[ref]; ok {
		return s, nil
	}
	p, err := mk()
	if err != nil {
		return nil, err
	}
	s := &streamSession{p: p}
	ss.sessions[ref] = s
	return s, nil
}

// streamsSnapshot aggregates every session's monitor counters for the
// /metrics report.
type streamsSnapshot struct {
	Sessions        int    `json:"sessions"`
	Depth           int    `json:"depth"`
	Accepted        uint64 `json:"accepted"`
	Scored          uint64 `json:"scored"`
	Invalid         uint64 `json:"invalid"`
	Dropped         uint64 `json:"dropped"`
	Windows         uint64 `json:"windows"`
	PhaseBoundaries uint64 `json:"phase_boundaries"`
	DriftAlarms     uint64 `json:"drift_alarms"`
}

func (ss *streamSessions) snapshot() streamsSnapshot {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	snap := streamsSnapshot{Sessions: len(ss.sessions)}
	for _, s := range ss.sessions {
		s.mu.Lock()
		st := s.p.Stats()
		s.mu.Unlock()
		snap.Depth += st.Depth
		snap.Accepted += st.Accepted
		snap.Scored += st.Scored
		snap.Invalid += st.Invalid
		snap.Dropped += st.Dropped
		snap.Windows += st.Windows
		snap.PhaseBoundaries += st.PhaseBoundaries
		snap.DriftAlarms += st.DriftAlarms
	}
	return snap
}

// streamConfig derives the processor configuration from the service
// knobs; scoring parallelism follows the service-wide Jobs setting.
func (s *Server) streamConfig() stream.Config {
	cfg := s.cfg.Stream
	cfg.Jobs = s.cfg.Jobs
	return cfg
}

// streamErrorLine builds the in-band NDJSON error object emitted when
// a stream fails after the 200 header is out; it carries the same
// envelope as out-of-band errors so clients classify both the same way.
func streamErrorLine(err error) map[string]any {
	return map[string]any{
		"type":  "error",
		"error": apiError{Code: ErrCodeStreamAborted, Message: err.Error()},
	}
}

// streamSummary is the final NDJSON line of every /v1/stream response.
type streamSummary struct {
	Type  string `json:"type"`
	Model string `json:"model"`
	// Machine is the model's machine provenance tag (empty when the
	// model carries none), so a monitoring pipeline fanning over
	// cross-architecture models can attribute a session without a
	// second lookup.
	Machine  string       `json:"machine,omitempty"`
	Ingested int          `json:"ingested"`
	Stats    stream.Stats `json:"stats"`
}

// handleStream ingests a POSTed NDJSON sample batch into the model's
// monitor session and streams back the resulting events, one JSON object
// per line, ending with a "summary" line. The model is addressed with
// the ?model= query parameter (the body is NDJSON, not an envelope).
//
// The whole batch is decoded and schema-checked before any sample
// reaches the monitors, so a 400 response guarantees no state changed —
// a malformed producer cannot half-poison the phase or drift trackers.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r.URL.Query().Get("model"))
	if e == nil {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := stream.NewDecoder(r.Body)
	var samples []stream.Sample
	for {
		smp, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge, ErrCodeTooLarge,
					"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			} else {
				writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
			}
			return
		}
		samples = append(samples, smp)
		if len(samples) > s.cfg.MaxBatch {
			writeError(w, http.StatusRequestEntityTooLarge, ErrCodeTooLarge,
				"batch exceeds %d samples", s.cfg.MaxBatch)
			return
		}
	}
	if len(samples) == 0 {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "no samples in request body")
		return
	}

	sess, err := s.streams.get(e.Ref(), func() (*stream.Processor, error) {
		return stream.NewProcessor(e.Model, s.streamConfig())
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for i := range samples {
		if err := sess.p.Check(samples[i]); err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "sample %d: %v", i, err)
			return
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(events []stream.Event) bool {
		for i := range events {
			if err := enc.Encode(&events[i]); err != nil {
				return false // client gone; stop writing, state is consistent
			}
		}
		// Push completed events to the client now: this route is outside
		// http.TimeoutHandler precisely so incremental delivery works.
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for i := range samples {
		// The whole batch passed Check above; IngestChecked skips the
		// per-sample re-validation.
		events, err := sess.p.IngestChecked(samples[i])
		if err != nil {
			// Only ring errors can land here; report on the stream since
			// the 200 header is already out.
			_ = enc.Encode(streamErrorLine(err))
			return
		}
		if !emit(events) {
			return
		}
	}
	// Score the final partial window too: a batch endpoint should answer
	// for every sample it accepted, not leave a remainder buffered.
	events, err := sess.p.Flush()
	if err != nil {
		_ = enc.Encode(streamErrorLine(err))
		return
	}
	if !emit(events) {
		return
	}
	_ = enc.Encode(streamSummary{
		Type:     "summary",
		Model:    e.Ref(),
		Machine:  e.Model.Describe().Machine,
		Ingested: len(samples),
		Stats:    sess.p.Stats(),
	})
}
