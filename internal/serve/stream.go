package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"repro/internal/refute"
	"repro/internal/shard"
	"repro/internal/stream"
)

// The /v1/stream endpoint is the service's online surface: clients POST
// NDJSON counter samples and the server runs them through a persistent
// stream.Processor — the same scoring fan-out as /v1/predict plus the
// phase and drift monitors. Monitor state (phase tracker, Page–Hinkley
// accumulator, EWMA CPI) survives across requests, so a producer can
// POST sections in whatever chunks its collection loop yields and still
// get one coherent monitoring timeline.
//
// Sessions are keyed by (model ref, session id): the ?session= query
// parameter names the timeline, so many producers can monitor through
// the same model concurrently without interleaving their sections.
// Omitting ?session= addresses the model's default session, which keeps
// the pre-session API shape working unchanged. The table behind the
// keys is lock-striped (internal/shard) with TTL eviction, so session
// lookup scales with cores and an abandoned producer's state does not
// pin memory forever.

// streamSession is one live monitor timeline. The processor is not safe
// for concurrent use, so each session serializes its ingestion; other
// sessions — of the same model or not — proceed independently. The
// session lock is held only across ingestion and scoring, never across
// the response write: a slow client drains its response after the lock
// is gone, so it cannot stall the session's next producer (and under
// the old one-session-per-model scheme it stalled every producer of
// the model).
type streamSession struct {
	mu    sync.Mutex
	model string // registry ref, e.g. "cpi@v1"
	id    string // session id, "" for the model's default session
	p     *stream.Processor
}

// streamSessions is the striped session table. The session key is the
// model ref and session id joined by a NUL (refs and ids are
// URL-derived and never contain one), so sessions of one model spread
// across shards like any other keys.
type streamSessions struct {
	tab *shard.Table[*streamSession]
}

func newStreamSessions(opts shard.Options) *streamSessions {
	return &streamSessions{tab: shard.New[*streamSession](opts)}
}

func sessionKey(ref, id string) string {
	return ref + "\x00" + id
}

// get returns the live session for (ref, id), creating it with mk on a
// miss or after TTL eviction.
func (ss *streamSessions) get(ref, id string, mk func() (*stream.Processor, error)) (*streamSession, error) {
	sess, _, err := ss.tab.GetOrCreate(sessionKey(ref, id), func() (*streamSession, error) {
		p, err := mk()
		if err != nil {
			return nil, err
		}
		return &streamSession{model: ref, id: id, p: p}, nil
	})
	return sess, err
}

// streamsSnapshot aggregates every session's monitor counters for the
// /metrics report, plus the session table's per-shard counters — the
// observable proof that traffic spreads across stripes and that TTL
// eviction is reclaiming abandoned sessions.
type streamsSnapshot struct {
	Sessions        int    `json:"sessions"`
	Depth           int    `json:"depth"`
	Accepted        uint64 `json:"accepted"`
	Scored          uint64 `json:"scored"`
	Invalid         uint64 `json:"invalid"`
	Dropped         uint64 `json:"dropped"`
	Windows         uint64 `json:"windows"`
	PhaseBoundaries uint64 `json:"phase_boundaries"`
	DriftAlarms     uint64 `json:"drift_alarms"`
	// Counter-consistency rollup across sessions: per-verdict session
	// counts, total relation violations, and per-relation violation
	// totals (only relations with at least one violation appear).
	RefuteConsistent   int               `json:"refute_consistent_sessions"`
	RefuteSuspect      int               `json:"refute_suspect_sessions"`
	RefuteRefuted      int               `json:"refute_refuted_sessions"`
	RefuteViolations   uint64            `json:"refute_violations"`
	RelationViolations map[string]uint64 `json:"refute_relation_violations,omitempty"`
	// Hits/Misses/Evictions are the session-table totals; Shards breaks
	// them down per stripe.
	Hits      uint64             `json:"hits"`
	Misses    uint64             `json:"misses"`
	Evictions uint64             `json:"evictions"`
	Shards    []shard.ShardStats `json:"shards,omitempty"`
}

func (ss *streamSessions) snapshot() streamsSnapshot {
	var snap streamsSnapshot
	ss.tab.Range(func(_ string, s *streamSession) {
		s.mu.Lock()
		st := s.p.Stats()
		rep := s.p.Refutation()
		s.mu.Unlock()
		snap.Sessions++
		snap.Depth += st.Depth
		snap.Accepted += st.Accepted
		snap.Scored += st.Scored
		snap.Invalid += st.Invalid
		snap.Dropped += st.Dropped
		snap.Windows += st.Windows
		snap.PhaseBoundaries += st.PhaseBoundaries
		snap.DriftAlarms += st.DriftAlarms
		switch rep.Verdict {
		case refute.Suspect:
			snap.RefuteSuspect++
		case refute.Refuted:
			snap.RefuteRefuted++
		default:
			snap.RefuteConsistent++
		}
		for _, rel := range rep.Relations {
			if rel.Violations == 0 {
				continue
			}
			if snap.RelationViolations == nil {
				snap.RelationViolations = make(map[string]uint64)
			}
			snap.RelationViolations[rel.Name] += rel.Violations
			snap.RefuteViolations += rel.Violations
		}
	})
	stats := ss.tab.Stats()
	total := stats.Total()
	snap.Hits, snap.Misses, snap.Evictions = total.Hits, total.Misses, total.Evictions
	snap.Shards = stats.Shards
	return snap
}

// streamConfig derives the processor configuration from the service
// knobs; scoring parallelism follows the service-wide Jobs setting.
func (s *Server) streamConfig() stream.Config {
	cfg := s.cfg.Stream
	cfg.Jobs = s.cfg.Jobs
	return cfg
}

// streamErrorLine builds the in-band NDJSON error object emitted when
// a stream fails after the 200 header is out; it carries the same
// envelope as out-of-band errors so clients classify both the same way.
func streamErrorLine(err error) map[string]any {
	return map[string]any{
		"type":  "error",
		"error": apiError{Code: ErrCodeStreamAborted, Message: err.Error()},
	}
}

// streamSummary is the final NDJSON line of every /v1/stream response.
type streamSummary struct {
	Type  string `json:"type"`
	Model string `json:"model"`
	// Machine is the model's machine provenance tag (empty when the
	// model carries none), so a monitoring pipeline fanning over
	// cross-architecture models can attribute a session without a
	// second lookup.
	Machine string `json:"machine,omitempty"`
	// Session echoes the ?session= id ("" = the default session).
	Session  string       `json:"session,omitempty"`
	Ingested int          `json:"ingested"`
	Stats    stream.Stats `json:"stats"`
}

// handleStream ingests a POSTed NDJSON sample batch into a monitor
// session and streams back the resulting events, one JSON object per
// line, ending with a "summary" line. The model is addressed with the
// ?model= query parameter and the session timeline with ?session=
// (the body is NDJSON, not an envelope).
//
// The whole batch is decoded and schema-checked before any sample
// reaches the monitors, so a 400 response guarantees no state changed —
// a malformed producer cannot half-poison the phase or drift trackers.
// Schema checking is read-only and runs without the session lock; the
// lock covers only ingestion and scoring. Events are buffered and
// written after the lock is released, so a client that reads its
// response slowly holds up nobody but itself.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r.URL.Query().Get("model"))
	if e == nil {
		return
	}
	sessionID := r.URL.Query().Get("session")
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := stream.NewDecoder(r.Body)
	var samples []stream.Sample
	for {
		smp, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge, ErrCodeTooLarge,
					"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			} else {
				writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
			}
			return
		}
		samples = append(samples, smp)
		if len(samples) > s.cfg.MaxBatch {
			writeError(w, http.StatusRequestEntityTooLarge, ErrCodeTooLarge,
				"batch exceeds %d samples", s.cfg.MaxBatch)
			return
		}
	}
	if len(samples) == 0 {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "no samples in request body")
		return
	}

	sess, err := s.streams.get(e.Ref(), sessionID, func() (*stream.Processor, error) {
		return stream.NewProcessor(e.Model, s.streamConfig())
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	// Check touches only the immutable schema, so it needs no lock even
	// while another request is ingesting into the same session.
	for i := range samples {
		if err := sess.p.Check(samples[i]); err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "sample %d: %v", i, err)
			return
		}
	}

	// Ingest and score under the session lock, buffering the events;
	// the response is written only after the lock is released.
	sess.mu.Lock()
	var events []stream.Event
	var ingestErr error
	for i := range samples {
		// The whole batch passed Check above; IngestChecked skips the
		// per-sample re-validation. Only ring errors can fail here.
		evs, err := sess.p.IngestChecked(samples[i])
		if err != nil {
			ingestErr = err
			break
		}
		events = append(events, evs...)
	}
	if ingestErr == nil {
		// Score the final partial window too: a batch endpoint should
		// answer for every sample it accepted, not leave a remainder
		// buffered.
		evs, err := sess.p.Flush()
		if err != nil {
			ingestErr = err
		} else {
			events = append(events, evs...)
		}
	}
	stats := sess.p.Stats()
	sess.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return // client gone; stop writing, state is consistent
		}
	}
	// Push completed events to the client now: this route is outside
	// http.TimeoutHandler precisely so incremental delivery works.
	if len(events) > 0 && flusher != nil {
		flusher.Flush()
	}
	if ingestErr != nil {
		// The monitors kept whatever prefix they ingested; report on the
		// stream since the 200 header is already out.
		_ = enc.Encode(streamErrorLine(ingestErr))
		return
	}
	_ = enc.Encode(streamSummary{
		Type:     "summary",
		Model:    e.Ref(),
		Machine:  e.Model.Describe().Machine,
		Session:  sessionID,
		Ingested: len(samples),
		Stats:    stats,
	})
}
