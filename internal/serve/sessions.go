package serve

import (
	"net/http"
	"sort"

	"repro/internal/refute"
	"repro/internal/stream"
)

// The session handoff surface: GET /v1/sessions lists live monitor
// timelines, POST /v1/sessions/drain removes them all and returns their
// full serialized state, and POST /v1/sessions/restore installs such a
// state dump into a (typically fresh) server. Together they let a
// replica hand its live monitor state to a successor without losing a
// section: drain on the old process, restore on the new one, and every
// producer continues its timeline as if nothing happened. The state
// format round-trips float64 values exactly (shortest-form JSON), so a
// restored session's Stats are byte-identical to the drained one's.

// sessionInfo is one live session in the GET /v1/sessions listing.
type sessionInfo struct {
	Model   string       `json:"model"`
	Session string       `json:"session,omitempty"`
	Stats   stream.Stats `json:"stats"`
}

// sessionState is one session's full transferable state.
type sessionState struct {
	Model   string                `json:"model"`
	Session string                `json:"session,omitempty"`
	State   stream.ProcessorState `json:"state"`
}

// handleSessions lists the live sessions in deterministic (model,
// session) order with each one's monitor stats.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	sessions := []sessionInfo{} // render [] rather than null when empty
	s.streams.tab.Range(func(_ string, sess *streamSession) {
		sess.mu.Lock()
		st := sess.p.Stats()
		sess.mu.Unlock()
		sessions = append(sessions, sessionInfo{Model: sess.model, Session: sess.id, Stats: st})
	})
	writeJSON(w, http.StatusOK, map[string]any{"sessions": sessions})
}

// handleSessionsDrain removes every session from the table and returns
// their serialized state. In-flight requests that already hold a
// session pointer finish against it, but their session is no longer
// reachable — the drained dump is the authoritative handoff copy, so
// drain when producers are quiesced.
func (s *Server) handleSessionsDrain(w http.ResponseWriter, r *http.Request) {
	drained := s.streams.tab.Drain()
	keys := make([]string, 0, len(drained))
	for k := range drained {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	states := make([]sessionState, 0, len(drained))
	for _, k := range keys {
		sess := drained[k]
		sess.mu.Lock()
		st := sess.p.State()
		sess.mu.Unlock()
		states = append(states, sessionState{Model: sess.model, Session: sess.id, State: st})
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": states})
}

// handleSessionsRestore installs a drained state dump. The referenced
// models must be registered (a session cannot score without its model)
// and every state blob must validate; the restore is all-or-nothing, so
// a rejected dump leaves the table untouched. Restored sessions replace
// same-keyed live ones — the dump is the authoritative copy.
func (s *Server) handleSessionsRestore(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Sessions []sessionState `json:"sessions"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	restored := make([]*streamSession, 0, len(req.Sessions))
	for i, st := range req.Sessions {
		e, err := s.reg.Get(st.Model)
		if err != nil {
			writeError(w, http.StatusNotFound, ErrCodeNotFound, "session %d: %v", i, err)
			return
		}
		p, err := stream.RestoreProcessor(e.Model, s.streamConfig(), st.State)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "session %d: %v", i, err)
			return
		}
		restored = append(restored, &streamSession{model: e.Ref(), id: st.Session, p: p})
	}
	for _, sess := range restored {
		s.streams.tab.Put(sessionKey(sess.model, sess.id), sess)
	}
	writeJSON(w, http.StatusOK, map[string]any{"restored": len(restored)})
}

// refutationResponse is the GET /v1/sessions/{id}/refutation body: the
// session's full per-relation counter-consistency report.
type refutationResponse struct {
	Model      string        `json:"model"`
	Session    string        `json:"session,omitempty"`
	Refutation refute.Report `json:"refutation"`
}

// handleSessionRefutation serves one live session's full refutation
// report. The session id is the path element ({id} = "-" addresses the
// model's default session, whose id is empty and therefore not
// addressable literally) and the model ref comes from ?model=, mirroring
// how /v1/stream keys its sessions. 404 means no such live session —
// either it never existed or TTL eviction reclaimed it.
func (s *Server) handleSessionRefutation(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r.URL.Query().Get("model"))
	if e == nil {
		return
	}
	id := r.PathValue("id")
	if id == "-" {
		id = ""
	}
	sess, ok := s.streams.tab.Get(sessionKey(e.Ref(), id))
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			"no live session %q for model %s", id, e.Ref())
		return
	}
	sess.mu.Lock()
	rep := sess.p.Refutation()
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, refutationResponse{Model: sess.model, Session: sess.id, Refutation: rep})
}
