package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

// fakeClock is a manually advanced clock for exact session-TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestStreamSessionQueryParam verifies ?session= keys independent
// timelines through one model: each session scores the full trace from
// section zero, and both show up in the metrics snapshot.
func TestStreamSessionQueryParam(t *testing.T) {
	s, _, _ := newTestServer(t, streamConfig(0))
	h := s.Handler()
	trace := streamTrace(40, 20, 100, 0, 7)

	var bodies [][]byte
	for _, sess := range []string{"alpha", "beta"} {
		rec := postNDJSON(h, "/v1/stream?model=cpi&session="+sess, trace)
		if rec.Code != 200 {
			t.Fatalf("session %s: status %d: %s", sess, rec.Code, rec.Body)
		}
		bodies = append(bodies, rec.Body.Bytes())
	}
	// Two timelines over the same model and trace must diverge only in
	// the summary's echoed session id.
	a := bytes.ReplaceAll(bodies[0], []byte(`"session":"alpha"`), []byte(`"session":"X"`))
	b := bytes.ReplaceAll(bodies[1], []byte(`"session":"beta"`), []byte(`"session":"X"`))
	if !bytes.Equal(a, b) {
		t.Error("same trace through two sessions produced different monitoring output")
	}

	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(get(h, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Streams.Sessions != 2 || snap.Streams.Scored != 80 {
		t.Errorf("sessions %d scored %d, want 2 and 80", snap.Streams.Sessions, snap.Streams.Scored)
	}
	if snap.Streams.Misses != 2 {
		t.Errorf("session table misses %d, want 2 (one per created session)", snap.Streams.Misses)
	}
	if len(snap.Streams.Shards) != 16 {
		t.Errorf("%d shard stats, want 16", len(snap.Streams.Shards))
	}
}

// TestStreamConcurrentSessionsIndependent is the regression test for
// the lock-held-across-response-write stall: with one session per model
// (the old scheme), a stalled producer of a model blocked every other
// producer of that model. Holding session a's lock — exactly what a
// stuck ingest does — must not stop a request for session b of the
// same model.
func TestStreamConcurrentSessionsIndependent(t *testing.T) {
	s, _, _ := newTestServer(t, streamConfig(1))
	h := s.Handler()
	trace := streamTrace(40, 20, 100, 0, 7)

	if rec := postNDJSON(h, "/v1/stream?model=cpi&session=a", trace); rec.Code != 200 {
		t.Fatalf("seed request: status %d: %s", rec.Code, rec.Body)
	}
	sess, ok := s.streams.tab.Get(sessionKey("cpi@v1", "a"))
	if !ok {
		t.Fatal("session a not in the table")
	}
	sess.mu.Lock() // a stalled producer of session a
	defer sess.mu.Unlock()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postNDJSON(h, "/v1/stream?model=cpi&session=b", trace) }()
	select {
	case rec := <-done:
		if rec.Code != 200 {
			t.Fatalf("session b: status %d: %s", rec.Code, rec.Body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session b blocked behind a stalled session a of the same model")
	}
}

// TestStreamSessionTTLEviction drives the injectable clock past the TTL
// and checks that the idle session is evicted, counted, and replaced by
// a fresh timeline on the next request.
func TestStreamSessionTTLEviction(t *testing.T) {
	clk := newFakeClock()
	cfg := streamConfig(0)
	cfg.SessionTTL = time.Minute
	cfg.Clock = clk.Now
	s, _, _ := newTestServer(t, cfg)
	h := s.Handler()
	trace := streamTrace(40, 20, 100, 0, 7)

	if rec := postNDJSON(h, "/v1/stream?model=cpi", trace); rec.Code != 200 {
		t.Fatalf("first request: status %d", rec.Code)
	}
	clk.Advance(2 * time.Minute)
	rec := postNDJSON(h, "/v1/stream?model=cpi", trace)
	if rec.Code != 200 {
		t.Fatalf("post-TTL request: status %d", rec.Code)
	}
	// The replacement session starts a fresh timeline: its summary must
	// report 40 scored sections, not 80 accumulated ones.
	var sum struct {
		Stats stream.Stats `json:"stats"`
	}
	lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
	if err := json.Unmarshal(lines[len(lines)-1], &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Stats.Scored != 40 {
		t.Errorf("scored %d after eviction, want 40 (fresh session)", sum.Stats.Scored)
	}

	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(get(h, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Streams.Sessions != 1 {
		t.Errorf("sessions %d, want 1", snap.Streams.Sessions)
	}
	if snap.Streams.Evictions < 1 {
		t.Errorf("evictions %d, want >= 1", snap.Streams.Evictions)
	}
}

// TestSessionsDrainRestoreRoundTrip is the replica-handoff acceptance
// test: drain live sessions out of one server, restore them into a
// fresh one, and (1) the restored listing's per-session Stats are
// byte-identical to the pre-drain listing, (2) continuing a timeline on
// the new server emits exactly what an uninterrupted server would.
func TestSessionsDrainRestoreRoundTrip(t *testing.T) {
	cfg := streamConfig(1)
	trace := streamTrace(130, 60, 90, 0.5, 42)
	first, second := splitLines(trace, 70)

	sA, _, _ := newTestServer(t, cfg)
	hA := sA.Handler()
	for _, sess := range []string{"", "x"} {
		if rec := postNDJSON(hA, "/v1/stream?model=cpi&session="+sess, first); rec.Code != 200 {
			t.Fatalf("session %q: status %d: %s", sess, rec.Code, rec.Body)
		}
	}
	listA := get(hA, "/v1/sessions")
	if listA.Code != 200 {
		t.Fatalf("sessions listing status %d", listA.Code)
	}

	drain := post(hA, "/v1/sessions/drain", "")
	if drain.Code != 200 {
		t.Fatalf("drain status %d: %s", drain.Code, drain.Body)
	}
	if rec := get(hA, "/v1/sessions"); !bytes.Contains(rec.Body.Bytes(), []byte(`"sessions":[]`)) {
		t.Errorf("sessions remain after drain: %s", rec.Body)
	}

	sB, _, _ := newTestServer(t, cfg)
	hB := sB.Handler()
	restore := post(hB, "/v1/sessions/restore", drain.Body.String())
	if restore.Code != 200 {
		t.Fatalf("restore status %d: %s", restore.Code, restore.Body)
	}
	var res struct {
		Restored int `json:"restored"`
	}
	if err := json.Unmarshal(restore.Body.Bytes(), &res); err != nil || res.Restored != 2 {
		t.Fatalf("restored %d sessions (%v), want 2", res.Restored, err)
	}

	// The restored listing — including every monitor Stats float — must
	// be byte-identical to the pre-drain one.
	listB := get(hB, "/v1/sessions")
	if !bytes.Equal(listA.Body.Bytes(), listB.Body.Bytes()) {
		t.Fatalf("listing diverged across drain/restore:\n  before: %s\n  after:  %s", listA.Body, listB.Body)
	}

	// Continuing on the restored server matches an uninterrupted run.
	sC, _, _ := newTestServer(t, cfg)
	hC := sC.Handler()
	if rec := postNDJSON(hC, "/v1/stream?model=cpi&session=x", first); rec.Code != 200 {
		t.Fatalf("control first chunk: status %d", rec.Code)
	}
	want := postNDJSON(hC, "/v1/stream?model=cpi&session=x", second)
	got := postNDJSON(hB, "/v1/stream?model=cpi&session=x", second)
	if got.Code != 200 || want.Code != 200 {
		t.Fatalf("continuation status %d / %d", got.Code, want.Code)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Fatal("continuation after restore diverged from the uninterrupted run")
	}
}

// TestSessionsRestoreRejects pins the all-or-nothing restore contract.
func TestSessionsRestoreRejects(t *testing.T) {
	s, _, _ := newTestServer(t, streamConfig(1))
	h := s.Handler()

	// Unknown model: 404, nothing installed.
	body := `{"sessions":[{"model":"ghost","state":{"schema_version":1,"phases":{"calibration":32},"ph":{}}}]}`
	if rec := post(h, "/v1/sessions/restore", body); rec.Code != 404 {
		t.Errorf("unknown model: status %d, want 404 (%s)", rec.Code, rec.Body)
	}

	// Bad state version: 400, nothing installed.
	body = `{"sessions":[{"model":"cpi","state":{"schema_version":99,"phases":{"calibration":32},"ph":{}}}]}`
	if rec := post(h, "/v1/sessions/restore", body); rec.Code != 400 {
		t.Errorf("bad state version: status %d, want 400 (%s)", rec.Code, rec.Body)
	}

	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(get(h, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Streams.Sessions != 0 {
		t.Errorf("rejected restores installed %d sessions", snap.Streams.Sessions)
	}
}
