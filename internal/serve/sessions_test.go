package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/refute"
	"repro/internal/stream"
)

// fakeClock is a manually advanced clock for exact session-TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestStreamSessionQueryParam verifies ?session= keys independent
// timelines through one model: each session scores the full trace from
// section zero, and both show up in the metrics snapshot.
func TestStreamSessionQueryParam(t *testing.T) {
	s, _, _ := newTestServer(t, streamConfig(0))
	h := s.Handler()
	trace := streamTrace(40, 20, 100, 0, 7)

	var bodies [][]byte
	for _, sess := range []string{"alpha", "beta"} {
		rec := postNDJSON(h, "/v1/stream?model=cpi&session="+sess, trace)
		if rec.Code != 200 {
			t.Fatalf("session %s: status %d: %s", sess, rec.Code, rec.Body)
		}
		bodies = append(bodies, rec.Body.Bytes())
	}
	// Two timelines over the same model and trace must diverge only in
	// the summary's echoed session id.
	a := bytes.ReplaceAll(bodies[0], []byte(`"session":"alpha"`), []byte(`"session":"X"`))
	b := bytes.ReplaceAll(bodies[1], []byte(`"session":"beta"`), []byte(`"session":"X"`))
	if !bytes.Equal(a, b) {
		t.Error("same trace through two sessions produced different monitoring output")
	}

	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(get(h, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Streams.Sessions != 2 || snap.Streams.Scored != 80 {
		t.Errorf("sessions %d scored %d, want 2 and 80", snap.Streams.Sessions, snap.Streams.Scored)
	}
	if snap.Streams.Misses != 2 {
		t.Errorf("session table misses %d, want 2 (one per created session)", snap.Streams.Misses)
	}
	if len(snap.Streams.Shards) != 16 {
		t.Errorf("%d shard stats, want 16", len(snap.Streams.Shards))
	}
}

// TestStreamConcurrentSessionsIndependent is the regression test for
// the lock-held-across-response-write stall: with one session per model
// (the old scheme), a stalled producer of a model blocked every other
// producer of that model. Holding session a's lock — exactly what a
// stuck ingest does — must not stop a request for session b of the
// same model.
func TestStreamConcurrentSessionsIndependent(t *testing.T) {
	s, _, _ := newTestServer(t, streamConfig(1))
	h := s.Handler()
	trace := streamTrace(40, 20, 100, 0, 7)

	if rec := postNDJSON(h, "/v1/stream?model=cpi&session=a", trace); rec.Code != 200 {
		t.Fatalf("seed request: status %d: %s", rec.Code, rec.Body)
	}
	sess, ok := s.streams.tab.Get(sessionKey("cpi@v1", "a"))
	if !ok {
		t.Fatal("session a not in the table")
	}
	sess.mu.Lock() // a stalled producer of session a
	defer sess.mu.Unlock()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postNDJSON(h, "/v1/stream?model=cpi&session=b", trace) }()
	select {
	case rec := <-done:
		if rec.Code != 200 {
			t.Fatalf("session b: status %d: %s", rec.Code, rec.Body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session b blocked behind a stalled session a of the same model")
	}
}

// TestStreamSessionTTLEviction drives the injectable clock past the TTL
// and checks that the idle session is evicted, counted, and replaced by
// a fresh timeline on the next request.
func TestStreamSessionTTLEviction(t *testing.T) {
	clk := newFakeClock()
	cfg := streamConfig(0)
	cfg.SessionTTL = time.Minute
	cfg.Clock = clk.Now
	s, _, _ := newTestServer(t, cfg)
	h := s.Handler()
	trace := streamTrace(40, 20, 100, 0, 7)

	if rec := postNDJSON(h, "/v1/stream?model=cpi", trace); rec.Code != 200 {
		t.Fatalf("first request: status %d", rec.Code)
	}
	clk.Advance(2 * time.Minute)
	rec := postNDJSON(h, "/v1/stream?model=cpi", trace)
	if rec.Code != 200 {
		t.Fatalf("post-TTL request: status %d", rec.Code)
	}
	// The replacement session starts a fresh timeline: its summary must
	// report 40 scored sections, not 80 accumulated ones.
	var sum struct {
		Stats stream.Stats `json:"stats"`
	}
	lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
	if err := json.Unmarshal(lines[len(lines)-1], &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Stats.Scored != 40 {
		t.Errorf("scored %d after eviction, want 40 (fresh session)", sum.Stats.Scored)
	}

	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(get(h, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Streams.Sessions != 1 {
		t.Errorf("sessions %d, want 1", snap.Streams.Sessions)
	}
	if snap.Streams.Evictions < 1 {
		t.Errorf("evictions %d, want >= 1", snap.Streams.Evictions)
	}
}

// TestSessionsDrainRestoreRoundTrip is the replica-handoff acceptance
// test: drain live sessions out of one server, restore them into a
// fresh one, and (1) the restored listing's per-session Stats are
// byte-identical to the pre-drain listing, (2) continuing a timeline on
// the new server emits exactly what an uninterrupted server would.
func TestSessionsDrainRestoreRoundTrip(t *testing.T) {
	cfg := streamConfig(1)
	trace := streamTrace(130, 60, 90, 0.5, 42)
	first, second := splitLines(trace, 70)

	sA, _, _ := newTestServer(t, cfg)
	hA := sA.Handler()
	for _, sess := range []string{"", "x"} {
		if rec := postNDJSON(hA, "/v1/stream?model=cpi&session="+sess, first); rec.Code != 200 {
			t.Fatalf("session %q: status %d: %s", sess, rec.Code, rec.Body)
		}
	}
	listA := get(hA, "/v1/sessions")
	if listA.Code != 200 {
		t.Fatalf("sessions listing status %d", listA.Code)
	}

	drain := post(hA, "/v1/sessions/drain", "")
	if drain.Code != 200 {
		t.Fatalf("drain status %d: %s", drain.Code, drain.Body)
	}
	if rec := get(hA, "/v1/sessions"); !bytes.Contains(rec.Body.Bytes(), []byte(`"sessions":[]`)) {
		t.Errorf("sessions remain after drain: %s", rec.Body)
	}

	sB, _, _ := newTestServer(t, cfg)
	hB := sB.Handler()
	restore := post(hB, "/v1/sessions/restore", drain.Body.String())
	if restore.Code != 200 {
		t.Fatalf("restore status %d: %s", restore.Code, restore.Body)
	}
	var res struct {
		Restored int `json:"restored"`
	}
	if err := json.Unmarshal(restore.Body.Bytes(), &res); err != nil || res.Restored != 2 {
		t.Fatalf("restored %d sessions (%v), want 2", res.Restored, err)
	}

	// The restored listing — including every monitor Stats float — must
	// be byte-identical to the pre-drain one.
	listB := get(hB, "/v1/sessions")
	if !bytes.Equal(listA.Body.Bytes(), listB.Body.Bytes()) {
		t.Fatalf("listing diverged across drain/restore:\n  before: %s\n  after:  %s", listA.Body, listB.Body)
	}

	// Continuing on the restored server matches an uninterrupted run.
	sC, _, _ := newTestServer(t, cfg)
	hC := sC.Handler()
	if rec := postNDJSON(hC, "/v1/stream?model=cpi&session=x", first); rec.Code != 200 {
		t.Fatalf("control first chunk: status %d", rec.Code)
	}
	want := postNDJSON(hC, "/v1/stream?model=cpi&session=x", second)
	got := postNDJSON(hB, "/v1/stream?model=cpi&session=x", second)
	if got.Code != 200 || want.Code != 200 {
		t.Fatalf("continuation status %d / %d", got.Code, want.Code)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Fatal("continuation after restore diverged from the uninterrupted run")
	}
}

// corruptTrace renders an NDJSON trace whose samples from `badFrom` on
// carry a negative L1I miss rate — an impossible reading that violates
// the nonneg-L1IM relation and must drive the session to "refuted".
func corruptTrace(total, badFrom int) string {
	var b strings.Builder
	for i := 0; i < total; i++ {
		l1 := 0.01
		if i >= badFrom {
			l1 = -0.01
		}
		fmt.Fprintf(&b, `{"bench":"t","section":%d,"events":{"L1IM":%g,"L2M":0.001,"DtlbLdM":0.0001},"cpi":0.7}`+"\n", i, l1)
	}
	return b.String()
}

// TestSessionRefutationEndpoint covers GET /v1/sessions/{id}/refutation
// and the refutation rollup in both metrics surfaces: a clean session
// reports every relation consistent, a corrupted one is refuted with the
// violating relation named, and the per-relation violation counters land
// in /metrics and /v1/metrics.json.
func TestSessionRefutationEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, streamConfig(1))
	h := s.Handler()

	if rec := postNDJSON(h, "/v1/stream?model=cpi&session=good", streamTrace(40, 20, 100, 0, 7)); rec.Code != 200 {
		t.Fatalf("clean stream: status %d: %s", rec.Code, rec.Body)
	}
	bad := postNDJSON(h, "/v1/stream?model=cpi", corruptTrace(40, 0))
	if bad.Code != 200 {
		t.Fatalf("corrupt stream: status %d: %s", bad.Code, bad.Body)
	}
	// The corrupt stream's summary line already carries the verdict.
	if !bytes.Contains(bad.Body.Bytes(), []byte(`"verdict":"refuted"`)) {
		t.Errorf("corrupt stream summary lacks the refuted verdict: %s", bad.Body)
	}

	var rep refutationResponse
	rec := get(h, "/v1/sessions/good/refutation?model=cpi")
	if rec.Code != 200 {
		t.Fatalf("clean refutation report: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Refutation.Verdict != refute.Consistent || len(rep.Refutation.Relations) == 0 {
		t.Errorf("clean session: verdict %q over %d relations, want consistent over >0",
			rep.Refutation.Verdict, len(rep.Refutation.Relations))
	}

	// "-" addresses the model's default session, where the corrupt trace
	// went.
	rec = get(h, "/v1/sessions/-/refutation?model=cpi")
	if rec.Code != 200 {
		t.Fatalf("default-session refutation report: status %d: %s", rec.Code, rec.Body)
	}
	rep = refutationResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Refutation.Verdict != refute.Refuted {
		t.Errorf("corrupt session verdict %q, want refuted", rep.Refutation.Verdict)
	}
	found := false
	for _, rel := range rep.Refutation.Relations {
		if rel.Name == "nonneg-L1IM" {
			found = true
			if rel.Verdict != refute.Refuted || rel.Violations != 40 {
				t.Errorf("nonneg-L1IM: verdict %q with %d violations, want refuted with 40",
					rel.Verdict, rel.Violations)
			}
		} else if rel.Violations != 0 {
			t.Errorf("relation %s has %d violations, want 0", rel.Name, rel.Violations)
		}
	}
	if !found {
		t.Error("nonneg-L1IM missing from the report")
	}

	if rec := get(h, "/v1/sessions/ghost/refutation?model=cpi"); rec.Code != 404 {
		t.Errorf("unknown session: status %d, want 404", rec.Code)
	}
	if rec := get(h, "/v1/sessions/-/refutation?model=ghost"); rec.Code != 404 {
		t.Errorf("unknown model: status %d, want 404", rec.Code)
	}

	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(get(h, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Streams.RefuteConsistent != 1 || snap.Streams.RefuteRefuted != 1 {
		t.Errorf("verdict rollup %d consistent / %d refuted, want 1 / 1",
			snap.Streams.RefuteConsistent, snap.Streams.RefuteRefuted)
	}
	if snap.Streams.RelationViolations["nonneg-L1IM"] != 40 {
		t.Errorf("relation violation rollup %v, want nonneg-L1IM=40", snap.Streams.RelationViolations)
	}
	text := get(h, "/metrics").Body.String()
	for _, line := range []string{
		`serve_stream_refute_sessions{verdict="consistent"} 1`,
		`serve_stream_refute_sessions{verdict="refuted"} 1`,
		`serve_stream_refute_violations_total 40`,
		`serve_stream_refute_relation_violations_total{relation="nonneg-L1IM"} 40`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics text missing %q", line)
		}
	}
}

// TestRefutationDrainRestoreDifferential is the differential acceptance
// test for refutation state handoff: a session whose counter stream goes
// bad mid-trace is drained *while a relation's violation streak is open*,
// restored into a fresh server, and fed the rest of the trace. Its
// continuation response and its full refutation report must be
// byte-identical to an uninterrupted control run.
func TestRefutationDrainRestoreDifferential(t *testing.T) {
	cfg := streamConfig(1)
	first, second := splitLines(corruptTrace(60, 20), 30)

	sA, _, _ := newTestServer(t, cfg)
	hA := sA.Handler()
	if rec := postNDJSON(hA, "/v1/stream?model=cpi&session=r", first); rec.Code != 200 {
		t.Fatalf("first chunk: status %d: %s", rec.Code, rec.Body)
	}
	drain := post(hA, "/v1/sessions/drain", "")
	if drain.Code != 200 {
		t.Fatalf("drain status %d: %s", drain.Code, drain.Body)
	}
	// The open streak must be in the drained state (second window, samples
	// 16..29, contains corrupt samples and is violated but not yet refuted).
	if !bytes.Contains(drain.Body.Bytes(), []byte(`"refutation":{`)) {
		t.Fatalf("drained state carries no refutation snapshot: %s", drain.Body)
	}

	sB, _, _ := newTestServer(t, cfg)
	hB := sB.Handler()
	if rec := post(hB, "/v1/sessions/restore", drain.Body.String()); rec.Code != 200 {
		t.Fatalf("restore status %d: %s", rec.Code, rec.Body)
	}

	sC, _, _ := newTestServer(t, cfg)
	hC := sC.Handler()
	if rec := postNDJSON(hC, "/v1/stream?model=cpi&session=r", first); rec.Code != 200 {
		t.Fatalf("control first chunk: status %d", rec.Code)
	}

	got := postNDJSON(hB, "/v1/stream?model=cpi&session=r", second)
	want := postNDJSON(hC, "/v1/stream?model=cpi&session=r", second)
	if got.Code != 200 || want.Code != 200 {
		t.Fatalf("continuation status %d / %d", got.Code, want.Code)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Fatalf("continuation diverged after restore:\n  restored: %s\n  control:  %s", got.Body, want.Body)
	}

	refB := get(hB, "/v1/sessions/r/refutation?model=cpi")
	refC := get(hC, "/v1/sessions/r/refutation?model=cpi")
	if refB.Code != 200 || refC.Code != 200 {
		t.Fatalf("refutation report status %d / %d", refB.Code, refC.Code)
	}
	if !bytes.Equal(refB.Body.Bytes(), refC.Body.Bytes()) {
		t.Fatalf("refutation report diverged after restore:\n  restored: %s\n  control:  %s", refB.Body, refC.Body)
	}
	var rep refutationResponse
	if err := json.Unmarshal(refB.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Refutation.Verdict != refute.Refuted {
		t.Errorf("verdict %q after full corrupt trace, want refuted", rep.Refutation.Verdict)
	}
}

// TestSessionsRestoreRejects pins the all-or-nothing restore contract.
func TestSessionsRestoreRejects(t *testing.T) {
	s, _, _ := newTestServer(t, streamConfig(1))
	h := s.Handler()

	// Unknown model: 404, nothing installed.
	body := `{"sessions":[{"model":"ghost","state":{"schema_version":1,"phases":{"calibration":32},"ph":{}}}]}`
	if rec := post(h, "/v1/sessions/restore", body); rec.Code != 404 {
		t.Errorf("unknown model: status %d, want 404 (%s)", rec.Code, rec.Body)
	}

	// Bad state version: 400, nothing installed.
	body = `{"sessions":[{"model":"cpi","state":{"schema_version":99,"phases":{"calibration":32},"ph":{}}}]}`
	if rec := post(h, "/v1/sessions/restore", body); rec.Code != 400 {
		t.Errorf("bad state version: status %d, want 400 (%s)", rec.Code, rec.Body)
	}

	var snap struct {
		Streams streamsSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(get(h, "/v1/metrics.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Streams.Sessions != 0 {
		t.Errorf("rejected restores installed %d sessions", snap.Streams.Sessions)
	}
}
