package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/march"
)

// newMachineTaggedServer registers one tree tagged "core2" and one
// untagged tree, so machine-count surfaces have something to report.
func newMachineTaggedServer(t *testing.T) (*Server, http.Handler) {
	t.Helper()
	d := perfData(1200, 5)
	tagged := buildTree(t, d)
	tagged.Machine = "core2"
	plain := buildTree(t, d)
	reg := NewRegistry()
	if err := reg.Register("cpi", "v1", tagged, ""); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("cpi", "v2", tagged, ""); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("other", "v1", plain, ""); err != nil {
		t.Fatal(err)
	}
	s := New(reg, DefaultConfig())
	return s, s.Handler()
}

// TestMachinesList: GET /v1/machines returns every march preset with its
// headline parameters and the registered-model counts per machine.
func TestMachinesList(t *testing.T) {
	_, h := newMachineTaggedServer(t)
	rec := get(h, "/v1/machines")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Machines []struct {
			Name        string  `json:"name"`
			Description string  `json:"description"`
			IssueWidth  float64 `json:"issue_width"`
			Models      int     `json:"models"`
		} `json:"machines"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := march.Names()
	if len(resp.Machines) != len(want) {
		t.Fatalf("listed %d machines, want %d presets", len(resp.Machines), len(want))
	}
	byName := map[string]int{}
	for _, m := range resp.Machines {
		byName[m.Name] = m.Models
		if m.Description == "" || m.IssueWidth <= 0 {
			t.Errorf("machine %s listed without description/width: %+v", m.Name, m)
		}
	}
	for _, n := range want {
		if _, ok := byName[n]; !ok {
			t.Errorf("preset %s missing from listing", n)
		}
	}
	if byName["core2"] != 2 {
		t.Errorf("core2 lists %d models, want 2", byName["core2"])
	}
	if byName["nehalem"] != 0 {
		t.Errorf("nehalem lists %d models, want 0", byName["nehalem"])
	}
}

// TestMachineDetail: the per-machine view returns the full spec — a
// document ReadJSON would accept back, closing the round trip with
// -march-file.
func TestMachineDetail(t *testing.T) {
	_, h := newMachineTaggedServer(t)
	rec := get(h, "/v1/machines/nehalem")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	spec, err := march.ReadJSON(rec.Body)
	if err != nil {
		t.Fatalf("detail response is not a valid machine spec: %v", err)
	}
	if spec.Name != "nehalem" {
		t.Errorf("detail spec name %q, want nehalem", spec.Name)
	}

	rec = get(h, "/v1/machines/pentium-pro")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown machine: status %d, want 404", rec.Code)
	}
	var e struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Code != ErrCodeNotFound {
		t.Errorf("unknown machine error envelope = %s", rec.Body)
	}

	rec = post(h, "/v1/machines", "{}")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/machines: status %d, want 405", rec.Code)
	}
}

// TestMachineTagInModelSurfaces: the model's machine tag must appear in
// the listing, the detail view, the metrics snapshot (JSON and text) and
// the stream summary line.
func TestMachineTagInModelSurfaces(t *testing.T) {
	_, h := newMachineTaggedServer(t)

	rec := get(h, "/v1/models/cpi@v1")
	if rec.Code != http.StatusOK {
		t.Fatalf("model detail status %d", rec.Code)
	}
	var detail struct {
		Machine string `json:"machine"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Machine != "core2" {
		t.Errorf("model detail machine = %q, want core2", detail.Machine)
	}

	rec = get(h, "/v1/metrics.json")
	var metrics struct {
		Machines map[string]int `json:"machines"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Machines["core2"] != 2 || metrics.Machines[""] != 1 {
		t.Errorf("metrics machines = %v, want core2:2 and untagged:1", metrics.Machines)
	}

	rec = get(h, "/metrics")
	if body := rec.Body.String(); !strings.Contains(body, `serve_models_by_machine{machine="core2"} 2`) {
		t.Errorf("text metrics missing machine line:\n%s", body)
	}

	rec = post(h, "/v1/stream?model=cpi", `{"events":{"L1IM":0.01,"L2M":0.001,"DtlbLdM":0.0001},"cpi":1.0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", rec.Code, rec.Body)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var summary struct {
		Type    string `json:"type"`
		Machine string `json:"machine"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Type != "summary" || summary.Machine != "core2" {
		t.Errorf("stream summary = %+v, want type=summary machine=core2", summary)
	}
}
