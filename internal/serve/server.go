// Package serve exposes trained CPI models as an HTTP JSON service: the
// paper's train-once / analyze-many oracle packaged behind a network API.
// A Registry maps (name, version) to any model.Model; the Server answers
//
//	POST /v1/predict   single + batch CPI prediction, optional per-event
//	                   contribution breakdown (coef*X/CPI, the paper's Eq. 4)
//	POST /v1/classify  leaf id + decision path — the paper's performance
//	                   classes (single-tree models only)
//	POST /v1/stream    NDJSON sample ingestion into a persistent monitor
//	                   session (phase boundaries + drift alarms), keyed
//	                   by model ref and the ?session= query parameter
//	GET  /v1/sessions  live monitor session listing with per-session stats
//	POST /v1/sessions/drain    remove all sessions and return their
//	                   serialized state (replica handoff, step 1)
//	POST /v1/sessions/restore  install a drained state dump (step 2)
//	GET  /v1/sessions/{id}/refutation  one session's per-relation
//	                   counter-consistency report ("-" = default session,
//	                   model addressed with ?model=)
//	GET  /v1/models    registry listing with model descriptions
//	GET  /v1/models/{ref}  one model's detail: description, evaluator
//	                   kind, source format, registered versions
//	GET  /v1/machines  the march machine-preset registry, with per-machine
//	                   registered-model counts
//	GET  /v1/machines/{name}  one machine's full declarative spec (the
//	                   same JSON document -march-file accepts)
//	GET  /v1/metrics.json  machine-readable counters: per-endpoint
//	                   request/error counts, latency histogram buckets,
//	                   cache and stream stats
//	GET  /healthz      liveness + model count
//	GET  /metrics      the same counters as a text exposition
//
// Every error response shares the envelope
// {"error":{"code","message"}} (see errors.go); clients branch on the
// stable code, never on message wording.
//
// The registry compiles every Compilable model at registration (and
// binary model files load pre-compiled), so the hot path evaluates the
// flat-array forms; prediction-only batches additionally run the
// zero-allocation PredictInto kernel. Both are bit-identical to the
// pointer-walk models, and batch fan-out over internal/parallel keeps
// responses byte-identical at any worker count; the optional LRU cache
// keys on exact value bits by default, so it can never change a
// response either. Request bodies are size-capped
// and handlers time-limited (except the streaming /v1/stream route,
// which flushes incrementally instead — see Handler), making the hot
// path safe to expose.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mtree"
	"repro/internal/parallel"
	"repro/internal/shard"
	"repro/internal/stream"
)

// Config holds the service knobs.
type Config struct {
	// Jobs is the worker count for batch prediction (0 = all cores,
	// 1 = serial). Responses are identical at any value.
	Jobs int
	// CacheSize bounds the LRU prediction cache (entries); 0 disables
	// caching.
	CacheSize int
	// CacheQuantum quantizes feature values before cache keying; 0 (the
	// default) keys on exact bits so a hit can never change a response.
	CacheQuantum float64
	// MaxBodyBytes caps request body size.
	MaxBodyBytes int64
	// MaxBatch caps the number of rows per request.
	MaxBatch int
	// RequestTimeout bounds handler time per request; 0 disables. It is
	// applied per route and does not cover /v1/stream, whose incremental
	// NDJSON response and stateful ingestion make a buffered timeout
	// wrapper wrong (see Handler).
	RequestTimeout time.Duration
	// Stream tunes the /v1/stream monitor sessions (window, buffer,
	// backpressure policy, phase and drift detectors). Its Jobs field is
	// ignored: stream scoring follows the service-wide Jobs setting.
	Stream stream.Config
	// SessionShards is the stripe count of the stream session table,
	// rounded up to a power of two (0 = 16).
	SessionShards int
	// SessionTTL evicts stream sessions idle for this long; 0 keeps
	// sessions forever (the pre-TTL behavior).
	SessionTTL time.Duration
	// Clock is the time source for session TTL bookkeeping; nil means
	// time.Now. Tests inject a fake clock to make eviction exact.
	Clock func() time.Time
}

// DefaultConfig returns production-leaning defaults.
func DefaultConfig() Config {
	return Config{
		Jobs:           0,
		CacheSize:      4096,
		CacheQuantum:   0,
		MaxBodyBytes:   1 << 20, // 1 MiB
		MaxBatch:       4096,
		RequestTimeout: 10 * time.Second,
		Stream:         stream.DefaultConfig(),
		SessionShards:  16,
		SessionTTL:     15 * time.Minute,
	}
}

// Server serves the models in a Registry over HTTP.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *PredictionCache // nil when disabled
	metrics *metricsRegistry
	streams *streamSessions
}

var routes = []string{
	"/v1/predict", "/v1/classify", "/v1/stream",
	"/v1/sessions", "/v1/sessions/drain", "/v1/sessions/restore",
	"/v1/sessions/{id}/refutation",
	"/v1/models", "/v1/models/{ref}",
	"/v1/machines", "/v1/machines/{name}", "/v1/metrics.json",
	"/healthz", "/metrics",
}

// routeMethods maps each route to its Allow header value; requests with
// any other method get a JSON 405 instead of a mux-level miss.
var routeMethods = map[string]string{
	"/v1/predict":                  "POST",
	"/v1/classify":                 "POST",
	"/v1/stream":                   "POST",
	"/v1/sessions":                 "GET, HEAD",
	"/v1/sessions/drain":           "POST",
	"/v1/sessions/restore":         "POST",
	"/v1/sessions/{id}/refutation": "GET, HEAD",
	"/v1/models":                   "GET, HEAD",
	"/v1/models/{ref}":             "GET, HEAD",
	"/v1/machines":                 "GET, HEAD",
	"/v1/machines/{name}":          "GET, HEAD",
	"/v1/metrics.json":             "GET, HEAD",
	"/healthz":                     "GET, HEAD",
	"/metrics":                     "GET, HEAD",
}

// New creates a Server over a registry.
func New(reg *Registry, cfg Config) *Server {
	s := &Server{cfg: cfg, reg: reg}
	s.streams = newStreamSessions(shard.Options{
		Shards: cfg.SessionShards,
		TTL:    cfg.SessionTTL,
		Now:    cfg.Clock,
	})
	if cfg.CacheSize > 0 {
		s.cache = NewPredictionCache(cfg.CacheSize)
	}
	s.metrics = newMetricsRegistry(routes, s.cache, reg.Len, reg.ModelsByMachine, s.streams)
	return s
}

// Handler returns the service's HTTP handler: the routed endpoints, each
// wrapped in per-endpoint instrumentation and (except /v1/stream) the
// request timeout.
//
// /v1/stream is deliberately outside http.TimeoutHandler: that wrapper
// buffers the entire response, which would defeat the endpoint's
// incremental NDJSON delivery, and its 503 cannot undo monitor state the
// ingested prefix already advanced — a client retrying the same batch
// after a timeout would double-ingest into a non-idempotent session.
// The route is still bounded by MaxBodyBytes, MaxBatch and the server's
// read timeouts.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	withTimeout := func(h http.Handler) http.Handler {
		if s.cfg.RequestTimeout > 0 {
			return http.TimeoutHandler(h, s.cfg.RequestTimeout, timeoutBody)
		}
		return h
	}
	mux.Handle("POST /v1/predict", withTimeout(s.instrument("/v1/predict", s.handlePredict)))
	mux.Handle("POST /v1/classify", withTimeout(s.instrument("/v1/classify", s.handleClassify)))
	mux.Handle("POST /v1/stream", s.instrument("/v1/stream", s.handleStream))
	mux.Handle("GET /v1/sessions", withTimeout(s.instrument("/v1/sessions", s.handleSessions)))
	mux.Handle("POST /v1/sessions/drain", withTimeout(s.instrument("/v1/sessions/drain", s.handleSessionsDrain)))
	mux.Handle("POST /v1/sessions/restore", withTimeout(s.instrument("/v1/sessions/restore", s.handleSessionsRestore)))
	mux.Handle("GET /v1/sessions/{id}/refutation", withTimeout(s.instrument("/v1/sessions/{id}/refutation", s.handleSessionRefutation)))
	mux.Handle("GET /v1/models", withTimeout(s.instrument("/v1/models", s.handleModels)))
	mux.Handle("GET /v1/models/{ref}", withTimeout(s.instrument("/v1/models/{ref}", s.handleModelDetail)))
	mux.Handle("GET /v1/machines", withTimeout(s.instrument("/v1/machines", s.handleMachines)))
	mux.Handle("GET /v1/machines/{name}", withTimeout(s.instrument("/v1/machines/{name}", s.handleMachineDetail)))
	mux.Handle("GET /v1/metrics.json", withTimeout(s.instrument("/v1/metrics.json", s.handleMetricsJSON)))
	mux.Handle("GET /healthz", withTimeout(s.instrument("/healthz", s.handleHealthz)))
	mux.Handle("GET /metrics", withTimeout(s.instrument("/metrics", s.handleMetrics)))
	// Method-generic fallbacks: the mux routes a wrong-method request
	// here instead of its own text/plain 405, so the rejection carries
	// the API's JSON error shape, an Allow header, and metrics.
	for route, allow := range routeMethods {
		mux.Handle(route, withTimeout(s.instrument(route, methodNotAllowed(allow))))
	}
	return mux
}

// methodNotAllowed rejects with 405 and the route's Allow header.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed,
			"method %s not allowed; allowed: %s", r.Method, allow)
	}
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers behind the
// recorder can push partial NDJSON responses to the client.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the endpoint's request/error counters,
// in-flight gauge and latency histogram.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	em := s.metrics.endpoints[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		em.requests.Add(1)
		em.inFlight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			em.inFlight.Add(-1)
			em.latency.observe(time.Since(start))
			if rec.status >= 400 {
				em.errors.Add(1)
			}
		}()
		h(rec, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// predictRequest addresses a model and carries instances in one of three
// forms: a single full-width row, a batch of rows, or named event maps
// ("events") that the server expands against the model's schema.
type predictRequest struct {
	Model string `json:"model"`
	// Row is one full-width instance (len == model attr count, target
	// column ignored).
	Row []float64 `json:"row,omitempty"`
	// Rows is a batch of full-width instances.
	Rows [][]float64 `json:"rows,omitempty"`
	// Events is a batch of name->rate maps; absent events default to 0.
	Events []map[string]float64 `json:"events,omitempty"`
	// Contributions requests the per-event CPI breakdown per row.
	Contributions bool `json:"contributions,omitempty"`
}

type predictResponse struct {
	Model         string                 `json:"model"`
	N             int                    `json:"n"`
	Predictions   []float64              `json:"predictions"`
	Contributions [][]model.Contribution `json:"contributions,omitempty"`
}

// decodeBody decodes a size-capped JSON body, distinguishing oversized
// bodies (413) from malformed ones (400).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrCodeTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		} else {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest,
				"malformed request body: %v", err)
		}
		return false
	}
	return true
}

// resolveRows turns whichever instance form the request used into
// full-width dataset instances validated against the model's schema.
func resolveRows(req *predictRequest, desc model.Description) ([]dataset.Instance, error) {
	forms := 0
	if req.Row != nil {
		forms++
	}
	if req.Rows != nil {
		forms++
	}
	if req.Events != nil {
		forms++
	}
	if forms != 1 {
		return nil, fmt.Errorf(`provide exactly one of "row", "rows" or "events"`)
	}
	width := len(desc.AttrNames)
	var rows []dataset.Instance
	switch {
	case req.Row != nil:
		rows = []dataset.Instance{req.Row}
	case req.Rows != nil:
		rows = make([]dataset.Instance, len(req.Rows))
		for i, r := range req.Rows {
			rows[i] = r
		}
	default:
		idx := make(map[string]int, width)
		for i, n := range desc.AttrNames {
			idx[n] = i
		}
		rows = make([]dataset.Instance, len(req.Events))
		for i, ev := range req.Events {
			row := make(dataset.Instance, width)
			for name, v := range ev {
				j, ok := idx[name]
				if !ok {
					return nil, fmt.Errorf("row %d: unknown event %q", i, name)
				}
				row[j] = v
			}
			rows[i] = row
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no instances in request")
	}
	for i, r := range rows {
		if len(r) != width {
			return nil, fmt.Errorf("row %d has %d values, model schema has %d columns (including target %q)",
				i, len(r), width, desc.Target)
		}
	}
	return rows, nil
}

// lookup resolves the request's model reference, writing the HTTP error
// itself on failure.
func (s *Server) lookup(w http.ResponseWriter, ref string) *Entry {
	if ref == "" {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, `missing "model" reference`)
		return nil
	}
	e, err := s.reg.Get(ref)
	if err != nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "%v", err)
		return nil
	}
	return e
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	e := s.lookup(w, req.Model)
	if e == nil {
		return
	}
	rows, err := resolveRows(&req, e.Model.Describe())
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	if len(rows) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, ErrCodeTooLarge,
			"batch of %d rows exceeds limit %d", len(rows), s.cfg.MaxBatch)
		return
	}

	resp := predictResponse{Model: e.Ref(), N: len(rows)}
	if req.Contributions {
		resp.Contributions = make([][]model.Contribution, len(rows))
	}
	ref := e.Ref()
	// Prediction-only requests against a compiled model take the batch
	// kernel: one PredictInto sweep (chunked across workers for large
	// batches) instead of per-row interface dispatch. The kernel's output
	// is bit-identical to per-row Predict, so which path runs is
	// unobservable in the response.
	if bp, ok := e.Model.(model.BatchPredictor); ok && !req.Contributions {
		resp.Predictions = s.predictBatch(bp, ref, rows)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Ordered fan-out: parallel.Map returns results in input order, so
	// the response is byte-identical at any worker count. The cache is
	// consulted per row; with the default exact-bits keying a hit returns
	// the same float the model would produce. Keys are assembled in a
	// per-row stack buffer (AppendKey) so a cache hit costs zero
	// allocations; only inserting a fresh entry copies the key.
	// Request-sized batches are usually far below the point where fan-out
	// pays for itself; ForItems keeps them on the serial path.
	resp.Predictions, _ = parallel.Map(parallel.Config{Jobs: s.cfg.Jobs}.ForItems(len(rows)), rows,
		func(i int, row dataset.Instance) (float64, error) {
			if req.Contributions {
				resp.Contributions[i] = e.Model.Contributions(row)
			}
			var kb [256]byte
			var key []byte
			if s.cache != nil {
				key = AppendKey(kb[:0], ref, row, s.cfg.CacheQuantum)
				if v, ok := s.cache.GetBytes(key); ok {
					return v, nil
				}
			}
			v := e.Model.Predict(row)
			s.cache.PutBytes(key, v)
			return v, nil
		})
	writeJSON(w, http.StatusOK, resp)
}

// predictBatch answers a prediction-only request through the model's
// batch kernel. Without a cache the kernel runs straight into the
// response buffer; with one, rows are probed first and the kernel runs
// only over the misses, which are then scattered back and inserted.
// Either way dst[i] is bit-identical to e.Model.Predict(rows[i]), so
// the cache keeps its never-changes-a-response property.
func (s *Server) predictBatch(bp model.BatchPredictor, ref string, rows []dataset.Instance) []float64 {
	out := make([]float64, len(rows))
	if s.cache == nil {
		s.kernelInto(bp, out, rows)
		return out
	}
	var kb [256]byte
	missIdx := make([]int, 0, len(rows))
	missRows := make([]dataset.Instance, 0, len(rows))
	for i, row := range rows {
		key := AppendKey(kb[:0], ref, row, s.cfg.CacheQuantum)
		if v, ok := s.cache.GetBytes(key); ok {
			out[i] = v
			continue
		}
		missIdx = append(missIdx, i)
		missRows = append(missRows, row)
	}
	if len(missRows) == 0 {
		return out
	}
	miss := make([]float64, len(missRows))
	s.kernelInto(bp, miss, missRows)
	for j, i := range missIdx {
		out[i] = miss[j]
		key := AppendKey(kb[:0], ref, rows[i], s.cfg.CacheQuantum)
		s.cache.PutBytes(key, miss[j])
	}
	return out
}

// kernelInto runs the batch kernel over dst/rows, splitting large
// batches into contiguous per-worker chunks. Chunks write disjoint dst
// ranges and every row's arithmetic is independent, so the result is
// identical at any worker count — the same determinism contract the
// per-row fan-out keeps.
func (s *Server) kernelInto(bp model.BatchPredictor, dst []float64, rows []dataset.Instance) {
	cfg := parallel.Config{Jobs: s.cfg.Jobs}.ForItems(len(rows))
	workers := cfg.Workers()
	if workers <= 1 {
		bp.PredictInto(dst, rows)
		return
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	chunks := make([][2]int, workers)
	for w := range chunks {
		chunks[w] = [2]int{w * len(rows) / workers, (w + 1) * len(rows) / workers}
	}
	_, _ = parallel.Map(cfg, chunks, func(_ int, c [2]int) (struct{}, error) {
		bp.PredictInto(dst[c[0]:c[1]], rows[c[0]:c[1]])
		return struct{}{}, nil
	})
}

// classifier is the optional classification surface: single trees route
// an instance to one leaf (the paper's performance class); ensembles do
// not, and report 422 at /v1/classify.
type classifier interface {
	Classify(row dataset.Instance) (*mtree.Node, []mtree.PathStep)
}

type classifyStep struct {
	Event     string  `json:"event"`
	Threshold float64 `json:"threshold"`
	Above     bool    `json:"above"`
}

type classification struct {
	LeafID int `json:"leaf_id"`
	// Path is the decision path from the root; steps with above=true mark
	// the high-event-count tests that define the class.
	Path []classifyStep `json:"path"`
	// Prediction is the leaf model's (unsmoothed) estimate, the quantity
	// the paper's Eq. 4 decomposes.
	Prediction float64 `json:"prediction"`
	// TrainN and TrainMean describe the leaf's training population.
	TrainN    int     `json:"train_n"`
	TrainMean float64 `json:"train_mean"`
}

type classifyResponse struct {
	Model   string           `json:"model"`
	N       int              `json:"n"`
	Classes []classification `json:"classes"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Contributions {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, `"contributions" is a /v1/predict option`)
		return
	}
	e := s.lookup(w, req.Model)
	if e == nil {
		return
	}
	cl, ok := e.Model.(classifier)
	if !ok {
		writeError(w, http.StatusUnprocessableEntity, ErrCodeUnsupported,
			"model %s (%s) does not expose leaf classes; classify requires a single tree",
			e.Ref(), e.Model.Describe().Kind)
		return
	}
	rows, err := resolveRows(&req, e.Model.Describe())
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	if len(rows) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, ErrCodeTooLarge,
			"batch of %d rows exceeds limit %d", len(rows), s.cfg.MaxBatch)
		return
	}

	resp := classifyResponse{Model: e.Ref(), N: len(rows)}
	resp.Classes, _ = parallel.Map(parallel.Config{Jobs: s.cfg.Jobs}.ForItems(len(rows)), rows,
		func(i int, row dataset.Instance) (classification, error) {
			leaf, path := cl.Classify(row)
			c := classification{
				LeafID:     leaf.LeafID,
				Prediction: leaf.Model.Predict(row),
				TrainN:     leaf.N,
				TrainMean:  leaf.Mean,
				Path:       make([]classifyStep, len(path)),
			}
			for j, st := range path {
				c.Path[j] = classifyStep{Event: st.Name, Threshold: st.Threshold, Above: st.Above}
			}
			return c, nil
		})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.reg.List()})
}

// modelDetail is the GET /v1/models/{ref} response: the listing entry
// plus everything a traffic generator needs to shape payloads for the
// model — the schema to synthesize rows against, whether the hot path
// runs the compiled kernel, and whether /v1/classify will answer.
type modelDetail struct {
	EntryInfo
	// Evaluator is "compiled" (flat-array walk + batch kernel) or
	// "plain" (pointer-walk fallback).
	Evaluator string `json:"evaluator"`
	// BatchKernel reports whether prediction-only batches take the
	// zero-allocation PredictInto path.
	BatchKernel bool `json:"batch_kernel"`
	// Classifiable reports whether /v1/classify answers for this model
	// (single trees only).
	Classifiable bool `json:"classifiable"`
	// Format is the source file format ("json", "binary"), or empty for
	// models registered in-process.
	Format string `json:"format,omitempty"`
	// Versions lists every registered version of this name, sorted.
	Versions []string `json:"versions"`
}

func (s *Server) handleModelDetail(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("ref")
	e, err := s.reg.Get(ref)
	if err != nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "%v", err)
		return
	}
	_, kernel := e.Model.(model.BatchPredictor)
	_, classifiable := e.Model.(classifier)
	evaluator := "plain"
	if kernel {
		evaluator = "compiled"
	}
	writeJSON(w, http.StatusOK, modelDetail{
		EntryInfo: EntryInfo{
			Name:        e.Name,
			Version:     e.Version,
			Latest:      s.reg.Latest(e.Name) == e.Version,
			Path:        e.Path,
			Description: e.Model.Describe(),
		},
		Evaluator:    evaluator,
		BatchKernel:  kernel,
		Classifiable: classifiable,
		Format:       e.Format,
		Versions:     s.reg.Versions(e.Name),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": s.reg.Len(),
	})
}

// handleMetricsJSON is the machine-readable counter surface: the full
// snapshot including per-endpoint latency histogram buckets, which
// lets a client (cmd/loadgen) cross-validate its own counts against
// the server's.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.metrics.snapshot())
}

// handleMetrics renders the same snapshot as a flat text exposition
// (one `name{labels} value` line per counter) for eyeballs and
// scrapers that want text; /v1/metrics.json is the structured form.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(s.metrics.snapshot().renderText())
}
