package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Every error the API emits — handler rejections, the timeout wrapper,
// the mux's method fallbacks — shares one JSON envelope:
//
//	{"error":{"code":"<stable-code>","message":"<human detail>"}}
//
// The code is the machine-readable half of the contract: clients (and
// cmd/loadgen's error-budget accounting) branch on it, while the
// message stays free to change wording. Codes are deliberately coarse —
// one per failure family, not per call site — so a client switch
// statement stays short and adding a handler never forces a new code.
const (
	// ErrCodeBadRequest: malformed body, schema mismatch, missing or
	// contradictory fields (HTTP 400).
	ErrCodeBadRequest = "bad_request"
	// ErrCodeNotFound: unknown model name or version (HTTP 404).
	ErrCodeNotFound = "not_found"
	// ErrCodeMethodNotAllowed: wrong HTTP method on a known route
	// (HTTP 405, with an Allow header).
	ErrCodeMethodNotAllowed = "method_not_allowed"
	// ErrCodeTooLarge: body over MaxBodyBytes or batch over MaxBatch
	// (HTTP 413).
	ErrCodeTooLarge = "payload_too_large"
	// ErrCodeUnsupported: the model cannot answer this endpoint, e.g.
	// classify on an ensemble (HTTP 422).
	ErrCodeUnsupported = "unsupported"
	// ErrCodeTimeout: the request exceeded RequestTimeout (HTTP 503,
	// written by http.TimeoutHandler with a pre-rendered envelope).
	ErrCodeTimeout = "timeout"
	// ErrCodeInternal: server-side failure (HTTP 500).
	ErrCodeInternal = "internal"
	// ErrCodeStreamAborted: in-band NDJSON error line on /v1/stream
	// after the 200 header is already out.
	ErrCodeStreamAborted = "stream_aborted"
)

// apiError is the envelope payload.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorEnvelope is the full error response body.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// timeoutBody is the envelope http.TimeoutHandler writes on 503; it
// must be pre-rendered because the wrapper takes a fixed string.
var timeoutBody = func() string {
	b, _ := json.Marshal(errorEnvelope{Error: apiError{
		Code: ErrCodeTimeout, Message: "request timed out"}})
	return string(b)
}()

// writeError writes the unified envelope with the given status, code
// and formatted message.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: apiError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
