package modelio

import (
	"bytes"
	"testing"
)

// FuzzModelReadBinary hammers the model loader with arbitrary bytes —
// mostly mutations of real binary model files (the checked-in corpus
// under testdata/fuzz/ holds a valid tree, a valid ensemble and several
// corruptions). The loader must never panic, and any model it accepts
// must re-persist in the binary format to a stable fixed point
// (write→read→write byte-identical) — the structural validation in
// mtree/ensemble ReadBinary is what stands between a flipped section
// table and an out-of-bounds tree walk, and this target is its
// adversarial workout.
func FuzzModelReadBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("M5MB"))
	f.Add([]byte("M5MB\x01\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte(`{"kind":"bagged-m5","trees":[]}`))
	f.Add([]byte(`not a model`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := Write(&first, m, FormatBinary); err != nil {
			t.Fatalf("accepted model does not write binary: %v", err)
		}
		again, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of persisted accepted model failed: %v", err)
		}
		var second bytes.Buffer
		if err := Write(&second, again, FormatBinary); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("binary write->read->write is not a fixed point")
		}
	})
}
