package modelio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/model"
	"repro/internal/mtree"
)

func trainData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{{Name: "CPI"}, {Name: "L1IM"}, {Name: "L2M"}}, 0)
	for i := 0; i < n; i++ {
		a := rng.Float64()
		b := rng.Float64()
		y := 0.5 + 2*a
		if b > 0.5 {
			y = 1.5 + 4*a
		}
		d.MustAppend(dataset.Instance{y + 0.05*rng.NormFloat64(), a, b})
	}
	return d
}

// TestLoadDispatch: Load must hand tree files to the tree reader and
// ensemble files to the ensemble reader, both behind model.Model.
func TestLoadDispatch(t *testing.T) {
	d := trainData(600, 3)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 50
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := tree.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&tb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Describe().Kind != "m5-model-tree" {
		t.Errorf("tree file loaded as %q", m.Describe().Kind)
	}
	if got, want := m.Predict(d.Row(0)), tree.Predict(d.Row(0)); got != want {
		t.Errorf("loaded tree predicts %v, want %v", got, want)
	}

	ecfg := ensemble.DefaultConfig()
	ecfg.Trees = 3
	ecfg.Tree = cfg
	bag, err := ensemble.Train(d, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	var eb bytes.Buffer
	if err := bag.WriteJSON(&eb); err != nil {
		t.Fatal(err)
	}
	m, err = Load(&eb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Describe().Kind != "bagged-m5" {
		t.Errorf("ensemble file loaded as %q", m.Describe().Kind)
	}
	if m.Describe().Trees != 3 {
		t.Errorf("ensemble description reports %d trees, want 3", m.Describe().Trees)
	}
	if got, want := m.Predict(d.Row(1)), bag.Predict(d.Row(1)); got != want {
		t.Errorf("loaded ensemble predicts %v, want %v", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("non-JSON input accepted")
	}
	if _, err := Load(strings.NewReader(`{"kind":"bagged-m5","schema_version":99,"trees":[{}]}`)); err == nil {
		t.Error("future ensemble accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/model.json"); err == nil {
		t.Error("missing file accepted")
	}
}

// TestWriteLoadRoundTrip drives Write/WriteFile/LoadFile/SniffFile
// through every format for both model kinds, including the
// compiled-form bridges: a compiled tree must decompile for JSON and
// write natively for binary, and either file must load back to a model
// with identical predictions.
func TestWriteLoadRoundTrip(t *testing.T) {
	d := trainData(600, 4)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 50
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compiled := mtree.Compile(tree)

	for _, tc := range []struct {
		name   string
		m      model.Model
		format string
	}{
		{"tree-json", tree, FormatJSON},
		{"tree-binary", tree, FormatBinary},
		{"compiled-json", compiled, FormatJSON},
		{"compiled-binary", compiled, FormatBinary},
	} {
		path := filepath.Join(t.TempDir(), tc.name)
		if err := WriteFile(path, tc.m, tc.format); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		format, err := SniffFile(path)
		if err != nil {
			t.Fatalf("%s: sniff: %v", tc.name, err)
		}
		if format != tc.format {
			t.Errorf("%s: sniffed %q, want %q", tc.name, format, tc.format)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", tc.name, err)
		}
		for i := 0; i < 20; i++ {
			if g, w := got.Predict(d.Row(i)), tc.m.Predict(d.Row(i)); g != w {
				t.Fatalf("%s: row %d predicts %v, want %v", tc.name, i, g, w)
			}
		}
	}
}

func TestWriteErrors(t *testing.T) {
	d := trainData(300, 5)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 50
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := Write(&b, tree, "parquet"); err == nil {
		t.Error("unknown format accepted")
	}
	if err := WriteFile("/nonexistent/dir/model.json", tree, FormatJSON); err == nil {
		t.Error("uncreatable path accepted")
	}
}

func TestSniffFileMissing(t *testing.T) {
	if _, err := SniffFile("/nonexistent/model.json"); err == nil {
		t.Error("missing file sniffed")
	}
}
