package modelio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/mtree"
)

func trainData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{{Name: "CPI"}, {Name: "L1IM"}, {Name: "L2M"}}, 0)
	for i := 0; i < n; i++ {
		a := rng.Float64()
		b := rng.Float64()
		y := 0.5 + 2*a
		if b > 0.5 {
			y = 1.5 + 4*a
		}
		d.MustAppend(dataset.Instance{y + 0.05*rng.NormFloat64(), a, b})
	}
	return d
}

// TestLoadDispatch: Load must hand tree files to the tree reader and
// ensemble files to the ensemble reader, both behind model.Model.
func TestLoadDispatch(t *testing.T) {
	d := trainData(600, 3)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 50
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := tree.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&tb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Describe().Kind != "m5-model-tree" {
		t.Errorf("tree file loaded as %q", m.Describe().Kind)
	}
	if got, want := m.Predict(d.Row(0)), tree.Predict(d.Row(0)); got != want {
		t.Errorf("loaded tree predicts %v, want %v", got, want)
	}

	ecfg := ensemble.DefaultConfig()
	ecfg.Trees = 3
	ecfg.Tree = cfg
	bag, err := ensemble.Train(d, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	var eb bytes.Buffer
	if err := bag.WriteJSON(&eb); err != nil {
		t.Fatal(err)
	}
	m, err = Load(&eb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Describe().Kind != "bagged-m5" {
		t.Errorf("ensemble file loaded as %q", m.Describe().Kind)
	}
	if m.Describe().Trees != 3 {
		t.Errorf("ensemble description reports %d trees, want 3", m.Describe().Trees)
	}
	if got, want := m.Predict(d.Row(1)), bag.Predict(d.Row(1)); got != want {
		t.Errorf("loaded ensemble predicts %v, want %v", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("non-JSON input accepted")
	}
	if _, err := Load(strings.NewReader(`{"kind":"bagged-m5","schema_version":99,"trees":[{}]}`)); err == nil {
		t.Error("future ensemble accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/model.json"); err == nil {
		t.Error("missing file accepted")
	}
}
