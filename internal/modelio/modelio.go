// Package modelio loads persisted models — single M5' trees or bagged
// ensembles — behind the shared model.Model interface. It is the one
// place that knows every concrete on-disk format; callers (cmd/analyze,
// cmd/serve, the registry) just ask for "the model in this file".
//
// Two formats exist. Binary files (see internal/binfmt) start with the
// "M5MB" magic and load directly into the compiled flat-array
// evaluators; they are the serving fast path. JSON files are sniffed
// from the "kind" discriminator: ensemble files declare kind
// "bagged-m5"; anything else is treated as a single-tree file (trees
// written before the discriminator existed carry no kind at all).
package modelio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/binfmt"
	"repro/internal/ensemble"
	"repro/internal/model"
	"repro/internal/mtree"
)

// Format names accepted by Write (and cmd/train's -format flag).
const (
	FormatJSON   = "json"
	FormatBinary = "binary"
)

// Load reads one persisted model from r, dispatching on the format.
// Binary files come back in compiled (flat-array) form; JSON files as
// the pointer-linked training structures.
func Load(r io.Reader) (model.Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("modelio: reading model: %w", err)
	}
	if binfmt.Sniff(data) {
		return loadBinary(data)
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("modelio: not a JSON or binary model file: %w", err)
	}
	if probe.Kind == ensemble.Kind {
		return ensemble.ReadJSON(bytes.NewReader(data))
	}
	return mtree.ReadJSON(bytes.NewReader(data))
}

// loadBinary parses a binary container and dispatches on its payload
// kind, keeping the "which formats exist" knowledge in this package.
func loadBinary(data []byte) (model.Model, error) {
	f, err := binfmt.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	switch f.Kind {
	case binfmt.KindTree:
		t, err := mtree.ReadBinaryFile(f)
		if err != nil {
			return nil, fmt.Errorf("modelio: %w", err)
		}
		return t, nil
	case binfmt.KindEnsemble:
		b, err := ensemble.ReadBinaryFile(f)
		if err != nil {
			return nil, fmt.Errorf("modelio: %w", err)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("modelio: binary model file has unknown payload kind %d", f.Kind)
	}
}

// SniffFile reports which on-disk format the file at path uses
// (FormatJSON or FormatBinary) without parsing the whole model.
func SniffFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	head := make([]byte, len(binfmt.Magic))
	n, _ := io.ReadFull(f, head)
	if binfmt.Sniff(head[:n]) {
		return FormatBinary, nil
	}
	return FormatJSON, nil
}

// LoadFile loads one persisted model from a file path.
func LoadFile(path string) (model.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	m, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("modelio: loading %s: %w", path, err)
	}
	return m, nil
}

// binaryWriter is the surface every persistable model exposes for the
// binary format; trees, ensembles and their compiled forms all have it.
type binaryWriter interface {
	WriteBinary(w io.Writer) error
}

// jsonWriter is the JSON analogue. Compiled forms don't implement it
// directly — Write bridges them back through Tree()/Bagger().
type jsonWriter interface {
	WriteJSON(w io.Writer) error
}

// Write persists a model in the named format (FormatJSON or
// FormatBinary). Compiled models are written natively in binary and
// decompiled first for JSON, so either format accepts any model the
// loaders can produce.
func Write(w io.Writer, m model.Model, format string) error {
	switch format {
	case FormatJSON:
		jm := m
		switch c := m.(type) {
		case *mtree.CompiledTree:
			jm = c.Tree()
		case *ensemble.CompiledBagger:
			jm = c.Bagger()
		}
		jw, ok := jm.(jsonWriter)
		if !ok {
			return fmt.Errorf("modelio: model kind %q does not support JSON persistence", m.Describe().Kind)
		}
		return jw.WriteJSON(w)
	case FormatBinary:
		bw, ok := m.(binaryWriter)
		if !ok {
			return fmt.Errorf("modelio: model kind %q does not support binary persistence", m.Describe().Kind)
		}
		return bw.WriteBinary(w)
	default:
		return fmt.Errorf("modelio: unknown model format %q (want %q or %q)", format, FormatJSON, FormatBinary)
	}
}

// WriteFile persists a model to a file path in the named format.
func WriteFile(path string, m model.Model, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	if err := Write(f, m, format); err != nil {
		f.Close()
		return fmt.Errorf("modelio: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("modelio: writing %s: %w", path, err)
	}
	return nil
}
