// Package modelio loads persisted models — single M5' trees or bagged
// ensembles — behind the shared model.Model interface. It is the one
// place that knows every concrete on-disk format; callers (cmd/analyze,
// cmd/serve, the registry) just ask for "the model in this file".
//
// The format is sniffed from the JSON "kind" discriminator: ensemble
// files declare kind "bagged-m5"; anything else is treated as a
// single-tree file (trees written before the discriminator existed carry
// no kind at all).
package modelio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/ensemble"
	"repro/internal/model"
	"repro/internal/mtree"
)

// Load reads one persisted model from r, dispatching on the format.
func Load(r io.Reader) (model.Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("modelio: reading model: %w", err)
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("modelio: not a JSON model file: %w", err)
	}
	if probe.Kind == ensemble.Kind {
		return ensemble.ReadJSON(bytes.NewReader(data))
	}
	return mtree.ReadJSON(bytes.NewReader(data))
}

// LoadFile loads one persisted model from a file path.
func LoadFile(path string) (model.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	m, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("modelio: loading %s: %w", path, err)
	}
	return m, nil
}
