package counters

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/march"
	"repro/internal/parallel"
	"repro/internal/sim/branch"
	"repro/internal/sim/cpu"
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
	"repro/internal/workload"
)

// CollectConfig controls dataset collection.
type CollectConfig struct {
	// SectionLen is the number of retired instructions per section (the
	// paper groups data into "sections of equal counts of executed
	// instructions").
	SectionLen uint64
	// WarmupSections are run and discarded at the start of each benchmark
	// so cold-start transients do not pollute the training set.
	WarmupSections int
	// CPU, Geometry and Branch configure the simulated machine; they are
	// normally materialized together from a march.MachineSpec (see
	// CollectConfigFor).
	CPU      cpu.Config
	Geometry mem.Geometry
	Branch   branch.Config
	// Machine is the name of the machine the three configs above came
	// from ("core2" for the default), recorded so downstream artifacts
	// (models, experiment reports) can carry the provenance tag.
	Machine string
	// DisablePrefetch turns off the hardware stream prefetchers
	// regardless of the machine's prefetch spec, for substrate ablations.
	DisablePrefetch bool
	// Seed drives workload synthesis.
	Seed int64
	// Jobs is the number of benchmarks simulated concurrently by
	// CollectSuite (0 = GOMAXPROCS, 1 = serial). Each benchmark runs on
	// its own simulated machine with a seed derived only from Seed and
	// the benchmark name, so the merged collection is identical for every
	// value of Jobs.
	Jobs int
}

// CollectConfigFor returns the collection configuration for one machine:
// 20k-instruction sections, two warmup sections, workload seed 42, with
// the simulated machine materialized from the spec.
func CollectConfigFor(spec march.MachineSpec) CollectConfig {
	return CollectConfig{
		SectionLen:     20000,
		WarmupSections: 2,
		CPU:            spec.CPUConfig(),
		Geometry:       spec.Geometry(),
		Branch:         spec.BranchConfig(),
		Machine:        spec.Name,
		Seed:           42,
	}
}

// DefaultCollectConfig returns the configuration used by the experiments:
// 20k-instruction sections on the Core-2-Duo-like seed machine.
func DefaultCollectConfig() CollectConfig {
	return CollectConfigFor(march.Core2())
}

// SectionLabel identifies the provenance of one dataset row.
type SectionLabel struct {
	Benchmark string
	Phase     int
	Section   int // section index within the benchmark (post-warmup)
}

// Collection is a dataset plus the per-row provenance labels (used by the
// paper's per-benchmark leaf census) and the simulator's ground-truth
// cycle breakdowns (used to validate the model's "how much" answers —
// something real hardware cannot provide).
type Collection struct {
	Data       *dataset.Dataset
	Labels     []SectionLabel
	Breakdowns []cpu.Breakdown
}

// CollectBenchmark runs one benchmark on a fresh simulated machine and
// returns one dataset row per section.
func CollectBenchmark(b workload.Benchmark, cfg CollectConfig) (*Collection, error) {
	if cfg.SectionLen == 0 {
		return nil, fmt.Errorf("counters: section length must be positive")
	}
	cpuCfg := cfg.CPU
	cpuCfg.Seed = cfg.Seed ^ int64(len(b.Name))
	core := cpu.New(cpuCfg, cfg.Geometry, cfg.Branch)
	if cfg.DisablePrefetch {
		core.Mem.DataPF, core.Mem.InstPF = nil, nil
	}

	col := &Collection{Data: NewDataset()}
	src := workload.NewSectionSource(b, cfg.Seed)
	section := 0
	// block is the reusable instruction buffer of the steady-state loop:
	// the generator fills it in bulk and the core retires it in bulk, so
	// the per-instruction path is two direct calls per block and allocates
	// nothing. The generator emits the records in the same order a
	// one-at-a-time pull would, so sections are byte-identical.
	var block [trace.DefaultBlockLen]trace.Inst
	for {
		gen, phase := src.Next()
		if gen == nil {
			break
		}
		core.ResetSection()
		for remaining := cfg.SectionLen; remaining > 0; {
			n := uint64(len(block))
			if remaining < n {
				n = remaining
			}
			gen.NextBlock(block[:n])
			core.StepBlock(block[:n])
			remaining -= n
		}
		section++
		if section <= cfg.WarmupSections {
			continue
		}
		if err := col.Data.Append(Row(core.Counters())); err != nil {
			return nil, fmt.Errorf("counters: %s section %d: %w", b.Name, section, err)
		}
		col.Labels = append(col.Labels, SectionLabel{Benchmark: b.Name, Phase: phase, Section: section})
		col.Breakdowns = append(col.Breakdowns, core.CycleBreakdown())
	}
	return col, nil
}

// CollectSuiteNoPrefetch is CollectSuite with the hardware prefetchers
// disabled, used by the prefetcher substrate ablation.
func CollectSuiteNoPrefetch(suite []workload.Benchmark, cfg CollectConfig) (*Collection, error) {
	cfg.DisablePrefetch = true
	return CollectSuite(suite, cfg)
}

// CollectSuite runs every benchmark and merges the sections into one
// labeled collection — the training corpus for the model tree.
//
// Benchmarks are simulated concurrently (cfg.Jobs workers) and merged in
// suite order, so the result is byte-identical to a serial run.
func CollectSuite(suite []workload.Benchmark, cfg CollectConfig) (*Collection, error) {
	cols, err := parallel.Map(parallel.Config{Jobs: cfg.Jobs}, suite,
		func(_ int, b workload.Benchmark) (*Collection, error) {
			return CollectBenchmark(b, cfg)
		})
	if err != nil {
		return nil, err
	}
	all := &Collection{Data: NewDataset()}
	for i, col := range cols {
		if err := all.Data.Merge(col.Data); err != nil {
			return nil, fmt.Errorf("counters: merging %s: %w", suite[i].Name, err)
		}
		all.Labels = append(all.Labels, col.Labels...)
		all.Breakdowns = append(all.Breakdowns, col.Breakdowns...)
	}
	return all, nil
}

// MachineCollection is one machine's labeled suite collection.
type MachineCollection struct {
	Machine march.MachineSpec
	Col     *Collection
}

// CollectSuiteMachines runs the whole suite on every machine and returns
// one collection per machine, in spec order. The (machine, benchmark)
// pairs fan out over one worker pool, so a five-machine sweep keeps all
// cores busy even on a short suite.
//
// Every machine sees byte-identical instruction traces: workload
// synthesis is seeded from base.Seed only (and the per-benchmark
// wrong-path seed derives from base.Seed and the benchmark name, not the
// machine), so cross-machine CPI differences measure the architecture,
// not workload noise. Consequently each machine's collection is exactly
// what CollectSuite would produce for that machine alone, and the merged
// result is identical for every value of base.Jobs.
func CollectSuiteMachines(suite []workload.Benchmark, specs []march.MachineSpec, base CollectConfig) ([]MachineCollection, error) {
	type unit struct {
		machine int
		bench   workload.Benchmark
	}
	units := make([]unit, 0, len(specs)*len(suite))
	cfgs := make([]CollectConfig, len(specs))
	for m, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("counters: machine %d: %w", m, err)
		}
		cfg := base
		cfg.CPU = spec.CPUConfig()
		cfg.Geometry = spec.Geometry()
		cfg.Branch = spec.BranchConfig()
		cfg.Machine = spec.Name
		cfgs[m] = cfg
		for _, b := range suite {
			units = append(units, unit{machine: m, bench: b})
		}
	}
	cols, err := parallel.Map(parallel.Config{Jobs: base.Jobs}, units,
		func(_ int, u unit) (*Collection, error) {
			return CollectBenchmark(u.bench, cfgs[u.machine])
		})
	if err != nil {
		return nil, err
	}
	out := make([]MachineCollection, len(specs))
	for m, spec := range specs {
		out[m] = MachineCollection{Machine: spec, Col: &Collection{Data: NewDataset()}}
	}
	for i, col := range cols {
		mc := out[units[i].machine]
		if err := mc.Col.Data.Merge(col.Data); err != nil {
			return nil, fmt.Errorf("counters: merging %s on %s: %w", units[i].bench.Name, mc.Machine.Name, err)
		}
		mc.Col.Labels = append(mc.Col.Labels, col.Labels...)
		mc.Col.Breakdowns = append(mc.Col.Breakdowns, col.Breakdowns...)
		out[units[i].machine] = mc
	}
	return out, nil
}

// ArchAttributes returns the Table I schema extended with the
// architecture feature columns (march.FeatureNames), the schema of
// pooled cross-architecture datasets.
func ArchAttributes() []dataset.Attribute {
	attrs := Attributes()
	for _, n := range march.FeatureNames() {
		attrs = append(attrs, dataset.Attribute{Name: n, Description: "architecture feature (constant per machine)"})
	}
	return attrs
}

// NewArchDataset returns an empty dataset with the pooled
// cross-architecture schema (Table I plus the architecture features).
func NewArchDataset() *dataset.Dataset {
	return dataset.MustNew(ArchAttributes(), 0)
}

// WithArchFeatures returns a copy of the collection whose dataset gains
// the machine's architecture feature columns — constant within one
// machine, discriminating between machines once collections are pooled.
// Labels and breakdowns are shared with the receiver.
func (c *Collection) WithArchFeatures(spec march.MachineSpec) (*Collection, error) {
	feats := spec.Features()
	d := NewArchDataset()
	for i := 0; i < c.Data.Len(); i++ {
		row := c.Data.Row(i)
		wide := make(dataset.Instance, 0, len(row)+len(feats))
		wide = append(wide, row...)
		wide = append(wide, feats...)
		if err := d.Append(wide); err != nil {
			return nil, fmt.Errorf("counters: widening row %d for %s: %w", i, spec.Name, err)
		}
	}
	return &Collection{Data: d, Labels: c.Labels, Breakdowns: c.Breakdowns}, nil
}
