package counters

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/parallel"
	"repro/internal/sim/branch"
	"repro/internal/sim/cpu"
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
	"repro/internal/workload"
)

// CollectConfig controls dataset collection.
type CollectConfig struct {
	// SectionLen is the number of retired instructions per section (the
	// paper groups data into "sections of equal counts of executed
	// instructions").
	SectionLen uint64
	// WarmupSections are run and discarded at the start of each benchmark
	// so cold-start transients do not pollute the training set.
	WarmupSections int
	// CPU, Geometry and Branch configure the simulated machine.
	CPU      cpu.Config
	Geometry mem.Core2Geometry
	Branch   branch.Config
	// DisablePrefetch turns off the hardware stream prefetchers, for
	// substrate ablations.
	DisablePrefetch bool
	// Seed drives workload synthesis.
	Seed int64
	// Jobs is the number of benchmarks simulated concurrently by
	// CollectSuite (0 = GOMAXPROCS, 1 = serial). Each benchmark runs on
	// its own simulated machine with a seed derived only from Seed and
	// the benchmark name, so the merged collection is identical for every
	// value of Jobs.
	Jobs int
}

// DefaultCollectConfig returns the configuration used by the experiments:
// 20k-instruction sections on the Core-2-Duo-like machine.
func DefaultCollectConfig() CollectConfig {
	return CollectConfig{
		SectionLen:     20000,
		WarmupSections: 2,
		CPU:            cpu.DefaultConfig(),
		Geometry:       mem.DefaultCore2Geometry(),
		Branch:         branch.DefaultConfig(),
		Seed:           42,
	}
}

// SectionLabel identifies the provenance of one dataset row.
type SectionLabel struct {
	Benchmark string
	Phase     int
	Section   int // section index within the benchmark (post-warmup)
}

// Collection is a dataset plus the per-row provenance labels (used by the
// paper's per-benchmark leaf census) and the simulator's ground-truth
// cycle breakdowns (used to validate the model's "how much" answers —
// something real hardware cannot provide).
type Collection struct {
	Data       *dataset.Dataset
	Labels     []SectionLabel
	Breakdowns []cpu.Breakdown
}

// CollectBenchmark runs one benchmark on a fresh simulated machine and
// returns one dataset row per section.
func CollectBenchmark(b workload.Benchmark, cfg CollectConfig) (*Collection, error) {
	if cfg.SectionLen == 0 {
		return nil, fmt.Errorf("counters: section length must be positive")
	}
	cpuCfg := cfg.CPU
	cpuCfg.Seed = cfg.Seed ^ int64(len(b.Name))
	core := cpu.New(cpuCfg, cfg.Geometry, cfg.Branch)
	if cfg.DisablePrefetch {
		core.Mem.DataPF, core.Mem.InstPF = nil, nil
	}

	col := &Collection{Data: NewDataset()}
	src := workload.NewSectionSource(b, cfg.Seed)
	section := 0
	// block is the reusable instruction buffer of the steady-state loop:
	// the generator fills it in bulk and the core retires it in bulk, so
	// the per-instruction path is two direct calls per block and allocates
	// nothing. The generator emits the records in the same order a
	// one-at-a-time pull would, so sections are byte-identical.
	var block [trace.DefaultBlockLen]trace.Inst
	for {
		gen, phase := src.Next()
		if gen == nil {
			break
		}
		core.ResetSection()
		for remaining := cfg.SectionLen; remaining > 0; {
			n := uint64(len(block))
			if remaining < n {
				n = remaining
			}
			gen.NextBlock(block[:n])
			core.StepBlock(block[:n])
			remaining -= n
		}
		section++
		if section <= cfg.WarmupSections {
			continue
		}
		if err := col.Data.Append(Row(core.Counters())); err != nil {
			return nil, fmt.Errorf("counters: %s section %d: %w", b.Name, section, err)
		}
		col.Labels = append(col.Labels, SectionLabel{Benchmark: b.Name, Phase: phase, Section: section})
		col.Breakdowns = append(col.Breakdowns, core.CycleBreakdown())
	}
	return col, nil
}

// CollectSuiteNoPrefetch is CollectSuite with the hardware prefetchers
// disabled, used by the prefetcher substrate ablation.
func CollectSuiteNoPrefetch(suite []workload.Benchmark, cfg CollectConfig) (*Collection, error) {
	cfg.DisablePrefetch = true
	return CollectSuite(suite, cfg)
}

// CollectSuite runs every benchmark and merges the sections into one
// labeled collection — the training corpus for the model tree.
//
// Benchmarks are simulated concurrently (cfg.Jobs workers) and merged in
// suite order, so the result is byte-identical to a serial run.
func CollectSuite(suite []workload.Benchmark, cfg CollectConfig) (*Collection, error) {
	cols, err := parallel.Map(parallel.Config{Jobs: cfg.Jobs}, suite,
		func(_ int, b workload.Benchmark) (*Collection, error) {
			return CollectBenchmark(b, cfg)
		})
	if err != nil {
		return nil, err
	}
	all := &Collection{Data: NewDataset()}
	for i, col := range cols {
		if err := all.Data.Merge(col.Data); err != nil {
			return nil, fmt.Errorf("counters: merging %s: %w", suite[i].Name, err)
		}
		all.Labels = append(all.Labels, col.Labels...)
		all.Breakdowns = append(all.Breakdowns, col.Breakdowns...)
	}
	return all, nil
}
