package counters

import "fmt"

// RelKind classifies a counter relation.
type RelKind string

const (
	// RelIdentity asserts Left == Right (within tolerance).
	RelIdentity RelKind = "identity"
	// RelAtMost asserts Left <= Right (within tolerance).
	RelAtMost RelKind = "at-most"
)

// Term is one column reference inside a linear expression. Col names a
// Table I attribute ("InstLd", "L1DM", ...) or the special column "CPI"
// (the observed cycles-per-instruction target). Coef scales it.
type Term struct {
	Col  string  `json:"col"`
	Coef float64 `json:"coef"`
}

// LinearExpr is a constant plus a weighted sum of counter columns. All
// Table I columns are per-retired-instruction rates, so constants compose
// directly with them (e.g. "1" is one event per instruction).
type LinearExpr struct {
	Const float64 `json:"const,omitempty"`
	Terms []Term  `json:"terms,omitempty"`
}

// String renders the expression the way the relation table prints it.
func (e LinearExpr) String() string {
	s := ""
	if e.Const != 0 || len(e.Terms) == 0 {
		s = trimFloat(e.Const)
	}
	for _, t := range e.Terms {
		part := t.Col
		if t.Coef != 1 {
			part = trimFloat(t.Coef) + "*" + t.Col
		}
		if s == "" {
			s = part
		} else {
			s += " + " + part
		}
	}
	return s
}

func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// RelationSpec is one declarative identity or inequality over the counter
// schema. Relations are data, not code: the refutation engine evaluates
// them generically, and the property suite iterates the catalog so a
// relation cannot be added without its corruption being caught.
type RelationSpec struct {
	Name        string     `json:"name"`
	Description string     `json:"description"`
	Kind        RelKind    `json:"kind"`
	Left        LinearExpr `json:"left"`
	Right       LinearExpr `json:"right"`
}

// String renders the relation as "left <= right" / "left == right".
func (r RelationSpec) String() string {
	op := "=="
	if r.Kind == RelAtMost {
		op = "<="
	}
	return r.Left.String() + " " + op + " " + r.Right.String()
}

// Columns returns the distinct column names the relation reads, in
// first-use order.
func (r RelationSpec) Columns() []string {
	var cols []string
	seen := map[string]bool{}
	for _, t := range append(append([]Term{}, r.Left.Terms...), r.Right.Terms...) {
		if !seen[t.Col] {
			seen[t.Col] = true
			cols = append(cols, t.Col)
		}
	}
	return cols
}

func cols(names ...string) []Term {
	ts := make([]Term, len(names))
	for i, n := range names {
		ts[i] = Term{Col: n, Coef: 1}
	}
	return ts
}

func sum(names ...string) LinearExpr { return LinearExpr{Terms: cols(names...)} }
func one(name string) LinearExpr     { return LinearExpr{Terms: cols(name)} }
func constant(v float64) LinearExpr  { return LinearExpr{Const: v} }

// Relations returns the machine-independent consistency catalog over the
// Table I schema: the instruction-mix identity plus the event-subset and
// structural-ordering bounds that the modeled Core-2 event definitions
// guarantee on any consistent counter stream. Each entry was checked
// against the simulator's increment pairings (internal/sim/cpu,
// internal/sim/mem); the refute property suite enforces that all of them
// hold on clean simulator output for every machine preset and that
// corrupting any single participating counter is caught.
//
// Deliberately absent: bounds tying L1IM or ItlbM to retired-instruction
// counts alone — both events include wrong-path fetches, so their honest
// bounds are machine-dependent (see the refute package's march variants).
func Relations() []RelationSpec {
	return []RelationSpec{
		{
			Name:        "inst-mix",
			Description: "retired instruction classes partition INST_RETIRED.ANY",
			Kind:        RelIdentity,
			Left:        sum("InstLd", "InstSt", "BrMisPr", "BrPred", "InstOther"),
			Right:       constant(1),
		},
		{
			Name:        "l2-within-l1d",
			Description: "a retired load's L2 miss implies its L1D miss",
			Kind:        RelAtMost,
			Left:        one("L2M"),
			Right:       one("L1DM"),
		},
		{
			Name:        "l1d-within-loads",
			Description: "L1D line misses are counted on retired loads only",
			Kind:        RelAtMost,
			Left:        one("L1DM"),
			Right:       one("InstLd"),
		},
		{
			Name:        "dtlb-ld-within-l0",
			Description: "a main-DTLB load miss first misses the L0 load DTLB",
			Kind:        RelAtMost,
			Left:        one("DtlbLdM"),
			Right:       one("DtlbL0LdM"),
		},
		{
			Name:        "dtlb-ld-ret-within-ld",
			Description: "retired DTLB load misses are a subset of all (speculative-inclusive) DTLB load misses",
			Kind:        RelAtMost,
			Left:        one("DtlbLdReM"),
			Right:       one("DtlbLdM"),
		},
		{
			Name:        "dtlb-ld-within-any",
			Description: "DTLB load misses are a subset of DTLB_MISSES.ANY",
			Kind:        RelAtMost,
			Left:        one("DtlbLdM"),
			Right:       one("Dtlb"),
		},
		{
			Name:        "dtlb-ld-ret-within-loads",
			Description: "retired DTLB load misses happen on retired loads",
			Kind:        RelAtMost,
			Left:        one("DtlbLdReM"),
			Right:       one("InstLd"),
		},
		{
			Name:        "split-ld-within-loads",
			Description: "split loads are retired loads",
			Kind:        RelAtMost,
			Left:        one("L1DSpLd"),
			Right:       one("InstLd"),
		},
		{
			Name:        "split-st-within-stores",
			Description: "split stores are retired stores",
			Kind:        RelAtMost,
			Left:        one("L1DSpSt"),
			Right:       one("InstSt"),
		},
		{
			Name:        "ldblock-sta-within-loads",
			Description: "store-address load blocks happen on retired loads",
			Kind:        RelAtMost,
			Left:        one("LdBlSta"),
			Right:       one("InstLd"),
		},
		{
			Name:        "ldblock-std-within-loads",
			Description: "store-data load blocks happen on retired loads",
			Kind:        RelAtMost,
			Left:        one("LdBlStd"),
			Right:       one("InstLd"),
		},
		{
			Name:        "ldblock-ovst-within-loads",
			Description: "overlap-store load blocks happen on retired loads",
			Kind:        RelAtMost,
			Left:        one("LdBlOvSt"),
			Right:       one("InstLd"),
		},
		{
			Name:        "misalign-within-mem",
			Description: "misaligned references are loads or stores",
			Kind:        RelAtMost,
			Left:        one("MisalRef"),
			Right:       sum("InstLd", "InstSt"),
		},
		{
			Name:        "lcp-within-insts",
			Description: "at most one length-changing-prefix stall per retired instruction",
			Kind:        RelAtMost,
			Left:        one("LCP"),
			Right:       constant(1),
		},
	}
}

// NonNegRelation returns the non-negativity bound for one counter column.
// Event counts cannot go backwards, so every per-instruction rate —
// including the CPI target — is non-negative; a negative value refutes
// the stream outright. Generated per schema column (rather than listed in
// Relations) so models trained on counter subsets still get full
// coverage.
func NonNegRelation(col string) RelationSpec {
	return RelationSpec{
		Name:        "nonneg-" + col,
		Description: "event rates cannot be negative",
		Kind:        RelAtMost,
		Left:        constant(0),
		Right:       one(col),
	}
}
