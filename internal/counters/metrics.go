// Package counters defines the paper's Table I metric set and the
// section-based data collector: it drives the simulated core over a
// workload, cuts execution into sections of equal retired-instruction
// counts, and emits one dataset row of per-instruction event ratios (plus
// CPI) per section — the exact training representation the paper uses.
package counters

import (
	"repro/internal/dataset"
	"repro/internal/sim/cpu"
)

// Metric describes one Table I entry: the short name used as a dataset
// attribute, the hardware event formula the paper programmed, and the
// plain-language description.
type Metric struct {
	Name        string
	Event       string
	Description string
}

// TableI returns the paper's Table I: CPI (the target) followed by the 20
// predictor metrics, in the paper's order.
func TableI() []Metric {
	return []Metric{
		{"CPI", "CPU_CLK_UNHALTED.CORE / INST_RETIRED.ANY", "CPU clock cycles per instruction"},
		{"InstLd", "INST_RETIRED.LOADS", "Loads per instruction"},
		{"InstSt", "INST_RETIRED.STORES", "Stores per instruction"},
		{"BrMisPr", "BR_INST_RETIRED.MISPRED", "Mispredicted branches per instruction"},
		{"BrPred", "BR_INST_RETIRED.ANY - BR_INST_RETIRED.MISPRED", "Correctly predicted branches per instruction"},
		{"InstOther", "INST_RETIRED.ANY - (LOADS + STORES + BR_ANY)", "Non-branch and non-memory instructions per instruction"},
		{"L1DM", "MEM_LOAD_RETIRED.L1D_LINE_MISS", "L1 data misses per instruction"},
		{"L1IM", "L1I_MISSES", "L1 instruction misses per instruction"},
		{"L2M", "MEM_LOAD_RETIRED.L2_LINE_MISS", "L2 misses per instruction"},
		{"DtlbL0LdM", "DTLB_MISSES.L0_MISS_LD", "Lowest level DTLB load misses per instruction"},
		{"DtlbLdM", "DTLB_MISSES.MISS_LD", "Last level DTLB load misses per instruction"},
		{"DtlbLdReM", "MEM_LOAD_RETIRED.DTLB_MISS", "Last level DTLB retired load misses per instruction"},
		{"Dtlb", "DTLB_MISSES.ANY", "Last level DTLB misses (including loads) per instruction"},
		{"ItlbM", "ITLB.MISS_RETIRED", "ITLB misses per instruction"},
		{"LdBlSta", "LOAD_BLOCK.STA", "Load block store address events per instruction"},
		{"LdBlStd", "LOAD_BLOCK.STD", "Load block store data events per instruction"},
		{"LdBlOvSt", "LOAD_BLOCK.OVERLAP_STORE", "Load block overlap store per instruction"},
		{"MisalRef", "MISALIGN_MEM_REF", "Misaligned memory references per instruction"},
		{"L1DSpLd", "L1D_SPLIT.LOADS", "L1 data split loads per instruction"},
		{"L1DSpSt", "L1D_SPLIT.STORES", "L1 data split stores per instruction"},
		{"LCP", "ILD_STALL", "Length changing prefix stalls per instruction"},
	}
}

// Attributes converts Table I to a dataset schema (CPI is column 0, the
// target).
func Attributes() []dataset.Attribute {
	tab := TableI()
	attrs := make([]dataset.Attribute, len(tab))
	for i, m := range tab {
		attrs[i] = dataset.Attribute{Name: m.Name, Description: m.Description}
	}
	return attrs
}

// NewDataset returns an empty dataset with the Table I schema and CPI as
// the target.
func NewDataset() *dataset.Dataset {
	return dataset.MustNew(Attributes(), 0)
}

// Row converts a section's counter snapshot to a dataset row in Table I
// column order. The derived metrics follow the paper's formulas: BrPred is
// total branches minus mispredicts; InstOther is everything that is not a
// load, store or branch.
func Row(c cpu.Counters) dataset.Instance {
	inst := float64(c.Insts)
	if inst == 0 {
		return make(dataset.Instance, 21)
	}
	brPred := c.Branches - c.BrMispred
	other := c.Insts - c.Loads - c.Stores - c.Branches
	return dataset.Instance{
		c.CPI(),
		c.PerInst(c.Loads),
		c.PerInst(c.Stores),
		c.PerInst(c.BrMispred),
		c.PerInst(brPred),
		c.PerInst(other),
		c.PerInst(c.L1DMiss),
		c.PerInst(c.L1IMiss),
		c.PerInst(c.L2Miss),
		c.PerInst(c.Dtlb0LdMiss),
		c.PerInst(c.DtlbLdMiss),
		c.PerInst(c.DtlbLdRetMiss),
		c.PerInst(c.DtlbAnyMiss),
		c.PerInst(c.ItlbMiss),
		c.PerInst(c.LdBlockSTA),
		c.PerInst(c.LdBlockSTD),
		c.PerInst(c.LdBlockOvSt),
		c.PerInst(c.Misaligned),
		c.PerInst(c.SplitLoads),
		c.PerInst(c.SplitStores),
		c.PerInst(c.LCPStalls),
	}
}
