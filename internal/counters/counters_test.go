package counters

import (
	"math"
	"testing"

	"repro/internal/march"
	"repro/internal/sim/cpu"
	"repro/internal/workload"
)

func TestTableISchema(t *testing.T) {
	tab := TableI()
	if len(tab) != 21 {
		t.Fatalf("Table I has %d entries, want 21 (CPI + 20 predictors)", len(tab))
	}
	if tab[0].Name != "CPI" {
		t.Errorf("first metric %q, want CPI", tab[0].Name)
	}
	seen := map[string]bool{}
	for _, m := range tab {
		if m.Name == "" || m.Event == "" || m.Description == "" {
			t.Errorf("incomplete metric %+v", m)
		}
		if seen[m.Name] {
			t.Errorf("duplicate metric %q", m.Name)
		}
		seen[m.Name] = true
	}
	// The paper's exact metric names.
	for _, want := range []string{
		"InstLd", "InstSt", "BrMisPr", "BrPred", "InstOther", "L1DM", "L1IM",
		"L2M", "DtlbL0LdM", "DtlbLdM", "DtlbLdReM", "Dtlb", "ItlbM",
		"LdBlSta", "LdBlStd", "LdBlOvSt", "MisalRef", "L1DSpLd", "L1DSpSt", "LCP",
	} {
		if !seen[want] {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestNewDataset(t *testing.T) {
	d := NewDataset()
	if d.NumAttrs() != 21 || d.TargetName() != "CPI" || d.TargetIndex() != 0 {
		t.Errorf("schema %d attrs, target %q", d.NumAttrs(), d.TargetName())
	}
}

func TestRowDerivedMetrics(t *testing.T) {
	c := cpu.Counters{
		Cycles: 2000, Insts: 1000,
		Loads: 300, Stores: 100, Branches: 150, BrMispred: 20,
		L1DMiss: 30, L1IMiss: 5, L2Miss: 10,
		Dtlb0LdMiss: 12, DtlbLdMiss: 8, DtlbLdRetMiss: 6, DtlbAnyMiss: 9,
		ItlbMiss: 1, LdBlockSTA: 2, LdBlockSTD: 3, LdBlockOvSt: 4,
		Misaligned: 5, SplitLoads: 6, SplitStores: 7, LCPStalls: 8,
	}
	row := Row(c)
	d := NewDataset()
	get := func(name string) float64 { return row[d.AttrIndex(name)] }
	if got := get("CPI"); got != 2.0 {
		t.Errorf("CPI = %v", got)
	}
	if got := get("BrPred"); got != 0.13 { // (150-20)/1000
		t.Errorf("BrPred = %v, want 0.13", got)
	}
	if got := get("InstOther"); math.Abs(got-0.45) > 1e-12 { // (1000-300-100-150)/1000
		t.Errorf("InstOther = %v, want 0.45", got)
	}
	if got := get("InstLd"); got != 0.3 {
		t.Errorf("InstLd = %v", got)
	}
	if got := get("DtlbLdReM"); got != 0.006 {
		t.Errorf("DtlbLdReM = %v", got)
	}
	if got := get("LCP"); got != 0.008 {
		t.Errorf("LCP = %v", got)
	}
	if err := d.Append(row); err != nil {
		t.Errorf("Row not appendable: %v", err)
	}
}

func TestRowIdleCounters(t *testing.T) {
	row := Row(cpu.Counters{})
	if len(row) != 21 {
		t.Fatalf("idle row has %d columns", len(row))
	}
	for i, v := range row {
		if v != 0 {
			t.Errorf("idle row column %d = %v", i, v)
		}
	}
}

func smallConfig() CollectConfig {
	cfg := DefaultCollectConfig()
	cfg.SectionLen = 2000
	cfg.WarmupSections = 1
	return cfg
}

func TestCollectBenchmark(t *testing.T) {
	b := workload.Benchmark{Name: "unit", Phases: []workload.Phase{
		{Params: unitParams(), Sections: 6},
	}}
	col, err := CollectBenchmark(b, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 6 sections minus 1 warmup.
	if col.Data.Len() != 5 {
		t.Fatalf("collected %d rows, want 5", col.Data.Len())
	}
	if len(col.Labels) != col.Data.Len() {
		t.Fatalf("labels %d != rows %d", len(col.Labels), col.Data.Len())
	}
	for i, l := range col.Labels {
		if l.Benchmark != "unit" {
			t.Errorf("label %d benchmark %q", i, l.Benchmark)
		}
	}
	// Sanity on the content: positive CPI, per-inst ratios in [0, ~1.5].
	for i := 0; i < col.Data.Len(); i++ {
		cpi := col.Data.Target(i)
		if cpi <= 0 || cpi > 50 {
			t.Errorf("row %d CPI %v implausible", i, cpi)
		}
		for a := 1; a < col.Data.NumAttrs(); a++ {
			v := col.Data.Value(i, a)
			if v < 0 || v > 2 {
				t.Errorf("row %d %s = %v out of range", i, col.Data.Attrs()[a].Name, v)
			}
		}
	}
}

func unitParams() workload.Params {
	return workload.Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.15,
		DataFootprint: 256 << 10, Pattern: workload.Random, ColdFrac: 0.1,
		DepNearFrac: 0.2, ALUDepFrac: 0.3,
		BranchTakenProb: 0.5, BranchEntropy: 0.05, LoopFrac: 0.3,
		CodeFootprint: 16 << 10, JumpProb: 0.05,
	}
}

func TestCollectSuiteMergesLabels(t *testing.T) {
	suite := []workload.Benchmark{
		{Name: "a", Phases: []workload.Phase{{Params: unitParams(), Sections: 3}}},
		{Name: "b", Phases: []workload.Phase{{Params: unitParams(), Sections: 4}}},
	}
	col, err := CollectSuite(suite, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if col.Data.Len() != 2+3 { // (3-1) + (4-1)
		t.Fatalf("rows %d, want 5", col.Data.Len())
	}
	counts := map[string]int{}
	for _, l := range col.Labels {
		counts[l.Benchmark]++
	}
	if counts["a"] != 2 || counts["b"] != 3 {
		t.Errorf("label counts %v", counts)
	}
}

func TestCollectRejectsZeroSectionLen(t *testing.T) {
	cfg := smallConfig()
	cfg.SectionLen = 0
	b := workload.Benchmark{Name: "x", Phases: []workload.Phase{{Params: unitParams(), Sections: 1}}}
	if _, err := CollectBenchmark(b, cfg); err == nil {
		t.Error("zero section length accepted")
	}
}

func TestCollectDeterministic(t *testing.T) {
	b := workload.Benchmark{Name: "det", Phases: []workload.Phase{{Params: unitParams(), Sections: 4}}}
	c1, err := CollectBenchmark(b, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CollectBenchmark(b, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c1.Data.Len(); i++ {
		for j := 0; j < c1.Data.NumAttrs(); j++ {
			if c1.Data.Value(i, j) != c2.Data.Value(i, j) {
				t.Fatalf("row %d col %d differs between identical runs", i, j)
			}
		}
	}
}

func TestNoPrefetchRaisesMisses(t *testing.T) {
	p := unitParams()
	p.Pattern = workload.Stream
	p.StrideB = 8
	p.ColdFrac = 0.9
	p.DataFootprint = 8 << 20
	b := workload.Benchmark{Name: "stream", Phases: []workload.Phase{{Params: p, Sections: 5}}}
	cfg := smallConfig()
	with, err := CollectBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePrefetch = true
	without, err := CollectBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l2 := with.Data.AttrIndex("L2M")
	if without.Data.ColumnMean(l2) <= with.Data.ColumnMean(l2) {
		t.Errorf("prefetch-off L2M %v not above prefetch-on %v",
			without.Data.ColumnMean(l2), with.Data.ColumnMean(l2))
	}
}

func TestCollectConfigFor(t *testing.T) {
	spec := march.Nehalem()
	cfg := CollectConfigFor(spec)
	if cfg.Machine != "nehalem" {
		t.Errorf("Machine = %q, want nehalem", cfg.Machine)
	}
	if cfg.SectionLen != 20000 || cfg.WarmupSections != 2 || cfg.Seed != 42 {
		t.Errorf("unexpected base knobs: %+v", cfg)
	}
	if cfg.CPU.ROBWindow != spec.Pipeline.ROBWindow {
		t.Errorf("CPU config not materialized from spec")
	}
	if def := DefaultCollectConfig(); def.Machine != "core2" {
		t.Errorf("default machine = %q, want core2", def.Machine)
	}
}

// TestCollectSuiteMachines: the fan-out returns one collection per spec
// in spec order, each byte-identical to a standalone CollectSuite on
// that machine, and rejects invalid specs up front.
func TestCollectSuiteMachines(t *testing.T) {
	suite := []workload.Benchmark{mustBench(t, "429.mcf", 4), mustBench(t, "403.gcc", 4)}
	specs := []march.MachineSpec{march.Core2(), march.Atom()}
	base := DefaultCollectConfig()
	base.SectionLen = 2000
	base.WarmupSections = 1
	mcols, err := CollectSuiteMachines(suite, specs, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(mcols) != 2 || mcols[0].Machine.Name != "core2" || mcols[1].Machine.Name != "atom" {
		t.Fatalf("wrong collections: %d returned", len(mcols))
	}
	for i, mc := range mcols {
		solo := CollectConfigFor(specs[i])
		solo.SectionLen = base.SectionLen
		solo.WarmupSections = base.WarmupSections
		want, err := CollectSuite(suite, solo)
		if err != nil {
			t.Fatal(err)
		}
		if mc.Col.Data.Len() != want.Data.Len() || len(mc.Col.Labels) != len(want.Labels) {
			t.Fatalf("%s: fan-out shape differs from standalone collection", specs[i].Name)
		}
		for r := 0; r < want.Data.Len(); r++ {
			got, exp := mc.Col.Data.Row(r), want.Data.Row(r)
			for c := range exp {
				if got[c] != exp[c] {
					t.Fatalf("%s row %d col %d: fan-out %v != standalone %v", specs[i].Name, r, c, got[c], exp[c])
				}
			}
		}
	}
	// Atom is in-order with tiny caches: its CPI must differ from core2's
	// on the same traces, or the sweep is not measuring the machine.
	if c0, c1 := mcols[0].Col.Data.Row(0)[0], mcols[1].Col.Data.Row(0)[0]; c0 == c1 {
		t.Error("core2 and atom produced identical CPI; machines not applied")
	}

	bad := march.Core2()
	bad.Pipeline.IssueWidth = 0
	if _, err := CollectSuiteMachines(suite, []march.MachineSpec{bad}, base); err == nil {
		t.Error("invalid spec accepted by CollectSuiteMachines")
	}
}

func TestWithArchFeatures(t *testing.T) {
	spec := march.K10()
	base := CollectConfigFor(spec)
	base.SectionLen = 2000
	base.WarmupSections = 1
	col, err := CollectBenchmark(mustBench(t, "429.mcf", 4), base)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := col.WithArchFeatures(spec)
	if err != nil {
		t.Fatal(err)
	}
	names := march.FeatureNames()
	if got, want := wide.Data.NumAttrs(), col.Data.NumAttrs()+len(names); got != want {
		t.Fatalf("widened to %d attrs, want %d", got, want)
	}
	if len(ArchAttributes()) != wide.Data.NumAttrs() {
		t.Errorf("ArchAttributes() does not match the widened schema")
	}
	feats := spec.Features()
	for r := 0; r < wide.Data.Len(); r++ {
		row := wide.Data.Row(r)
		// Original columns are untouched; the appended tail is the
		// machine's constant feature vector.
		for c, v := range col.Data.Row(r) {
			if row[c] != v {
				t.Fatalf("row %d col %d changed during widening", r, c)
			}
		}
		for j, f := range feats {
			if row[col.Data.NumAttrs()+j] != f {
				t.Fatalf("row %d arch feature %s = %v, want %v", r, names[j], row[col.Data.NumAttrs()+j], f)
			}
		}
	}
	if len(wide.Labels) != len(col.Labels) {
		t.Errorf("widening dropped labels")
	}
}

// mustBench scales one named benchmark down to a handful of sections.
func mustBench(t *testing.T, name string, sections int) workload.Benchmark {
	t.Helper()
	b, ok := workload.BenchmarkByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return b.Scale(float64(sections) / float64(b.TotalSections()))
}
