package counters

import (
	"math"
	"testing"

	"repro/internal/sim/cpu"
	"repro/internal/workload"
)

func TestTableISchema(t *testing.T) {
	tab := TableI()
	if len(tab) != 21 {
		t.Fatalf("Table I has %d entries, want 21 (CPI + 20 predictors)", len(tab))
	}
	if tab[0].Name != "CPI" {
		t.Errorf("first metric %q, want CPI", tab[0].Name)
	}
	seen := map[string]bool{}
	for _, m := range tab {
		if m.Name == "" || m.Event == "" || m.Description == "" {
			t.Errorf("incomplete metric %+v", m)
		}
		if seen[m.Name] {
			t.Errorf("duplicate metric %q", m.Name)
		}
		seen[m.Name] = true
	}
	// The paper's exact metric names.
	for _, want := range []string{
		"InstLd", "InstSt", "BrMisPr", "BrPred", "InstOther", "L1DM", "L1IM",
		"L2M", "DtlbL0LdM", "DtlbLdM", "DtlbLdReM", "Dtlb", "ItlbM",
		"LdBlSta", "LdBlStd", "LdBlOvSt", "MisalRef", "L1DSpLd", "L1DSpSt", "LCP",
	} {
		if !seen[want] {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestNewDataset(t *testing.T) {
	d := NewDataset()
	if d.NumAttrs() != 21 || d.TargetName() != "CPI" || d.TargetIndex() != 0 {
		t.Errorf("schema %d attrs, target %q", d.NumAttrs(), d.TargetName())
	}
}

func TestRowDerivedMetrics(t *testing.T) {
	c := cpu.Counters{
		Cycles: 2000, Insts: 1000,
		Loads: 300, Stores: 100, Branches: 150, BrMispred: 20,
		L1DMiss: 30, L1IMiss: 5, L2Miss: 10,
		Dtlb0LdMiss: 12, DtlbLdMiss: 8, DtlbLdRetMiss: 6, DtlbAnyMiss: 9,
		ItlbMiss: 1, LdBlockSTA: 2, LdBlockSTD: 3, LdBlockOvSt: 4,
		Misaligned: 5, SplitLoads: 6, SplitStores: 7, LCPStalls: 8,
	}
	row := Row(c)
	d := NewDataset()
	get := func(name string) float64 { return row[d.AttrIndex(name)] }
	if got := get("CPI"); got != 2.0 {
		t.Errorf("CPI = %v", got)
	}
	if got := get("BrPred"); got != 0.13 { // (150-20)/1000
		t.Errorf("BrPred = %v, want 0.13", got)
	}
	if got := get("InstOther"); math.Abs(got-0.45) > 1e-12 { // (1000-300-100-150)/1000
		t.Errorf("InstOther = %v, want 0.45", got)
	}
	if got := get("InstLd"); got != 0.3 {
		t.Errorf("InstLd = %v", got)
	}
	if got := get("DtlbLdReM"); got != 0.006 {
		t.Errorf("DtlbLdReM = %v", got)
	}
	if got := get("LCP"); got != 0.008 {
		t.Errorf("LCP = %v", got)
	}
	if err := d.Append(row); err != nil {
		t.Errorf("Row not appendable: %v", err)
	}
}

func TestRowIdleCounters(t *testing.T) {
	row := Row(cpu.Counters{})
	if len(row) != 21 {
		t.Fatalf("idle row has %d columns", len(row))
	}
	for i, v := range row {
		if v != 0 {
			t.Errorf("idle row column %d = %v", i, v)
		}
	}
}

func smallConfig() CollectConfig {
	cfg := DefaultCollectConfig()
	cfg.SectionLen = 2000
	cfg.WarmupSections = 1
	return cfg
}

func TestCollectBenchmark(t *testing.T) {
	b := workload.Benchmark{Name: "unit", Phases: []workload.Phase{
		{Params: unitParams(), Sections: 6},
	}}
	col, err := CollectBenchmark(b, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 6 sections minus 1 warmup.
	if col.Data.Len() != 5 {
		t.Fatalf("collected %d rows, want 5", col.Data.Len())
	}
	if len(col.Labels) != col.Data.Len() {
		t.Fatalf("labels %d != rows %d", len(col.Labels), col.Data.Len())
	}
	for i, l := range col.Labels {
		if l.Benchmark != "unit" {
			t.Errorf("label %d benchmark %q", i, l.Benchmark)
		}
	}
	// Sanity on the content: positive CPI, per-inst ratios in [0, ~1.5].
	for i := 0; i < col.Data.Len(); i++ {
		cpi := col.Data.Target(i)
		if cpi <= 0 || cpi > 50 {
			t.Errorf("row %d CPI %v implausible", i, cpi)
		}
		for a := 1; a < col.Data.NumAttrs(); a++ {
			v := col.Data.Value(i, a)
			if v < 0 || v > 2 {
				t.Errorf("row %d %s = %v out of range", i, col.Data.Attrs()[a].Name, v)
			}
		}
	}
}

func unitParams() workload.Params {
	return workload.Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.15,
		DataFootprint: 256 << 10, Pattern: workload.Random, ColdFrac: 0.1,
		DepNearFrac: 0.2, ALUDepFrac: 0.3,
		BranchTakenProb: 0.5, BranchEntropy: 0.05, LoopFrac: 0.3,
		CodeFootprint: 16 << 10, JumpProb: 0.05,
	}
}

func TestCollectSuiteMergesLabels(t *testing.T) {
	suite := []workload.Benchmark{
		{Name: "a", Phases: []workload.Phase{{Params: unitParams(), Sections: 3}}},
		{Name: "b", Phases: []workload.Phase{{Params: unitParams(), Sections: 4}}},
	}
	col, err := CollectSuite(suite, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if col.Data.Len() != 2+3 { // (3-1) + (4-1)
		t.Fatalf("rows %d, want 5", col.Data.Len())
	}
	counts := map[string]int{}
	for _, l := range col.Labels {
		counts[l.Benchmark]++
	}
	if counts["a"] != 2 || counts["b"] != 3 {
		t.Errorf("label counts %v", counts)
	}
}

func TestCollectRejectsZeroSectionLen(t *testing.T) {
	cfg := smallConfig()
	cfg.SectionLen = 0
	b := workload.Benchmark{Name: "x", Phases: []workload.Phase{{Params: unitParams(), Sections: 1}}}
	if _, err := CollectBenchmark(b, cfg); err == nil {
		t.Error("zero section length accepted")
	}
}

func TestCollectDeterministic(t *testing.T) {
	b := workload.Benchmark{Name: "det", Phases: []workload.Phase{{Params: unitParams(), Sections: 4}}}
	c1, err := CollectBenchmark(b, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CollectBenchmark(b, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c1.Data.Len(); i++ {
		for j := 0; j < c1.Data.NumAttrs(); j++ {
			if c1.Data.Value(i, j) != c2.Data.Value(i, j) {
				t.Fatalf("row %d col %d differs between identical runs", i, j)
			}
		}
	}
}

func TestNoPrefetchRaisesMisses(t *testing.T) {
	p := unitParams()
	p.Pattern = workload.Stream
	p.StrideB = 8
	p.ColdFrac = 0.9
	p.DataFootprint = 8 << 20
	b := workload.Benchmark{Name: "stream", Phases: []workload.Phase{{Params: p, Sections: 5}}}
	cfg := smallConfig()
	with, err := CollectBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePrefetch = true
	without, err := CollectBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l2 := with.Data.AttrIndex("L2M")
	if without.Data.ColumnMean(l2) <= with.Data.ColumnMean(l2) {
		t.Errorf("prefetch-off L2M %v not above prefetch-on %v",
			without.Data.ColumnMean(l2), with.Data.ColumnMean(l2))
	}
}
