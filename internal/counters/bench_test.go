package counters

import (
	"testing"

	"repro/internal/sim/cpu"
	"repro/internal/sim/trace"
	"repro/internal/workload"
)

// BenchmarkCollectBenchmark measures one full benchmark collection (all
// phases and sections of the first suite entry, scaled down) — the unit of
// work CollectSuite parallelizes over.
func BenchmarkCollectBenchmark(b *testing.B) {
	suite := workload.SuiteScaled(0.05)
	cfg := DefaultCollectConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CollectBenchmark(suite[0], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSectionLoop isolates the steady-state inner loop of
// CollectBenchmark — generator block fill plus core block retire, with the
// per-section bookkeeping excluded. This loop must run at zero allocations
// per operation; the dataset rows appended between sections are the only
// allocating part of collection.
func BenchmarkSectionLoop(b *testing.B) {
	cfg := DefaultCollectConfig()
	bench := workload.Suite()[0]
	core := cpu.New(cfg.CPU, cfg.Geometry, cfg.Branch)
	gen, _ := workload.NewSectionSource(bench, cfg.Seed).Next()
	var block [trace.DefaultBlockLen]trace.Inst

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.NextBlock(block[:])
		core.StepBlock(block[:])
	}
	b.ReportMetric(float64(trace.DefaultBlockLen), "insts/op")
}
