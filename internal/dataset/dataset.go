// Package dataset provides the tabular data containers shared by every
// learner in this repository.
//
// A Dataset is a dense numeric table: rows are Instances (one per workload
// section in the performance-analysis application) and columns are
// Attributes. Exactly one column is designated the target (the dependent
// variable; CPI in the paper). All learners in internal/mtree,
// internal/regtree, internal/ann, internal/svm and internal/naive consume
// this representation.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Attribute describes one column of a Dataset.
type Attribute struct {
	// Name is the column identifier, e.g. "L2M" or "CPI".
	Name string
	// Description is an optional human-readable explanation, e.g.
	// "L2 misses per instruction".
	Description string
}

// Instance is one row: the attribute values followed (positionally) by the
// columns of its Dataset. Instances do not carry their own schema; they are
// meaningful only relative to the Dataset that owns them.
type Instance []float64

// Clone returns a deep copy of the instance.
func (in Instance) Clone() Instance {
	out := make(Instance, len(in))
	copy(out, in)
	return out
}

// Dataset is a dense numeric table with a designated target column.
type Dataset struct {
	attrs     []Attribute
	targetIdx int
	rows      []Instance
}

// New creates an empty Dataset with the given attribute schema and target
// column index. It returns an error if target is out of range or attribute
// names collide.
func New(attrs []Attribute, target int) (*Dataset, error) {
	if target < 0 || target >= len(attrs) {
		return nil, fmt.Errorf("dataset: target index %d out of range for %d attributes", target, len(attrs))
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a.Name == "" {
			return nil, errors.New("dataset: empty attribute name")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
	}
	cp := make([]Attribute, len(attrs))
	copy(cp, attrs)
	return &Dataset{attrs: cp, targetIdx: target}, nil
}

// MustNew is New but panics on error; intended for statically-known schemas
// in tests and examples.
func MustNew(attrs []Attribute, target int) *Dataset {
	d, err := New(attrs, target)
	if err != nil {
		panic(err)
	}
	return d
}

// Append adds a row. The row length must match the schema.
func (d *Dataset) Append(row Instance) error {
	if len(row) != len(d.attrs) {
		return fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(row), len(d.attrs))
	}
	for i, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset: non-finite value %v in column %q", v, d.attrs[i].Name)
		}
	}
	d.rows = append(d.rows, row)
	return nil
}

// MustAppend is Append but panics on error.
func (d *Dataset) MustAppend(row Instance) {
	if err := d.Append(row); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.rows) }

// NumAttrs returns the number of columns including the target.
func (d *Dataset) NumAttrs() int { return len(d.attrs) }

// Attrs returns the attribute schema. The returned slice must not be
// modified.
func (d *Dataset) Attrs() []Attribute { return d.attrs }

// TargetIndex returns the index of the target column.
func (d *Dataset) TargetIndex() int { return d.targetIdx }

// TargetName returns the name of the target column.
func (d *Dataset) TargetName() string { return d.attrs[d.targetIdx].Name }

// Row returns row i. The returned slice aliases internal storage and must
// not be modified.
func (d *Dataset) Row(i int) Instance { return d.rows[i] }

// Target returns the target value of row i.
func (d *Dataset) Target(i int) float64 { return d.rows[i][d.targetIdx] }

// Value returns column a of row i.
func (d *Dataset) Value(i, a int) float64 { return d.rows[i][a] }

// AttrIndex returns the column index of the named attribute, or -1.
func (d *Dataset) AttrIndex(name string) int {
	for i, a := range d.attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// FeatureIndices returns the indices of all non-target columns in schema
// order.
func (d *Dataset) FeatureIndices() []int {
	out := make([]int, 0, len(d.attrs)-1)
	for i := range d.attrs {
		if i != d.targetIdx {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy of the dataset (schema and rows).
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		attrs:     append([]Attribute(nil), d.attrs...),
		targetIdx: d.targetIdx,
		rows:      make([]Instance, len(d.rows)),
	}
	for i, r := range d.rows {
		out.rows[i] = r.Clone()
	}
	return out
}

// EmptyLike returns a Dataset with the same schema but no rows.
func (d *Dataset) EmptyLike() *Dataset {
	return &Dataset{attrs: append([]Attribute(nil), d.attrs...), targetIdx: d.targetIdx}
}

// Subset returns a new Dataset holding the rows at the given indices. Row
// storage is shared with the parent; callers must treat rows as immutable.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := d.EmptyLike()
	out.rows = make([]Instance, 0, len(idx))
	for _, i := range idx {
		out.rows = append(out.rows, d.rows[i])
	}
	return out
}

// Shuffle permutes the rows in place using the supplied source.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.rows), func(i, j int) {
		d.rows[i], d.rows[j] = d.rows[j], d.rows[i]
	})
}

// Split partitions the rows by a predicate on the attribute value: rows with
// value <= threshold in column attr go left, others right. Row storage is
// shared.
func (d *Dataset) Split(attr int, threshold float64) (left, right *Dataset) {
	left, right = d.EmptyLike(), d.EmptyLike()
	for _, r := range d.rows {
		if r[attr] <= threshold {
			left.rows = append(left.rows, r)
		} else {
			right.rows = append(right.rows, r)
		}
	}
	return left, right
}

// Fold describes one cross-validation fold as a pair of datasets.
type Fold struct {
	Train *Dataset
	Test  *Dataset
}

// KFold partitions the dataset into k folds after a seeded shuffle and
// returns the k (train, test) pairs. It returns an error when k is not in
// [2, Len()].
func (d *Dataset) KFold(k int, seed int64) ([]Fold, error) {
	n := d.Len()
	if k < 2 || k > n {
		return nil, fmt.Errorf("dataset: cannot make %d folds from %d rows", k, n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([]Fold, k)
	// Assign row perm[i] to fold i%k, which balances fold sizes to within
	// one row.
	members := make([][]int, k)
	for i, p := range perm {
		members[i%k] = append(members[i%k], p)
	}
	for f := 0; f < k; f++ {
		test := d.Subset(members[f])
		train := d.EmptyLike()
		for g := 0; g < k; g++ {
			if g == f {
				continue
			}
			for _, i := range members[g] {
				train.rows = append(train.rows, d.rows[i])
			}
		}
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds, nil
}

// TrainTestSplit returns a seeded random split with the given training
// fraction in (0, 1).
func (d *Dataset) TrainTestSplit(frac float64, seed int64) (train, test *Dataset, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("dataset: training fraction %v not in (0,1)", frac)
	}
	n := d.Len()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	cut := int(float64(n) * frac)
	if cut == 0 || cut == n {
		return nil, nil, fmt.Errorf("dataset: split of %d rows at fraction %v is degenerate", n, frac)
	}
	return d.Subset(perm[:cut]), d.Subset(perm[cut:]), nil
}

// TargetMean returns the mean of the target column (0 for an empty dataset).
func (d *Dataset) TargetMean() float64 {
	if len(d.rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range d.rows {
		s += r[d.targetIdx]
	}
	return s / float64(len(d.rows))
}

// TargetVariance returns the population variance of the target column.
func (d *Dataset) TargetVariance() float64 {
	return d.ColumnVariance(d.targetIdx)
}

// TargetStdDev returns the population standard deviation of the target.
func (d *Dataset) TargetStdDev() float64 {
	return math.Sqrt(d.TargetVariance())
}

// ColumnMean returns the mean of column a.
func (d *Dataset) ColumnMean(a int) float64 {
	if len(d.rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range d.rows {
		s += r[a]
	}
	return s / float64(len(d.rows))
}

// ColumnVariance returns the population variance of column a, computed with
// a two-pass algorithm for numeric stability.
func (d *Dataset) ColumnVariance(a int) float64 {
	n := len(d.rows)
	if n == 0 {
		return 0
	}
	m := d.ColumnMean(a)
	s := 0.0
	for _, r := range d.rows {
		dv := r[a] - m
		s += dv * dv
	}
	return s / float64(n)
}

// ColumnMinMax returns the min and max of column a. For an empty dataset it
// returns (0, 0).
func (d *Dataset) ColumnMinMax(a int) (lo, hi float64) {
	if len(d.rows) == 0 {
		return 0, 0
	}
	lo, hi = d.rows[0][a], d.rows[0][a]
	for _, r := range d.rows[1:] {
		if r[a] < lo {
			lo = r[a]
		}
		if r[a] > hi {
			hi = r[a]
		}
	}
	return lo, hi
}

// SortedUnique returns the sorted distinct values of column a.
func (d *Dataset) SortedUnique(a int) []float64 {
	vals := make([]float64, 0, len(d.rows))
	for _, r := range d.rows {
		vals = append(vals, r[a])
	}
	sort.Float64s(vals)
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Summary renders a short per-column summary table, useful in CLI output.
func (d *Dataset) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d rows x %d attributes (target %s)\n", d.Len(), d.NumAttrs(), d.TargetName())
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %12s\n", "attribute", "mean", "stddev", "min", "max")
	for i, a := range d.attrs {
		lo, hi := d.ColumnMinMax(i)
		fmt.Fprintf(&b, "%-14s %12.5g %12.5g %12.5g %12.5g\n",
			a.Name, d.ColumnMean(i), math.Sqrt(d.ColumnVariance(i)), lo, hi)
	}
	return b.String()
}

// Merge appends all rows of other (which must share the schema length) to d.
func (d *Dataset) Merge(other *Dataset) error {
	if other.NumAttrs() != d.NumAttrs() {
		return fmt.Errorf("dataset: schema mismatch (%d vs %d attributes)", other.NumAttrs(), d.NumAttrs())
	}
	d.rows = append(d.rows, other.rows...)
	return nil
}
