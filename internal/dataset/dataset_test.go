package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoColSchema() []Attribute {
	return []Attribute{{Name: "y"}, {Name: "x"}}
}

func TestNewValidatesSchema(t *testing.T) {
	if _, err := New(twoColSchema(), 2); err == nil {
		t.Error("target out of range accepted")
	}
	if _, err := New(twoColSchema(), -1); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := New([]Attribute{{Name: "a"}, {Name: "a"}}, 0); err == nil {
		t.Error("duplicate attribute names accepted")
	}
	if _, err := New([]Attribute{{Name: ""}}, 0); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := New(twoColSchema(), 0); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestAppendValidation(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	if err := d.Append(Instance{1}); err == nil {
		t.Error("short row accepted")
	}
	if err := d.Append(Instance{1, 2, 3}); err == nil {
		t.Error("long row accepted")
	}
	if err := d.Append(Instance{math.NaN(), 1}); err == nil {
		t.Error("NaN accepted")
	}
	if err := d.Append(Instance{math.Inf(1), 1}); err == nil {
		t.Error("Inf accepted")
	}
	if err := d.Append(Instance{1, 2}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestStatistics(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	for _, y := range []float64{1, 2, 3, 4} {
		d.MustAppend(Instance{y, 2 * y})
	}
	if got := d.TargetMean(); got != 2.5 {
		t.Errorf("TargetMean = %v, want 2.5", got)
	}
	// Population variance of {1,2,3,4} is 1.25.
	if got := d.TargetVariance(); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("TargetVariance = %v, want 1.25", got)
	}
	if got := d.ColumnMean(1); got != 5 {
		t.Errorf("ColumnMean(x) = %v, want 5", got)
	}
	lo, hi := d.ColumnMinMax(1)
	if lo != 2 || hi != 8 {
		t.Errorf("ColumnMinMax = %v,%v, want 2,8", lo, hi)
	}
	if got := d.TargetStdDev(); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("TargetStdDev = %v", got)
	}
}

func TestEmptyStatistics(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	if d.TargetMean() != 0 || d.TargetVariance() != 0 {
		t.Error("empty dataset stats should be zero")
	}
	lo, hi := d.ColumnMinMax(0)
	if lo != 0 || hi != 0 {
		t.Error("empty ColumnMinMax should be 0,0")
	}
}

func TestSplit(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	for i := 0; i < 10; i++ {
		d.MustAppend(Instance{float64(i), float64(i)})
	}
	left, right := d.Split(1, 4.5)
	if left.Len() != 5 || right.Len() != 5 {
		t.Fatalf("split sizes %d/%d, want 5/5", left.Len(), right.Len())
	}
	for i := 0; i < left.Len(); i++ {
		if left.Value(i, 1) > 4.5 {
			t.Errorf("left side contains value %v > threshold", left.Value(i, 1))
		}
	}
	for i := 0; i < right.Len(); i++ {
		if right.Value(i, 1) <= 4.5 {
			t.Errorf("right side contains value %v <= threshold", right.Value(i, 1))
		}
	}
}

func TestSplitBoundaryGoesLeft(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	d.MustAppend(Instance{1, 5})
	left, right := d.Split(1, 5)
	if left.Len() != 1 || right.Len() != 0 {
		t.Errorf("value equal to threshold should go left, got %d/%d", left.Len(), right.Len())
	}
}

func TestKFoldPartition(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	const n = 103
	for i := 0; i < n; i++ {
		d.MustAppend(Instance{float64(i), float64(i)})
	}
	folds, err := d.KFold(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[float64]int{}
	for _, f := range folds {
		if f.Train.Len()+f.Test.Len() != n {
			t.Errorf("fold train+test = %d, want %d", f.Train.Len()+f.Test.Len(), n)
		}
		// Balanced to within one row.
		if f.Test.Len() < n/10 || f.Test.Len() > n/10+1 {
			t.Errorf("unbalanced test fold size %d", f.Test.Len())
		}
		for i := 0; i < f.Test.Len(); i++ {
			seen[f.Test.Target(i)]++
		}
		// No overlap between train and test within one fold.
		inTest := map[float64]bool{}
		for i := 0; i < f.Test.Len(); i++ {
			inTest[f.Test.Target(i)] = true
		}
		for i := 0; i < f.Train.Len(); i++ {
			if inTest[f.Train.Target(i)] {
				t.Fatalf("row %v in both train and test", f.Train.Target(i))
			}
		}
	}
	// Every instance tested exactly once across folds.
	if len(seen) != n {
		t.Errorf("only %d distinct rows tested, want %d", len(seen), n)
	}
	for v, c := range seen {
		if c != 1 {
			t.Errorf("row %v tested %d times", v, c)
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	d.MustAppend(Instance{1, 1})
	if _, err := d.KFold(2, 1); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := d.KFold(1, 1); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestKFoldDeterministic(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	for i := 0; i < 30; i++ {
		d.MustAppend(Instance{float64(i), 0})
	}
	a, _ := d.KFold(3, 42)
	b, _ := d.KFold(3, 42)
	for f := range a {
		if a[f].Test.Len() != b[f].Test.Len() {
			t.Fatal("same seed produced different folds")
		}
		for i := 0; i < a[f].Test.Len(); i++ {
			if a[f].Test.Target(i) != b[f].Test.Target(i) {
				t.Fatal("same seed produced different fold membership")
			}
		}
	}
}

func TestTrainTestSplit(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	for i := 0; i < 100; i++ {
		d.MustAppend(Instance{float64(i), 0})
	}
	train, test, err := d.TrainTestSplit(0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 70 || test.Len() != 30 {
		t.Errorf("split sizes %d/%d", train.Len(), test.Len())
	}
	if _, _, err := d.TrainTestSplit(0, 3); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, _, err := d.TrainTestSplit(1, 3); err == nil {
		t.Error("fraction 1 accepted")
	}
}

func TestSortedUnique(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	for _, v := range []float64{3, 1, 2, 3, 1, 2, 2} {
		d.MustAppend(Instance{0, v})
	}
	got := d.SortedUnique(1)
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("SortedUnique = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedUnique = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	d.MustAppend(Instance{1, 2})
	c := d.Clone()
	c.Row(0)[0] = 99
	if d.Target(0) == 99 {
		t.Error("Clone shares row storage")
	}
}

func TestMergeSchemaMismatch(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	other := MustNew([]Attribute{{Name: "a"}}, 0)
	if err := d.Merge(other); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestAttrIndex(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	if d.AttrIndex("x") != 1 || d.AttrIndex("y") != 0 || d.AttrIndex("zzz") != -1 {
		t.Error("AttrIndex lookup wrong")
	}
}

func TestFeatureIndices(t *testing.T) {
	d := MustNew([]Attribute{{Name: "a"}, {Name: "y"}, {Name: "b"}}, 1)
	got := d.FeatureIndices()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("FeatureIndices = %v", got)
	}
}

// Property: variance is never negative and is zero for constant columns.
func TestVarianceProperties(t *testing.T) {
	f := func(vals []float64) bool {
		d := MustNew(twoColSchema(), 0)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Clamp to a reasonable magnitude to avoid float overflow in
			// the squared sums.
			if math.Abs(v) > 1e8 {
				v = math.Mod(v, 1e8)
			}
			d.MustAppend(Instance{v, 1})
		}
		if d.Len() == 0 {
			return true
		}
		return d.TargetVariance() >= 0 && d.ColumnVariance(1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Split partitions the rows exactly.
func TestSplitPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(n uint8, threshold float64) bool {
		if math.IsNaN(threshold) || math.IsInf(threshold, 0) {
			return true
		}
		d := MustNew(twoColSchema(), 0)
		for i := 0; i < int(n); i++ {
			d.MustAppend(Instance{0, rng.NormFloat64()})
		}
		l, r := d.Split(1, threshold)
		return l.Len()+r.Len() == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: shuffling preserves the multiset of rows.
func TestShufflePreservesRows(t *testing.T) {
	d := MustNew(twoColSchema(), 0)
	sum := 0.0
	for i := 0; i < 50; i++ {
		d.MustAppend(Instance{float64(i), 0})
		sum += float64(i)
	}
	d.Shuffle(rand.New(rand.NewSource(1)))
	got := 0.0
	for i := 0; i < d.Len(); i++ {
		got += d.Target(i)
	}
	if got != sum {
		t.Errorf("shuffle changed row contents: sum %v != %v", got, sum)
	}
}
