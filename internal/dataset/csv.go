package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset as CSV: a header row of attribute names
// followed by one row per instance.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(d.attrs))
	for i, a := range d.attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, len(d.attrs))
	for _, row := range d.rows {
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV produced by WriteCSV (or any numeric CSV with a
// header row). The column named target becomes the target attribute.
func ReadCSV(r io.Reader, target string) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	attrs := make([]Attribute, len(header))
	targetIdx := -1
	for i, name := range header {
		attrs[i] = Attribute{Name: name}
		if name == target {
			targetIdx = i
		}
	}
	if targetIdx < 0 {
		return nil, fmt.Errorf("dataset: target column %q not found in CSV header", target)
	}
	d, err := New(attrs, targetIdx)
	if err != nil {
		return nil, err
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		row := make(Instance, len(rec))
		for i, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %q: %w", line, header[i], err)
			}
			row[i] = v
		}
		if err := d.Append(row); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
	return d, nil
}
