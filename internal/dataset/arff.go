package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteARFF writes the dataset in Weka's ARFF format (all attributes
// numeric), the on-disk format the original study's toolchain consumed.
// The relation carries the target column name as metadata in a comment,
// since ARFF itself has no target designation (Weka conventionally uses
// the last attribute; WriteARFF reorders nothing and records the target
// explicitly).
func (d *Dataset) WriteARFF(w io.Writer, relation string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% target: %s\n", d.TargetName())
	fmt.Fprintf(bw, "@relation %s\n\n", quoteARFF(relation))
	for _, a := range d.attrs {
		fmt.Fprintf(bw, "@attribute %s numeric\n", quoteARFF(a.Name))
	}
	fmt.Fprintf(bw, "\n@data\n")
	for _, row := range d.rows {
		for i, v := range row {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: writing ARFF: %w", err)
	}
	return nil
}

// quoteARFF quotes names that contain ARFF-significant characters.
func quoteARFF(s string) string {
	if strings.ContainsAny(s, " ,{}%'\"\t") || s == "" {
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
	return s
}

// ReadARFF parses a numeric-only ARFF stream produced by WriteARFF or by
// Weka. The column named target becomes the target attribute; if target is
// empty, a "% target: NAME" comment is honored, falling back to the last
// attribute (Weka's convention).
func ReadARFF(r io.Reader, target string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var attrs []Attribute
	commentTarget := ""
	inData := false
	var d *Dataset
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "%") {
			rest := strings.TrimSpace(strings.TrimPrefix(text, "%"))
			if strings.HasPrefix(rest, "target:") {
				commentTarget = strings.TrimSpace(strings.TrimPrefix(rest, "target:"))
			}
			continue
		}
		lower := strings.ToLower(text)
		switch {
		case strings.HasPrefix(lower, "@relation"):
			// Name is not needed.
		case strings.HasPrefix(lower, "@attribute"):
			if inData {
				return nil, fmt.Errorf("dataset: ARFF line %d: @attribute after @data", line)
			}
			name, typ, err := parseARFFAttribute(text)
			if err != nil {
				return nil, fmt.Errorf("dataset: ARFF line %d: %w", line, err)
			}
			if typ != "numeric" && typ != "real" && typ != "integer" {
				return nil, fmt.Errorf("dataset: ARFF line %d: unsupported attribute type %q", line, typ)
			}
			attrs = append(attrs, Attribute{Name: name})
		case strings.HasPrefix(lower, "@data"):
			if len(attrs) == 0 {
				return nil, fmt.Errorf("dataset: ARFF has no attributes before @data")
			}
			want := target
			if want == "" {
				want = commentTarget
			}
			idx := len(attrs) - 1 // Weka convention: last attribute
			if want != "" {
				idx = -1
				for i, a := range attrs {
					if a.Name == want {
						idx = i
					}
				}
				if idx < 0 {
					return nil, fmt.Errorf("dataset: ARFF target %q not found", want)
				}
			}
			var err error
			d, err = New(attrs, idx)
			if err != nil {
				return nil, err
			}
			inData = true
		default:
			if !inData {
				return nil, fmt.Errorf("dataset: ARFF line %d: unexpected %q before @data", line, text)
			}
			fields := strings.Split(text, ",")
			if len(fields) != len(attrs) {
				return nil, fmt.Errorf("dataset: ARFF line %d: %d values, want %d", line, len(fields), len(attrs))
			}
			row := make(Instance, len(fields))
			for i, f := range fields {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: ARFF line %d column %d: %w", line, i+1, err)
				}
				row[i] = v
			}
			if err := d.Append(row); err != nil {
				return nil, fmt.Errorf("dataset: ARFF line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading ARFF: %w", err)
	}
	if d == nil {
		return nil, fmt.Errorf("dataset: ARFF stream has no @data section")
	}
	return d, nil
}

// parseARFFAttribute extracts the name and type from an @attribute line,
// handling quoted names.
func parseARFFAttribute(line string) (name, typ string, err error) {
	rest := strings.TrimSpace(line[len("@attribute"):])
	if rest == "" {
		return "", "", fmt.Errorf("empty @attribute")
	}
	if rest[0] == '\'' {
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\'' && rest[i-1] != '\\' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", "", fmt.Errorf("unterminated quoted attribute name")
		}
		name = strings.ReplaceAll(rest[1:end], "\\'", "'")
		typ = strings.ToLower(strings.TrimSpace(rest[end+1:]))
		return name, typ, nil
	}
	parts := strings.Fields(rest)
	if len(parts) < 2 {
		return "", "", fmt.Errorf("malformed @attribute %q", line)
	}
	return parts[0], strings.ToLower(parts[1]), nil
}
