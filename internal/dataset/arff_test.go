package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func arffSample() *Dataset {
	d := MustNew([]Attribute{{Name: "CPI"}, {Name: "L2M"}, {Name: "odd name"}}, 0)
	d.MustAppend(Instance{1.5, 0.004, 1})
	d.MustAppend(Instance{2.25, 0.02, -3.5})
	return d
}

func TestARFFRoundTrip(t *testing.T) {
	d := arffSample()
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "sections"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@relation sections") {
		t.Errorf("missing relation:\n%s", out)
	}
	if !strings.Contains(out, "'odd name'") {
		t.Errorf("name with space not quoted:\n%s", out)
	}
	back, err := ReadARFF(strings.NewReader(out), "")
	if err != nil {
		t.Fatal(err)
	}
	// The target comment routes CPI back to target even though it is the
	// first column.
	if back.TargetName() != "CPI" {
		t.Errorf("target %q after round trip", back.TargetName())
	}
	if back.Len() != d.Len() || back.NumAttrs() != d.NumAttrs() {
		t.Fatalf("shape %dx%d", back.Len(), back.NumAttrs())
	}
	for i := 0; i < d.Len(); i++ {
		for j := 0; j < d.NumAttrs(); j++ {
			if back.Value(i, j) != d.Value(i, j) {
				t.Errorf("cell (%d,%d) = %v, want %v", i, j, back.Value(i, j), d.Value(i, j))
			}
		}
	}
}

func TestReadARFFWekaConventions(t *testing.T) {
	// Without a target comment or explicit name, the last attribute is
	// the target (Weka convention).
	in := `@relation r
@attribute a numeric
@attribute b real
@data
1,2
3,4
`
	d, err := ReadARFF(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetName() != "b" {
		t.Errorf("default target %q, want b (last attribute)", d.TargetName())
	}
	// An explicit target overrides.
	d, err = ReadARFF(strings.NewReader(in), "a")
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetName() != "a" {
		t.Errorf("explicit target %q", d.TargetName())
	}
}

func TestReadARFFErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no data section", "@relation r\n@attribute a numeric\n"},
		{"nominal attribute", "@relation r\n@attribute a {x,y}\n@data\nx\n"},
		{"field count", "@relation r\n@attribute a numeric\n@data\n1,2\n"},
		{"bad number", "@relation r\n@attribute a numeric\n@data\nfoo\n"},
		{"missing target", "@relation r\n@attribute a numeric\n@data\n1\n"},
		{"data before attrs", "@relation r\n@data\n1\n"},
		{"stray line", "@relation r\nbogus\n@data\n"},
	}
	for _, c := range cases {
		target := ""
		if c.name == "missing target" {
			target = "zzz"
		}
		if _, err := ReadARFF(strings.NewReader(c.in), target); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadARFFQuotedAttribute(t *testing.T) {
	in := "@relation r\n@attribute 'two words' numeric\n@attribute y numeric\n@data\n5,6\n"
	d, err := ReadARFF(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	if d.AttrIndex("two words") != 0 {
		t.Error("quoted attribute name not parsed")
	}
}

func TestReadARFFCommentsAndBlanks(t *testing.T) {
	in := `% a comment
@relation r

@attribute a numeric
% another
@attribute b numeric

@data
% data comment
1,2
`
	d, err := ReadARFF(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Errorf("rows %d, want 1", d.Len())
	}
}
