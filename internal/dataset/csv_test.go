package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := MustNew([]Attribute{{Name: "CPI"}, {Name: "L2M"}, {Name: "BrMisPr"}}, 0)
	d.MustAppend(Instance{1.25, 0.004, 0.01})
	d.MustAppend(Instance{2.5, 0.02, 0})
	d.MustAppend(Instance{0.3333333333333333, 1e-9, 12345.678})

	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "CPI")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.NumAttrs() != d.NumAttrs() {
		t.Fatalf("round trip shape %dx%d, want %dx%d", back.Len(), back.NumAttrs(), d.Len(), d.NumAttrs())
	}
	if back.TargetIndex() != 0 || back.TargetName() != "CPI" {
		t.Error("target column lost in round trip")
	}
	for i := 0; i < d.Len(); i++ {
		for j := 0; j < d.NumAttrs(); j++ {
			if back.Value(i, j) != d.Value(i, j) {
				t.Errorf("cell (%d,%d) = %v, want %v", i, j, back.Value(i, j), d.Value(i, j))
			}
		}
	}
}

func TestReadCSVMissingTarget(t *testing.T) {
	in := "a,b\n1,2\n"
	if _, err := ReadCSV(strings.NewReader(in), "CPI"); err == nil {
		t.Error("missing target column accepted")
	}
}

func TestReadCSVBadNumber(t *testing.T) {
	in := "a,b\n1,notanumber\n"
	if _, err := ReadCSV(strings.NewReader(in), "a"); err == nil {
		t.Error("non-numeric cell accepted")
	}
}

func TestReadCSVNonTargetColumnOrder(t *testing.T) {
	in := "x,CPI\n3,1.5\n4,2.5\n"
	d, err := ReadCSV(strings.NewReader(in), "CPI")
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetIndex() != 1 {
		t.Errorf("TargetIndex = %d, want 1", d.TargetIndex())
	}
	if d.Target(0) != 1.5 || d.Value(0, 0) != 3 {
		t.Error("column mapping wrong")
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("CPI,x\n"), "CPI")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d, want 0", d.Len())
	}
}
