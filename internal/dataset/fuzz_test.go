package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hammers the CSV dataset parser: it must never panic, and
// any input it accepts must produce a well-formed dataset that survives
// a WriteCSV/ReadCSV round trip unchanged in shape.
func FuzzReadCSV(f *testing.F) {
	f.Add("CPI,L2M\n1.2,0.004\n0.8,0.001\n")
	f.Add("CPI\n1\n")
	f.Add("a,CPI,b\n1,2,3\n")
	f.Add("CPI,x\n1,notanumber\n")
	f.Add("CPI,x\n1\n")          // short row
	f.Add("CPI,x\n1,2,3\n")      // long row
	f.Add("CPI,CPI\n1,2\n")      // duplicate column
	f.Add("x,y\n1,2\n")          // no target column
	f.Add("CPI,x\n1,NaN\n")      // non-finite value
	f.Add("CPI,\"x\ny\"\n1,2\n") // quoted header with newline
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		d, err := ReadCSV(strings.NewReader(data), "CPI")
		if err != nil {
			return
		}
		if d.NumAttrs() < 1 || d.TargetName() != "CPI" {
			t.Fatalf("accepted dataset is malformed: %d attrs, target %q", d.NumAttrs(), d.TargetName())
		}
		for i := 0; i < d.Len(); i++ {
			if len(d.Row(i)) != d.NumAttrs() {
				t.Fatalf("row %d width %d != schema %d", i, len(d.Row(i)), d.NumAttrs())
			}
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset does not write: %v", err)
		}
		d2, err := ReadCSV(&buf, "CPI")
		if err != nil {
			t.Fatalf("round trip read failed: %v\n%s", err, buf.String())
		}
		if d2.Len() != d.Len() || d2.NumAttrs() != d.NumAttrs() {
			t.Fatalf("round trip changed shape: %dx%d != %dx%d",
				d2.Len(), d2.NumAttrs(), d.Len(), d.NumAttrs())
		}
		for i := 0; i < d.Len(); i++ {
			for j := 0; j < d.NumAttrs(); j++ {
				if d2.Value(i, j) != d.Value(i, j) {
					t.Fatalf("round trip changed value at (%d,%d): %v != %v",
						i, j, d2.Value(i, j), d.Value(i, j))
				}
			}
		}
	})
}
