package linreg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// makeLinear builds a dataset with y = b0 + sum bi*xi + noise.
func makeLinear(n int, coefs []float64, intercept, noise float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	attrs := []dataset.Attribute{{Name: "y"}}
	for i := range coefs {
		attrs = append(attrs, dataset.Attribute{Name: "x" + string(rune('A'+i))})
	}
	d := dataset.MustNew(attrs, 0)
	for i := 0; i < n; i++ {
		row := make(dataset.Instance, len(coefs)+1)
		y := intercept
		for j, c := range coefs {
			x := rng.NormFloat64()
			row[j+1] = x
			y += c * x
		}
		row[0] = y + noise*rng.NormFloat64()
		d.MustAppend(row)
	}
	return d
}

func TestFitRecoversExactCoefficients(t *testing.T) {
	want := []float64{2.5, -1.0, 0.25}
	d := makeLinear(500, want, 3.0, 0, 1)
	m, err := Fit(d, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3.0) > 1e-9 {
		t.Errorf("Intercept = %v, want 3.0", m.Intercept)
	}
	for i, c := range want {
		if math.Abs(m.Coefs[i]-c) > 1e-9 {
			t.Errorf("Coefs[%d] = %v, want %v", i, m.Coefs[i], c)
		}
	}
}

func TestFitNoisyData(t *testing.T) {
	want := []float64{4, -2}
	d := makeLinear(5000, want, 1.0, 0.1, 2)
	m, err := Fit(d, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range want {
		if math.Abs(m.Coefs[i]-c) > 0.05 {
			t.Errorf("Coefs[%d] = %v, want ~%v", i, m.Coefs[i], c)
		}
	}
}

func TestFitEmptyDataset(t *testing.T) {
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	if _, err := Fit(d, []int{1}); err == nil {
		t.Error("fit on empty dataset accepted")
	}
	if _, err := FitGreedy(d, []int{1}); err == nil {
		t.Error("greedy fit on empty dataset accepted")
	}
}

func TestFitConstantColumn(t *testing.T) {
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	for i := 0; i < 10; i++ {
		d.MustAppend(dataset.Instance{float64(i), 7}) // x constant
	}
	// QR fails on the collinear (intercept, constant) pair; the ridge
	// fallback must still return a finite model.
	m, err := Fit(d, []int{1})
	if err != nil {
		t.Fatalf("constant column: %v", err)
	}
	p := m.Predict(dataset.Instance{0, 7})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("prediction %v not finite", p)
	}
}

func TestFitGreedyDropsIrrelevant(t *testing.T) {
	// y depends on x1 only; x2 and x3 are pure noise.
	rng := rand.New(rand.NewSource(3))
	attrs := []dataset.Attribute{{Name: "y"}, {Name: "x1"}, {Name: "x2"}, {Name: "x3"}}
	d := dataset.MustNew(attrs, 0)
	for i := 0; i < 800; i++ {
		x1 := rng.NormFloat64()
		d.MustAppend(dataset.Instance{2 + 3*x1 + 0.05*rng.NormFloat64(), x1, rng.NormFloat64(), rng.NormFloat64()})
	}
	m, err := FitGreedy(d, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Uses(1) {
		t.Error("greedy dropped the true predictor x1")
	}
	if math.Abs(m.Coef(1)-3) > 0.1 {
		t.Errorf("x1 coefficient %v, want ~3", m.Coef(1))
	}
	kept := 0
	for _, c := range m.Coefs {
		if c != 0 {
			kept++
		}
	}
	if kept > 2 {
		t.Errorf("greedy kept %d terms, want at most 2 (x1 plus maybe one)", kept)
	}
}

func TestFitGreedyCollinearPair(t *testing.T) {
	// x2 = x1 exactly: the solver must not blow up and the model must
	// still predict well.
	rng := rand.New(rand.NewSource(4))
	attrs := []dataset.Attribute{{Name: "y"}, {Name: "x1"}, {Name: "x2"}}
	d := dataset.MustNew(attrs, 0)
	for i := 0; i < 400; i++ {
		x := rng.NormFloat64()
		d.MustAppend(dataset.Instance{5 * x, x, x})
	}
	m, err := FitGreedy(d, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(dataset.Instance{0, 1, 1})
	if math.Abs(pred-5) > 0.1 {
		t.Errorf("collinear prediction %v, want ~5", pred)
	}
}

func TestCorrectedErrorPenalizesParameters(t *testing.T) {
	d := makeLinear(50, []float64{1}, 0, 0.1, 5)
	m, err := Fit(d, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	mae := MeanAbsError(m, d)
	ce := CorrectedError(m, d)
	if ce <= mae {
		t.Errorf("CorrectedError %v should exceed MAE %v", ce, mae)
	}
}

func TestCorrectedErrorOverparameterized(t *testing.T) {
	d := makeLinear(3, []float64{1, 1, 1, 1}, 0, 0, 6)
	m := &Model{Intercept: 0, Attrs: []int{1, 2, 3, 4}, Coefs: []float64{1, 1, 1, 1}}
	ce := CorrectedError(m, d)
	if ce < 0 {
		t.Errorf("corrected error %v negative", ce)
	}
}

func TestFitConstant(t *testing.T) {
	d := makeLinear(20, []float64{1}, 2, 0, 7)
	m := FitConstant(d)
	if len(m.Coefs) != 0 {
		t.Error("constant model has coefficients")
	}
	if math.Abs(m.Intercept-d.TargetMean()) > 1e-12 {
		t.Errorf("constant model intercept %v != mean %v", m.Intercept, d.TargetMean())
	}
}

func TestModelString(t *testing.T) {
	m := &Model{Intercept: 0.52, Attrs: []int{7, 13}, Coefs: []float64{6.69, 139.91},
		Names: []string{"L1IM", "ItlbM"}}
	s := m.String()
	if !strings.Contains(s, "139.9*ItlbM") || !strings.Contains(s, "6.69*L1IM") {
		t.Errorf("String = %q", s)
	}
	// Largest coefficient should come first, like the paper's equations.
	if strings.Index(s, "ItlbM") > strings.Index(s, "L1IM") {
		t.Errorf("terms not sorted by magnitude: %q", s)
	}
}

func TestModelStringNegativeCoef(t *testing.T) {
	m := &Model{Intercept: 1, Attrs: []int{1}, Coefs: []float64{-2.5}, Names: []string{"x"}}
	if got := m.String(); !strings.Contains(got, "- 2.5*x") {
		t.Errorf("String = %q", got)
	}
}

func TestUsesAndCoef(t *testing.T) {
	m := &Model{Attrs: []int{3, 5}, Coefs: []float64{1.5, 0}}
	if !m.Uses(3) {
		t.Error("Uses(3) = false")
	}
	if m.Uses(5) {
		t.Error("Uses(5) = true for zero coefficient")
	}
	if m.Uses(4) {
		t.Error("Uses(4) = true for absent attr")
	}
	if m.Coef(3) != 1.5 || m.Coef(4) != 0 {
		t.Error("Coef lookup wrong")
	}
}

// Property: on exactly-linear data, the fitted model's training MAE is
// (near) zero for any random coefficients.
func TestFitPerfectDataProperty(t *testing.T) {
	f := func(seed int64, c1, c2 float64) bool {
		if math.IsNaN(c1) || math.IsInf(c1, 0) || math.Abs(c1) > 1e6 {
			c1 = 1
		}
		if math.IsNaN(c2) || math.IsInf(c2, 0) || math.Abs(c2) > 1e6 {
			c2 = -1
		}
		d := makeLinear(100, []float64{c1, c2}, 0.5, 0, seed)
		m, err := Fit(d, []int{1, 2})
		if err != nil {
			return false
		}
		scale := 1 + math.Abs(c1) + math.Abs(c2)
		return MeanAbsError(m, d) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: greedy fitting never produces non-finite coefficients.
func TestGreedyFiniteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(n uint8) bool {
		rows := int(n)%200 + 20
		d := makeLinear(rows, []float64{1, 2, 3}, 0, 0.2, rng.Int63())
		m, err := FitGreedy(d, []int{1, 2, 3})
		if err != nil {
			return false
		}
		if math.IsNaN(m.Intercept) || math.IsInf(m.Intercept, 0) {
			return false
		}
		for _, c := range m.Coefs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
