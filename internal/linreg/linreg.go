// Package linreg implements multiple linear regression for the model-tree
// leaf models and for the standalone linear baseline.
//
// The solver uses Householder QR factorization, which is numerically robust
// for the near-collinear event-counter columns that arise in practice (e.g.
// DtlbLdM and DtlbLdReM are highly correlated). When the design matrix is
// rank deficient the solver retries with a small ridge term.
//
// The package also provides the greedy attribute-elimination loop used by
// M5/M5': starting from the full model, attributes are dropped while doing
// so reduces the Akaike-style complexity-corrected training error
// err*(n+v)/(n-v), yielding the compact, interpretable leaf equations shown
// in the paper (Eq. 4 and Eq. 5).
package linreg

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Model is a fitted linear model: y = Intercept + sum_i Coef[i]*x[Attrs[i]].
// Attrs holds dataset column indices; Names holds the matching attribute
// names for rendering.
type Model struct {
	Intercept float64
	Attrs     []int
	Coefs     []float64
	Names     []string
}

// Predict evaluates the model on a full-width instance (indexed by dataset
// column).
func (m *Model) Predict(row dataset.Instance) float64 {
	y := m.Intercept
	for i, a := range m.Attrs {
		y += m.Coefs[i] * row[a]
	}
	return y
}

// NumParams returns the number of fitted parameters (coefficients plus
// intercept), used by complexity-corrected error estimates.
func (m *Model) NumParams() int { return len(m.Coefs) + 1 }

// Uses reports whether the model has a nonzero term for dataset column a.
func (m *Model) Uses(a int) bool {
	for i, idx := range m.Attrs {
		if idx == a && m.Coefs[i] != 0 {
			return true
		}
	}
	return false
}

// Coef returns the coefficient for dataset column a, or 0 when the column
// is not in the model.
func (m *Model) Coef(a int) float64 {
	for i, idx := range m.Attrs {
		if idx == a {
			return m.Coefs[i]
		}
	}
	return 0
}

// String renders the model in the paper's leaf-equation style, e.g.
// "CPI = 0.52 + 139.91*ItlbM + 6.69*L1IM".
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.4g", m.Intercept)
	type term struct {
		coef float64
		name string
	}
	terms := make([]term, 0, len(m.Coefs))
	for i, c := range m.Coefs {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("x%d", m.Attrs[i])
		if i < len(m.Names) && m.Names[i] != "" {
			name = m.Names[i]
		}
		terms = append(terms, term{c, name})
	}
	// Sort by descending absolute coefficient so the dominant events lead.
	sort.SliceStable(terms, func(i, j int) bool {
		return math.Abs(terms[i].coef) > math.Abs(terms[j].coef)
	})
	for _, t := range terms {
		if t.coef >= 0 {
			fmt.Fprintf(&b, " + %.4g*%s", t.coef, t.name)
		} else {
			fmt.Fprintf(&b, " - %.4g*%s", -t.coef, t.name)
		}
	}
	return b.String()
}

// ErrSingular is returned when the normal system cannot be solved even with
// ridge regularization.
var ErrSingular = errors.New("linreg: singular design matrix")

// Fit performs ordinary least squares of the dataset target on the given
// feature columns. It returns an error for an empty feature list only when
// the dataset is empty; fitting on zero rows is an error.
func Fit(d *dataset.Dataset, features []int) (*Model, error) {
	n := d.Len()
	if n == 0 {
		return nil, errors.New("linreg: cannot fit on empty dataset")
	}
	p := len(features) + 1 // +1 for intercept column
	// Build the design matrix column-major is unnecessary; row-major and
	// QR via Householder on a copy.
	a := make([]float64, n*p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := d.Row(i)
		a[i*p] = 1
		for j, f := range features {
			a[i*p+1+j] = row[f]
		}
		y[i] = d.Target(i)
	}
	beta, err := solveLS(a, y, n, p)
	if err != nil {
		// Retry with a ridge term scaled to the column magnitudes.
		beta, err = solveRidge(d, features, 1e-8)
		if err != nil {
			return nil, err
		}
	}
	m := &Model{
		Intercept: beta[0],
		Attrs:     append([]int(nil), features...),
		Coefs:     beta[1:],
		Names:     namesFor(d, features),
	}
	sanitize(m)
	return m, nil
}

func namesFor(d *dataset.Dataset, features []int) []string {
	names := make([]string, len(features))
	attrs := d.Attrs()
	for i, f := range features {
		names[i] = attrs[f].Name
	}
	return names
}

// sanitize zeroes out non-finite coefficients, which can appear when a
// column is constant within a leaf.
func sanitize(m *Model) {
	if math.IsNaN(m.Intercept) || math.IsInf(m.Intercept, 0) {
		m.Intercept = 0
	}
	for i, c := range m.Coefs {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			m.Coefs[i] = 0
		}
	}
}

// solveLS solves min ||A x - y|| by Householder QR. A is row-major n x p,
// destroyed in place. It returns ErrSingular when a diagonal of R is (near)
// zero.
func solveLS(a, y []float64, n, p int) ([]float64, error) {
	if n < p {
		return nil, ErrSingular
	}
	// Householder QR: for each column k, form the reflector from a[k:n, k]
	// and apply to remaining columns and to y.
	for k := 0; k < p; k++ {
		// Compute norm of column k below row k.
		norm := 0.0
		for i := k; i < n; i++ {
			v := a[i*p+k]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, ErrSingular
		}
		if a[k*p+k] > 0 {
			norm = -norm
		}
		// v = column; v[k] -= norm; normalize implicitly via vTv.
		a[k*p+k] -= norm
		vtv := 0.0
		for i := k; i < n; i++ {
			v := a[i*p+k]
			vtv += v * v
		}
		if vtv == 0 {
			return nil, ErrSingular
		}
		// Apply reflector to columns k+1..p-1.
		for j := k + 1; j < p; j++ {
			dot := 0.0
			for i := k; i < n; i++ {
				dot += a[i*p+k] * a[i*p+j]
			}
			f := 2 * dot / vtv
			for i := k; i < n; i++ {
				a[i*p+j] -= f * a[i*p+k]
			}
		}
		// Apply to y.
		dot := 0.0
		for i := k; i < n; i++ {
			dot += a[i*p+k] * y[i]
		}
		f := 2 * dot / vtv
		for i := k; i < n; i++ {
			y[i] -= f * a[i*p+k]
		}
		// Store R diagonal in place of the reflector head.
		a[k*p+k] = norm
	}
	// Back substitution on R (upper triangular, stored in a[0:p, 0:p] with
	// the strict lower part holding reflector data we no longer need).
	x := make([]float64, p)
	for k := p - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < p; j++ {
			s -= a[k*p+j] * x[j]
		}
		r := a[k*p+k]
		if math.Abs(r) < 1e-12 {
			return nil, ErrSingular
		}
		x[k] = s / r
	}
	return x, nil
}

// solveRidge solves the normal equations (X'X + lambda*I) b = X'y by
// Cholesky factorization. Used as a fallback for rank-deficient designs.
func solveRidge(d *dataset.Dataset, features []int, lambda float64) ([]float64, error) {
	n := d.Len()
	p := len(features) + 1
	xtx := make([]float64, p*p)
	xty := make([]float64, p)
	xi := make([]float64, p)
	for i := 0; i < n; i++ {
		row := d.Row(i)
		xi[0] = 1
		for j, f := range features {
			xi[1+j] = row[f]
		}
		yv := d.Target(i)
		for r := 0; r < p; r++ {
			xty[r] += xi[r] * yv
			for c := r; c < p; c++ {
				xtx[r*p+c] += xi[r] * xi[c]
			}
		}
	}
	// Scale ridge by the mean diagonal so it is unit-free.
	diagMean := 0.0
	for r := 0; r < p; r++ {
		diagMean += xtx[r*p+r]
	}
	diagMean /= float64(p)
	reg := lambda * (diagMean + 1)
	for attempt := 0; attempt < 8; attempt++ {
		m := make([]float64, p*p)
		copy(m, xtx)
		for r := 0; r < p; r++ {
			m[r*p+r] += reg
			for c := 0; c < r; c++ {
				m[r*p+c] = m[c*p+r]
			}
		}
		if b, ok := cholSolve(m, xty, p); ok {
			return b, nil
		}
		reg *= 100
	}
	return nil, ErrSingular
}

// cholSolve solves the symmetric positive-definite system m x = y in place.
func cholSolve(m, y []float64, p int) ([]float64, bool) {
	// Cholesky: m = L L'.
	for k := 0; k < p; k++ {
		s := m[k*p+k]
		for j := 0; j < k; j++ {
			s -= m[k*p+j] * m[k*p+j]
		}
		if s <= 0 {
			return nil, false
		}
		m[k*p+k] = math.Sqrt(s)
		for i := k + 1; i < p; i++ {
			s := m[i*p+k]
			for j := 0; j < k; j++ {
				s -= m[i*p+j] * m[k*p+j]
			}
			m[i*p+k] = s / m[k*p+k]
		}
	}
	// Forward solve L z = y.
	z := make([]float64, p)
	for i := 0; i < p; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s -= m[i*p+j] * z[j]
		}
		z[i] = s / m[i*p+i]
	}
	// Back solve L' x = z.
	x := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < p; j++ {
			s -= m[j*p+i] * x[j]
		}
		x[i] = s / m[i*p+i]
	}
	return x, true
}

// MeanAbsError returns the mean absolute training error of the model on d.
func MeanAbsError(m *Model, d *dataset.Dataset) float64 {
	n := d.Len()
	if n == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Abs(m.Predict(d.Row(i)) - d.Target(i))
	}
	return s / float64(n)
}

// CorrectedError is the M5 complexity-corrected error: the mean absolute
// error multiplied by (n+v)/(n-v), where v is the number of fitted
// parameters. It penalizes models with many parameters relative to the
// amount of data, and is the criterion used both for attribute dropping and
// for pruning decisions.
func CorrectedError(m *Model, d *dataset.Dataset) float64 {
	n := float64(d.Len())
	v := float64(m.NumParams())
	mae := MeanAbsError(m, d)
	if n-v <= 0 {
		// More parameters than data: treat as maximally complex.
		return mae * 10
	}
	return mae * (n + v) / (n - v)
}

// FitGreedy fits an OLS model on the candidate features and then greedily
// removes attributes while removal improves the complexity-corrected error.
// This is the M5' leaf-model simplification step and is what produces the
// sparse, readable equations in the paper.
//
// The search runs on cached normal equations: X'X and X'y are accumulated
// once over the data, and each candidate subset is solved by Cholesky on
// the corresponding submatrix — O(p^3) per candidate instead of a fresh
// O(n p^2) decomposition.
func FitGreedy(d *dataset.Dataset, features []int) (*Model, error) {
	n := d.Len()
	if n == 0 {
		return nil, errors.New("linreg: cannot fit on empty dataset")
	}
	g := newGreedyState(d, features)
	cur := make([]int, len(features)) // positions into features
	for i := range cur {
		cur[i] = i
	}
	bestBeta, err := g.solve(cur)
	if err != nil {
		return nil, err
	}
	// dropTol accepts a drop that worsens the corrected error by up to
	// this relative amount: rare-event attributes whose contribution is in
	// the noise get removed, keeping leaf models sparse and stable on
	// unseen sections.
	const dropTol = 1e-3
	bestErr := g.correctedError(bestBeta, cur)
	for len(cur) > 0 {
		improved := false
		var nextBeta []float64
		var nextSet []int
		nextErr := bestErr * (1 + dropTol)
		for drop := range cur {
			trial := make([]int, 0, len(cur)-1)
			trial = append(trial, cur[:drop]...)
			trial = append(trial, cur[drop+1:]...)
			beta, err := g.solve(trial)
			if err != nil {
				continue
			}
			if e := g.correctedError(beta, trial); e < nextErr {
				nextErr, nextBeta, nextSet = e, beta, trial
				improved = true
			}
		}
		if !improved {
			break
		}
		bestErr, bestBeta, cur = nextErr, nextBeta, nextSet
	}
	attrs := make([]int, len(cur))
	for i, pos := range cur {
		attrs[i] = features[pos]
	}
	m := &Model{
		Intercept: bestBeta[0],
		Attrs:     attrs,
		Coefs:     bestBeta[1:],
		Names:     namesFor(d, attrs),
	}
	sanitize(m)
	return m, nil
}

// ridgeRel is the relative ridge applied in standardized space during the
// greedy search, like Weka's LinearRegression ridge. It bounds the
// coefficients of near-collinear counter pairs (DtlbLdM vs DtlbLdReM are
// correlated above 0.99 on this data) so leaf models stay stable on unseen
// sections instead of exploding with huge opposite-sign pairs.
const ridgeRel = 1e-6

// greedyState caches standardized normal equations over the candidate
// features plus the raw data needed to score candidate subsets. Solving in
// standardized space keeps the system well conditioned even though raw
// event rates span five orders of magnitude.
type greedyState struct {
	d        *dataset.Dataset
	features []int
	mean     []float64 // per-feature means
	sd       []float64 // per-feature standard deviations (0 for constants)
	yMean    float64
	xtx      []float64 // standardized X'X (len(features) square)
	xty      []float64 // standardized X'(y - yMean)
}

func newGreedyState(d *dataset.Dataset, features []int) *greedyState {
	n := d.Len()
	p := len(features)
	g := &greedyState{
		d: d, features: features,
		mean: make([]float64, p), sd: make([]float64, p),
		xtx: make([]float64, p*p), xty: make([]float64, p),
	}
	for j, f := range features {
		g.mean[j] = d.ColumnMean(f)
		g.sd[j] = math.Sqrt(d.ColumnVariance(f))
	}
	g.yMean = d.TargetMean()
	xi := make([]float64, p)
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for j, f := range features {
			if g.sd[j] > 0 {
				xi[j] = (row[f] - g.mean[j]) / g.sd[j]
			} else {
				xi[j] = 0
			}
		}
		yc := d.Target(i) - g.yMean
		for r := 0; r < p; r++ {
			g.xty[r] += xi[r] * yc
			for c := r; c < p; c++ {
				g.xtx[r*p+c] += xi[r] * xi[c]
			}
		}
	}
	for r := 0; r < p; r++ {
		for c := 0; c < r; c++ {
			g.xtx[r*p+c] = g.xtx[c*p+r]
		}
	}
	return g
}

// solve returns [intercept, coefs...] in *raw* units for the subset of
// feature positions, solving the standardized ridge system and mapping
// back.
func (g *greedyState) solve(set []int) ([]float64, error) {
	p := len(g.features)
	// Keep only non-constant columns; constants get zero coefficients.
	active := make([]int, 0, len(set))
	for _, pos := range set {
		if g.sd[pos] > 0 {
			active = append(active, pos)
		}
	}
	k := len(active)
	beta := make([]float64, len(set)+1)
	if k > 0 {
		sub := make([]float64, k*k)
		rhs := make([]float64, k)
		for r := 0; r < k; r++ {
			rhs[r] = g.xty[active[r]]
			for c := 0; c < k; c++ {
				sub[r*k+c] = g.xtx[active[r]*p+active[c]]
			}
		}
		n := float64(g.d.Len())
		reg := ridgeRel * n
		var std []float64
		for attempt := 0; attempt < 6; attempt++ {
			m := make([]float64, k*k)
			copy(m, sub)
			for r := 0; r < k; r++ {
				m[r*k+r] += reg
			}
			var ok bool
			if std, ok = cholSolve(m, rhs, k); ok {
				break
			}
			std = nil
			reg *= 1000
		}
		if std == nil {
			return nil, ErrSingular
		}
		// Map standardized coefficients back to raw units.
		for i, pos := range active {
			for j, sp := range set {
				if sp == pos {
					beta[1+j] = std[i] / g.sd[pos]
				}
			}
		}
	}
	beta[0] = g.yMean
	for j, pos := range set {
		beta[0] -= beta[1+j] * g.mean[pos]
	}
	return beta, nil
}

// correctedError computes MAE*(n+v)/(n-v) for a candidate solution.
func (g *greedyState) correctedError(beta []float64, set []int) float64 {
	n := g.d.Len()
	s := 0.0
	for i := 0; i < n; i++ {
		row := g.d.Row(i)
		pred := beta[0]
		for j, pos := range set {
			pred += beta[1+j] * row[g.features[pos]]
		}
		s += math.Abs(pred - g.d.Target(i))
	}
	mae := s / float64(n)
	v := float64(len(set) + 1)
	nf := float64(n)
	if nf-v <= 0 {
		return mae * 10
	}
	return mae * (nf + v) / (nf - v)
}

// FitConstant returns the intercept-only model (the mean of the target),
// which is both the regression-tree leaf and the degenerate M5' leaf such
// as the paper's LM18 (CPI = 2.2).
func FitConstant(d *dataset.Dataset) *Model {
	return &Model{Intercept: d.TargetMean()}
}
