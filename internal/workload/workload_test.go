package workload

import (
	"math"
	"repro/internal/xrand"
	"testing"

	"repro/internal/sim/trace"
)

func testParams() Params {
	return Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.2,
		DataFootprint: 1 << 20, Pattern: Random, ColdFrac: 0.1,
		DepNearFrac: 0.2, ALUDepFrac: 0.3,
		BranchTakenProb: 0.5, BranchEntropy: 0.1, LoopFrac: 0.3,
		CodeFootprint: 32 << 10, JumpProb: 0.1,
	}
}

func TestParamsValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.LoadFrac = 0.9; p.StoreFrac = 0.5 }, // mix > 1
		func(p *Params) { p.LoadFrac = -0.1 },
		func(p *Params) { p.DataFootprint = 0 },
		func(p *Params) { p.CodeFootprint = -5 },
		func(p *Params) { p.Pattern = Stream; p.StrideB = 0 },
		func(p *Params) { p.BranchEntropy = 1.5 },
		func(p *Params) { p.ColdFrac = -0.2 },
		func(p *Params) { p.FreshPageFrac = 2 },
	}
	for i, mut := range cases {
		p := testParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(testParams(), 7)
	g2 := NewGenerator(testParams(), 7)
	var a, b trace.Inst
	for i := 0; i < 10000; i++ {
		g1.Next(&a)
		g2.Next(&b)
		if a != b {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a, b)
		}
	}
	g3 := NewGenerator(testParams(), 8)
	same := true
	for i := 0; i < 1000; i++ {
		g1.Next(&a)
		g3.Next(&b)
		if a != b {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestInstructionMixApproximate(t *testing.T) {
	p := testParams()
	p.LoopFrac = 0 // loops skew the dynamic mix; disable for this check
	p.JumpProb = 0
	g := NewGenerator(p, 1)
	var in trace.Inst
	counts := map[trace.Kind]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		g.Next(&in)
		counts[in.Kind]++
	}
	check := func(kind trace.Kind, want float64) {
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.08 {
			t.Errorf("%v fraction %.3f, want ~%.2f", kind, got, want)
		}
	}
	check(trace.Load, p.LoadFrac)
	check(trace.Store, p.StoreFrac)
	check(trace.Branch, p.BranchFrac)
}

func TestAddressesWithinRegions(t *testing.T) {
	p := testParams()
	g := NewGenerator(p, 2)
	var in trace.Inst
	for i := 0; i < 50000; i++ {
		g.Next(&in)
		switch in.Kind {
		case trace.Load, trace.Store:
			if in.Addr < 0x0000_7000_0000_0000 {
				t.Fatalf("data address %#x outside data region", in.Addr)
			}
		}
		if in.PC < 0x0000_4000_0000_0000 || in.PC >= 0x0000_7000_0000_0000 {
			t.Fatalf("PC %#x outside code region", in.PC)
		}
	}
}

func TestBranchTargetsStablePerPC(t *testing.T) {
	g := NewGenerator(testParams(), 3)
	var in trace.Inst
	targets := map[uint64]uint64{}
	for i := 0; i < 200000; i++ {
		g.Next(&in)
		if in.Kind != trace.Branch || !in.Taken {
			continue
		}
		if prev, ok := targets[in.PC]; ok {
			// Loop back-edges and jumps have per-PC fixed targets; only
			// loop *exits* differ (not taken), so any taken occurrence of
			// the same PC must agree.
			if prev != in.Target {
				t.Fatalf("branch %#x took targets %#x and %#x", in.PC, prev, in.Target)
			}
		} else {
			targets[in.PC] = in.Target
		}
	}
	if len(targets) == 0 {
		t.Fatal("no taken branches observed")
	}
}

func TestKindStablePerPC(t *testing.T) {
	g := NewGenerator(testParams(), 4)
	var in trace.Inst
	kinds := map[uint64]trace.Kind{}
	for i := 0; i < 100000; i++ {
		g.Next(&in)
		if prev, ok := kinds[in.PC]; ok && prev != in.Kind {
			t.Fatalf("PC %#x changed kind %v -> %v", in.PC, prev, in.Kind)
		}
		kinds[in.PC] = in.Kind
	}
}

func TestChaseLoadsAreDependent(t *testing.T) {
	p := testParams()
	p.Pattern = PointerChase
	p.ColdFrac = 1 // all cold accesses
	g := NewGenerator(p, 5)
	var in trace.Inst
	for i := 0; i < 20000; i++ {
		g.Next(&in)
		if in.Kind == trace.Load && in.DepDist == 0 {
			t.Fatal("pointer-chase load with no dependent consumer")
		}
	}
}

func TestStreamAdvancesSequentially(t *testing.T) {
	p := testParams()
	p.Pattern = Stream
	p.StrideB = 64
	p.ColdFrac = 1
	g := NewGenerator(p, 6)
	var in trace.Inst
	var prev uint64
	seen := 0
	for i := 0; i < 5000 && seen < 100; i++ {
		g.Next(&in)
		if in.Kind != trace.Load && in.Kind != trace.Store {
			continue
		}
		if seen > 0 && in.Addr > prev && in.Addr-prev > 4096 {
			t.Fatalf("stream jumped from %#x to %#x", prev, in.Addr)
		}
		prev = in.Addr
		seen++
	}
}

func TestFreshPageTouchesNewPages(t *testing.T) {
	p := testParams()
	p.FreshPageFrac = 0.2
	g := NewGenerator(p, 7)
	var in trace.Inst
	growth := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		g.Next(&in)
		if (in.Kind == trace.Load || in.Kind == trace.Store) && in.Addr >= 0x0000_7800_0000_0000 {
			page := in.Addr >> 12
			growth[page] = true
		}
	}
	if len(growth) < 100 {
		t.Errorf("only %d growth pages touched; fresh-page path inactive", len(growth))
	}
}

func TestPageBurstClustersPages(t *testing.T) {
	p := testParams()
	p.ColdFrac = 1
	p.PageBurstLen = 16
	g := NewGenerator(p, 8)
	var in trace.Inst
	var pages []uint64
	for i := 0; i < 30000 && len(pages) < 2000; i++ {
		g.Next(&in)
		if in.Kind == trace.Load || in.Kind == trace.Store {
			if in.Addr >= 0x0000_7800_0000_0000 {
				continue // ignore fresh-page noise accesses
			}
			pages = append(pages, in.Addr>>12)
		}
	}
	// Consecutive data accesses should frequently share a page.
	same := 0
	for i := 1; i < len(pages); i++ {
		if pages[i] == pages[i-1] {
			same++
		}
	}
	frac := float64(same) / float64(len(pages)-1)
	if frac < 0.7 {
		t.Errorf("page-burst same-page fraction %.2f, want > 0.7", frac)
	}
}

func TestSetParamsPreservesPosition(t *testing.T) {
	p := testParams()
	p.Pattern = Stream
	p.StrideB = 64
	p.ColdFrac = 1
	p.FreshPageFrac = 0
	g := NewGenerator(p, 9)
	var in trace.Inst
	var last uint64
	for i := 0; i < 1000; i++ {
		g.Next(&in)
		if in.Kind == trace.Load || in.Kind == trace.Store {
			last = in.Addr
		}
	}
	g.SetParams(p) // same params; position must not reset
	for i := 0; i < 100; i++ {
		g.Next(&in)
		if in.Kind == trace.Load || in.Kind == trace.Store {
			if in.Addr <= 0x0000_7000_0000_0000+64 {
				t.Fatalf("stream restarted at %#x after SetParams (was at %#x)", in.Addr, last)
			}
			return
		}
	}
}

func TestSetParamsClampsPositions(t *testing.T) {
	p := testParams()
	g := NewGenerator(p, 10)
	var in trace.Inst
	for i := 0; i < 1000; i++ {
		g.Next(&in)
	}
	small := p
	small.DataFootprint = 4096
	small.CodeFootprint = 1024
	g.SetParams(small)
	for i := 0; i < 1000; i++ {
		g.Next(&in)
		if in.PC-0x0000_4000_0000_0000 >= 1024 {
			t.Fatalf("PC %#x beyond shrunken code footprint", in.PC)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	rng := xrand.New(11)
	base := testParams()
	for i := 0; i < 500; i++ {
		q := jitter(base, rng)
		if err := q.Validate(); err != nil {
			t.Fatalf("jittered params invalid: %v", err)
		}
		if q.DataFootprint < int64(float64(base.DataFootprint)*0.5) ||
			q.DataFootprint > int64(float64(base.DataFootprint)*1.5) {
			t.Errorf("footprint jitter out of bounds: %d", q.DataFootprint)
		}
	}
}

func TestSuiteWellFormed(t *testing.T) {
	suite := Suite()
	if len(suite) < 12 {
		t.Fatalf("suite has only %d benchmarks", len(suite))
	}
	names := map[string]bool{}
	total := 0
	for _, b := range suite {
		if names[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		names[b.Name] = true
		if len(b.Phases) == 0 {
			t.Errorf("%s has no phases", b.Name)
		}
		for pi, ph := range b.Phases {
			if err := ph.Params.Validate(); err != nil {
				t.Errorf("%s phase %d: %v", b.Name, pi, err)
			}
			if ph.Sections <= 0 {
				t.Errorf("%s phase %d: %d sections", b.Name, pi, ph.Sections)
			}
		}
		total += b.TotalSections()
	}
	if total < 4000 {
		t.Errorf("suite totals %d sections; expected thousands", total)
	}
	for _, want := range []string{"429.mcf", "436.cactusADM", "403.gcc"} {
		if _, ok := BenchmarkByName(want); !ok {
			t.Errorf("suite missing %s", want)
		}
	}
	if _, ok := BenchmarkByName("nope"); ok {
		t.Error("unknown benchmark found")
	}
}

func TestScale(t *testing.T) {
	b := Suite()[0]
	s := b.Scale(0.1)
	if s.TotalSections() >= b.TotalSections() {
		t.Error("Scale(0.1) did not shrink")
	}
	tiny := b.Scale(0.000001)
	for _, ph := range tiny.Phases {
		if ph.Sections < 1 {
			t.Error("Scale produced empty phase")
		}
	}
}

func TestSectionSourceWalksPhases(t *testing.T) {
	b := Benchmark{Name: "t", Phases: []Phase{
		{Params: testParams(), Sections: 3},
		{Params: testParams(), Sections: 2},
	}}
	src := NewSectionSource(b, 1)
	var phases []int
	for {
		gen, ph := src.Next()
		if gen == nil {
			break
		}
		phases = append(phases, ph)
	}
	want := []int{0, 0, 0, 1, 1}
	if len(phases) != len(want) {
		t.Fatalf("phases %v", phases)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases %v, want %v", phases, want)
		}
	}
}

func TestAccessPatternString(t *testing.T) {
	for _, p := range []AccessPattern{Stream, Random, PointerChase} {
		if p.String() == "" {
			t.Errorf("pattern %d renders empty", int(p))
		}
	}
	if AccessPattern(9).String() == "" {
		t.Error("unknown pattern renders empty")
	}
}
