// Package workload synthesizes SPEC-CPU2006-like instruction streams for
// the simulated core. Each Benchmark is a sequence of Phases; each Phase is
// a parameterized kernel (instruction mix, memory footprint and access
// pattern, branch behaviour, code footprint, encoding hazards) plus a
// section budget. Per-section parameter jitter provides the within-class
// variation that the model tree's leaf regressions fit.
//
// The suite in suite.go is constructed so the named benchmarks reproduce
// the behavioural signatures the paper reports: 436.cactusADM sections are
// overwhelmingly high-L2-miss plus high-L1I-miss (the LM18 class),
// 429.mcf sections are dominated by dependent L2 and DTLB misses (LM17),
// and roughly a fifth of 403.gcc sections are length-changing-prefix
// stalled (the LM10 story).
package workload

import "fmt"

// AccessPattern selects how a kernel walks its data footprint.
type AccessPattern int

const (
	// Stream walks sequentially with a fixed stride (prefetch-friendly in
	// spirit; here it produces overlappable, independent misses).
	Stream AccessPattern = iota
	// Random picks uniform addresses in the footprint (independent misses,
	// DTLB-hostile for large footprints).
	Random
	// PointerChase picks random addresses with a dependent consumer,
	// serializing every miss — the mcf signature.
	PointerChase
)

// String names the pattern.
func (p AccessPattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case Random:
		return "random"
	case PointerChase:
		return "chase"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Params fully describes a kernel.
type Params struct {
	// LoadFrac, StoreFrac and BranchFrac give the instruction mix; the
	// remainder are non-memory, non-branch instructions.
	LoadFrac, StoreFrac, BranchFrac float64

	// DataFootprint is the bytes of data touched by the kernel.
	DataFootprint int64
	// Pattern selects the data access pattern.
	Pattern AccessPattern
	// StrideB is the stream stride in bytes (Stream pattern only).
	StrideB int64
	// ColdFrac is the fraction of data accesses that go to the large
	// footprint; the remainder hit a small hot working set (HotFootprint),
	// modeling the cache-friendly majority of real programs' accesses.
	ColdFrac float64
	// FreshPageFrac is the probability that a data access touches a
	// brand-new page (allocator growth, stack expansion, OS activity):
	// a guaranteed TLB miss and cold lines. Every real program has a
	// nonzero background rate, which keeps "any walks at all" from being
	// a perfect workload discriminator.
	FreshPageFrac float64
	// PageBurstLen, when positive, clusters Random/PointerChase cold
	// accesses: the kernel stays within one 4 KiB page for this many
	// accesses before jumping to a new random page. Page clustering
	// decouples L2 misses from DTLB misses — a grid sweep touches many
	// lines per page (one translation, many misses), while true pointer
	// chasing (PageBurstLen 0) misses both on every access.
	PageBurstLen int
	// HotFootprint is the hot working-set size in bytes (default 16 KB
	// when zero), sized to live comfortably in the L1D.
	HotFootprint int64

	// DepNearFrac is the fraction of loads with a consumer within a few
	// instructions even outside pointer chasing, exposing their latency.
	DepNearFrac float64
	// ALUDepFrac is the fraction of non-memory instructions on a tight
	// dependency chain (limits base ILP).
	ALUDepFrac float64

	// BranchTakenProb is the probability that a forward conditional branch
	// site is strongly-taken (bias 0.9) rather than strongly-not-taken
	// (bias 0.1), the bimodal structure of real conditionals.
	BranchTakenProb float64
	// BranchEntropy is the fraction of branch sites whose outcome is
	// data-dependent random (hard to predict); the rest follow stable
	// patterns the predictor learns.
	BranchEntropy float64
	// LoopFrac is the fraction of branch sites that are loop back-edges
	// with a fixed per-site trip count.
	LoopFrac float64

	// CodeFootprint is the bytes of hot code; footprints beyond the L1I
	// capacity drive L1IM, beyond the L2 drive instruction-side L2 misses.
	CodeFootprint int64
	// JumpProb is the per-branch probability of transferring to a random
	// spot in the code footprint (function calls / large control flow)
	// rather than a short loop edge.
	JumpProb float64

	// LCPFrac is the fraction of instructions carrying a length-changing
	// prefix.
	LCPFrac float64
	// MisalignFrac is the fraction of memory accesses that are misaligned.
	MisalignFrac float64
	// SplitFrac is the fraction of memory accesses that cross a cache
	// line.
	SplitFrac float64
	// BlockSTAFrac, BlockSTDFrac and BlockOvStFrac are the fractions of
	// loads hitting each load-block condition.
	BlockSTAFrac, BlockSTDFrac, BlockOvStFrac float64
}

// Validate checks that fractions are sane and footprints positive.
func (p Params) Validate() error {
	if p.LoadFrac < 0 || p.StoreFrac < 0 || p.BranchFrac < 0 ||
		p.LoadFrac+p.StoreFrac+p.BranchFrac > 1 {
		return fmt.Errorf("workload: instruction mix fractions invalid (%v/%v/%v)",
			p.LoadFrac, p.StoreFrac, p.BranchFrac)
	}
	if p.DataFootprint <= 0 {
		return fmt.Errorf("workload: data footprint %d must be positive", p.DataFootprint)
	}
	if p.CodeFootprint <= 0 {
		return fmt.Errorf("workload: code footprint %d must be positive", p.CodeFootprint)
	}
	if p.Pattern == Stream && p.StrideB <= 0 {
		return fmt.Errorf("workload: stream pattern requires positive stride, got %d", p.StrideB)
	}
	for _, f := range []float64{
		p.ColdFrac, p.FreshPageFrac,
		p.DepNearFrac, p.ALUDepFrac, p.BranchTakenProb, p.BranchEntropy, p.LoopFrac, p.JumpProb,
		p.LCPFrac, p.MisalignFrac, p.SplitFrac, p.BlockSTAFrac, p.BlockSTDFrac, p.BlockOvStFrac,
	} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload: fraction %v out of [0,1]", f)
		}
	}
	return nil
}

// Phase is a kernel plus its share of the benchmark's execution, in
// sections.
type Phase struct {
	Params   Params
	Sections int
}

// Benchmark is a named sequence of phases.
type Benchmark struct {
	Name   string
	Phases []Phase
}

// TotalSections returns the benchmark's section count.
func (b Benchmark) TotalSections() int {
	n := 0
	for _, ph := range b.Phases {
		n += ph.Sections
	}
	return n
}

// Scale returns a copy with each phase's section budget multiplied by f
// (minimum 1 section per phase). Used to shrink the suite for tests.
func (b Benchmark) Scale(f float64) Benchmark {
	out := Benchmark{Name: b.Name}
	for _, ph := range b.Phases {
		n := int(float64(ph.Sections) * f)
		if n < 1 {
			n = 1
		}
		out.Phases = append(out.Phases, Phase{Params: ph.Params, Sections: n})
	}
	return out
}
