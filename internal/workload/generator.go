package workload

import (
	"repro/internal/sim/trace"
	"repro/internal/xrand"
)

// Generator synthesizes the instruction stream of one kernel. It implements
// trace.Stream and runs forever; wrap with trace.Limit or drive it a
// section at a time.
type Generator struct {
	p Params
	// rng is the lagged-Fibonacci generator (package xrand): a
	// bit-exact math/rand clone whose draws avoid the Source interface
	// dispatch the synthesizer would otherwise pay several times per
	// instruction.
	rng *xrand.Rand

	// Address-space layout: code and data live in disjoint regions so
	// I-side and D-side structures do not alias.
	codeBase uint64
	dataBase uint64

	pc      uint64 // offset within the code footprint
	dataPos uint64 // current stream position within the data footprint
	hotPos  uint64 // rotating position within the hot working set
	hotSize uint64 // hot working-set size in bytes

	// pendingStore counts down instructions since the last store, used to
	// decide block conditions plausibly (a load can only be blocked by a
	// recent store).
	sinceStore int

	// Loop state: the back-edge branch currently iterating and its
	// remaining trips. Bounded trip counts keep loop bodies from
	// dominating the dynamic instruction mix.
	loopPC   uint64
	loopLeft uint64

	// Page-burst state: the page currently being worked and the remaining
	// accesses before moving to a new page (PageBurstLen > 0 only).
	burstPage uint64
	burstLeft int

	// freshPage is the next never-before-touched page index, for
	// FreshPageFrac accesses (allocator growth).
	freshPage uint64

	// memo is a direct-mapped cache of the per-PC static hash values
	// consulted on every instruction (kind, LCP, misalignment, split).
	// They are pure functions of the PC, so memoized entries return the
	// exact float64 bits the hashes would — the stream is byte-identical —
	// while loops stop paying four avalanche mixes per revisited site.
	memo []pcStatic
}

// pcStatic holds the memoized static properties of one instruction site.
type pcStatic struct {
	pc    uint64
	kind  float64 // staticU01(pc, saltKind)
	lcp   float64 // staticU01(pc, saltLCP)
	mis   float64 // staticU01(pc, saltMisalign)
	split float64 // staticU01(pc, saltSplit)
}

// pcMemoSize is the direct-mapped memo capacity; PCs advance in 4-byte
// steps, so the table is indexed by pc>>2.
const pcMemoSize = 4096

// static returns the memo entry for pc, computing it on first touch or
// after a conflict eviction.
func (g *Generator) static(pc uint64) *pcStatic {
	e := &g.memo[(pc>>2)&(pcMemoSize-1)]
	if e.pc != pc {
		e.pc = pc
		e.kind = staticU01(pc, saltKind)
		e.lcp = staticU01(pc, saltLCP)
		e.mis = staticU01(pc, saltMisalign)
		e.split = staticU01(pc, saltSplit)
	}
	return e
}

// NewGenerator builds a generator for the kernel. It panics on invalid
// Params, which are static program data in this repository.
func NewGenerator(p Params, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	hot := uint64(p.HotFootprint)
	if hot == 0 {
		hot = 16 << 10
	}
	return &Generator{
		p:          p,
		rng:        xrand.New(seed),
		codeBase:   0x0000_4000_0000_0000,
		dataBase:   0x0000_7000_0000_0000,
		hotSize:    hot,
		sinceStore: 1 << 20,
		memo:       make([]pcStatic, pcMemoSize),
	}
}

// Params returns the kernel parameters.
func (g *Generator) Params() Params { return g.p }

// SetParams swaps in new kernel parameters while preserving streaming state
// (data position, code position, loop state, RNG). Section-to-section
// parameter jitter must not reset positions: restarting a multi-megabyte
// stream at zero every section would make its first hundreds of kilobytes
// L2-resident and erase the very miss behaviour the kernel models. It
// panics on invalid Params, like NewGenerator.
func (g *Generator) SetParams(p Params) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g.p = p
	hot := uint64(p.HotFootprint)
	if hot == 0 {
		hot = 16 << 10
	}
	g.hotSize = hot
	// Re-clamp positions to the possibly smaller footprints.
	if g.pc >= uint64(p.CodeFootprint) {
		g.pc = 0
	}
	if g.dataPos >= uint64(p.DataFootprint) {
		g.dataPos = 0
	}
	if g.hotPos >= g.hotSize {
		g.hotPos = 0
	}
}

// Next implements trace.Stream; it always returns true.
//
// The instruction *kind* at a given PC is a deterministic hash of the PC,
// not a per-visit coin flip: real code has a fixed instruction at every
// address, and that stability is what lets branch history repeat and the
// predictor train. Operand-level details (addresses, outcomes of
// data-dependent branches) remain stochastic.
func (g *Generator) Next(in *trace.Inst) bool {
	*in = trace.Inst{}
	g.nextCleared(in)
	return true
}

// nextCleared is Next's body, assuming *in is already zeroed. NextBlock
// zeroes a whole block with one memclr instead of one record at a time.
func (g *Generator) nextCleared(in *trace.Inst) {
	p := &g.p
	in.PC = g.codeBase + g.pc
	g.advancePC(4)

	st := g.static(in.PC)
	r := st.kind
	switch {
	case r < p.LoadFrac:
		g.genLoad(in, st)
	case r < p.LoadFrac+p.StoreFrac:
		g.genStore(in, st)
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac:
		g.genBranch(in)
	default:
		in.Kind = trace.Other
		if g.rng.Float64() < p.ALUDepFrac {
			in.DepDist = uint8(1 + g.rng.Intn(3))
		}
	}

	// LCP encoding is a static property of the instruction at this PC.
	if st.lcp < p.LCPFrac {
		in.LCP = true
	}
	g.sinceStore++
}

// NextBlock implements trace.BlockStream: it fills all of buf (the
// generator is infinite) and returns len(buf). Each record is produced by
// the same Next logic in the same order, so a block-driven consumer sees
// the byte-identical instruction sequence of a record-at-a-time pull —
// just without paying an interface dispatch per instruction.
func (g *Generator) NextBlock(buf []trace.Inst) int {
	clear(buf)
	for i := range buf {
		g.nextCleared(&buf[i])
	}
	return len(buf)
}

func (g *Generator) advancePC(bytes uint64) {
	g.pc += bytes
	if g.pc >= uint64(g.p.CodeFootprint) {
		g.pc = 0
	}
}

// dataAddr returns the next data address: a cold access walks the large
// footprint per the configured pattern; a hot access rotates through the
// small L1-resident working set. isCold reports which it was, so the
// caller can attach dependency behaviour only to cold pointer chasing.
func (g *Generator) dataAddr() (addr uint64, isCold bool) {
	p := &g.p
	if p.FreshPageFrac > 0 && g.rng.Float64() < p.FreshPageFrac {
		// Touch a never-seen page in a separate growth region: guaranteed
		// TLB miss and cold line, like allocator or stack growth.
		g.freshPage++
		const growthBase = 0x0000_7800_0000_0000
		return growthBase + g.freshPage<<12 + uint64(g.rng.Intn(4096))&^7, true
	}
	if g.rng.Float64() >= p.ColdFrac {
		// Hot working set, accessed in the kernel's own style: streaming
		// kernels rotate through it, irregular kernels hit it randomly.
		// The hot region starts at the next line boundary past the cold
		// footprint so hot accesses are naturally aligned.
		if p.Pattern == Stream {
			g.hotPos = (g.hotPos + 64) % g.hotSize
		} else {
			g.hotPos = uint64(g.rng.Int63n(int64(g.hotSize))) &^ 7
		}
		hotBase := (uint64(p.DataFootprint) + 63) &^ 63
		return g.dataBase + hotBase + g.hotPos, false
	}
	fp := uint64(p.DataFootprint)
	switch {
	case p.Pattern == Stream:
		g.dataPos += uint64(p.StrideB)
		if g.dataPos >= fp {
			g.dataPos = 0
		}
	case p.PageBurstLen > 0:
		// Page-clustered irregular access: many lines per translation.
		if g.burstLeft <= 0 {
			pages := fp >> 12
			if pages == 0 {
				pages = 1
			}
			g.burstPage = uint64(g.rng.Int63n(int64(pages)))
			g.burstLeft = p.PageBurstLen
		}
		g.burstLeft--
		g.dataPos = g.burstPage<<12 | uint64(g.rng.Intn(4096))&^7
	default: // Random, PointerChase
		// Align to 8 bytes like typical pointer/word accesses.
		g.dataPos = uint64(g.rng.Int63n(p.DataFootprint)) &^ 7
	}
	return g.dataBase + g.dataPos, true
}

func (g *Generator) genLoad(in *trace.Inst, st *pcStatic) {
	p := &g.p
	in.Kind = trace.Load
	in.Size = 8
	addr, isCold := g.dataAddr()
	in.Addr = addr

	if isCold && p.Pattern == PointerChase {
		// The next pointer is consumed immediately: dependent chain.
		in.DepDist = 1
	} else if g.rng.Float64() < p.DepNearFrac {
		in.DepDist = uint8(1 + g.rng.Intn(4))
	}

	// Alignment hazards are static properties of the access site.
	if st.mis < p.MisalignFrac {
		// Misaligned within a line (offset 1), distinct from splits.
		in.Misaligned = true
		in.Addr = (in.Addr &^ 63) | 1
	}
	if st.split < p.SplitFrac {
		// Place the access so it straddles a 64-byte boundary.
		in.Addr = (in.Addr &^ 63) + 60
	}
	// Block conditions require a store in flight.
	if g.sinceStore < 8 {
		if g.rng.Float64() < p.BlockSTAFrac {
			in.BlockSTA = true
		}
		if g.rng.Float64() < p.BlockSTDFrac {
			in.BlockSTD = true
		}
		if g.rng.Float64() < p.BlockOvStFrac {
			in.BlockOverlap = true
		}
	}
}

func (g *Generator) genStore(in *trace.Inst, st *pcStatic) {
	p := &g.p
	in.Kind = trace.Store
	in.Size = 8
	in.Addr, _ = g.dataAddr()
	if st.mis < p.MisalignFrac {
		in.Misaligned = true
		in.Addr = (in.Addr &^ 63) | 1
	}
	if st.split < p.SplitFrac {
		in.Addr = (in.Addr &^ 63) + 60
	}
	g.sinceStore = 0
}

// splitmix64 is the standard avalanche mixer; it gives every static
// instruction (identified by PC) stable pseudo-random properties: its kind,
// and for branches the direction bias, data-dependence, and fixed target.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Salts for the independent static properties of an instruction. Each
// property uses its own salted hash so conditioning on one (e.g. "this PC
// is a branch") does not bias another (e.g. its direction).
const (
	saltKind uint64 = iota + 1
	saltDirection
	saltDataDep
	saltJump
	saltTarget
	saltLoopEdge
	saltLCP
	saltMisalign
	saltSplit
	saltLoop
	saltTrip
	saltSkip
)

// staticU01 returns a stable uniform [0,1) value for (pc, salt).
func staticU01(pc, salt uint64) float64 {
	return float64(splitmix64(pc^salt*0x9E3779B97F4A7C15)>>11) / float64(1<<53)
}

// staticU64 returns a stable 64-bit hash for (pc, salt).
func staticU64(pc, salt uint64) uint64 {
	return splitmix64(pc ^ salt*0x9E3779B97F4A7C15)
}

// genBranch models four static branch classes, each a fixed property of the
// branch site (so the predictor and BTB can learn what real code lets them
// learn):
//
//   - data-dependent conditionals (BranchEntropy of sites): coin-flip
//     outcomes — these are what drives BrMisPr;
//   - loop back-edges (LoopFrac of the rest): taken until a fixed per-site
//     trip count expires, mispredicted roughly once per loop exit;
//   - far jumps/calls (JumpProb of the rest): always taken to a fixed
//     target — these spread execution over the code footprint;
//   - forward conditionals (the remainder): strongly biased per site
//     (0.9 taken or 0.1 taken), skipping a short fixed distance ahead.
func (g *Generator) genBranch(in *trace.Inst) {
	p := &g.p
	in.Kind = trace.Branch
	pc := in.PC

	switch {
	case staticU01(pc, saltDataDep) < p.BranchEntropy:
		in.Taken = g.rng.Float64() < 0.5
		if in.Taken {
			g.skipForward(pc)
		}
	case staticU01(pc, saltLoop) < p.LoopFrac:
		if g.loopPC != pc {
			// Entering the loop: fixed trip count for this back edge.
			g.loopPC = pc
			g.loopLeft = 4 + staticU64(pc, saltTrip)%48
		}
		if g.loopLeft > 0 {
			g.loopLeft--
			in.Taken = true
			back := 16 + staticU64(pc, saltLoopEdge)%256
			if back > g.pc {
				g.pc = 0
			} else {
				g.pc -= back
			}
		} else {
			// Loop exit: fall through and forget the loop.
			in.Taken = false
			g.loopPC = 0
		}
	case staticU01(pc, saltJump) < p.JumpProb:
		in.Taken = true
		g.pc = (staticU64(pc, saltTarget) % uint64(p.CodeFootprint)) &^ 15
	default:
		bias := 0.1
		if staticU01(pc, saltDirection) < p.BranchTakenProb {
			bias = 0.9
		}
		in.Taken = g.rng.Float64() < bias
		if in.Taken {
			g.skipForward(pc)
		}
	}
	if in.Taken {
		in.Target = g.codeBase + g.pc
	}
}

// skipForward advances the PC by a short fixed per-site distance, wrapping
// at the code footprint.
func (g *Generator) skipForward(pc uint64) {
	skip := 8 + staticU64(pc, saltSkip)%120
	g.pc += skip
	if g.pc >= uint64(g.p.CodeFootprint) {
		g.pc = 0
	}
}

// jitter returns a copy of p with bounded multiplicative noise applied to
// the continuous knobs. The model tree sees this as within-class spread;
// without it every section in a phase would be an identical point and the
// leaf regressions would be degenerate.
func jitter(p Params, rng *xrand.Rand) Params {
	mul := func(v float64, spread float64) float64 {
		return v * (1 + spread*(2*rng.Float64()-1))
	}
	clamp01 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	q := p
	q.ColdFrac = clamp01(mul(p.ColdFrac, 0.20))
	q.FreshPageFrac = clamp01(mul(p.FreshPageFrac, 0.40))
	q.DataFootprint = int64(mul(float64(p.DataFootprint), 0.30))
	if q.DataFootprint < 4096 {
		q.DataFootprint = 4096
	}
	q.CodeFootprint = int64(mul(float64(p.CodeFootprint), 0.30))
	if q.CodeFootprint < 1024 {
		q.CodeFootprint = 1024
	}
	if p.HotFootprint > 0 {
		q.HotFootprint = int64(mul(float64(p.HotFootprint), 0.25))
		if q.HotFootprint < 4096 {
			q.HotFootprint = 4096
		}
	}
	q.LoadFrac = clamp01(mul(p.LoadFrac, 0.15))
	q.StoreFrac = clamp01(mul(p.StoreFrac, 0.15))
	q.BranchFrac = clamp01(mul(p.BranchFrac, 0.15))
	// Renormalize if the mix overflows.
	if s := q.LoadFrac + q.StoreFrac + q.BranchFrac; s > 0.95 {
		q.LoadFrac *= 0.95 / s
		q.StoreFrac *= 0.95 / s
		q.BranchFrac *= 0.95 / s
	}
	q.BranchEntropy = clamp01(mul(p.BranchEntropy, 0.25))
	// DepNearFrac modulates how much latency the out-of-order core hides —
	// an effect the counters cannot observe — so its spread is kept small:
	// it is the paper's irreducible error term, not useful signal.
	q.DepNearFrac = clamp01(mul(p.DepNearFrac, 0.08))
	q.LCPFrac = clamp01(mul(p.LCPFrac, 0.30))
	q.MisalignFrac = clamp01(mul(p.MisalignFrac, 0.30))
	q.SplitFrac = clamp01(mul(p.SplitFrac, 0.30))
	q.BlockSTAFrac = clamp01(mul(p.BlockSTAFrac, 0.30))
	q.BlockSTDFrac = clamp01(mul(p.BlockSTDFrac, 0.30))
	q.BlockOvStFrac = clamp01(mul(p.BlockOvStFrac, 0.30))
	return q
}

// SectionSource yields, per call, the generator for the next section of a
// benchmark, walking its phases in order. Parameters are re-jittered every
// section, but the generator's streaming state persists across the
// sections of a phase, as it would in a real continuous execution. It
// reports the phase index alongside so callers can label sections.
type SectionSource struct {
	bench    Benchmark
	seed     int64
	jrng     *xrand.Rand
	phase    int
	inPhase  int
	produced int
	gen      *Generator // persistent within the current phase
	genPhase int        // phase gen was created for
}

// NewSectionSource builds a section source for the benchmark.
func NewSectionSource(b Benchmark, seed int64) *SectionSource {
	return &SectionSource{
		bench:    b,
		seed:     seed,
		jrng:     xrand.New(seed ^ 0x5DEECE66D),
		genPhase: -1,
	}
}

// Next returns a generator for the next section and its phase index, or
// (nil, -1) when the benchmark is exhausted.
func (s *SectionSource) Next() (*Generator, int) {
	for s.phase < len(s.bench.Phases) && s.inPhase >= s.bench.Phases[s.phase].Sections {
		s.phase++
		s.inPhase = 0
	}
	if s.phase >= len(s.bench.Phases) {
		return nil, -1
	}
	p := jitter(s.bench.Phases[s.phase].Params, s.jrng)
	if s.gen == nil || s.genPhase != s.phase {
		s.gen = NewGenerator(p, s.seed+int64(s.produced)*7919+int64(s.phase))
		s.genPhase = s.phase
	} else {
		s.gen.SetParams(p)
	}
	s.inPhase++
	s.produced++
	return s.gen, s.phase
}
