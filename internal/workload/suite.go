package workload

// The suite below is the synthetic stand-in for the paper's "subset of
// SPEC CPU2006". Parameter choices target the per-benchmark signatures the
// paper reports and the general behaviour of these programs on Core 2
// hardware:
//
//   - 436.cactusADM: >=95% of sections with high L2 misses AND high L1I
//     misses (the paper's LM18 class, CPI ~ 2.2).
//   - 429.mcf: >=70% of sections with high L2 + high L1D misses and heavy
//     DTLB pressure from dependent pointer chasing (LM17).
//   - 403.gcc: ~20% of sections limited by length-changing-prefix stalls
//     (the LM10 narrative), the rest a mix of branchy/compute phases.
//   - memory streamers (462.libquantum, 470.lbm) with high L2 miss counts
//     but overlapped (MLP) latency — the interaction a fixed-penalty model
//     cannot express.
//   - branch-mispredict bound kernels (458.sjeng, 445.gobmk),
//     compute-bound kernels (444.namd, 456.hmmer), and load-block /
//     misalignment kernels (400.perlbench, 464.h264ref).

// mix is a helper for common instruction mixes.
func mix(p Params, load, store, branch float64) Params {
	p.LoadFrac, p.StoreFrac, p.BranchFrac = load, store, branch
	return p
}

// base returns the shared defaults every kernel starts from: a mildly
// branchy integer mix, L1-resident data, predictable branches, small code.
func base() Params {
	return Params{
		LoadFrac:        0.30,
		StoreFrac:       0.12,
		BranchFrac:      0.18,
		DataFootprint:   64 << 10,
		Pattern:         Random,
		ColdFrac:        0.05,
		DepNearFrac:     0.20,
		ALUDepFrac:      0.30,
		BranchTakenProb: 0.55,
		BranchEntropy:   0.015,
		FreshPageFrac:   0.0030,
		LoopFrac:        0.30,
		CodeFootprint:   16 << 10,
		JumpProb:        0.05,
	}
}

// Suite returns the full synthetic benchmark set with its default section
// budgets (roughly 7,600 sections in total, matching the scale at which
// the paper's 430-instance leaf minimum yields a tree of ~18 leaves).
func Suite() []Benchmark {
	return []Benchmark{
		mcf(), cactusADM(), gcc(), bzip2(), sjeng(), libquantum(),
		namd(), omnetpp(), hmmer(), gobmk(), lbm(), xalancbmk(),
		h264ref(), soplex(), astar(), perlbench(),
	}
}

// SuiteScaled returns the suite with every phase's section budget scaled by
// f, for fast tests and examples.
func SuiteScaled(f float64) []Benchmark {
	full := Suite()
	out := make([]Benchmark, len(full))
	for i, b := range full {
		out[i] = b.Scale(f)
	}
	return out
}

// BenchmarkByName returns the named benchmark from the suite, or false.
func BenchmarkByName(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

func mcf() Benchmark {
	// Dominant phase: dependent pointer chasing over a footprint far beyond
	// L2 and DTLB reach. Every miss serializes (full memory latency) and
	// walks the page tables.
	chase := mix(base(), 0.34, 0.10, 0.16)
	chase.Pattern = PointerChase
	chase.DataFootprint = 64 << 20
	chase.ColdFrac = 0.05
	chase.BranchEntropy = 0.05
	// Secondary phase: network simplex arithmetic on cached rows.
	arith := mix(base(), 0.30, 0.10, 0.16)
	arith.Pattern = PointerChase
	arith.DataFootprint = 12 << 20
	arith.ColdFrac = 0.012
	arith.BranchEntropy = 0.04
	return Benchmark{Name: "429.mcf", Phases: []Phase{
		{Params: chase, Sections: 380},
		{Params: arith, Sections: 120},
	}}
}

func cactusADM() Benchmark {
	// >=95% of sections: huge straight-line loop body (code far beyond
	// L1I, competing with data for L2) — the LM18 signature. The grid
	// sweep's gather pattern is irregular enough to defeat the stream
	// prefetcher, so its data misses are demand misses.
	big := mix(base(), 0.34, 0.14, 0.08)
	big.CodeFootprint = 3 << 20
	big.JumpProb = 0.60
	big.Pattern = Random
	big.DataFootprint = 16 << 20
	big.ColdFrac = 0.045
	big.DepNearFrac = 0.10
	big.PageBurstLen = 16
	// Startup/setup phase, ordinary behaviour.
	setup := mix(base(), 0.30, 0.12, 0.15)
	return Benchmark{Name: "436.cactusADM", Phases: []Phase{
		{Params: setup, Sections: 20},
		{Params: big, Sections: 480},
	}}
}

func gcc() Benchmark {
	// Parsing: branchy, moderate code footprint.
	parse := mix(base(), 0.28, 0.12, 0.22)
	parse.CodeFootprint = 192 << 10
	parse.JumpProb = 0.25
	parse.BranchEntropy = 0.06
	parse.DataFootprint = 2 << 20
	parse.ColdFrac = 0.04
	// Optimization passes emitting length-changing prefixes: the ~20% of
	// sections the paper attributes to LCP stalls (alongside cache misses).
	lcp := mix(base(), 0.30, 0.14, 0.16)
	lcp.LCPFrac = 0.045
	lcp.DataFootprint = 4 << 20
	lcp.ColdFrac = 0.05
	lcp.CodeFootprint = 96 << 10
	lcp.JumpProb = 0.15
	// Code generation: store-heavy.
	codegen := mix(base(), 0.26, 0.20, 0.16)
	codegen.DataFootprint = 3 << 20
	codegen.ColdFrac = 0.06
	return Benchmark{Name: "403.gcc", Phases: []Phase{
		{Params: parse, Sections: 220},
		{Params: lcp, Sections: 110},
		{Params: codegen, Sections: 170},
	}}
}

func bzip2() Benchmark {
	compress := mix(base(), 0.28, 0.12, 0.20)
	compress.BranchEntropy = 0.08
	compress.DataFootprint = 3 << 20
	compress.ColdFrac = 0.10
	compress.Pattern = Random
	decompress := mix(base(), 0.30, 0.14, 0.18)
	decompress.BranchEntropy = 0.06
	decompress.DataFootprint = 1 << 20
	decompress.ColdFrac = 0.08
	return Benchmark{Name: "401.bzip2", Phases: []Phase{
		{Params: compress, Sections: 260},
		{Params: decompress, Sections: 180},
	}}
}

func sjeng() Benchmark {
	// Chess search: unpredictable branches on a cached board.
	search := mix(base(), 0.26, 0.10, 0.24)
	search.BranchEntropy = 0.12
	search.DataFootprint = 512 << 10
	search.ColdFrac = 0.06
	search.CodeFootprint = 48 << 10
	search.JumpProb = 0.15
	eval := mix(base(), 0.28, 0.10, 0.20)
	eval.BranchEntropy = 0.07
	eval.DataFootprint = 256 << 10
	eval.ColdFrac = 0.05
	return Benchmark{Name: "458.sjeng", Phases: []Phase{
		{Params: search, Sections: 320},
		{Params: eval, Sections: 120},
	}}
}

func libquantum() Benchmark {
	// Quantum register streaming: enormous independent sequential loads —
	// high L2 miss counts whose latency overlaps (MLP), so the effective
	// per-miss cost is a fraction of memory latency.
	stream := mix(base(), 0.26, 0.08, 0.14)
	stream.Pattern = Stream
	stream.StrideB = 8
	stream.DataFootprint = 48 << 20
	stream.ColdFrac = 0.85
	stream.DepNearFrac = 0.02
	stream.BranchEntropy = 0.02
	return Benchmark{Name: "462.libquantum", Phases: []Phase{
		{Params: stream, Sections: 420},
	}}
}

func namd() Benchmark {
	// Molecular dynamics: compute-bound with long FP dependency chains.
	compute := mix(base(), 0.28, 0.08, 0.08)
	compute.ALUDepFrac = 0.55
	// Dependency chains live in the FP ALU work, not behind the loads, so
	// the out-of-order core hides the L2-resident working set's latency.
	compute.DepNearFrac = 0.05
	compute.DataFootprint = 512 << 10
	compute.ColdFrac = 0.02
	compute.BranchEntropy = 0.02
	// Particle neighbour lists: a random-access working set beyond the L0
	// DTLB's reach but cheap to serve from L2 — DTLB0 misses without the
	// CPI cost of real memory misses.
	compute.HotFootprint = 96 << 10
	return Benchmark{Name: "444.namd", Phases: []Phase{
		{Params: compute, Sections: 400},
	}}
}

func omnetpp() Benchmark {
	// Discrete event simulation: pointer-heavy heap traffic, DTLB-hostile.
	events := mix(base(), 0.32, 0.14, 0.18)
	events.Pattern = PointerChase
	events.DataFootprint = 20 << 20
	events.ColdFrac = 0.02
	events.BranchEntropy = 0.045
	events.CodeFootprint = 128 << 10
	events.JumpProb = 0.20
	return Benchmark{Name: "471.omnetpp", Phases: []Phase{
		{Params: events, Sections: 420},
	}}
}

func hmmer() Benchmark {
	// Profile HMM search: tight predictable loops, moderate dependencies.
	inner := mix(base(), 0.34, 0.12, 0.10)
	inner.BranchEntropy = 0.01
	inner.ALUDepFrac = 0.40
	inner.DepNearFrac = 0.06
	inner.DataFootprint = 256 << 10
	inner.ColdFrac = 0.03
	// Score matrices: L2-resident but larger than the L0 DTLB covers.
	inner.HotFootprint = 80 << 10
	return Benchmark{Name: "456.hmmer", Phases: []Phase{
		{Params: inner, Sections: 380},
	}}
}

func gobmk() Benchmark {
	// Go engine: mispredict-bound with moderate code footprint.
	play := mix(base(), 0.26, 0.12, 0.22)
	play.BranchEntropy = 0.11
	play.CodeFootprint = 160 << 10
	play.JumpProb = 0.25
	play.DataFootprint = 1 << 20
	play.ColdFrac = 0.05
	// Board/pattern tables: random hits beyond the L0 DTLB's coverage.
	play.HotFootprint = 72 << 10
	return Benchmark{Name: "445.gobmk", Phases: []Phase{
		{Params: play, Sections: 420},
	}}
}

func lbm() Benchmark {
	// Lattice Boltzmann: store-dominated streaming over a huge grid.
	sweep := mix(base(), 0.24, 0.24, 0.08)
	sweep.Pattern = Stream
	sweep.StrideB = 8
	sweep.DataFootprint = 56 << 20
	sweep.ColdFrac = 0.70
	sweep.DepNearFrac = 0.03
	sweep.BranchEntropy = 0.02
	return Benchmark{Name: "470.lbm", Phases: []Phase{
		{Params: sweep, Sections: 400},
	}}
}

func xalancbmk() Benchmark {
	// XSLT processing: large code, virtual-call-style jumps, DTLB traffic.
	// The DOM working set fits the L2 but spans far more pages than the
	// DTLB covers (the DTLB maps only a quarter of the L2), the exact
	// regime the paper calls out: DTLB misses significant even though the
	// data hits the L2 cache.
	transform := mix(base(), 0.30, 0.12, 0.20)
	transform.CodeFootprint = 512 << 10
	transform.JumpProb = 0.35
	transform.BranchEntropy = 0.05
	transform.DataFootprint = 3 << 20
	transform.ColdFrac = 0.10
	transform.Pattern = Random
	return Benchmark{Name: "483.xalancbmk", Phases: []Phase{
		{Params: transform, Sections: 440},
	}}
}

func h264ref() Benchmark {
	// Video encoding: misaligned and line-splitting block accesses plus
	// some LCP-encoded SIMD-era instructions.
	encode := mix(base(), 0.34, 0.14, 0.12)
	encode.MisalignFrac = 0.10
	encode.SplitFrac = 0.05
	encode.LCPFrac = 0.012
	encode.DataFootprint = 2 << 20
	encode.ColdFrac = 0.10
	encode.Pattern = Stream
	encode.StrideB = 8
	motion := mix(base(), 0.36, 0.10, 0.14)
	motion.MisalignFrac = 0.16
	motion.SplitFrac = 0.08
	motion.DataFootprint = 1 << 20
	motion.ColdFrac = 0.12
	motion.Pattern = Random
	return Benchmark{Name: "464.h264ref", Phases: []Phase{
		{Params: encode, Sections: 260},
		{Params: motion, Sections: 200},
	}}
}

func soplex() Benchmark {
	// Simplex LP solver: sparse matrix rows, DTLB and L2 pressure without
	// full pointer dependence.
	// Sparse row access is index->value indirection: dependent, like mcf.
	pricing := mix(base(), 0.32, 0.10, 0.16)
	pricing.Pattern = PointerChase
	pricing.DataFootprint = 28 << 20
	pricing.ColdFrac = 0.030
	pricing.DepNearFrac = 0.10
	factor := mix(base(), 0.30, 0.14, 0.12)
	factor.Pattern = Stream
	factor.StrideB = 8
	factor.DataFootprint = 8 << 20
	factor.ColdFrac = 0.20
	return Benchmark{Name: "450.soplex", Phases: []Phase{
		{Params: pricing, Sections: 280},
		{Params: factor, Sections: 160},
	}}
}

func astar() Benchmark {
	// Path finding: pointer chasing with erratic branches.
	path := mix(base(), 0.30, 0.10, 0.20)
	path.Pattern = PointerChase
	path.DataFootprint = 10 << 20
	path.ColdFrac = 0.022
	path.BranchEntropy = 0.08
	return Benchmark{Name: "473.astar", Phases: []Phase{
		{Params: path, Sections: 420},
	}}
}

func perlbench() Benchmark {
	// Interpreter: store-forwarding hazards (load blocks), branchy
	// dispatch, moderate code footprint.
	interp := mix(base(), 0.30, 0.16, 0.20)
	interp.BlockSTAFrac = 0.10
	interp.BlockSTDFrac = 0.05
	interp.BlockOvStFrac = 0.04
	interp.BranchEntropy = 0.055
	interp.CodeFootprint = 224 << 10
	interp.JumpProb = 0.30
	interp.DataFootprint = 1 << 20
	interp.ColdFrac = 0.04
	regex := mix(base(), 0.32, 0.12, 0.22)
	regex.BlockSTAFrac = 0.06
	regex.BranchEntropy = 0.07
	regex.DataFootprint = 512 << 10
	regex.ColdFrac = 0.05
	return Benchmark{Name: "400.perlbench", Phases: []Phase{
		{Params: interp, Sections: 280},
		{Params: regex, Sections: 160},
	}}
}
