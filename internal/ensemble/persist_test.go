package ensemble

import (
	"bytes"
	"strings"
	"testing"
)

// TestEnsembleRoundTrip: a saved-and-reloaded ensemble must predict
// byte-identically and keep its out-of-bag statistics.
func TestEnsembleRoundTrip(t *testing.T) {
	d := noisyPiecewise(800, 7)
	b, err := Train(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Trees) != len(b.Trees) {
		t.Fatalf("member count %d != %d", len(back.Trees), len(b.Trees))
	}
	if back.OOBError != b.OOBError || back.OOBCoverage != b.OOBCoverage {
		t.Errorf("OOB stats changed: %v/%v vs %v/%v",
			back.OOBError, back.OOBCoverage, b.OOBError, b.OOBCoverage)
	}
	for i := 0; i < d.Len(); i += 97 {
		if got, want := back.Predict(d.Row(i)), b.Predict(d.Row(i)); got != want {
			t.Fatalf("row %d: reloaded prediction %v != %v", i, got, want)
		}
	}
}

func TestEnsembleReadRejectsBadEnvelope(t *testing.T) {
	// Wrong kind (e.g. a single-tree file fed to the ensemble reader).
	if _, err := ReadJSON(strings.NewReader(`{"schema_version":1,"kind":"m5-model-tree","trees":[]}`)); err == nil {
		t.Error("wrong kind accepted")
	}
	// Future schema version.
	if _, err := ReadJSON(strings.NewReader(`{"schema_version":99,"kind":"bagged-m5","trees":[{}]}`)); err == nil {
		t.Error("future schema_version accepted")
	}
	// No members.
	if _, err := ReadJSON(strings.NewReader(`{"schema_version":1,"kind":"bagged-m5","trees":[]}`)); err == nil {
		t.Error("empty ensemble accepted")
	}
}
