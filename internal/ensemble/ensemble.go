// Package ensemble implements bootstrap-aggregated (bagged) M5' model
// trees. Bagging trades away the single tree's interpretability — the
// property the paper chooses model trees *for* — in exchange for variance
// reduction, so it sits at the exact midpoint of the paper's
// interpretable-vs-black-box axis: better accuracy than one tree, still
// built from readable trees, but no longer a single set of rules to hand
// to an analyst. The bagging experiment quantifies what that trade buys
// on the performance dataset.
package ensemble

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mtree"
	"repro/internal/parallel"
)

// Config controls bagging.
type Config struct {
	// Trees is the ensemble size.
	Trees int
	// Tree is the configuration for each member tree.
	Tree mtree.Config
	// SampleFraction is the bootstrap sample size as a fraction of the
	// training set (1.0 = classical bagging with replacement).
	SampleFraction float64
	// Seed drives the bootstrap resampling. Tree t draws its bootstrap
	// sample from an RNG seeded by parallel.DeriveSeed(Seed, t), so each
	// member's sample depends only on (Seed, t) — not on Trees, and not on
	// how many trees train concurrently.
	Seed int64
	// Jobs is the number of member trees trained concurrently
	// (0 = GOMAXPROCS, 1 = serial). The ensemble, including the
	// out-of-bag estimates, is identical for every value.
	Jobs int
}

// DefaultConfig returns a 10-tree bagger with default M5' members.
func DefaultConfig() Config {
	return Config{Trees: 10, Tree: mtree.DefaultConfig(), SampleFraction: 1.0, Seed: 1}
}

// Bagger is a trained ensemble.
type Bagger struct {
	Trees []*mtree.Tree
	// OOBError is the out-of-bag mean absolute error estimated during
	// training: each instance predicted only by the trees whose bootstrap
	// sample excluded it. It is a free generalization estimate, reported
	// alongside cross validation.
	OOBError float64
	// OOBCoverage is the fraction of training instances that had at least
	// one out-of-bag tree.
	OOBCoverage float64
}

// Train fits the bagged ensemble.
func Train(d *dataset.Dataset, cfg Config) (*Bagger, error) {
	n := d.Len()
	if n == 0 {
		return nil, errors.New("ensemble: cannot train on empty dataset")
	}
	if cfg.Trees < 1 {
		return nil, fmt.Errorf("ensemble: %d trees requested", cfg.Trees)
	}
	if cfg.SampleFraction <= 0 || cfg.SampleFraction > 1 {
		return nil, fmt.Errorf("ensemble: sample fraction %v not in (0,1]", cfg.SampleFraction)
	}
	b := &Bagger{}

	sampleSize := int(float64(n) * cfg.SampleFraction)
	if sampleSize < 1 {
		sampleSize = 1
	}
	// Each member is an independent work item: draw the bootstrap sample
	// from the tree's own derived seed, train, and predict the tree's
	// out-of-bag rows. All randomness is fixed per (Seed, t) before any
	// goroutine runs.
	seeds := make([]int64, cfg.Trees)
	for t := range seeds {
		seeds[t] = parallel.DeriveSeed(cfg.Seed, t)
	}
	type member struct {
		tree *mtree.Tree
		// oobPred[i] is the tree's prediction for row i, valid only where
		// oob[i] is true (row i was not drawn into the bootstrap sample).
		oob     []bool
		oobPred []float64
	}
	members, err := parallel.Map(parallel.Config{Jobs: cfg.Jobs}, seeds,
		func(t int, seed int64) (member, error) {
			rng := rand.New(rand.NewSource(seed))
			inBag := make([]bool, n)
			idx := make([]int, sampleSize)
			for i := range idx {
				k := rng.Intn(n)
				idx[i] = k
				inBag[k] = true
			}
			tree, err := mtree.Build(d.Subset(idx), cfg.Tree)
			if err != nil {
				return member{}, fmt.Errorf("ensemble: training tree %d: %w", t, err)
			}
			m := member{tree: tree, oob: make([]bool, n), oobPred: make([]float64, n)}
			for i := 0; i < n; i++ {
				if !inBag[i] {
					m.oob[i] = true
					m.oobPred[i] = tree.Predict(d.Row(i))
				}
			}
			return m, nil
		})
	if err != nil {
		return nil, err
	}

	// Reduce the out-of-bag sums serially in tree order so the
	// floating-point accumulation (and hence OOBError) is independent of
	// goroutine scheduling.
	oobSum := make([]float64, n)
	oobCount := make([]int, n)
	for _, m := range members {
		b.Trees = append(b.Trees, m.tree)
		for i := 0; i < n; i++ {
			if m.oob[i] {
				oobSum[i] += m.oobPred[i]
				oobCount[i]++
			}
		}
	}

	var absErr float64
	covered := 0
	for i := 0; i < n; i++ {
		if oobCount[i] == 0 {
			continue
		}
		covered++
		pred := oobSum[i] / float64(oobCount[i])
		if e := pred - d.Target(i); e >= 0 {
			absErr += e
		} else {
			absErr -= e
		}
	}
	if covered > 0 {
		b.OOBError = absErr / float64(covered)
	}
	b.OOBCoverage = float64(covered) / float64(n)
	return b, nil
}

// Predict averages the member trees' (smoothed) predictions.
func (b *Bagger) Predict(row dataset.Instance) float64 {
	if len(b.Trees) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range b.Trees {
		s += t.Predict(row)
	}
	return s / float64(len(b.Trees))
}

// MeanLeaves reports the average member-tree size, a readability proxy.
func (b *Bagger) MeanLeaves() float64 {
	if len(b.Trees) == 0 {
		return 0
	}
	s := 0
	for _, t := range b.Trees {
		s += t.NumLeaves()
	}
	return float64(s) / float64(len(b.Trees))
}
