package ensemble_test

// Bit-identity and binary-persistence properties of the compiled
// ensemble: CompileBagger must reproduce Bagger exactly (predictions,
// batch kernel, contributions, description), and the binary format must
// round-trip byte-stably through the nested member-tree containers.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/proptest"
)

func trainRandom(t *testing.T, r *proptest.Rand) *ensemble.Bagger {
	t.Helper()
	d := proptest.PerfDataset(r, r.IntBetween(100, 250))
	b, err := ensemble.Train(d, genEnsembleConfig(r))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return b
}

// TestCompiledBaggerBitIdentical: compiled ensemble predictions — single
// and batched — equal the pointer ensemble's bit for bit, and the batch
// kernel allocates nothing.
func TestCompiledBaggerBitIdentical(t *testing.T) {
	proptest.Run(t, "compiled-ensemble", 8, func(t *testing.T, r *proptest.Rand) {
		b := trainRandom(t, r)
		c := ensemble.CompileBagger(b)
		if c == nil {
			t.Fatal("CompileBagger returned nil")
		}
		if c.NumLeaves() != b.NumLeaves() {
			t.Fatalf("NumLeaves %d != %d", c.NumLeaves(), b.NumLeaves())
		}
		if !reflect.DeepEqual(c.Describe(), b.Describe()) {
			t.Fatalf("Describe %+v != %+v", c.Describe(), b.Describe())
		}
		if c.OOBError() != b.OOBError || c.OOBCoverage() != b.OOBCoverage {
			t.Fatal("OOB statistics changed under compilation")
		}

		rows := make([]dataset.Instance, r.IntBetween(1, 150))
		for i := range rows {
			rows[i] = genRow(r)
		}
		dst := make([]float64, len(rows))
		c.PredictInto(dst, rows)
		for i, row := range rows {
			want := b.Predict(row)
			if got := c.Predict(row); got != want {
				t.Fatalf("row %d: compiled %v != bagger %v", i, got, want)
			}
			if dst[i] != want {
				t.Fatalf("row %d: kernel %v != bagger %v", i, dst[i], want)
			}
			if !reflect.DeepEqual(c.Contributions(row), b.Contributions(row)) {
				t.Fatalf("row %d: contributions differ", i)
			}
		}
		if allocs := testing.AllocsPerRun(10, func() {
			c.PredictInto(dst, rows)
		}); allocs != 0 {
			t.Fatalf("PredictInto allocates %v objects per call, want 0", allocs)
		}
	})
}

// TestEnsembleBinaryRoundTrip: binary persist→load→persist is
// byte-stable, the loaded ensemble predicts bit-identically, and the
// JSON bridge (Bagger() decompile) reproduces the JSON persisted form.
func TestEnsembleBinaryRoundTrip(t *testing.T) {
	proptest.Run(t, "ensemble-binary-roundtrip", 6, func(t *testing.T, r *proptest.Rand) {
		b := trainRandom(t, r)

		var b1 bytes.Buffer
		if err := b.WriteBinary(&b1); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		loaded, err := ensemble.ReadBinary(b1.Bytes())
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		var b2 bytes.Buffer
		if err := loaded.WriteBinary(&b2); err != nil {
			t.Fatalf("WriteBinary after load: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("binary persist -> load -> persist is not byte-identical")
		}

		for i := 0; i < 15; i++ {
			row := genRow(r)
			if loaded.Predict(row) != b.Predict(row) {
				t.Fatalf("binary-loaded ensemble diverges on row %d", i)
			}
		}

		var wantJSON, gotJSON bytes.Buffer
		if err := b.WriteJSON(&wantJSON); err != nil {
			t.Fatal(err)
		}
		if err := loaded.Bagger().WriteJSON(&gotJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
			t.Fatal("binary round trip does not reproduce the JSON persisted form")
		}
	})
}

// TestEnsembleBinaryErrors: truncations and kind confusion are rejected
// with descriptive errors, mirroring the tree-level corruption tests.
func TestEnsembleBinaryErrors(t *testing.T) {
	r := proptest.NewRand(proptest.CaseSeed(t.Name(), 0))
	b := trainRandom(t, r)
	var buf bytes.Buffer
	if err := b.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	for n := 0; n < len(valid); n++ {
		loaded, err := ensemble.ReadBinary(valid[:n])
		if err != nil {
			continue
		}
		var again bytes.Buffer
		if err := loaded.WriteBinary(&again); err != nil || !bytes.Equal(again.Bytes(), valid) {
			t.Fatalf("truncation to %d of %d bytes loaded a different ensemble", n, len(valid))
		}
	}

	wrongKind := append([]byte(nil), valid...)
	wrongKind[6] = 1 // binfmt.KindTree
	if _, err := ensemble.ReadBinary(wrongKind); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("tree-kinded file accepted by ensemble loader: %v", err)
	}
}
