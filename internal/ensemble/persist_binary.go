package ensemble

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/binfmt"
	"repro/internal/mtree"
)

// Binary persistence for ensembles mirrors the JSON layout: an envelope
// (out-of-bag statistics plus member count) and one complete binary
// tree file per member, nested as raw sections. Because nested tree
// containers keep their 8-byte internal alignment and the outer
// container places sections at 8-aligned offsets, member payloads alias
// the file buffer exactly like standalone tree files do — loading an
// N-member ensemble is one read plus N header parses.

// Binary section ids of the ensemble payload (container kind
// binfmt.KindEnsemble). Member trees occupy ids secMemberBase+i.
const (
	secEnsembleMeta = 1
	secMemberBase   = 16
)

type ensembleBinMeta struct {
	SchemaVersion int     `json:"schema_version"`
	OOBError      float64 `json:"oob_error"`
	OOBCoverage   float64 `json:"oob_coverage"`
	Trees         int     `json:"trees"`
}

// WriteBinary persists the compiled ensemble in the binary model format.
func (c *CompiledBagger) WriteBinary(w io.Writer) error {
	bw := binfmt.NewWriter(binfmt.KindEnsemble)
	meta, err := json.Marshal(ensembleBinMeta{
		SchemaVersion: SchemaVersion,
		OOBError:      c.oobError,
		OOBCoverage:   c.oobCoverage,
		Trees:         len(c.trees),
	})
	if err != nil {
		return fmt.Errorf("ensemble: encoding binary ensemble metadata: %w", err)
	}
	bw.Bytes(secEnsembleMeta, meta)
	for i, t := range c.trees {
		var buf bytes.Buffer
		if err := t.WriteBinary(&buf); err != nil {
			return fmt.Errorf("ensemble: encoding binary member %d: %w", i, err)
		}
		bw.Bytes(secMemberBase+uint32(i), buf.Bytes())
	}
	if _, err := bw.WriteTo(w); err != nil {
		return fmt.Errorf("ensemble: writing binary ensemble: %w", err)
	}
	return nil
}

// WriteBinary persists the ensemble in the binary model format by
// compiling the members first.
func (b *Bagger) WriteBinary(w io.Writer) error {
	if len(b.Trees) == 0 {
		return fmt.Errorf("ensemble: cannot persist an ensemble with no member trees")
	}
	return CompileBagger(b).WriteBinary(w)
}

// ReadBinary loads a binary ensemble file directly into compiled form.
func ReadBinary(data []byte) (*CompiledBagger, error) {
	f, err := binfmt.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("ensemble: binary ensemble: %w", err)
	}
	return ReadBinaryFile(f)
}

// ReadBinaryFile loads an ensemble from an already-parsed container.
func ReadBinaryFile(f *binfmt.File) (*CompiledBagger, error) {
	if f.Kind != binfmt.KindEnsemble {
		return nil, fmt.Errorf("ensemble: binary file has kind %d, want ensemble (%d)", f.Kind, binfmt.KindEnsemble)
	}
	metaRaw, err := f.Bytes(secEnsembleMeta, "meta")
	if err != nil {
		return nil, fmt.Errorf("ensemble: binary ensemble: %w", err)
	}
	var meta ensembleBinMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, fmt.Errorf("ensemble: binary ensemble: malformed meta section: %w", err)
	}
	if meta.SchemaVersion < 1 || meta.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("ensemble: binary ensemble has schema_version %d; this build reads versions 1..%d",
			meta.SchemaVersion, SchemaVersion)
	}
	if meta.Trees < 1 {
		return nil, fmt.Errorf("ensemble: binary ensemble declares %d member trees; need at least one", meta.Trees)
	}
	// Every member occupies a section, so the section count bounds the
	// member count; checking first keeps a corrupt meta section from
	// sizing a gigantic allocation.
	if meta.Trees > f.Sections() {
		return nil, fmt.Errorf("ensemble: binary ensemble declares %d member trees but the file has only %d sections",
			meta.Trees, f.Sections())
	}
	c := &CompiledBagger{
		trees:       make([]*mtree.CompiledTree, meta.Trees),
		oobError:    meta.OOBError,
		oobCoverage: meta.OOBCoverage,
	}
	for i := range c.trees {
		blob, err := f.Bytes(secMemberBase+uint32(i), fmt.Sprintf("member %d", i))
		if err != nil {
			return nil, fmt.Errorf("ensemble: binary ensemble: %w", err)
		}
		t, err := mtree.ReadBinary(blob)
		if err != nil {
			return nil, fmt.Errorf("ensemble: binary ensemble: member %d: %w", i, err)
		}
		c.trees[i] = t
	}
	return c, nil
}
