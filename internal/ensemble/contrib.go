package ensemble

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mtree"
)

// Bagger implements model.Model, so the serving registry and the analysis
// layer can hold trees and ensembles interchangeably.
var _ model.Model = (*Bagger)(nil)

// NumLeaves returns the total leaf count across the member trees — the
// number of (overlapping) performance classes the ensemble carries. See
// MeanLeaves for the per-member readability proxy.
func (b *Bagger) NumLeaves() int {
	s := 0
	for _, t := range b.Trees {
		s += t.NumLeaves()
	}
	return s
}

// Describe implements model.Model. Schema fields come from the first
// member; every member is trained on the same columns.
func (b *Bagger) Describe() model.Description {
	d := model.Description{Kind: "bagged-m5", Trees: len(b.Trees), NumLeaves: b.NumLeaves()}
	if len(b.Trees) > 0 {
		t := b.Trees[0]
		d.Target = t.TargetName
		d.AttrNames = t.AttrNames
		d.TrainN = t.TrainN
		d.Machine = t.Machine
	}
	return d
}

// Contributions averages the member trees' per-event decompositions: each
// member contributes its leaf-model terms, members whose leaf omits an
// event contribute zero for it, and fractions are taken against the mean
// unsmoothed leaf prediction — so intercepts aside, the shares decompose
// the ensemble's raw (pre-smoothing) estimate. Members are reduced in
// tree order and ties sorted by attribute index, keeping the output
// independent of scheduling.
func (b *Bagger) Contributions(row dataset.Instance) []model.Contribution {
	members := make([]contributor, len(b.Trees))
	for i, t := range b.Trees {
		members[i] = t
	}
	return memberContributions(members, row)
}

// contributor is the per-member surface the averaged decomposition
// needs; both *mtree.Tree and *mtree.CompiledTree provide it.
type contributor interface {
	Classify(row dataset.Instance) (*mtree.Node, []mtree.PathStep)
	Contributions(row dataset.Instance) []model.Contribution
}

// memberContributions implements the ensemble decomposition over any
// member representation, so the pointer-walk and compiled ensembles
// share one reduction (and therefore agree bit for bit).
func memberContributions(members []contributor, row dataset.Instance) []model.Contribution {
	if len(members) == 0 {
		return nil
	}
	type acc struct {
		name   string
		coef   float64
		cycles float64
	}
	sums := map[int]*acc{}
	meanPred := 0.0
	for _, t := range members {
		leaf, _ := t.Classify(row)
		meanPred += leaf.Model.Predict(row)
		for _, c := range t.Contributions(row) {
			a := sums[c.Attr]
			if a == nil {
				a = &acc{name: c.Name}
				sums[c.Attr] = a
			}
			a.coef += c.Coef
			a.cycles += c.Cycles
		}
	}
	n := float64(len(members))
	meanPred /= n

	attrs := make([]int, 0, len(sums))
	for a := range sums {
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	out := make([]model.Contribution, 0, len(attrs))
	for _, a := range attrs {
		s := sums[a]
		c := model.Contribution{
			Attr: a, Name: s.name,
			Coef: s.coef / n, Rate: row[a], Cycles: s.cycles / n,
		}
		if meanPred != 0 {
			c.Fraction = c.Cycles / meanPred
		}
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Cycles > out[j].Cycles
	})
	return out
}
