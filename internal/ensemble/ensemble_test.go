package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/mtree"
	"repro/internal/parallel"
)

// noisyPiecewise builds a two-regime dataset with enough noise that a
// single tree's leaf models wobble, giving bagging something to average.
func noisyPiecewise(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x1"}, {Name: "x2"}}, 0)
	for i := 0; i < n; i++ {
		x1 := rng.Float64()*2 - 1
		x2 := rng.Float64()*2 - 1
		y := 1 + 2*x2
		if x1 > 0 {
			y = 8 - 3*x2
		}
		d.MustAppend(dataset.Instance{y + 0.5*rng.NormFloat64(), x1, x2})
	}
	return d
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Trees = 8
	cfg.Tree.MinLeaf = 60
	return cfg
}

func TestTrainValidation(t *testing.T) {
	empty := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	if _, err := Train(empty, DefaultConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
	d := noisyPiecewise(50, 1)
	cfg := DefaultConfig()
	cfg.Trees = 0
	if _, err := Train(d, cfg); err == nil {
		t.Error("zero trees accepted")
	}
	cfg = DefaultConfig()
	cfg.SampleFraction = 0
	if _, err := Train(d, cfg); err == nil {
		t.Error("zero sample fraction accepted")
	}
}

func TestBaggingLearns(t *testing.T) {
	d := noisyPiecewise(1500, 2)
	b, err := Train(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Trees) != 8 {
		t.Fatalf("trained %d trees", len(b.Trees))
	}
	m, err := eval.Evaluate(b, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Correlation < 0.95 {
		t.Errorf("ensemble training correlation %v", m.Correlation)
	}
}

func TestOOBEstimates(t *testing.T) {
	d := noisyPiecewise(1500, 3)
	b, err := Train(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With 8 bootstrap samples, nearly every instance is OOB somewhere:
	// P(in all bags) = (1-1/e)^8 << 1.
	if b.OOBCoverage < 0.95 {
		t.Errorf("OOB coverage %v too low", b.OOBCoverage)
	}
	// The noise floor is sigma*sqrt(2/pi) ~ 0.4; OOB MAE should be in a
	// sane band around it, not near zero (which would mean leakage).
	if b.OOBError < 0.3 || b.OOBError > 0.8 {
		t.Errorf("OOB error %v outside plausible band for sigma=0.5 noise", b.OOBError)
	}
}

func TestBaggingReducesVarianceOutOfFold(t *testing.T) {
	d := noisyPiecewise(1200, 4)
	treeCfg := mtree.DefaultConfig()
	treeCfg.MinLeaf = 60
	single := eval.LearnerFunc{N: "single", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return mtree.Build(d, treeCfg)
	}}
	bagged := eval.LearnerFunc{N: "bagged", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return Train(d, smallConfig())
	}}
	rs, err := eval.CrossValidate(single, d, 5, 9, parallel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := eval.CrossValidate(bagged, d, 5, 9, parallel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Bagging must not be (meaningfully) worse; usually it is better.
	if rb.Pooled.MAE > rs.Pooled.MAE*1.05 {
		t.Errorf("bagged MAE %v worse than single-tree MAE %v", rb.Pooled.MAE, rs.Pooled.MAE)
	}
}

func TestPredictDeterministic(t *testing.T) {
	d := noisyPiecewise(500, 5)
	b1, err := Train(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Train(d, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := dataset.Instance{0, 0.3, -0.2}
	if b1.Predict(in) != b2.Predict(in) {
		t.Error("same seed produced different ensembles")
	}
	if math.IsNaN(b1.Predict(in)) {
		t.Error("NaN prediction")
	}
	if b1.MeanLeaves() < 1 {
		t.Errorf("MeanLeaves = %v", b1.MeanLeaves())
	}
}
