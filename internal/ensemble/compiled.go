package ensemble

import (
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mtree"
)

// CompiledBagger is a bagged ensemble whose member trees have been
// flattened into contiguous arrays (see mtree.CompiledTree). Single
// predictions average the members in tree order exactly like Bagger, so
// results are bit-identical; the batch kernel additionally runs
// tree-major — one member across the whole batch before the next — so
// each member's flat arrays stay hot in cache instead of being evicted
// between rows. The per-row accumulation order is unchanged (member 0,
// then 1, ...), keeping batch results bit-identical to per-row Predict.
type CompiledBagger struct {
	trees       []*mtree.CompiledTree
	oobError    float64
	oobCoverage float64
}

var _ model.Model = (*CompiledBagger)(nil)
var _ model.BatchPredictor = (*CompiledBagger)(nil)

// CompileBagger flattens every member of a trained ensemble. Returns
// nil for a nil ensemble.
func CompileBagger(b *Bagger) *CompiledBagger {
	if b == nil {
		return nil
	}
	c := &CompiledBagger{
		trees:       make([]*mtree.CompiledTree, len(b.Trees)),
		oobError:    b.OOBError,
		oobCoverage: b.OOBCoverage,
	}
	for i, t := range b.Trees {
		c.trees[i] = mtree.Compile(t)
	}
	return c
}

// CompileModel implements model.Compilable.
func (b *Bagger) CompileModel() model.Model { return CompileBagger(b) }

// Predict averages the compiled members' (smoothed) predictions in tree
// order — the same reduction as Bagger.Predict, bit for bit.
func (c *CompiledBagger) Predict(row dataset.Instance) float64 {
	if len(c.trees) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range c.trees {
		s += t.Predict(row)
	}
	return s / float64(len(c.trees))
}

// PredictInto is the ensemble batch kernel: tree-major accumulation
// over the caller's buffer, then one division per row. Per-row
// arithmetic matches Predict exactly (members are added in the same
// order, the division is by the same count), so dst is bit-identical to
// calling Predict row by row.
func (c *CompiledBagger) PredictInto(dst []float64, rows []dataset.Instance) {
	dst = dst[:len(rows)]
	for i := range dst {
		dst[i] = 0
	}
	if len(c.trees) == 0 {
		return
	}
	for _, t := range c.trees {
		t.AccumulateInto(dst, rows)
	}
	n := float64(len(c.trees))
	for i := range dst {
		dst[i] /= n
	}
}

// Contributions reports the member-averaged Eq. 4 decomposition with
// the same reduction as Bagger.Contributions (tree-order sums,
// attribute-sorted output), evaluated on the compiled members.
func (c *CompiledBagger) Contributions(row dataset.Instance) []model.Contribution {
	members := make([]contributor, len(c.trees))
	for i, t := range c.trees {
		members[i] = t
	}
	return memberContributions(members, row)
}

// NumLeaves sums the member leaf counts, matching Bagger.NumLeaves.
func (c *CompiledBagger) NumLeaves() int {
	s := 0
	for _, t := range c.trees {
		s += t.NumLeaves()
	}
	return s
}

// Trees returns the compiled members (shared, not copied).
func (c *CompiledBagger) Trees() []*mtree.CompiledTree { return c.trees }

// OOBError returns the training-time out-of-bag MAE estimate.
func (c *CompiledBagger) OOBError() float64 { return c.oobError }

// OOBCoverage returns the fraction of training rows with at least one
// out-of-bag member.
func (c *CompiledBagger) OOBCoverage() float64 { return c.oobCoverage }

// Describe matches Bagger.Describe field for field.
func (c *CompiledBagger) Describe() model.Description {
	d := model.Description{Kind: Kind, Trees: len(c.trees), NumLeaves: c.NumLeaves()}
	if len(c.trees) > 0 {
		td := c.trees[0].Describe()
		d.Target = td.Target
		d.AttrNames = td.AttrNames
		d.TrainN = td.TrainN
		d.Machine = td.Machine
	}
	return d
}

// Bagger reconstructs the pointer-linked ensemble — the bridge back to
// JSON persistence and the training-side analysis code.
func (c *CompiledBagger) Bagger() *Bagger {
	b := &Bagger{OOBError: c.oobError, OOBCoverage: c.oobCoverage}
	for _, t := range c.trees {
		b.Trees = append(b.Trees, t.Tree())
	}
	return b
}
