package ensemble

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/mtree"
)

// Persistence for bagged ensembles: a versioned JSON envelope holding the
// member trees in mtree's own persisted format, so a saved ensemble is
// just a list of saved trees plus the out-of-bag statistics. The "kind"
// discriminator lets loaders (internal/modelio) tell ensemble files from
// single-tree files without guessing.

// SchemaVersion is the current persisted-ensemble format version.
const SchemaVersion = 1

// Kind is the format discriminator written into every ensemble file.
const Kind = "bagged-m5"

type baggerJSON struct {
	SchemaVersion int               `json:"schema_version"`
	Kind          string            `json:"kind"`
	OOBError      float64           `json:"oob_error"`
	OOBCoverage   float64           `json:"oob_coverage"`
	Trees         []json.RawMessage `json:"trees"`
}

// WriteJSON serializes the ensemble.
func (b *Bagger) WriteJSON(w io.Writer) error {
	bj := baggerJSON{
		SchemaVersion: SchemaVersion,
		Kind:          Kind,
		OOBError:      b.OOBError,
		OOBCoverage:   b.OOBCoverage,
		Trees:         make([]json.RawMessage, len(b.Trees)),
	}
	for i, t := range b.Trees {
		var buf bytes.Buffer
		if err := t.WriteJSON(&buf); err != nil {
			return fmt.Errorf("ensemble: encoding member %d: %w", i, err)
		}
		bj.Trees[i] = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bj); err != nil {
		return fmt.Errorf("ensemble: encoding ensemble: %w", err)
	}
	return nil
}

// ReadJSON deserializes an ensemble written by WriteJSON.
func ReadJSON(r io.Reader) (*Bagger, error) {
	var bj baggerJSON
	if err := json.NewDecoder(r).Decode(&bj); err != nil {
		return nil, fmt.Errorf("ensemble: decoding ensemble: %w", err)
	}
	if bj.Kind != Kind {
		return nil, fmt.Errorf("ensemble: file kind %q, want %q", bj.Kind, Kind)
	}
	if bj.SchemaVersion < 1 || bj.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("ensemble: persisted ensemble has schema_version %d; this build reads versions 1..%d",
			bj.SchemaVersion, SchemaVersion)
	}
	if len(bj.Trees) == 0 {
		return nil, fmt.Errorf("ensemble: decoded ensemble has no member trees")
	}
	b := &Bagger{OOBError: bj.OOBError, OOBCoverage: bj.OOBCoverage}
	for i, raw := range bj.Trees {
		t, err := mtree.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("ensemble: decoding member %d: %w", i, err)
		}
		b.Trees = append(b.Trees, t)
	}
	return b, nil
}
