package ensemble_test

// Property tests for the bagged ensemble: the mean-of-members prediction
// contract (bit-for-bit), determinism across the Jobs knob, and
// byte-exact versioned persistence.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/mtree"
	"repro/internal/proptest"
)

func genEnsembleConfig(r *proptest.Rand) ensemble.Config {
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = r.IntBetween(10, 40)
	cfg.Smooth = r.Coin()
	return ensemble.Config{
		Trees:          r.IntBetween(2, 6),
		Tree:           cfg,
		SampleFraction: r.Range(0.5, 1),
		Seed:           r.Int63(),
	}
}

func genRow(r *proptest.Rand) dataset.Instance {
	return dataset.Instance{0, r.Range(0, 0.01), r.Range(0, 0.008), r.Range(0, 0.003)}
}

// TestPredictIsMeanOfMembers: Bagger.Predict equals the members' summed
// predictions in tree order divided by the count — exactly, not
// approximately, so any future reordering or reweighting of members is
// caught as a bit-level change.
func TestPredictIsMeanOfMembers(t *testing.T) {
	proptest.Run(t, "ensemble-mean", 8, func(t *testing.T, r *proptest.Rand) {
		d := proptest.PerfDataset(r, r.IntBetween(100, 250))
		b, err := ensemble.Train(d, genEnsembleConfig(r))
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		for i := 0; i < 20; i++ {
			row := genRow(r)
			sum := 0.0
			for _, tree := range b.Trees {
				sum += tree.Predict(row)
			}
			want := sum / float64(len(b.Trees))
			if got := b.Predict(row); got != want {
				t.Fatalf("row %d: Predict %v != member mean %v", i, got, want)
			}
		}
	})
}

// TestTrainInvariants: the trained ensemble has the requested member
// count and sane out-of-bag statistics.
func TestTrainInvariants(t *testing.T) {
	proptest.Run(t, "ensemble-train", 6, func(t *testing.T, r *proptest.Rand) {
		d := proptest.PerfDataset(r, r.IntBetween(100, 250))
		cfg := genEnsembleConfig(r)
		b, err := ensemble.Train(d, cfg)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		if len(b.Trees) != cfg.Trees {
			t.Fatalf("trained %d trees, want %d", len(b.Trees), cfg.Trees)
		}
		if b.OOBCoverage < 0 || b.OOBCoverage > 1 {
			t.Fatalf("OOBCoverage = %v", b.OOBCoverage)
		}
		if b.OOBError < 0 {
			t.Fatalf("OOBError = %v", b.OOBError)
		}
		if ml := b.MeanLeaves(); ml < 1 {
			t.Fatalf("MeanLeaves = %v", ml)
		}
	})
}

// TestTrainJobsInvariance: training at Jobs=1 and Jobs=4 produces
// byte-identical ensembles — the parallel layer may not perturb the
// bootstrap draws, member trees, or out-of-bag reduction.
func TestTrainJobsInvariance(t *testing.T) {
	proptest.Run(t, "ensemble-jobs", 5, func(t *testing.T, r *proptest.Rand) {
		d := proptest.PerfDataset(r, r.IntBetween(100, 250))
		cfg := genEnsembleConfig(r)
		persist := func(jobs int) []byte {
			cfg.Jobs = jobs
			b, err := ensemble.Train(d, cfg)
			if err != nil {
				t.Fatalf("Train(jobs=%d): %v", jobs, err)
			}
			var buf bytes.Buffer
			if err := b.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if !bytes.Equal(persist(1), persist(4)) {
			t.Fatal("ensemble differs between Jobs=1 and Jobs=4")
		}
	})
}

// TestEnsemblePersistRoundTrip: write→read→write is byte-identical, and
// files with the wrong kind or a future schema version are rejected.
func TestEnsemblePersistRoundTrip(t *testing.T) {
	proptest.Run(t, "ensemble-persist", 6, func(t *testing.T, r *proptest.Rand) {
		d := proptest.PerfDataset(r, r.IntBetween(100, 250))
		b, err := ensemble.Train(d, genEnsembleConfig(r))
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		var first bytes.Buffer
		if err := b.WriteJSON(&first); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		loaded, err := ensemble.ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("ReadJSON: %v", err)
		}
		var second bytes.Buffer
		if err := loaded.WriteJSON(&second); err != nil {
			t.Fatalf("WriteJSON after load: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("persist -> load -> persist is not byte-identical")
		}
		for i := 0; i < 10; i++ {
			row := genRow(r)
			if b.Predict(row) != loaded.Predict(row) {
				t.Fatalf("loaded ensemble diverges on row %d", i)
			}
		}

		if _, err := ensemble.ReadJSON(strings.NewReader(
			strings.Replace(first.String(), `"kind": "bagged-m5"`, `"kind": "other"`, 1))); err == nil {
			t.Fatal("wrong kind was accepted")
		}
		if _, err := ensemble.ReadJSON(strings.NewReader(
			strings.Replace(first.String(), `"schema_version": 1`, `"schema_version": 99`, 1))); err == nil {
			t.Fatal("future schema version was accepted")
		}
	})
}
