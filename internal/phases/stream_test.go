package phases

import (
	"reflect"
	"testing"
)

// feedAll drives a fresh Stream with every row of the dataset and
// returns the flush plus every reported boundary.
func feedAll(det *Detector, rows [][]float64) ([]Segment, []int) {
	s := det.Stream()
	var starts []int
	for _, r := range rows {
		if st, ok := s.Feed(r); ok {
			starts = append(starts, st)
		}
	}
	return s.Flush(), starts
}

func rawRows(dlen int, det *Detector, value func(i, f int) float64) [][]float64 {
	rows := make([][]float64, dlen)
	for i := range rows {
		rows[i] = make([]float64, len(det.features))
		for j, f := range det.features {
			rows[i][j] = value(i, f)
		}
	}
	return rows
}

// TestStreamMatchesSegment pins the refactor's core guarantee: feeding a
// dataset section by section through Stream.Feed and flushing yields the
// same segments as the batch Segment call (which is itself implemented
// on the stream).
func TestStreamMatchesSegment(t *testing.T) {
	d := syntheticPhases([]int{40, 30, 50, 8, 45}, 11)
	det := NewDetector(d, DefaultConfig())
	want := det.Segment(d)
	rows := rawRows(d.Len(), det, func(i, f int) float64 { return d.Value(i, f) })
	got, starts := feedAll(det, rows)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream flush diverged from batch Segment:\n got %+v\nwant %+v", got, want)
	}
	// Every pre-merge boundary reported online must line up with a phase
	// opening: starts are strictly increasing and within range.
	for i, st := range starts {
		if st <= 0 || st >= d.Len() {
			t.Errorf("boundary %d out of range: %d", i, st)
		}
		if i > 0 && st <= starts[i-1] {
			t.Errorf("boundaries not increasing: %v", starts)
		}
	}
	if len(starts) == 0 {
		t.Error("multi-phase sequence reported no online boundaries")
	}
}

// TestStreamFlushMidway checks that Flush is a snapshot: flushing early,
// feeding more sections and flushing again reflects the new sections
// without corrupting earlier state.
func TestStreamFlushMidway(t *testing.T) {
	d := syntheticPhases([]int{40, 40}, 3)
	det := NewDetector(d, DefaultConfig())
	s := det.Stream()
	raw := make([]float64, len(det.features))
	feed := func(i int) {
		for j, f := range det.features {
			raw[j] = d.Value(i, f)
		}
		s.Feed(raw)
	}
	for i := 0; i < 40; i++ {
		feed(i)
	}
	first := s.Flush()
	if len(first) != 1 || first[0].End != 40 {
		t.Fatalf("mid-stream flush: %+v", first)
	}
	for i := 40; i < 80; i++ {
		feed(i)
	}
	second := s.Flush()
	if want := det.Segment(d); !reflect.DeepEqual(second, want) {
		t.Fatalf("resumed flush diverged:\n got %+v\nwant %+v", second, want)
	}
	// The early flush's centroid snapshot must not have been mutated by
	// the later feeds (it aliased the then-open phase).
	if len(first) != 1 || first[0].End != 40 {
		t.Errorf("early flush mutated by later feeds: %+v", first)
	}
}

// TestOnlineDetectorFindsBoundary runs the self-calibrating detector
// over a two-phase sequence with no dataset at all.
func TestOnlineDetectorFindsBoundary(t *testing.T) {
	d := syntheticPhases([]int{50, 50}, 7)
	o := NewOnline(DefaultConfig(), 20)
	var starts []int
	row := make([]float64, 2)
	for i := 0; i < d.Len(); i++ {
		row[0], row[1] = d.Value(i, 1), d.Value(i, 2)
		starts = append(starts, o.Feed(row)...)
	}
	if len(starts) != 1 {
		t.Fatalf("detected %d boundaries, want 1: %v", len(starts), starts)
	}
	if abs(starts[0]-50) > 4 {
		t.Errorf("boundary at %d, want ~50", starts[0])
	}
	if o.Phase() != 2 {
		t.Errorf("phase %d after one boundary, want 2", o.Phase())
	}
	if segs := o.Segments(); len(segs) != 2 || segs[1].End != d.Len() {
		t.Errorf("segments: %+v", segs)
	}
}

// TestOnlineReplayReportsCalibrationBoundary places the phase change
// inside the calibration window: the completing Feed must replay the
// buffer and still surface it.
func TestOnlineReplayReportsCalibrationBoundary(t *testing.T) {
	d := syntheticPhases([]int{30, 40}, 9)
	o := NewOnline(DefaultConfig(), 60) // boundary at 30 < calibration 60
	var starts []int
	row := make([]float64, 2)
	for i := 0; i < d.Len(); i++ {
		row[0], row[1] = d.Value(i, 1), d.Value(i, 2)
		starts = append(starts, o.Feed(row)...)
	}
	if len(starts) != 1 || abs(starts[0]-30) > 4 {
		t.Fatalf("replayed boundaries %v, want one near 30", starts)
	}
}

func TestFeedWidthMismatchPanics(t *testing.T) {
	det := NewDetectorFromScales([]float64{1, 1, 1}, DefaultConfig())
	s := det.Stream()
	defer func() {
		if recover() == nil {
			t.Error("Feed with wrong width did not panic")
		}
	}()
	s.Feed([]float64{1})
}
