package phases

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// syntheticPhases builds a section sequence with k clearly distinct phases
// of the given lengths: each phase has its own feature baseline.
func syntheticPhases(lengths []int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "CPI"}, {Name: "a"}, {Name: "b"},
	}, 0)
	for p, n := range lengths {
		baseA := float64(p) * 1.0
		baseB := float64(p%2) * 2.0
		for i := 0; i < n; i++ {
			d.MustAppend(dataset.Instance{
				1 + float64(p),
				baseA + 0.02*rng.NormFloat64(),
				baseB + 0.02*rng.NormFloat64(),
			})
		}
	}
	return d
}

func TestSegmentRecoversPhaseCount(t *testing.T) {
	lengths := []int{40, 30, 50}
	d := syntheticPhases(lengths, 1)
	det := NewDetector(d, DefaultConfig())
	segs := det.Segment(d)
	if len(segs) != 3 {
		t.Fatalf("detected %d phases, want 3: %+v", len(segs), segs)
	}
	// Boundaries within a few sections of truth.
	bounds := []int{40, 70}
	if abs(segs[0].End-bounds[0]) > 4 || abs(segs[1].End-bounds[1]) > 4 {
		t.Errorf("boundaries %d,%d, want ~%d,~%d", segs[0].End, segs[1].End, bounds[0], bounds[1])
	}
	// Segments are contiguous and cover everything.
	if segs[0].Start != 0 || segs[len(segs)-1].End != d.Len() {
		t.Error("segments do not cover the sequence")
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Error("segments not contiguous")
		}
	}
}

func TestSegmentSinglePhase(t *testing.T) {
	d := syntheticPhases([]int{80}, 2)
	det := NewDetector(d, DefaultConfig())
	segs := det.Segment(d)
	if len(segs) != 1 {
		t.Fatalf("homogeneous run split into %d phases", len(segs))
	}
	if segs[0].Len() != 80 {
		t.Errorf("segment length %d", segs[0].Len())
	}
}

func TestSegmentIgnoresSingleOutliers(t *testing.T) {
	d := syntheticPhases([]int{60}, 3)
	// Inject two isolated outlier sections.
	d.Row(20)[1] += 10
	d.Row(40)[2] += 10
	det := NewDetector(d, DefaultConfig())
	segs := det.Segment(d)
	if len(segs) != 1 {
		t.Errorf("outliers created %d phases, want 1 (debounced)", len(segs))
	}
}

func TestSegmentEmpty(t *testing.T) {
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	det := NewDetector(d, DefaultConfig())
	if segs := det.Segment(d); segs != nil {
		t.Errorf("empty dataset produced segments: %+v", segs)
	}
}

func TestConfigSanitized(t *testing.T) {
	d := syntheticPhases([]int{30}, 4)
	det := NewDetector(d, Config{Threshold: -1, MinRun: 0, MinPhaseLen: 0})
	if det.cfg.Threshold <= 0 || det.cfg.MinRun < 1 || det.cfg.MinPhaseLen < 1 {
		t.Error("config not sanitized")
	}
}

func TestRender(t *testing.T) {
	d := syntheticPhases([]int{30, 30}, 5)
	det := NewDetector(d, DefaultConfig())
	s := Render(det.Segment(d), d)
	if !strings.Contains(s, "phase 1") || !strings.Contains(s, "mean CPI") {
		t.Errorf("render:\n%s", s)
	}
}

// TestDetectsWorkloadPhaseBoundary checks the detector against the real
// simulated pipeline: a two-phase benchmark whose phases have very
// different counter signatures.
func TestDetectsWorkloadPhaseBoundary(t *testing.T) {
	memory := workload.Params{
		LoadFrac: 0.34, StoreFrac: 0.10, BranchFrac: 0.16,
		DataFootprint: 32 << 20, Pattern: workload.PointerChase, ColdFrac: 0.04,
		DepNearFrac: 0.2, ALUDepFrac: 0.3,
		BranchTakenProb: 0.55, BranchEntropy: 0.03, LoopFrac: 0.3,
		CodeFootprint: 16 << 10, JumpProb: 0.05,
	}
	compute := memory
	compute.Pattern = workload.Random
	compute.DataFootprint = 64 << 10
	compute.ColdFrac = 0.02
	b := workload.Benchmark{Name: "twophase", Phases: []workload.Phase{
		{Params: memory, Sections: 25},
		{Params: compute, Sections: 25},
	}}
	cfg := counters.DefaultCollectConfig()
	cfg.SectionLen = 5000
	cfg.WarmupSections = 0
	col, err := counters.CollectBenchmark(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(col.Data, DefaultConfig())
	segs := det.Segment(col.Data)
	if len(segs) < 2 {
		t.Fatalf("two-phase workload detected as %d phase(s)", len(segs))
	}
	// The dominant boundary should sit near section 25.
	bestGap := 1 << 30
	for _, s := range segs[:len(segs)-1] {
		if g := abs(s.End - 25); g < bestGap {
			bestGap = g
		}
	}
	if bestGap > 5 {
		t.Errorf("no detected boundary within 5 sections of the true phase change (best %d)", bestGap)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
