// Package phases implements execution-phase detection over section
// sequences, the Sherwood-style phase machinery the paper builds on: "we
// make the assumption that any given workload in general may embody
// multiple phases or classes of behavior" (§III). The paper localizes
// classification by cutting execution into equal-instruction sections;
// this package adds the complementary capability of finding the phase
// *boundaries* in a section stream, so reports can say "sections 120-340
// form one phase dominated by LCP stalls" instead of listing sections.
//
// The detector is an online centroid tracker: each section's counter
// vector (normalized per attribute) is compared with the running centroid
// of the current phase; when the distance exceeds a threshold for a few
// consecutive sections, a new phase begins. This mirrors the basic-block
// vector clustering of Sherwood et al. with counters in place of BBVs.
package phases

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Config tunes the detector.
type Config struct {
	// Threshold is the phase-change trigger in *noise units*: a section
	// is out-of-phase when its top-quartile feature deviation from the
	// phase centroid exceeds Threshold times the typical section-to-
	// section noise of those features.
	Threshold float64
	// MinRun is the number of consecutive out-of-phase sections required
	// to open a new phase (debouncing against single-section noise).
	MinRun int
	// MinPhaseLen merges phases shorter than this into their neighbor.
	MinPhaseLen int
}

// DefaultConfig returns thresholds that work well for Table I ratios.
func DefaultConfig() Config {
	return Config{Threshold: 5, MinRun: 3, MinPhaseLen: 5}
}

// Segment is one detected phase: a half-open section range [Start, End)
// and the centroid of its feature vectors.
type Segment struct {
	Start, End int
	Centroid   []float64 // indexed by feature position
}

// Len returns the segment's section count.
func (s Segment) Len() int { return s.End - s.Start }

// Detector carries normalization state.
type Detector struct {
	cfg      Config
	features []int
	scale    []float64 // per-feature noise scale
}

// NewDetector prepares a detector for the dataset's feature columns. Each
// feature is normalized by its *noise floor* — the median absolute
// difference between successive sections — so "how far did this counter
// move" is measured against how much it normally wobbles within a phase.
// (Range- or variance-based normalization fails here: for a feature that
// only carries noise, the range IS the noise, and for a feature carrying a
// phase shift, the shift inflates the variance.) The median is robust to
// the rare large jumps at true phase boundaries.
func NewDetector(d *dataset.Dataset, cfg Config) *Detector {
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultConfig().Threshold
	}
	if cfg.MinRun < 1 {
		cfg.MinRun = 1
	}
	if cfg.MinPhaseLen < 1 {
		cfg.MinPhaseLen = 1
	}
	features := d.FeatureIndices()
	det := &Detector{cfg: cfg, features: features, scale: make([]float64, len(features))}
	n := d.Len()
	diffs := make([]float64, 0, n)
	for i, f := range features {
		diffs = diffs[:0]
		for r := 1; r < n; r++ {
			diffs = append(diffs, math.Abs(d.Value(r, f)-d.Value(r-1, f)))
		}
		noise := median(diffs)
		if noise <= 0 {
			// A constant (or stepwise-constant) column: fall back to a
			// sliver of its range so any movement at all registers.
			lo, hi := d.ColumnMinMax(f)
			noise = (hi - lo) / 100
		}
		if noise <= 0 {
			noise = 1 // truly constant column: never triggers
		}
		det.scale[i] = noise
	}
	return det
}

// median returns the median of v (0 for empty input); v is reordered.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	mid := len(v) / 2
	if len(v)%2 == 1 {
		return v[mid]
	}
	return (v[mid-1] + v[mid]) / 2
}

// vector extracts the normalized feature vector of row i.
func (det *Detector) vector(d *dataset.Dataset, i int) []float64 {
	v := make([]float64, len(det.features))
	for j, f := range det.features {
		v[j] = d.Value(i, f) / det.scale[j]
	}
	return v
}

// distance is the mean of the top quartile of absolute normalized
// per-feature differences. A phase change typically moves a handful of
// the 20 counters while the rest stay put; averaging over all features
// would dilute the signal, while a plain max would fire on a single noisy
// counter. The top-quartile mean is sensitive to coordinated movement and
// robust to one outlier feature.
func distance(a, b []float64) float64 {
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = math.Abs(a[i] - b[i])
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(diffs)))
	k := len(diffs) / 4
	if k < 1 {
		k = 1
	}
	s := 0.0
	for i := 0; i < k; i++ {
		s += diffs[i]
	}
	return s / float64(k)
}

// Segment splits the dataset's section sequence into phases. Rows are
// assumed to be in execution order.
func (det *Detector) Segment(d *dataset.Dataset) []Segment {
	n := d.Len()
	if n == 0 {
		return nil
	}
	var segs []Segment
	cur := Segment{Start: 0, Centroid: det.vector(d, 0)}
	count := 1.0
	outOfPhase := 0
	for i := 1; i < n; i++ {
		v := det.vector(d, i)
		if distance(v, cur.Centroid) > det.cfg.Threshold {
			outOfPhase++
			if outOfPhase >= det.cfg.MinRun {
				// Close the phase before the deviating run began.
				cur.End = i - outOfPhase + 1
				segs = append(segs, cur)
				start := cur.End
				cur = Segment{Start: start, Centroid: det.vector(d, start)}
				count = 1
				for j := start + 1; j <= i; j++ {
					addToCentroid(cur.Centroid, det.vector(d, j), &count)
				}
				outOfPhase = 0
			}
			continue
		}
		// A deviating run shorter than MinRun was an outlier burst: keep
		// those sections in the phase but leave them out of the centroid,
		// so one wild section cannot drag the reference point.
		outOfPhase = 0
		addToCentroid(cur.Centroid, v, &count)
	}
	cur.End = n
	segs = append(segs, cur)
	return mergeShort(segs, det.cfg.MinPhaseLen)
}

// addToCentroid folds v into the running mean.
func addToCentroid(centroid, v []float64, count *float64) {
	*count++
	for i := range centroid {
		centroid[i] += (v[i] - centroid[i]) / *count
	}
}

// mergeShort merges segments below the minimum length into their
// predecessor (or successor for the first segment).
func mergeShort(segs []Segment, minLen int) []Segment {
	if len(segs) <= 1 {
		return segs
	}
	out := segs[:0]
	for _, s := range segs {
		if len(out) > 0 && s.Len() < minLen {
			out[len(out)-1].End = s.End
			continue
		}
		if len(out) == 0 || s.Len() >= minLen {
			out = append(out, s)
			continue
		}
	}
	// A short first segment folds into the one after it.
	if len(out) > 1 && out[0].Len() < minLen {
		out[1].Start = out[0].Start
		out = out[1:]
	}
	return out
}

// Render formats the segmentation with per-phase mean target values.
func Render(segs []Segment, d *dataset.Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d phase(s) over %d sections:\n", len(segs), d.Len())
	for i, s := range segs {
		sum := 0.0
		for j := s.Start; j < s.End; j++ {
			sum += d.Target(j)
		}
		mean := 0.0
		if s.Len() > 0 {
			mean = sum / float64(s.Len())
		}
		fmt.Fprintf(&b, "  phase %d: sections %d..%d (%d), mean %s %.3f\n",
			i+1, s.Start, s.End-1, s.Len(), d.TargetName(), mean)
	}
	return b.String()
}
