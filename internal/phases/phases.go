// Package phases implements execution-phase detection over section
// sequences, the Sherwood-style phase machinery the paper builds on: "we
// make the assumption that any given workload in general may embody
// multiple phases or classes of behavior" (§III). The paper localizes
// classification by cutting execution into equal-instruction sections;
// this package adds the complementary capability of finding the phase
// *boundaries* in a section stream, so reports can say "sections 120-340
// form one phase dominated by LCP stalls" instead of listing sections.
//
// The detector is an online centroid tracker: each section's counter
// vector (normalized per attribute) is compared with the running centroid
// of the current phase; when the distance exceeds a threshold for a few
// consecutive sections, a new phase begins. This mirrors the basic-block
// vector clustering of Sherwood et al. with counters in place of BBVs.
package phases

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Config tunes the detector.
type Config struct {
	// Threshold is the phase-change trigger in *noise units*: a section
	// is out-of-phase when its top-quartile feature deviation from the
	// phase centroid exceeds Threshold times the typical section-to-
	// section noise of those features.
	Threshold float64
	// MinRun is the number of consecutive out-of-phase sections required
	// to open a new phase (debouncing against single-section noise).
	MinRun int
	// MinPhaseLen merges phases shorter than this into their neighbor.
	MinPhaseLen int
}

// DefaultConfig returns thresholds that work well for Table I ratios.
func DefaultConfig() Config {
	return Config{Threshold: 5, MinRun: 3, MinPhaseLen: 5}
}

// Segment is one detected phase: a half-open section range [Start, End)
// and the centroid of its feature vectors.
type Segment struct {
	Start, End int
	Centroid   []float64 // indexed by feature position
}

// Len returns the segment's section count.
func (s Segment) Len() int { return s.End - s.Start }

// Detector carries normalization state.
type Detector struct {
	cfg      Config
	features []int
	scale    []float64 // per-feature noise scale
}

// sanitized clamps the config to usable values.
func (cfg Config) sanitized() Config {
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultConfig().Threshold
	}
	if cfg.MinRun < 1 {
		cfg.MinRun = 1
	}
	if cfg.MinPhaseLen < 1 {
		cfg.MinPhaseLen = 1
	}
	return cfg
}

// NewDetector prepares a detector for the dataset's feature columns. Each
// feature is normalized by its *noise floor* — the median absolute
// difference between successive sections — so "how far did this counter
// move" is measured against how much it normally wobbles within a phase.
// (Range- or variance-based normalization fails here: for a feature that
// only carries noise, the range IS the noise, and for a feature carrying a
// phase shift, the shift inflates the variance.) The median is robust to
// the rare large jumps at true phase boundaries.
func NewDetector(d *dataset.Dataset, cfg Config) *Detector {
	features := d.FeatureIndices()
	n := d.Len()
	vectors := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, len(features))
		for j, f := range features {
			v[j] = d.Value(i, f)
		}
		vectors[i] = v
	}
	det := NewDetectorFromScales(NoiseScales(vectors), cfg)
	det.features = features
	return det
}

// NewDetectorFromScales builds a detector directly from per-feature noise
// scales, for streaming callers that have no dataset to calibrate against
// (the scales typically come from NoiseScales over a warmup prefix). The
// returned detector supports Stream/Feed; Segment additionally needs a
// dataset whose feature columns align positionally with the scales.
func NewDetectorFromScales(scale []float64, cfg Config) *Detector {
	return &Detector{cfg: cfg.sanitized(), scale: append([]float64(nil), scale...)}
}

// NoiseScales computes the per-feature noise floor of a vector sequence:
// the median absolute difference between successive vectors, with the
// same fallbacks as NewDetector (a sliver of the range for stepwise-
// constant features, 1 for truly constant ones).
func NoiseScales(vectors [][]float64) []float64 {
	if len(vectors) == 0 {
		return nil
	}
	k := len(vectors[0])
	scale := make([]float64, k)
	diffs := make([]float64, 0, len(vectors))
	for j := 0; j < k; j++ {
		diffs = diffs[:0]
		lo, hi := vectors[0][j], vectors[0][j]
		for r := 1; r < len(vectors); r++ {
			diffs = append(diffs, math.Abs(vectors[r][j]-vectors[r-1][j]))
			if vectors[r][j] < lo {
				lo = vectors[r][j]
			}
			if vectors[r][j] > hi {
				hi = vectors[r][j]
			}
		}
		noise := median(diffs)
		if noise <= 0 {
			// A constant (or stepwise-constant) column: fall back to a
			// sliver of its range so any movement at all registers.
			noise = (hi - lo) / 100
		}
		if noise <= 0 {
			noise = 1 // truly constant column: never triggers
		}
		scale[j] = noise
	}
	return scale
}

// median returns the median of v (0 for empty input); v is reordered.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	mid := len(v) / 2
	if len(v)%2 == 1 {
		return v[mid]
	}
	return (v[mid-1] + v[mid]) / 2
}

// Online is a fully self-contained streaming detector for callers that
// have no training dataset to calibrate against (e.g. a live counter
// monitor holding only a persisted model). It buffers the first
// Calibration raw vectors, computes the per-feature noise scales from
// that prefix exactly as NewDetector would, then replays the buffer
// through a Stream and continues incrementally.
type Online struct {
	cfg         Config
	calibration int
	buf         [][]float64
	stream      *Stream
}

// NewOnline creates a self-calibrating streaming detector. calibration
// is the number of leading sections used to estimate feature noise
// (values below 2 are raised to 2: noise estimation needs at least one
// successive difference).
func NewOnline(cfg Config, calibration int) *Online {
	if calibration < 2 {
		calibration = 2
	}
	return &Online{cfg: cfg.sanitized(), calibration: calibration}
}

// Feed consumes one raw feature vector and returns the start sections
// of any newly confirmed phases. During calibration nothing is
// reported; the call that completes calibration replays the whole
// buffered prefix, so it can report several boundaries at once.
func (o *Online) Feed(raw []float64) []int {
	if o.stream == nil {
		o.buf = append(o.buf, append([]float64(nil), raw...))
		if len(o.buf) < o.calibration {
			return nil
		}
		det := NewDetectorFromScales(NoiseScales(o.buf), o.cfg)
		o.stream = det.Stream()
		var starts []int
		for _, v := range o.buf {
			if st, ok := o.stream.Feed(v); ok {
				starts = append(starts, st)
			}
		}
		o.buf = nil
		return starts
	}
	if st, ok := o.stream.Feed(raw); ok {
		return []int{st}
	}
	return nil
}

// Phase returns the 1-based current phase index (1 during calibration).
func (o *Online) Phase() int {
	if o.stream == nil {
		return 1
	}
	return o.stream.Phase()
}

// Calibrating reports whether the detector is still estimating scales.
func (o *Online) Calibrating() bool { return o.stream == nil }

// Segments returns the segmentation so far (nil during calibration).
func (o *Online) Segments() []Segment {
	if o.stream == nil {
		return nil
	}
	return o.stream.Flush()
}

// distance is the mean of the top quartile of absolute normalized
// per-feature differences. A phase change typically moves a handful of
// the 20 counters while the rest stay put; averaging over all features
// would dilute the signal, while a plain max would fire on a single noisy
// counter. The top-quartile mean is sensitive to coordinated movement and
// robust to one outlier feature.
func distance(a, b []float64) float64 {
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = math.Abs(a[i] - b[i])
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(diffs)))
	k := len(diffs) / 4
	if k < 1 {
		k = 1
	}
	s := 0.0
	for i := 0; i < k; i++ {
		s += diffs[i]
	}
	return s / float64(k)
}

// Segment splits the dataset's section sequence into phases. Rows are
// assumed to be in execution order. It is the batch driver over the
// incremental Stream: every section is fed in order and the accumulated
// segmentation is flushed at the end, so batch and streaming detection
// share one code path (and one set of outputs).
func (det *Detector) Segment(d *dataset.Dataset) []Segment {
	s := det.Stream()
	raw := make([]float64, len(det.features))
	for i := 0; i < d.Len(); i++ {
		for j, f := range det.features {
			raw[j] = d.Value(i, f)
		}
		s.Feed(raw)
	}
	return s.Flush()
}

// Stream is the incremental phase tracker behind Segment: sections are
// fed one at a time and phase-boundary events are reported as soon as
// the MinRun debounce confirms them, which is what an online monitor
// needs. The arithmetic is identical to the historical batch loop —
// feeding a dataset row by row and flushing yields byte-identical
// segments.
type Stream struct {
	det        *Detector
	n          int // sections fed so far
	cur        Segment
	count      float64
	outOfPhase int
	recent     [][]float64 // ring of the last MinRun normalized vectors
	pos        int         // ring write position
	segs       []Segment
}

// Stream returns a fresh incremental tracker sharing the detector's
// normalization scales.
func (det *Detector) Stream() *Stream {
	return &Stream{det: det, recent: make([][]float64, det.cfg.MinRun)}
}

// Feed consumes the next section's raw feature vector (one value per
// scale, in calibration order). When the debounced tracker confirms a
// phase change it returns the new phase's start section and true; the
// report lags the true boundary by up to MinRun-1 sections (the
// debounce window). The vector is copied; callers may reuse raw.
func (s *Stream) Feed(raw []float64) (start int, boundary bool) {
	if len(raw) != len(s.det.scale) {
		panic(fmt.Sprintf("phases: Feed vector has %d features, detector calibrated for %d",
			len(raw), len(s.det.scale)))
	}
	v := make([]float64, len(raw))
	for j := range raw {
		v[j] = raw[j] / s.det.scale[j]
	}
	i := s.n
	s.n++
	s.recent[s.pos%len(s.recent)] = v
	s.pos++
	if i == 0 {
		s.cur = Segment{Start: 0, Centroid: append([]float64(nil), v...)}
		s.count = 1
		return 0, false
	}
	if distance(v, s.cur.Centroid) > s.det.cfg.Threshold {
		s.outOfPhase++
		if s.outOfPhase >= s.det.cfg.MinRun {
			// Close the phase before the deviating run began and rebuild
			// the centroid from the run's buffered vectors.
			s.cur.End = i - s.outOfPhase + 1
			s.segs = append(s.segs, s.cur)
			start = s.cur.End
			run := s.lastN(s.outOfPhase)
			s.cur = Segment{Start: start, Centroid: append([]float64(nil), run[0]...)}
			s.count = 1
			for _, w := range run[1:] {
				addToCentroid(s.cur.Centroid, w, &s.count)
			}
			s.outOfPhase = 0
			return start, true
		}
		return 0, false
	}
	// A deviating run shorter than MinRun was an outlier burst: keep
	// those sections in the phase but leave them out of the centroid,
	// so one wild section cannot drag the reference point.
	s.outOfPhase = 0
	addToCentroid(s.cur.Centroid, v, &s.count)
	return 0, false
}

// lastN returns the most recent k fed vectors, oldest first. k must be
// at most MinRun (the ring capacity), which holds for every caller: the
// deviating run is cut off the moment it reaches MinRun.
func (s *Stream) lastN(k int) [][]float64 {
	out := make([][]float64, k)
	for j := 0; j < k; j++ {
		out[j] = s.recent[(s.pos-k+j)%len(s.recent)]
	}
	return out
}

// Phase returns the 1-based index of the phase currently being tracked
// (0 before any section was fed).
func (s *Stream) Phase() int {
	if s.n == 0 {
		return 0
	}
	return len(s.segs) + 1
}

// Sections returns the number of sections fed so far.
func (s *Stream) Sections() int { return s.n }

// Flush closes the open phase and returns the full segmentation with
// short phases merged, exactly as the batch Segment reports it. The
// stream remains usable; a later Flush reflects the additional sections.
func (s *Stream) Flush() []Segment {
	if s.n == 0 {
		return nil
	}
	cur := s.cur
	cur.End = s.n
	// The open phase's centroid is still being updated by Feed; hand the
	// caller a snapshot so flushing mid-stream stays safe.
	cur.Centroid = append([]float64(nil), s.cur.Centroid...)
	segs := append(append([]Segment(nil), s.segs...), cur)
	return mergeShort(segs, s.det.cfg.MinPhaseLen)
}

// addToCentroid folds v into the running mean.
func addToCentroid(centroid, v []float64, count *float64) {
	*count++
	for i := range centroid {
		centroid[i] += (v[i] - centroid[i]) / *count
	}
}

// mergeShort merges segments below the minimum length into their
// predecessor (or successor for the first segment).
func mergeShort(segs []Segment, minLen int) []Segment {
	if len(segs) <= 1 {
		return segs
	}
	out := segs[:0]
	for _, s := range segs {
		if len(out) > 0 && s.Len() < minLen {
			out[len(out)-1].End = s.End
			continue
		}
		if len(out) == 0 || s.Len() >= minLen {
			out = append(out, s)
			continue
		}
	}
	// A short first segment folds into the one after it.
	if len(out) > 1 && out[0].Len() < minLen {
		out[1].Start = out[0].Start
		out = out[1:]
	}
	return out
}

// Render formats the segmentation with per-phase mean target values.
func Render(segs []Segment, d *dataset.Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d phase(s) over %d sections:\n", len(segs), d.Len())
	for i, s := range segs {
		sum := 0.0
		for j := s.Start; j < s.End; j++ {
			sum += d.Target(j)
		}
		mean := 0.0
		if s.Len() > 0 {
			mean = sum / float64(s.Len())
		}
		fmt.Fprintf(&b, "  phase %d: sections %d..%d (%d), mean %s %.3f\n",
			i+1, s.Start, s.End-1, s.Len(), d.TargetName(), mean)
	}
	return b.String()
}
