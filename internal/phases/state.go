package phases

import "fmt"

// Serializable monitor state, for the serve layer's session
// snapshot/restore (drain a live monitor on one replica, restore it on
// another). Every field is a plain value that survives a JSON round
// trip bit-exactly — Go marshals float64 in shortest-round-trip form —
// so a restored detector continues the section stream exactly where
// the drained one stopped: same phase numbering, same centroid, same
// debounce counter.

// StreamState is the full state of an incremental phase tracker plus
// the normalization scales of the detector behind it.
type StreamState struct {
	// Scale is the detector's per-feature noise normalization.
	Scale []float64 `json:"scale"`
	// N is the number of sections fed so far.
	N int `json:"n"`
	// Cur is the open phase (End is unset until it closes).
	Cur Segment `json:"cur"`
	// Count is the open phase's centroid weight.
	Count float64 `json:"count"`
	// OutOfPhase is the current deviating-run length (debounce state).
	OutOfPhase int `json:"out_of_phase"`
	// Recent is the ring of the last MinRun normalized vectors, in ring
	// storage order, with Pos the next write position. Unfilled slots
	// are null.
	Recent [][]float64 `json:"recent"`
	Pos    int         `json:"pos"`
	// Segs are the closed phases.
	Segs []Segment `json:"segs,omitempty"`
}

// State snapshots the tracker. The snapshot shares no mutable memory
// with the stream: every slice is copied.
func (s *Stream) State() StreamState {
	st := StreamState{
		Scale:      append([]float64(nil), s.det.scale...),
		N:          s.n,
		Cur:        copySegment(s.cur),
		Count:      s.count,
		OutOfPhase: s.outOfPhase,
		Recent:     copyVectors(s.recent),
		Pos:        s.pos,
	}
	if len(s.segs) > 0 {
		st.Segs = make([]Segment, len(s.segs))
		for i, seg := range s.segs {
			st.Segs[i] = copySegment(seg)
		}
	}
	return st
}

// RestoreStream rebuilds a tracker from a snapshot under cfg. The
// config's MinRun must match the snapshot's debounce ring length —
// restoring under a different debounce window would silently change
// boundary detection, so it is an error instead.
func RestoreStream(cfg Config, st StreamState) (*Stream, error) {
	det := NewDetectorFromScales(st.Scale, cfg)
	if len(st.Recent) != det.cfg.MinRun {
		return nil, fmt.Errorf("phases: snapshot debounce ring has %d slots, config MinRun is %d",
			len(st.Recent), det.cfg.MinRun)
	}
	s := det.Stream()
	s.n = st.N
	s.cur = copySegment(st.Cur)
	s.count = st.Count
	s.outOfPhase = st.OutOfPhase
	s.recent = copyVectors(st.Recent)
	s.pos = st.Pos
	for _, seg := range st.Segs {
		s.segs = append(s.segs, copySegment(seg))
	}
	return s, nil
}

// OnlineState is the full state of a self-calibrating detector: either
// still buffering its calibration prefix (Buf set, Stream nil) or
// tracking (Stream set).
type OnlineState struct {
	Calibration int          `json:"calibration"`
	Buf         [][]float64  `json:"buf,omitempty"`
	Stream      *StreamState `json:"stream,omitempty"`
}

// State snapshots the detector.
func (o *Online) State() OnlineState {
	st := OnlineState{Calibration: o.calibration}
	if o.stream != nil {
		ss := o.stream.State()
		st.Stream = &ss
		return st
	}
	st.Buf = copyVectors(o.buf)
	return st
}

// RestoreOnline rebuilds a self-calibrating detector from a snapshot
// under cfg (which must carry the same thresholds the drained detector
// ran with for behavior to continue unchanged).
func RestoreOnline(cfg Config, st OnlineState) (*Online, error) {
	o := NewOnline(cfg, st.Calibration)
	if st.Stream == nil {
		o.buf = copyVectors(st.Buf)
		return o, nil
	}
	s, err := RestoreStream(cfg, *st.Stream)
	if err != nil {
		return nil, err
	}
	o.stream = s
	return o, nil
}

func copySegment(s Segment) Segment {
	s.Centroid = append([]float64(nil), s.Centroid...)
	return s
}

func copyVectors(v [][]float64) [][]float64 {
	if v == nil {
		return nil
	}
	out := make([][]float64, len(v))
	for i, row := range v {
		if row != nil {
			out[i] = append([]float64(nil), row...)
		}
	}
	return out
}
