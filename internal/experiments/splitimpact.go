package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/mtree"
)

// SplitImpactExp reproduces the split-variable impact analysis (E8,
// paper §V.A.2): for every split on the trained tree, the high-side vs
// low-side mean CPI difference and the single-variable regression R²
// — the two estimators the paper describes with its LdBlSta example
// (difference ≈ 0.30 CPI, about 35% of the high side's CPI).
func SplitImpactExp(ctx *Context) (Result, error) {
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	tree, err := mtree.Build(col.Data, cfg)
	if err != nil {
		return Result{}, err
	}
	impacts := analysis.SplitImpacts(tree, col.Data)
	var b strings.Builder
	b.WriteString(analysis.RenderSplitImpacts(impacts))

	if len(impacts) == 0 {
		return Result{}, fmt.Errorf("experiments: tree has no splits to analyze")
	}
	top := impacts[0]
	fmt.Fprintf(&b, "\nworked example (paper's LdBlSta recipe applied to the top split):\n")
	fmt.Fprintf(&b, "  net impact of %s > %.4g is %.2f - %.2f = %.2f CPI, i.e. %.0f%% of the high side\n",
		top.Name, top.Threshold, top.HighMeanCPI, top.LowMeanCPI, top.MeanDifference, 100*top.FractionOfHigh)

	anyPositive := false
	for _, si := range impacts {
		if si.MeanDifference > 0 && si.FractionOfHigh > 0.1 {
			anyPositive = true
			break
		}
	}
	return Result{
		Name:   "Split-variable impact",
		Report: b.String(),
		Claims: []Claim{
			{
				Paper:    "split-variable impact measurable as subtree mean difference (LdBlSta: ~0.30 CPI, ~35%)",
				Measured: fmt.Sprintf("top split %s: diff %.2f CPI, %.0f%% of high side", top.Name, top.MeanDifference, 100*top.FractionOfHigh),
				Holds:    anyPositive,
			},
			{
				Paper:    "regression R² of the split variable indicates its contribution",
				Measured: fmt.Sprintf("top split R² = %.3f", top.RSquared),
				Holds:    top.RSquared > 0.05,
			},
		},
	}, nil
}
