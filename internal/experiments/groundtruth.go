package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/mtree"
	"repro/internal/sim/cpu"
)

// eventCategory maps each Table I predictor to the simulator's
// ground-truth cycle category, so model-attributed CPI shares can be
// summed per category and compared with the true breakdown.
var eventCategory = map[string]cpu.CycleCategory{
	"L2M":       cpu.CatL2Miss,
	"L1DM":      cpu.CatL1DMiss,
	"L1IM":      cpu.CatFrontEnd,
	"ItlbM":     cpu.CatFrontEnd,
	"BrMisPr":   cpu.CatBranch,
	"DtlbL0LdM": cpu.CatDTLB,
	"DtlbLdM":   cpu.CatDTLB,
	"DtlbLdReM": cpu.CatDTLB,
	"Dtlb":      cpu.CatDTLB,
	"LCP":       cpu.CatLCP,
	"LdBlSta":   cpu.CatBlocks,
	"LdBlStd":   cpu.CatBlocks,
	"LdBlOvSt":  cpu.CatBlocks,
	"MisalRef":  cpu.CatAlign,
	"L1DSpLd":   cpu.CatAlign,
	"L1DSpSt":   cpu.CatAlign,
}

// GroundTruthExp validates the model's "how much" answers against the
// simulator's exact cycle attribution — an experiment the paper could not
// run, because real hardware never reveals where its cycles went. For each
// major cycle category we compare
//
//   - truth: the simulator's attributed cycles per instruction, vs
//   - model: the trained tree's summed leaf-model contributions of the
//     counters mapped to that category,
//
// aggregated over the whole suite. If the model tree's interpretability
// story holds, the two columns should agree on which categories dominate
// and roughly by how much.
func GroundTruthExp(ctx *Context) (Result, error) {
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	tree, err := mtree.Build(col.Data, cfg)
	if err != nil {
		return Result{}, err
	}

	// Ground truth: mean cycles per instruction per category.
	var truth [16]float64 // indexed by CycleCategory; oversized is fine
	n := col.Data.Len()
	if len(col.Breakdowns) != n {
		return Result{}, fmt.Errorf("experiments: %d breakdowns for %d rows", len(col.Breakdowns), n)
	}
	totalInsts := float64(n) * float64(ctx.Cfg.SectionLen)
	for _, bd := range col.Breakdowns {
		for c := cpu.CycleCategory(0); c < cpu.CycleCategory(len(truth)); c++ {
			if int(c) < len(bd) {
				truth[c] += bd[c]
			}
		}
	}
	for i := range truth {
		truth[i] /= totalInsts
	}

	// Model attribution: sum each section's leaf-model contributions into
	// the mapped categories (cycles per instruction, averaged).
	var model [16]float64
	for i := 0; i < n; i++ {
		rep := analysis.AnalyzeSection(tree, col.Data.Row(i))
		for _, c := range rep.Contributions {
			if c.Cycles <= 0 {
				continue
			}
			if cat, ok := eventCategory[c.Name]; ok {
				model[cat] += c.Cycles
			}
		}
	}
	for i := range model {
		model[i] /= float64(n)
	}

	cats := []cpu.CycleCategory{
		cpu.CatL2Miss, cpu.CatDTLB, cpu.CatFrontEnd, cpu.CatBranch,
		cpu.CatL1DMiss, cpu.CatLCP, cpu.CatBlocks, cpu.CatAlign,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s\n", "category", "truth CPI", "model CPI")
	for _, c := range cats {
		fmt.Fprintf(&b, "%-10s %14.4f %14.4f\n", c, truth[c], model[c])
	}

	// Identifiability caveat: within the memory subsystem the counters are
	// strongly collinear (a pointer-chase section has high L2M *and* high
	// DTLB counts, and either column can carry the class's cycles in a
	// regression), so the model's split of cycles *between* l2miss and
	// dtlb is not causally meaningful — only their sum is identifiable
	// from counters. The comparison therefore merges them.
	type group struct {
		name         string
		truth, model float64
	}
	groups := []group{
		{"memory (l2+dtlb)", truth[cpu.CatL2Miss] + truth[cpu.CatDTLB], model[cpu.CatL2Miss] + model[cpu.CatDTLB]},
		{"branch", truth[cpu.CatBranch], model[cpu.CatBranch]},
		{"l1dmiss", truth[cpu.CatL1DMiss], model[cpu.CatL1DMiss]},
		{"frontend", truth[cpu.CatFrontEnd], model[cpu.CatFrontEnd]},
		{"lcp", truth[cpu.CatLCP], model[cpu.CatLCP]},
	}
	fmt.Fprintf(&b, "\n%-18s %14s %14s %8s\n", "identifiable group", "truth CPI", "model CPI", "ratio")
	for _, g := range groups {
		ratio := 0.0
		if g.truth > 0 {
			ratio = g.model / g.truth
		}
		fmt.Fprintf(&b, "%-18s %14.4f %14.4f %8.2f\n", g.name, g.truth, g.model, ratio)
	}
	fmt.Fprintf(&b, "\nnote: the model over-credits DTLB counters (%.2f vs true %.2f) because they\n"+
		"proxy the collinear serialized L2 misses — leaf coefficients are\n"+
		"correlational, not causal, within the memory group.\n",
		model[cpu.CatDTLB], truth[cpu.CatDTLB])

	// Claim 1: identifiable-group ranking matches the truth.
	tRank := append([]group(nil), groups...)
	sort.SliceStable(tRank, func(i, j int) bool { return tRank[i].truth > tRank[j].truth })
	mRank := append([]group(nil), groups...)
	sort.SliceStable(mRank, func(i, j int) bool { return mRank[i].model > mRank[j].model })
	rankMatch := tRank[0].name == mRank[0].name && tRank[1].name == mRank[1].name
	// Claim 2: magnitudes agree within 2x for the top groups.
	within := true
	for _, g := range tRank[:3] {
		if g.truth <= 0 {
			continue
		}
		if r := g.model / g.truth; r < 0.5 || r > 2 {
			within = false
		}
	}
	return Result{
		Name:   "Ground truth: model-attributed vs simulator-attributed cycles",
		Report: b.String(),
		Claims: []Claim{
			{
				Paper:    `(extension) the tree's "what" ranking matches the true cycle stack`,
				Measured: fmt.Sprintf("top-2 identifiable groups in order: %v (truth: %s > %s)", rankMatch, tRank[0].name, tRank[1].name),
				Holds:    rankMatch,
			},
			{
				Paper:    `(extension) the tree's "how much" is quantitatively right`,
				Measured: "top-3 group CPI within 2x of truth: " + fmt.Sprint(within),
				Holds:    within,
			},
		},
	}, nil
}
