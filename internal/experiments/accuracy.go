package experiments

import (
	"fmt"
	"strings"

	"repro/internal/ann"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/mtree"
	"repro/internal/naive"
	"repro/internal/regtree"
	"repro/internal/svm"
)

// m5Learner returns the standard M5' learner for the context's config.
func m5Learner(ctx *Context) eval.Learner {
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	cfg.Jobs = ctx.Cfg.Jobs
	return eval.LearnerFunc{N: "M5' model tree", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return mtree.Build(d, cfg)
	}}
}

// Accuracy reproduces the headline evaluation (E5): 10-fold CV of the M5'
// tree against the paper's C=0.98 / 0.9845, MAE=0.05, RAE=7.83%.
func Accuracy(ctx *Context) (Result, error) {
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	res, err := eval.CrossValidate(m5Learner(ctx), col.Data, ctx.Cfg.Folds, ctx.Cfg.Seed, ctx.Cfg.Par())
	if err != nil {
		return Result{}, err
	}
	m := res.Pooled
	var b strings.Builder
	fmt.Fprintf(&b, "dataset: %d sections x %d attributes (mean CPI %.3f, sd %.3f)\n",
		col.Data.Len(), col.Data.NumAttrs(), col.Data.TargetMean(), col.Data.TargetStdDev())
	fmt.Fprintf(&b, "%d-fold CV pooled:   %s\n", ctx.Cfg.Folds, m)
	fmt.Fprintf(&b, "%d-fold CV per-fold mean: %s\n", ctx.Cfg.Folds, res.MeanFoldMetrics())
	return Result{
		Name:   "Headline accuracy (10-fold cross validation)",
		Report: b.String(),
		Claims: []Claim{
			{
				Paper:    "correlation 0.98 (0.9845) between predicted and measured CPI",
				Measured: fmt.Sprintf("C = %.4f", m.Correlation),
				Holds:    m.Correlation >= 0.97,
			},
			{
				Paper:    "mean absolute error 0.05",
				Measured: fmt.Sprintf("MAE = %.4f", m.MAE),
				Holds:    m.MAE <= 0.12,
			},
			{
				Paper:    "relative absolute error below 8%",
				Measured: fmt.Sprintf("RAE = %.2f%%", m.RAE*100),
				Holds:    m.RAE <= 0.16,
			},
		},
	}, nil
}

// Comparators reproduces the model-comparison discussion (E6): the paper
// reports ANN C=0.99 and SVM C=0.98 on the same data, with the model tree
// competitive while staying interpretable; classical regression trees
// (constant leaves) do worse.
func Comparators(ctx *Context) (Result, error) {
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	d := col.Data

	learners := []eval.Learner{
		m5Learner(ctx),
		eval.LearnerFunc{N: "Regression tree (CART)", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			cfg := regtree.DefaultConfig()
			cfg.MinLeaf = ctx.Cfg.ScaledMinLeaf() / 8
			if cfg.MinLeaf < 2 {
				cfg.MinLeaf = 2
			}
			return regtree.Build(d, cfg)
		}},
		eval.LearnerFunc{N: "ANN (MLP 16 hidden)", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			cfg := ann.DefaultConfig()
			cfg.Epochs = 60
			return ann.Train(d, cfg)
		}},
		eval.LearnerFunc{N: "SVM (eps-SVR, RBF)", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			return svm.Train(d, svm.DefaultConfig())
		}},
		eval.LearnerFunc{N: "Global linear model", F: func(d *dataset.Dataset) (eval.Regressor, error) {
			return naive.TrainGlobalLinear(d)
		}},
	}

	// The black-box comparators are expensive; 3 folds give stable rank
	// ordering at a fraction of the cost, while M5' uses the full fold
	// count for its headline.
	folds := map[string]int{
		"M5' model tree":         ctx.Cfg.Folds,
		"Regression tree (CART)": ctx.Cfg.Folds,
		"ANN (MLP 16 hidden)":    3,
		"SVM (eps-SVR, RBF)":     3,
		"Global linear model":    ctx.Cfg.Folds,
	}

	results := map[string]eval.Metrics{}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %9s %8s\n", "model", "C", "MAE", "RAE", "folds")
	for _, l := range learners {
		k := folds[l.Name()]
		res, err := eval.CrossValidate(l, d, k, ctx.Cfg.Seed, ctx.Cfg.Par())
		if err != nil {
			return Result{}, fmt.Errorf("experiments: cross-validating %s: %w", l.Name(), err)
		}
		results[l.Name()] = res.Pooled
		fmt.Fprintf(&b, "%-24s %8.4f %8.4f %8.2f%% %8d\n",
			l.Name(), res.Pooled.Correlation, res.Pooled.MAE, res.Pooled.RAE*100, k)
	}

	m5 := results["M5' model tree"]
	annM := results["ANN (MLP 16 hidden)"]
	svmM := results["SVM (eps-SVR, RBF)"]
	cart := results["Regression tree (CART)"]
	lin := results["Global linear model"]
	return Result{
		Name:   "Comparator models",
		Report: b.String(),
		Claims: []Claim{
			{
				Paper:    "ANN and SVM give C of 0.99 and 0.98 on the same data",
				Measured: fmt.Sprintf("ANN C=%.3f, SVM C=%.3f", annM.Correlation, svmM.Correlation),
				Holds:    annM.Correlation >= 0.93 && svmM.Correlation >= 0.93,
			},
			{
				Paper:    "model tree accuracy competitive with black boxes",
				Measured: fmt.Sprintf("M5' C=%.3f vs max(black box)=%.3f", m5.Correlation, maxf(annM.Correlation, svmM.Correlation)),
				Holds:    m5.Correlation >= maxf(annM.Correlation, svmM.Correlation)-0.02,
			},
			{
				Paper:    "model trees more accurate than classical regression trees",
				Measured: fmt.Sprintf("M5' RAE=%.1f%% vs CART RAE=%.1f%%", m5.RAE*100, cart.RAE*100),
				Holds:    m5.RAE < cart.RAE,
			},
			{
				Paper:    "single linear model cannot capture per-class behaviour",
				Measured: fmt.Sprintf("global linear RAE=%.1f%% vs M5' RAE=%.1f%%", lin.RAE*100, m5.RAE*100),
				Holds:    lin.RAE > m5.RAE*1.5,
			},
		},
	}, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// NaiveExp reproduces the motivation (E9): the traditional uniform
// fixed-penalty model mis-estimates CPI because it cannot express
// context-dependent penalties.
func NaiveExp(ctx *Context) (Result, error) {
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	d := col.Data
	fixed := naive.NewCore2FixedPenalties(d)
	fm, err := eval.Evaluate(fixed, d)
	if err != nil {
		return Result{}, err
	}
	res, err := eval.CrossValidate(m5Learner(ctx), d, ctx.Cfg.Folds, ctx.Cfg.Seed, ctx.Cfg.Par())
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fixed-penalty model: %s\n", fixed)
	fmt.Fprintf(&b, "fixed-penalty fit:   %s\n", fm)
	fmt.Fprintf(&b, "M5' (10-fold CV):    %s\n", res.Pooled)
	return Result{
		Name:   "Fixed-penalty first-order model (motivating baseline)",
		Report: b.String(),
		Claims: []Claim{{
			Paper:    "uniform penalties do not accurately identify/quantify limiters",
			Measured: fmt.Sprintf("fixed-penalty RAE=%.0f%% vs M5' RAE=%.1f%%", fm.RAE*100, res.Pooled.RAE*100),
			Holds:    fm.RAE > 2*res.Pooled.RAE,
		}},
	}, nil
}
