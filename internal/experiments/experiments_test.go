package experiments

import (
	"strings"
	"testing"
)

// smallCtx runs at 3% suite scale: fast enough for unit tests while still
// exercising every code path end to end.
func smallCtx() *Context {
	cfg := DefaultConfig()
	cfg.Scale = 0.03
	cfg.Folds = 5
	return NewContext(cfg)
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 9 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e.Name)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if got, ok := ByName(e.Name); !ok || got.Name != e.Name {
			t.Errorf("ByName(%q) failed", e.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown experiment found")
	}
	for _, want := range []string{"tableI", "figure1", "figure2", "figure3",
		"accuracy", "comparators", "leafcensus", "splitimpact", "naive"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestTableIExperiment(t *testing.T) {
	res, err := TableI(smallCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Report, "ILD_STALL") {
		t.Error("Table I report missing LCP event")
	}
	for _, c := range res.Claims {
		if !c.Holds {
			t.Errorf("claim failed: %+v", c)
		}
	}
}

func TestFigure1Experiment(t *testing.T) {
	res, err := Figure1(smallCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Report, "X1") {
		t.Errorf("Figure 1 tree missing X1 split:\n%s", res.Report)
	}
	for _, c := range res.Claims {
		if !c.Holds {
			t.Errorf("claim failed: paper=%q measured=%q", c.Paper, c.Measured)
		}
	}
}

func TestFigure2And3SmallScale(t *testing.T) {
	ctx := smallCtx()
	res2, err := Figure2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Report, "LM1") {
		t.Errorf("Figure 2 report has no leaf models:\n%s", res2.Report)
	}
	res3, err := Figure3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res3.Report, "unity line") {
		t.Error("Figure 3 missing scatter plot")
	}
}

func TestAccuracySmallScale(t *testing.T) {
	res, err := Accuracy(smallCtx())
	if err != nil {
		t.Fatal(err)
	}
	// At 3% scale the tree is crude; just require the experiment to
	// produce well-formed claims and a clearly positive correlation.
	if len(res.Claims) != 3 {
		t.Fatalf("claims %d, want 3", len(res.Claims))
	}
	if !strings.Contains(res.Report, "CV pooled") {
		t.Error("report missing CV metrics")
	}
}

func TestNaiveSmallScale(t *testing.T) {
	res, err := NaiveExp(smallCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Report, "fixed-penalty") {
		t.Errorf("report:\n%s", res.Report)
	}
	// The fixed-penalty model must lose to the tree even at small scale.
	if len(res.Claims) != 1 || !res.Claims[0].Holds {
		t.Errorf("fixed-penalty claim: %+v", res.Claims)
	}
}

func TestSplitImpactSmallScale(t *testing.T) {
	res, err := SplitImpactExp(smallCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Report, "worked example") {
		t.Error("split impact missing worked example")
	}
}

func TestLeafCensusSmallScale(t *testing.T) {
	res, err := LeafCensusExp(smallCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Report, "436.cactusADM") || !strings.Contains(res.Report, "429.mcf") {
		t.Error("census missing benchmark narratives")
	}
	if !strings.Contains(res.Report, "Eq. 4") {
		t.Error("census missing Eq. 4 walk-through")
	}
}

func TestResultRender(t *testing.T) {
	r := Result{
		Name:   "x",
		Report: "body\n",
		Claims: []Claim{
			{Paper: "p", Measured: "m", Holds: true},
			{Paper: "q", Measured: "n", Holds: false},
		},
	}
	s := r.Render()
	if !strings.Contains(s, "[OK ]") || !strings.Contains(s, "[DIV]") {
		t.Errorf("render:\n%s", s)
	}
}

func TestContextCachesCollection(t *testing.T) {
	ctx := smallCtx()
	a, err := ctx.Collection()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Collection()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Collection not cached")
	}
	if a.Data.Len() == 0 {
		t.Error("empty collection")
	}
}

func TestSyntheticFigure1Deterministic(t *testing.T) {
	a := syntheticFigure1Data(100, 1)
	b := syntheticFigure1Data(100, 1)
	for i := 0; i < a.Len(); i++ {
		if a.Target(i) != b.Target(i) {
			t.Fatal("synthetic data not deterministic")
		}
	}
}
