package experiments

import (
	"fmt"
	"strings"

	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/mtree"
	"repro/internal/textplot"
)

// TableI renders the paper's Table I metric catalogue (E1).
func TableI(ctx *Context) (Result, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %-52s %s\n", "Metric", "Corresponding event", "Description")
	for _, m := range counters.TableI() {
		fmt.Fprintf(&b, "%-11s %-52s %s\n", m.Name, m.Event, m.Description)
	}
	tab := counters.TableI()
	return Result{
		Name:   "Table I — selected metrics",
		Report: b.String(),
		Claims: []Claim{{
			Paper:    "CPI described as a function of 20 performance counters",
			Measured: fmt.Sprintf("%d predictor metrics + CPI in the schema", len(tab)-1),
			Holds:    len(tab)-1 == 20,
		}},
	}, nil
}

// Figure1 trains an M5' tree on the synthetic 4-attribute function and
// prints the structure (E2), mirroring the paper's illustrative figure.
func Figure1(ctx *Context) (Result, error) {
	d := syntheticFigure1Data(2000, ctx.Cfg.Seed)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 100
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		return Result{}, err
	}
	rootOnX1 := !tree.Root.IsLeaf() && tree.AttrNames[tree.Root.SplitAttr] == "X1"
	return Result{
		Name:   "Figure 1 — example M5' tree for Y = f(X1,X2,X3,X4)",
		Report: tree.Summary() + "\n\n" + tree.String(),
		Claims: []Claim{{
			Paper:    "tree of LM1..LMk leaves with splits on the Xi",
			Measured: fmt.Sprintf("%d leaves, root splits on %s", tree.NumLeaves(), tree.AttrNames[tree.Root.SplitAttr]),
			Holds:    rootOnX1 && tree.NumLeaves() >= 3,
		}},
	}, nil
}

// Figure2 trains the performance-analysis tree on the full simulated suite
// and prints it (E3).
func Figure2(ctx *Context) (Result, error) {
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	tree, err := mtree.Build(col.Data, cfg)
	if err != nil {
		return Result{}, err
	}

	claims := []Claim{}
	// Claim: memory-subsystem events dominate the top of the tree; branch
	// events appear below them; rare events (LCP, load blocks, splits) only
	// in the leaf models.
	memTop, brDepth, rareDepth := topSplitProfile(tree)
	claims = append(claims, Claim{
		Paper:    "model decides first on cache misses, then DTLB, then branch events",
		Measured: fmt.Sprintf("top-2-level splits are memory events: %v; first branch split at depth %d", memTop, brDepth),
		Holds:    memTop && (brDepth < 0 || brDepth >= 2),
	})
	claims = append(claims, Claim{
		Paper:    "less frequent discriminative predictors in lower levels",
		Measured: fmt.Sprintf("first rare-event split depth: %d (-1 = only in leaf models)", rareDepth),
		Holds:    rareDepth < 0 || rareDepth >= 2,
	})
	claims = append(claims, Claim{
		Paper:    "tree partitions the suite into ~18 classes (leaves)",
		Measured: fmt.Sprintf("%d leaves at MinLeaf=%d", tree.NumLeaves(), cfg.MinLeaf),
		Holds:    tree.NumLeaves() >= 8 && tree.NumLeaves() <= 30,
	})
	return Result{
		Name:   "Figure 2 — performance-analysis tree",
		Report: tree.Summary() + "\n\n" + tree.String(),
		Claims: claims,
	}, nil
}

// topSplitProfile inspects the split ordering: whether the top two levels
// test memory-subsystem events, and the first depth at which a branch
// event or a rare event is tested (-1 when never).
func topSplitProfile(t *mtree.Tree) (memTop bool, branchDepth, rareDepth int) {
	memory := map[string]bool{
		"L2M": true, "L1DM": true, "L1IM": true,
		"DtlbL0LdM": true, "DtlbLdM": true, "DtlbLdReM": true, "Dtlb": true, "ItlbM": true,
	}
	branch := map[string]bool{"BrMisPr": true, "BrPred": true}
	rare := map[string]bool{
		"LCP": true, "LdBlSta": true, "LdBlStd": true, "LdBlOvSt": true,
		"MisalRef": true, "L1DSpLd": true, "L1DSpSt": true,
	}
	memTop = true
	branchDepth, rareDepth = -1, -1
	var walk func(n *mtree.Node, depth int)
	walk = func(n *mtree.Node, depth int) {
		if n == nil || n.IsLeaf() {
			return
		}
		name := t.AttrNames[n.SplitAttr]
		if depth < 2 && !memory[name] {
			memTop = false
		}
		if branch[name] && (branchDepth < 0 || depth < branchDepth) {
			branchDepth = depth
		}
		if rare[name] && (rareDepth < 0 || depth < rareDepth) {
			rareDepth = depth
		}
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(t.Root, 0)
	return memTop, branchDepth, rareDepth
}

// Figure3 runs 10-fold CV and renders the predicted-vs-actual scatter (E4).
func Figure3(ctx *Context) (Result, error) {
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	cfg.Jobs = ctx.Cfg.Jobs
	learner := eval.LearnerFunc{N: "M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return mtree.Build(d, cfg)
	}}
	res, err := eval.CrossValidate(learner, col.Data, ctx.Cfg.Folds, ctx.Cfg.Seed, ctx.Cfg.Par())
	if err != nil {
		return Result{}, err
	}
	plot := textplot.Scatter(res.Actual, res.Predicted, 72, 24, "actual CPI", "predicted CPI")
	report := plot + "\n" + fmt.Sprintf("%d-fold CV: %s\n", ctx.Cfg.Folds, res.Pooled)
	return Result{
		Name:   "Figure 3 — predicted vs actual CPI (out-of-fold)",
		Report: report,
		Claims: []Claim{{
			Paper:    "most data points very close to the unity line, few outliers",
			Measured: fmt.Sprintf("out-of-fold correlation %.4f", res.Pooled.Correlation),
			Holds:    res.Pooled.Correlation >= 0.95,
		}},
	}, nil
}
