package experiments

import (
	"fmt"
	"strings"

	"repro/internal/counters"
	"repro/internal/eval"
	"repro/internal/march"
	"repro/internal/mtree"
	"repro/internal/workload"
)

// CrossArchExp is the multi-machine training scenario the march registry
// exists for. It collects the same suite (byte-identical instruction
// traces) on every machine of march.CrossArchSet and asks three
// questions the single-machine paper cannot:
//
//  1. Structure: does the learned tree's split ordering track the
//     machine? (Per-machine trees, root-split diff table.)
//  2. Pooling: can one tree model all machines at once if given the
//     architecture parameters as extra attributes? (Pooled tree over the
//     arch-feature-widened datasets.)
//  3. Transfer: does the pooled arch-aware tree predict CPI on a machine
//     it never saw — leave-one-architecture-out — better than an
//     arch-blind tree trained on the same rows without the architecture
//     columns?
//
// Everything is deterministic: collection fans the (machine, benchmark)
// pairs over one ordered worker pool, and tree training is seeded, so the
// report is byte-identical for every -jobs value.
func CrossArchExp(ctx *Context) (Result, error) {
	scale := ctx.Cfg.Scale * 0.2
	suite := workload.SuiteScaled(scale)
	minLeaf := int(float64(ctx.Cfg.MinLeaf) * scale)
	if minLeaf < 16 {
		minLeaf = 16
	}

	base := counters.DefaultCollectConfig()
	base.Seed = ctx.Cfg.Seed
	base.SectionLen = ctx.Cfg.SectionLen
	base.Jobs = ctx.Cfg.Jobs
	specs := march.CrossArchSet()
	mcols, err := counters.CollectSuiteMachines(suite, specs, base)
	if err != nil {
		return Result{}, err
	}

	tcfg := mtree.DefaultConfig()
	tcfg.MinLeaf = minLeaf

	// 1. Per-machine trees: fit quality and split structure.
	var b strings.Builder
	fmt.Fprintf(&b, "per-machine trees (%d sections each, MinLeaf=%d):\n", mcols[0].Col.Data.Len(), minLeaf)
	fmt.Fprintf(&b, "  %-12s %9s %7s %7s %-12s\n", "machine", "mean CPI", "RAE", "leaves", "root split")
	rootSplits := map[string]bool{}
	for _, mc := range mcols {
		tree, err := mtree.Build(mc.Col.Data, tcfg)
		if err != nil {
			return Result{}, fmt.Errorf("crossarch: %s: %w", mc.Machine.Name, err)
		}
		m, err := eval.Evaluate(tree, mc.Col.Data)
		if err != nil {
			return Result{}, err
		}
		mean := 0.0
		for r := 0; r < mc.Col.Data.Len(); r++ {
			mean += mc.Col.Data.Row(r)[0]
		}
		mean /= float64(mc.Col.Data.Len())
		root := "<leaf>"
		rootAttr := "<leaf>"
		if tree.Root.SplitAttr >= 0 {
			rootAttr = tree.AttrNames[tree.Root.SplitAttr]
			root = fmt.Sprintf("%s <= %.4g", rootAttr, tree.Root.Threshold)
		}
		rootSplits[rootAttr] = true
		fmt.Fprintf(&b, "  %-12s %9.3f %6.1f%% %7d %-12s\n",
			mc.Machine.Name, mean, 100*m.RAE, tree.NumLeaves(), root)
	}

	// 2. Pooled arch-aware tree: widen each machine's rows with its
	// architecture features and merge.
	pooledAware := counters.NewArchDataset()
	pooledBlind := counters.NewDataset()
	for _, mc := range mcols {
		wide, err := mc.Col.WithArchFeatures(mc.Machine)
		if err != nil {
			return Result{}, err
		}
		if err := pooledAware.Merge(wide.Data); err != nil {
			return Result{}, err
		}
		if err := pooledBlind.Merge(mc.Col.Data); err != nil {
			return Result{}, err
		}
	}
	pooledCfg := tcfg
	pooledCfg.MinLeaf = minLeaf * 2 // pooled set is |machines| times larger
	awareTree, err := mtree.Build(pooledAware, pooledCfg)
	if err != nil {
		return Result{}, err
	}
	awareFit, err := eval.Evaluate(awareTree, pooledAware)
	if err != nil {
		return Result{}, err
	}
	blindTree, err := mtree.Build(pooledBlind, pooledCfg)
	if err != nil {
		return Result{}, err
	}
	blindFit, err := eval.Evaluate(blindTree, pooledBlind)
	if err != nil {
		return Result{}, err
	}
	archSplits := countArchSplits(awareTree.Root, awareTree.AttrNames)
	fmt.Fprintf(&b, "\npooled over %d machines (%d sections):\n", len(mcols), pooledAware.Len())
	fmt.Fprintf(&b, "  arch-aware tree: RAE %5.1f%%, %d leaves, %d splits on Arch* features\n",
		100*awareFit.RAE, awareTree.NumLeaves(), archSplits)
	fmt.Fprintf(&b, "  arch-blind tree: RAE %5.1f%%, %d leaves\n",
		100*blindFit.RAE, blindTree.NumLeaves())

	// 3. Leave-one-architecture-out transfer.
	fmt.Fprintf(&b, "\nleave-one-architecture-out CPI error (train on the other %d machines):\n", len(mcols)-1)
	fmt.Fprintf(&b, "  %-12s %12s %12s %12s\n", "held out", "aware MAE", "blind MAE", "aware RAE")
	var awareMAESum, blindMAESum float64
	awareWins := 0
	for hold := range mcols {
		trainAware := counters.NewArchDataset()
		trainBlind := counters.NewDataset()
		for i, mc := range mcols {
			if i == hold {
				continue
			}
			wide, err := mc.Col.WithArchFeatures(mc.Machine)
			if err != nil {
				return Result{}, err
			}
			if err := trainAware.Merge(wide.Data); err != nil {
				return Result{}, err
			}
			if err := trainBlind.Merge(mc.Col.Data); err != nil {
				return Result{}, err
			}
		}
		aTree, err := mtree.Build(trainAware, pooledCfg)
		if err != nil {
			return Result{}, err
		}
		bTree, err := mtree.Build(trainBlind, pooledCfg)
		if err != nil {
			return Result{}, err
		}
		heldWide, err := mcols[hold].Col.WithArchFeatures(mcols[hold].Machine)
		if err != nil {
			return Result{}, err
		}
		aM, err := eval.Evaluate(aTree, heldWide.Data)
		if err != nil {
			return Result{}, err
		}
		bM, err := eval.Evaluate(bTree, mcols[hold].Col.Data)
		if err != nil {
			return Result{}, err
		}
		awareMAESum += aM.MAE
		blindMAESum += bM.MAE
		if aM.MAE < bM.MAE {
			awareWins++
		}
		fmt.Fprintf(&b, "  %-12s %12.4f %12.4f %11.1f%%\n",
			mcols[hold].Machine.Name, aM.MAE, bM.MAE, 100*aM.RAE)
	}
	nm := float64(len(mcols))
	fmt.Fprintf(&b, "  %-12s %12.4f %12.4f\n", "mean", awareMAESum/nm, blindMAESum/nm)

	return Result{
		Name:   "Cross-architecture: per-machine vs pooled arch-feature trees",
		Report: b.String(),
		Claims: []Claim{
			{
				Paper:    "the learned tree structure is specific to the measured machine",
				Measured: fmt.Sprintf("%d distinct root splits across %d machines", len(rootSplits), len(mcols)),
				Holds:    len(rootSplits) >= 2,
			},
			{
				Paper:    "a pooled tree can separate machines given architecture attributes",
				Measured: fmt.Sprintf("arch-aware pooled RAE %.1f%% vs arch-blind %.1f%% (%d Arch* splits)", 100*awareFit.RAE, 100*blindFit.RAE, archSplits),
				Holds:    archSplits >= 1 && awareFit.RAE < blindFit.RAE,
			},
			{
				Paper:    "architecture features transfer to unseen machines (LOAO)",
				Measured: fmt.Sprintf("arch-aware mean LOAO MAE %.4f vs arch-blind %.4f (aware wins %d/%d)", awareMAESum/nm, blindMAESum/nm, awareWins, len(mcols)),
				Holds:    awareMAESum < blindMAESum,
			},
		},
	}, nil
}

// countArchSplits counts interior nodes testing an architecture feature
// column (names carry the "Arch" prefix by construction).
func countArchSplits(n *mtree.Node, attrNames []string) int {
	if n == nil || n.SplitAttr < 0 {
		return 0
	}
	c := 0
	if n.SplitAttr < len(attrNames) && strings.HasPrefix(attrNames[n.SplitAttr], "Arch") {
		c = 1
	}
	return c + countArchSplits(n.Left, attrNames) + countArchSplits(n.Right, attrNames)
}
