package experiments

import (
	"fmt"
	"strings"

	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/mtree"
	"repro/internal/workload"
)

// cvWith cross-validates an M5' configuration on the shared dataset.
func cvWith(ctx *Context, cfg mtree.Config) (eval.Metrics, int, error) {
	col, err := ctx.Collection()
	if err != nil {
		return eval.Metrics{}, 0, err
	}
	cfg.Jobs = ctx.Cfg.Jobs
	learner := eval.LearnerFunc{N: "M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return mtree.Build(d, cfg)
	}}
	res, err := eval.CrossValidate(learner, col.Data, ctx.Cfg.Folds, ctx.Cfg.Seed, ctx.Cfg.Par())
	if err != nil {
		return eval.Metrics{}, 0, err
	}
	full, err := mtree.Build(col.Data, cfg)
	if err != nil {
		return eval.Metrics{}, 0, err
	}
	return res.Pooled, full.NumLeaves(), nil
}

// AblationSmoothing measures M5 smoothing on vs off.
func AblationSmoothing(ctx *Context) (Result, error) {
	base := mtree.DefaultConfig()
	base.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	on := base
	on.Smooth = true
	off := base
	off.Smooth = false
	mOn, _, err := cvWith(ctx, on)
	if err != nil {
		return Result{}, err
	}
	mOff, _, err := cvWith(ctx, off)
	if err != nil {
		return Result{}, err
	}
	report := fmt.Sprintf("smoothing on:  %s\nsmoothing off: %s\n", mOn, mOff)
	return Result{
		Name:   "Ablation — M5 smoothing",
		Report: report,
		Claims: []Claim{{
			Paper:    "smoothing compensates for discontinuities between adjacent leaf models",
			Measured: fmt.Sprintf("RAE %.2f%% (on) vs %.2f%% (off)", mOn.RAE*100, mOff.RAE*100),
			Holds:    mOn.RAE <= mOff.RAE*1.05,
		}},
	}, nil
}

// AblationPruning measures post-pruning on vs off.
func AblationPruning(ctx *Context) (Result, error) {
	base := mtree.DefaultConfig()
	base.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	on := base
	off := base
	off.Prune = false
	mOn, leavesOn, err := cvWith(ctx, on)
	if err != nil {
		return Result{}, err
	}
	mOff, leavesOff, err := cvWith(ctx, off)
	if err != nil {
		return Result{}, err
	}
	report := fmt.Sprintf("pruning on:  %s  (%d leaves)\npruning off: %s  (%d leaves)\n",
		mOn, leavesOn, mOff, leavesOff)
	return Result{
		Name:   "Ablation — post-pruning",
		Report: report,
		Claims: []Claim{{
			Paper:    "pruning balances compactness and discriminative ability",
			Measured: fmt.Sprintf("%d leaves pruned vs %d unpruned at RAE %.2f%% vs %.2f%%", leavesOn, leavesOff, mOn.RAE*100, mOff.RAE*100),
			Holds:    leavesOn <= leavesOff && mOn.RAE <= mOff.RAE*1.10,
		}},
	}, nil
}

// AblationMinLeaf sweeps the minimum leaf population around the paper's
// chosen 430.
func AblationMinLeaf(ctx *Context) (Result, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %9s %8s\n", "minleaf", "C", "MAE", "RAE", "leaves")
	type point struct {
		minLeaf int
		rae     float64
	}
	var pts []point
	for _, frac := range []float64{0.25, 0.5, 1, 2, 4} {
		cfg := mtree.DefaultConfig()
		cfg.MinLeaf = int(float64(ctx.Cfg.ScaledMinLeaf()) * frac)
		if cfg.MinLeaf < 4 {
			cfg.MinLeaf = 4
		}
		m, leaves, err := cvWith(ctx, cfg)
		if err != nil {
			return Result{}, err
		}
		fmt.Fprintf(&b, "%-10d %8.4f %8.4f %8.2f%% %8d\n", cfg.MinLeaf, m.Correlation, m.MAE, m.RAE*100, leaves)
		pts = append(pts, point{cfg.MinLeaf, m.RAE})
	}
	// The paper's point: the chosen population balances bias vs variance.
	// The check is that the paper's setting is in the right ballpark of
	// the sweep's best (within ~1/3), not that it is optimal — on this
	// synthetic suite somewhat finer leaves help a little, which
	// EXPERIMENTS.md discusses.
	best := pts[0].rae
	for _, p := range pts {
		if p.rae < best {
			best = p.rae
		}
	}
	mid := pts[2]
	return Result{
		Name:   "Ablation — minimum leaf population",
		Report: b.String(),
		Claims: []Claim{{
			Paper:    "minimum of 430 instances balances accuracy on training and new data",
			Measured: fmt.Sprintf("RAE at paper setting %.2f%% vs best in sweep %.2f%%", mid.rae*100, best*100),
			Holds:    mid.rae <= best*1.35,
		}},
	}, nil
}

// AblationAttrDrop measures greedy attribute elimination on vs off.
func AblationAttrDrop(ctx *Context) (Result, error) {
	base := mtree.DefaultConfig()
	base.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	on := base
	off := base
	off.DropAttributes = false
	mOn, _, err := cvWith(ctx, on)
	if err != nil {
		return Result{}, err
	}
	mOff, _, err := cvWith(ctx, off)
	if err != nil {
		return Result{}, err
	}
	// Count mean terms per leaf for both settings.
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	termsOn, err := meanLeafTerms(col.Data, on)
	if err != nil {
		return Result{}, err
	}
	termsOff, err := meanLeafTerms(col.Data, off)
	if err != nil {
		return Result{}, err
	}
	report := fmt.Sprintf("dropping on:  %s  (mean %.1f terms/leaf)\ndropping off: %s  (mean %.1f terms/leaf)\n",
		mOn, termsOn, mOff, termsOff)
	return Result{
		Name:   "Ablation — leaf-model attribute dropping",
		Report: report,
		Claims: []Claim{{
			Paper:    "leaf models stay compact and interpretable without losing accuracy",
			Measured: fmt.Sprintf("%.1f vs %.1f terms/leaf at RAE %.2f%% vs %.2f%%", termsOn, termsOff, mOn.RAE*100, mOff.RAE*100),
			Holds:    termsOn < termsOff && mOn.RAE <= mOff.RAE*1.10,
		}},
	}, nil
}

func meanLeafTerms(d *dataset.Dataset, cfg mtree.Config) (float64, error) {
	t, err := mtree.Build(d, cfg)
	if err != nil {
		return 0, err
	}
	total, leaves := 0, 0
	t.WalkLeaves(func(n *mtree.Node, _ []mtree.PathStep) {
		leaves++
		for _, c := range n.Model.Coefs {
			if c != 0 {
				total++
			}
		}
	})
	if leaves == 0 {
		return 0, nil
	}
	return float64(total) / float64(leaves), nil
}

// AblationPrefetch recollects the suite with the hardware prefetchers
// disabled and shows how the workload signatures shift: without
// prefetching, the streaming benchmarks' L2 miss counts explode and CPI
// rises, dissolving the "high L2M is expensive" structure the tree relies
// on. This is a substrate ablation rather than a learner ablation — it
// justifies the simulator's prefetcher as a load-bearing design choice.
func AblationPrefetch(ctx *Context) (Result, error) {
	// A reduced scale keeps this (second) full-suite simulation fast.
	scale := ctx.Cfg.Scale * 0.25
	ccfg := counters.DefaultCollectConfig()
	ccfg.Seed = ctx.Cfg.Seed
	ccfg.SectionLen = ctx.Cfg.SectionLen
	ccfg.Jobs = ctx.Cfg.Jobs

	withPF, err := counters.CollectSuite(workload.SuiteScaled(scale), ccfg)
	if err != nil {
		return Result{}, err
	}
	noPF, err := counters.CollectSuiteNoPrefetch(workload.SuiteScaled(scale), ccfg)
	if err != nil {
		return Result{}, err
	}
	l2idx := withPF.Data.AttrIndex("L2M")
	// The prefetcher matters where access is sequential: restrict the
	// claim metric to the streaming benchmarks. Pointer chasers defeat
	// the detector by construction, so the suite-wide mean dilutes the
	// effect.
	streamers := map[string]bool{"462.libquantum": true, "470.lbm": true}
	streamMean := func(col *counters.Collection) float64 {
		sum, n := 0.0, 0
		for i, l := range col.Labels {
			if streamers[l.Benchmark] {
				sum += col.Data.Value(i, l2idx)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	onStream, offStream := streamMean(withPF), streamMean(noPF)
	report := fmt.Sprintf(
		"with prefetch:    mean CPI %.3f, suite L2M %.5f, streaming L2M %.5f\n"+
			"without prefetch: mean CPI %.3f, suite L2M %.5f, streaming L2M %.5f\n",
		withPF.Data.TargetMean(), withPF.Data.ColumnMean(l2idx), onStream,
		noPF.Data.TargetMean(), noPF.Data.ColumnMean(l2idx), offStream)
	return Result{
		Name:   "Ablation — hardware prefetcher",
		Report: report,
		Claims: []Claim{{
			Paper:    "(substrate) Core 2 prefetchers hide streaming misses from the retired-miss counters",
			Measured: fmt.Sprintf("streaming-benchmark L2M %.5f (pf on) vs %.5f (pf off)", onStream, offStream),
			Holds:    offStream > 5*onStream,
		}},
	}, nil
}
