package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/mtree"
)

// BaggingExp quantifies the accuracy-vs-interpretability trade beyond the
// paper's comparison: bootstrap-aggregating M5' trees removes the single
// readable rule set (the property the paper picked model trees for) in
// exchange for variance reduction. If the single tree were leaving much
// accuracy on the table, bagging would show it.
func BaggingExp(ctx *Context) (Result, error) {
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	treeCfg := mtree.DefaultConfig()
	treeCfg.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	treeCfg.Jobs = ctx.Cfg.Jobs

	single := eval.LearnerFunc{N: "single M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return mtree.Build(d, treeCfg)
	}}
	bagCfg := ensemble.DefaultConfig()
	bagCfg.Trees = 10
	bagCfg.Tree = treeCfg
	bagCfg.Jobs = ctx.Cfg.Jobs
	bagged := eval.LearnerFunc{N: "bagged M5' x10", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return ensemble.Train(d, bagCfg)
	}}

	// 5 folds keep the 10-tree ensemble affordable.
	folds := 5
	rs, err := eval.CrossValidate(single, col.Data, folds, ctx.Cfg.Seed, ctx.Cfg.Par())
	if err != nil {
		return Result{}, err
	}
	rb, err := eval.CrossValidate(bagged, col.Data, folds, ctx.Cfg.Seed, ctx.Cfg.Par())
	if err != nil {
		return Result{}, err
	}
	full, err := ensemble.Train(col.Data, bagCfg)
	if err != nil {
		return Result{}, err
	}

	// Describe the trained ensemble through the shared Model interface —
	// the same view GET /v1/models serves from the registry.
	var fm model.Model = full
	desc := fm.Describe()
	report := fmt.Sprintf(
		"single M5'  (%d-fold CV): %s\nbagged x10  (%d-fold CV): %s\n"+
			"OOB MAE %.4f (coverage %.0f%%), mean member size %.1f leaves\n"+
			"%s: %d members, %d leaves total\n",
		folds, rs.Pooled, folds, rb.Pooled, full.OOBError, 100*full.OOBCoverage, full.MeanLeaves(),
		desc.Kind, desc.Trees, fm.NumLeaves())
	gain := 0.0
	if rs.Pooled.RAE > 0 {
		gain = 1 - rb.Pooled.RAE/rs.Pooled.RAE
	}
	return Result{
		Name:   "Extension — bagged M5' vs the single interpretable tree",
		Report: report,
		Claims: []Claim{{
			Paper:    "(extension) the single tree's accuracy is near the ensemble ceiling",
			Measured: fmt.Sprintf("bagging changes RAE by %.1f%% (%.2f%% -> %.2f%%)", 100*gain, rs.Pooled.RAE*100, rb.Pooled.RAE*100),
			Holds:    rb.Pooled.RAE > rs.Pooled.RAE*0.7, // no dramatic win left on the table
		}},
	}, nil
}
