package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/counters"
	"repro/internal/mtree"
)

// LeafCensusExp reproduces the per-benchmark class-membership narratives
// (E7): the paper reports that >=95% of 436.cactusADM's sections fall in a
// single high-L2M/high-L1IM class (LM18, a near-constant CPI ~2.2), >=70%
// of 429.mcf's fall in one L2+DTLB class (LM17), and ~20% of 403.gcc's
// sections are LCP-stalled (LM10's class). It also reruns the paper's
// Eq. 4 arithmetic: the contribution of an event is coef*rate/CPI.
func LeafCensusExp(ctx *Context) (Result, error) {
	col, err := ctx.Collection()
	if err != nil {
		return Result{}, err
	}
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = ctx.Cfg.ScaledMinLeaf()
	tree, err := mtree.Build(col.Data, cfg)
	if err != nil {
		return Result{}, err
	}
	census := analysis.Census(tree, col)

	var b strings.Builder
	b.WriteString(census.Render())

	// cactusADM: dominant class share and its mean CPI / model shape.
	cactusLeaf, cactusShare := census.DominantLeaf("436.cactusADM")
	mcfLeaf, mcfShare := census.DominantLeaf("429.mcf")
	cactusNode := tree.Leaf(cactusLeaf)
	fmt.Fprintf(&b, "\n436.cactusADM dominant class LM%d (%.0f%% of sections), mean CPI %.2f, model: CPI = %s\n",
		cactusLeaf, 100*cactusShare, cactusNode.Mean, cactusNode.Model)
	fmt.Fprintf(&b, "429.mcf dominant class LM%d (%.0f%% of sections)\n", mcfLeaf, 100*mcfShare)

	// The cactus class should be defined by high L2M and high L1IM: check
	// the split path for high-side memory events.
	pathDesc := describeHighSide(tree, cactusLeaf)
	fmt.Fprintf(&b, "LM%d high-side path events: %s\n", cactusLeaf, pathDesc)

	// gcc: fraction of sections in classes whose leaf model prices LCP.
	lcpAttr := -1
	for i, n := range tree.AttrNames {
		if n == "LCP" {
			lcpAttr = i
		}
	}
	// Sum in leaf-ID order so the floating-point accumulation does not
	// depend on map iteration order.
	gccIDs := make([]int, 0, len(census.Benchmarks["403.gcc"]))
	for id := range census.Benchmarks["403.gcc"] {
		gccIDs = append(gccIDs, id)
	}
	sort.Ints(gccIDs)
	gccLCP := 0.0
	for _, id := range gccIDs {
		leaf := tree.Leaf(id)
		if leaf != nil && leaf.Model.Uses(lcpAttr) && leaf.Model.Coef(lcpAttr) > 0 {
			gccLCP += census.Benchmarks["403.gcc"][id]
		}
	}
	fmt.Fprintf(&b, "403.gcc sections in classes whose model prices LCP stalls: %.0f%%\n", 100*gccLCP)

	// Eq. 4 walk-through on a section of the cactus-dominant class.
	eq4 := eq4WalkThrough(tree, col, cactusLeaf)
	b.WriteString(eq4)

	mcfPath := describeHighSide(tree, mcfLeaf)
	return Result{
		Name:   "Leaf census and class narratives",
		Report: b.String(),
		Claims: []Claim{
			{
				Paper:    ">=95% of cactusADM sections in one high-L2M+L1IM class (LM18)",
				Measured: fmt.Sprintf("%.0f%% in LM%d (high side: %s)", 100*cactusShare, cactusLeaf, pathDesc),
				Holds:    cactusShare >= 0.80,
			},
			{
				Paper:    "LM18 ~ constant CPI = 2.2 for that class",
				Measured: fmt.Sprintf("class mean CPI %.2f", cactusNode.Mean),
				Holds:    cactusNode.Mean >= 1.5 && cactusNode.Mean <= 3.5,
			},
			{
				Paper:    ">=70% of mcf sections in one L2+DTLB class (LM17)",
				Measured: fmt.Sprintf("%.0f%% in LM%d (high side: %s)", 100*mcfShare, mcfLeaf, mcfPath),
				Holds:    mcfShare >= 0.60,
			},
			{
				Paper:    "~20% of gcc sections affected by LCP stalls",
				Measured: fmt.Sprintf("%.0f%% of gcc sections in LCP-priced classes", 100*gccLCP),
				Holds:    gccLCP >= 0.05,
			},
		},
	}, nil
}

// describeHighSide lists the split variables crossed on their high side on
// the way to the leaf — the paper's implicit performance limiters.
func describeHighSide(t *mtree.Tree, leafID int) string {
	var highs []string
	for _, step := range t.LeafPath(leafID) {
		if step.Above {
			highs = append(highs, step.Name)
		}
	}
	if len(highs) == 0 {
		return "(none)"
	}
	return strings.Join(highs, ", ")
}

// eq4WalkThrough reproduces the paper's Eq. 4 arithmetic on a live
// section: pick the first section classified into the target leaf and
// decompose its predicted CPI into event contributions
// (contribution_i = coef_i * rate_i / CPI, the paper's 6.69*L1IM/CPI ≈ 20%
// illustration).
func eq4WalkThrough(t *mtree.Tree, col *counters.Collection, leafID int) string {
	for i := 0; i < col.Data.Len(); i++ {
		leaf, _ := t.Classify(col.Data.Row(i))
		if leaf.LeafID != leafID {
			continue
		}
		rep := analysis.AnalyzeSection(t, col.Data.Row(i))
		var b strings.Builder
		fmt.Fprintf(&b, "\nEq. 4 walk-through on a %s section (class LM%d, predicted CPI %.3f):\n",
			col.Labels[i].Benchmark, rep.LeafID, rep.PredictedCPI)
		fmt.Fprintf(&b, "  %-10s %12s %12s %12s %10s\n", "event", "coef", "rate", "CPI share", "gain")
		fmt.Fprintf(&b, "  %-10s %12s %12s %12.4f %10s\n", "(baseline)", "-", "-", rep.Baseline, "-")
		for _, c := range rep.Contributions {
			if math.Abs(c.Cycles) < 1e-4 {
				continue
			}
			fmt.Fprintf(&b, "  %-10s %12.4g %12.6f %12.4f %9.1f%%\n",
				c.Name, c.Coef, c.Rate, c.Cycles, 100*c.Fraction)
		}
		return b.String()
	}
	return "\n(no section classified into the target leaf)\n"
}
