// Package experiments reproduces every table and figure of the paper's
// evaluation section on the simulated substrate, plus the ablations called
// out in DESIGN.md. Each experiment is a named function returning a
// rendered report; cmd/experiments runs them from the command line and the
// repository's bench_test.go wraps them in testing.B benchmarks.
//
// Paper artifacts covered (see DESIGN.md §4 for the index):
//
//	E1 Table I     — the 20 selected metrics
//	E2 Figure 1    — example M5' tree on a synthetic 4-attribute function
//	E3 Figure 2    — the performance-analysis tree on the full suite
//	E4 Figure 3    — predicted vs actual CPI under 10-fold CV
//	E5 headline    — C / MAE / RAE vs the paper's 0.98 / 0.05 / 7.83%
//	E6 comparators — ANN, SVM, CART, global linear vs M5'
//	E7 leaf census — cactusADM/mcf/gcc class-membership narratives
//	E8 split impact— the LdBlSta-style split-variable analysis
//	E9 naive       — the fixed-penalty first-order model's failure
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/march"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// Config controls the shared experimental setup.
type Config struct {
	// Scale multiplies the suite's section budgets (1.0 = full paper-scale
	// run, ~7k sections).
	Scale float64
	// MinLeaf is the M5' minimum leaf population (paper: 430, scaled
	// proportionally when Scale < 1).
	MinLeaf int
	// Folds is the cross-validation fold count (paper: 10).
	Folds int
	// Seed drives workload synthesis and CV shuffling.
	Seed int64
	// SectionLen is the retired-instruction count per section.
	SectionLen uint64
	// Jobs bounds the concurrency of every parallel stage — suite
	// simulation, CV folds, bagged trees, split scoring (0 = GOMAXPROCS,
	// 1 = serial). Results are identical for every value.
	Jobs int
	// Machine is the simulated machine the shared collection runs on. The
	// zero value means the core2 seed machine, so struct-literal configs
	// keep reproducing the paper's numbers.
	Machine march.MachineSpec
}

// DefaultConfig returns the paper-scale setup.
func DefaultConfig() Config {
	return Config{Scale: 1.0, MinLeaf: 430, Folds: 10, Seed: 42, SectionLen: 20000}
}

// ScaledMinLeaf returns MinLeaf adjusted to the suite scale, so reduced
// runs keep a comparable leaf count.
func (c Config) ScaledMinLeaf() int {
	m := int(float64(c.MinLeaf) * c.Scale)
	if m < 8 {
		m = 8
	}
	return m
}

// Par returns the parallelism configuration shared by the experiments.
func (c Config) Par() parallel.Config { return parallel.Config{Jobs: c.Jobs} }

// Context carries the lazily collected dataset shared by the experiments.
type Context struct {
	Cfg Config

	once sync.Once
	col  *counters.Collection
	err  error
}

// NewContext creates an experiment context.
func NewContext(cfg Config) *Context { return &Context{Cfg: cfg} }

// Machine returns the configured machine, defaulting to the core2 seed
// machine when Cfg.Machine is the zero value.
func (c Config) MachineSpec() march.MachineSpec {
	if c.Machine.Name == "" {
		return march.Core2()
	}
	return c.Machine
}

// Collection simulates the suite once on the configured machine and
// caches the labeled dataset.
func (ctx *Context) Collection() (*counters.Collection, error) {
	ctx.once.Do(func() {
		ccfg := counters.CollectConfigFor(ctx.Cfg.MachineSpec())
		ccfg.Seed = ctx.Cfg.Seed
		ccfg.SectionLen = ctx.Cfg.SectionLen
		ccfg.Jobs = ctx.Cfg.Jobs
		ctx.col, ctx.err = counters.CollectSuite(workload.SuiteScaled(ctx.Cfg.Scale), ccfg)
	})
	return ctx.col, ctx.err
}

// Result is one experiment's outcome: a rendered report plus the headline
// numbers for EXPERIMENTS.md-style paper-vs-measured comparison lines.
type Result struct {
	Name   string
	Report string
	// Claims are paper-vs-measured checks, in display order.
	Claims []Claim
}

// Claim is one comparable statement from the paper and what we measured.
type Claim struct {
	Paper    string // what the paper reports
	Measured string // what this reproduction measured
	Holds    bool   // whether the qualitative claim holds here
}

// Render formats the result with its claims table.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s ====\n%s", r.Name, r.Report)
	if len(r.Claims) > 0 {
		b.WriteString("\npaper vs measured:\n")
		for _, c := range r.Claims {
			mark := "OK "
			if !c.Holds {
				mark = "DIV" // divergence, discussed in EXPERIMENTS.md
			}
			fmt.Fprintf(&b, "  [%s] paper: %-52s | measured: %s\n", mark, c.Paper, c.Measured)
		}
	}
	return b.String()
}

// Experiment is a named experiment function.
type Experiment struct {
	Name string
	Desc string
	Run  func(ctx *Context) (Result, error)
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"tableI", "Table I: the selected metric set", TableI},
		{"figure1", "Figure 1: example M5' tree structure", Figure1},
		{"figure2", "Figure 2: the performance-analysis tree", Figure2},
		{"figure3", "Figure 3: predicted vs actual CPI (10-fold CV)", Figure3},
		{"accuracy", "Headline accuracy metrics", Accuracy},
		{"comparators", "M5' vs ANN, SVM, CART, global linear", Comparators},
		{"leafcensus", "Per-benchmark leaf census narratives", LeafCensusExp},
		{"splitimpact", "Split-variable impact analysis", SplitImpactExp},
		{"naive", "Fixed-penalty first-order model", NaiveExp},
		{"ablation-smoothing", "Ablation: smoothing on/off", AblationSmoothing},
		{"ablation-pruning", "Ablation: pruning on/off", AblationPruning},
		{"ablation-minleaf", "Ablation: minimum leaf population sweep", AblationMinLeaf},
		{"ablation-attrdrop", "Ablation: leaf-model attribute dropping", AblationAttrDrop},
		{"ablation-prefetch", "Ablation: hardware prefetcher off", AblationPrefetch},
		{"netburst", "Cross-architecture: Core 2 vs NetBurst branch cost", NetBurstExp},
		{"crossarch", "Cross-architecture: per-machine vs pooled arch-feature trees", CrossArchExp},
		{"inorder", "Cross-architecture: out-of-order vs in-order penalties", InOrderExp},
		{"groundtruth", "Validation: model attribution vs true cycle stack", GroundTruthExp},
		{"bagging", "Extension: bagged M5' vs the single interpretable tree", BaggingExp},
	}
}

// ByName returns the named experiment, or false.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// syntheticFigure1Data builds the small 4-attribute dataset used by the
// Figure 1 example: a piecewise-linear function with known structure,
//
//	X1 <= 2 : Y = 1 + 0.5*X2            (two sub-regimes on X3)
//	X1 >  2 : Y = 10 + 2*X4
//
// mirroring the shape of the paper's illustrative tree.
func syntheticFigure1Data(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	attrs := []dataset.Attribute{
		{Name: "Y"}, {Name: "X1"}, {Name: "X2"}, {Name: "X3"}, {Name: "X4"},
	}
	d := dataset.MustNew(attrs, 0)
	for i := 0; i < n; i++ {
		x1 := rng.Float64() * 4
		x2 := rng.Float64() * 4
		x3 := rng.Float64() * 4
		x4 := rng.Float64() * 4
		var y float64
		if x1 <= 2 {
			if x3 <= 1 {
				y = 1 + 0.5*x2
			} else {
				y = 3 + 1.5*x2
			}
		} else {
			y = 10 + 2*x4
		}
		y += rng.NormFloat64() * 0.05
		d.MustAppend(dataset.Instance{y, x1, x2, x3, x4})
	}
	return d
}
