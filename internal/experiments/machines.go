package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/counters"
	"repro/internal/eval"
	"repro/internal/march"
	"repro/internal/mtree"
	"repro/internal/naive"
	"repro/internal/workload"
)

// NetBurstExp reproduces the paper's §V.A cross-architecture remark: "it
// is instructive to compare the importance of branch mispredicts in this
// architecture with their controlling role on the Pentium NetBurst
// processor, where the much longer pipeline translated into a greater
// pipeline flush and resteering cost."
//
// We re-run the same suite on a NetBurst-like core (31-cycle flush, deeper
// window, higher memory latency in cycles), train a tree per machine, and
// compare how much of the CPI each tree attributes to branch mispredicts.
func NetBurstExp(ctx *Context) (Result, error) {
	scale := ctx.Cfg.Scale * 0.35
	suite := workload.SuiteScaled(scale)
	minLeaf := int(float64(ctx.Cfg.MinLeaf) * scale)
	if minLeaf < 20 {
		minLeaf = 20
	}

	core2, err := machineShare(suite, ctx, march.Core2(), minLeaf)
	if err != nil {
		return Result{}, err
	}
	netburst, err := machineShare(suite, ctx, march.NetBurst(), minLeaf)
	if err != nil {
		return Result{}, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %16s %18s %14s\n",
		"machine", "mean CPI", "BrMisPr share", "BrMisPr split lvl", "mem share")
	fmt.Fprintf(&b, "%-14s %10.3f %15.1f%% %18d %13.1f%%\n",
		"Core 2-like", core2.meanCPI, 100*core2.branchShare, core2.branchDepth, 100*core2.memShare)
	fmt.Fprintf(&b, "%-14s %10.3f %15.1f%% %18d %13.1f%%\n",
		"NetBurst-like", netburst.meanCPI, 100*netburst.branchShare, netburst.branchDepth, 100*netburst.memShare)

	return Result{
		Name:   "Cross-architecture: Core 2 vs NetBurst branch cost",
		Report: b.String(),
		Claims: []Claim{
			{
				Paper:    "branch mispredicts impact CPI much less on Core 2 than on NetBurst",
				Measured: fmt.Sprintf("BrMisPr CPI share %.1f%% (Core 2) vs %.1f%% (NetBurst)", 100*core2.branchShare, 100*netburst.branchShare),
				Holds:    netburst.branchShare > 1.5*core2.branchShare,
			},
			{
				Paper:    "on Core 2, cache misses dominate branch events",
				Measured: fmt.Sprintf("memory share %.1f%% vs branch share %.1f%%", 100*core2.memShare, 100*core2.branchShare),
				Holds:    core2.memShare > core2.branchShare,
			},
		},
	}, nil
}

// InOrderExp inverts the paper's motivation as a consistency check: on an
// in-order core every penalty is fully exposed, so the traditional
// fixed-penalty model — which badly mis-prices events on the out-of-order
// machine — should fit an in-order machine's CPI far better. If it did
// not, our "interaction effects break uniform penalties" story would be
// circular.
func InOrderExp(ctx *Context) (Result, error) {
	scale := ctx.Cfg.Scale * 0.25
	suite := workload.SuiteScaled(scale)

	evalFixed := func(cfg counters.CollectConfig) (rae float64, err error) {
		col, err := counters.CollectSuite(suite, cfg)
		if err != nil {
			return 0, err
		}
		// The same architectural penalty book is used on both machines;
		// it matches the in-order machine's exposed costs by construction.
		fixed := naive.NewCore2FixedPenalties(col.Data)
		m, err := eval.Evaluate(fixed, col.Data)
		if err != nil {
			return 0, err
		}
		return m.RAE, nil
	}

	oooCfg := counters.DefaultCollectConfig()
	oooCfg.Seed = ctx.Cfg.Seed
	oooCfg.SectionLen = ctx.Cfg.SectionLen
	oooCfg.Jobs = ctx.Cfg.Jobs
	inoCfg := counters.CollectConfigFor(inOrderCore2())
	inoCfg.Seed = ctx.Cfg.Seed
	inoCfg.SectionLen = ctx.Cfg.SectionLen
	inoCfg.Jobs = ctx.Cfg.Jobs

	oooRAE, err := evalFixed(oooCfg)
	if err != nil {
		return Result{}, err
	}
	inoRAE, err := evalFixed(inoCfg)
	if err != nil {
		return Result{}, err
	}
	report := fmt.Sprintf(
		"fixed-penalty model RAE on the out-of-order core: %.0f%%\n"+
			"fixed-penalty model RAE on the in-order core:     %.0f%%\n",
		100*oooRAE, 100*inoRAE)
	return Result{
		Name:   "Cross-architecture: fixed penalties on in-order vs out-of-order",
		Report: report,
		Claims: []Claim{{
			Paper:    "dynamic/speculative execution is what elides penalties (in-order machines expose them)",
			Measured: fmt.Sprintf("fixed-penalty RAE %.0f%% (OOO) vs %.0f%% (in-order)", 100*oooRAE, 100*inoRAE),
			Holds:    inoRAE < oooRAE*0.6,
		}},
	}, nil
}

// inOrderCore2 is the Core-2 machine with every latency-hiding mechanism
// disabled: a one-entry window and fully exposed penalties (all residuals
// and exposures at 1). It keeps the Core 2 issue width and penalty book so
// the comparison isolates dynamic execution, not machine sizing.
func inOrderCore2() march.MachineSpec {
	s := march.Core2()
	s.Name = "core2-inorder"
	s.Description = "Core 2 front end with in-order execution (no latency hiding)"
	s.Pipeline.ROBWindow = 1
	s.Pipeline.MLPResidual = 1
	s.Pipeline.OOOHidingResidual = 1
	s.Pipeline.ShadowResidual = 1
	s.Pipeline.StoreExposure = 1
	s.Pipeline.FrontEndExposure = 1
	return s
}

type machineProfile struct {
	meanCPI     float64
	branchShare float64 // mean fraction of CPI attributed to BrMisPr
	branchDepth int     // shallowest tree split on BrMisPr (-1 = none)
	memShare    float64
}

func machineShare(suite []workload.Benchmark, ctx *Context, spec march.MachineSpec, minLeaf int) (machineProfile, error) {
	ccfg := counters.CollectConfigFor(spec)
	ccfg.Seed = ctx.Cfg.Seed
	ccfg.SectionLen = ctx.Cfg.SectionLen
	ccfg.Jobs = ctx.Cfg.Jobs
	col, err := counters.CollectSuite(suite, ccfg)
	if err != nil {
		return machineProfile{}, err
	}
	tcfg := mtree.DefaultConfig()
	tcfg.MinLeaf = minLeaf
	tree, err := mtree.Build(col.Data, tcfg)
	if err != nil {
		return machineProfile{}, err
	}
	rep := analysis.AnalyzeWorkload(tree, col.Data)
	p := machineProfile{meanCPI: rep.MeanCPI, branchDepth: -1}
	memory := map[string]bool{
		"L2M": true, "L1DM": true, "L1IM": true, "DtlbL0LdM": true,
		"DtlbLdM": true, "DtlbLdReM": true, "Dtlb": true, "ItlbM": true,
	}
	for _, is := range rep.Issues {
		if is.Name == "BrMisPr" {
			p.branchShare = is.MeanFraction
		}
		if memory[is.Name] {
			p.memShare += is.MeanFraction
		}
	}
	_, brDepth, _ := topSplitProfile(tree)
	p.branchDepth = brDepth
	return p, nil
}
