package regtree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// stepData has y constant within each of two regions of x.
func stepData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	for i := 0; i < n; i++ {
		x := rng.Float64()
		y := 1.0
		if x > 0.5 {
			y = 5.0
		}
		d.MustAppend(dataset.Instance{y, x})
	}
	return d
}

func TestBuildEmpty(t *testing.T) {
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	if _, err := Build(d, DefaultConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestRecoversStepFunction(t *testing.T) {
	d := stepData(1000, 1)
	tree, err := Build(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Fatal("no split found")
	}
	if math.Abs(tree.Root.Threshold-0.5) > 0.05 {
		t.Errorf("root threshold %v, want ~0.5", tree.Root.Threshold)
	}
	if got := tree.Predict(dataset.Instance{0, 0.25}); math.Abs(got-1) > 0.01 {
		t.Errorf("Predict(0.25) = %v, want 1", got)
	}
	if got := tree.Predict(dataset.Instance{0, 0.75}); math.Abs(got-5) > 0.01 {
		t.Errorf("Predict(0.75) = %v, want 5", got)
	}
}

func TestLeafPredictsMean(t *testing.T) {
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	for _, y := range []float64{1, 2, 3} {
		d.MustAppend(dataset.Instance{y, 0})
	}
	cfg := DefaultConfig()
	cfg.MinLeaf = 10 // force single leaf
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict(dataset.Instance{0, 0}); got != 2 {
		t.Errorf("leaf prediction %v, want mean 2", got)
	}
}

func TestMaxDepthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	for i := 0; i < 2000; i++ {
		x := rng.Float64()
		d.MustAppend(dataset.Instance{math.Sin(12 * x), x})
	}
	cfg := DefaultConfig()
	cfg.MaxDepth = 3
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Errorf("Depth = %d exceeds bound 3", tree.Depth())
	}
	cfg.MaxDepth = 0
	deep, _ := Build(d, cfg)
	if deep.Depth() <= 3 {
		t.Errorf("unbounded tree depth %d suspiciously shallow", deep.Depth())
	}
}

func TestMinLeafRespected(t *testing.T) {
	d := stepData(500, 3)
	cfg := DefaultConfig()
	cfg.MinLeaf = 60
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() && n.N < cfg.MinLeaf {
			t.Errorf("leaf with %d < %d instances", n.N, cfg.MinLeaf)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
}

func TestNeedsManyLeavesForLinearFunction(t *testing.T) {
	// The defining weakness vs model trees: a smooth linear target needs
	// many constant segments.
	rng := rand.New(rand.NewSource(4))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	for i := 0; i < 3000; i++ {
		x := rng.Float64()
		d.MustAppend(dataset.Instance{10 * x, x})
	}
	cfg := DefaultConfig()
	cfg.MinLeaf = 20
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() < 8 {
		t.Errorf("CART fit a linear ramp with only %d leaves; expected many", tree.NumLeaves())
	}
}

func TestStringRendering(t *testing.T) {
	d := stepData(300, 5)
	tree, _ := Build(d, DefaultConfig())
	if s := tree.String(); !strings.Contains(s, "x <=") {
		t.Errorf("rendering missing split: %q", s)
	}
}

// Property: predictions always equal the mean of some training subset, so
// they lie within the target's observed range.
func TestPredictionWithinRangeProperty(t *testing.T) {
	d := stepData(400, 6)
	tree, err := Build(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := d.ColumnMinMax(0)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		p := tree.Predict(dataset.Instance{0, x})
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
