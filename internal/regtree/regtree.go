// Package regtree implements a CART-style regression tree with constant
// leaf predictions (Breiman et al. 1984). It is the classical-regression-
// tree comparator the paper contrasts with model trees: identical variance-
// reduction splitting, but each leaf predicts the mean of its training
// instances rather than a linear model, so it needs far more leaves to
// approximate the same piecewise-linear CPI surface and cannot explain
// per-event contributions.
package regtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Config holds the CART hyper-parameters.
type Config struct {
	// MinLeaf is the minimum number of training instances in a leaf.
	MinLeaf int
	// MaxDepth bounds tree depth (0 means unbounded).
	MaxDepth int
	// MinVarianceFraction stops splitting nodes whose target variance is
	// below this fraction of the root variance.
	MinVarianceFraction float64
}

// DefaultConfig mirrors common CART defaults.
func DefaultConfig() Config {
	return Config{MinLeaf: 5, MaxDepth: 0, MinVarianceFraction: 0.0025}
}

// Node is one regression-tree node.
type Node struct {
	SplitAttr   int // -1 for leaves
	Threshold   float64
	Left, Right *Node
	Value       float64 // constant prediction at leaves (mean target)
	N           int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a trained regression tree.
type Tree struct {
	Root      *Node
	Config    Config
	AttrNames []string
	TrainN    int
}

// Build grows a regression tree on the dataset.
func Build(d *dataset.Dataset, cfg Config) (*Tree, error) {
	if d.Len() == 0 {
		return nil, errors.New("regtree: cannot build tree on empty dataset")
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	attrs := d.Attrs()
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
	}
	b := &builder{
		cfg:      cfg,
		rootVar:  d.TargetVariance(),
		features: d.FeatureIndices(),
	}
	return &Tree{Root: b.grow(d, 1), Config: cfg, AttrNames: names, TrainN: d.Len()}, nil
}

type builder struct {
	cfg      Config
	rootVar  float64
	features []int
}

func (b *builder) grow(d *dataset.Dataset, depth int) *Node {
	n := &Node{SplitAttr: -1, Value: d.TargetMean(), N: d.Len()}
	if d.Len() < 2*b.cfg.MinLeaf {
		return n
	}
	if b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth {
		return n
	}
	if d.TargetVariance() < b.cfg.MinVarianceFraction*b.rootVar {
		return n
	}
	attr, threshold, ok := b.bestSplit(d)
	if !ok {
		return n
	}
	left, right := d.Split(attr, threshold)
	if left.Len() < b.cfg.MinLeaf || right.Len() < b.cfg.MinLeaf {
		return n
	}
	n.SplitAttr = attr
	n.Threshold = threshold
	n.Left = b.grow(left, depth+1)
	n.Right = b.grow(right, depth+1)
	return n
}

// bestSplit minimizes the weighted child variance (equivalently maximizes
// variance reduction), the CART least-squares criterion.
func (b *builder) bestSplit(d *dataset.Dataset) (attr int, threshold float64, ok bool) {
	n := d.Len()
	parentSS := d.TargetVariance() * float64(n)
	best := parentSS - 1e-12

	type pair struct{ x, y float64 }
	pairs := make([]pair, n)
	for _, a := range b.features {
		for i := 0; i < n; i++ {
			pairs[i] = pair{d.Value(i, a), d.Target(i)}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].x < pairs[j].x })
		var totalSum, totalSq float64
		for _, p := range pairs {
			totalSum += p.y
			totalSq += p.y * p.y
		}
		var leftSum, leftSq float64
		for i := 0; i < n-1; i++ {
			leftSum += pairs[i].y
			leftSq += pairs[i].y * pairs[i].y
			if pairs[i].x == pairs[i+1].x {
				continue
			}
			nl, nr := i+1, n-i-1
			if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
				continue
			}
			ss := childSS(leftSum, leftSq, nl) + childSS(totalSum-leftSum, totalSq-leftSq, nr)
			if ss < best {
				best = ss
				attr = a
				threshold = (pairs[i].x + pairs[i+1].x) / 2
				ok = true
			}
		}
	}
	return attr, threshold, ok
}

// childSS returns the within-child sum of squared deviations.
func childSS(sum, sq float64, n int) float64 {
	m := sum / float64(n)
	ss := sq - float64(n)*m*m
	if ss < 0 {
		return 0
	}
	return ss
}

// Predict routes the instance to a leaf and returns the leaf mean.
func (t *Tree) Predict(row dataset.Instance) float64 {
	n := t.Root
	for !n.IsLeaf() {
		if row[n.SplitAttr] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int {
	var count func(*Node) int
	count = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			return 1
		}
		return count(n.Left) + count(n.Right)
	}
	return count(t.Root)
}

// Depth returns the maximum node depth.
func (t *Tree) Depth() int {
	var depth func(*Node) int
	depth = func(n *Node) int {
		if n == nil {
			return 0
		}
		return 1 + int(math.Max(float64(depth(n.Left)), float64(depth(n.Right))))
	}
	return depth(t.Root)
}

// String renders the tree structure for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("|   ", depth)
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%s-> %.4g (n=%d)\n", indent, n.Value, n.N)
			return
		}
		name := fmt.Sprintf("x%d", n.SplitAttr)
		if n.SplitAttr < len(t.AttrNames) {
			name = t.AttrNames[n.SplitAttr]
		}
		fmt.Fprintf(&b, "%s%s <= %.6g ?\n", indent, name, n.Threshold)
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(t.Root, 0)
	return b.String()
}
