package mem

import "math/bits"

// Geometry describes a machine's cache/TLB hierarchy: L1I, L1D, a
// unified last-level L2, a small L0 load DTLB in front of the main DTLB,
// and an ITLB, plus the stream-prefetcher degree. The numbers for
// concrete machines live in internal/march; this package only holds the
// mechanisms. (We model one core; the paper's workloads are
// single-threaded SPEC runs.)
type Geometry struct {
	L1I, L1D, L2      CacheConfig
	DTLB0, DTLB, ITLB TLBConfig
	// PrefetchDegree is the number of lines the stream prefetchers run
	// ahead of a detected stream on each side; 0 disables prefetching.
	PrefetchDegree int
}

// Scaled returns the geometry divided by factor (minimum one way / line
// per structure, prefetch degree unchanged). Small geometries make the
// miss events easy to excite in unit tests without large footprints.
func (g Geometry) Scaled(factor int64) Geometry {
	shrinkCache := func(c CacheConfig) CacheConfig {
		c.SizeB /= factor
		min := int64(c.Ways) * c.LineB
		if c.SizeB < min {
			c.SizeB = min
		}
		return c
	}
	shrinkTLB := func(t TLBConfig) TLBConfig {
		t.Entries /= int(factor)
		if t.Entries < t.Ways {
			t.Entries = t.Ways
		}
		return t
	}
	g.L1I, g.L1D, g.L2 = shrinkCache(g.L1I), shrinkCache(g.L1D), shrinkCache(g.L2)
	g.DTLB0, g.DTLB, g.ITLB = shrinkTLB(g.DTLB0), shrinkTLB(g.DTLB), shrinkTLB(g.ITLB)
	return g
}

// DataResult describes the outcome of one data access through the
// hierarchy.
type DataResult struct {
	L1Miss    bool // missed the L1 data cache
	L2Miss    bool // missed the shared L2 (implies L1Miss)
	Dtlb0Miss bool // missed the L0 load DTLB (loads only)
	DtlbMiss  bool // missed the main DTLB (page walk)
}

// FetchResult describes the outcome of one instruction fetch.
type FetchResult struct {
	L1Miss   bool
	L2Miss   bool
	ItlbMiss bool
}

// Hierarchy wires the caches and TLBs together with the Core 2 inclusion
// and lookup protocol: data accesses translate through DTLB0 (loads) and
// the main DTLB, then probe L1D and, on a miss, L2; instruction fetches
// translate through the ITLB and probe L1I then L2.
type Hierarchy struct {
	L1I, L1D, L2      *Cache
	DTLB0, DTLB, ITLB *TLB
	// DataPF and InstPF are the stream prefetchers watching demand lines
	// on each side; nil disables prefetching (for ablations).
	DataPF, InstPF *Prefetcher
	// L2DataMisses and L2InstMisses split L2.Misses by requester so the
	// timing model can distinguish instruction-driven L2 misses (which
	// starve the front end) from data-driven ones.
	L2DataMisses uint64
	L2InstMisses uint64
	// dataLineShift and instLineShift are log2 of the L2 and L1I line
	// sizes, hoisted at construction so the per-access prefetcher
	// line-number conversions are shifts instead of divisions.
	dataLineShift uint
	instLineShift uint
	// fetchLine (noLine when invalid) is the instruction line whose
	// repeat fetch is a proven whole-path no-op: the ITLB and L1I are in
	// their same-page/same-line fast states and the prefetcher is in its
	// noop state, so refetching the line touches nothing but the access
	// counters. Sequential code fetches the same 64 B line ~16 times in a
	// row, so this collapses most fetches to two increments. It is
	// recomputed from component state at the end of every full Fetch;
	// nothing else mutates I-side structures, so it cannot go stale.
	fetchLine uint64
}

// NewHierarchy constructs the hierarchy for a geometry. Stream
// prefetchers of the geometry's degree watch both sides; a degree of 0
// (or below) builds the machine without prefetchers.
func NewHierarchy(g Geometry) *Hierarchy {
	h := &Hierarchy{
		L1I:           NewCache(g.L1I),
		L1D:           NewCache(g.L1D),
		L2:            NewCache(g.L2),
		DTLB0:         NewTLB(g.DTLB0),
		DTLB:          NewTLB(g.DTLB),
		ITLB:          NewTLB(g.ITLB),
		dataLineShift: uint(bits.TrailingZeros64(uint64(g.L2.LineB))),
		instLineShift: uint(bits.TrailingZeros64(uint64(g.L1I.LineB))),
		fetchLine:     noLine,
	}
	if g.PrefetchDegree > 0 {
		h.DataPF = NewPrefetcher(g.PrefetchDegree)
		h.InstPF = NewPrefetcher(g.PrefetchDegree)
	}
	return h
}

// Data performs a data access (load when isLoad, else store) at addr.
func (h *Hierarchy) Data(addr uint64, isLoad bool) DataResult {
	var r DataResult
	if isLoad {
		// The L0 DTLB filters load translations only, as on Core 2.
		if !h.DTLB0.Access(addr) {
			r.Dtlb0Miss = true
			if !h.DTLB.Access(addr) {
				r.DtlbMiss = true
			}
		}
	} else {
		if !h.DTLB.Access(addr) {
			r.DtlbMiss = true
		}
	}
	if !h.L1D.Access(addr) {
		r.L1Miss = true
		if !h.L2.Access(addr) {
			r.L2Miss = true
			h.L2DataMisses++
		}
	}
	if h.DataPF != nil {
		sh := h.dataLineShift
		for _, pl := range h.DataPF.Observe(addr >> sh) {
			// The DPL prefetches into the L2 only; L1D still takes the
			// demand miss, so L1DM stays an honest event for streams.
			h.L2.Fill(pl << sh)
		}
	}
	return r
}

// FetchFast attempts the repeat-line fetch fast path: when pc falls on
// the same instruction line as the previous (fully simulated) fetch and
// every I-side structure is in its proven no-op state, the fetch is an
// all-hit that only moves the access counters. It reports whether it
// handled the fetch (the result is then the zero FetchResult). It is
// small enough to inline into a per-instruction simulation loop,
// bypassing the call to Fetch entirely for sequential code.
func (h *Hierarchy) FetchFast(pc uint64) bool {
	if pc>>h.instLineShift == h.fetchLine {
		h.ITLB.accesses++
		h.L1I.Accesses++
		return true
	}
	return false
}

// Fetch performs an instruction fetch at pc.
func (h *Hierarchy) Fetch(pc uint64) FetchResult {
	line := pc >> h.instLineShift
	if line == h.fetchLine {
		// Proven repeat: ITLB hit (same page, already MRU), L1I hit (same
		// line, already MRU), prefetcher no-op. Only the counters move.
		h.ITLB.accesses++
		h.L1I.Accesses++
		return FetchResult{}
	}
	return h.fetchSlow(pc, line)
}

func (h *Hierarchy) fetchSlow(pc, line uint64) FetchResult {
	var r FetchResult
	if !h.ITLB.Access(pc) {
		r.ItlbMiss = true
	}
	if !h.L1I.Access(pc) {
		r.L1Miss = true
		if !h.L2.Access(pc) {
			r.L2Miss = true
			h.L2InstMisses++
		}
	}
	if h.InstPF != nil {
		sh := h.instLineShift
		for _, pl := range h.InstPF.Observe(line) {
			// The instruction prefetcher fills both levels: sequential
			// code runs ahead of the fetcher.
			h.L1I.Fill(pl << sh)
			h.L2.Fill(pl << sh)
		}
	}
	// Re-derive the repeat-fetch fast path from the components' own fast
	// states (checked after the prefetch fills, which can displace the
	// L1I MRU slot). On a repeat, each component would take its internal
	// fast path and return a hit without changing state.
	if h.L1I.lastLine == line &&
		h.ITLB.lastPage == pc>>h.ITLB.pageShift &&
		(h.InstPF == nil || (h.InstPF.noopOK && h.InstPF.noopLine == line)) {
		h.fetchLine = line
	} else {
		h.fetchLine = noLine
	}
	return r
}

// Reset clears all contents and statistics.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.DTLB0.Reset()
	h.DTLB.Reset()
	h.ITLB.Reset()
	if h.DataPF != nil {
		h.DataPF.Reset()
	}
	if h.InstPF != nil {
		h.InstPF.Reset()
	}
	h.fetchLine = noLine
	h.L2DataMisses, h.L2InstMisses = 0, 0
}

// ResetStats clears statistics but preserves warmth.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.DTLB0.ResetStats()
	h.DTLB.ResetStats()
	h.ITLB.ResetStats()
	h.L2DataMisses, h.L2InstMisses = 0, 0
}
