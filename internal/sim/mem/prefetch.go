package mem

// Prefetcher models the Core 2 "DPL" style stream detector: it watches the
// sequence of demand-accessed cache lines, recognizes ascending streams,
// and issues next-line prefetches. Prefetched lines are installed in the
// L2 (and optionally L1) without counting as demand misses — which is why,
// on real hardware, streaming workloads such as 470.lbm and 462.libquantum
// show modest MEM_LOAD_RETIRED.L2_LINE_MISS counts even though they touch
// far more memory than pointer chasers like 429.mcf. Random and dependent
// access patterns defeat the detector and pay full demand misses.
type Prefetcher struct {
	// Degree is how many lines ahead to prefetch once a stream locks.
	Degree int
	// trackers hold the most recent line per detected stream candidate.
	trackers [16]streamTracker
	next     int
	// Issued counts prefetch requests, for diagnostics.
	Issued uint64
}

type streamTracker struct {
	lastLine uint64
	score    uint8
	valid    bool
}

// NewPrefetcher returns a stream prefetcher with the given degree.
func NewPrefetcher(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &Prefetcher{Degree: degree}
}

// Observe feeds one demand access (by line number) to the detector and
// returns the line numbers to prefetch (possibly none). A stream must
// advance twice before prefetching begins, like the hardware's
// train-then-issue behaviour.
func (p *Prefetcher) Observe(line uint64) []uint64 {
	for i := range p.trackers {
		t := &p.trackers[i]
		if !t.valid {
			continue
		}
		switch {
		case t.lastLine == line:
			// Re-access within the line; no new information.
			return nil
		case line == t.lastLine+1 || line == t.lastLine+2:
			t.lastLine = line
			if t.score < 4 {
				t.score++
			}
			if t.score >= 2 {
				// Like the hardware, the detector does not prefetch across
				// a 4 KiB page boundary (64 lines of 64 B): the next page's
				// physical frame is unknown. Streams therefore still take
				// one demand miss per page.
				const linesPerPage = 64
				out := make([]uint64, 0, p.Degree)
				for d := 1; d <= p.Degree; d++ {
					next := line + uint64(d)
					if next/linesPerPage != line/linesPerPage {
						break
					}
					out = append(out, next)
				}
				p.Issued += uint64(len(out))
				return out
			}
			return nil
		}
	}
	// No tracker matched: claim the next slot round-robin.
	p.trackers[p.next] = streamTracker{lastLine: line, score: 0, valid: true}
	p.next = (p.next + 1) % len(p.trackers)
	return nil
}

// Reset clears all trackers and statistics.
func (p *Prefetcher) Reset() {
	for i := range p.trackers {
		p.trackers[i] = streamTracker{}
	}
	p.next = 0
	p.Issued = 0
}
