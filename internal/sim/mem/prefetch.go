package mem

// Prefetcher models the Core 2 "DPL" style stream detector: it watches the
// sequence of demand-accessed cache lines, recognizes ascending streams,
// and issues next-line prefetches. Prefetched lines are installed in the
// L2 (and optionally L1) without counting as demand misses — which is why,
// on real hardware, streaming workloads such as 470.lbm and 462.libquantum
// show modest MEM_LOAD_RETIRED.L2_LINE_MISS counts even though they touch
// far more memory than pointer chasers like 429.mcf. Random and dependent
// access patterns defeat the detector and pay full demand misses.
//
// The detector runs on every demand access, so its tracker state is kept
// in dense parallel arrays: the scan loop touches two cache lines of line
// numbers instead of sixteen padded structs, and the per-tracker match
// test is a single unsigned subtract.
type Prefetcher struct {
	// Degree is how many lines ahead to prefetch once a stream locks.
	Degree int
	// lines[i] is the most recent line of tracker i (trackerIdle when the
	// slot has never been claimed); scores carries its training state.
	// Parallel arrays keep the hot scan dense, and the idle sentinel keeps
	// the scan free of a separate validity check: an idle slot can never
	// be within matching distance of a real line number.
	lines  [16]uint64
	scores [16]uint8
	next   int
	// Issued counts prefetch requests, for diagnostics.
	Issued uint64
	// buf is the reused Observe return buffer; the result is only valid
	// until the next Observe call, which is how the hierarchy consumes it.
	// Reuse keeps the per-instruction simulator loop allocation-free.
	buf []uint64
	// noopLine caches the last line whose Observe took the re-access path
	// (first matching tracker at distance 0): that path changes no state,
	// so an immediately repeated observation of the same line must take it
	// again and can return without scanning. Sequential code re-observes
	// the same instruction line ~16 times in a row, making this the common
	// case on the fetch side. Any state-changing path invalidates it.
	noopLine uint64
	noopOK   bool
	// The advance hint skips the tracker scan for a locked stream. After
	// a full scan advances tracker hintIdx to some line L, the scan has
	// proven that no earlier tracker sits in [L-2, L+hintHorizon-1]; for
	// the next hintLeft observations of exactly L+1, L+2, ... the first
	// matching tracker is therefore still hintIdx (at distance 1), and
	// the advance can run directly. Claims and scan-path advances move
	// tracker state, so they invalidate the hint; distance-0 no-ops
	// change nothing and keep it.
	hintNext uint64
	hintIdx  int
	hintLeft int
	hintOK   bool
}

// hintHorizon is how far ahead of an advancing stream the scan clears the
// earlier trackers, bounding consecutive hinted advances.
const hintHorizon = 16

// trackerIdle marks a never-claimed tracker slot. Any observed line sits
// more than the match distance (2) away from it: line numbers are
// addresses shifted right by the line size, so they live far below 2^63.
const trackerIdle uint64 = 1 << 63

// NewPrefetcher returns a stream prefetcher with the given degree.
func NewPrefetcher(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	p := &Prefetcher{Degree: degree, buf: make([]uint64, 0, degree)}
	for i := range p.lines {
		p.lines[i] = trackerIdle
	}
	return p
}

// Observe feeds one demand access (by line number) to the detector and
// returns the line numbers to prefetch (possibly none). A stream must
// advance twice before prefetching begins, like the hardware's
// train-then-issue behaviour. The returned slice aliases an internal
// buffer and is only valid until the next Observe call.
func (p *Prefetcher) Observe(line uint64) []uint64 {
	if p.noopOK && line == p.noopLine {
		return nil
	}
	return p.observeSlow(line)
}

func (p *Prefetcher) observeSlow(line uint64) []uint64 {
	if p.hintOK && line == p.hintNext {
		// The last full scan proved no earlier tracker can match this
		// line (see the hint fields): advance the locked tracker
		// directly, exactly as the scan would.
		p.hintNext++
		if p.hintLeft--; p.hintLeft == 0 {
			p.hintOK = false
		}
		return p.advance(p.hintIdx, line)
	}
	for i := range p.lines {
		// d folds the three interesting cases (re-access, +1, +2) into one
		// unsigned distance; regressions, far jumps and idle slots wrap
		// to huge values.
		d := line - p.lines[i]
		if d > 2 {
			continue
		}
		if d == 0 {
			// Re-access within the line; no new information, no state
			// change: repeats can short-circuit.
			p.noopLine, p.noopOK = line, true
			return nil
		}
		// Arm the advance hint unless an earlier tracker is parked within
		// hintHorizon ahead of this line: such a tracker could become the
		// first match for an upcoming observation. Checking only on an
		// advance keeps the no-match scan (the common case for irregular
		// access patterns) tight.
		ahead := true
		for j := 0; j < i; j++ {
			if p.lines[j]-line-1 < hintHorizon-1 {
				ahead = false
				break
			}
		}
		p.hintIdx = i
		p.hintNext = line + 1
		p.hintLeft = hintHorizon - 2
		p.hintOK = ahead
		return p.advance(i, line)
	}
	// No tracker matched: claim the next slot round-robin. The claimed
	// slot may sit before a hinted tracker, so the hint dies with it.
	p.noopOK = false
	p.hintOK = false
	p.lines[p.next] = line
	p.scores[p.next] = 0
	p.next = (p.next + 1) % len(p.lines)
	return nil
}

// advance moves tracker i forward to line and issues prefetches once the
// stream is trained: the state transition shared by the scan and hint
// paths.
func (p *Prefetcher) advance(i int, line uint64) []uint64 {
	p.noopOK = false
	p.lines[i] = line
	if p.scores[i] < 4 {
		p.scores[i]++
	}
	if p.scores[i] >= 2 {
		// Like the hardware, the detector does not prefetch across
		// a 4 KiB page boundary (64 lines of 64 B): the next page's
		// physical frame is unknown. Streams therefore still take
		// one demand miss per page.
		const linesPerPage = 64
		out := p.buf[:0]
		for d := 1; d <= p.Degree; d++ {
			next := line + uint64(d)
			if next/linesPerPage != line/linesPerPage {
				break
			}
			out = append(out, next)
		}
		p.Issued += uint64(len(out))
		return out
	}
	return nil
}

// Reset clears all trackers and statistics.
func (p *Prefetcher) Reset() {
	for i := range p.lines {
		p.lines[i] = trackerIdle
	}
	p.scores = [16]uint8{}
	p.next = 0
	p.Issued = 0
	p.noopOK = false
	p.hintOK = false
}
