package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 64B lines = 512 B.
	return NewCache(CacheConfig{Name: "t", SizeB: 512, Ways: 2, LineB: 64})
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{Name: "a", SizeB: 0, Ways: 1, LineB: 64},
		{Name: "b", SizeB: 512, Ways: 3, LineB: 64},    // 512/(3*64) not integral
		{Name: "c", SizeB: 3 * 64, Ways: 1, LineB: 64}, // 3 sets, not power of two
		{Name: "d", SizeB: 512, Ways: 2, LineB: 48},    // line not power of two
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if err := (CacheConfig{Name: "ok", SizeB: 32 << 10, Ways: 8, LineB: 64}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	// Same line, different offset.
	if !c.Access(0x103F) {
		t.Error("same-line access missed")
	}
	// Next line.
	if c.Access(0x1040) {
		t.Error("new line hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("stats %d/%d, want 4/2", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 2-way: a set holds 2 lines
	// Three lines mapping to the same set (stride = sets*line = 256).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a)
	c.Access(b)
	c.Access(d) // evicts a (LRU)
	if c.Probe(a) {
		t.Error("LRU line a still present")
	}
	if !c.Probe(b) || !c.Probe(d) {
		t.Error("recently used lines evicted")
	}
	// Touch b to make d the LRU, then insert a new line.
	c.Access(b)
	c.Access(a) // evicts d
	if c.Probe(d) {
		t.Error("LRU line d still present after reordering")
	}
}

func TestCacheFillNoStats(t *testing.T) {
	c := smallCache()
	c.Fill(0x2000)
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("Fill touched statistics")
	}
	if !c.Access(0x2000) {
		t.Error("prefilled line missed")
	}
}

func TestCacheResetAndResetStats(t *testing.T) {
	c := smallCache()
	c.Access(0x1)
	c.ResetStats()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if !c.Access(0x1) {
		t.Error("ResetStats cleared contents")
	}
	c.Reset()
	if c.Access(0x1) {
		t.Error("Reset kept contents")
	}
}

func TestCacheMissRate(t *testing.T) {
	c := smallCache()
	if c.MissRate() != 0 {
		t.Error("idle miss rate nonzero")
	}
	c.Access(1)
	c.Access(1)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
}

func TestCacheCapacityBehaviour(t *testing.T) {
	// A working set equal to the cache size must fit after one pass.
	c := smallCache() // 512 B = 8 lines
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 512; addr += 64 {
			c.Access(addr)
		}
	}
	if c.Misses != 8 {
		t.Errorf("misses %d, want 8 (compulsory only)", c.Misses)
	}
	// A working set twice the size thrashes under LRU with a cyclic sweep.
	c.Reset()
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 1024; addr += 64 {
			c.Access(addr)
		}
	}
	if c.MissRate() < 0.99 {
		t.Errorf("cyclic over-capacity sweep miss rate %v, want ~1 (LRU pathology)", c.MissRate())
	}
}

func TestTLBConfigValidation(t *testing.T) {
	bad := []TLBConfig{
		{Name: "a", Entries: 0, Ways: 1, PageB: 4096},
		{Name: "b", Entries: 10, Ways: 4, PageB: 4096}, // not divisible
		{Name: "c", Entries: 12, Ways: 4, PageB: 4096}, // 3 sets
		{Name: "d", Entries: 16, Ways: 4, PageB: 5000}, // page size
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestTLBPageGranularity(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "t", Entries: 16, Ways: 4, PageB: 4096})
	if tlb.Access(0x1000) {
		t.Error("cold translation hit")
	}
	// Anywhere within the same page hits.
	if !tlb.Access(0x1FFF) {
		t.Error("same-page access missed")
	}
	// Next page misses.
	if tlb.Access(0x2000) {
		t.Error("new page hit")
	}
	if tlb.Accesses() != 3 || tlb.Misses() != 2 {
		t.Errorf("stats %d/%d", tlb.Accesses(), tlb.Misses())
	}
}

func TestHierarchyDataPath(t *testing.T) {
	h := NewHierarchy(testCore2Geometry().Scaled(8))
	h.DataPF = nil // isolate demand behaviour
	r := h.Data(0x10_0000, true)
	if !r.L1Miss || !r.L2Miss {
		t.Error("cold load should miss both levels")
	}
	if !r.Dtlb0Miss || !r.DtlbMiss {
		t.Error("cold load should miss both TLB levels")
	}
	r = h.Data(0x10_0000, true)
	if r.L1Miss || r.Dtlb0Miss {
		t.Error("warm load missed")
	}
	if h.L2DataMisses != 1 {
		t.Errorf("L2DataMisses = %d, want 1", h.L2DataMisses)
	}
}

func TestHierarchyStoreSkipsDTLB0(t *testing.T) {
	h := NewHierarchy(testCore2Geometry().Scaled(8))
	r := h.Data(0x20_0000, false)
	if r.Dtlb0Miss {
		t.Error("stores must not consult the L0 load DTLB")
	}
	if !r.DtlbMiss {
		t.Error("cold store should walk")
	}
}

func TestHierarchyFetchPath(t *testing.T) {
	h := NewHierarchy(testCore2Geometry().Scaled(8))
	h.InstPF = nil
	r := h.Fetch(0x40_0000)
	if !r.L1Miss || !r.L2Miss || !r.ItlbMiss {
		t.Errorf("cold fetch result %+v", r)
	}
	r = h.Fetch(0x40_0000)
	if r.L1Miss || r.ItlbMiss {
		t.Error("warm fetch missed")
	}
	if h.L2InstMisses != 1 {
		t.Errorf("L2InstMisses = %d", h.L2InstMisses)
	}
}

func TestPrefetcherDetectsStream(t *testing.T) {
	p := NewPrefetcher(2)
	var issued []uint64
	for line := uint64(100); line < 110; line++ {
		issued = append(issued, p.Observe(line)...)
	}
	if len(issued) == 0 {
		t.Fatal("sequential stream triggered no prefetches")
	}
	// Prefetches must run ahead of the stream.
	for _, l := range issued {
		if l <= 101 {
			t.Errorf("prefetched line %d not ahead of the stream", l)
		}
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := NewPrefetcher(2)
	rng := rand.New(rand.NewSource(1))
	issued := 0
	for i := 0; i < 1000; i++ {
		issued += len(p.Observe(rng.Uint64() % (1 << 30)))
	}
	if issued > 20 {
		t.Errorf("random access pattern triggered %d prefetches", issued)
	}
}

func TestPrefetcherStopsAtPageBoundary(t *testing.T) {
	p := NewPrefetcher(2)
	// Walk up to the last line of a page (lines 0..63 are page 0).
	var atBoundary []uint64
	for line := uint64(58); line <= 63; line++ {
		atBoundary = p.Observe(line)
	}
	for _, l := range atBoundary {
		if l >= 64 {
			t.Errorf("prefetch crossed page boundary to line %d", l)
		}
	}
}

func TestPrefetcherRepeatedLineNoOp(t *testing.T) {
	p := NewPrefetcher(2)
	p.Observe(5)
	p.Observe(6)
	p.Observe(7)
	before := p.Issued
	if got := p.Observe(7); got != nil {
		t.Errorf("re-access of same line prefetched %v", got)
	}
	if p.Issued != before {
		t.Error("re-access bumped Issued")
	}
}

func TestHierarchyPrefetchHidesStreamFromL2(t *testing.T) {
	h := NewHierarchy(testCore2Geometry())
	// Stream reads through 1 MB at 64B stride: after training, L2 demand
	// misses should be far below one per line.
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		h.Data(addr, true)
	}
	lines := uint64((1 << 20) / 64)
	if h.L2DataMisses > lines/4 {
		t.Errorf("L2 demand misses %d of %d lines; prefetcher ineffective", h.L2DataMisses, lines)
	}
	// L1D still takes demand misses (prefetch fills L2 only).
	if h.L1D.Misses < lines/2 {
		t.Errorf("L1D misses %d; data prefetch should not fill L1D", h.L1D.Misses)
	}
}

func TestScaledGeometryValid(t *testing.T) {
	for _, f := range []int64{1, 2, 8, 64, 1024} {
		g := testCore2Geometry().Scaled(f)
		for _, c := range []CacheConfig{g.L1I, g.L1D, g.L2} {
			if err := c.Validate(); err != nil {
				t.Errorf("scale %d: %v", f, err)
			}
		}
		for _, c := range []TLBConfig{g.DTLB0, g.DTLB, g.ITLB} {
			if err := c.Validate(); err != nil {
				t.Errorf("scale %d: %v", f, err)
			}
		}
	}
}

// Property: immediately re-accessing any address hits, for arbitrary
// address sequences.
func TestAccessIdempotenceProperty(t *testing.T) {
	c := NewCache(CacheConfig{Name: "p", SizeB: 4 << 10, Ways: 4, LineB: 64})
	f := func(addrs []uint64) bool {
		for _, a := range addrs {
			c.Access(a)
			if !c.Access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the number of resident lines never exceeds capacity.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(addrs []uint64) bool {
		c := smallCache()
		for _, a := range addrs {
			c.Access(a)
		}
		resident := 0
		for s := 0; s < c.NumSets(); s++ {
			// Probe by reconstructing lines: instead, count via sets —
			// Access-level check: misses+hits == accesses.
			_ = s
		}
		_ = resident
		return c.Misses <= c.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
