package mem

// testCore2Geometry mirrors the march "core2" preset's hierarchy. This
// in-package test file cannot import internal/march (march imports this
// package's consumers), so the numbers are restated as literals;
// internal/march's registry tests pin the materialized preset to the same
// values.
func testCore2Geometry() Geometry {
	return Geometry{
		L1I:            CacheConfig{Name: "L1I", SizeB: 32 << 10, Ways: 8, LineB: 64},
		L1D:            CacheConfig{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineB: 64},
		L2:             CacheConfig{Name: "L2", SizeB: 4 << 20, Ways: 16, LineB: 64},
		DTLB0:          TLBConfig{Name: "DTLB0", Entries: 16, Ways: 4, PageB: 4 << 10},
		DTLB:           TLBConfig{Name: "DTLB", Entries: 256, Ways: 4, PageB: 4 << 10},
		ITLB:           TLBConfig{Name: "ITLB", Entries: 128, Ways: 4, PageB: 4 << 10},
		PrefetchDegree: 2,
	}
}
