// Package mem models the memory-subsystem structures of a Core-2-Duo-like
// processor: set-associative LRU caches (split 32 KB L1 instruction and
// data caches over a shared 4 MB L2) and the translation hierarchy (a tiny
// L0 load DTLB in front of the main DTLB, plus an ITLB).
//
// These structures supply the miss events of the paper's Table I: L1DM,
// L1IM, L2M, DtlbL0LdM, DtlbLdM, DtlbLdReM, Dtlb and ItlbM. The timing
// consequences of the misses are modeled separately in internal/sim/cpu.
package mem

import (
	"fmt"
	"math/bits"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name  string
	SizeB int64 // total capacity in bytes
	Ways  int   // associativity
	LineB int64 // line size in bytes
}

// Validate checks structural soundness (power-of-two geometry, etc.).
func (c CacheConfig) Validate() error {
	if c.SizeB <= 0 || c.Ways <= 0 || c.LineB <= 0 {
		return fmt.Errorf("mem: cache %q has non-positive geometry", c.Name)
	}
	if c.SizeB%(int64(c.Ways)*c.LineB) != 0 {
		return fmt.Errorf("mem: cache %q size %d not divisible by ways*line", c.Name, c.SizeB)
	}
	sets := c.SizeB / (int64(c.Ways) * c.LineB)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %q has %d sets, not a power of two", c.Name, sets)
	}
	if c.LineB&(c.LineB-1) != 0 {
		return fmt.Errorf("mem: cache %q line size %d not a power of two", c.Name, c.LineB)
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement.
//
// Implementation: each set is a small slice of tags ordered most- to
// least-recently used; with the 8-16 way associativities modeled here a
// move-to-front scan beats fancier structures.
type Cache struct {
	cfg       CacheConfig
	sets      [][]uint64 // sets[s] = tags in MRU..LRU order
	setMask   uint64
	lineShift uint
	// Stats
	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache. It panics on an invalid configuration, because
// configurations are static program data here.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeB / (int64(cfg.Ways) * cfg.LineB)
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]uint64, nsets),
		setMask:   uint64(nsets - 1),
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.LineB))),
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// Access looks up the line containing addr, fills it on a miss, and
// reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.lineShift
	s := line & c.setMask
	set := c.sets[s]
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	c.Misses++
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[s] = set
	return false
}

// Fill installs the line containing addr as MRU without touching the
// access/miss statistics. It models fills from hardware prefetchers, which
// the PMU's demand-miss events do not count.
func (c *Cache) Fill(addr uint64) {
	line := addr >> c.lineShift
	s := line & c.setMask
	set := c.sets[s]
	for i, tag := range set {
		if tag == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return
		}
	}
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[s] = set
}

// Probe reports whether the line containing addr is present without
// updating replacement state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	for _, tag := range c.sets[line&c.setMask] {
		if tag == line {
			return true
		}
	}
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.Accesses, c.Misses = 0, 0
}

// ResetStats clears statistics but keeps contents (used between sampling
// sections so cache warmth carries over, as on real hardware).
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }

// MissRate returns Misses/Accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// LineB returns the line size in bytes.
func (c *Cache) LineB() int64 { return c.cfg.LineB }

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	Name    string
	Entries int
	Ways    int
	PageB   int64
}

// Validate checks structural soundness.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.PageB <= 0 {
		return fmt.Errorf("mem: TLB %q has non-positive geometry", c.Name)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("mem: TLB %q entries %d not divisible by ways %d", c.Name, c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: TLB %q has %d sets, not a power of two", c.Name, sets)
	}
	if c.PageB&(c.PageB-1) != 0 {
		return fmt.Errorf("mem: TLB %q page size %d not a power of two", c.Name, c.PageB)
	}
	return nil
}

// TLB is a set-associative LRU translation buffer over page numbers. It
// reuses the cache machinery with page-granular tags.
type TLB struct {
	inner     *Cache
	pageShift uint
}

// NewTLB builds a TLB; it panics on an invalid configuration.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// Model the TLB as a cache whose "line" is one page-number unit: use
	// entry-count geometry with line size 1 over page numbers.
	inner := NewCache(CacheConfig{
		Name:  cfg.Name,
		SizeB: int64(cfg.Entries),
		Ways:  cfg.Ways,
		LineB: 1,
	})
	return &TLB{inner: inner, pageShift: uint(bits.TrailingZeros64(uint64(cfg.PageB)))}
}

// Access translates addr, filling on a miss, and reports whether it hit.
func (t *TLB) Access(addr uint64) bool { return t.inner.Access(addr >> t.pageShift) }

// Probe reports presence without side effects.
func (t *TLB) Probe(addr uint64) bool { return t.inner.Probe(addr >> t.pageShift) }

// Reset clears contents and statistics.
func (t *TLB) Reset() { t.inner.Reset() }

// ResetStats clears statistics only.
func (t *TLB) ResetStats() { t.inner.ResetStats() }

// Accesses returns the access count.
func (t *TLB) Accesses() uint64 { return t.inner.Accesses }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.inner.Misses }
