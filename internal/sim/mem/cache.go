// Package mem models the memory-subsystem structures of a Core-2-Duo-like
// processor: set-associative LRU caches (split 32 KB L1 instruction and
// data caches over a shared 4 MB L2) and the translation hierarchy (a tiny
// L0 load DTLB in front of the main DTLB, plus an ITLB).
//
// These structures supply the miss events of the paper's Table I: L1DM,
// L1IM, L2M, DtlbL0LdM, DtlbLdM, DtlbLdReM, Dtlb and ItlbM. The timing
// consequences of the misses are modeled separately in internal/sim/cpu.
package mem

import (
	"fmt"
	"math/bits"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name  string
	SizeB int64 // total capacity in bytes
	Ways  int   // associativity
	LineB int64 // line size in bytes
}

// Validate checks structural soundness (power-of-two geometry, etc.).
func (c CacheConfig) Validate() error {
	if c.SizeB <= 0 || c.Ways <= 0 || c.LineB <= 0 {
		return fmt.Errorf("mem: cache %q has non-positive geometry", c.Name)
	}
	if c.SizeB%(int64(c.Ways)*c.LineB) != 0 {
		return fmt.Errorf("mem: cache %q size %d not divisible by ways*line", c.Name, c.SizeB)
	}
	sets := c.SizeB / (int64(c.Ways) * c.LineB)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %q has %d sets, not a power of two", c.Name, sets)
	}
	if c.LineB&(c.LineB-1) != 0 {
		return fmt.Errorf("mem: cache %q line size %d not a power of two", c.Name, c.LineB)
	}
	return nil
}

// lruSets is the flat storage shared by Cache and TLB: all tags live in
// one contiguous array with a fixed per-set stride of ways entries, plus a
// per-set occupancy count. Set s owns tags[s*ways : s*ways+occ[s]], kept in
// MRU..LRU order by an inline move-to-front. Compared to a slice of
// per-set slices this removes one pointer indirection per lookup, keeps
// neighbouring sets on the same cache lines of the *host* machine, and
// never allocates after construction (fills bump occ instead of append).
type lruSets struct {
	tags []uint64 // nsets*ways tags, set-major
	occ  []int32  // resident ways per set
	ways int
	mask uint64 // nsets-1
}

func newLRUSets(nsets, ways int) lruSets {
	return lruSets{
		tags: make([]uint64, nsets*ways),
		occ:  make([]int32, nsets),
		ways: ways,
		mask: uint64(nsets - 1),
	}
}

// access looks key up in its set, moves it to front on a hit, installs it
// as MRU (evicting the LRU tag if the set is full) on a miss, and reports
// whether it hit. It is split into tryHit and install so both halves stay
// within the inlining budget: the per-access call from the cache and TLB
// slow paths then costs no extra call frame.
func (a *lruSets) access(key uint64) bool {
	if a.tryHit(key) {
		return true
	}
	a.install(key)
	return false
}

// tryHit scans key's set and moves it to front on a hit. The
// move-to-front is a hand-rolled shift: with 4-16 resident ways the
// element loop beats a memmove call. Warmed-up full sets (the steady
// state of every demand-access benchmark) take a specialized scan over a
// fixed-size array pointer, which lets the compiler drop all per-element
// bounds checks and unroll.
func (a *lruSets) tryHit(key uint64) bool {
	s := key & a.mask
	n := int(a.occ[s])
	base := int(s) * a.ways
	if n == 8 && a.ways == 8 {
		return tryHitFull((*[8]uint64)(a.tags[base:base+8]), key)
	}
	if n == 16 && a.ways == 16 {
		return tryHitFull16((*[16]uint64)(a.tags[base:base+16]), key)
	}
	tags := a.tags[base : base+a.ways]
	if n > len(tags) {
		// Never taken (occupancy is bounded by ways); stating it lets the
		// compiler drop the per-element bounds checks below.
		n = len(tags)
	}
	if n > 0 && tags[0] == key {
		// Already MRU: hit with no movement. Prefetch re-fills of a line
		// that is still the newest in its set land here constantly.
		return true
	}
	for i := 1; i < n; i++ {
		if tags[i] == key {
			for ; i > 0; i-- {
				tags[i] = tags[i-1]
			}
			tags[0] = key
			return true
		}
	}
	return false
}

func tryHitFull(tags *[8]uint64, key uint64) bool {
	if tags[0] == key {
		return true
	}
	for i := 1; i < 8; i++ {
		if tags[i] == key {
			for ; i > 0; i-- {
				tags[i] = tags[i-1]
			}
			tags[0] = key
			return true
		}
	}
	return false
}

func tryHitFull16(tags *[16]uint64, key uint64) bool {
	if tags[0] == key {
		return true
	}
	for i := 1; i < 16; i++ {
		if tags[i] == key {
			for ; i > 0; i-- {
				tags[i] = tags[i-1]
			}
			tags[0] = key
			return true
		}
	}
	return false
}

// install makes key the MRU tag of its set, evicting the LRU tag if the
// set is full. It must only be called when key is absent from the set.
func (a *lruSets) install(key uint64) {
	s := key & a.mask
	n := int(a.occ[s])
	base := int(s) * a.ways
	tags := a.tags[base : base+a.ways]
	if n < a.ways {
		a.occ[s] = int32(n + 1)
	} else {
		n--
	}
	if n > len(tags) {
		n = len(tags)
	}
	for i := n; i > 0; i-- {
		tags[i] = tags[i-1]
	}
	tags[0] = key
}

// probe reports presence without touching replacement order.
func (a *lruSets) probe(key uint64) bool {
	s := key & a.mask
	base := int(s) * a.ways
	tags := a.tags[base : base+int(a.occ[s])]
	for _, tag := range tags {
		if tag == key {
			return true
		}
	}
	return false
}

// reset empties every set.
func (a *lruSets) reset() {
	for i := range a.occ {
		a.occ[i] = 0
	}
}

// noLine is the "no cached fast-path line" sentinel for the repeated-
// access fast paths below. It is unreachable as a real line or page
// number for any geometry with lines/pages of at least two bytes (every
// geometry modeled here); using a sentinel instead of a validity flag
// keeps the fast-path wrappers under the compiler's inlining budget.
const noLine = ^uint64(0)

// Cache is a set-associative cache with true-LRU replacement.
//
// Implementation: tags are stored flat (see lruSets) with each set a small
// contiguous run ordered most- to least-recently used; with the 8-16 way
// associativities modeled here a move-to-front scan beats fancier
// structures.
type Cache struct {
	cfg       CacheConfig
	sets      lruSets
	lineShift uint
	// lastLine (noLine when invalid) is the line of the most recent
	// Access. It is by construction at the MRU position of its set, so
	// repeating the access is a guaranteed hit that changes no replacement
	// state and can skip the set scan entirely. Sequential fetch streams
	// hit this path ~15 times per 16 instructions. A Fill of a different
	// line into the same set displaces it and must invalidate.
	lastLine uint64
	// Stats
	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache. It panics on an invalid configuration, because
// configurations are static program data here.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeB / (int64(cfg.Ways) * cfg.LineB)
	return &Cache{
		cfg:       cfg,
		sets:      newLRUSets(int(nsets), cfg.Ways),
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.LineB))),
		lastLine:  noLine,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets.occ) }

// Access looks up the line containing addr, fills it on a miss, and
// reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.lineShift
	if line == c.lastLine {
		return true
	}
	return c.accessSlow(line)
}

// accessSlow is kept out of line so the Access wrapper stays within the
// inlining budget; the set scan dominates this path anyway.
//
//go:noinline
func (c *Cache) accessSlow(line uint64) bool {
	c.lastLine = line
	if c.sets.tryHit(line) {
		return true
	}
	c.sets.install(line)
	c.Misses++
	return false
}

// Fill installs the line containing addr as MRU without touching the
// access/miss statistics. It models fills from hardware prefetchers, which
// the PMU's demand-miss events do not count.
func (c *Cache) Fill(addr uint64) {
	line := addr >> c.lineShift
	c.sets.access(line)
	if line != c.lastLine && line&c.sets.mask == c.lastLine&c.sets.mask {
		// The fill took over the MRU slot of lastLine's set.
		c.lastLine = noLine
	}
}

// Probe reports whether the line containing addr is present without
// updating replacement state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	return c.sets.probe(addr >> c.lineShift)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	c.sets.reset()
	c.lastLine = noLine
	c.Accesses, c.Misses = 0, 0
}

// ResetStats clears statistics but keeps contents (used between sampling
// sections so cache warmth carries over, as on real hardware).
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }

// MissRate returns Misses/Accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// LineB returns the line size in bytes.
func (c *Cache) LineB() int64 { return c.cfg.LineB }

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	Name    string
	Entries int
	Ways    int
	PageB   int64
}

// Validate checks structural soundness.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.PageB <= 0 {
		return fmt.Errorf("mem: TLB %q has non-positive geometry", c.Name)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("mem: TLB %q entries %d not divisible by ways %d", c.Name, c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: TLB %q has %d sets, not a power of two", c.Name, sets)
	}
	if c.PageB&(c.PageB-1) != 0 {
		return fmt.Errorf("mem: TLB %q page size %d not a power of two", c.Name, c.PageB)
	}
	return nil
}

// TLB is a set-associative LRU translation buffer over page numbers. It
// owns its flattened set storage directly (the same lruSets layout the
// caches use) rather than delegating through an inner *Cache, so a
// translation costs one shift and one flat-array scan with no second
// pointer hop.
type TLB struct {
	cfg       TLBConfig
	sets      lruSets
	pageShift uint
	// lastPage (noLine when invalid) is the same repeated-access fast
	// path the caches use: after any Access the translated page sits at
	// MRU of its set, so a back-to-back translation of the same page is a
	// hit with no state change. Nothing but Access mutates TLB sets, so
	// only Reset invalidates it.
	lastPage uint64
	accesses uint64
	misses   uint64
}

// NewTLB builds a TLB; it panics on an invalid configuration.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TLB{
		cfg:       cfg,
		sets:      newLRUSets(cfg.Entries/cfg.Ways, cfg.Ways),
		pageShift: uint(bits.TrailingZeros64(uint64(cfg.PageB))),
		lastPage:  noLine,
	}
}

// Access translates addr, filling on a miss, and reports whether it hit.
func (t *TLB) Access(addr uint64) bool {
	t.accesses++
	page := addr >> t.pageShift
	if page == t.lastPage {
		return true
	}
	return t.accessSlow(page)
}

//go:noinline
func (t *TLB) accessSlow(page uint64) bool {
	t.lastPage = page
	if t.sets.tryHit(page) {
		return true
	}
	t.sets.install(page)
	t.misses++
	return false
}

// Probe reports presence without side effects.
func (t *TLB) Probe(addr uint64) bool { return t.sets.probe(addr >> t.pageShift) }

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	t.sets.reset()
	t.lastPage = noLine
	t.accesses, t.misses = 0, 0
}

// ResetStats clears statistics only.
func (t *TLB) ResetStats() { t.accesses, t.misses = 0, 0 }

// Accesses returns the access count.
func (t *TLB) Accesses() uint64 { return t.accesses }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }
