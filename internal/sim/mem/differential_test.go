package mem

import (
	"math/rand"
	"testing"
)

// Differential tests: the flat-array structures with their repeated-access
// fast paths are checked against straightforward reference implementations
// (one slice per set, explicit validity flags — the shape the code had
// before the flattening) on randomized operation sequences. Any fast path
// that fails to be a behavioral no-op diverges from the reference within a
// few thousand operations.
//
// Test addresses stay below 2^46 (lines below 2^40), comfortably inside
// the domain argument for the noLine/trackerIdle sentinels.

// refCache is the reference set-associative LRU cache: a slice per set in
// MRU..LRU order, rebuilt with append on every access.
type refCache struct {
	sets      [][]uint64
	ways      int
	mask      uint64
	lineShift uint
	accesses  uint64
	misses    uint64
}

func newRefCache(cfg CacheConfig) *refCache {
	nsets := cfg.SizeB / (int64(cfg.Ways) * cfg.LineB)
	r := &refCache{
		sets: make([][]uint64, nsets),
		ways: cfg.Ways,
		mask: uint64(nsets - 1),
	}
	for s := int64(1); s < cfg.LineB; s <<= 1 {
		r.lineShift++
	}
	return r
}

func (r *refCache) lookup(key uint64) (int, []uint64) {
	set := r.sets[key&r.mask]
	for i, tag := range set {
		if tag == key {
			return i, set
		}
	}
	return -1, set
}

func (r *refCache) access(addr uint64) bool {
	r.accesses++
	key := addr >> r.lineShift
	i, set := r.lookup(key)
	if i >= 0 {
		copy(set[1:i+1], set[:i])
		set[0] = key
		return true
	}
	r.misses++
	r.insert(key)
	return false
}

func (r *refCache) fill(addr uint64) {
	key := addr >> r.lineShift
	i, set := r.lookup(key)
	if i >= 0 {
		copy(set[1:i+1], set[:i])
		set[0] = key
		return
	}
	r.insert(key)
}

func (r *refCache) insert(key uint64) {
	s := key & r.mask
	set := r.sets[s]
	if len(set) == r.ways {
		set = set[:len(set)-1]
	}
	r.sets[s] = append([]uint64{key}, set...)
}

func (r *refCache) probe(addr uint64) bool {
	i, _ := r.lookup(addr >> r.lineShift)
	return i >= 0
}

func (r *refCache) reset() {
	for i := range r.sets {
		r.sets[i] = nil
	}
	r.accesses, r.misses = 0, 0
}

// addrStream generates a cache-hostile mixture: line repeats (fast path),
// sequential walks, rotations wider than the associativity within one set,
// and uniform noise up to 2^46.
func addrStream(rng *rand.Rand) func() uint64 {
	cur := uint64(0)
	return func() uint64 {
		switch rng.Intn(10) {
		case 0, 1, 2: // repeat the current line (fast-path food)
			return cur + uint64(rng.Intn(64))
		case 3, 4, 5: // sequential walk
			cur += 64
			return cur
		case 6, 7: // rotate within one set, wider than 8 ways
			cur = uint64(rng.Intn(10)) << 18
			return cur
		case 8: // page-crossing jump
			cur += 4096 * uint64(1+rng.Intn(8))
			return cur
		default: // uniform noise
			cur = uint64(rng.Int63n(1 << 46))
			return cur
		}
	}
}

func TestCacheDifferential(t *testing.T) {
	geoms := []CacheConfig{
		{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineB: 64},
		{Name: "L2small", SizeB: 64 << 10, Ways: 16, LineB: 64},
		{Name: "direct", SizeB: 4 << 10, Ways: 1, LineB: 64},
		{Name: "tiny", SizeB: 512, Ways: 4, LineB: 32},
	}
	for _, cfg := range geoms {
		t.Run(cfg.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(cfg.Name)) * 7919))
			c := NewCache(cfg)
			ref := newRefCache(cfg)
			next := addrStream(rng)
			for op := 0; op < 50000; op++ {
				addr := next()
				switch rng.Intn(20) {
				case 0:
					c.Fill(addr)
					ref.fill(addr)
				case 1:
					if got, want := c.Probe(addr), ref.probe(addr); got != want {
						t.Fatalf("op %d: Probe(%#x) = %v, ref %v", op, addr, got, want)
					}
				case 2:
					if rng.Intn(64) == 0 { // rare: full reset
						c.Reset()
						ref.reset()
					}
				default:
					if got, want := c.Access(addr), ref.access(addr); got != want {
						t.Fatalf("op %d: Access(%#x) = %v, ref %v", op, addr, got, want)
					}
				}
				if c.Accesses != ref.accesses || c.Misses != ref.misses {
					t.Fatalf("op %d: stats (%d,%d), ref (%d,%d)",
						op, c.Accesses, c.Misses, ref.accesses, ref.misses)
				}
			}
		})
	}
}

func TestTLBDifferential(t *testing.T) {
	cfgs := []TLBConfig{
		{Name: "DTLB", Entries: 256, Ways: 4, PageB: 4 << 10},
		{Name: "DTLB0", Entries: 16, Ways: 4, PageB: 4 << 10},
	}
	for _, cfg := range cfgs {
		t.Run(cfg.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cfg.Entries)))
			tlb := NewTLB(cfg)
			ref := newRefCache(CacheConfig{
				Name:  cfg.Name,
				SizeB: int64(cfg.Entries) * cfg.PageB,
				Ways:  cfg.Ways,
				LineB: cfg.PageB,
			})
			next := addrStream(rng)
			for op := 0; op < 50000; op++ {
				addr := next()
				if got, want := tlb.Access(addr), ref.access(addr); got != want {
					t.Fatalf("op %d: Access(%#x) = %v, ref %v", op, addr, got, want)
				}
				if tlb.Accesses() != ref.accesses || tlb.Misses() != ref.misses {
					t.Fatalf("op %d: stats (%d,%d), ref (%d,%d)",
						op, tlb.Accesses(), tlb.Misses(), ref.accesses, ref.misses)
				}
			}
		})
	}
}

// refPrefetcher is the reference stream detector: explicit validity flags,
// no sentinel lines, no no-op memo, no advance hint.
type refPrefetcher struct {
	degree int
	lines  [16]uint64
	scores [16]uint8
	valid  [16]bool
	next   int
	issued uint64
}

func (p *refPrefetcher) observe(line uint64) []uint64 {
	for i := range p.lines {
		if !p.valid[i] {
			continue
		}
		d := line - p.lines[i]
		if d > 2 {
			continue
		}
		if d == 0 {
			return nil
		}
		p.lines[i] = line
		if p.scores[i] < 4 {
			p.scores[i]++
		}
		if p.scores[i] >= 2 {
			const linesPerPage = 64
			var out []uint64
			for d := 1; d <= p.degree; d++ {
				next := line + uint64(d)
				if next/linesPerPage != line/linesPerPage {
					break
				}
				out = append(out, next)
			}
			p.issued += uint64(len(out))
			return out
		}
		return nil
	}
	p.lines[p.next] = line
	p.scores[p.next] = 0
	p.valid[p.next] = true
	p.next = (p.next + 1) % len(p.lines)
	return nil
}

func TestPrefetcherDifferential(t *testing.T) {
	for _, degree := range []int{1, 2, 4} {
		rng := rand.New(rand.NewSource(int64(degree) * 104729))
		p := NewPrefetcher(degree)
		ref := &refPrefetcher{degree: degree}
		line := uint64(0)
		for op := 0; op < 200000; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // advance a stream (the hint path's food)
				line++
			case 5, 6: // repeat (the no-op path's food)
			case 7: // skip one line (distance-2 match)
				line += 2
			case 8: // new stream start
				line = uint64(rng.Int63n(1 << 40))
			default: // far jump, likely a claim
				line = uint64(rng.Int63n(1 << 30))
			}
			got := p.Observe(line)
			want := ref.observe(line)
			if len(got) != len(want) {
				t.Fatalf("degree %d op %d: Observe(%#x) len %d, ref %d",
					degree, op, line, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("degree %d op %d: Observe(%#x)[%d] = %#x, ref %#x",
						degree, op, line, i, got[i], want[i])
				}
			}
			if p.Issued != ref.issued {
				t.Fatalf("degree %d op %d: Issued %d, ref %d", degree, op, p.Issued, ref.issued)
			}
			if op%50021 == 0 {
				p.Reset()
				*ref = refPrefetcher{degree: degree}
			}
		}
	}
}
