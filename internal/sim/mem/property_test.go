package mem_test

// Property and metamorphic tests for the raw cache/TLB structures. The
// load-bearing relation is LRU stack inclusion: with a fixed set count, a
// set-associative true-LRU structure of w' > w ways holds a superset of
// the w-way contents after any access sequence, so every hit in the small
// structure is a hit in the large one — enlarging a cache can never
// create a miss. (Changing the set count re-maps addresses and does NOT
// have this guarantee, which is why every geometry pair here scales
// SizeB/Entries together with Ways.)

import (
	"testing"

	"repro/internal/proptest"
	"repro/internal/sim/mem"
)

// genAddrs produces an address sequence with reuse: a hot set, a strided
// stream, and occasional far jumps, so both hits and misses occur at
// every geometry under test.
func genAddrs(r *proptest.Rand, n int) []uint64 {
	hot := make([]uint64, r.IntBetween(4, 48))
	for i := range hot {
		hot[i] = uint64(r.Intn(1<<16) * 64)
	}
	stride := uint64([]int{8, 64, 128}[r.Intn(3)])
	pos := uint64(r.Intn(1 << 20))
	addrs := make([]uint64, n)
	for i := range addrs {
		switch {
		case r.Bool(0.5):
			addrs[i] = hot[r.Intn(len(hot))] + uint64(r.Intn(64))
		case r.Bool(0.8):
			pos += stride
			addrs[i] = 0x4000000 + pos
		default:
			addrs[i] = uint64(r.Uint64() >> 20)
		}
	}
	return addrs
}

// TestCacheWaysMonotonic: on the same access/fill sequence, a cache with
// more ways (same set count) hits pointwise wherever the smaller one hits
// and ends with no more demand misses.
func TestCacheWaysMonotonic(t *testing.T) {
	proptest.Run(t, "cache-ways-monotonic", 30, func(t *testing.T, r *proptest.Rand) {
		ways := []int{2, 4, 8}[r.Intn(3)]
		sets := int64([]int{4, 16, 64}[r.Intn(3)])
		mult := int64(r.IntBetween(2, 4))
		small := mem.NewCache(mem.CacheConfig{Name: "s", SizeB: sets * int64(ways) * 64, Ways: ways, LineB: 64})
		large := mem.NewCache(mem.CacheConfig{Name: "l", SizeB: sets * int64(ways) * mult * 64, Ways: ways * int(mult), LineB: 64})
		if small.NumSets() != large.NumSets() {
			t.Fatalf("geometry bug: %d vs %d sets", small.NumSets(), large.NumSets())
		}
		for i, a := range genAddrs(r, 3000) {
			if r.Bool(0.1) {
				small.Fill(a)
				large.Fill(a)
				continue
			}
			hs, hl := small.Access(a), large.Access(a)
			if hs && !hl {
				t.Fatalf("access %d (addr %#x): hit in %d ways but miss in %d ways", i, a, ways, ways*int(mult))
			}
		}
		if large.Misses > small.Misses {
			t.Fatalf("enlarging %d->%d ways raised misses %d -> %d", ways, ways*int(mult), small.Misses, large.Misses)
		}
		if small.Misses > small.Accesses || large.Misses > large.Accesses {
			t.Fatal("misses exceed accesses")
		}
	})
}

// TestTLBWaysMonotonic: same relation for the TLB structure.
func TestTLBWaysMonotonic(t *testing.T) {
	proptest.Run(t, "tlb-ways-monotonic", 30, func(t *testing.T, r *proptest.Rand) {
		ways := []int{2, 4}[r.Intn(2)]
		sets := []int{2, 4, 8}[r.Intn(3)]
		small := mem.NewTLB(mem.TLBConfig{Name: "s", Entries: sets * ways, Ways: ways, PageB: 4096})
		large := mem.NewTLB(mem.TLBConfig{Name: "l", Entries: sets * ways * 2, Ways: ways * 2, PageB: 4096})
		for i, a := range genAddrs(r, 3000) {
			hs, hl := small.Access(a), large.Access(a)
			if hs && !hl {
				t.Fatalf("access %d (addr %#x): hit in %d ways but miss in %d", i, a, ways, ways*2)
			}
		}
		if large.Misses() > small.Misses() {
			t.Fatalf("enlarging TLB raised misses %d -> %d", small.Misses(), large.Misses())
		}
		if small.Accesses() != large.Accesses() {
			t.Fatalf("access counts diverged: %d vs %d", small.Accesses(), large.Accesses())
		}
	})
}

// TestProbeNoSideEffects: interleaving Probe calls into an access
// sequence changes neither outcomes nor statistics, and Probe agrees
// with the most recent Access result for the same address.
func TestProbeNoSideEffects(t *testing.T) {
	proptest.Run(t, "probe-no-side-effects", 20, func(t *testing.T, r *proptest.Rand) {
		cfg := mem.CacheConfig{Name: "c", SizeB: 8 * 4 * 64, Ways: 4, LineB: 64}
		plain := mem.NewCache(cfg)
		probed := mem.NewCache(cfg)
		tlb := mem.NewTLB(mem.TLBConfig{Name: "t", Entries: 16, Ways: 4, PageB: 4096})
		for i, a := range genAddrs(r, 2000) {
			hp := plain.Access(a)
			// Bracket the mirrored access with probes of random addresses.
			probed.Probe(uint64(r.Uint64() >> 16))
			hq := probed.Access(a)
			probed.Probe(uint64(r.Uint64() >> 16))
			if hp != hq {
				t.Fatalf("access %d: probes perturbed outcome (%v vs %v)", i, hp, hq)
			}
			if !probed.Probe(a) {
				t.Fatalf("access %d: line absent immediately after Access", i)
			}
			tlb.Access(a)
			if !tlb.Probe(a) {
				t.Fatalf("access %d: page absent immediately after TLB Access", i)
			}
		}
		if plain.Accesses != probed.Accesses || plain.Misses != probed.Misses {
			t.Fatalf("probes moved stats: %d/%d vs %d/%d",
				plain.Accesses, plain.Misses, probed.Accesses, probed.Misses)
		}
	})
}

// TestFillMakesResident: Fill installs a line without moving demand
// statistics, and the immediately following Access to that line hits.
func TestFillMakesResident(t *testing.T) {
	proptest.Run(t, "fill-makes-resident", 20, func(t *testing.T, r *proptest.Rand) {
		c := mem.NewCache(mem.CacheConfig{Name: "c", SizeB: 4 * 4 * 64, Ways: 4, LineB: 64})
		for i := 0; i < 500; i++ {
			a := uint64(r.Intn(1<<14) * 64)
			accBefore, missBefore := c.Accesses, c.Misses
			c.Fill(a)
			if c.Accesses != accBefore || c.Misses != missBefore {
				t.Fatalf("iter %d: Fill moved demand stats", i)
			}
			if !c.Probe(a) {
				t.Fatalf("iter %d: filled line %#x not resident", i, a)
			}
			if !c.Access(a) {
				t.Fatalf("iter %d: access after fill missed", i)
			}
		}
	})
}
