package mem

import "testing"

// BenchmarkCacheAccess drives the demand-access path of an L1-like cache
// with a mix of within-line repeats (the inlined fast path), short strides
// within a set and a second irregular stream, approximating the address
// pattern the simulator core generates. The steady state must not allocate.
func BenchmarkCacheAccess(b *testing.B) {
	c := NewCache(CacheConfig{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineB: 64})
	b.ReportAllocs()
	addr := uint64(0)
	for i := 0; i < b.N; i++ {
		c.Access(addr)
		c.Access(addr + 8)
		c.Access(addr + 16)
		c.Access((addr * 0x9E3779B97F4A7C15) >> 20) // irregular second stream
		addr += 64
	}
	_ = c.MissRate()
}

// BenchmarkTLBAccess measures the translation path: mostly same-page
// repeats with periodic page changes, like a sequential fetch stream.
func BenchmarkTLBAccess(b *testing.B) {
	t := NewTLB(TLBConfig{Name: "DTLB", Entries: 256, Ways: 4, PageB: 4 << 10})
	b.ReportAllocs()
	addr := uint64(0)
	for i := 0; i < b.N; i++ {
		t.Access(addr)
		addr += 192 // ~21 repeats per 4 KiB page
	}
	_ = t.Misses()
}

// BenchmarkHierarchyData runs full data accesses (TLBs, L1D, L2, stream
// prefetcher) alternating a sequential load stream with strided stores.
func BenchmarkHierarchyData(b *testing.B) {
	h := NewHierarchy(testCore2Geometry())
	b.ReportAllocs()
	seq, strided := uint64(0), uint64(1<<30)
	for i := 0; i < b.N; i++ {
		h.Data(seq, true)
		h.Data(strided, false)
		seq += 8
		strided += 4096
	}
}

// BenchmarkHierarchyFetch measures instruction fetch: sequential code with
// a taken branch every 32 instructions, the pattern the repeat-line fast
// path is built for.
func BenchmarkHierarchyFetch(b *testing.B) {
	h := NewHierarchy(testCore2Geometry())
	b.ReportAllocs()
	pc := uint64(0x400000)
	for i := 0; i < b.N; i++ {
		if !h.FetchFast(pc) {
			h.Fetch(pc)
		}
		pc += 4
		if i%32 == 31 {
			pc += 1 << 12
			if pc > 0x400000+(1<<22) {
				pc = 0x400000
			}
		}
	}
}
