package cpu

import (
	"fmt"
	"sort"
	"strings"
)

// CycleCategory labels one source of cycles in the ground-truth CPI stack.
// Unlike the PMU counters — which count *events* and leave the cycle
// attribution to be inferred — the simulator knows exactly how many cycles
// each mechanism charged. Real hardware cannot report this (which is why
// the paper needs a model); the simulator can, which lets the repository
// validate the model tree's "how much" answers against truth.
type CycleCategory int

const (
	// CatBase is issue-slot and dependency-serialization cost.
	CatBase CycleCategory = iota
	// CatL2Miss is data-side L2 (memory) miss stall.
	CatL2Miss
	// CatL1DMiss is data-side L1-miss/L2-hit stall.
	CatL1DMiss
	// CatFrontEnd is instruction-side miss stall (L1I, inst-L2, ITLB).
	CatFrontEnd
	// CatBranch is mispredict flush cost.
	CatBranch
	// CatDTLB is data translation (L0 miss + page walk) cost.
	CatDTLB
	// CatLCP is length-changing-prefix pre-decode stall.
	CatLCP
	// CatBlocks is load-block (STA/STD/overlap) cost.
	CatBlocks
	// CatAlign is misalignment and line-split cost.
	CatAlign
	// CatStore is store-side miss cost drained through the store buffer.
	CatStore

	numCategories
)

// String names the category.
func (c CycleCategory) String() string {
	switch c {
	case CatBase:
		return "base"
	case CatL2Miss:
		return "l2miss"
	case CatL1DMiss:
		return "l1dmiss"
	case CatFrontEnd:
		return "frontend"
	case CatBranch:
		return "branch"
	case CatDTLB:
		return "dtlb"
	case CatLCP:
		return "lcp"
	case CatBlocks:
		return "blocks"
	case CatAlign:
		return "align"
	case CatStore:
		return "store"
	default:
		return fmt.Sprintf("cat(%d)", int(c))
	}
}

// Breakdown is the ground-truth cycle attribution accumulated alongside
// the PMU counters.
type Breakdown [numCategories]float64

// Total returns the summed cycles across categories.
func (b Breakdown) Total() float64 {
	s := 0.0
	for _, v := range b {
		s += v
	}
	return s
}

// Share returns category cycles divided by the total (0 when idle).
func (b Breakdown) Share(c CycleCategory) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b[c] / t
}

// Reset zeroes the breakdown.
func (b *Breakdown) Reset() { *b = Breakdown{} }

// String renders the stack largest-first, e.g.
// "l2miss:46.2% base:21.0% dtlb:12.4% ...".
func (b Breakdown) String() string {
	type entry struct {
		c CycleCategory
		v float64
	}
	entries := make([]entry, 0, numCategories)
	for c := CycleCategory(0); c < numCategories; c++ {
		if b[c] > 0 {
			entries = append(entries, entry{c, b[c]})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].v > entries[j].v })
	t := b.Total()
	parts := make([]string, 0, len(entries))
	for _, e := range entries {
		parts = append(parts, fmt.Sprintf("%s:%.1f%%", e.c, 100*e.v/t))
	}
	return strings.Join(parts, " ")
}
