package cpu

import "repro/internal/sim/mem"

// These fixtures mirror the march "core2" preset (and its NetBurst and
// in-order variants). In-package tests cannot import internal/march — the
// march package imports cpu — so the values are restated here as literals;
// internal/march's registry tests pin the materialized presets to the same
// numbers, so a drift between the two fails over there.

func defaultConfig() Config {
	return Config{
		IssueWidth:         4,
		DepSerialization:   0.45,
		MemLatency:         165,
		L2HitLatency:       14,
		MispredictPenalty:  13,
		Dtlb0Penalty:       2,
		WalkPenalty:        30,
		LdBlockSTAPenalty:  5,
		LdBlockSTDPenalty:  6,
		LdBlockOvStPenalty: 5,
		MisalignPenalty:    1.5,
		SplitLoadPenalty:   9,
		SplitStorePenalty:  9,
		LCPPenalty:         6,
		ROBWindow:          96,
		MLPResidual:        0.22,
		OOOHidingResidual:  0.18,
		ShadowResidual:     0.25,
		StoreExposure:      0.15,
		FrontEndExposure:   0.8,
		WrongPathFetches:   2,
		WrongPathLoads:     1,
		Seed:               1,
	}
}

func netBurstConfig() Config {
	c := defaultConfig()
	c.IssueWidth = 3
	c.ROBWindow = 126
	c.MemLatency = 220
	c.L2HitLatency = 18
	c.MispredictPenalty = 31
	return c
}

func inOrderConfig() Config {
	c := defaultConfig()
	c.MLPResidual = 1
	c.OOOHidingResidual = 1
	c.ShadowResidual = 1
	c.StoreExposure = 1
	c.FrontEndExposure = 1
	c.ROBWindow = 1
	return c
}

func core2Geometry() mem.Geometry {
	return mem.Geometry{
		L1I:            mem.CacheConfig{Name: "L1I", SizeB: 32 << 10, Ways: 8, LineB: 64},
		L1D:            mem.CacheConfig{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineB: 64},
		L2:             mem.CacheConfig{Name: "L2", SizeB: 4 << 20, Ways: 16, LineB: 64},
		DTLB0:          mem.TLBConfig{Name: "DTLB0", Entries: 16, Ways: 4, PageB: 4 << 10},
		DTLB:           mem.TLBConfig{Name: "DTLB", Entries: 256, Ways: 4, PageB: 4 << 10},
		ITLB:           mem.TLBConfig{Name: "ITLB", Entries: 128, Ways: 4, PageB: 4 << 10},
		PrefetchDegree: 2,
	}
}
