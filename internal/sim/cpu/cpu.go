package cpu

import (
	"repro/internal/xrand"

	"repro/internal/sim/branch"
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
)

// derived holds config-invariant values hoisted out of the per-instruction
// path at construction: the issue-width reciprocal, the dependency
// serialization table, and every penalty-times-exposure product the timing
// model charges. Each field is the result of exactly the arithmetic
// expression the hot path previously evaluated per event — the same
// IEEE-754 operations on the same operands, performed once — so cycle
// accumulation stays bit-identical to computing them inline.
type derived struct {
	invIssue    float64    // 1 / IssueWidth
	depSer      [5]float64 // DepSerialization / dist for dist 1..4
	feMem       float64    // MemLatency * FrontEndExposure
	feL2Hit     float64    // L2HitLatency * FrontEndExposure
	feWalk      float64    // WalkPenalty * FrontEndExposure
	walkMLP     float64    // WalkPenalty * MLPResidual
	memMLP      float64    // MemLatency * MLPResidual
	memIsolated float64    // MemLatency * (1 - ROBWindow/IssueWidth/MemLatency)
	l2HitOOO    float64    // L2HitLatency * OOOHidingResidual
	memStore    float64    // MemLatency * StoreExposure
	l2HitStore  float64    // L2HitLatency * StoreExposure
	walkStore   float64    // WalkPenalty * StoreExposure
	mispShadow  float64    // MispredictPenalty * ShadowResidual
	lineMask    uint64     // L1D line size - 1, for split-access detection
}

func deriveConfig(cfg Config, l1dLineB int64) derived {
	d := derived{
		invIssue:    1 / cfg.IssueWidth,
		feMem:       cfg.MemLatency * cfg.FrontEndExposure,
		feL2Hit:     cfg.L2HitLatency * cfg.FrontEndExposure,
		feWalk:      cfg.WalkPenalty * cfg.FrontEndExposure,
		walkMLP:     cfg.WalkPenalty * cfg.MLPResidual,
		memMLP:      cfg.MemLatency * cfg.MLPResidual,
		memIsolated: cfg.MemLatency * (1 - float64(cfg.ROBWindow)/cfg.IssueWidth/cfg.MemLatency),
		l2HitOOO:    cfg.L2HitLatency * cfg.OOOHidingResidual,
		memStore:    cfg.MemLatency * cfg.StoreExposure,
		l2HitStore:  cfg.L2HitLatency * cfg.StoreExposure,
		walkStore:   cfg.WalkPenalty * cfg.StoreExposure,
		mispShadow:  cfg.MispredictPenalty * cfg.ShadowResidual,
		lineMask:    uint64(l1dLineB) - 1,
	}
	for dist := 1; dist <= 4; dist++ {
		d.depSer[dist] = cfg.DepSerialization / float64(dist)
	}
	return d
}

// splitsLine reports whether [addr, addr+size) crosses a line boundary,
// with mask = lineB-1 (lineB is a validated power of two). Equivalent to
// trace.Inst.SplitsLine for a known load/store with non-zero size, minus
// the per-call kind checks and divisions.
func splitsLine(addr, size, mask uint64) bool {
	return addr&^mask != (addr+size-1)&^mask
}

// CPU is the trace-driven core model. It owns the memory hierarchy and
// branch predictor, processes one instruction per Step, and accumulates
// cycles and PMU counters.
type CPU struct {
	cfg Config
	drv derived
	Mem *mem.Hierarchy
	BP  *branch.Predictor

	ctr Counters
	// bd is the ground-truth cycle breakdown, reset with the counters.
	bd Breakdown
	// retired is the lifetime retired-instruction index (never reset), used
	// for ROB-window overlap decisions across section boundaries.
	retired uint64
	// lastLongMiss is the retired index of the most recent long-latency
	// (memory) miss; misses within ROBWindow of it may overlap.
	lastLongMiss uint64
	// haveLongMiss records whether lastLongMiss is valid yet.
	haveLongMiss bool
	// lastDataAddr seeds wrong-path load addresses.
	lastDataAddr uint64
	rng          *xrand.Rand
}

// New builds a core with the given timing config, cache geometry and
// branch-predictor geometry.
func New(cfg Config, geom mem.Geometry, bp branch.Config) *CPU {
	return &CPU{
		cfg: cfg,
		drv: deriveConfig(cfg, geom.L1D.LineB),
		Mem: mem.NewHierarchy(geom),
		BP:  branch.New(bp),
		rng: xrand.New(cfg.Seed),
	}
}

// Config returns the timing configuration.
func (c *CPU) Config() Config { return c.cfg }

// Counters returns a snapshot of the PMU state.
func (c *CPU) Counters() Counters { return c.ctr }

// CycleBreakdown returns the ground-truth cycle attribution accumulated
// since the last section reset. Real PMUs cannot produce this; the
// simulator can, which is what lets the repository check the model tree's
// "how much" answers against truth (the groundtruth experiment).
func (c *CPU) CycleBreakdown() Breakdown { return c.bd }

// ResetSection zeroes the PMU counters and cycle accumulator while keeping
// all micro-architectural state (cache contents, predictor training) warm,
// exactly like reprogramming counters between sampling sections on real
// hardware.
func (c *CPU) ResetSection() {
	c.ctr.Reset()
	c.bd.Reset()
}

// Retired returns the lifetime retired instruction count.
func (c *CPU) Retired() uint64 { return c.retired }

// inShadow reports whether the current instruction falls within one ROB
// window of the last long-latency miss, i.e. whether a new event can hide
// under (or overlap with) that miss.
func (c *CPU) inShadow() bool {
	return c.haveLongMiss && c.retired-c.lastLongMiss < c.cfg.ROBWindow
}

// noteLongMiss records a long-latency miss at the current instruction.
func (c *CPU) noteLongMiss() {
	c.lastLongMiss = c.retired
	c.haveLongMiss = true
}

// charge books cycles to a ground-truth category and returns them, so
// call sites can simultaneously accumulate the per-instruction cost.
func (c *CPU) charge(cat CycleCategory, cycles float64) float64 {
	c.bd[cat] += cycles
	return cycles
}

// Step retires one instruction, charging cycles and counting events.
//
// The common no-event path touches only the instruction counter, the base
// cycle cost and the fetch lookup; every event penalty comes precomputed
// from the derived table, and the kind-specific work is split into
// separate load/store/branch paths so each only tests its own hazards.
func (c *CPU) Step(in *trace.Inst) {
	c.ctr.Insts++

	// Base cost: superscalar issue slot plus dependency serialization.
	base := c.drv.invIssue
	if dep := in.DepDist; dep > 0 && dep <= 4 {
		base += c.drv.depSer[dep]
	}
	c.bd[CatBase] += base
	cost := base

	// Front end: every instruction is fetched. Instruction-side stalls
	// cannot be hidden by the out-of-order core — a starved front end
	// starves everything — so exposure stays high and an I-side L2 miss
	// pays (nearly) full memory latency. FetchFast inlines the dominant
	// same-line repeat (an all-hit with no stall terms); only line
	// transitions pay the full hierarchy walk.
	if !c.Mem.FetchFast(in.PC) {
		fr := c.Mem.Fetch(in.PC)
		if fr.L1Miss {
			c.ctr.L1IMiss++
			if fr.L2Miss {
				cost += c.charge(CatFrontEnd, c.drv.feMem)
				c.noteLongMiss()
			} else {
				cost += c.charge(CatFrontEnd, c.drv.feL2Hit)
			}
		}
		if fr.ItlbMiss {
			c.ctr.ItlbMiss++
			cost += c.charge(CatFrontEnd, c.drv.feWalk)
		}
	}
	if in.LCP {
		c.ctr.LCPStalls++
		cost += c.charge(CatLCP, c.cfg.LCPPenalty)
	}

	switch in.Kind {
	case trace.Load:
		cost += c.stepLoad(in)
	case trace.Store:
		cost += c.stepStore(in)
	case trace.Branch:
		cost += c.stepBranch(in)
	}

	c.ctr.Cycles += cost
	c.retired++
}

// StepBlock retires every instruction of the block in order: the
// block-batched equivalent of calling Step per record, used by the
// section-collection loop and Run so the per-instruction work is a direct
// call inside one tight loop.
func (c *CPU) StepBlock(insts []trace.Inst) {
	for i := range insts {
		c.Step(&insts[i])
	}
}

func (c *CPU) stepLoad(in *trace.Inst) float64 {
	c.ctr.Loads++
	c.lastDataAddr = in.Addr
	cost := 0.0

	dr := c.Mem.Data(in.Addr, true)
	if dr.Dtlb0Miss {
		c.ctr.Dtlb0LdMiss++
		cost += c.charge(CatDTLB, c.cfg.Dtlb0Penalty)
	}
	if dr.DtlbMiss {
		c.ctr.DtlbLdMiss++
		c.ctr.DtlbLdRetMiss++
		c.ctr.DtlbAnyMiss++
		// Page walks overlap with an outstanding memory miss.
		if c.inShadow() {
			cost += c.charge(CatDTLB, c.drv.walkMLP)
		} else {
			cost += c.charge(CatDTLB, c.cfg.WalkPenalty)
		}
	}
	if dr.L1Miss {
		c.ctr.L1DMiss++
		if dr.L2Miss {
			c.ctr.L2Miss++
			dependent := in.DepDist > 0 && in.DepDist <= 8
			switch {
			case dependent:
				// A nearby consumer serializes the miss: full latency.
				cost += c.charge(CatL2Miss, c.cfg.MemLatency)
			case c.inShadow():
				// Independent miss under an outstanding miss: MLP overlap.
				cost += c.charge(CatL2Miss, c.drv.memMLP)
			default:
				// Independent, isolated miss: the OOO window hides a
				// sliver while the ROB drains, then stalls.
				cost += c.charge(CatL2Miss, c.drv.memIsolated)
			}
			c.noteLongMiss()
		} else {
			// L1 miss, L2 hit: mostly hidden unless a consumer is close.
			if in.DepDist > 0 && in.DepDist <= 4 {
				cost += c.charge(CatL1DMiss, c.cfg.L2HitLatency)
			} else {
				cost += c.charge(CatL1DMiss, c.drv.l2HitOOO)
			}
		}
	}

	// Load-block and alignment hazards.
	if in.BlockSTA {
		c.ctr.LdBlockSTA++
		cost += c.charge(CatBlocks, c.cfg.LdBlockSTAPenalty)
	}
	if in.BlockSTD {
		c.ctr.LdBlockSTD++
		cost += c.charge(CatBlocks, c.cfg.LdBlockSTDPenalty)
	}
	if in.BlockOverlap {
		c.ctr.LdBlockOvSt++
		cost += c.charge(CatBlocks, c.cfg.LdBlockOvStPenalty)
	}
	if in.Misaligned {
		c.ctr.Misaligned++
		cost += c.charge(CatAlign, c.cfg.MisalignPenalty)
	}
	if in.Size != 0 && splitsLine(in.Addr, uint64(in.Size), c.drv.lineMask) {
		c.ctr.SplitLoads++
		cost += c.charge(CatAlign, c.cfg.SplitLoadPenalty)
	}
	return cost
}

func (c *CPU) stepStore(in *trace.Inst) float64 {
	c.ctr.Stores++
	c.lastDataAddr = in.Addr
	cost := 0.0

	dr := c.Mem.Data(in.Addr, false)
	if dr.DtlbMiss {
		c.ctr.DtlbAnyMiss++
		cost += c.charge(CatDTLB, c.drv.walkStore)
	}
	if dr.L1Miss {
		// Store misses drain through the store buffer; they expose only a
		// fraction of their latency and never count in the retired-load
		// miss events.
		if dr.L2Miss {
			cost += c.charge(CatStore, c.drv.memStore)
			c.noteLongMiss()
		} else {
			cost += c.charge(CatStore, c.drv.l2HitStore)
		}
	}
	if in.Misaligned {
		c.ctr.Misaligned++
		cost += c.charge(CatAlign, c.cfg.MisalignPenalty)
	}
	if in.Size != 0 && splitsLine(in.Addr, uint64(in.Size), c.drv.lineMask) {
		c.ctr.SplitStores++
		cost += c.charge(CatAlign, c.cfg.SplitStorePenalty)
	}
	return cost
}

func (c *CPU) stepBranch(in *trace.Inst) float64 {
	c.ctr.Branches++
	cost := 0.0
	if !c.BP.Lookup(in.PC, in.Target, in.Taken) {
		c.ctr.BrMispred++
		// A flush in the shadow of a pending miss costs little: the back
		// end was stalled anyway. Exposed flushes pay the full refill.
		if c.inShadow() {
			cost += c.charge(CatBranch, c.drv.mispShadow)
		} else {
			cost += c.charge(CatBranch, c.cfg.MispredictPenalty)
		}
		c.simulateWrongPath(in)
	}
	return cost
}

// simulateWrongPath models speculative execution past a mispredicted
// branch: a few wrong-path fetches and loads that perturb the I-side and
// TLB structures and bump the speculative-inclusive counters (L1I_MISSES,
// DTLB_MISSES.MISS_LD) without affecting the retired-only ones — the same
// divergence the paper's Table I events exhibit on silicon.
func (c *CPU) simulateWrongPath(in *trace.Inst) {
	for i := 0; i < c.cfg.WrongPathFetches; i++ {
		// Wrong-path fetch runs down the not-taken (or stale-target) path:
		// nearby code, within a few KB of the branch.
		wrongPC := in.PC + uint64(1+c.rng.Intn(64))<<6
		fr := c.Mem.Fetch(wrongPC)
		if fr.L1Miss {
			c.ctr.L1IMiss++
		}
		if fr.ItlbMiss {
			c.ctr.ItlbMiss++ // conservatively counted, like the raw event
		}
	}
	for i := 0; i < c.cfg.WrongPathLoads; i++ {
		wrongAddr := c.lastDataAddr + uint64(c.rng.Intn(1<<16))
		dr := c.Mem.Data(wrongAddr, true)
		if dr.Dtlb0Miss {
			c.ctr.Dtlb0LdMiss++
		}
		if dr.DtlbMiss {
			c.ctr.DtlbLdMiss++ // speculative walk: MISS_LD but not retired
			c.ctr.DtlbAnyMiss++
		}
	}
}

// Run drains a stream through the core, returning the number of
// instructions retired. The stream is consumed in blocks (see
// trace.Blocked) so producers that batch — workload generators, slice
// replays — cost one dispatch per block rather than per instruction.
func (c *CPU) Run(s trace.Stream) uint64 {
	bs := trace.Blocked(s)
	var buf [trace.DefaultBlockLen]trace.Inst
	var n uint64
	for {
		k := bs.NextBlock(buf[:])
		if k == 0 {
			return n
		}
		c.StepBlock(buf[:k])
		n += uint64(k)
	}
}
