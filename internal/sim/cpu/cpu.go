package cpu

import (
	"math/rand"

	"repro/internal/sim/branch"
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
)

// CPU is the trace-driven core model. It owns the memory hierarchy and
// branch predictor, processes one instruction per Step, and accumulates
// cycles and PMU counters.
type CPU struct {
	cfg Config
	Mem *mem.Hierarchy
	BP  *branch.Predictor

	ctr Counters
	// bd is the ground-truth cycle breakdown, reset with the counters.
	bd Breakdown
	// retired is the lifetime retired-instruction index (never reset), used
	// for ROB-window overlap decisions across section boundaries.
	retired uint64
	// lastLongMiss is the retired index of the most recent long-latency
	// (memory) miss; misses within ROBWindow of it may overlap.
	lastLongMiss uint64
	// haveLongMiss records whether lastLongMiss is valid yet.
	haveLongMiss bool
	// lastDataAddr seeds wrong-path load addresses.
	lastDataAddr uint64
	rng          *rand.Rand
}

// New builds a core with the given timing config, cache geometry and
// branch-predictor geometry.
func New(cfg Config, geom mem.Core2Geometry, bp branch.Config) *CPU {
	return &CPU{
		cfg: cfg,
		Mem: mem.NewHierarchy(geom),
		BP:  branch.New(bp),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Config returns the timing configuration.
func (c *CPU) Config() Config { return c.cfg }

// Counters returns a snapshot of the PMU state.
func (c *CPU) Counters() Counters { return c.ctr }

// CycleBreakdown returns the ground-truth cycle attribution accumulated
// since the last section reset. Real PMUs cannot produce this; the
// simulator can, which is what lets the repository check the model tree's
// "how much" answers against truth (the groundtruth experiment).
func (c *CPU) CycleBreakdown() Breakdown { return c.bd }

// ResetSection zeroes the PMU counters and cycle accumulator while keeping
// all micro-architectural state (cache contents, predictor training) warm,
// exactly like reprogramming counters between sampling sections on real
// hardware.
func (c *CPU) ResetSection() {
	c.ctr.Reset()
	c.bd.Reset()
}

// Retired returns the lifetime retired instruction count.
func (c *CPU) Retired() uint64 { return c.retired }

// inShadow reports whether the current instruction falls within one ROB
// window of the last long-latency miss, i.e. whether a new event can hide
// under (or overlap with) that miss.
func (c *CPU) inShadow() bool {
	return c.haveLongMiss && c.retired-c.lastLongMiss < c.cfg.ROBWindow
}

// noteLongMiss records a long-latency miss at the current instruction.
func (c *CPU) noteLongMiss() {
	c.lastLongMiss = c.retired
	c.haveLongMiss = true
}

// charge books cycles to a ground-truth category and returns them, so
// call sites can simultaneously accumulate the per-instruction cost.
func (c *CPU) charge(cat CycleCategory, cycles float64) float64 {
	c.bd[cat] += cycles
	return cycles
}

// Step retires one instruction, charging cycles and counting events.
func (c *CPU) Step(in *trace.Inst) {
	cfg := &c.cfg
	c.ctr.Insts++

	// Base cost: superscalar issue slot plus dependency serialization.
	base := 1 / cfg.IssueWidth
	if in.DepDist > 0 && in.DepDist <= 4 {
		base += cfg.DepSerialization / float64(in.DepDist)
	}
	c.bd[CatBase] += base
	cost := base

	// Front end: every instruction is fetched. Instruction-side stalls
	// cannot be hidden by the out-of-order core — a starved front end
	// starves everything — so exposure stays high and an I-side L2 miss
	// pays (nearly) full memory latency.
	fr := c.Mem.Fetch(in.PC)
	if fr.L1Miss {
		c.ctr.L1IMiss++
		if fr.L2Miss {
			cost += c.charge(CatFrontEnd, cfg.MemLatency*cfg.FrontEndExposure)
			c.noteLongMiss()
		} else {
			cost += c.charge(CatFrontEnd, cfg.L2HitLatency*cfg.FrontEndExposure)
		}
	}
	if fr.ItlbMiss {
		c.ctr.ItlbMiss++
		cost += c.charge(CatFrontEnd, cfg.WalkPenalty*cfg.FrontEndExposure)
	}
	if in.LCP {
		c.ctr.LCPStalls++
		cost += c.charge(CatLCP, cfg.LCPPenalty)
	}

	switch in.Kind {
	case trace.Load:
		cost += c.stepLoad(in)
	case trace.Store:
		cost += c.stepStore(in)
	case trace.Branch:
		cost += c.stepBranch(in)
	}

	c.ctr.Cycles += cost
	c.retired++
}

func (c *CPU) stepLoad(in *trace.Inst) float64 {
	cfg := &c.cfg
	c.ctr.Loads++
	c.lastDataAddr = in.Addr
	cost := 0.0

	dr := c.Mem.Data(in.Addr, true)
	if dr.Dtlb0Miss {
		c.ctr.Dtlb0LdMiss++
		cost += c.charge(CatDTLB, cfg.Dtlb0Penalty)
	}
	if dr.DtlbMiss {
		c.ctr.DtlbLdMiss++
		c.ctr.DtlbLdRetMiss++
		c.ctr.DtlbAnyMiss++
		// Page walks overlap with an outstanding memory miss.
		if c.inShadow() {
			cost += c.charge(CatDTLB, cfg.WalkPenalty*cfg.MLPResidual)
		} else {
			cost += c.charge(CatDTLB, cfg.WalkPenalty)
		}
	}
	if dr.L1Miss {
		c.ctr.L1DMiss++
		if dr.L2Miss {
			c.ctr.L2Miss++
			dependent := in.DepDist > 0 && in.DepDist <= 8
			switch {
			case dependent:
				// A nearby consumer serializes the miss: full latency.
				cost += c.charge(CatL2Miss, cfg.MemLatency)
			case c.inShadow():
				// Independent miss under an outstanding miss: MLP overlap.
				cost += c.charge(CatL2Miss, cfg.MemLatency*cfg.MLPResidual)
			default:
				// Independent, isolated miss: the OOO window hides a
				// sliver while the ROB drains, then stalls.
				cost += c.charge(CatL2Miss, cfg.MemLatency*(1-float64(cfg.ROBWindow)/cfg.IssueWidth/cfg.MemLatency))
			}
			c.noteLongMiss()
		} else {
			// L1 miss, L2 hit: mostly hidden unless a consumer is close.
			if in.DepDist > 0 && in.DepDist <= 4 {
				cost += c.charge(CatL1DMiss, cfg.L2HitLatency)
			} else {
				cost += c.charge(CatL1DMiss, cfg.L2HitLatency*cfg.OOOHidingResidual)
			}
		}
	}

	// Load-block and alignment hazards.
	if in.BlockSTA {
		c.ctr.LdBlockSTA++
		cost += c.charge(CatBlocks, cfg.LdBlockSTAPenalty)
	}
	if in.BlockSTD {
		c.ctr.LdBlockSTD++
		cost += c.charge(CatBlocks, cfg.LdBlockSTDPenalty)
	}
	if in.BlockOverlap {
		c.ctr.LdBlockOvSt++
		cost += c.charge(CatBlocks, cfg.LdBlockOvStPenalty)
	}
	if in.Misaligned {
		c.ctr.Misaligned++
		cost += c.charge(CatAlign, cfg.MisalignPenalty)
	}
	if in.SplitsLine(uint64(c.Mem.L1D.LineB())) {
		c.ctr.SplitLoads++
		cost += c.charge(CatAlign, cfg.SplitLoadPenalty)
	}
	return cost
}

func (c *CPU) stepStore(in *trace.Inst) float64 {
	cfg := &c.cfg
	c.ctr.Stores++
	c.lastDataAddr = in.Addr
	cost := 0.0

	dr := c.Mem.Data(in.Addr, false)
	if dr.DtlbMiss {
		c.ctr.DtlbAnyMiss++
		cost += c.charge(CatDTLB, cfg.WalkPenalty*cfg.StoreExposure)
	}
	if dr.L1Miss {
		// Store misses drain through the store buffer; they expose only a
		// fraction of their latency and never count in the retired-load
		// miss events.
		if dr.L2Miss {
			cost += c.charge(CatStore, cfg.MemLatency*cfg.StoreExposure)
			c.noteLongMiss()
		} else {
			cost += c.charge(CatStore, cfg.L2HitLatency*cfg.StoreExposure)
		}
	}
	if in.Misaligned {
		c.ctr.Misaligned++
		cost += c.charge(CatAlign, cfg.MisalignPenalty)
	}
	if in.SplitsLine(uint64(c.Mem.L1D.LineB())) {
		c.ctr.SplitStores++
		cost += c.charge(CatAlign, cfg.SplitStorePenalty)
	}
	return cost
}

func (c *CPU) stepBranch(in *trace.Inst) float64 {
	cfg := &c.cfg
	c.ctr.Branches++
	cost := 0.0
	if !c.BP.Lookup(in.PC, in.Target, in.Taken) {
		c.ctr.BrMispred++
		// A flush in the shadow of a pending miss costs little: the back
		// end was stalled anyway. Exposed flushes pay the full refill.
		if c.inShadow() {
			cost += c.charge(CatBranch, cfg.MispredictPenalty*cfg.ShadowResidual)
		} else {
			cost += c.charge(CatBranch, cfg.MispredictPenalty)
		}
		c.simulateWrongPath(in)
	}
	return cost
}

// simulateWrongPath models speculative execution past a mispredicted
// branch: a few wrong-path fetches and loads that perturb the I-side and
// TLB structures and bump the speculative-inclusive counters (L1I_MISSES,
// DTLB_MISSES.MISS_LD) without affecting the retired-only ones — the same
// divergence the paper's Table I events exhibit on silicon.
func (c *CPU) simulateWrongPath(in *trace.Inst) {
	for i := 0; i < c.cfg.WrongPathFetches; i++ {
		// Wrong-path fetch runs down the not-taken (or stale-target) path:
		// nearby code, within a few KB of the branch.
		wrongPC := in.PC + uint64(1+c.rng.Intn(64))<<6
		fr := c.Mem.Fetch(wrongPC)
		if fr.L1Miss {
			c.ctr.L1IMiss++
		}
		if fr.ItlbMiss {
			c.ctr.ItlbMiss++ // conservatively counted, like the raw event
		}
	}
	for i := 0; i < c.cfg.WrongPathLoads; i++ {
		wrongAddr := c.lastDataAddr + uint64(c.rng.Intn(1<<16))
		dr := c.Mem.Data(wrongAddr, true)
		if dr.Dtlb0Miss {
			c.ctr.Dtlb0LdMiss++
		}
		if dr.DtlbMiss {
			c.ctr.DtlbLdMiss++ // speculative walk: MISS_LD but not retired
			c.ctr.DtlbAnyMiss++
		}
	}
}

// Run drains a stream through the core, returning the number of
// instructions retired.
func (c *CPU) Run(s trace.Stream) uint64 {
	var in trace.Inst
	var n uint64
	for s.Next(&in) {
		c.Step(&in)
		n++
	}
	return n
}
