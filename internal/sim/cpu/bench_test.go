package cpu

import (
	"testing"

	"repro/internal/sim/branch"
	"repro/internal/sim/trace"
	"repro/internal/workload"
)

// BenchmarkStep retires realistic synthesized instruction blocks through a
// full core model. This is the simulator's innermost loop: the per-block
// path must not allocate (the harness reports allocs/op; steady state is
// zero).
func BenchmarkStep(b *testing.B) {
	core := New(defaultConfig(), core2Geometry(), branch.DefaultConfig())
	bench := workload.Suite()[0]
	gen, _ := workload.NewSectionSource(bench, 42).Next()
	var block [trace.DefaultBlockLen]trace.Inst
	gen.NextBlock(block[:])

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.StepBlock(block[:])
	}
	b.ReportMetric(float64(trace.DefaultBlockLen), "insts/op")
}
