package cpu_test

// Property and metamorphic tests for the timing model. The PMU counters
// are checked against the physics they are supposed to obey (CounterPoint
// style): event counts bounded by the retired-instruction stream that can
// produce them, cycle attribution that adds up, and monotone responses to
// capacity changes. None of these depend on the exact penalty values, so
// they survive re-tuning — unlike the golden hash, which pins one frozen
// workload.

import (
	"math"
	"testing"

	"repro/internal/march"
	"repro/internal/proptest"
	"repro/internal/sim/branch"
	"repro/internal/sim/cpu"
	"repro/internal/sim/mem"
	"repro/internal/sim/trace"
)

// genConfig materializes one of the registry machines with a generated
// wrong-path seed, so the properties hold across every preset (including
// the in-order Atom-like core), not just the Core 2 point.
func genConfig(r *proptest.Rand) cpu.Config {
	specs := march.All()
	cfg := specs[r.Intn(len(specs))].CPUConfig()
	cfg.Seed = r.Int63()
	return cfg
}

// genGeometry shrinks the Core 2 geometry so generated traces actually
// miss: tiny structures excite every Table I event within a few thousand
// instructions.
func genGeometry(r *proptest.Rand) mem.Geometry {
	return march.Core2().Geometry().Scaled(int64([]int{16, 64, 256}[r.Intn(3)]))
}

func runTrace(cfg cpu.Config, geom mem.Geometry, insts []trace.Inst) *cpu.CPU {
	c := cpu.New(cfg, geom, branch.DefaultConfig())
	c.Run(&trace.SliceStream{Insts: insts})
	return c
}

// TestCounterBounds: every PMU counter is bounded by the population of
// instructions (retired plus simulated wrong-path) that can raise it, and
// cycles are finite and at least the issue-width lower bound.
func TestCounterBounds(t *testing.T) {
	proptest.Run(t, "counter-bounds", 25, func(t *testing.T, r *proptest.Rand) {
		cfg := genConfig(r)
		insts := proptest.Insts(r, 4000)
		c := runTrace(cfg, genGeometry(r), insts)
		ctr := c.Counters()
		n := uint64(len(insts))

		if ctr.Insts != n {
			t.Fatalf("Insts = %d, want %d", ctr.Insts, n)
		}
		if ctr.Loads+ctr.Stores+ctr.Branches > n {
			t.Fatalf("kind counters %d+%d+%d exceed %d retired",
				ctr.Loads, ctr.Stores, ctr.Branches, n)
		}
		if ctr.BrMispred > ctr.Branches {
			t.Fatalf("BrMispred %d > Branches %d", ctr.BrMispred, ctr.Branches)
		}
		// Retired-load miss events nest: L2 ⊆ L1D ⊆ loads.
		if ctr.L1DMiss > ctr.Loads || ctr.L2Miss > ctr.L1DMiss {
			t.Fatalf("load miss nesting violated: L2M %d, L1DM %d, loads %d",
				ctr.L2Miss, ctr.L1DMiss, ctr.Loads)
		}
		// Speculative-inclusive events are bounded by retired population
		// plus the configured wrong-path activity per mispredict.
		wpF := uint64(cfg.WrongPathFetches) * ctr.BrMispred
		wpL := uint64(cfg.WrongPathLoads) * ctr.BrMispred
		if ctr.L1IMiss > n+wpF {
			t.Fatalf("L1IMiss %d exceeds %d fetches", ctr.L1IMiss, n+wpF)
		}
		if ctr.ItlbMiss > n+wpF {
			t.Fatalf("ItlbMiss %d exceeds %d fetches", ctr.ItlbMiss, n+wpF)
		}
		if ctr.Dtlb0LdMiss > ctr.Loads+wpL {
			t.Fatalf("Dtlb0LdMiss %d exceeds %d load translations", ctr.Dtlb0LdMiss, ctr.Loads+wpL)
		}
		// Loads reach the main DTLB only through an L0 miss, retired or not.
		if ctr.DtlbLdMiss > ctr.Dtlb0LdMiss {
			t.Fatalf("DtlbLdMiss %d > Dtlb0LdMiss %d", ctr.DtlbLdMiss, ctr.Dtlb0LdMiss)
		}
		if ctr.DtlbLdRetMiss > ctr.DtlbLdMiss {
			t.Fatalf("retired DTLB misses %d exceed speculative-inclusive %d",
				ctr.DtlbLdRetMiss, ctr.DtlbLdMiss)
		}
		if ctr.DtlbAnyMiss < ctr.DtlbLdMiss || ctr.DtlbAnyMiss > ctr.DtlbLdMiss+ctr.Stores {
			t.Fatalf("DtlbAnyMiss %d outside [%d, %d]",
				ctr.DtlbAnyMiss, ctr.DtlbLdMiss, ctr.DtlbLdMiss+ctr.Stores)
		}
		if ctr.SplitLoads > ctr.Loads || ctr.SplitStores > ctr.Stores ||
			ctr.Misaligned > ctr.Loads+ctr.Stores || ctr.LCPStalls > n {
			t.Fatalf("hazard counters exceed their populations: %+v", ctr)
		}
		if ctr.LdBlockSTA > ctr.Loads || ctr.LdBlockSTD > ctr.Loads || ctr.LdBlockOvSt > ctr.Loads {
			t.Fatalf("load-block counters exceed loads: %+v", ctr)
		}
		// Cycles: finite, and no faster than the sustained issue width.
		if math.IsNaN(ctr.Cycles) || math.IsInf(ctr.Cycles, 0) || ctr.Cycles < 0 {
			t.Fatalf("Cycles = %v", ctr.Cycles)
		}
		if floor := float64(n) / cfg.IssueWidth; ctr.Cycles < floor*(1-1e-9) {
			t.Fatalf("Cycles %v below issue-width floor %v", ctr.Cycles, floor)
		}
		if cpi := ctr.CPI(); cpi < 1/cfg.IssueWidth*(1-1e-9) {
			t.Fatalf("CPI %v beats the issue width", cpi)
		}
	})
}

// TestBreakdownSumsToCycles: the ground-truth cycle attribution accounts
// for every cycle the counters report — the categories sum to the total
// (up to accumulation-order rounding).
func TestBreakdownSumsToCycles(t *testing.T) {
	proptest.Run(t, "breakdown-sums", 25, func(t *testing.T, r *proptest.Rand) {
		c := runTrace(genConfig(r), genGeometry(r), proptest.Insts(r, 4000))
		cycles, total := c.Counters().Cycles, c.CycleBreakdown().Total()
		if diff := math.Abs(cycles - total); diff > 1e-9*math.Max(cycles, 1) {
			t.Fatalf("breakdown total %v != cycles %v (diff %g)", total, cycles, diff)
		}
		for cat, v := range c.CycleBreakdown() {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("category %v has %v cycles", cpu.CycleCategory(cat), v)
			}
		}
	})
}

// TestRunMatchesStep: the block-batched Run path retires the same
// counters, breakdown and cycle total bit-for-bit as per-instruction
// Step calls.
func TestRunMatchesStep(t *testing.T) {
	proptest.Run(t, "run-matches-step", 15, func(t *testing.T, r *proptest.Rand) {
		cfg, geom := genConfig(r), genGeometry(r)
		insts := proptest.Insts(r, r.IntBetween(1, 3000))

		blocked := runTrace(cfg, geom, insts)
		stepped := cpu.New(cfg, geom, branch.DefaultConfig())
		for i := range insts {
			stepped.Step(&insts[i])
		}
		if blocked.Counters() != stepped.Counters() {
			t.Fatalf("counters diverged:\nrun:  %+v\nstep: %+v", blocked.Counters(), stepped.Counters())
		}
		if blocked.CycleBreakdown() != stepped.CycleBreakdown() {
			t.Fatalf("breakdown diverged:\nrun:  %v\nstep: %v", blocked.CycleBreakdown(), stepped.CycleBreakdown())
		}
		if blocked.Retired() != stepped.Retired() {
			t.Fatalf("retired diverged: %d vs %d", blocked.Retired(), stepped.Retired())
		}
	})
}

// TestDeterminism: two cores with identical configuration replaying the
// same trace agree bit-for-bit.
func TestDeterminism(t *testing.T) {
	proptest.Run(t, "cpu-determinism", 10, func(t *testing.T, r *proptest.Rand) {
		cfg, geom := genConfig(r), genGeometry(r)
		insts := proptest.Insts(r, 3000)
		a, b := runTrace(cfg, geom, insts), runTrace(cfg, geom, insts)
		if a.Counters() != b.Counters() || a.CycleBreakdown() != b.CycleBreakdown() {
			t.Fatal("identical runs diverged")
		}
	})
}

// TestSectionAdditivity: splitting a run into sections with ResetSection
// (which keeps all micro-architectural state warm) partitions the
// counters — integer events sum exactly, cycles up to rounding — exactly
// like reprogramming PMU counters mid-run on hardware.
func TestSectionAdditivity(t *testing.T) {
	proptest.Run(t, "section-additivity", 15, func(t *testing.T, r *proptest.Rand) {
		cfg, geom := genConfig(r), genGeometry(r)
		insts := proptest.Insts(r, 3000)
		cut := r.IntBetween(1, len(insts)-1)

		whole := runTrace(cfg, geom, insts)

		split := cpu.New(cfg, geom, branch.DefaultConfig())
		split.Run(&trace.SliceStream{Insts: insts[:cut]})
		first := split.Counters()
		split.ResetSection()
		split.Run(&trace.SliceStream{Insts: insts[cut:]})
		second := split.Counters()

		sumU := func(a, b, want uint64, name string) {
			if a+b != want {
				t.Fatalf("%s: %d + %d != %d", name, a, b, want)
			}
		}
		w := whole.Counters()
		sumU(first.Insts, second.Insts, w.Insts, "Insts")
		sumU(first.Loads, second.Loads, w.Loads, "Loads")
		sumU(first.Stores, second.Stores, w.Stores, "Stores")
		sumU(first.Branches, second.Branches, w.Branches, "Branches")
		sumU(first.BrMispred, second.BrMispred, w.BrMispred, "BrMispred")
		sumU(first.L1DMiss, second.L1DMiss, w.L1DMiss, "L1DMiss")
		sumU(first.L1IMiss, second.L1IMiss, w.L1IMiss, "L1IMiss")
		sumU(first.L2Miss, second.L2Miss, w.L2Miss, "L2Miss")
		sumU(first.Dtlb0LdMiss, second.Dtlb0LdMiss, w.Dtlb0LdMiss, "Dtlb0LdMiss")
		sumU(first.DtlbLdMiss, second.DtlbLdMiss, w.DtlbLdMiss, "DtlbLdMiss")
		sumU(first.ItlbMiss, second.ItlbMiss, w.ItlbMiss, "ItlbMiss")
		if diff := math.Abs(first.Cycles + second.Cycles - w.Cycles); diff > 1e-9*math.Max(w.Cycles, 1) {
			t.Fatalf("Cycles: %v + %v != %v", first.Cycles, second.Cycles, w.Cycles)
		}
	})
}

// enlargeCache doubles a cache's associativity with the set count fixed
// (size scales with ways), the geometry change for which per-set LRU
// stack inclusion guarantees miss monotonicity.
func enlargeCache(c mem.CacheConfig) mem.CacheConfig {
	c.Ways *= 2
	c.SizeB *= 2
	return c
}

func enlargeTLB(t mem.TLBConfig) mem.TLBConfig {
	t.Ways *= 2
	t.Entries *= 2
	return t
}

// TestEnlargementMonotonic: enlarging one cache or TLB (same sets, more
// ways) never increases that structure's miss counter on the same trace.
// The access sequence each structure sees is geometry-independent — it is
// driven by the trace, by outcomes of structures that did not change, and
// by a branch predictor and wrong-path RNG that never consult cache
// state — so per-set LRU stack inclusion applies end-to-end through the
// full CPU, wrong-path simulation and prefetchers included.
func TestEnlargementMonotonic(t *testing.T) {
	structures := []struct {
		name    string
		enlarge func(g mem.Geometry) mem.Geometry
		misses  func(c *cpu.CPU) uint64
	}{
		{"L1D", func(g mem.Geometry) mem.Geometry { g.L1D = enlargeCache(g.L1D); return g },
			func(c *cpu.CPU) uint64 { return c.Counters().L1DMiss }},
		{"L1I", func(g mem.Geometry) mem.Geometry { g.L1I = enlargeCache(g.L1I); return g },
			func(c *cpu.CPU) uint64 { return c.Counters().L1IMiss }},
		{"L2", func(g mem.Geometry) mem.Geometry { g.L2 = enlargeCache(g.L2); return g },
			func(c *cpu.CPU) uint64 { return c.Mem.L2.Misses }},
		{"DTLB0", func(g mem.Geometry) mem.Geometry { g.DTLB0 = enlargeTLB(g.DTLB0); return g },
			func(c *cpu.CPU) uint64 { return c.Counters().Dtlb0LdMiss }},
		{"DTLB", func(g mem.Geometry) mem.Geometry { g.DTLB = enlargeTLB(g.DTLB); return g },
			func(c *cpu.CPU) uint64 { return c.Mem.DTLB.Misses() }},
		{"ITLB", func(g mem.Geometry) mem.Geometry { g.ITLB = enlargeTLB(g.ITLB); return g },
			func(c *cpu.CPU) uint64 { return c.Counters().ItlbMiss }},
	}
	for _, s := range structures {
		s := s
		proptest.Run(t, "enlarge-"+s.name, 10, func(t *testing.T, r *proptest.Rand) {
			cfg := genConfig(r)
			geom := genGeometry(r)
			insts := proptest.Insts(r, 4000)
			small := runTrace(cfg, geom, insts)
			large := runTrace(cfg, s.enlarge(geom), insts)
			if ms, ml := s.misses(small), s.misses(large); ml > ms {
				t.Fatalf("enlarging %s raised its misses %d -> %d", s.name, ms, ml)
			}
		})
	}
}

// TestPrefetchAblation: the data-side prefetcher fills only the L2, so
// disabling it leaves the L1D demand stream untouched (exact equality)
// and — on these deterministic traces — never *reduces* L2 demand
// misses: a prefetcher that only ever adds useful lines can only help.
func TestPrefetchAblation(t *testing.T) {
	proptest.Run(t, "prefetch-ablation", 15, func(t *testing.T, r *proptest.Rand) {
		cfg, geom := genConfig(r), genGeometry(r)
		insts := proptest.Insts(r, 4000)

		on := runTrace(cfg, geom, insts)

		off := cpu.New(cfg, geom, branch.DefaultConfig())
		off.Mem.DataPF = nil
		off.Run(&trace.SliceStream{Insts: insts})

		if on.Counters().L1DMiss != off.Counters().L1DMiss {
			t.Fatalf("disabling the data prefetcher changed L1D misses: %d vs %d",
				on.Counters().L1DMiss, off.Counters().L1DMiss)
		}
		if off.Mem.L2DataMisses < on.Mem.L2DataMisses {
			t.Fatalf("disabling the data prefetcher reduced L2 data misses: %d -> %d",
				on.Mem.L2DataMisses, off.Mem.L2DataMisses)
		}
		if off.Counters().L2Miss < on.Counters().L2Miss {
			t.Fatalf("disabling the data prefetcher reduced retired L2 misses: %d -> %d",
				on.Counters().L2Miss, off.Counters().L2Miss)
		}
	})
}
