package cpu

import (
	"math"
	"testing"

	"repro/internal/sim/branch"
	"repro/internal/sim/trace"
)

func newCore() *CPU {
	return New(defaultConfig(), core2Geometry(), branch.DefaultConfig())
}

// run drives a slice of instructions through a fresh core and returns it.
func run(insts []trace.Inst) *CPU {
	c := newCore()
	c.Run(&trace.SliceStream{Insts: insts})
	return c
}

// fill produces n Other instructions walking a tiny code loop, which hit
// the L1I after the first line.
func fill(n int, startPC uint64) []trace.Inst {
	out := make([]trace.Inst, n)
	for i := range out {
		out[i] = trace.Inst{Kind: trace.Other, PC: startPC + uint64(i%16)*4}
	}
	return out
}

func TestBaseCPIApproachesIssueWidth(t *testing.T) {
	c := run(fill(10000, 0x1000))
	cpi := c.Counters().CPI()
	want := 1 / c.Config().IssueWidth
	if math.Abs(cpi-want) > 0.02 {
		t.Errorf("hazard-free CPI %v, want ~%v", cpi, want)
	}
}

func TestDependencySerializationCost(t *testing.T) {
	indep := fill(5000, 0x1000)
	dep := fill(5000, 0x1000)
	for i := range dep {
		dep[i].DepDist = 1
	}
	ci := run(indep).Counters().CPI()
	cd := run(dep).Counters().CPI()
	if cd <= ci {
		t.Errorf("dependent CPI %v not above independent %v", cd, ci)
	}
}

// coldLoads builds n loads at fresh 4KB-spaced addresses (every one misses
// caches and TLBs), separated by gap filler instructions.
func coldLoads(n, gap int, dep uint8) []trace.Inst {
	var out []trace.Inst
	addr := uint64(0x10_0000_0000)
	for i := 0; i < n; i++ {
		out = append(out, trace.Inst{Kind: trace.Load, PC: 0x1000, Addr: addr, Size: 8, DepDist: dep})
		addr += 1 << 20 // new page and line every time, prefetch-proof
		out = append(out, fill(gap, 0x2000)...)
	}
	return out
}

func TestDependentMissesCostMoreThanClustered(t *testing.T) {
	// Clustered independent misses overlap (MLP); dependent misses
	// serialize at full memory latency. Same event counts, very
	// different cycles — the paper's central interaction effect.
	clustered := run(coldLoads(200, 10, 0)) // 11 instructions apart, inside ROB window
	chase := run(coldLoads(200, 10, 1))
	cc := clustered.Counters()
	ch := chase.Counters()
	if cc.L2Miss != ch.L2Miss {
		t.Fatalf("miss counts differ: %d vs %d", cc.L2Miss, ch.L2Miss)
	}
	if ch.CPI() < cc.CPI()*1.8 {
		t.Errorf("chase CPI %v not >> clustered CPI %v", ch.CPI(), cc.CPI())
	}
}

func TestIsolatedMissesBetweenClusteredAndChase(t *testing.T) {
	clustered := run(coldLoads(100, 10, 0)).Counters().CPI()
	isolated := run(coldLoads(100, 200, 0)).Counters().CPI()
	chase := run(coldLoads(100, 10, 1)).Counters().CPI()
	// Per-miss cost ordering holds even though isolated runs have more
	// filler (compare per-miss penalty, not raw CPI).
	perMiss := func(cpi float64, instPerMiss int) float64 {
		base := 1 / defaultConfig().IssueWidth
		return (cpi - base) * float64(instPerMiss)
	}
	pClustered := perMiss(clustered, 11)
	pIsolated := perMiss(isolated, 201)
	pChase := perMiss(chase, 11)
	if !(pClustered < pIsolated && pIsolated < pChase*1.2) {
		t.Errorf("per-miss penalties: clustered %v, isolated %v, chase %v; want increasing",
			pClustered, pIsolated, pChase)
	}
}

func TestMispredictShadowing(t *testing.T) {
	// A mispredicted branch directly behind an L2 miss is largely hidden;
	// an exposed one pays the full flush.
	mispredictAfterMiss := func(withMiss bool) float64 {
		var insts []trace.Inst
		addr := uint64(0x20_0000_0000)
		for i := 0; i < 300; i++ {
			if withMiss {
				insts = append(insts, trace.Inst{Kind: trace.Load, PC: 0x1000, Addr: addr, Size: 8})
				addr += 1 << 20
			} else {
				insts = append(insts, trace.Inst{Kind: trace.Other, PC: 0x1000})
			}
			// A never-before-seen branch PC with a random-ish outcome:
			// guaranteed cold-BTB mispredicts on taken.
			insts = append(insts, trace.Inst{
				Kind: trace.Branch, PC: 0x9000_0000 + uint64(i)*64, Taken: true,
				Target: 0x9100_0000 + uint64(i)*64,
			})
			insts = append(insts, fill(30, 0x2000)...)
		}
		c := run(insts)
		return c.Counters().Cycles
	}
	// Compare the branch cost contribution by subtracting a run without
	// branches... simpler: the shadowed configuration's *additional*
	// cycles over its no-branch baseline must be smaller.
	withMissCycles := mispredictAfterMiss(true)
	noMissCycles := mispredictAfterMiss(false)
	// Baselines without the branch instructions.
	base := func(withMiss bool) float64 {
		var insts []trace.Inst
		addr := uint64(0x20_0000_0000)
		for i := 0; i < 300; i++ {
			if withMiss {
				insts = append(insts, trace.Inst{Kind: trace.Load, PC: 0x1000, Addr: addr, Size: 8})
				addr += 1 << 20
			} else {
				insts = append(insts, trace.Inst{Kind: trace.Other, PC: 0x1000})
			}
			insts = append(insts, fill(30, 0x2000)...)
		}
		return run(insts).Counters().Cycles
	}
	shadowedCost := withMissCycles - base(true)
	exposedCost := noMissCycles - base(false)
	if shadowedCost >= exposedCost {
		t.Errorf("shadowed mispredict cost %v not below exposed %v", shadowedCost, exposedCost)
	}
}

func TestEventCountersExact(t *testing.T) {
	insts := []trace.Inst{
		{Kind: trace.Store, PC: 0x1000, Addr: 0x5000, Size: 8},
		{Kind: trace.Load, PC: 0x1004, Addr: 0x5000, Size: 8, BlockSTA: true, BlockSTD: true},
		{Kind: trace.Load, PC: 0x1008, Addr: 0x5008, Size: 8, BlockOverlap: true, Misaligned: true},
		{Kind: trace.Load, PC: 0x100C, Addr: 0x503C, Size: 8},  // splits 0x5040 line boundary
		{Kind: trace.Store, PC: 0x1010, Addr: 0x507C, Size: 8}, // split store
		{Kind: trace.Other, PC: 0x1014, LCP: true},
		{Kind: trace.Branch, PC: 0x1018, Taken: false},
	}
	c := run(insts)
	ctr := c.Counters()
	if ctr.Insts != 7 {
		t.Errorf("Insts = %d", ctr.Insts)
	}
	if ctr.Loads != 3 || ctr.Stores != 2 || ctr.Branches != 1 {
		t.Errorf("mix %d/%d/%d", ctr.Loads, ctr.Stores, ctr.Branches)
	}
	if ctr.LdBlockSTA != 1 || ctr.LdBlockSTD != 1 || ctr.LdBlockOvSt != 1 {
		t.Errorf("load blocks %d/%d/%d", ctr.LdBlockSTA, ctr.LdBlockSTD, ctr.LdBlockOvSt)
	}
	if ctr.Misaligned != 1 {
		t.Errorf("Misaligned = %d", ctr.Misaligned)
	}
	if ctr.SplitLoads != 1 || ctr.SplitStores != 1 {
		t.Errorf("splits %d/%d", ctr.SplitLoads, ctr.SplitStores)
	}
	if ctr.LCPStalls != 1 {
		t.Errorf("LCPStalls = %d", ctr.LCPStalls)
	}
}

func TestResetSectionKeepsWarmth(t *testing.T) {
	c := newCore()
	insts := make([]trace.Inst, 0, 2000)
	for i := 0; i < 1000; i++ {
		insts = append(insts, trace.Inst{
			Kind: trace.Load, PC: 0x1000 + uint64(i%16)*4,
			Addr: uint64(i%64) * 64, Size: 8,
		})
	}
	c.Run(&trace.SliceStream{Insts: insts})
	cold := c.Counters().CPI()
	c.ResetSection()
	if c.Counters().Insts != 0 {
		t.Fatal("ResetSection did not clear counters")
	}
	c.Run(&trace.SliceStream{Insts: insts})
	warm := c.Counters().CPI()
	if warm >= cold {
		t.Errorf("warm CPI %v not below cold CPI %v", warm, cold)
	}
	if c.Retired() != 2000 {
		t.Errorf("Retired = %d, want lifetime 2000", c.Retired())
	}
}

func TestWrongPathInflatesSpeculativeCounters(t *testing.T) {
	// Mispredicts spawn wrong-path loads: DtlbLdMiss (speculative) must
	// exceed DtlbLdRetMiss (retired-only).
	var insts []trace.Inst
	for i := 0; i < 4000; i++ {
		// Fresh branch PCs force constant mispredicts.
		insts = append(insts, trace.Inst{
			Kind: trace.Branch, PC: 0x5000_0000 + uint64(i)*64, Taken: true,
			Target: 0x5100_0000 + uint64(i)*64,
		})
		insts = append(insts, trace.Inst{Kind: trace.Load, PC: 0x1000, Addr: uint64(i) * 8192, Size: 8})
	}
	ctr := run(insts).Counters()
	if ctr.BrMispred == 0 {
		t.Fatal("no mispredicts generated")
	}
	if ctr.DtlbLdMiss <= ctr.DtlbLdRetMiss {
		t.Errorf("speculative walks %d not above retired %d", ctr.DtlbLdMiss, ctr.DtlbLdRetMiss)
	}
}

func TestFrontEndMissCosts(t *testing.T) {
	// Code footprint far beyond L1I: every 16th instruction fetch touches
	// a new line. With a data-free stream the CPI rise is pure front end.
	small := make([]trace.Inst, 20000)
	big := make([]trace.Inst, 20000)
	for i := range small {
		small[i] = trace.Inst{Kind: trace.Other, PC: uint64(i%1024) * 4}      // 4 KB loop
		big[i] = trace.Inst{Kind: trace.Other, PC: uint64(i) * 4 % (8 << 20)} // 8 MB walk
	}
	cs := run(small).Counters()
	cb := run(big).Counters()
	if cb.L1IMiss <= cs.L1IMiss {
		t.Fatalf("big-code L1I misses %d not above small-code %d", cb.L1IMiss, cs.L1IMiss)
	}
	if cb.CPI() <= cs.CPI() {
		t.Errorf("big-code CPI %v not above small-code %v", cb.CPI(), cs.CPI())
	}
}

func TestCountersPerInst(t *testing.T) {
	var ctr Counters
	if ctr.CPI() != 0 || ctr.PerInst(5) != 0 {
		t.Error("idle counters should report zero ratios")
	}
	ctr.Insts = 100
	ctr.Cycles = 250
	if ctr.CPI() != 2.5 {
		t.Errorf("CPI = %v", ctr.CPI())
	}
	if ctr.PerInst(20) != 0.2 {
		t.Errorf("PerInst = %v", ctr.PerInst(20))
	}
}

func TestStoreMissesCheaperThanLoadMisses(t *testing.T) {
	mk := func(kind trace.Kind) []trace.Inst {
		var out []trace.Inst
		addr := uint64(0x30_0000_0000)
		for i := 0; i < 300; i++ {
			out = append(out, trace.Inst{Kind: kind, PC: 0x1000, Addr: addr, Size: 8})
			addr += 1 << 20
			out = append(out, fill(50, 0x2000)...)
		}
		return out
	}
	loadCPI := run(mk(trace.Load)).Counters().CPI()
	storeCPI := run(mk(trace.Store)).Counters().CPI()
	if storeCPI >= loadCPI {
		t.Errorf("store-miss CPI %v not below load-miss CPI %v (store buffering)", storeCPI, loadCPI)
	}
}
