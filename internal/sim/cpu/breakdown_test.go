package cpu

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim/trace"
)

// TestBreakdownSumsToCycles is the accounting invariant: every cycle the
// model charges is attributed to exactly one category, so the breakdown
// total must equal the PMU cycle counter for any instruction mix.
func TestBreakdownSumsToCycles(t *testing.T) {
	var insts []trace.Inst
	// A messy mix exercising every charging path.
	addr := uint64(0x40_0000_0000)
	for i := 0; i < 2000; i++ {
		switch i % 7 {
		case 0:
			insts = append(insts, trace.Inst{Kind: trace.Load, PC: 0x1000, Addr: addr, Size: 8, DepDist: uint8(i % 3)})
			addr += 1 << 19
		case 1:
			insts = append(insts, trace.Inst{Kind: trace.Store, PC: 0x1004, Addr: addr, Size: 8, Misaligned: i%2 == 0})
		case 2:
			insts = append(insts, trace.Inst{Kind: trace.Branch, PC: 0x9000_0000 + uint64(i)*64, Taken: true, Target: 0x9100_0000 + uint64(i)*64})
		case 3:
			insts = append(insts, trace.Inst{Kind: trace.Load, PC: 0x1008, Addr: 0x503C + uint64(i%4), Size: 8, BlockSTA: true})
		case 4:
			insts = append(insts, trace.Inst{Kind: trace.Other, PC: uint64(i) * 4 % (4 << 20), LCP: i%3 == 0})
		default:
			insts = append(insts, trace.Inst{Kind: trace.Other, PC: 0x2000, DepDist: 2})
		}
	}
	c := run(insts)
	bd := c.CycleBreakdown()
	if diff := math.Abs(bd.Total() - c.Counters().Cycles); diff > 1e-6 {
		t.Errorf("breakdown total %v != cycles %v (diff %v)", bd.Total(), c.Counters().Cycles, diff)
	}
}

func TestBreakdownCategoriesRespondToWorkload(t *testing.T) {
	// Pure ALU stream: everything is base once the one-line loop's cold
	// fetch amortizes.
	c := run(fill(50000, 0x1000))
	bd := c.CycleBreakdown()
	if bd.Share(CatBase) < 0.97 {
		t.Errorf("ALU stream base share %v, want ~1", bd.Share(CatBase))
	}
	// Chase stream: l2miss dominates.
	c = run(coldLoads(300, 5, 1))
	bd = c.CycleBreakdown()
	if bd.Share(CatL2Miss) < 0.5 {
		t.Errorf("chase L2 share %v, want > 0.5", bd.Share(CatL2Miss))
	}
}

func TestBreakdownResetWithSection(t *testing.T) {
	c := run(coldLoads(50, 5, 1))
	if c.CycleBreakdown().Total() == 0 {
		t.Fatal("no cycles attributed")
	}
	c.ResetSection()
	if c.CycleBreakdown().Total() != 0 {
		t.Error("ResetSection did not clear the breakdown")
	}
}

func TestBreakdownString(t *testing.T) {
	var bd Breakdown
	bd[CatBase] = 3
	bd[CatL2Miss] = 7
	s := bd.String()
	if !strings.Contains(s, "l2miss:70.0%") || !strings.Contains(s, "base:30.0%") {
		t.Errorf("String = %q", s)
	}
	// Largest first.
	if strings.Index(s, "l2miss") > strings.Index(s, "base") {
		t.Errorf("not sorted: %q", s)
	}
}

func TestCategoryNames(t *testing.T) {
	for c := CycleCategory(0); c < numCategories; c++ {
		if c.String() == "" || strings.HasPrefix(c.String(), "cat(") {
			t.Errorf("category %d has no name", int(c))
		}
	}
	if !strings.HasPrefix(CycleCategory(99).String(), "cat(") {
		t.Error("unknown category should render as cat(n)")
	}
}

func TestBreakdownIdleShare(t *testing.T) {
	var bd Breakdown
	if bd.Share(CatBase) != 0 {
		t.Error("idle share nonzero")
	}
}
