package cpu

// Counters is the performance-monitoring counter file of the simulated
// core: raw event counts accumulated since the last section reset. Field
// names follow the paper's Table I metric abbreviations; each comment gives
// the hardware event the paper programmed.
type Counters struct {
	// Cycles is CPU_CLK_UNHALTED.CORE; fractional cycles accumulate from
	// the width-based base cost and are rounded only when read.
	Cycles float64
	// Insts is INST_RETIRED.ANY.
	Insts uint64
	// Loads is INST_RETIRED.LOADS.
	Loads uint64
	// Stores is INST_RETIRED.STORES.
	Stores uint64
	// Branches is BR_INST_RETIRED.ANY.
	Branches uint64
	// BrMispred is BR_INST_RETIRED.MISPRED.
	BrMispred uint64
	// L1DMiss is MEM_LOAD_RETIRED.L1D_LINE_MISS (retired loads missing
	// L1D).
	L1DMiss uint64
	// L1IMiss is L1I_MISSES (includes wrong-path fetches, as the real
	// event does).
	L1IMiss uint64
	// L2Miss is MEM_LOAD_RETIRED.L2_LINE_MISS (retired loads missing L2).
	L2Miss uint64
	// Dtlb0LdMiss is DTLB_MISSES.L0_MISS_LD.
	Dtlb0LdMiss uint64
	// DtlbLdMiss is DTLB_MISSES.MISS_LD — load page walks *including
	// speculative wrong-path loads*.
	DtlbLdMiss uint64
	// DtlbLdRetMiss is MEM_LOAD_RETIRED.DTLB_MISS — retired-only load page
	// walks.
	DtlbLdRetMiss uint64
	// DtlbAnyMiss is DTLB_MISSES.ANY (loads + stores + speculative).
	DtlbAnyMiss uint64
	// ItlbMiss is ITLB.MISS_RETIRED.
	ItlbMiss uint64
	// LdBlockSTA is LOAD_BLOCK.STA.
	LdBlockSTA uint64
	// LdBlockSTD is LOAD_BLOCK.STD.
	LdBlockSTD uint64
	// LdBlockOvSt is LOAD_BLOCK.OVERLAP_STORE.
	LdBlockOvSt uint64
	// Misaligned is MISALIGN_MEM_REF.
	Misaligned uint64
	// SplitLoads is L1D_SPLIT.LOADS.
	SplitLoads uint64
	// SplitStores is L1D_SPLIT.STORES.
	SplitStores uint64
	// LCPStalls is ILD_STALL (length-changing-prefix stalls).
	LCPStalls uint64
}

// CPI returns cycles per retired instruction (0 when idle).
func (c Counters) CPI() float64 {
	if c.Insts == 0 {
		return 0
	}
	return c.Cycles / float64(c.Insts)
}

// PerInst returns count/Insts (0 when idle), the per-instruction ratio used
// for every Table I predictor.
func (c Counters) PerInst(count uint64) float64 {
	if c.Insts == 0 {
		return 0
	}
	return float64(count) / float64(c.Insts)
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }
