// Package cpu implements the trace-driven timing model of a Core-2-Duo-like
// out-of-order superscalar core together with its performance-monitoring
// counters.
//
// The model is interval-analysis style: a base cost per retired instruction
// (issue-width plus dependency serialization) plus penalties for
// micro-architectural events. Crucially — and this is the property the
// reproduced paper hinges on — the *effective* penalty of an event depends
// on context:
//
//   - Independent L2 data misses that fall within one reorder-buffer window
//     of each other overlap (memory-level parallelism) and cost only a
//     residual fraction of the memory latency; dependent misses (pointer
//     chasing) serialize and pay the full latency.
//   - L1D misses that hit L2 are largely hidden by out-of-order execution
//     unless a consumer follows closely.
//   - Branch mispredict flushes are cheap when they occur in the shadow of
//     an outstanding long-latency miss.
//   - Instruction-side misses starve the front end and cannot be hidden;
//     an L1I miss that also misses L2 pays full memory latency, which is
//     what makes the paper's LM18 class (high L2M + high L1IM, CPI ~ 2.2)
//     so slow.
//
// A uniform fixed-penalty model therefore mis-prices events, while a model
// tree that first classifies sections can fit accurate per-class linear
// models — the paper's thesis, reproduced mechanistically.
package cpu

// Config holds the timing parameters of the modeled core. Latencies are in
// core cycles at the paper's 2.4 GHz operating point.
type Config struct {
	// IssueWidth is the sustained superscalar width (Core 2: 4).
	IssueWidth float64
	// DepSerialization is the extra cycle cost charged when an instruction
	// has a producer within its dependency distance, modeling limited ILP.
	DepSerialization float64
	// MemLatency is the L2-miss-to-DRAM latency.
	MemLatency float64
	// L2HitLatency is the L1-miss/L2-hit latency.
	L2HitLatency float64
	// MispredictPenalty is the pipeline flush + refetch cost of a branch
	// mispredict when fully exposed.
	MispredictPenalty float64
	// Dtlb0Penalty is the cost of missing the L0 load DTLB but hitting the
	// main DTLB.
	Dtlb0Penalty float64
	// WalkPenalty is the page-walk cost of a last-level TLB miss.
	WalkPenalty float64
	// LdBlockSTAPenalty, LdBlockSTDPenalty and LdBlockOvStPenalty price
	// the three load-block conditions.
	LdBlockSTAPenalty  float64
	LdBlockSTDPenalty  float64
	LdBlockOvStPenalty float64
	// MisalignPenalty prices a misaligned memory reference.
	MisalignPenalty float64
	// SplitLoadPenalty and SplitStorePenalty price cache-line-crossing
	// accesses.
	SplitLoadPenalty  float64
	SplitStorePenalty float64
	// LCPPenalty is the pre-decoder stall for a length-changing prefix.
	LCPPenalty float64

	// ROBWindow is the reorder-buffer depth in instructions; independent
	// long-latency misses within this distance overlap.
	ROBWindow uint64
	// MLPResidual is the fraction of MemLatency charged for an overlapped
	// (memory-parallel) L2 miss.
	MLPResidual float64
	// OOOHidingResidual is the fraction of L2HitLatency charged for an
	// L1D miss whose consumer is far away.
	OOOHidingResidual float64
	// ShadowResidual is the fraction of MispredictPenalty charged when the
	// flush happens under an outstanding miss.
	ShadowResidual float64
	// StoreExposure is the fraction of store-side miss latency charged;
	// stores retire off the critical path through store buffers.
	StoreExposure float64
	// FrontEndExposure is the fraction of instruction-side L2-hit latency
	// charged for an L1I miss (decode queue slack hides a little).
	FrontEndExposure float64

	// WrongPathFetches is the number of wrong-path instruction fetches
	// simulated after each mispredict; they perturb the I-side structures
	// and inflate speculative-inclusive counters, which is what separates
	// DtlbLdM from DtlbLdReM on real hardware.
	WrongPathFetches int
	// WrongPathLoads is the number of wrong-path data loads simulated
	// after each mispredict.
	WrongPathLoads int

	// Seed drives wrong-path address generation.
	Seed int64
}

// This package holds no preset values: concrete machine parameters
// (Core 2, NetBurst, in-order cores, ...) are declared in internal/march
// and materialize into a Config via MachineSpec.CPUConfig.
