package cpu

import (
	"testing"

	"repro/internal/sim/branch"
	"repro/internal/sim/trace"
)

// mispredictTrace builds a stream whose only penalty source is cold-BTB
// mispredicts.
func mispredictTrace(n int) []trace.Inst {
	var out []trace.Inst
	for i := 0; i < n; i++ {
		out = append(out, trace.Inst{
			Kind: trace.Branch, PC: 0x1000_0000 + uint64(i)*64, Taken: true,
			Target: 0x2000_0000 + uint64(i)*64,
		})
		out = append(out, fill(20, 0x3000)...)
	}
	return out
}

func TestNetBurstMispredictsCostMore(t *testing.T) {
	insts := mispredictTrace(500)
	core2 := New(defaultConfig(), core2Geometry(), branch.DefaultConfig())
	core2.Run(&trace.SliceStream{Insts: insts})
	nb := New(netBurstConfig(), core2Geometry(), branch.DefaultConfig())
	nb.Run(&trace.SliceStream{Insts: insts})
	c2, cn := core2.Counters(), nb.Counters()
	if cn.BrMispred != c2.BrMispred {
		t.Fatalf("mispredict counts differ: %d vs %d", cn.BrMispred, c2.BrMispred)
	}
	if cn.CPI() <= c2.CPI() {
		t.Errorf("NetBurst CPI %v not above Core 2 CPI %v on mispredict-bound code", cn.CPI(), c2.CPI())
	}
}

func TestInOrderExposesAllPenalties(t *testing.T) {
	// Clustered independent misses: nearly free on the OOO core (MLP),
	// fully exposed in order.
	insts := coldLoads(200, 10, 0)
	ooo := New(defaultConfig(), core2Geometry(), branch.DefaultConfig())
	ooo.Run(&trace.SliceStream{Insts: insts})
	ino := New(inOrderConfig(), core2Geometry(), branch.DefaultConfig())
	ino.Run(&trace.SliceStream{Insts: insts})
	if ino.Counters().CPI() < ooo.Counters().CPI()*2 {
		t.Errorf("in-order CPI %v not far above OOO CPI %v on overlappable misses",
			ino.Counters().CPI(), ooo.Counters().CPI())
	}
}

func TestInOrderMatchesNominalPenalties(t *testing.T) {
	// On the in-order core a single isolated cold load costs the full
	// nominal walk + memory latency — the regime where the traditional
	// fixed-penalty model is exact.
	cfg := inOrderConfig()
	core := New(cfg, core2Geometry(), branch.DefaultConfig())
	warm := fill(1000, 0x1000)
	core.Run(&trace.SliceStream{Insts: warm})
	before := core.Counters().Cycles
	core.Run(&trace.SliceStream{Insts: []trace.Inst{
		{Kind: trace.Load, PC: 0x1000, Addr: 0x70_0000_0000, Size: 8},
	}})
	delta := core.Counters().Cycles - before
	want := 1/cfg.IssueWidth + cfg.MemLatency + cfg.WalkPenalty + cfg.Dtlb0Penalty
	if delta < want*0.95 || delta > want*1.05 {
		t.Errorf("isolated in-order cold load cost %v cycles, want ~%v", delta, want)
	}
}
