// Package trace defines the dynamic instruction representation consumed by
// the CPU timing model and produced by the workload generators. An
// instruction stream is pulled one record at a time, so multi-billion
// instruction executions never materialize in memory.
package trace

// Kind classifies a dynamic instruction.
type Kind uint8

const (
	// Other covers ALU/FP/move instructions with no memory or control
	// side effects relevant to the model.
	Other Kind = iota
	// Load is a memory read.
	Load
	// Store is a memory write.
	Store
	// Branch is a conditional or unconditional control transfer.
	Branch
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return "other"
	}
}

// Inst is one dynamic instruction record.
type Inst struct {
	// Kind classifies the instruction.
	Kind Kind
	// PC is the instruction address (drives L1I/ITLB behaviour).
	PC uint64
	// Addr is the effective address for loads and stores.
	Addr uint64
	// Size is the access size in bytes for loads and stores.
	Size uint8
	// Taken and Target describe branch outcomes.
	Taken  bool
	Target uint64
	// DepDist is the distance (in instructions) from this instruction to
	// its first consumer: 0 means no nearby consumer (independent work
	// follows, so the out-of-order core can hide latency), small values
	// mean a tight dependency chain (latency is exposed). Workload
	// generators set this from their dependency profile.
	DepDist uint8
	// LCP marks an instruction whose encoding carries a length-changing
	// prefix, causing a pre-decode stall (the paper's LCP event).
	LCP bool
	// Misaligned marks a memory access whose address is not naturally
	// aligned for its size.
	Misaligned bool
	// BlockSTA, BlockSTD and BlockOverlap mark loads that are blocked by,
	// respectively, an unresolved store address, unavailable store data,
	// and a partially overlapping earlier store (failed forwarding).
	BlockSTA, BlockSTD, BlockOverlap bool
}

// SplitsLine reports whether a memory access crosses a cache-line boundary
// of the given line size (the L1D split load/store events).
func (in *Inst) SplitsLine(lineB uint64) bool {
	if in.Kind != Load && in.Kind != Store || in.Size == 0 {
		return false
	}
	start := in.Addr
	end := in.Addr + uint64(in.Size) - 1
	return start/lineB != end/lineB
}

// Stream produces instruction records. Next fills *Inst and reports false
// when the stream is exhausted.
type Stream interface {
	Next(*Inst) bool
}

// DefaultBlockLen is the batch size used by block-driven consumers (the
// CPU run loop and dataset collection): large enough to amortize one
// dynamic dispatch over hundreds of records, small enough that a block of
// Inst stays resident in the host's L1 data cache.
const DefaultBlockLen = 256

// BlockStream produces instruction records in batches. NextBlock fills a
// prefix of buf and returns how many records were written; 0 reports
// exhaustion. A producer may return short (non-zero) counts mid-stream;
// consumers keep calling until 0. Filling a caller-owned buffer keeps the
// consumer loop allocation-free and costs one dispatch per block instead
// of one per instruction.
type BlockStream interface {
	NextBlock(buf []Inst) int
}

// Blocked adapts a Stream to BlockStream. Streams that already implement
// BlockStream (e.g. workload generators) are returned as-is, so wrapping
// is free for the fast producers and a thin per-record loop otherwise.
func Blocked(s Stream) BlockStream {
	if bs, ok := s.(BlockStream); ok {
		return bs
	}
	return &blockedStream{s: s}
}

type blockedStream struct{ s Stream }

// NextBlock implements BlockStream by pulling records one at a time from
// the wrapped stream, preserving its exact record sequence.
func (b *blockedStream) NextBlock(buf []Inst) int {
	n := 0
	for n < len(buf) && b.s.Next(&buf[n]) {
		n++
	}
	return n
}

// SliceStream adapts a fixed instruction slice to Stream; used by tests.
type SliceStream struct {
	Insts []Inst
	pos   int
}

// Next implements Stream.
func (s *SliceStream) Next(in *Inst) bool {
	if s.pos >= len(s.Insts) {
		return false
	}
	*in = s.Insts[s.pos]
	s.pos++
	return true
}

// NextBlock implements BlockStream with one bulk copy per block.
func (s *SliceStream) NextBlock(buf []Inst) int {
	n := copy(buf, s.Insts[s.pos:])
	s.pos += n
	return n
}

// Reset rewinds the stream.
func (s *SliceStream) Reset() { s.pos = 0 }

// FuncStream adapts a generator function to Stream.
type FuncStream func(*Inst) bool

// Next implements Stream.
func (f FuncStream) Next(in *Inst) bool { return f(in) }

// Limit wraps a stream and stops it after n instructions.
func Limit(s Stream, n uint64) Stream {
	remaining := n
	return FuncStream(func(in *Inst) bool {
		if remaining == 0 {
			return false
		}
		if !s.Next(in) {
			return false
		}
		remaining--
		return true
	})
}

// Concat chains streams end to end.
func Concat(streams ...Stream) Stream {
	i := 0
	return FuncStream(func(in *Inst) bool {
		for i < len(streams) {
			if streams[i].Next(in) {
				return true
			}
			i++
		}
		return false
	})
}
