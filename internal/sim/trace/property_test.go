package trace_test

import (
	"testing"

	"repro/internal/proptest"
	"repro/internal/sim/trace"
)

// TestSplitsLineReference: SplitsLine agrees with the obvious modular
// reference implementation for random accesses and line sizes.
func TestSplitsLineReference(t *testing.T) {
	proptest.Run(t, "splits-line-reference", 40, func(t *testing.T, r *proptest.Rand) {
		lineB := uint64([]int{16, 32, 64, 128}[r.Intn(4)])
		for i := 0; i < 500; i++ {
			in := trace.Inst{
				Kind: []trace.Kind{trace.Other, trace.Load, trace.Store, trace.Branch}[r.Intn(4)],
				Addr: r.Uint64() >> r.Intn(40),
				Size: uint8([]int{0, 1, 2, 4, 8, 16}[r.Intn(6)]),
			}
			want := false
			if (in.Kind == trace.Load || in.Kind == trace.Store) && in.Size > 0 {
				want = in.Addr%lineB+uint64(in.Size) > lineB
			}
			if got := in.SplitsLine(lineB); got != want {
				t.Fatalf("case %d: SplitsLine(%#x, size %d, line %d) = %v, want %v",
					i, in.Addr, in.Size, lineB, got, want)
			}
		}
	})
}

// drain pulls every record from a Stream.
func drain(s trace.Stream) []trace.Inst {
	var out []trace.Inst
	var in trace.Inst
	for s.Next(&in) {
		out = append(out, in)
	}
	return out
}

// drainBlocks pulls every record through the BlockStream interface with
// the given buffer size.
func drainBlocks(bs trace.BlockStream, bufLen int) []trace.Inst {
	var out []trace.Inst
	buf := make([]trace.Inst, bufLen)
	for {
		n := bs.NextBlock(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func sameInsts(t *testing.T, label string, a, b []trace.Inst) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d records", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: record %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// TestStreamAdapterLaws: every adapter (SliceStream block mode, Blocked,
// Limit, Concat) reproduces the exact record sequence of the plain
// one-at-a-time stream, at any block size.
func TestStreamAdapterLaws(t *testing.T) {
	proptest.Run(t, "stream-adapter-laws", 25, func(t *testing.T, r *proptest.Rand) {
		insts := proptest.Insts(r, r.IntBetween(0, 600))
		bufLen := r.IntBetween(1, 300)

		want := drain(&trace.SliceStream{Insts: insts})
		if len(want) != len(insts) {
			t.Fatalf("SliceStream dropped records: %d vs %d", len(want), len(insts))
		}

		sameInsts(t, "SliceStream.NextBlock",
			want, drainBlocks(&trace.SliceStream{Insts: insts}, bufLen))

		// Blocked over a non-BlockStream producer (FuncStream) must wrap
		// with the per-record loop and preserve order.
		i := 0
		fs := trace.FuncStream(func(in *trace.Inst) bool {
			if i >= len(insts) {
				return false
			}
			*in = insts[i]
			i++
			return true
		})
		sameInsts(t, "Blocked(FuncStream)", want, drainBlocks(trace.Blocked(fs), bufLen))

		// Blocked over a BlockStream must return it unchanged.
		ss := &trace.SliceStream{Insts: insts}
		if trace.Blocked(ss) != trace.BlockStream(ss) {
			t.Fatal("Blocked re-wrapped a BlockStream")
		}

		// Limit(n) yields exactly the first n records.
		n := uint64(r.IntBetween(0, len(insts)+10))
		got := drain(trace.Limit(&trace.SliceStream{Insts: insts}, n))
		wantN := int(n)
		if wantN > len(insts) {
			wantN = len(insts)
		}
		sameInsts(t, "Limit", want[:wantN], got)

		// Concat of a random split equals the whole.
		cut := r.IntBetween(0, len(insts))
		cat := trace.Concat(
			&trace.SliceStream{Insts: insts[:cut]},
			&trace.SliceStream{},
			&trace.SliceStream{Insts: insts[cut:]},
		)
		sameInsts(t, "Concat", want, drain(cat))
	})
}
