package trace

import "testing"

func TestSplitsLine(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Kind: Load, Addr: 0, Size: 8}, false},
		{Inst{Kind: Load, Addr: 56, Size: 8}, false},   // ends at 63
		{Inst{Kind: Load, Addr: 60, Size: 8}, true},    // crosses 64
		{Inst{Kind: Store, Addr: 63, Size: 2}, true},   // crosses 64
		{Inst{Kind: Store, Addr: 64, Size: 8}, false},  // starts new line
		{Inst{Kind: Branch, Addr: 60, Size: 8}, false}, // not memory
		{Inst{Kind: Other, Addr: 60, Size: 8}, false},  // not memory
		{Inst{Kind: Load, Addr: 60, Size: 0}, false},   // no size
		{Inst{Kind: Load, Addr: 127, Size: 2}, true},   // crosses 128
	}
	for _, c := range cases {
		if got := c.in.SplitsLine(64); got != c.want {
			t.Errorf("SplitsLine(%+v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{Load: "load", Store: "store", Branch: "branch", Other: "other"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v.String() = %q", int(k), k.String())
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind rendered empty")
	}
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Insts: []Inst{{PC: 1}, {PC: 2}}}
	var in Inst
	if !s.Next(&in) || in.PC != 1 {
		t.Fatal("first instruction wrong")
	}
	if !s.Next(&in) || in.PC != 2 {
		t.Fatal("second instruction wrong")
	}
	if s.Next(&in) {
		t.Fatal("exhausted stream yielded an instruction")
	}
	s.Reset()
	if !s.Next(&in) || in.PC != 1 {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	inner := FuncStream(func(in *Inst) bool { in.PC = 7; return true })
	s := Limit(inner, 3)
	var in Inst
	count := 0
	for s.Next(&in) {
		count++
		if count > 10 {
			t.Fatal("Limit did not stop")
		}
	}
	if count != 3 {
		t.Errorf("Limit yielded %d, want 3", count)
	}
}

func TestLimitZero(t *testing.T) {
	inner := FuncStream(func(in *Inst) bool { return true })
	var in Inst
	if Limit(inner, 0).Next(&in) {
		t.Error("Limit(0) yielded an instruction")
	}
}

func TestConcat(t *testing.T) {
	a := &SliceStream{Insts: []Inst{{PC: 1}}}
	b := &SliceStream{Insts: []Inst{{PC: 2}, {PC: 3}}}
	s := Concat(a, b)
	var got []uint64
	var in Inst
	for s.Next(&in) {
		got = append(got, in.PC)
	}
	want := []uint64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Concat yielded %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Concat yielded %v, want %v", got, want)
		}
	}
}

func TestConcatEmpty(t *testing.T) {
	var in Inst
	if Concat().Next(&in) {
		t.Error("empty Concat yielded an instruction")
	}
}
