package branch_test

import (
	"testing"

	"repro/internal/proptest"
	"repro/internal/sim/branch"
)

type outcome struct {
	pc, target uint64
	taken      bool
}

func genOutcomes(r *proptest.Rand, n int) []outcome {
	// A handful of static branches, each with its own bias, re-executed in
	// random order: the regime a gshare predictor is built for.
	type site struct {
		pc, target uint64
		bias       float64
	}
	sites := make([]site, r.IntBetween(1, 12))
	for i := range sites {
		sites[i] = site{
			pc:     0x400000 + uint64(r.Intn(1<<12))*4,
			target: 0x400000 + uint64(r.Intn(1<<12))*4,
			bias:   r.Float64(),
		}
	}
	out := make([]outcome, n)
	for i := range out {
		s := sites[r.Intn(len(sites))]
		out[i] = outcome{pc: s.pc, target: s.target, taken: r.Bool(s.bias)}
	}
	return out
}

// TestPredictorStatsAndDeterminism: Branches counts every Lookup,
// Mispredicts never exceeds it, and two predictors fed the same sequence
// return identical per-branch results.
func TestPredictorStatsAndDeterminism(t *testing.T) {
	proptest.Run(t, "predictor-stats", 25, func(t *testing.T, r *proptest.Rand) {
		a := branch.New(branch.DefaultConfig())
		b := branch.New(branch.DefaultConfig())
		seq := genOutcomes(r, 2000)
		for i, o := range seq {
			ra := a.Lookup(o.pc, o.target, o.taken)
			rb := b.Lookup(o.pc, o.target, o.taken)
			if ra != rb {
				t.Fatalf("branch %d: predictors diverged", i)
			}
		}
		if a.Branches != uint64(len(seq)) {
			t.Fatalf("Branches = %d, want %d", a.Branches, len(seq))
		}
		if a.Mispredicts > a.Branches {
			t.Fatalf("Mispredicts %d > Branches %d", a.Mispredicts, a.Branches)
		}
		if a.Branches != b.Branches || a.Mispredicts != b.Mispredicts {
			t.Fatal("stats diverged between identical runs")
		}
		if rate := a.MispredictRate(); rate < 0 || rate > 1 {
			t.Fatalf("MispredictRate = %v", rate)
		}
	})
}

// TestPredictorLearnsMonotoneBranch: a single always-taken branch with a
// stable target is learned after a bounded warm-up — the tail of a long
// run is mispredict-free.
func TestPredictorLearnsMonotoneBranch(t *testing.T) {
	proptest.Run(t, "predictor-learns", 15, func(t *testing.T, r *proptest.Rand) {
		p := branch.New(branch.DefaultConfig())
		pc := 0x400000 + uint64(r.Intn(1<<12))*4
		target := 0x500000 + uint64(r.Intn(1<<12))*4
		for i := 0; i < 200; i++ {
			p.Lookup(pc, target, true)
		}
		p.ResetStats()
		for i := 0; i < 500; i++ {
			p.Lookup(pc, target, true)
		}
		if p.Mispredicts != 0 {
			t.Fatalf("warmed predictor mispredicted a monotone branch %d times", p.Mispredicts)
		}
	})
}

// TestPredictorResetRestoresInitialState: Reset returns the predictor to
// its constructed state — a fresh predictor and a reset one agree on an
// arbitrary subsequent sequence.
func TestPredictorResetRestoresInitialState(t *testing.T) {
	proptest.Run(t, "predictor-reset", 15, func(t *testing.T, r *proptest.Rand) {
		dirty := branch.New(branch.DefaultConfig())
		for _, o := range genOutcomes(r, 500) {
			dirty.Lookup(o.pc, o.target, o.taken)
		}
		dirty.Reset()
		fresh := branch.New(branch.DefaultConfig())
		for i, o := range genOutcomes(r, 500) {
			if dirty.Lookup(o.pc, o.target, o.taken) != fresh.Lookup(o.pc, o.target, o.taken) {
				t.Fatalf("branch %d: reset predictor diverged from fresh one", i)
			}
		}
	})
}
