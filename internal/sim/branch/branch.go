// Package branch models the branch prediction unit of the simulated core:
// a gshare direction predictor (global history XOR PC indexing a table of
// two-bit saturating counters) with a direct-mapped branch target buffer.
// It supplies the BrMisPr and BrPred events of the paper's Table I.
package branch

import "fmt"

// Config describes the predictor geometry.
type Config struct {
	// HistoryBits is the global-history length; the pattern table has
	// 2^HistoryBits two-bit counters.
	HistoryBits uint
	// BTBEntries is the number of direct-mapped target-buffer entries
	// (power of two).
	BTBEntries int
}

// DefaultConfig returns a predictor comparable to the Core 2 front end.
func DefaultConfig() Config {
	return Config{HistoryBits: 14, BTBEntries: 2048}
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.HistoryBits == 0 || c.HistoryBits > 24 {
		return fmt.Errorf("branch: history bits %d out of range (1..24)", c.HistoryBits)
	}
	if c.BTBEntries <= 0 || c.BTBEntries&(c.BTBEntries-1) != 0 {
		return fmt.Errorf("branch: BTB entries %d not a positive power of two", c.BTBEntries)
	}
	return nil
}

// Predictor is a gshare + BTB branch prediction unit.
type Predictor struct {
	cfg      Config
	pht      []uint8 // two-bit saturating counters
	history  uint64
	histMask uint64
	btbTag   []uint64
	btbTgt   []uint64
	btbMask  uint64
	// Stats
	Branches    uint64
	Mispredicts uint64
}

// New builds a predictor; it panics on an invalid configuration.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	size := 1 << cfg.HistoryBits
	p := &Predictor{
		cfg:      cfg,
		pht:      make([]uint8, size),
		histMask: uint64(size - 1),
		btbTag:   make([]uint64, cfg.BTBEntries),
		btbTgt:   make([]uint64, cfg.BTBEntries),
		btbMask:  uint64(cfg.BTBEntries - 1),
	}
	// Initialize counters weakly taken, the usual convention.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p
}

// Lookup predicts and then trains on the actual outcome, returning whether
// the prediction (direction and, for taken branches, target) was correct.
func (p *Predictor) Lookup(pc, target uint64, taken bool) bool {
	p.Branches++
	idx := (p.history ^ (pc >> 2)) & p.histMask
	predTaken := p.pht[idx] >= 2

	// Train the two-bit counter.
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else {
		if p.pht[idx] > 0 {
			p.pht[idx]--
		}
	}
	// Update global history.
	p.history = (p.history << 1) & p.histMask
	if taken {
		p.history |= 1
	}

	correct := predTaken == taken
	if taken {
		// A taken branch also needs the right target from the BTB.
		b := (pc >> 2) & p.btbMask
		if p.btbTag[b] != pc || p.btbTgt[b] != target {
			correct = false
		}
		p.btbTag[b] = pc
		p.btbTgt[b] = target
	}
	if !correct {
		p.Mispredicts++
	}
	return correct
}

// MispredictRate returns Mispredicts/Branches (0 when idle).
func (p *Predictor) MispredictRate() float64 {
	if p.Branches == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Branches)
}

// Reset clears state and statistics.
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 2
	}
	for i := range p.btbTag {
		p.btbTag[i], p.btbTgt[i] = 0, 0
	}
	p.history = 0
	p.Branches, p.Mispredicts = 0, 0
}

// ResetStats clears statistics but preserves learned state.
func (p *Predictor) ResetStats() { p.Branches, p.Mispredicts = 0, 0 }
