package branch

import (
	"math/rand"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{HistoryBits: 0, BTBEntries: 16},
		{HistoryBits: 30, BTBEntries: 16},
		{HistoryBits: 8, BTBEntries: 0},
		{HistoryBits: 8, BTBEntries: 100}, // not a power of two
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(DefaultConfig())
	const pc, target = 0x4000, 0x4100
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Lookup(pc, target, true) {
			wrong++
		}
	}
	// After warm-up, an always-taken branch with a fixed target should be
	// almost perfectly predicted.
	if wrong > 5 {
		t.Errorf("always-taken branch mispredicted %d/1000 times", wrong)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	p := New(DefaultConfig())
	const pc, target = 0x5000, 0x5100
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if !p.Lookup(pc, target, taken) && i > 100 {
			wrong++
		}
	}
	// gshare's history captures a strict alternation.
	if wrong > 20 {
		t.Errorf("alternating branch mispredicted %d times after warmup", wrong)
	}
}

func TestRandomBranchNearHalf(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	const pc, target = 0x6000, 0x6100
	wrong := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if !p.Lookup(pc, target, rng.Intn(2) == 0) {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random branch mispredict rate %v, want ~0.5", rate)
	}
}

func TestBTBTargetMismatch(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x7000
	// Train with one target, then change it: the first lookup with the
	// new target must be a mispredict even though the direction is right.
	for i := 0; i < 50; i++ {
		p.Lookup(pc, 0x7100, true)
	}
	if p.Lookup(pc, 0x7200, true) {
		t.Error("changed target predicted correctly")
	}
	// After retraining, the new target is learned.
	if !p.Lookup(pc, 0x7200, true) {
		t.Error("new target not learned after one update")
	}
}

func TestNotTakenNeedsNoBTB(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x8000
	// Train not-taken.
	for i := 0; i < 20; i++ {
		p.Lookup(pc, 0, false)
	}
	if !p.Lookup(pc, 0, false) {
		t.Error("well-trained not-taken branch mispredicted")
	}
}

func TestStats(t *testing.T) {
	p := New(DefaultConfig())
	if p.MispredictRate() != 0 {
		t.Error("idle mispredict rate nonzero")
	}
	p.Lookup(1, 2, true)
	if p.Branches != 1 {
		t.Errorf("Branches = %d", p.Branches)
	}
	p.ResetStats()
	if p.Branches != 0 || p.Mispredicts != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestResetClearsTraining(t *testing.T) {
	p := New(DefaultConfig())
	const pc, tgt = 0x9000, 0x9100
	for i := 0; i < 100; i++ {
		p.Lookup(pc, tgt, true)
	}
	p.Reset()
	// After reset the BTB is cold: the taken branch cannot have the right
	// target.
	if p.Lookup(pc, tgt, true) {
		t.Error("prediction survived Reset")
	}
}

func TestDistinctBranchesIndependent(t *testing.T) {
	p := New(DefaultConfig())
	// Two branches with opposite biases; both should be learned.
	wrong := 0
	for i := 0; i < 2000; i++ {
		if !p.Lookup(0xA000, 0xA100, true) && i > 100 {
			wrong++
		}
		if !p.Lookup(0xB000, 0, false) && i > 100 {
			wrong++
		}
	}
	if wrong > 100 {
		t.Errorf("opposite-bias branches mispredicted %d times", wrong)
	}
}
