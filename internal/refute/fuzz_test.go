package refute

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzRefutationStateReadJSON hammers the strict snapshot reader:
// arbitrary bytes must never panic it, and any snapshot it accepts must
// validate and re-persist to a stable fixed point (write→read→write
// byte-identical) — so a fuzzer-found input can never smuggle
// inconsistent refutation statistics through a session restore.
func FuzzRefutationStateReadJSON(f *testing.F) {
	// A real snapshot with history, from a checker that saw a corruption.
	c := NewChecker(Config{}, tableICols(), 0, "core2")
	row := make([]float64, 21)
	row[1] = 0.3 // InstLd — breaks inst-mix, stays non-negative
	for i := 0; i < 3; i++ {
		c.Observe(row, 0.6, true)
		c.EndWindow()
	}
	if blob, err := c.State().MarshalBytes(); err == nil {
		f.Add(blob)
	}
	if blob, err := (State{SchemaVersion: 1}).MarshalBytes(); err == nil {
		f.Add(blob)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema_version":1,"samples":0,"windows":0,"relations":[]}`))
	f.Add([]byte(`{"schema_version":99,"samples":0,"windows":0,"relations":[]}`))
	f.Add([]byte(`{"schema_version":1,"samples":1,"windows":1,"relations":[{"name":"x","checked":1,"violations":1,"violated_windows":1,"streak":1,"max_deviation":0.5,"last_violation":1,"verdict":"suspect"}]}`))
	f.Add([]byte(`{"schema_version":1,"samples":0,"windows":0,"relations":[],"extra":true}`))
	f.Add([]byte(`{"schema_version":1,"relations":[{"name":"x","verdict":"maybe"}]}`))
	f.Add([]byte(`{"schema_version":1,"relations":[{"name":"x","max_deviation":-1}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid snapshot: %v", err)
		}
		first, err := s.MarshalBytes()
		if err != nil {
			t.Fatalf("accepted snapshot does not write: %v", err)
		}
		again, err := ReadJSON(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("re-read of persisted accepted snapshot failed: %v", err)
		}
		if !reflect.DeepEqual(again, s) {
			t.Fatal("snapshot changed across write->read")
		}
		second, err := again.MarshalBytes()
		if err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatal("write->read->write is not a fixed point")
		}
	})
}
