// Package refute is the counter-consistency refutation layer: it
// continuously cross-checks that a live event-counter stream actually
// satisfies the identity and inequality relations the Table I schema
// implies (internal/counters.Relations), plus per-machine variants
// derived from the internal/march spec the model was trained on.
//
// The point, following CounterPoint (Lindsay et al.) and Röhl et al.'s
// event-validation work, is to separate two failure modes that look the
// same from a residual plot: *model drift* — the workload moved and the
// tree's CPI law no longer fits, but the counters remain mutually
// consistent — and *counter refutation* — the counter stream itself
// violates relations that hold for any correct measurement, so the
// numbers (and anything predicted from them) cannot be trusted. The
// Page–Hinkley detector in internal/stream flags the former; this package
// flags the latter.
//
// Relations are declarative data (counters.RelationSpec), evaluated per
// sample with a tolerance band and aggregated per scoring window. A
// relation's verdict moves consistent → suspect on its first violated
// window and suspect → refuted (sticky) after RefuteWindows consecutive
// violated windows; the session verdict is the worst relation verdict.
// Evaluation order is fixed and serial, so verdicts are byte-identical at
// any parallelism, and the whole checker state snapshots/restores through
// the stream-session drain path (see state.go).
package refute

import (
	"fmt"
	"math"

	"repro/internal/counters"
	"repro/internal/march"
)

// Verdict is the consistency status of one relation or a whole session.
type Verdict string

const (
	// Consistent means no relation violation has ever been observed.
	Consistent Verdict = "consistent"
	// Suspect means at least one violation was observed but the evidence
	// has not yet met the refutation threshold.
	Suspect Verdict = "suspect"
	// Refuted means a relation was violated in RefuteWindows consecutive
	// windows; the verdict is sticky for the life of the session.
	Refuted Verdict = "refuted"
)

// worse reports whether a is a more severe verdict than b.
func worse(a, b Verdict) bool {
	rank := func(v Verdict) int {
		switch v {
		case Refuted:
			return 2
		case Suspect:
			return 1
		default:
			return 0
		}
	}
	return rank(a) > rank(b)
}

// Config tunes the checker. The zero value means "defaults" (checking
// enabled); set Disabled to opt out entirely.
type Config struct {
	// Disabled turns consistency checking off.
	Disabled bool
	// AbsTol and RelTol define the tolerance band: a relation is violated
	// when its deviation exceeds AbsTol + RelTol*scale, where scale is the
	// larger magnitude of the two sides (at least 1). The defaults
	// (1e-9/1e-9) absorb float summation error on clean streams while
	// catching any real single-counter corruption.
	AbsTol float64
	RelTol float64
	// RefuteWindows is the number of consecutive violated windows that
	// promote a relation from suspect to refuted (default 2).
	RefuteWindows int
}

const (
	defaultAbsTol        = 1e-9
	defaultRelTol        = 1e-9
	defaultRefuteWindows = 2
)

func (c Config) withDefaults() Config {
	if c.AbsTol <= 0 {
		c.AbsTol = defaultAbsTol
	}
	if c.RelTol <= 0 {
		c.RelTol = defaultRelTol
	}
	if c.RefuteWindows <= 0 {
		c.RefuteWindows = defaultRefuteWindows
	}
	return c
}

// cpiCol is the compiled term index meaning "read the observed CPI
// argument instead of a row column".
const cpiCol = -1

type term struct {
	idx  int
	coef float64
}

type compiled struct {
	spec       counters.RelationSpec
	leftConst  float64
	rightConst float64
	left       []term
	right      []term
	usesCPI    bool
}

// relStats is the live accumulator behind one RelationState.
type relStats struct {
	checked         uint64
	violations      uint64
	violatedWindows uint64
	streak          uint64
	maxDeviation    float64
	lastViolation   uint64 // 1-based sample ordinal, 0 = never
	verdict         Verdict
}

// Checker evaluates the relation catalog against a stream of samples.
// Not safe for concurrent use; the stream processor drives it from its
// serial fold.
type Checker struct {
	cfg     Config
	machine string
	rels    []compiled
	stats   []relStats
	winDev  []float64 // max deviation per relation within the open window
	samples uint64
	windows uint64
}

// MachineRelations returns the per-machine relation variants for a spec:
// the CPI floor (every retired instruction costs at least 1/IssueWidth
// cycles) and the wrong-path bounds that tie the speculative-inclusive
// events (L1IM, ItlbM, DtlbL0LdM, Dtlb) to retired counts plus the
// machine's wrong-path activity per mispredict. These are exactly the
// bounds that are NOT machine-independent: a stream that is clean for an
// atom-class core (no wrong path) can legitimately exceed them on a
// netburst-class one.
func MachineRelations(spec march.MachineSpec) []counters.RelationSpec {
	var rels []counters.RelationSpec
	if floor, ok := spec.CPIFloor(); ok {
		rels = append(rels, counters.RelationSpec{
			Name:        "cpi-floor",
			Description: fmt.Sprintf("%s cannot sustain more than %g instructions per cycle", spec.Name, spec.Pipeline.IssueWidth),
			Kind:        counters.RelAtMost,
			Left:        counters.LinearExpr{Const: floor},
			Right:       counters.LinearExpr{Terms: []counters.Term{{Col: "CPI", Coef: 1}}},
		})
	}
	wpf := float64(spec.WrongPath.Fetches)
	wpl := float64(spec.WrongPath.Loads)
	rels = append(rels,
		counters.RelationSpec{
			Name:        "wp-l1i-fetch-bound",
			Description: fmt.Sprintf("at most one retired fetch plus %g wrong-path fetches per mispredict can miss L1I", wpf),
			Kind:        counters.RelAtMost,
			Left:        counters.LinearExpr{Terms: []counters.Term{{Col: "L1IM", Coef: 1}}},
			Right:       counters.LinearExpr{Const: 1, Terms: []counters.Term{{Col: "BrMisPr", Coef: wpf}}},
		},
		counters.RelationSpec{
			Name:        "wp-itlb-fetch-bound",
			Description: fmt.Sprintf("at most one retired fetch plus %g wrong-path fetches per mispredict can miss the ITLB", wpf),
			Kind:        counters.RelAtMost,
			Left:        counters.LinearExpr{Terms: []counters.Term{{Col: "ItlbM", Coef: 1}}},
			Right:       counters.LinearExpr{Const: 1, Terms: []counters.Term{{Col: "BrMisPr", Coef: wpf}}},
		},
		counters.RelationSpec{
			Name:        "wp-dtlb0-load-bound",
			Description: fmt.Sprintf("L0 DTLB load misses come from retired loads plus %g wrong-path loads per mispredict", wpl),
			Kind:        counters.RelAtMost,
			Left:        counters.LinearExpr{Terms: []counters.Term{{Col: "DtlbL0LdM", Coef: 1}}},
			Right:       counters.LinearExpr{Terms: []counters.Term{{Col: "InstLd", Coef: 1}, {Col: "BrMisPr", Coef: wpl}}},
		},
		counters.RelationSpec{
			Name:        "wp-dtlb-any-bound",
			Description: fmt.Sprintf("DTLB_MISSES.ANY comes from retired loads and stores plus %g wrong-path loads per mispredict", wpl),
			Kind:        counters.RelAtMost,
			Left:        counters.LinearExpr{Terms: []counters.Term{{Col: "Dtlb", Coef: 1}}},
			Right:       counters.LinearExpr{Terms: []counters.Term{{Col: "InstLd", Coef: 1}, {Col: "InstSt", Coef: 1}, {Col: "BrMisPr", Coef: wpl}}},
		},
	)
	return rels
}

// Catalog assembles the full relation list for a schema: the
// machine-independent Table I catalog, a non-negativity bound per schema
// column, and — when the machine is known — the march variants. target is
// the index of the CPI target column within cols (or -1); its name
// resolves to the observed CPI rather than a row column.
func Catalog(cols []string, target int, spec *march.MachineSpec) []counters.RelationSpec {
	rels := counters.Relations()
	for _, c := range cols {
		rels = append(rels, counters.NonNegRelation(c))
	}
	if spec != nil {
		rels = append(rels, MachineRelations(*spec)...)
	}
	return rels
}

// NewChecker compiles the catalog against a schema. cols are the stream
// schema's attribute names in row order; target is the index of the CPI
// target column (-1 if the schema has none) — the target's value is read
// from the observed CPI passed to Observe, never from the row (the stream
// layer zeroes that cell). machine optionally names the march spec whose
// per-machine relation variants apply; an unknown or empty name just
// skips the variants. Relations referencing columns the schema does not
// carry are dropped, so a model trained on a counter subset is checked
// against exactly the relations its schema can express.
func NewChecker(cfg Config, cols []string, target int, machine string) *Checker {
	cfg = cfg.withDefaults()
	c := &Checker{cfg: cfg, machine: machine}
	if cfg.Disabled {
		return c
	}
	var spec *march.MachineSpec
	if s, ok := march.Lookup(machine); ok {
		spec = &s
	}

	idx := make(map[string]int, len(cols))
	for i, name := range cols {
		if i == target {
			idx[name] = cpiCol
			continue
		}
		idx[name] = i
	}
	if target < 0 {
		// Schemas without a CPI target can still express CPI relations
		// through the observed value attached to each sample.
		if _, taken := idx["CPI"]; !taken {
			idx["CPI"] = cpiCol
		}
	}

	for _, rs := range Catalog(cols, target, spec) {
		comp, ok := compileRelation(rs, idx)
		if !ok {
			continue
		}
		c.rels = append(c.rels, comp)
		c.stats = append(c.stats, relStats{verdict: Consistent})
	}
	c.winDev = make([]float64, len(c.rels))
	return c
}

func compileRelation(spec counters.RelationSpec, idx map[string]int) (compiled, bool) {
	comp := compiled{spec: spec, leftConst: spec.Left.Const, rightConst: spec.Right.Const}
	build := func(e counters.LinearExpr) ([]term, bool) {
		ts := make([]term, 0, len(e.Terms))
		for _, t := range e.Terms {
			i, ok := idx[t.Col]
			if !ok {
				return nil, false
			}
			if i == cpiCol {
				comp.usesCPI = true
			}
			ts = append(ts, term{idx: i, coef: t.Coef})
		}
		return ts, true
	}
	var ok bool
	if comp.left, ok = build(spec.Left); !ok {
		return compiled{}, false
	}
	if comp.right, ok = build(spec.Right); !ok {
		return compiled{}, false
	}
	return comp, true
}

// Enabled reports whether the checker is actually evaluating relations.
func (c *Checker) Enabled() bool { return !c.cfg.Disabled && len(c.rels) > 0 }

// Relations returns the compiled catalog's specs, in evaluation order.
func (c *Checker) Relations() []counters.RelationSpec {
	specs := make([]counters.RelationSpec, len(c.rels))
	for i, r := range c.rels {
		specs[i] = r.spec
	}
	return specs
}

func eval(base float64, ts []term, row []float64, cpi float64) float64 {
	v := base
	for _, t := range ts {
		if t.idx == cpiCol {
			v += t.coef * cpi
		} else {
			v += t.coef * row[t.idx]
		}
	}
	return v
}

// Observe evaluates every relation against one sample row. row is the
// schema-ordered value vector (the target cell is ignored); cpi is the
// observed CPI when haveCPI is true. Relations that read CPI are skipped
// — not counted as checked — on samples without an observed CPI.
func (c *Checker) Observe(row []float64, cpi float64, haveCPI bool) {
	if !c.Enabled() {
		return
	}
	c.samples++
	for i := range c.rels {
		r := &c.rels[i]
		if r.usesCPI && !haveCPI {
			continue
		}
		st := &c.stats[i]
		st.checked++
		lv := eval(r.leftConst, r.left, row, cpi)
		rv := eval(r.rightConst, r.right, row, cpi)
		dev := lv - rv
		if r.spec.Kind == counters.RelIdentity {
			dev = math.Abs(dev)
		}
		scale := math.Max(math.Max(math.Abs(lv), math.Abs(rv)), 1)
		if dev <= c.cfg.AbsTol+c.cfg.RelTol*scale {
			continue
		}
		st.violations++
		st.lastViolation = c.samples
		if dev > st.maxDeviation {
			st.maxDeviation = dev
		}
		if dev > c.winDev[i] {
			c.winDev[i] = dev
		}
	}
}

// Transition records one relation's verdict change, reported by
// EndWindow so the stream layer can surface it as an event.
type Transition struct {
	Relation  string
	Verdict   Verdict
	Deviation float64
}

// EndWindow closes the current scoring window: every relation violated
// within it advances its streak (promoting suspect → refuted at the
// configured threshold), every clean relation resets its streak. It
// returns the verdict transitions the window caused, in catalog order.
func (c *Checker) EndWindow() []Transition {
	if !c.Enabled() {
		return nil
	}
	c.windows++
	var trans []Transition
	for i := range c.stats {
		st := &c.stats[i]
		dev := c.winDev[i]
		c.winDev[i] = 0
		if dev <= 0 {
			st.streak = 0
			continue
		}
		st.violatedWindows++
		st.streak++
		next := st.verdict
		if next != Refuted {
			next = Suspect
			if st.streak >= uint64(c.cfg.RefuteWindows) {
				next = Refuted
			}
		}
		if next != st.verdict {
			st.verdict = next
			trans = append(trans, Transition{Relation: c.rels[i].spec.Name, Verdict: next, Deviation: dev})
		}
	}
	return trans
}

// Verdict returns the session verdict: the worst relation verdict.
func (c *Checker) Verdict() Verdict {
	v := Consistent
	for i := range c.stats {
		if worse(c.stats[i].verdict, v) {
			v = c.stats[i].verdict
		}
	}
	return v
}

// Summary is the compact refutation digest carried in stream stats and
// per-request NDJSON summaries.
type Summary struct {
	Verdict          Verdict `json:"verdict"`
	Relations        int     `json:"relations"`
	Violations       uint64  `json:"violations"`
	SuspectRelations int     `json:"suspect_relations,omitempty"`
	RefutedRelations int     `json:"refuted_relations,omitempty"`
}

// Summary returns the current digest.
func (c *Checker) Summary() Summary {
	s := Summary{Verdict: c.Verdict(), Relations: len(c.rels)}
	for i := range c.stats {
		s.Violations += c.stats[i].violations
		switch c.stats[i].verdict {
		case Suspect:
			s.SuspectRelations++
		case Refuted:
			s.RefutedRelations++
		}
	}
	return s
}

// RelationReport is one relation's full standing: the declarative spec
// rendered for humans plus the accumulated statistics.
type RelationReport struct {
	RelationState
	Kind        counters.RelKind `json:"kind"`
	Formula     string           `json:"formula"`
	Description string           `json:"description"`
}

// Report is the full per-relation refutation report served by
// GET /v1/sessions/{id}/refutation and rendered by cmd/monitor -refute.
type Report struct {
	Verdict   Verdict          `json:"verdict"`
	Machine   string           `json:"machine,omitempty"`
	Samples   uint64           `json:"samples"`
	Windows   uint64           `json:"windows"`
	Relations []RelationReport `json:"relations"`
}

// Report returns the full report.
func (c *Checker) Report() Report {
	rep := Report{
		Verdict: c.Verdict(),
		Machine: c.machine,
		Samples: c.samples,
		Windows: c.windows,
	}
	for i, r := range c.rels {
		rep.Relations = append(rep.Relations, RelationReport{
			RelationState: c.relationState(i),
			Kind:          r.spec.Kind,
			Formula:       r.spec.String(),
			Description:   r.spec.Description,
		})
	}
	return rep
}
