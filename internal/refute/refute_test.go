package refute

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/march"
	"repro/internal/proptest"
	"repro/internal/sim/cpu"
	"repro/internal/sim/trace"
	"repro/internal/workload"
)

// tableICols returns the Table I schema column names (CPI first).
func tableICols() []string {
	tab := counters.TableI()
	cols := make([]string, len(tab))
	for i, m := range tab {
		cols[i] = m.Name
	}
	return cols
}

func newTableIChecker(t *testing.T, machine string) *Checker {
	t.Helper()
	c := NewChecker(Config{}, tableICols(), 0, machine)
	if !c.Enabled() {
		t.Fatal("checker disabled for the full Table I schema")
	}
	return c
}

// feedRows drives rows (Table I instances, CPI in column 0) through the
// checker, closing a window every window rows and at the end.
func feedRows(c *Checker, rows [][]float64, window int) {
	for i, row := range rows {
		c.Observe(row, row[0], true)
		if (i+1)%window == 0 {
			c.EndWindow()
		}
	}
	if len(rows)%window != 0 {
		c.EndWindow()
	}
}

// TestCatalogComplete pins the catalog's shape: relation names are
// unique, every referenced column is a Table I attribute (or the CPI
// target), and — the completeness half — every relation in the assembled
// catalog compiles against the full Table I schema, so nothing in the
// catalog can silently drop out of checking.
func TestCatalogComplete(t *testing.T) {
	cols := tableICols()
	known := make(map[string]bool, len(cols))
	for _, c := range cols {
		known[c] = true
	}
	for _, spec := range march.All() {
		c := newTableIChecker(t, spec.Name)
		assembled := Catalog(cols, 0, &spec)
		if got, want := len(c.Relations()), len(assembled); got != want {
			t.Fatalf("%s: %d of %d catalog relations compiled", spec.Name, got, want)
		}
		seen := map[string]bool{}
		for _, r := range c.Relations() {
			if seen[r.Name] {
				t.Fatalf("%s: duplicate relation name %q", spec.Name, r.Name)
			}
			seen[r.Name] = true
			if len(r.Columns()) == 0 {
				t.Fatalf("%s: relation %q reads no columns", spec.Name, r.Name)
			}
			for _, col := range r.Columns() {
				if !known[col] {
					t.Fatalf("%s: relation %q reads unknown column %q", spec.Name, r.Name, col)
				}
			}
			if r.String() == "" || r.Description == "" {
				t.Fatalf("%s: relation %q lacks a formula or description", spec.Name, r.Name)
			}
		}
	}
}

// TestCleanSuiteConsistent is the zero-false-positive gate: the seed
// benchmark suite, collected on every machine preset, must not violate a
// single relation. Any violation here means a catalog entry is not a
// theorem of the simulated machine and must be removed or weakened.
func TestCleanSuiteConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("clean-suite sweep is covered by the full run")
	}
	suite := workload.SuiteScaled(0.05)
	for _, spec := range march.All() {
		cfg := counters.CollectConfigFor(spec)
		cfg.SectionLen = 2000
		col, err := counters.CollectSuite(suite, cfg)
		if err != nil {
			t.Fatalf("%s: collect: %v", spec.Name, err)
		}
		c := newTableIChecker(t, spec.Name)
		rows := make([][]float64, col.Data.Len())
		for i := range rows {
			rows[i] = col.Data.Row(i)
		}
		feedRows(c, rows, 16)
		sum := c.Summary()
		if sum.Verdict != Consistent || sum.Violations != 0 {
			t.Fatalf("%s: clean suite verdict %q with %d violations:\n%s",
				spec.Name, sum.Verdict, sum.Violations, reportViolations(c))
		}
	}
}

func reportViolations(c *Checker) string {
	var b strings.Builder
	for _, r := range c.Report().Relations {
		if r.Violations > 0 {
			b.WriteString(r.Name + ": " + r.Formula + "\n")
		}
	}
	return b.String()
}

// TestCleanGeneratedTracesConsistent: clean simulator output stays
// consistent for generated traces too, across every machine preset — the
// catalog holds for the machine's physics, not for one workload family.
func TestCleanGeneratedTracesConsistent(t *testing.T) {
	specs := march.All()
	proptest.Run(t, "clean-generated-consistent", 20, func(t *testing.T, r *proptest.Rand) {
		spec := specs[r.Intn(len(specs))]
		core := cpu.New(spec.CPUConfig(), spec.Geometry(), spec.BranchConfig())
		c := newTableIChecker(t, spec.Name)
		for w := 0; w < 4; w++ {
			core.ResetSection()
			insts := proptest.Insts(r, 3000)
			core.Run(&trace.SliceStream{Insts: insts})
			row := counters.Row(core.Counters())
			c.Observe(row, row[0], true)
			c.EndWindow()
		}
		if sum := c.Summary(); sum.Verdict != Consistent || sum.Violations != 0 {
			t.Fatalf("%s: generated trace verdict %q with %d violations:\n%s",
				spec.Name, sum.Verdict, sum.Violations, reportViolations(c))
		}
	})
}

// TestCleanPerfDatasetConsistent: the synthetic PerfDataset family (the
// serving tests' demo schema) never trips the subset catalog its four
// columns can express.
func TestCleanPerfDatasetConsistent(t *testing.T) {
	proptest.Run(t, "clean-perfdataset-consistent", 30, func(t *testing.T, r *proptest.Rand) {
		d := proptest.PerfDataset(r, 64)
		c := NewChecker(Config{}, proptest.PerfAttrNames, 0, "")
		if !c.Enabled() {
			t.Fatal("checker disabled for the demo schema")
		}
		rows := make([][]float64, d.Len())
		for i := range rows {
			rows[i] = d.Row(i)
		}
		feedRows(c, rows, 8)
		if sum := c.Summary(); sum.Verdict != Consistent || sum.Violations != 0 {
			t.Fatalf("clean PerfDataset verdict %q with %d violations", sum.Verdict, sum.Violations)
		}
	})
}

// cleanRow collects one real Table I row on the given machine, the
// baseline the corruption tests perturb. Collecting per machine matters:
// a row is only guaranteed clean against the wrong-path bounds of the
// machine that produced it.
func cleanRow(t *testing.T, spec march.MachineSpec) []float64 {
	t.Helper()
	cfg := counters.CollectConfigFor(spec)
	cfg.SectionLen = 2000
	col, err := counters.CollectBenchmark(workload.SuiteScaled(0.02)[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if col.Data.Len() == 0 {
		t.Fatal("no sections collected")
	}
	return col.Data.Row(0)
}

// corrupt returns a copy of row (and its CPI) with one counter flipped so
// that exactly the given relation is violated: identities get a bumped
// left column, upper bounds get their left side inflated past the right,
// and bounds with a constant left side get the right side pulled below
// it. The choice is derived from the relation spec itself, so a new
// catalog entry is automatically exercised.
func corrupt(t *testing.T, rel counters.RelationSpec, cols []string, row []float64, cpi float64) ([]float64, float64) {
	t.Helper()
	out := append([]float64(nil), row...)
	idx := make(map[string]int, len(cols))
	for i, n := range cols {
		idx[n] = i
	}
	get := func(col string) float64 {
		if i := idx[col]; i == 0 {
			return cpi
		} else {
			return out[i]
		}
	}
	set := func(col string, v float64) {
		if i := idx[col]; i == 0 {
			cpi = v
		} else {
			out[i] = v
		}
	}
	evalExpr := func(e counters.LinearExpr) float64 {
		v := e.Const
		for _, term := range e.Terms {
			v += term.Coef * get(term.Col)
		}
		return v
	}
	lv, rv := evalExpr(rel.Left), evalExpr(rel.Right)
	switch {
	case rel.Kind == counters.RelIdentity:
		tgt := rel.Left.Terms[0]
		set(tgt.Col, get(tgt.Col)+0.5/tgt.Coef)
	case len(rel.Left.Terms) > 0:
		// Inflate the first left-hand column until the bound breaks by 1.
		tgt := rel.Left.Terms[0]
		set(tgt.Col, get(tgt.Col)+(rv-lv+1)/tgt.Coef)
	default:
		// Constant left side (non-negativity, CPI floor): pull the first
		// right-hand column down until the right side sits 1 below it.
		tgt := rel.Right.Terms[0]
		set(tgt.Col, get(tgt.Col)+(lv-1-rv)/tgt.Coef)
	}
	return out, cpi
}

// TestTargetedCorruptionCaught iterates the assembled catalog — not a
// hand-kept list — and checks that flipping one counter participating in
// each relation drives that relation (and the session) to refuted within
// three windows.
func TestTargetedCorruptionCaught(t *testing.T) {
	cols := tableICols()
	for _, machine := range []string{"core2", "netburst", "atom"} {
		spec, ok := march.Lookup(machine)
		if !ok {
			t.Fatalf("unknown preset %q", machine)
		}
		row := cleanRow(t, spec)
		baseline := newTableIChecker(t, machine)
		feedRows(baseline, [][]float64{row, row}, 1)
		if v := baseline.Verdict(); v != Consistent {
			t.Fatalf("%s: baseline row is not clean: %q\n%s", machine, v, reportViolations(baseline))
		}
		for _, rel := range Catalog(cols, 0, &spec) {
			bad, badCPI := corrupt(t, rel, cols, row, row[0])
			c := newTableIChecker(t, machine)
			windows := 0
			refutedAt := -1
			for w := 0; w < 3; w++ {
				c.Observe(bad, badCPI, true)
				for _, tr := range c.EndWindow() {
					if tr.Relation == rel.Name && tr.Verdict == Refuted {
						refutedAt = w + 1
					}
				}
				windows++
			}
			if refutedAt < 0 {
				t.Fatalf("%s: corruption of %q (%s) not refuted within %d windows",
					machine, rel.Name, rel.String(), windows)
			}
			if c.Verdict() != Refuted {
				t.Fatalf("%s: session verdict %q after refuting %q", machine, c.Verdict(), rel.Name)
			}
			var found bool
			for _, rr := range c.Report().Relations {
				if rr.Name == rel.Name {
					found = true
					if rr.Verdict != Refuted || rr.Violations == 0 || rr.MaxDeviation <= 0 {
						t.Fatalf("%s: report for %q inconsistent: %+v", machine, rel.Name, rr)
					}
				}
			}
			if !found {
				t.Fatalf("%s: relation %q missing from report", machine, rel.Name)
			}
		}
	}
}

// TestVerdictLifecycle: a single violated window makes a relation
// suspect, the configured streak refutes it, and refuted is sticky even
// after the stream goes clean again.
func TestVerdictLifecycle(t *testing.T) {
	row := cleanRow(t, march.Core2())
	cols := tableICols()
	rel := counters.Relations()[0] // inst-mix
	bad, badCPI := corrupt(t, rel, cols, row, row[0])

	c := newTableIChecker(t, "core2")
	c.Observe(bad, badCPI, true)
	trans := c.EndWindow()
	if len(trans) != 1 || trans[0].Verdict != Suspect || trans[0].Relation != rel.Name {
		t.Fatalf("first violated window transitions = %+v, want one suspect for %q", trans, rel.Name)
	}
	if v := c.Verdict(); v != Suspect {
		t.Fatalf("verdict after one violated window = %q", v)
	}
	// A clean window in between resets the streak: still suspect.
	c.Observe(row, row[0], true)
	if trans := c.EndWindow(); len(trans) != 0 {
		t.Fatalf("clean window caused transitions %+v", trans)
	}
	c.Observe(bad, badCPI, true)
	c.EndWindow()
	if v := c.Verdict(); v != Suspect {
		t.Fatalf("verdict after broken streak = %q, want suspect", v)
	}
	c.Observe(bad, badCPI, true)
	trans = c.EndWindow()
	if len(trans) != 1 || trans[0].Verdict != Refuted {
		t.Fatalf("second consecutive violated window transitions = %+v, want refuted", trans)
	}
	// Sticky: clean windows cannot un-refute.
	for i := 0; i < 3; i++ {
		c.Observe(row, row[0], true)
		c.EndWindow()
	}
	if v := c.Verdict(); v != Refuted {
		t.Fatalf("refuted verdict decayed to %q", v)
	}
	sum := c.Summary()
	if sum.RefutedRelations != 1 {
		t.Fatalf("summary reports %d refuted relations, want 1", sum.RefutedRelations)
	}
}

// TestCPIRelationsSkipWithoutObserved: prediction-only samples (no
// observed CPI) must not be counted against CPI relations.
func TestCPIRelationsSkipWithoutObserved(t *testing.T) {
	row := cleanRow(t, march.Core2())
	c := newTableIChecker(t, "core2")
	c.Observe(row, 0, false)
	c.EndWindow()
	for _, rr := range c.Report().Relations {
		usesCPI := false
		for _, col := range mustRelation(t, c, rr.Name).Columns() {
			if col == "CPI" {
				usesCPI = true
			}
		}
		if usesCPI && rr.Checked != 0 {
			t.Fatalf("CPI relation %q checked %d samples without observed CPI", rr.Name, rr.Checked)
		}
		if !usesCPI && rr.Checked != 1 {
			t.Fatalf("relation %q checked %d samples, want 1", rr.Name, rr.Checked)
		}
	}
}

func mustRelation(t *testing.T, c *Checker, name string) counters.RelationSpec {
	t.Helper()
	for _, r := range c.Relations() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("relation %q not in catalog", name)
	return counters.RelationSpec{}
}

// TestStateRoundTrip: snapshot → JSON → restore reproduces the checker
// byte-identically, including mid-lifecycle verdicts.
func TestStateRoundTrip(t *testing.T) {
	row := cleanRow(t, march.Core2())
	cols := tableICols()
	bad, badCPI := corrupt(t, counters.Relations()[0], cols, row, row[0])

	c := newTableIChecker(t, "core2")
	feedRows(c, [][]float64{row, row}, 2)
	c.Observe(bad, badCPI, true)
	c.EndWindow()

	blob, err := c.State().MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadJSON(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("re-reading own snapshot: %v", err)
	}
	restored := newTableIChecker(t, "core2")
	if err := restored.RestoreState(decoded); err != nil {
		t.Fatalf("restore: %v", err)
	}
	blob2, err := restored.State().MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("state round-trip not byte-identical:\n%s\n%s", blob, blob2)
	}

	// Continuation equivalence: same future input, same future state.
	c.Observe(bad, badCPI, true)
	c.EndWindow()
	restored.Observe(bad, badCPI, true)
	restored.EndWindow()
	b1, _ := c.State().MarshalBytes()
	b2, _ := restored.State().MarshalBytes()
	if !bytes.Equal(b1, b2) {
		t.Fatal("restored checker diverged from original on identical input")
	}
}

// TestRestoreRejectsMismatch: snapshots from a different machine or
// catalog shape are refused rather than silently misapplied.
func TestRestoreRejectsMismatch(t *testing.T) {
	c := newTableIChecker(t, "core2")
	st := c.State()

	other := newTableIChecker(t, "atom")
	if err := other.RestoreState(st); err == nil {
		t.Fatal("restore accepted a snapshot from another machine")
	}

	truncated := st
	truncated.Relations = st.Relations[:len(st.Relations)-1]
	if err := c.RestoreState(truncated); err == nil {
		t.Fatal("restore accepted a truncated relation list")
	}

	renamed := st
	renamed.Relations = append([]RelationState(nil), st.Relations...)
	renamed.Relations[0].Name = "no-such-relation"
	if err := c.RestoreState(renamed); err == nil {
		t.Fatal("restore accepted a renamed relation")
	}

	future := st
	future.SchemaVersion = StateVersion + 1
	if err := c.RestoreState(future); err == nil {
		t.Fatal("restore accepted a future schema version")
	}
}

// TestReadJSONStrict: the snapshot decoder rejects unknown fields,
// trailing documents and future versions.
func TestReadJSONStrict(t *testing.T) {
	c := newTableIChecker(t, "core2")
	blob, err := c.State().MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(bytes.NewReader(blob)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	for name, data := range map[string]string{
		"unknown-field":  `{"schema_version":1,"samples":0,"windows":0,"relations":[],"extra":1}`,
		"future-version": `{"schema_version":99,"samples":0,"windows":0,"relations":[]}`,
		"trailing":       `{"schema_version":1,"samples":0,"windows":0,"relations":[]}{}`,
		"bad-verdict":    `{"schema_version":1,"samples":1,"windows":1,"relations":[{"name":"x","checked":1,"violations":1,"violated_windows":1,"streak":1,"max_deviation":1,"verdict":"maybe"}]}`,
		"not-json":       `nope`,
	} {
		if _, err := ReadJSON(strings.NewReader(data)); err == nil {
			t.Fatalf("%s: ReadJSON accepted %q", name, data)
		}
	}
}

// TestDisabledChecker: a disabled checker observes nothing, reports
// consistent, and round-trips an empty state.
func TestDisabledChecker(t *testing.T) {
	c := NewChecker(Config{Disabled: true}, tableICols(), 0, "core2")
	if c.Enabled() {
		t.Fatal("disabled checker reports enabled")
	}
	c.Observe(make([]float64, 21), 1, true)
	if trans := c.EndWindow(); trans != nil {
		t.Fatalf("disabled checker emitted transitions %+v", trans)
	}
	if v := c.Verdict(); v != Consistent {
		t.Fatalf("disabled checker verdict %q", v)
	}
	if err := c.RestoreState(c.State()); err != nil {
		t.Fatalf("disabled checker state round-trip: %v", err)
	}
}
