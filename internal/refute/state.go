package refute

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// StateVersion is the refutation snapshot format version. Snapshots
// declaring a newer version are rejected: they would carry fields this
// build does not understand, and silently dropping refutation evidence
// on restore defeats the whole layer.
const StateVersion = 1

// RelationState is one relation's accumulated statistics, exactly as
// snapshotted. All fields round-trip byte-identically through JSON
// (float64 values encode in Go's shortest form and decode to the same
// bits), which the drain/restore differential tests rely on.
type RelationState struct {
	Name string `json:"name"`
	// Checked counts samples evaluated; Violations counts samples that
	// exceeded the tolerance band.
	Checked    uint64 `json:"checked"`
	Violations uint64 `json:"violations"`
	// ViolatedWindows counts closed windows containing a violation and
	// Streak the consecutive run of them ending at the last closed window.
	ViolatedWindows uint64 `json:"violated_windows"`
	Streak          uint64 `json:"streak"`
	// MaxDeviation is the worst observed excess over the relation bound.
	MaxDeviation float64 `json:"max_deviation"`
	// LastViolation is the 1-based ordinal of the most recent violating
	// sample (0 = never violated).
	LastViolation uint64  `json:"last_violation,omitempty"`
	Verdict       Verdict `json:"verdict"`
}

// State is a checker snapshot: everything needed to continue consistency
// checking byte-identically after a session drain/restore.
type State struct {
	SchemaVersion int             `json:"schema_version"`
	Machine       string          `json:"machine,omitempty"`
	Samples       uint64          `json:"samples"`
	Windows       uint64          `json:"windows"`
	Relations     []RelationState `json:"relations"`
}

func (c *Checker) relationState(i int) RelationState {
	st := c.stats[i]
	return RelationState{
		Name:            c.rels[i].spec.Name,
		Checked:         st.checked,
		Violations:      st.violations,
		ViolatedWindows: st.violatedWindows,
		Streak:          st.streak,
		MaxDeviation:    st.maxDeviation,
		LastViolation:   st.lastViolation,
		Verdict:         st.verdict,
	}
}

// State snapshots the checker. Open-window aggregation never crosses a
// snapshot (the stream processor closes a window at the end of every
// scoring batch), so the snapshot is complete.
func (c *Checker) State() State {
	st := State{
		SchemaVersion: StateVersion,
		Machine:       c.machine,
		Samples:       c.samples,
		Windows:       c.windows,
	}
	for i := range c.rels {
		st.Relations = append(st.Relations, c.relationState(i))
	}
	return st
}

// Validate checks a decoded snapshot's internal consistency without
// reference to any catalog: version, verdict vocabulary, count ordering
// and deviation finiteness. RestoreState additionally checks the
// snapshot against the live catalog.
func (s State) Validate() error {
	if s.SchemaVersion < 1 || s.SchemaVersion > StateVersion {
		return fmt.Errorf("refute: snapshot declares schema_version %d; this build supports 1..%d",
			s.SchemaVersion, StateVersion)
	}
	seen := make(map[string]bool, len(s.Relations))
	for i, r := range s.Relations {
		if r.Name == "" {
			return fmt.Errorf("refute: relation %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("refute: duplicate relation %q in snapshot", r.Name)
		}
		seen[r.Name] = true
		switch r.Verdict {
		case Consistent, Suspect, Refuted:
		default:
			return fmt.Errorf("refute: relation %q has unknown verdict %q", r.Name, r.Verdict)
		}
		if r.Violations > r.Checked {
			return fmt.Errorf("refute: relation %q counts %d violations out of %d checked", r.Name, r.Violations, r.Checked)
		}
		if r.Checked > s.Samples {
			return fmt.Errorf("refute: relation %q checked %d samples of %d ingested", r.Name, r.Checked, s.Samples)
		}
		if r.ViolatedWindows > s.Windows || r.Streak > r.ViolatedWindows {
			return fmt.Errorf("refute: relation %q window counts are inconsistent", r.Name)
		}
		if math.IsNaN(r.MaxDeviation) || math.IsInf(r.MaxDeviation, 0) || r.MaxDeviation < 0 {
			return fmt.Errorf("refute: relation %q max_deviation %v is not a finite non-negative value", r.Name, r.MaxDeviation)
		}
		if (r.Violations == 0) != (r.Verdict == Consistent) {
			return fmt.Errorf("refute: relation %q verdict %q disagrees with %d violations", r.Name, r.Verdict, r.Violations)
		}
		if r.LastViolation > s.Samples {
			return fmt.Errorf("refute: relation %q last violation %d beyond %d samples", r.Name, r.LastViolation, s.Samples)
		}
	}
	return nil
}

// ReadJSON decodes one refutation snapshot strictly: malformed JSON,
// unknown fields, undeclared or future schema versions, trailing data
// and internally inconsistent statistics are all errors. It never panics
// on adversarial input (see FuzzRefutationStateReadJSON).
func ReadJSON(r io.Reader) (State, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s State
	if err := dec.Decode(&s); err != nil {
		return State{}, fmt.Errorf("refute: decoding snapshot: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return State{}, fmt.Errorf("refute: trailing data after snapshot")
	}
	if err := s.Validate(); err != nil {
		return State{}, err
	}
	return s, nil
}

// WriteJSON serializes the snapshot compactly and deterministically.
func (s State) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("refute: encoding snapshot: %w", err)
	}
	return nil
}

// MarshalBytes returns the snapshot's canonical JSON encoding.
func (s State) MarshalBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreState loads a snapshot into the checker. The snapshot must have
// been taken by a checker with the identical compiled catalog — same
// relations in the same order — which is how a drain/restore across
// replicas detects a schema or machine mismatch instead of silently
// mis-attributing statistics.
func (c *Checker) RestoreState(s State) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !c.Enabled() {
		if len(s.Relations) == 0 {
			return nil
		}
		return fmt.Errorf("refute: snapshot carries %d relations but checking is disabled", len(s.Relations))
	}
	if s.Machine != c.machine {
		return fmt.Errorf("refute: snapshot machine %q does not match checker machine %q", s.Machine, c.machine)
	}
	if len(s.Relations) != len(c.rels) {
		return fmt.Errorf("refute: snapshot carries %d relations, catalog has %d", len(s.Relations), len(c.rels))
	}
	for i, r := range s.Relations {
		if r.Name != c.rels[i].spec.Name {
			return fmt.Errorf("refute: snapshot relation %d is %q, catalog has %q", i, r.Name, c.rels[i].spec.Name)
		}
	}
	c.samples = s.Samples
	c.windows = s.Windows
	for i, r := range s.Relations {
		c.stats[i] = relStats{
			checked:         r.Checked,
			violations:      r.Violations,
			violatedWindows: r.ViolatedWindows,
			streak:          r.Streak,
			maxDeviation:    r.MaxDeviation,
			lastViolation:   r.LastViolation,
			verdict:         r.Verdict,
		}
		c.winDev[i] = 0
	}
	return nil
}
