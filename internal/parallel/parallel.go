// Package parallel provides the deterministic fan-out primitives used by
// every concurrent layer of this repository: suite simulation, k-fold
// cross validation, bootstrap resampling, bagged-ensemble training and
// split-attribute scoring.
//
// The package enforces one contract: parallel execution must be
// *observationally identical* to serial execution. Map returns results in
// input order, errors are reported for the lowest failing index, and the
// seed-derivation helpers let callers pre-compute independent random
// streams per work item so no output ever depends on goroutine
// scheduling. Callers can therefore treat Jobs purely as a throughput
// knob: Jobs=1 runs the exact serial path, Jobs=N produces byte-identical
// results faster.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Config controls the degree of parallelism of one fan-out.
type Config struct {
	// Jobs is the maximum number of concurrent workers. Zero (or any
	// non-positive value) means runtime.GOMAXPROCS(0); 1 selects the exact
	// serial code path.
	Jobs int
}

// Serial returns a Config that forces the serial code path.
func Serial() Config { return Config{Jobs: 1} }

// SmallInputCutoff is the item count below which fan-out overhead —
// goroutine startup, the shared counter, cross-core cache traffic — costs
// more than it saves when the per-item work is tiny (predicting or scoring
// one row takes well under a microsecond). Call sites with cheap items
// route small inputs down the serial path with ForItems.
const SmallInputCutoff = 128

// ForItems returns the config, degraded to serial when n is below
// SmallInputCutoff. Results are unaffected either way (Map's contract);
// this is purely a throughput heuristic for cheap-per-item call sites.
// Sites whose items each carry substantial work (a whole benchmark
// simulation, a cross-validation fold) should not use it: for them a
// handful of items is exactly what is worth fanning out.
func (c Config) ForItems(n int) Config {
	if n < SmallInputCutoff {
		return Serial()
	}
	return c
}

// Workers resolves Jobs to a concrete worker count (>= 1).
func (c Config) Workers() int {
	if c.Jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Jobs
}

// Map applies fn to every item and returns the results in input order.
// fn receives the item's index and value.
//
// With one worker (or fewer than two items) Map degrades to a plain loop
// that stops at the first error. With more workers the items are consumed
// from a shared counter by a fixed-size pool; all items are attempted and
// the error for the lowest failing index is returned, so the returned
// (results, error) pair is independent of scheduling either way. fn must
// be safe to call concurrently when Workers() > 1.
func Map[T, R any](cfg Config, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	out := make([]R, n)
	workers := cfg.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, item := range items {
			r, err := fn(i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// golden is the 64-bit golden-ratio increment of the SplitMix64 generator
// (Steele, Lea & Flood, OOPSLA 2014).
const golden = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output finalizer: a fixed bijective scrambling
// of the 64-bit state.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSeed derives the seed of independent random stream index from a
// base seed, SplitMix64-style. The derivation is a pure function of
// (base, index), so work item i gets the same stream no matter how many
// sibling items exist or in which order they run — the property the
// determinism contract rests on.
func DeriveSeed(base int64, index int) int64 {
	return int64(mix64(uint64(base) + (uint64(index)+1)*golden))
}
