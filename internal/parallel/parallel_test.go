package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := (Config{}).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero Jobs resolved to %d workers, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Config{Jobs: -3}).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative Jobs resolved to %d workers", got)
	}
	if got := Serial().Workers(); got != 1 {
		t.Errorf("Serial() resolved to %d workers", got)
	}
	if got := (Config{Jobs: 7}).Workers(); got != 7 {
		t.Errorf("Jobs=7 resolved to %d workers", got)
	}
}

func TestMapOrderedAcrossJobCounts(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	fn := func(i int, v int) (string, error) { return fmt.Sprintf("%d:%d", i, v), nil }

	serial, err := Map(Serial(), items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4, 16, 0} {
		got, err := Map(Config{Jobs: jobs}, items, fn)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(serial) {
			t.Fatalf("jobs=%d returned %d results", jobs, len(got))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("jobs=%d result[%d] = %q, serial = %q", jobs, i, got[i], serial[i])
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	got, err := Map(Config{Jobs: 8}, nil, func(i int, v int) (int, error) { return v, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
	got, err = Map(Config{Jobs: 8}, []int{41}, func(i int, v int) (int, error) { return v + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single input: got %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	items := make([]int, 64)
	fail := map[int]error{17: errors.New("late"), 5: errors.New("early"), 40: errors.New("later")}
	for _, jobs := range []int{1, 4} {
		_, err := Map(Config{Jobs: jobs}, items, func(i int, v int) (int, error) {
			return 0, fail[i]
		})
		if err == nil || err.Error() != "early" {
			t.Errorf("jobs=%d returned error %v, want the lowest-index error", jobs, err)
		}
	}
}

func TestMapUsesBoundedWorkers(t *testing.T) {
	var active, peak atomic.Int64
	items := make([]int, 200)
	_, err := Map(Config{Jobs: 3}, items, func(i int, v int) (int, error) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		active.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent workers, configured 3", p)
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	// Stability: derivation is a pure function of (base, index).
	if a, b := DeriveSeed(42, 7), DeriveSeed(42, 7); a != b {
		t.Errorf("DeriveSeed not stable: %d vs %d", a, b)
	}
	// Distinctness: adjacent indices and adjacent bases must not collide
	// (SplitMix64 is bijective per base, so within-base collisions are
	// impossible; this guards the wiring).
	seen := map[int64]string{}
	for base := int64(0); base < 8; base++ {
		for idx := 0; idx < 1000; idx++ {
			s := DeriveSeed(base, idx)
			key := fmt.Sprintf("base=%d idx=%d", base, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
