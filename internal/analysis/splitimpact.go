package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/mtree"
)

// SplitImpact quantifies the effect of a split variable that controls
// class membership without necessarily appearing in the leaf models —
// Section V.A.2 of the paper. Two estimators are provided, matching the
// paper's discussion:
//
//   - MeanDifference: the average CPI of the high side minus the average
//     CPI of the low side of the split (the paper's LdBlSta example:
//     0.84 - mean(0.57, 0.51) ≈ 0.30, i.e. ~35% of the high side's CPI);
//   - RSquared: the R² of a single-variable regression of CPI on the
//     split variable over the instances reaching the split node — "the
//     regression R² can be used as an indication of the contribution of
//     the split variable to the overall performance".
type SplitImpact struct {
	// Attr and Name identify the split variable; Threshold is its split
	// point.
	Attr      int
	Name      string
	Threshold float64
	// Depth is the split node's depth (root = 0).
	Depth int
	// LowMeanCPI and HighMeanCPI are the mean CPI of instances routed to
	// each side.
	LowMeanCPI, HighMeanCPI float64
	// LowN and HighN are the instance counts per side.
	LowN, HighN int
	// MeanDifference is HighMeanCPI - LowMeanCPI.
	MeanDifference float64
	// FractionOfHigh is MeanDifference / HighMeanCPI — the paper's "~35%
	// of the CPI" phrasing.
	FractionOfHigh float64
	// RSquared is the single-variable regression R² at the node.
	RSquared float64
}

// SplitImpacts walks every interior node of the tree, routes the dataset
// down, and computes both impact estimators per split. The result is
// sorted by descending mean difference.
func SplitImpacts(t *mtree.Tree, d *dataset.Dataset) []SplitImpact {
	var out []SplitImpact
	var walk func(n *mtree.Node, sub *dataset.Dataset, depth int)
	walk = func(n *mtree.Node, sub *dataset.Dataset, depth int) {
		if n == nil || n.IsLeaf() || sub.Len() == 0 {
			return
		}
		left, right := sub.Split(n.SplitAttr, n.Threshold)
		si := SplitImpact{
			Attr:      n.SplitAttr,
			Name:      attrName(t, n.SplitAttr),
			Threshold: n.Threshold,
			Depth:     depth,
			LowN:      left.Len(),
			HighN:     right.Len(),
		}
		if left.Len() > 0 {
			si.LowMeanCPI = left.TargetMean()
		}
		if right.Len() > 0 {
			si.HighMeanCPI = right.TargetMean()
		}
		si.MeanDifference = si.HighMeanCPI - si.LowMeanCPI
		if si.HighMeanCPI != 0 {
			si.FractionOfHigh = si.MeanDifference / si.HighMeanCPI
		}
		si.RSquared = singleVarR2(sub, n.SplitAttr)
		out = append(out, si)
		walk(n.Left, left, depth+1)
		walk(n.Right, right, depth+1)
	}
	walk(t.Root, d, 0)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].MeanDifference > out[j].MeanDifference
	})
	return out
}

func attrName(t *mtree.Tree, a int) string {
	if a >= 0 && a < len(t.AttrNames) {
		return t.AttrNames[a]
	}
	return fmt.Sprintf("x%d", a)
}

// singleVarR2 fits CPI = a + b*x by least squares over the subset and
// returns the coefficient of determination.
func singleVarR2(d *dataset.Dataset, attr int) float64 {
	n := d.Len()
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		x, y := d.Value(i, attr), d.Target(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	nf := float64(n)
	covXY := sxy - sx*sy/nf
	varX := sxx - sx*sx/nf
	varY := syy - sy*sy/nf
	if varX <= 0 || varY <= 0 {
		return 0
	}
	r := covXY / math.Sqrt(varX*varY)
	return r * r
}

// RenderSplitImpacts formats the impact table.
func RenderSplitImpacts(impacts []SplitImpact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %6s %9s %9s %9s %8s %7s\n",
		"split var", "threshold", "depth", "lowCPI", "highCPI", "diff", "of-high", "R2")
	for _, si := range impacts {
		fmt.Fprintf(&b, "%-12s %10.3g %6d %9.3f %9.3f %9.3f %7.1f%% %7.3f\n",
			si.Name, si.Threshold, si.Depth, si.LowMeanCPI, si.HighMeanCPI,
			si.MeanDifference, 100*si.FractionOfHigh, si.RSquared)
	}
	return b.String()
}
